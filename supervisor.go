package hotprefetch

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"hotprefetch/internal/fault"
	"hotprefetch/internal/obs"
)

// SupervisorState is one phase of the supervised runtime's cycle — the
// paper's §5 profile → optimize → hibernate loop as a first-class state
// machine.
type SupervisorState int32

const (
	// StateProfiling: no optimization installed yet; the profile is
	// accumulating evidence and the supervisor is waiting for enough banked
	// cycles (or references) to build the first matcher.
	StateProfiling SupervisorState = iota

	// StateOptimized: a matcher trained on detected hot streams is
	// installed and the supervisor is sampling its accuracy every window.
	StateOptimized

	// StateHibernating: the supervisor deoptimized — a pass-through matcher
	// is installed (no prefetches, near-zero detection cost) while the
	// profile re-accumulates fresh cycles; once enough are banked the
	// supervisor re-optimizes and returns to StateOptimized.
	StateHibernating
)

// String returns the state name used in Stats.
func (s SupervisorState) String() string {
	switch s {
	case StateOptimized:
		return "optimized"
	case StateHibernating:
		return "hibernating"
	default:
		return "profiling"
	}
}

// SupervisorConfig tunes the accuracy-driven deoptimization loop. The zero
// value is usable: manual polling, a 25% accuracy floor, three bad windows
// to deoptimize, head length 2, and the paper's default analysis settings.
type SupervisorConfig struct {
	// Interval is the sampling period of the background supervision loop.
	// Zero means no background goroutine: the caller drives the state
	// machine by calling Poll — the deterministic mode tests and examples
	// use. A positive Interval requires the supervised profile to have a
	// grammar budget (MaxGrammarSymbols), because the loop retrains under
	// live traffic and that is only safe from banked cycle streams.
	Interval time.Duration

	// AccuracyFloor is the sliding-window prefetch accuracy (hits/issued)
	// below which a window counts as bad. Zero means 0.25.
	AccuracyFloor float64

	// BadWindows is the number of consecutive bad windows that trigger
	// deoptimization. Zero means 3.
	BadWindows int

	// MinWindowObservations is the number of matcher observations a window
	// must contain to be judged at all; quieter windows are inconclusive
	// and leave the bad-window count unchanged. Zero means 256.
	MinWindowObservations uint64

	// HeadLen is the prefix length for matchers the supervisor builds.
	// Zero means 2 (the paper's best setting, §4.3).
	HeadLen int

	// Analysis configures hot-stream extraction at (re)optimization. The
	// zero value means DefaultAnalysisConfig.
	Analysis AnalysisConfig

	// MinFreshCycles is how many grammar-budget cycles must bank after a
	// deoptimization (or startup) before the supervisor (re)optimizes, so
	// a retrain never runs on the evidence that just went stale. Zero
	// means 1. Ignored when the profile has no grammar budget.
	MinFreshCycles uint64

	// MinFreshRefs is the fallback readiness signal when the profile has
	// no grammar budget (so cycles never bank): (re)optimize once this many
	// references have been consumed since the last transition. Zero means
	// 4096.
	MinFreshRefs uint64

	// ProvisionalWindows is the bad-window threshold while a warm-started
	// (snapshot-restored) optimization is provisional: the restored profile
	// earned its trust in a previous run, so it gets fewer strikes than a
	// live-trained one (BadWindows) before demotion. One conclusive window
	// at or above AccuracyFloor promotes it to fully trusted. Zero means 2.
	ProvisionalWindows int

	// DriftOverlapFloor is the workload-drift threshold for a provisional
	// optimization: once the first live grammar cycle banks, the restored
	// stream set is compared against the live banked set, and an overlap
	// ratio (|restored ∩ live| / min size) below the floor demotes the warm
	// start immediately — the workload no longer runs those streams, so
	// waiting out accuracy windows would just issue useless prefetches.
	// Zero means 0.25; negative disables the check.
	DriftOverlapFloor float64

	// ForgetOnDeoptimize, when true, clears the shards' retained stream
	// sets at deoptimization, so re-optimization sees only streams banked
	// after the phase change — the paper's full cycle-end deallocation.
	// When false (the default) stale retained streams persist; they are
	// harmless to accuracy (their heads stop matching, so they issue no
	// prefetches) but keep matcher states alive.
	ForgetOnDeoptimize bool

	// Fault, when non-nil, lets the injector force accuracy windows stale
	// (fault.Injector.MatcherStale), driving the deoptimization path on
	// demand in chaos tests.
	Fault fault.Injector

	// Predictor selects the registered predictor implementation the
	// supervisor builds at every (re)optimization (see RegisterPredictor).
	// Empty means DefaultPredictor, the paper's DFSM.
	Predictor string

	// ABTest, when non-empty, names a challenger predictor: every
	// (re)optimization starts a live A/B trial on the same trained stream
	// set. The champion (Predictor) runs first; after ABWindows conclusive
	// accuracy windows the supervisor hot-swaps the challenger in for its
	// own ABWindows, then publishes whichever implementation measured the
	// higher mean window accuracy (ties keep the champion). Window
	// accounting is exact across arm swaps — counters fold at publication
	// (see ConcurrentMatcher.AccuracyByPredictor) — so neither arm's
	// issued/hit deltas bleed into the other's. Deoptimization (a bad-window
	// run, drift demotion, or a failed/panicking arm build) aborts the
	// trial. The challenger must differ from the champion.
	ABTest string

	// ABWindows is the number of conclusive accuracy windows each A/B arm
	// is judged on. Zero means 3.
	ABWindows int
}

// withDefaults returns the configuration with zero fields replaced.
func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.AccuracyFloor == 0 {
		c.AccuracyFloor = 0.25
	}
	if c.BadWindows == 0 {
		c.BadWindows = 3
	}
	if c.MinWindowObservations == 0 {
		c.MinWindowObservations = 256
	}
	if c.HeadLen == 0 {
		c.HeadLen = 2
	}
	if c.Analysis == (AnalysisConfig{}) {
		c.Analysis = DefaultAnalysisConfig()
	}
	if c.MinFreshCycles == 0 {
		c.MinFreshCycles = 1
	}
	if c.MinFreshRefs == 0 {
		c.MinFreshRefs = 4096
	}
	if c.ProvisionalWindows == 0 {
		c.ProvisionalWindows = 2
	}
	if c.DriftOverlapFloor == 0 {
		c.DriftOverlapFloor = 0.25
	}
	if c.Predictor == "" {
		c.Predictor = DefaultPredictor
	}
	if c.ABWindows == 0 {
		c.ABWindows = 3
	}
	return c
}

// Validate reports whether the configuration is well-formed.
func (c SupervisorConfig) Validate() error {
	if c.Interval < 0 {
		return fmt.Errorf("hotprefetch: negative supervisor Interval %v", c.Interval)
	}
	if c.AccuracyFloor < 0 || c.AccuracyFloor > 1 {
		return fmt.Errorf("hotprefetch: supervisor AccuracyFloor %g outside [0, 1]", c.AccuracyFloor)
	}
	if c.BadWindows < 0 {
		return fmt.Errorf("hotprefetch: negative supervisor BadWindows %d", c.BadWindows)
	}
	if c.ProvisionalWindows < 0 {
		return fmt.Errorf("hotprefetch: negative supervisor ProvisionalWindows %d", c.ProvisionalWindows)
	}
	if c.DriftOverlapFloor > 1 {
		return fmt.Errorf("hotprefetch: supervisor DriftOverlapFloor %g above 1", c.DriftOverlapFloor)
	}
	if c.HeadLen < 0 {
		return fmt.Errorf("hotprefetch: negative supervisor HeadLen %d", c.HeadLen)
	}
	if err := c.Analysis.Validate(); err != nil {
		return fmt.Errorf("supervisor Analysis: %w", err)
	}
	if c.Predictor != "" && !predictorRegistered(c.Predictor) {
		return fmt.Errorf("hotprefetch: supervisor Predictor %q not registered (have %v)",
			c.Predictor, PredictorNames())
	}
	if c.ABTest != "" {
		if !predictorRegistered(c.ABTest) {
			return fmt.Errorf("hotprefetch: supervisor ABTest predictor %q not registered (have %v)",
				c.ABTest, PredictorNames())
		}
		champion := c.Predictor
		if champion == "" {
			champion = DefaultPredictor
		}
		if c.ABTest == champion {
			return fmt.Errorf("hotprefetch: supervisor ABTest challenger %q equals the champion", c.ABTest)
		}
	}
	if c.ABWindows < 0 {
		return fmt.Errorf("hotprefetch: negative supervisor ABWindows %d", c.ABWindows)
	}
	return nil
}

// SupervisorStats is the supervision slice of a Stats snapshot.
type SupervisorStats struct {
	// State is the current phase ("profiling", "optimized", "hibernating").
	State string `json:"state"`

	// Accuracy is the last conclusive window's hits/issued ratio (0 when
	// no window has concluded yet or the matcher issued nothing).
	Accuracy float64 `json:"accuracy"`

	// WindowsBelowFloor is the current run of consecutive bad windows.
	WindowsBelowFloor int `json:"windows_below_floor"`

	// Deoptimizations and Reoptimizations count the supervisor's state
	// transitions out of and back into StateOptimized.
	Deoptimizations uint64 `json:"deoptimizations"`
	Reoptimizations uint64 `json:"reoptimizations"`

	// PrefetchesIssued and PrefetchesHit are the matcher's cumulative
	// accuracy counters (across swaps).
	PrefetchesIssued uint64 `json:"prefetches_issued"`
	PrefetchesHit    uint64 `json:"prefetches_hit"`

	// PollErrors counts Poll ticks that failed (flush or analysis-pool
	// stalls during re-optimization).
	PollErrors uint64 `json:"poll_errors"`

	// Provisional reports that the current optimization came from a
	// restored snapshot and has not yet earned a conclusive good accuracy
	// window (see SupervisorConfig.ProvisionalWindows).
	Provisional bool `json:"provisional,omitempty"`

	// Predictor names the predictor implementation currently published on
	// the supervised matcher.
	Predictor string `json:"predictor,omitempty"`

	// A/B trial state (see SupervisorConfig.ABTest): while ABActive, the
	// champion/challenger fields report each arm's conclusive windows so
	// far and its mean window accuracy over them. ABTrials counts trials
	// concluded with a winner, ABAborts trials torn down early
	// (deoptimization, drift demotion, or a failed arm build), and
	// ABLastWinner the implementation the last concluded trial kept.
	ABActive             bool    `json:"ab_active,omitempty"`
	ABChampion           string  `json:"ab_champion,omitempty"`
	ABChallenger         string  `json:"ab_challenger,omitempty"`
	ABChampionWindows    int     `json:"ab_champion_windows,omitempty"`
	ABChallengerWindows  int     `json:"ab_challenger_windows,omitempty"`
	ABChampionAccuracy   float64 `json:"ab_champion_accuracy,omitempty"`
	ABChallengerAccuracy float64 `json:"ab_challenger_accuracy,omitempty"`
	ABTrials             uint64  `json:"ab_trials,omitempty"`
	ABAborts             uint64  `json:"ab_aborts,omitempty"`
	ABLastWinner         string  `json:"ab_last_winner,omitempty"`
}

// Supervisor closes the paper's control loop over a profiling service and
// its matcher: it measures the installed optimization's prefetch accuracy
// in sliding windows and revokes it when it decays — deoptimizing to a
// pass-through matcher, letting the profile re-accumulate, and retraining
// from fresh cycles — with no manual Swap calls anywhere.
//
// Lifecycle: Supervise attaches a Supervisor to a ShardedProfile and a
// ConcurrentMatcher; Close detaches and stops the background loop (if any).
// The Supervisor never closes the profile or matcher it supervises.
type Supervisor struct {
	sp  *ShardedProfile
	cm  *ConcurrentMatcher
	cfg SupervisorConfig

	state      atomic.Int32
	deopts     atomic.Uint64
	reopts     atomic.Uint64
	pollErrors atomic.Uint64
	accBits    atomic.Uint64 // math.Float64bits of the last window accuracy
	badRun     atomic.Int64  // consecutive bad windows

	// Poll-local sampling cursors; Poll is serialized by pollMu, so these
	// need no atomics beyond the snapshot fields above.
	pollMu       sync.Mutex
	lastIssued   uint64
	lastHits     uint64
	lastObserved uint64

	// Readiness baselines captured at startup and every deoptimization.
	resetsBase   uint64
	consumedBase uint64

	// Warm-start provisional trust (pollMu except the atomic flag):
	// provisional marks an optimization restored from a snapshot that has
	// not yet produced a good live window; restored holds the warm-start
	// stream set for the drift check, which runs once (driftChecked) when
	// the first live cycle banks.
	provisional  atomic.Bool
	restored     []Stream
	driftChecked bool

	// A/B trial state. Guarded by abMu — not pollMu — because Snapshot
	// must read it while Poll (which holds pollMu) is inside a Stats call.
	// Mutations happen only under pollMu, so judgeWindow's read-decide-act
	// sequences are still single-writer.
	abMu         sync.Mutex
	ab           abTrial
	abLastWinner string
	abTrials     atomic.Uint64
	abAborts     atomic.Uint64

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// abTrial is one live A/B predictor trial: the trained stream set both arms
// share, the arm currently published (0 champion, 1 challenger), and each
// arm's exact ledger of conclusive windows.
type abTrial struct {
	active  bool
	streams []Stream
	arm     int
	names   [2]string
	windows [2]int
	accSum  [2]float64
	issued  [2]uint64
	hits    [2]uint64
}

// Supervise wires a Supervisor over the profile and matcher: it enables
// accuracy tracking on the matcher, registers both with the profile's Stats,
// and — when cfg.Interval > 0 — starts the background supervision loop.
// With Interval == 0 the caller drives the loop by calling Poll.
func Supervise(sp *ShardedProfile, cm *ConcurrentMatcher, cfg SupervisorConfig) (*Supervisor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Interval > 0 && sp.cfg.MaxGrammarSymbols == 0 {
		// The background loop retrains while producers are live, which is
		// only safe from banked cycle streams; without a grammar budget no
		// cycles ever bank and retraining would race the consumers' live
		// grammars. Manual Poll mode (Interval 0) leaves quiescence to the
		// caller instead.
		return nil, fmt.Errorf("hotprefetch: supervisor Interval %v requires a profile with MaxGrammarSymbols set (background retraining reads banked cycle streams)", cfg.Interval)
	}
	cfg = cfg.withDefaults()
	s := &Supervisor{
		sp:   sp,
		cm:   cm,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	cm.EnableAccuracyTracking(0)
	if restored := sp.restoredStreams(); len(restored) > 0 {
		// Warm start: a snapshot was restored into the profile, so optimize
		// from it immediately — no profiling period — but provisionally. The
		// restored profile earned its trust in a previous run; judgeWindow
		// gives it only ProvisionalWindows strikes and checkDrift compares it
		// against the first live banked cycle. Either demotion clears the
		// restored set and falls back to cold profiling.
		if err := cm.SwapNamed(cfg.Predictor, restored, cfg.HeadLen); err != nil {
			return nil, err
		}
		s.provisional.Store(true)
		s.restored = restored
		sp.restoredMu.Lock()
		base := sp.restoredBaseline
		sp.restoredMu.Unlock()
		if base.Valid {
			// Start the reported accuracy at the previous run's measured
			// ratio until the first conclusive live window replaces it.
			s.accBits.Store(math.Float64bits(base.Accuracy()))
		}
		s.state.Store(int32(StateOptimized))
		sp.obs.Emit(obs.KindPhaseOptimized, -1, uint64(len(restored)))
	} else if cm.NumStates() > 1 {
		s.state.Store(int32(StateOptimized))
		sp.obs.Emit(obs.KindPhaseOptimized, -1, uint64(cm.NumStates()))
	} else {
		s.state.Store(int32(StateProfiling))
		sp.obs.Emit(obs.KindPhaseProfiling, -1, 0)
	}
	st := sp.Stats()
	s.resetsBase = st.Resets
	s.consumedBase = st.Consumed
	s.lastObserved = cm.Observations()
	s.lastIssued, s.lastHits = cm.AccuracyCounters()
	sp.AttachMatcher(cm)
	sp.supervisor.Store(s)
	if cfg.Interval > 0 {
		go s.run()
	} else {
		close(s.done)
	}
	return s, nil
}

// run is the background supervision loop, labeled for profile attribution
// (see DESIGN.md §9).
func (s *Supervisor) run() {
	defer close(s.done)
	pprof.Do(context.Background(), pprof.Labels("hotprefetch_phase", "supervise"), func(context.Context) {
		ticker := time.NewTicker(s.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-ticker.C:
				if err := s.Poll(); err != nil {
					s.pollErrors.Add(1)
				}
			}
		}
	})
}

// Close stops the background loop and detaches the supervisor from the
// profile's Stats. Idempotent; the supervised profile and matcher are left
// running.
func (s *Supervisor) Close() {
	s.stopOnce.Do(func() {
		close(s.stop)
		s.sp.supervisor.CompareAndSwap(s, nil)
	})
	<-s.done
}

// State returns the current phase.
func (s *Supervisor) State() SupervisorState { return SupervisorState(s.state.Load()) }

// Accuracy returns the last conclusive window's hits/issued ratio.
func (s *Supervisor) Accuracy() float64 { return math.Float64frombits(s.accBits.Load()) }

// Snapshot returns the supervision counters for Stats.
func (s *Supervisor) Snapshot() SupervisorStats {
	issued, hits := s.cm.AccuracyCounters()
	st := SupervisorStats{
		State:             s.State().String(),
		Accuracy:          s.Accuracy(),
		WindowsBelowFloor: int(s.badRun.Load()),
		Deoptimizations:   s.deopts.Load(),
		Reoptimizations:   s.reopts.Load(),
		PrefetchesIssued:  issued,
		PrefetchesHit:     hits,
		PollErrors:        s.pollErrors.Load(),
		Provisional:       s.provisional.Load(),
		Predictor:         s.cm.Predictor(),
		ABTrials:          s.abTrials.Load(),
		ABAborts:          s.abAborts.Load(),
	}
	s.abMu.Lock()
	st.ABLastWinner = s.abLastWinner
	if s.ab.active {
		st.ABActive = true
		st.ABChampion, st.ABChallenger = s.ab.names[0], s.ab.names[1]
		st.ABChampionWindows, st.ABChallengerWindows = s.ab.windows[0], s.ab.windows[1]
		if s.ab.windows[0] > 0 {
			st.ABChampionAccuracy = s.ab.accSum[0] / float64(s.ab.windows[0])
		}
		if s.ab.windows[1] > 0 {
			st.ABChallengerAccuracy = s.ab.accSum[1] / float64(s.ab.windows[1])
		}
	}
	s.abMu.Unlock()
	return st
}

// Poll advances the state machine by one supervision window: in
// StateOptimized it judges the accuracy window and deoptimizes after
// cfg.BadWindows consecutive bad ones; in StateProfiling/StateHibernating
// it re-optimizes once enough fresh evidence has banked. Poll is what the
// background loop calls every Interval; with Interval == 0 the embedding
// application calls it directly (it is safe to call concurrently, but
// windows are only meaningful when polled at a roughly steady cadence).
func (s *Supervisor) Poll() error {
	s.pollMu.Lock()
	defer s.pollMu.Unlock()
	switch s.State() {
	case StateOptimized:
		if s.provisional.Load() {
			s.checkDrift()
		}
		if s.State() == StateOptimized {
			s.judgeWindow()
		}
		return nil
	default:
		return s.tryOptimize()
	}
}

// judgeWindow evaluates the accuracy of the observations since the last
// poll and deoptimizes after a run of bad windows.
func (s *Supervisor) judgeWindow() {
	observed := s.cm.Observations()
	issued, hits := s.cm.AccuracyCounters()
	dObs := observed - s.lastObserved
	dIssued := issued - s.lastIssued
	dHits := hits - s.lastHits
	s.lastObserved, s.lastIssued, s.lastHits = observed, issued, hits

	if dObs < s.cfg.MinWindowObservations {
		// Too quiet to judge; neither a strike nor an acquittal.
		return
	}
	var acc float64
	if dIssued > 0 {
		acc = float64(dHits) / float64(dIssued)
	}
	// An optimized matcher that sees traffic but issues nothing is stale by
	// definition (its heads no longer occur), so acc stays 0 and the window
	// is bad. Forced staleness injection overrides a healthy measurement.
	if s.cfg.Fault != nil && s.cfg.Fault.MatcherStale() {
		acc = 0
	}
	s.accBits.Store(math.Float64bits(acc))
	s.sp.obs.AccuracyWindow.ObserveRatio(acc)
	s.abObserveWindow(acc, dIssued, dHits)
	if acc >= s.cfg.AccuracyFloor {
		s.badRun.Store(0)
		// One conclusive good window promotes a provisional (warm-started)
		// optimization to fully trusted: from here it gets the ordinary
		// BadWindows allowance and its demise would be a deoptimization,
		// not a stale-snapshot rejection.
		s.provisional.Store(false)
		return
	}
	if s.provisional.Load() {
		if int(s.badRun.Add(1)) >= s.cfg.ProvisionalWindows {
			s.demoteProvisional(uint64(s.cfg.ProvisionalWindows))
		}
		return
	}
	if int(s.badRun.Add(1)) >= s.cfg.BadWindows {
		s.deoptimize()
	}
}

// abObserveWindow attributes one conclusive accuracy window to the live A/B
// arm and advances the trial: after cfg.ABWindows windows the live arm yields
// to the other, and once both arms served their windows the higher mean
// accuracy wins (ties keep the champion) and is published for good. Each
// window's issued/hit deltas are banked per arm; because counter folding and
// publication share the matcher's step lock, the deltas partition exactly —
// no observation is counted in both arms or lost at a swap boundary.
func (s *Supervisor) abObserveWindow(acc float64, dIssued, dHits uint64) {
	s.abMu.Lock()
	if !s.ab.active {
		s.abMu.Unlock()
		return
	}
	arm := s.ab.arm
	s.ab.windows[arm]++
	s.ab.accSum[arm] += acc
	s.ab.issued[arm] += dIssued
	s.ab.hits[arm] += dHits
	if s.ab.windows[arm] < s.cfg.ABWindows {
		s.abMu.Unlock()
		return
	}
	if s.ab.windows[1-arm] < s.cfg.ABWindows {
		// This arm is done; hand the matcher to the other on the same
		// trained stream set.
		next := s.ab.names[1-arm]
		streams := s.ab.streams
		s.ab.arm = 1 - arm
		s.abMu.Unlock()
		if err := s.safeSwap(next, streams); err != nil {
			s.abortTrial()
		}
		return
	}
	// Both arms served: conclude. Strictly-higher mean accuracy promotes the
	// challenger; anything else keeps the champion.
	winner := 0
	if s.ab.accSum[1]/float64(s.ab.windows[1]) > s.ab.accSum[0]/float64(s.ab.windows[0]) {
		winner = 1
	}
	name := s.ab.names[winner]
	streams := s.ab.streams
	s.ab = abTrial{}
	s.abLastWinner = name
	s.abMu.Unlock()
	if err := s.safeSwap(name, streams); err != nil {
		s.abortTrial()
		return
	}
	s.abTrials.Add(1)
	// Value distinguishes a defended title (0) from an upset (1).
	s.sp.obs.Emit(obs.KindPredictorWinner, -1, uint64(winner))
}

// safeSwap publishes the named predictor trained on streams, converting a
// panicking factory into an error: a broken implementation under A/B trial
// must not take down the supervision loop.
func (s *Supervisor) safeSwap(name string, streams []Stream) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("hotprefetch: predictor %q build panicked: %v", name, r)
		}
	}()
	return s.cm.SwapNamed(name, streams, s.cfg.HeadLen)
}

// abortTrial tears down an active A/B trial (a failed or panicking arm
// build) and demotes to the pass-through state: the trial's ledger is
// dropped, the abort is counted, and the supervisor deoptimizes — the
// champion's pass-through instance is published, so a crashing challenger
// costs the process nothing but the trial.
func (s *Supervisor) abortTrial() {
	s.abMu.Lock()
	s.ab = abTrial{}
	s.abMu.Unlock()
	s.abAborts.Add(1)
	s.pollErrors.Add(1)
	s.deoptimize()
}

// clearTrialOnTeardown drops an active trial when the optimization it was
// judging is torn down underneath it (deoptimization or warm-start
// demotion), counting the abort.
func (s *Supervisor) clearTrialOnTeardown() {
	s.abMu.Lock()
	active := s.ab.active
	s.ab = abTrial{}
	s.abMu.Unlock()
	if active {
		s.abAborts.Add(1)
	}
}

// demoteProvisional rejects the warm start as stale: a pass-through matcher
// is published, the restored stream set is dropped from BankedStreams (so
// the next optimization trains only on live evidence), and the supervisor
// falls back to cold profiling — the restored profile leaves no trace but
// the stale-rejection counter and event. value is the bad-window run that
// triggered it, or 0 for drift detection.
func (s *Supervisor) demoteProvisional(value uint64) {
	if err := s.safeSwap(s.cfg.Predictor, nil); err != nil {
		s.pollErrors.Add(1)
		return
	}
	s.clearTrialOnTeardown()
	s.provisional.Store(false)
	s.restored = nil
	s.driftChecked = true
	s.sp.clearRestored(value)
	st := s.sp.Stats()
	s.resetsBase, s.consumedBase = st.Resets, st.Consumed
	s.badRun.Store(0)
	s.accBits.Store(0)
	s.state.Store(int32(StateProfiling))
	s.sp.obs.Emit(obs.KindPhaseProfiling, -1, 0)
}

// checkDrift runs the workload-drift heuristic once per warm start, as soon
// as the first live grammar cycle has banked: if the restored stream set
// and the live banked set overlap below DriftOverlapFloor, the workload no
// longer runs the snapshotted streams and the warm start is demoted
// immediately instead of waiting out bad accuracy windows.
func (s *Supervisor) checkDrift() {
	if s.driftChecked || s.cfg.DriftOverlapFloor < 0 {
		return
	}
	st := s.sp.Stats()
	if st.Resets == s.resetsBase {
		return
	}
	live := s.sp.liveBankedStreams(0)
	if len(live) == 0 {
		// The cycle banked nothing hot; wait for real evidence.
		return
	}
	s.driftChecked = true
	if streamOverlap(s.restored, live) < s.cfg.DriftOverlapFloor {
		s.demoteProvisional(0)
	}
}

// deoptimize tears the optimization down: a pass-through matcher is
// published (no streams, so detection degenerates to one failed comparison
// and no prefetch ever fires) and the profile re-enters its evidence-
// gathering phase. The paper's §5 de-optimization, triggered by measured
// accuracy decay instead of an external call.
func (s *Supervisor) deoptimize() {
	if err := s.safeSwap(s.cfg.Predictor, nil); err != nil {
		// Building the empty machine cannot fail with a valid HeadLen;
		// treat a failure as a poll error rather than wedging the loop.
		s.pollErrors.Add(1)
		return
	}
	s.clearTrialOnTeardown()
	if s.cfg.ForgetOnDeoptimize {
		for _, sh := range s.sp.shards {
			sh.mu.Lock()
			sh.retained = nil
			sh.mu.Unlock()
		}
	}
	st := s.sp.Stats()
	s.resetsBase, s.consumedBase = st.Resets, st.Consumed
	s.badRun.Store(0)
	s.accBits.Store(0)
	s.deopts.Add(1)
	s.state.Store(int32(StateHibernating))
	// Value carries the run of bad windows that triggered the teardown.
	s.sp.obs.Emit(obs.KindPhaseHibernating, -1, uint64(s.cfg.BadWindows))
}

// tryOptimize retrains once enough fresh evidence has banked since the last
// transition: MinFreshCycles grammar-budget cycles, or MinFreshRefs
// consumed references when the profile has no budget (cycles never bank).
//
// With a budget, training reads only the banked cycle streams
// (BankedStreams) — safe while producers are running, which is what lets
// the background loop retrain under live traffic. Without a budget it must
// analyze the live grammars (HotStreamsErr), which requires the quiescence
// the manual-Poll mode gives the caller control over; Supervise therefore
// rejects Interval > 0 on a budget-less profile.
func (s *Supervisor) tryOptimize() error {
	st := s.sp.Stats()
	var streams []Stream
	if s.sp.cfg.MaxGrammarSymbols > 0 {
		if st.Resets-s.resetsBase < s.cfg.MinFreshCycles {
			return nil
		}
		streams = s.sp.BankedStreams(s.cfg.Analysis.MaxStreams)
	} else {
		if st.Consumed-s.consumedBase < s.cfg.MinFreshRefs {
			return nil
		}
		var err error
		streams, err = s.sp.HotStreamsErr(s.cfg.Analysis)
		if err != nil {
			return err
		}
	}
	if len(streams) == 0 {
		// Evidence banked but nothing hot yet; keep profiling.
		return nil
	}
	if err := s.safeSwap(s.cfg.Predictor, streams); err != nil {
		return err
	}
	if s.cfg.ABTest != "" {
		// Every (re)optimization under an ABTest config opens a fresh trial:
		// the champion just published runs its windows first, then
		// abObserveWindow hands the same stream set to the challenger.
		s.abMu.Lock()
		s.ab = abTrial{
			active:  true,
			streams: streams,
			names:   [2]string{s.cfg.Predictor, s.cfg.ABTest},
		}
		s.abMu.Unlock()
		// Value carries the trained stream count both arms share.
		s.sp.obs.Emit(obs.KindPredictorTrial, -1, uint64(len(streams)))
	}
	wasProfiling := s.State() == StateProfiling
	// Start the accuracy bookkeeping from this instant so the optimization
	// isn't judged on pre-swap silence.
	s.lastObserved = s.cm.Observations()
	s.lastIssued, s.lastHits = s.cm.AccuracyCounters()
	s.badRun.Store(0)
	s.state.Store(int32(StateOptimized))
	// Value carries the number of hot streams the new machine serves.
	s.sp.obs.Emit(obs.KindPhaseOptimized, -1, uint64(len(streams)))
	if !wasProfiling {
		s.reopts.Add(1)
	}
	return nil
}
