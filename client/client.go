// Package client is the thin capture library an application embeds to feed
// the networked profiling service: it buffers (pc, addr) data references in
// memory, frames them with the tracefile wire format, and publishes them
// over HTTP — periodically, when the buffer fills, and on Close (the
// emit-on-shutdown idiom of PGO profile publishers, where an ephemeral
// process's profile must leave the box before the process does).
//
// Capture is deliberately lossy under pressure: if publishes cannot keep up
// with capture, whole batches are dropped and counted, never blocking the
// instrumented application — profiling stays off the critical path, exactly
// as the paper's bursty tracing intends (the service-side burst front end
// and ingestion policies do the principled shedding; the client's only job
// is to not stall its host).
package client

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/url"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"hotprefetch/internal/ref"
	"hotprefetch/internal/tracefile"
)

// Defaults applied by Config.withDefaults.
const (
	defaultBufferRefs    = 8192
	defaultFlushInterval = 10 * time.Second
	defaultMaxPending    = 4
	defaultTimeout       = 10 * time.Second
	defaultMaxAttempts   = 3
	defaultRetryBackoff  = 50 * time.Millisecond
	maxRetryBackoff      = 2 * time.Second
)

// Config configures a Capture.
type Config struct {
	// Server is the profiling service's base URL, e.g. "http://prof:9190".
	Server string

	// Tenant is the tenant key to publish under (1–64 chars of
	// [A-Za-z0-9._-]).
	Tenant string

	// Stream identifies this capture's logical reference stream; the
	// service keeps one stream's whole trace on one profile shard, which is
	// what lets Sequitur see its regularity. Zero derives a stable id from
	// the process id and start time — right for one capture per process;
	// set distinct explicit ids when one process runs several captures.
	Stream uint64

	// BufferRefs is the number of references buffered before an automatic
	// publish (0 means 8192).
	BufferRefs int

	// FlushInterval publishes whatever has accumulated at this cadence even
	// when the buffer isn't full (0 means 10s; negative disables the timer,
	// leaving buffer-full and Close publishes only).
	FlushInterval time.Duration

	// MaxPending bounds the publish queue (0 means 4): if the publisher
	// falls this many batches behind, Add drops whole batches — counted in
	// Stats().Dropped — instead of blocking the application.
	MaxPending int

	// MaxAttempts bounds how many times one batch is tried before its
	// references are counted Dropped — transient failures (transport errors
	// and 5xx responses) are retried up to this total, while permanent
	// rejections (4xx) and encode failures never are (0 means 3; 1 disables
	// retry entirely).
	MaxAttempts int

	// RetryBackoff is the base delay before the first retry; each further
	// retry doubles it, jitters the wait to break fleet-wide
	// synchronization, and caps it at 2s (0 means 50ms; negative retries
	// immediately with no delay).
	RetryBackoff time.Duration

	// HTTPClient overrides the HTTP client used for publishes (nil means a
	// client with a 10s timeout).
	HTTPClient *http.Client

	// OnError, when non-nil, is called with every publish error (from the
	// publisher goroutine). Errors are always counted in Stats regardless.
	OnError func(error)
}

func (c Config) withDefaults() Config {
	if c.BufferRefs <= 0 {
		c.BufferRefs = defaultBufferRefs
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = defaultFlushInterval
	}
	if c.MaxPending <= 0 {
		c.MaxPending = defaultMaxPending
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = defaultMaxAttempts
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = defaultRetryBackoff
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: defaultTimeout}
	}
	if c.Stream == 0 {
		c.Stream = uint64(os.Getpid())<<32 ^ uint64(time.Now().UnixNano())
		if c.Stream == 0 {
			c.Stream = 1
		}
	}
	return c
}

// Ref is a single captured data reference: the program counter of the load
// or store and the address it touched. It mirrors the service's reference
// type so applications can batch captures without importing anything else.
type Ref struct {
	PC   int
	Addr uint64
}

// Stats counts a Capture's activity. All fields are cumulative.
type Stats struct {
	Captured  uint64 // references handed to Add
	Published uint64 // references successfully published
	Dropped   uint64 // references dropped (publisher backlogged or closed)
	Publishes uint64 // successful publish requests
	Errors    uint64 // batches that exhausted every attempt (their refs count as Dropped)
	Retried   uint64 // batches that succeeded only after at least one retry
	Retries   uint64 // retry attempts (publish attempts beyond each batch's first)
}

// Capture buffers data references and publishes them to the profiling
// service. Create one with New, call Add from the instrumented code paths,
// and Close on shutdown to publish the final partial buffer.
//
// Add is safe for concurrent use; captures from multiple goroutines
// interleave in arrival order, which is the right model when they belong to
// one logical trace (use separate Captures with distinct Stream ids
// otherwise).
type Capture struct {
	cfg Config
	url *url.URL

	mu     sync.Mutex
	buf    []ref.Ref
	closed bool

	pending chan []ref.Ref
	done    chan struct{}
	wg      sync.WaitGroup

	// spare recycles the capacity of published (or dropped) batches back to
	// the buffer-rotation sites, and bodyPool recycles the tracefile encode
	// buffer across publishes — together they make the steady-state capture
	// loop reuse memory instead of allocating a buffer and a wire-format
	// body per publish.
	spare    chan []ref.Ref
	bodyPool sync.Pool

	// enqWG tracks enqueues started before Close flipped closed, so Close can
	// wait for them before closing the pending channel. Enqueuers register
	// under mu (while closed is still false), making registration and Close's
	// closed=true mutually exclusive.
	enqWG sync.WaitGroup

	captured  atomic.Uint64
	published atomic.Uint64
	dropped   atomic.Uint64
	publishes atomic.Uint64
	errors    atomic.Uint64
	retried   atomic.Uint64
	retries   atomic.Uint64
}

// New returns a running Capture publishing to cfg.Server under cfg.Tenant.
func New(cfg Config) (*Capture, error) {
	cfg = cfg.withDefaults()
	if cfg.Server == "" {
		return nil, fmt.Errorf("client: empty Server URL")
	}
	if _, err := url.Parse(cfg.Server); err != nil {
		return nil, fmt.Errorf("client: bad Server URL: %w", err)
	}
	if cfg.Tenant == "" {
		return nil, fmt.Errorf("client: empty Tenant key")
	}
	// Parse the ingest URL once; publish reuses it so the per-request work
	// is building the Request, not re-parsing the endpoint.
	u, err := url.Parse(fmt.Sprintf("%s/ingest?tenant=%s&stream=%d",
		cfg.Server, url.QueryEscape(cfg.Tenant), cfg.Stream))
	if err != nil {
		return nil, fmt.Errorf("client: bad ingest URL: %w", err)
	}
	c := &Capture{
		cfg: cfg,
		url: u,
		buf:     make([]ref.Ref, 0, cfg.BufferRefs),
		pending: make(chan []ref.Ref, cfg.MaxPending),
		done:    make(chan struct{}),
		spare:   make(chan []ref.Ref, cfg.MaxPending+1),
	}
	c.wg.Add(1)
	go c.publisher()
	if cfg.FlushInterval > 0 {
		c.wg.Add(1)
		go c.ticker()
	}
	return c, nil
}

// Add captures one data reference. It never blocks on the network: a full
// publish queue drops the oldest unpublished batch (counted in Stats) and
// capture continues.
func (c *Capture) Add(pc int, addr uint64) {
	c.captured.Add(1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.dropped.Add(1)
		return
	}
	c.buf = append(c.buf, ref.Ref{PC: pc, Addr: addr})
	var full []ref.Ref
	if len(c.buf) >= c.cfg.BufferRefs {
		full = c.buf
		c.buf = c.newBatch()
		c.enqWG.Add(1)
	}
	c.mu.Unlock()
	if full != nil {
		c.enqueue(full)
		c.enqWG.Done()
	}
}

// AddBatch captures a run of references in order.
func (c *Capture) AddBatch(refs []Ref) {
	c.captured.Add(uint64(len(refs)))
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.dropped.Add(uint64(len(refs)))
		return
	}
	var batches [][]ref.Ref
	for len(refs) > 0 {
		n := c.cfg.BufferRefs - len(c.buf)
		if n > len(refs) {
			n = len(refs)
		}
		for _, r := range refs[:n] {
			c.buf = append(c.buf, ref.Ref{PC: r.PC, Addr: r.Addr})
		}
		refs = refs[n:]
		if len(c.buf) >= c.cfg.BufferRefs {
			batches = append(batches, c.buf)
			c.buf = c.newBatch()
		}
	}
	c.enqWG.Add(len(batches))
	c.mu.Unlock()
	for _, b := range batches {
		c.enqueue(b)
		c.enqWG.Done()
	}
}

// enqueue hands a full batch to the publisher, dropping the oldest pending
// batch when the queue is full so capture keeps absorbing fresh references.
func (c *Capture) enqueue(batch []ref.Ref) {
	for {
		select {
		case c.pending <- batch:
			return
		default:
		}
		select {
		case old := <-c.pending:
			c.dropped.Add(uint64(len(old)))
			c.recycleBatch(old)
		default:
		}
	}
}

// Flush publishes the current partial buffer synchronously (unlike the
// background publishes Add triggers). It returns the publish error, if any.
func (c *Capture) Flush() error {
	c.mu.Lock()
	batch := c.buf
	if len(batch) > 0 {
		c.buf = c.newBatch()
	}
	c.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	return c.publish(batch)
}

// Close stops the timers, publishes everything still buffered, and waits for
// in-flight publishes to finish — the emit-on-shutdown guarantee. Close is
// idempotent; Add after Close drops (and counts) the reference.
func (c *Capture) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return nil
	}
	c.closed = true
	batch := c.buf
	c.buf = nil
	c.mu.Unlock()
	close(c.done)
	if len(batch) > 0 {
		c.enqueue(batch)
	}
	c.enqWG.Wait()
	close(c.pending)
	c.wg.Wait()
	if c.errors.Load() > 0 {
		return fmt.Errorf("client: %d publish(es) failed (%d refs dropped)",
			c.errors.Load(), c.dropped.Load())
	}
	return nil
}

// Stats returns a snapshot of the capture's counters. At quiescence (after
// Close) Captured == Published + Dropped + the final buffered remainder of a
// never-published partial batch (zero after a clean Close).
func (c *Capture) Stats() Stats {
	return Stats{
		Captured:  c.captured.Load(),
		Published: c.published.Load(),
		Dropped:   c.dropped.Load(),
		Publishes: c.publishes.Load(),
		Errors:    c.errors.Load(),
		Retried:   c.retried.Load(),
		Retries:   c.retries.Load(),
	}
}

// publisher drains the pending queue until Close.
func (c *Capture) publisher() {
	defer c.wg.Done()
	for batch := range c.pending {
		if err := c.publish(batch); err != nil && c.cfg.OnError != nil {
			c.cfg.OnError(err)
		}
	}
}

// ticker periodically moves the partial buffer onto the publish queue.
func (c *Capture) ticker() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.FlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-tick.C:
			c.mu.Lock()
			if c.closed || len(c.buf) == 0 {
				c.mu.Unlock()
				continue
			}
			batch := c.buf
			c.buf = c.newBatch()
			c.enqWG.Add(1)
			c.mu.Unlock()
			c.enqueue(batch)
			c.enqWG.Done()
		}
	}
}

// newBatch returns an empty capture buffer, reusing a published batch's
// capacity when one is waiting; the allocation happens only until the
// recycle loop is primed.
func (c *Capture) newBatch() []ref.Ref {
	select {
	case b := <-c.spare:
		return b[:0]
	default:
		return make([]ref.Ref, 0, c.cfg.BufferRefs)
	}
}

// recycleBatch returns a dead batch's capacity to the rotation sites. A full
// spare queue (or an oddly-sized batch, e.g. Close's remainder after a
// config change) just lets the slice go to the collector.
func (c *Capture) recycleBatch(batch []ref.Ref) {
	if cap(batch) < c.cfg.BufferRefs {
		return
	}
	select {
	case c.spare <- batch[:0]:
	default:
	}
}

// encodeBuffer is a bytes.Buffer usable directly as a request body — the
// no-op Close lets publish hand the pooled buffer to the transport without
// wrapping it in a fresh NopCloser allocation per request.
type encodeBuffer struct{ bytes.Buffer }

func (*encodeBuffer) Close() error { return nil }

var octetStream = []string{"application/octet-stream"}

// publish delivers one batch, retrying transient failures — transport
// errors and 5xx responses — with jittered exponential backoff up to
// cfg.MaxAttempts total tries. Permanent rejections (4xx) and encode
// failures fail immediately. The books settle exactly once per batch:
// success counts it Published (and Retried if any attempt failed first);
// exhausting the budget counts one error and the whole batch Dropped,
// exactly as an unretried failure would.
func (c *Capture) publish(batch []ref.Ref) error {
	defer c.recycleBatch(batch)
	var err error
	for attempt := 0; ; attempt++ {
		var retryable bool
		retryable, err = c.tryPublish(batch)
		if err == nil {
			if attempt > 0 {
				c.retried.Add(1)
			}
			c.published.Add(uint64(len(batch)))
			c.publishes.Add(1)
			return nil
		}
		if !retryable || attempt+1 >= c.cfg.MaxAttempts {
			break
		}
		c.retries.Add(1)
		backoffSleep(c.cfg.RetryBackoff, attempt)
	}
	c.errors.Add(1)
	c.dropped.Add(uint64(len(batch)))
	return err
}

// backoffSleep waits the attempt's share of the exponential schedule:
// base<<attempt, halved and jittered so a fleet of captures retrying the
// same hiccup doesn't re-synchronize, capped at maxRetryBackoff.
func backoffSleep(base time.Duration, attempt int) {
	if base <= 0 {
		return
	}
	d := base << uint(attempt)
	if d <= 0 || d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	time.Sleep(d/2 + rand.N(d/2+1))
}

// tryPublish frames the batch and POSTs it to the ingest endpoint once,
// reporting whether a failure is worth retrying. The encode buffer is
// pooled: after the transport has consumed the request body the buffer's
// capacity is reused by the next attempt, so a warm capture frames batches
// without allocating the body again. The request is built by hand from the
// pre-parsed URL (http.Client.Post would re-parse it per call); GetBody is
// deliberately absent — the ingest endpoint never redirects, a retry
// re-frames into a fresh pooled buffer, and a transport-level replay would
// outlive the pooled buffer.
func (c *Capture) tryPublish(batch []ref.Ref) (retryable bool, err error) {
	body, _ := c.bodyPool.Get().(*encodeBuffer)
	if body == nil {
		body = new(encodeBuffer)
	}
	body.Reset()
	if err := tracefile.Write(&body.Buffer, batch); err != nil {
		c.bodyPool.Put(body)
		return false, fmt.Errorf("client: encode: %w", err)
	}
	u := *c.url // per-request copy; concurrent publishes must not share one URL
	req := &http.Request{
		Method:        http.MethodPost,
		URL:           &u,
		Host:          u.Host,
		Header:        http.Header{"Content-Type": octetStream},
		Body:          body,
		ContentLength: int64(body.Len()),
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		// An aborted round trip may leave the transport still draining the
		// body; let this buffer go to the collector instead of the pool.
		return true, fmt.Errorf("client: publish: %w", err)
	}
	defer c.bodyPool.Put(body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg [256]byte
		n, _ := resp.Body.Read(msg[:])
		return resp.StatusCode >= 500, fmt.Errorf("client: publish: server returned %s: %s", resp.Status, msg[:n])
	}
	return false, nil
}
