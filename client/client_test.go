package client_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hotprefetch"
	"hotprefetch/client"
)

// newService boots a real multi-tenant service on a test listener.
func newService(t *testing.T, cfg hotprefetch.ServiceConfig) (*hotprefetch.Service, *httptest.Server) {
	t.Helper()
	svc, err := hotprefetch.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return svc, srv
}

func TestNewValidation(t *testing.T) {
	if _, err := client.New(client.Config{Tenant: "a"}); err == nil {
		t.Error("empty Server accepted")
	}
	if _, err := client.New(client.Config{Server: "http://x"}); err == nil {
		t.Error("empty Tenant accepted")
	}
}

// TestCaptureEndToEnd is the client library's round trip: captured
// references arrive in the tenant's server-side profile, and after Close the
// client's and server's books agree exactly.
func TestCaptureEndToEnd(t *testing.T) {
	svc, srv := newService(t, hotprefetch.ServiceConfig{})
	cc, err := client.New(client.Config{
		Server:        srv.URL,
		Tenant:        "app-1",
		Stream:        42,
		BufferRefs:    256,
		FlushInterval: -1, // explicit publishes only
		MaxPending:    64, // deep enough that nothing drops
	})
	if err != nil {
		t.Fatal(err)
	}
	const refs = 1000 // 3 full buffers + a partial for Close to publish
	for i := 0; i < refs; i++ {
		cc.Add(100+i%13, uint64(0x1000+8*(i%64)))
	}
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
	st := cc.Stats()
	if st.Captured != refs || st.Published != refs || st.Dropped != 0 {
		t.Fatalf("client books: %+v, want %d captured = published", st, refs)
	}
	sst := svc.Stats()
	if len(sst.Tenants) != 1 || sst.Tenants[0].Key != "app-1" {
		t.Fatalf("server tenants: %+v", sst.Tenants)
	}
	if got := sst.Tenants[0].PublishedRefs; got != refs {
		t.Fatalf("server received %d refs, client published %d", got, refs)
	}
	if p := sst.Tenants[0].Profile; p.Pushed != refs {
		t.Fatalf("server pushed %d, want %d", p.Pushed, refs)
	}
}

func TestCaptureAddBatchAndFlush(t *testing.T) {
	svc, srv := newService(t, hotprefetch.ServiceConfig{})
	cc, err := client.New(client.Config{
		Server: srv.URL, Tenant: "app-2", Stream: 7,
		BufferRefs: 128, FlushInterval: -1, MaxPending: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]client.Ref, 300) // spans multiple buffers
	for i := range batch {
		batch[i] = client.Ref{PC: i % 9, Addr: uint64(i)}
	}
	cc.AddBatch(batch)
	if err := cc.Flush(); err != nil { // push the 44-ref remainder
		t.Fatal(err)
	}
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
	if st := cc.Stats(); st.Published != 300 {
		t.Fatalf("published %d, want 300", st.Published)
	}
	if got := svc.Stats().Tenants[0].PublishedRefs; got != 300 {
		t.Fatalf("server received %d refs, want 300", got)
	}
}

// TestCapturePeriodicFlush covers the timer path: a partial buffer reaches
// the server without Flush or Close.
func TestCapturePeriodicFlush(t *testing.T) {
	svc, srv := newService(t, hotprefetch.ServiceConfig{})
	cc, err := client.New(client.Config{
		Server: srv.URL, Tenant: "app-3",
		FlushInterval: 5 * time.Millisecond, MaxPending: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	cc.Add(1, 0x10)
	cc.Add(2, 0x18)
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().PublishedRefs < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("periodic flush never published: client %+v", cc.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCaptureBackpressureDrops pins the never-block contract: with the
// publisher wedged behind a slow server, capture keeps absorbing references,
// drops whole batches, and the books still balance exactly.
func TestCaptureBackpressureDrops(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // wedge every publish until the test releases it
		w.WriteHeader(http.StatusOK)
	}))
	defer slow.Close()
	defer once.Do(func() { close(release) })

	cc, err := client.New(client.Config{
		Server: slow.URL, Tenant: "app-4",
		BufferRefs: 8, FlushInterval: -1, MaxPending: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	const refs = 800
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < refs; i++ {
			cc.Add(i%5, uint64(i))
		}
	}()
	select {
	case <-done: // capture never blocked on the wedged server
	case <-time.After(10 * time.Second):
		t.Fatal("Add blocked behind a wedged publisher")
	}
	st := cc.Stats()
	if st.Dropped == 0 {
		t.Fatal("no drops despite a wedged publisher and MaxPending=1")
	}
	once.Do(func() { close(release) })
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
	st = cc.Stats()
	if st.Captured != refs || st.Published+st.Dropped != refs {
		t.Fatalf("books don't balance: %+v (want published + dropped = %d)", st, refs)
	}
	t.Logf("backpressure: %d captured, %d published, %d dropped", st.Captured, st.Published, st.Dropped)
}

// TestCaptureServerErrors: failed publishes are counted, their refs are
// accounted as dropped, OnError fires, and Close reports the failures.
func TestCaptureServerErrors(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "tenant quota exhausted", http.StatusServiceUnavailable)
	}))
	defer bad.Close()
	var mu sync.Mutex
	var seen []error
	cc, err := client.New(client.Config{
		Server: bad.URL, Tenant: "app-5",
		BufferRefs: 4, FlushInterval: -1, MaxPending: 64,
		RetryBackoff: -1, // 503 is retryable; don't sleep between attempts
		OnError:      func(err error) { mu.Lock(); seen = append(seen, err); mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		cc.Add(1, uint64(i))
	}
	if err := cc.Close(); err == nil {
		t.Fatal("Close reported success despite failed publishes")
	}
	st := cc.Stats()
	if st.Errors == 0 || st.Dropped != 16 || st.Published != 0 {
		t.Fatalf("error books: %+v, want every ref dropped via failed publishes", st)
	}
	if st.Retries == 0 || st.Retried != 0 {
		t.Fatalf("retry books: %+v, want retries attempted but none succeeding", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 || !strings.Contains(seen[0].Error(), "quota exhausted") {
		t.Fatalf("OnError calls: %v", seen)
	}
}

// TestCaptureRetriesFlakyServer: transient 5xx and transport hiccups are
// retried with backoff inside the attempt budget, so a flaky server costs
// latency, not data — the batch is Published, not Dropped, and the books
// record exactly the retries that happened.
func TestCaptureRetriesFlakyServer(t *testing.T) {
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 { // first two attempts fail transiently
			http.Error(w, "shard swap in progress", http.StatusServiceUnavailable)
			return
		}
		io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusOK)
	}))
	defer flaky.Close()
	cc, err := client.New(client.Config{
		Server: flaky.URL, Tenant: "app-8",
		BufferRefs: 64, FlushInterval: -1,
		RetryBackoff: time.Millisecond, // exercise the backoff sleep, quickly
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		cc.Add(1, uint64(i))
	}
	if err := cc.Flush(); err != nil {
		t.Fatalf("Flush should survive two transient failures: %v", err)
	}
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
	st := cc.Stats()
	if st.Published != 10 || st.Dropped != 0 || st.Errors != 0 {
		t.Fatalf("flaky books: %+v, want all 10 published", st)
	}
	if st.Retries != 2 || st.Retried != 1 {
		t.Fatalf("retry books: %+v, want 2 retries rescuing 1 batch", st)
	}
}

// TestCaptureNoRetryOnRejection: a 4xx is the server's final answer — the
// client must not hammer it with the same bad request again.
func TestCaptureNoRetryOnRejection(t *testing.T) {
	var calls atomic.Int64
	reject := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "unknown tenant", http.StatusBadRequest)
	}))
	defer reject.Close()
	cc, err := client.New(client.Config{
		Server: reject.URL, Tenant: "app-9",
		BufferRefs: 64, FlushInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cc.Add(1, 1)
	if err := cc.Flush(); err == nil {
		t.Fatal("Flush succeeded against a rejecting server")
	}
	cc.Close()
	if got := calls.Load(); got != 1 {
		t.Fatalf("client sent %d requests for a permanent rejection, want 1", got)
	}
	if st := cc.Stats(); st.Retries != 0 || st.Dropped != 1 {
		t.Fatalf("rejection books: %+v, want no retries, 1 dropped", st)
	}
}

func TestCaptureCloseIdempotentAndAddAfterClose(t *testing.T) {
	_, srv := newService(t, hotprefetch.ServiceConfig{})
	cc, err := client.New(client.Config{Server: srv.URL, Tenant: "app-6", FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	cc.Add(1, 2)
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cc.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	cc.Add(3, 4) // must not panic or publish
	if st := cc.Stats(); st.Captured != 2 || st.Published != 1 || st.Dropped != 1 {
		t.Fatalf("post-close books: %+v", st)
	}
}

// TestCaptureConcurrentProducers drives Add from many goroutines — the
// documented shared-capture mode — under the race detector.
func TestCaptureConcurrentProducers(t *testing.T) {
	svc, srv := newService(t, hotprefetch.ServiceConfig{})
	cc, err := client.New(client.Config{
		Server: srv.URL, Tenant: "app-7",
		BufferRefs: 64, FlushInterval: time.Millisecond, MaxPending: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	const producers, each = 16, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				cc.Add(p, uint64(i))
			}
		}(p)
	}
	wg.Wait()
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
	st := cc.Stats()
	if st.Captured != producers*each {
		t.Fatalf("captured %d, want %d", st.Captured, producers*each)
	}
	if st.Published+st.Dropped != st.Captured {
		t.Fatalf("books don't balance: %+v", st)
	}
	if got := svc.Stats().Tenants[0].PublishedRefs; got != st.Published {
		t.Fatalf("server received %d, client published %d", got, st.Published)
	}
}

// TestCaptureTenantMismatch: a capture pointed at a bad tenant key keeps
// failing cleanly rather than crashing or hanging.
func TestCaptureTenantMismatch(t *testing.T) {
	_, srv := newService(t, hotprefetch.ServiceConfig{})
	cc, err := client.New(client.Config{
		Server: srv.URL, Tenant: "bad key", // rejected server-side (400)
		BufferRefs: 2, FlushInterval: -1, MaxPending: 8,
	})
	if err != nil {
		t.Fatal(err) // key validity is the server's call, not the client's
	}
	cc.Add(1, 1)
	cc.Add(2, 2)
	err = cc.Close()
	if err == nil {
		t.Fatal("Close succeeded against a rejecting server")
	}
	if st := cc.Stats(); st.Published != 0 || st.Dropped != 2 {
		t.Fatalf("mismatch books: %+v", st)
	}
}

// stubTransport answers every publish with 200 without a network or a
// server, so allocation measurements see only the client's own work plus
// net/http's fixed per-request cost.
type stubTransport struct{}

func (stubTransport) RoundTrip(*http.Request) (*http.Response, error) {
	return &http.Response{StatusCode: http.StatusOK, Status: "200 OK", Body: http.NoBody}, nil
}

// newStubCapture builds a capture publishing into stubTransport with the
// background timer off, so publishes happen only on Flush.
func newStubCapture(t testing.TB, bufferRefs int) *client.Capture {
	t.Helper()
	cc, err := client.New(client.Config{
		Server: "http://stub", Tenant: "alloc", Stream: 1,
		BufferRefs: bufferRefs, FlushInterval: -1,
		HTTPClient: &http.Client{Transport: stubTransport{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cc.Close() })
	return cc
}

// TestCapturePublishSteadyStateAllocs mirrors the grammar's
// TestAppendRunSteadyStateAllocs for the capture loop: once the batch
// freelist and encode-buffer pool are primed, a capture-and-flush cycle's
// allocations are net/http's per-request cost alone — the buffer rotation
// and the tracefile framing reuse pooled memory.
func TestCapturePublishSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts include race-detector bookkeeping under -race")
	}
	cc := newStubCapture(t, 1024)
	refs := make([]client.Ref, 512)
	for i := range refs {
		refs[i] = client.Ref{PC: i % 37, Addr: uint64(i%53) * 8}
	}
	// Prime the freelist and pools with one full cycle.
	cc.AddBatch(refs)
	if err := cc.Flush(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		cc.AddBatch(refs)
		if err := cc.Flush(); err != nil {
			t.Fatal(err)
		}
	})
	// Everything the client owns is pooled — the encode buffer, the batch
	// slices, the parsed URL; the 12 allocations that remain are
	// http.Client.Do's fixed per-request construction (header clone,
	// cancellation plumbing) plus the stub's Response. The pre-pooling
	// path cost 34. The bound holds that floor with small headroom.
	if allocs > 14 {
		t.Errorf("steady-state capture+flush allocated %.1f times per publish, want <= 14", allocs)
	}
}

// BenchmarkClientPublish measures one full capture-and-publish cycle
// against the stub transport: buffer rotation, tracefile framing, and the
// HTTP round trip minus the network.
func BenchmarkClientPublish(b *testing.B) {
	cc := newStubCapture(b, 4096) // larger than the batch so Flush publishes synchronously
	refs := make([]client.Ref, 2048)
	for i := range refs {
		refs[i] = client.Ref{PC: i % 37, Addr: uint64(i%53) * 8}
	}
	cc.AddBatch(refs)
	if err := cc.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc.AddBatch(refs)
		if err := cc.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}
