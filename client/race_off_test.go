//go:build !race

package client_test

// raceEnabled reports whether the race detector is compiled in; allocation
// counts include the detector's own bookkeeping under -race, so the
// steady-state allocation test skips itself there.
const raceEnabled = false
