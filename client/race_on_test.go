//go:build race

package client_test

const raceEnabled = true
