package hotprefetch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// syntheticTrace builds a trace in which `streams` known sequences repeat,
// separated by noise references.
func syntheticTrace(streams [][]Ref, reps int, seed int64) []Ref {
	r := rand.New(rand.NewSource(seed))
	var trace []Ref
	for i := 0; i < reps; i++ {
		for _, s := range streams {
			trace = append(trace, s...)
			trace = append(trace, Ref{PC: 9999, Addr: uint64(r.Intn(1 << 20))})
		}
	}
	return trace
}

func mkStream(pcBase int, n int) []Ref {
	s := make([]Ref, n)
	for i := range s {
		s[i] = Ref{PC: pcBase + i, Addr: uint64((pcBase+i)*64 + 8)}
	}
	return s
}

func TestProfileFindsKnownStreams(t *testing.T) {
	known := [][]Ref{mkStream(100, 15), mkStream(200, 12)}
	p := NewProfile()
	p.AddAll(syntheticTrace(known, 20, 1))

	cfg := AnalysisConfig{MinLen: 10, MaxLen: 100, MinUnique: 10, MinCoverage: 0.01}
	streams := p.HotStreams(cfg)
	if len(streams) < 2 {
		t.Fatalf("found %d hot streams, want >= 2", len(streams))
	}
	// Each known stream must be contained in some reported stream.
	for _, k := range known {
		if !coveredBy(k, streams) {
			t.Errorf("known stream starting at pc %d not detected", k[0].PC)
		}
	}
	// Streams are hottest-first.
	for i := 1; i < len(streams); i++ {
		if streams[i].Heat > streams[i-1].Heat {
			t.Error("streams must be sorted by heat")
		}
	}
}

func coveredBy(needle []Ref, streams []Stream) bool {
	for _, s := range streams {
		for i := 0; i+len(needle) <= len(s.Refs); i++ {
			match := true
			for j := range needle {
				if s.Refs[i+j] != needle[j] {
					match = false
					break
				}
			}
			if match {
				return true
			}
		}
	}
	return false
}

func TestProfileLenAndGrammarSize(t *testing.T) {
	p := NewProfile()
	if p.Len() != 0 {
		t.Error("empty profile must have Len 0")
	}
	p.AddAll(mkStream(1, 50))
	if p.Len() != 50 {
		t.Errorf("Len = %d, want 50", p.Len())
	}
	if p.GrammarSize() == 0 {
		t.Error("grammar must not be empty")
	}
}

func TestPreciseAtLeastAsInclusive(t *testing.T) {
	known := [][]Ref{mkStream(100, 12)}
	p := NewProfile()
	p.AddAll(syntheticTrace(known, 15, 2))
	cfg := AnalysisConfig{MinLen: 10, MaxLen: 60, MinUnique: 10, MinCoverage: 0.01}
	fast := p.HotStreams(cfg)
	precise := p.HotStreamsPrecise(cfg)
	if len(precise) == 0 {
		t.Fatal("precise analysis found nothing")
	}
	for _, f := range fast {
		if !coveredBy(f.Refs, precise) {
			t.Errorf("fast stream (heat %d) missing from precise results", f.Heat)
		}
	}
}

func TestMatcherEndToEnd(t *testing.T) {
	// Profile a trace, build a matcher, and re-run the trace through it:
	// the matcher must fire prefetches and the prefetched addresses must be
	// future stream addresses.
	known := [][]Ref{mkStream(100, 15)}
	trace := syntheticTrace(known, 20, 3)
	p := NewProfile()
	p.AddAll(trace)
	streams := p.HotStreams(AnalysisConfig{MinLen: 10, MaxLen: 100, MinCoverage: 0.01})
	if len(streams) == 0 {
		t.Fatal("no streams detected")
	}
	m, err := NewMatcher(streams, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() < 2 || m.NumTransitions() < 1 {
		t.Fatalf("degenerate DFSM: %d states, %d transitions", m.NumStates(), m.NumTransitions())
	}

	pcs := map[int]bool{}
	for _, pc := range m.PCs() {
		pcs[pc] = true
	}
	streamAddrs := map[uint64]bool{}
	for _, s := range streams {
		for _, r := range s.Refs {
			streamAddrs[r.Addr] = true
		}
	}

	fired := 0
	for _, r := range trace {
		if !pcs[r.PC] {
			continue // detection code only exists at head pcs
		}
		pf, comps := m.Observe(r)
		if comps < 1 {
			t.Fatal("each observation costs at least one comparison")
		}
		if pf != nil {
			fired++
			for _, a := range pf {
				if !streamAddrs[a] {
					t.Fatalf("prefetched address 0x%x is not a stream address", a)
				}
			}
		}
	}
	if fired < 10 {
		t.Errorf("matcher fired %d times over 20 repetitions, want >= 10", fired)
	}
}

func TestMatcherRejectsBadHeadLen(t *testing.T) {
	if _, err := NewMatcher(nil, 0); err == nil {
		t.Error("headLen 0 must be rejected")
	}
}

func TestStreamCoverage(t *testing.T) {
	s := Stream{Heat: 80}
	if got := s.Coverage(100); got != 0.8 {
		t.Errorf("Coverage = %v, want 0.8", got)
	}
	if s.Coverage(0) != 0 {
		t.Error("Coverage of empty trace must be 0")
	}
}

func TestDefaultAnalysisConfigMatchesPaper(t *testing.T) {
	c := DefaultAnalysisConfig()
	if c.MinUnique != 10 || c.MinCoverage != 0.01 {
		t.Errorf("default config %+v deviates from the paper's §4.1 settings", c)
	}
}

// TestNegativeConfigClamped regresses the silent uint64 wrap: a negative
// MinLen/MaxLen used to convert to a huge unsigned bound, inverting the
// length filter's meaning.
func TestNegativeConfigClamped(t *testing.T) {
	c := AnalysisConfig{MinLen: -5, MaxLen: -1, MinUnique: -2, MinCoverage: -0.5, MaxStreams: -3}
	ic := c.internal()
	if ic.MinLen != 0 || ic.MaxLen != 0 {
		t.Errorf("negative length bounds wrapped to MinLen=%d MaxLen=%d, want 0/0", ic.MinLen, ic.MaxLen)
	}
	if ic.MinUnique != 0 || ic.MinCoverage != 0 || ic.MaxStreams != 0 {
		t.Errorf("negative filters not clamped: %+v", ic)
	}

	// A profile analyzed with a negative-bound config must return nothing
	// (clamped MaxLen 0 admits no stream) rather than everything.
	p := NewProfile()
	for rep := 0; rep < 50; rep++ {
		for i := 0; i < 12; i++ {
			p.Add(Ref{PC: i, Addr: uint64(8 * i)})
		}
	}
	if got := p.HotStreams(c); len(got) != 0 {
		t.Errorf("negative config returned %d streams, want 0", len(got))
	}
}

func TestAnalysisConfigValidate(t *testing.T) {
	if err := DefaultAnalysisConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []AnalysisConfig{
		{MinLen: -1},
		{MaxLen: -1},
		{MinLen: 10, MaxLen: 5},
		{MinUnique: -1},
		{MinCoverage: -0.1},
		{MinCoverage: 1.5},
		{MaxStreams: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d (%+v) validated, want error", i, c)
		}
	}
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	want := []string{"vpr", "mcf", "twolf", "parser", "vortex", "boxsim"}
	if len(names) != len(want) {
		t.Fatalf("Benchmarks() = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Benchmarks()[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestRunBenchmarkUnknown(t *testing.T) {
	if _, err := RunBenchmark("nope", ModeDynPref); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestRunBenchmarkDynPref(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated benchmark run")
	}
	rep, err := RunBenchmark("vortex", ModeDynPref)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OverheadPct >= 0 {
		t.Errorf("dyn-pref on vortex should win, got %+.1f%%", rep.OverheadPct)
	}
	if rep.OptCycles == 0 || rep.HotStreamsPerCycle == 0 || rep.UsefulPrefetches == 0 {
		t.Errorf("report looks empty: %+v", rep)
	}
	if rep.Mode.String() != "dyn-pref" {
		t.Errorf("mode name = %q", rep.Mode.String())
	}
}

// Property: profiling is online — interleaving Add calls with HotStreams
// snapshots never corrupts the profile (the final analysis matches a
// profile built in one shot).
func TestPropertyOnlineProfileStable(t *testing.T) {
	f := func(seed int64, cut uint8) bool {
		known := [][]Ref{mkStream(10, 12)}
		trace := syntheticTrace(known, 12, seed)
		cfg := AnalysisConfig{MinLen: 10, MaxLen: 60, MinCoverage: 0.01}

		oneShot := NewProfile()
		oneShot.AddAll(trace)
		want := oneShot.HotStreams(cfg)

		interleaved := NewProfile()
		c := int(cut) % len(trace)
		interleaved.AddAll(trace[:c])
		_ = interleaved.HotStreams(cfg) // mid-flight snapshot
		interleaved.AddAll(trace[c:])
		got := interleaved.HotStreams(cfg)

		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Heat != want[i].Heat || len(got[i].Refs) != len(want[i].Refs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
