package hotprefetch

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"hotprefetch/internal/burst"
	"hotprefetch/internal/fault"
	"hotprefetch/internal/obs"
)

// IngestPolicy selects how a ProfileShard behaves when its ring buffer is
// full — the back-pressure contract between a profiled workload and the
// profiling service. The paper's profiling is sampling-based by design
// (bursty tracing captures ~0.5% of references, §2.2), so shedding load
// under pressure degrades accuracy gracefully rather than correctness.
type IngestPolicy int

const (
	// Block makes Add spin (with scheduler yields) until ring space frees
	// up. No reference is ever lost, at the cost of stalling the producer —
	// appropriate for offline trace ingestion where completeness matters.
	Block IngestPolicy = iota

	// Drop makes Add shed the reference immediately when the ring is full,
	// counting it in the shard's dropped total. The producer never stalls —
	// appropriate for live workloads where profiling must stay off the
	// critical path.
	Drop

	// Sample degrades to 1-in-SampleInterval acceptance under sustained
	// pressure: the first full-ring rejection switches the shard into
	// degraded mode, where only every SampleInterval-th reference is even
	// attempted; the shard leaves degraded mode once a push succeeds with
	// the ring at most half full. Sheds load like Drop but keeps a uniform
	// sample flowing, which Sequitur can still compress into the hottest
	// streams.
	Sample
)

// String returns the policy name used by flags and stats output.
func (p IngestPolicy) String() string {
	switch p {
	case Block:
		return "block"
	case Drop:
		return "drop"
	case Sample:
		return "sample"
	default:
		return fmt.Sprintf("IngestPolicy(%d)", int(p))
	}
}

// ParseIngestPolicy converts a policy name ("block", "drop", "sample") to
// its IngestPolicy.
func ParseIngestPolicy(s string) (IngestPolicy, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop":
		return Drop, nil
	case "sample":
		return Sample, nil
	default:
		return 0, fmt.Errorf("hotprefetch: unknown ingest policy %q (want block, drop, or sample)", s)
	}
}

// BurstConfig configures the bursty-sampling front end ShardedProfile
// producers run ahead of the ingest policy — the paper's bursty tracing
// counter machine (§2.1–2.2) deciding, per reference, whether the profiler
// is even looking. With the paper's parameters, full-rate traffic costs one
// counter decrement per reference on the Add path (one subtraction per
// checking-phase span on the AddBatch path), only ~0.5% of awake-phase
// references reach the ring and Sequitur, and the controller alternates
// between awake and hibernating phases on its own — the self-clocked
// profile/hibernate cycle of the paper's Figure 3. Sampling is deterministic
// and happens before the ring, so the back-pressure policy sees only the
// sampled stream; shed references are counted in Stats.BurstShed.
type BurstConfig struct {
	// Enabled turns the front end on; all other fields are ignored when
	// false.
	Enabled bool

	// NCheck and NInstr set the dynamic checks spent in checking versus
	// instrumented code per burst-period (zero means the paper's 11940 and
	// 60 — a 0.5% awake sampling rate in bursts of 60 references).
	NCheck, NInstr int64

	// NAwake and NHibernate set the burst-periods per awake and hibernating
	// phase (zero means the paper's 50 and 2450 — awake 2% of the time).
	NAwake, NHibernate int64
}

// controllerConfig maps the public knobs onto the internal controller
// configuration, substituting the paper's parameters for zero fields.
func (b BurstConfig) controllerConfig() burst.Config {
	cfg := burst.PaperConfig()
	if b.NCheck > 0 {
		cfg.NCheck0 = b.NCheck
	}
	if b.NInstr > 0 {
		cfg.NInstr0 = b.NInstr
	}
	if b.NAwake > 0 {
		cfg.NAwake0 = b.NAwake
	}
	if b.NHibernate > 0 {
		cfg.NHibernate0 = b.NHibernate
	}
	return cfg
}

// Validate reports whether the burst configuration is well-formed. Zero
// counters are valid here — they mean "use the paper's value" — but the
// resolved controller configuration (after paper-default substitution) must
// have every counter positive, so a controller can never be built whose
// burst-period arithmetic divides by zero or whose exported sampling-rate
// gauges read NaN.
func (b BurstConfig) Validate() error {
	if !b.Enabled {
		return nil
	}
	if b.NCheck < 0 || b.NInstr < 0 || b.NAwake < 0 || b.NHibernate < 0 {
		return fmt.Errorf("hotprefetch: negative burst counter (nCheck %d, nInstr %d, nAwake %d, nHibernate %d)",
			b.NCheck, b.NInstr, b.NAwake, b.NHibernate)
	}
	return b.controllerConfig().Validate()
}

// ParseBurstConfig converts a flag value to a BurstConfig: "off" (or the
// empty string) disables bursty sampling, "paper" enables it with the
// paper's §4.1 parameters, and "nCheck:nInstr:nAwake:nHibernate" (four
// non-negative integers, zero meaning the paper value) sets the counters
// explicitly.
func ParseBurstConfig(s string) (BurstConfig, error) {
	switch s {
	case "", "off":
		return BurstConfig{}, nil
	case "paper":
		return BurstConfig{Enabled: true}, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 4 {
		return BurstConfig{}, fmt.Errorf("hotprefetch: bad burst config %q (want off, paper, or nCheck:nInstr:nAwake:nHibernate)", s)
	}
	vals := make([]int64, 4)
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil || v < 0 {
			return BurstConfig{}, fmt.Errorf("hotprefetch: bad burst counter %q in %q", p, s)
		}
		vals[i] = v
	}
	return BurstConfig{Enabled: true, NCheck: vals[0], NInstr: vals[1], NAwake: vals[2], NHibernate: vals[3]}, nil
}

// PrepassMode selects whether shards run the two-level ingest front end
// (sequitur.Prepass) ahead of grammar compression.
type PrepassMode int

const (
	// PrepassAuto defers the decision to the embedding context: a plain
	// ShardedProfile resolves Auto to Off, preserving the contract that a
	// one-shard profile compresses bit-identically to a single Profile; the
	// networked Service resolves Auto to On, since its hot-stream contract
	// is equivalence-after-expansion, which the front end preserves.
	PrepassAuto PrepassMode = iota

	// PrepassOn runs every shard's consumer through the front end: immediate
	// repeats collapse into O(log k) doubling rules and windows matching a
	// recently minted phrase rule are emitted as that one rule symbol, so
	// only residual novel symbols pay the digram-table epoch.
	PrepassOn

	// PrepassOff feeds batches straight to Grammar.AppendRun (the prior
	// behavior; grammars are bit-identical to sequential Append).
	PrepassOff
)

// String returns the mode name used by flags and stats output.
func (m PrepassMode) String() string {
	switch m {
	case PrepassAuto:
		return "auto"
	case PrepassOn:
		return "on"
	case PrepassOff:
		return "off"
	default:
		return fmt.Sprintf("PrepassMode(%d)", int(m))
	}
}

// PrepassConfig configures the two-level ingest front end that shards run
// ahead of Sequitur: a run-length collapser for immediate repeats plus a
// direct-mapped recent-phrase cache that replays already-minted rules.
// Grammars produced with the front end enabled are NOT bit-identical to the
// lossless path — the contract is equivalence after expansion: Snapshot
// expansion (and therefore every banked hot stream) reproduces the input
// exactly. See DESIGN.md §12.
type PrepassConfig struct {
	// Mode selects off, on, or context-resolved auto. See PrepassMode.
	Mode PrepassMode

	// Window is the phrase-cache window length in references (0 means 8,
	// clamped to at least 2). It must stay below the analysis MinLen so a
	// lone phrase rule is never itself reported as a stream.
	Window int

	// MinRun is the shortest immediate-repeat run the collapser takes over
	// (0 means 4, clamped to at least 2).
	MinRun int

	// CacheSize is the phrase-cache slot count, rounded up to a power of
	// two (0 means 1024).
	CacheSize int
}

// Validate reports whether the prepass configuration is well-formed. Zero
// fields are valid — they mean "use the default".
func (c PrepassConfig) Validate() error {
	switch c.Mode {
	case PrepassAuto, PrepassOn, PrepassOff:
	default:
		return fmt.Errorf("hotprefetch: unknown prepass mode %d", int(c.Mode))
	}
	if c.Window < 0 || c.MinRun < 0 || c.CacheSize < 0 {
		return fmt.Errorf("hotprefetch: negative prepass parameter (window %d, minRun %d, cacheSize %d)",
			c.Window, c.MinRun, c.CacheSize)
	}
	return nil
}

// ParsePrepassConfig converts a flag value to a PrepassConfig: "auto" (or
// the empty string), "off", "on", or "on:window:minRun:cacheSize" (three
// non-negative integers, zero meaning the default).
func ParsePrepassConfig(s string) (PrepassConfig, error) {
	switch s {
	case "", "auto":
		return PrepassConfig{Mode: PrepassAuto}, nil
	case "off":
		return PrepassConfig{Mode: PrepassOff}, nil
	case "on":
		return PrepassConfig{Mode: PrepassOn}, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 4 || parts[0] != "on" {
		return PrepassConfig{}, fmt.Errorf("hotprefetch: bad prepass config %q (want auto, off, on, or on:window:minRun:cacheSize)", s)
	}
	vals := make([]int, 3)
	for i, p := range parts[1:] {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return PrepassConfig{}, fmt.Errorf("hotprefetch: bad prepass parameter %q in %q", p, s)
		}
		vals[i] = v
	}
	return PrepassConfig{Mode: PrepassOn, Window: vals[0], MinRun: vals[1], CacheSize: vals[2]}, nil
}

// ErrClosed is returned by ProfileShard.Add and AddAll after the profile has
// been closed. Previously a blocked Add would spin forever against stopped
// consumers; now it fails fast.
var ErrClosed = errors.New("hotprefetch: Add on closed ShardedProfile")

// ErrFlushStalled is returned (wrapped) by ShardedProfile.Flush when a
// shard's consumer stops making progress before reaching Flush's target.
var ErrFlushStalled = errors.New("hotprefetch: flush stalled")

// ErrAnalysisPanic wraps the recovered value of a cycle-end analysis that
// panicked. The panic is contained to that one analysis: the shard keeps
// ingesting, the failure is counted in Stats, and repeated failures open
// the shard's circuit breaker.
var ErrAnalysisPanic = errors.New("hotprefetch: analysis panicked")

// ErrAnalysisTimeout is the failure recorded for a background analysis that
// exceeded ShardedConfig.AnalysisTimeout. The runaway analysis goroutine is
// abandoned (its profile is discarded, never reused) so the worker pool
// keeps draining.
var ErrAnalysisTimeout = errors.New("hotprefetch: analysis deadline exceeded")

// ErrAnalysisStalled is returned (wrapped) by HotStreamsErr when the
// background analysis pool stops making progress toward draining the
// pending cycle analyses within FlushStallTimeout.
var ErrAnalysisStalled = errors.New("hotprefetch: analysis pool stalled")

// Defaults applied by ShardedConfig.withDefaults.
const (
	defaultRingCap           = 1 << 12
	defaultSampleInterval    = 16
	defaultFlushStallTimeout = 5 * time.Second
	defaultBreakerThreshold  = 5
	defaultBreakerBackoff    = 50 * time.Millisecond
	defaultBreakerMaxBackoff = 5 * time.Second
)

// ShardedConfig configures a ShardedProfile beyond the shard count. The zero
// value (aside from Shards) reproduces NewShardedProfile's behavior: Block
// policy, 4096-slot rings, no grammar budget.
type ShardedConfig struct {
	// Shards is the number of independent profile shards (< 1 is treated
	// as 1).
	Shards int

	// Policy selects the full-ring behavior of Add. See IngestPolicy.
	Policy IngestPolicy

	// SampleInterval is the 1-in-N acceptance rate the Sample policy
	// degrades to under pressure (0 means the default of 16; meaningless
	// for other policies).
	SampleInterval int

	// RingCap is the per-shard ring capacity, rounded up to a power of two
	// (0 means the default of 4096).
	RingCap int

	// MaxGrammarSymbols, when positive, bounds each shard's Sequitur
	// grammar: a shard whose grammar reaches the budget extracts its hot
	// streams (using CycleAnalysis), retains them, and resets the grammar —
	// the paper's profile/optimize/hibernate cycle-end deallocation (§5)
	// turned into a hard per-shard memory ceiling for long-running
	// services. Zero means the grammar grows without bound.
	MaxGrammarSymbols int

	// CycleAnalysis is the analysis configuration used to extract hot
	// streams at each grammar reset. Its MaxStreams also caps the retained
	// stream set per shard. The zero value means DefaultAnalysisConfig.
	CycleAnalysis AnalysisConfig

	// FlushStallTimeout bounds how long Flush waits for a shard's consumer
	// without observing progress before giving up with ErrFlushStalled
	// (0 means the default of 5s).
	FlushStallTimeout time.Duration

	// AnalysisWorkers, when positive, pipelines grammar budget cycles: each
	// shard keeps a pre-warmed spare grammar, and hitting MaxGrammarSymbols
	// swaps it in and hands the full grammar to a pool of this many
	// background analysis workers — ingestion stalls for a pointer swap
	// instead of a full hot-stream analysis. Zero keeps cycles inline on the
	// consumer goroutine (the prior behavior). Has no effect without a
	// grammar budget.
	AnalysisWorkers int

	// AnalysisTimeout, when positive, bounds each background cycle-end
	// analysis: a job that has not finished within the deadline is recorded
	// as failed (ErrAnalysisTimeout), its runaway goroutine is abandoned
	// with its profile, and the worker moves on — a slow analysis can no
	// longer back up the pool. Zero means no deadline. Inline cycles
	// (AnalysisWorkers == 0) run on the consumer goroutine, which must
	// retain ownership of its grammar, so the deadline applies only to the
	// background pool.
	AnalysisTimeout time.Duration

	// BreakerThreshold is the number of consecutive analysis failures
	// (panics or deadline overruns) after which a shard's circuit breaker
	// opens: while open, that shard's cycles skip analysis entirely and
	// just recycle the grammar ("ingest-and-recycle"), counted in Stats as
	// skipped analyses. After a backoff the breaker half-opens and lets one
	// probe analysis through; success closes it, failure reopens it with a
	// doubled backoff. Zero means the default of 5.
	BreakerThreshold int

	// BreakerBackoff is the initial open-state backoff; each reopen doubles
	// it (with jitter) up to BreakerMaxBackoff. Zero means the defaults of
	// 50ms and 5s.
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration

	// Fault, when non-nil, is consulted at the service's fault-injection
	// points (cycle-end analysis, producer ring pushes); see internal/fault.
	// Nil — the default — disables injection entirely.
	Fault fault.Injector

	// Burst, when enabled, puts the paper's bursty-sampling counter machine
	// in front of every shard's ingest policy; see BurstConfig. Each shard
	// gets its own deterministic controller, advanced by its producer.
	Burst BurstConfig

	// Prepass configures the two-level ingest front end shard consumers run
	// ahead of Sequitur; see PrepassConfig. The zero value (Mode
	// PrepassAuto) resolves to Off for a plain ShardedProfile and to On
	// inside the networked Service.
	Prepass PrepassConfig

	// RefQuota, when positive, caps the total references this profile will
	// admit across all shards over its lifetime — the per-tenant budget the
	// networked service enforces so one tenant's volume can never grow
	// another tenant's grammars or rings. A reference over quota is shed at
	// the producer boundary (before the burst front end and the ring) and
	// counted in Stats.QuotaShed; like Drop shedding it is never an error.
	// Zero means unlimited.
	RefQuota uint64

	// Observer, when non-nil, is the observability hub the profile emits
	// phase events and latency observations into — supply one to subscribe
	// Tracers before ingestion starts or to share a hub across components.
	// Nil means the profile creates its own (observability is always on;
	// emission is allocation-free and phase-granular, so there is nothing
	// to turn off). Reach it via ShardedProfile.Observer.
	Observer *obs.Observer
}

// withDefaults returns the configuration with zero fields replaced by their
// defaults.
func (c ShardedConfig) withDefaults() ShardedConfig {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = defaultSampleInterval
	}
	if c.RingCap == 0 {
		c.RingCap = defaultRingCap
	}
	if c.CycleAnalysis == (AnalysisConfig{}) {
		c.CycleAnalysis = DefaultAnalysisConfig()
	}
	if c.FlushStallTimeout == 0 {
		c.FlushStallTimeout = defaultFlushStallTimeout
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = defaultBreakerThreshold
	}
	if c.BreakerBackoff == 0 {
		c.BreakerBackoff = defaultBreakerBackoff
	}
	if c.BreakerMaxBackoff == 0 {
		c.BreakerMaxBackoff = defaultBreakerMaxBackoff
	}
	if c.BreakerMaxBackoff < c.BreakerBackoff {
		c.BreakerMaxBackoff = c.BreakerBackoff
	}
	return c
}

// Validate reports whether the configuration is well-formed.
func (c ShardedConfig) Validate() error {
	switch c.Policy {
	case Block, Drop, Sample:
	default:
		return fmt.Errorf("hotprefetch: unknown ingest policy %d", int(c.Policy))
	}
	if c.SampleInterval < 0 {
		return fmt.Errorf("hotprefetch: negative SampleInterval %d", c.SampleInterval)
	}
	if c.RingCap < 0 {
		return fmt.Errorf("hotprefetch: negative RingCap %d", c.RingCap)
	}
	if c.MaxGrammarSymbols < 0 {
		return fmt.Errorf("hotprefetch: negative MaxGrammarSymbols %d", c.MaxGrammarSymbols)
	}
	if c.MaxGrammarSymbols > 0 && c.MaxGrammarSymbols < 16 {
		return fmt.Errorf("hotprefetch: MaxGrammarSymbols %d too small to hold any stream (minimum 16)", c.MaxGrammarSymbols)
	}
	if c.FlushStallTimeout < 0 {
		return fmt.Errorf("hotprefetch: negative FlushStallTimeout %v", c.FlushStallTimeout)
	}
	if c.AnalysisWorkers < 0 {
		return fmt.Errorf("hotprefetch: negative AnalysisWorkers %d", c.AnalysisWorkers)
	}
	if c.AnalysisTimeout < 0 {
		return fmt.Errorf("hotprefetch: negative AnalysisTimeout %v", c.AnalysisTimeout)
	}
	if c.BreakerThreshold < 0 {
		return fmt.Errorf("hotprefetch: negative BreakerThreshold %d", c.BreakerThreshold)
	}
	if c.BreakerBackoff < 0 || c.BreakerMaxBackoff < 0 {
		return fmt.Errorf("hotprefetch: negative breaker backoff (%v, %v)", c.BreakerBackoff, c.BreakerMaxBackoff)
	}
	if err := c.Burst.Validate(); err != nil {
		return fmt.Errorf("Burst: %w", err)
	}
	if err := c.Prepass.Validate(); err != nil {
		return fmt.Errorf("Prepass: %w", err)
	}
	if err := c.CycleAnalysis.Validate(); err != nil {
		return fmt.Errorf("CycleAnalysis: %w", err)
	}
	return nil
}
