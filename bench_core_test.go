package hotprefetch

// Core-operation microbenchmarks for the zero-allocation hot paths: profile
// ingestion, grammar append, DFSM matching, and DFSM construction. Unlike
// bench_test.go (whole-experiment reproductions), these isolate the
// per-operation cost the paper charges against the running program, and they
// report allocations so steady-state regressions fail loudly.
//
//	go test -bench='ProfileAdd|GrammarAppend|MatcherObserve|DFSMBuild' -benchmem .
//
// Pre/post numbers for the arena + table rewrite are recorded in
// BENCH_core.json.

import (
	"math/rand"
	"testing"

	"hotprefetch/internal/sequitur"
)

// coreTrace builds a stream-rich reference trace shaped like the profiler's
// sampled bursts: 20 hot streams of 12-24 references plus ~12% noise.
func coreTrace(n int) []Ref {
	r := rand.New(rand.NewSource(7))
	var streams [][]Ref
	for s := 0; s < 20; s++ {
		st := make([]Ref, 12+r.Intn(12))
		for i := range st {
			st[i] = Ref{PC: s*100 + i, Addr: uint64(s)<<20 | uint64(i)*8}
		}
		streams = append(streams, st)
	}
	trace := make([]Ref, 0, n)
	for len(trace) < n {
		if r.Intn(8) == 0 {
			trace = append(trace, Ref{PC: 9000 + r.Intn(50), Addr: uint64(r.Intn(65536)) * 8})
		} else {
			trace = append(trace, streams[r.Intn(len(streams))]...)
		}
	}
	return trace[:n]
}

// coreStreams extracts hot streams from a profiled core trace, for the
// matcher benchmarks.
func coreStreams(tb testing.TB) []Stream {
	p := NewProfile()
	p.AddAll(coreTrace(100000))
	streams := p.HotStreams(DefaultAnalysisConfig())
	if len(streams) == 0 {
		tb.Fatal("no hot streams in benchmark trace")
	}
	return streams
}

// BenchmarkProfileAdd measures one reference through the full ingestion path:
// interning plus incremental Sequitur compression.
func BenchmarkProfileAdd(b *testing.B) {
	trace := coreTrace(1 << 16)
	p := NewProfile()
	// Warm up so the arena, digram table, and interner reach steady state.
	p.AddAll(trace)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Add(trace[i&(1<<16-1)])
	}
}

// BenchmarkGrammarAppend measures the raw Sequitur append on pre-interned
// symbols, isolating the grammar maintenance cost.
func BenchmarkGrammarAppend(b *testing.B) {
	refs := coreTrace(1 << 16)
	vals := make([]uint64, len(refs))
	for i, r := range refs {
		vals[i] = uint64(r.PC)<<32 | r.Addr&0xffffffff
	}
	g := sequitur.New()
	g.AppendAll(vals)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Append(vals[i&(1<<16-1)])
	}
}

// BenchmarkGrammarAppendRun measures the batch-aware Sequitur append on
// pre-interned symbols in runs of 256 — the burst shape the sampling front
// end delivers — isolating what AppendRun's one-epoch digram handling saves
// over BenchmarkGrammarAppend's per-symbol path.
func BenchmarkGrammarAppendRun(b *testing.B) {
	refs := coreTrace(1 << 16)
	vals := make([]uint64, len(refs))
	for i, r := range refs {
		vals[i] = uint64(r.PC)<<32 | r.Addr&0xffffffff
	}
	g := sequitur.New()
	g.AppendAll(vals)
	b.ReportAllocs()
	b.ResetTimer()
	const run = 256
	pos := 0
	for i := 0; i < b.N; i += run {
		if pos+run > len(vals) {
			pos = 0
		}
		g.AppendRun(vals[pos : pos+run])
		pos += run
	}
}

// BenchmarkMatcherObserve measures one observed reference through the
// injected-check model: the per-reference cost charged as detection overhead.
func BenchmarkMatcherObserve(b *testing.B) {
	streams := coreStreams(b)
	m, err := NewMatcher(streams, 2)
	if err != nil {
		b.Fatal(err)
	}
	trace := coreTrace(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(trace[i&(1<<14-1)])
	}
}

// BenchmarkDFSMBuild measures constructing the combined prefix-matching DFSM
// from one optimization cycle's worth of hot streams.
func BenchmarkDFSMBuild(b *testing.B) {
	streams := coreStreams(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewMatcher(streams, 2)
		if err != nil {
			b.Fatal(err)
		}
		_ = m
	}
}

// BenchmarkPredictorObserve measures one observed reference through each
// registered predictor implementation, all trained on the same hot-stream
// set — the per-reference detection cost the head-to-head harness charges
// as cycles. The DFSM sub-benchmark must stay zero-alloc: it is the default
// production detection path.
func BenchmarkPredictorObserve(b *testing.B) {
	streams := coreStreams(b)
	trace := coreTrace(1 << 14)
	for _, name := range []string{"dfsm", "markov", "stride"} {
		b.Run(name, func(b *testing.B) {
			p, err := NewPredictor(name, streams, 2)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Observe(trace[i&(1<<14-1)])
			}
		})
	}
}
