package hotprefetch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"hotprefetch/internal/ref"
	"hotprefetch/internal/tracefile"
)

// encodeTrace frames refs with the tracefile wire format, the ingest
// endpoint's body encoding.
func encodeTrace(t testing.TB, refs []ref.Ref) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tracefile.Write(&buf, refs); err != nil {
		t.Fatalf("encode trace: %v", err)
	}
	return buf.Bytes()
}

// makeRefs builds n references on a per-stream address walk so grammars see
// regular structure.
func makeRefs(stream uint64, n int) []ref.Ref {
	refs := make([]ref.Ref, n)
	for i := range refs {
		refs[i] = ref.Ref{PC: int(stream%31) + i%7, Addr: stream<<20 + uint64(i%64)*8}
	}
	return refs
}

// postTrace publishes refs under tenant/stream and returns the response.
func postTrace(t testing.TB, client *http.Client, base, tenant string, stream uint64, refs []ref.Ref) *http.Response {
	t.Helper()
	url := fmt.Sprintf("%s/ingest?tenant=%s&stream=%d", base, tenant, stream)
	resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(encodeTrace(t, refs)))
	if err != nil {
		t.Fatalf("POST /ingest: %v", err)
	}
	return resp
}

// reconcile asserts the per-tenant books balance exactly: every reference the
// ingest endpoint accepted is in exactly one shed-or-accepted bucket.
func reconcile(t *testing.T, ts TenantStats) {
	t.Helper()
	p := ts.Profile
	accounted := p.Pushed + p.Dropped + p.Sampled + p.BurstShed + p.QuotaShed
	if ts.PublishedRefs != accounted {
		t.Errorf("tenant %s: published %d != pushed %d + dropped %d + sampled %d + burst %d + quota %d = %d",
			ts.Key, ts.PublishedRefs, p.Pushed, p.Dropped, p.Sampled, p.BurstShed, p.QuotaShed, accounted)
	}
}

func TestValidTenantKey(t *testing.T) {
	for _, key := range []string{"a", "tenant-1", "svc.prod_7", "A-Z.az-09", strings.Repeat("x", 64)} {
		if !validTenantKey(key) {
			t.Errorf("validTenantKey(%q) = false, want true", key)
		}
	}
	for _, key := range []string{"", "a b", "a/b", "a\nb", "ключ", strings.Repeat("x", 65), "a$"} {
		if validTenantKey(key) {
			t.Errorf("validTenantKey(%q) = true, want false", key)
		}
	}
}

func TestServiceTenantLifecycle(t *testing.T) {
	svc, err := NewService(ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ta, err := svc.Tenant("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if ta.Key() != "alpha" || ta.Profile() == nil {
		t.Fatalf("tenant handle: key %q profile %v", ta.Key(), ta.Profile())
	}
	if again, _ := svc.Tenant("alpha"); again != ta {
		t.Fatal("second Tenant call returned a different handle")
	}
	if _, err := svc.Tenant("no spaces"); err == nil {
		t.Fatal("bad tenant key accepted")
	}
	if _, ok := svc.Lookup("beta"); ok {
		t.Fatal("Lookup materialized a tenant")
	}
	if !svc.Evict("alpha") || svc.Evict("alpha") {
		t.Fatal("Evict: want true then false")
	}
	if err := ta.sp.PublishBatch(1, []Ref{{PC: 1, Addr: 1}}); err != ErrClosed {
		t.Fatalf("publish to evicted tenant: %v, want ErrClosed", err)
	}
	svc.Close()
	svc.Close() // idempotent
	if _, err := svc.Tenant("gamma"); err != ErrServiceClosed {
		t.Fatalf("Tenant after Close: %v, want ErrServiceClosed", err)
	}
}

func TestServiceLRUEviction(t *testing.T) {
	svc, err := NewService(ServiceConfig{MaxTenants: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for _, key := range []string{"a", "b", "c"} { // c evicts a (oldest publish)
		if _, err := svc.Tenant(key); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := svc.Lookup("a"); ok {
		t.Fatal("LRU tenant survived eviction")
	}
	for _, key := range []string{"b", "c"} {
		if _, ok := svc.Lookup(key); !ok {
			t.Fatalf("tenant %q missing after eviction", key)
		}
	}
	if got := svc.Stats().Evictions; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	// Touching b makes c the LRU victim for the next insert.
	if _, err := svc.Tenant("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Tenant("d"); err != nil {
		t.Fatal(err)
	}
	if _, ok := svc.Lookup("c"); ok {
		t.Fatal("recency update did not protect b: c should be the victim")
	}
}

func TestServiceIngestHTTP(t *testing.T) {
	svc, err := NewService(ServiceConfig{MaxBodyBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	refs := makeRefs(7, 3000) // several decode chunks
	resp := postTrace(t, srv.Client(), srv.URL, "alpha", 7, refs)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("ingest: %s: %s", resp.Status, body)
	}
	var res struct {
		Tenant     string `json:"tenant"`
		Accepted   uint64 `json:"accepted"`
		TenantRefs uint64 `json:"tenant_refs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if res.Tenant != "alpha" || res.Accepted != 3000 || res.TenantRefs != 3000 {
		t.Fatalf("ingest result = %+v", res)
	}

	// Status mapping: bad key 400, bad magic 400, truncated body 400,
	// oversized body 413, unknown-tenant hot streams 404.
	for _, tc := range []struct {
		name string
		do   func() *http.Response
		want int
	}{
		{"bad tenant key", func() *http.Response {
			return postTrace(t, srv.Client(), srv.URL, "no+key", 1, refs[:1])
		}, http.StatusBadRequest},
		{"bad magic", func() *http.Response {
			resp, err := srv.Client().Post(srv.URL+"/ingest?tenant=alpha", "application/octet-stream",
				strings.NewReader("NOTATRACE"))
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusBadRequest},
		// Failure cases that may partially publish go to their own tenant so
		// alpha's books below stay exactly 3000.
		{"truncated body", func() *http.Response {
			enc := encodeTrace(t, refs[:100])
			resp, err := srv.Client().Post(srv.URL+"/ingest?tenant=beta", "application/octet-stream",
				bytes.NewReader(enc[:len(enc)/2]))
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusBadRequest},
		{"oversized body", func() *http.Response {
			return postTrace(t, srv.Client(), srv.URL, "beta", 7, makeRefs(7, 1<<16))
		}, http.StatusRequestEntityTooLarge},
		{"unknown tenant streams", func() *http.Response {
			resp, err := srv.Client().Get(srv.URL + "/hotstreams?tenant=nobody")
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusNotFound},
	} {
		resp := tc.do()
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// The accepted publish is still the only successful one; failed decodes
	// are counted, and every tenant's books balance — including beta's, whose
	// failed requests partially published before dying.
	st := svc.Stats()
	if st.Publishes != 1 {
		t.Fatalf("service publishes = %d, want 1", st.Publishes)
	}
	if st.DecodeErrors < 3 || st.Rejected != 1 {
		t.Fatalf("decode errors %d (want >= 3), rejected %d (want 1)", st.DecodeErrors, st.Rejected)
	}
	for _, ts := range st.Tenants {
		reconcile(t, ts)
		if ts.Key == "alpha" && ts.PublishedRefs != 3000 {
			t.Fatalf("alpha published %d refs, want exactly 3000", ts.PublishedRefs)
		}
	}

	resp, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"hotprefetch_service_tenants",
		"hotprefetch_service_published_refs_total",
		`hotprefetch_tenant_published_refs_total{tenant="alpha"} 3000`,
		`hotprefetch_tenant_refs_pushed_total{tenant="alpha"}`,
	} {
		if !strings.Contains(string(metrics), series) {
			t.Errorf("metrics exposition missing %q", series)
		}
	}
}

func TestServiceHotStreamsEndpoint(t *testing.T) {
	svc, err := NewService(ServiceConfig{
		Tenant: ShardedConfig{
			MaxGrammarSymbols: 64,
			CycleAnalysis:     AnalysisConfig{MinLen: 4, MaxLen: 64, MinCoverage: 0.05},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// A hot 12-ref stream interleaved with fresh cold references: the
	// repetition gives the stream heat, the cold refs grow the grammar past
	// its 64-symbol budget so cycles run and bank the stream.
	hot := make([]ref.Ref, 12)
	for i := range hot {
		hot[i] = ref.Ref{PC: 500 + i, Addr: uint64(0x4000 + 8*i)}
	}
	refs := make([]ref.Ref, 0, 9000)
	for r := 0; len(refs) < 9000; r++ {
		refs = append(refs, hot...)
		refs = append(refs, ref.Ref{PC: 77000, Addr: uint64(0xbeef0000 + 64*r)})
	}
	resp := postTrace(t, srv.Client(), srv.URL, "alpha", 1, refs)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s", resp.Status)
	}
	// Drain so the banked streams are visible; the endpoint reads live.
	ta, _ := svc.Lookup("alpha")
	if err := ta.Profile().Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err = srv.Client().Get(srv.URL + "/hotstreams?tenant=alpha&top=5")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Tenant  string `json:"tenant"`
		Streams []struct {
			Refs []Ref  `json:"refs"`
			Heat uint64 `json:"heat"`
		} `json:"streams"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.Tenant != "alpha" || len(out.Streams) == 0 {
		t.Fatalf("hot streams response: tenant %q, %d streams (want some)", out.Tenant, len(out.Streams))
	}
	if len(out.Streams) > 5 {
		t.Fatalf("top=5 returned %d streams", len(out.Streams))
	}
	for _, s := range out.Streams {
		if len(s.Refs) < 2 || s.Heat == 0 {
			t.Fatalf("degenerate banked stream %+v", s)
		}
	}
}

// TestServiceQuotaIsolation pins the per-tenant quota contract: a tenant
// blowing through its RefQuota sheds its own overflow exactly, and a sibling
// tenant on the same service sheds nothing.
func TestServiceQuotaIsolation(t *testing.T) {
	const quota = 5_000
	svc, err := NewService(ServiceConfig{
		Tenant: ShardedConfig{RefQuota: quota},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	greedy := makeRefs(1, 20_000)
	modest := makeRefs(2, 1_000)
	resp := postTrace(t, srv.Client(), srv.URL, "greedy", 1, greedy)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp = postTrace(t, srv.Client(), srv.URL, "modest", 2, modest)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	st := svc.Stats()
	for _, ts := range st.Tenants {
		reconcile(t, ts)
		switch ts.Key {
		case "greedy":
			if ts.Profile.QuotaShed != 20_000-quota {
				t.Errorf("greedy quota shed = %d, want %d", ts.Profile.QuotaShed, 20_000-quota)
			}
			if ts.Profile.Pushed != quota {
				t.Errorf("greedy pushed = %d, want %d", ts.Profile.Pushed, quota)
			}
		case "modest":
			if ts.Profile.QuotaShed != 0 {
				t.Errorf("modest shed %d refs to a sibling's quota pressure", ts.Profile.QuotaShed)
			}
			if ts.Profile.Pushed != 1_000 {
				t.Errorf("modest pushed = %d, want 1000", ts.Profile.Pushed)
			}
		}
	}
}

// TestServiceTenantIsolationConcurrent drives concurrent clients on distinct
// tenants through the HTTP ingest path and demands exact per-tenant books:
// under the Block policy nothing sheds, so every tenant's pushed count must
// equal exactly what its own clients produced — cross-tenant bleed of even
// one reference fails the reconciliation.
func TestServiceTenantIsolationConcurrent(t *testing.T) {
	const (
		tenants          = 16
		clientsPerTenant = 8
		batches          = 4
		batchRefs        = 500
	)
	svc, err := NewService(ServiceConfig{MaxTenants: tenants})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		for ci := 0; ci < clientsPerTenant; ci++ {
			wg.Add(1)
			go func(ti, ci int) {
				defer wg.Done()
				tenant := fmt.Sprintf("tenant-%02d", ti)
				stream := uint64(ti*1000 + ci)
				for b := 0; b < batches; b++ {
					resp := postTrace(t, srv.Client(), srv.URL, tenant, stream, makeRefs(stream, batchRefs))
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("tenant %s client %d: %s", tenant, ci, resp.Status)
						return
					}
				}
			}(ti, ci)
		}
	}
	wg.Wait()

	const perTenant = clientsPerTenant * batches * batchRefs
	st := svc.Stats()
	if st.TenantCount != tenants {
		t.Fatalf("tenant count = %d, want %d", st.TenantCount, tenants)
	}
	for _, ts := range st.Tenants {
		reconcile(t, ts)
		if ts.PublishedRefs != perTenant {
			t.Errorf("tenant %s published %d refs, want exactly %d", ts.Key, ts.PublishedRefs, perTenant)
		}
		if p := ts.Profile; p.Pushed != perTenant || p.Dropped+p.Sampled+p.BurstShed+p.QuotaShed != 0 {
			t.Errorf("tenant %s books: pushed %d shed %d, want %d / 0 under Block",
				ts.Key, p.Pushed, p.Dropped+p.Sampled+p.BurstShed+p.QuotaShed, perTenant)
		}
	}
	if st.PublishedRefs != tenants*perTenant {
		t.Errorf("service published %d, want %d", st.PublishedRefs, tenants*perTenant)
	}
}

// TestServiceEvictionRacesPublish hammers a deliberately tiny registry so
// publishes race LRU evictions: every response must be a clean 200 or a 410
// (evicted mid-publish), the service-level books must cover exactly the 200s,
// and Close must reap every async eviction close without leaking.
func TestServiceEvictionRacesPublish(t *testing.T) {
	const (
		keys    = 16
		clients = 32
		rounds  = 6
	)
	svc, err := NewService(ServiceConfig{MaxTenants: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	var ok200, gone410 atomic.Uint64
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				tenant := fmt.Sprintf("churn-%02d", (ci+r)%keys)
				resp := postTrace(t, srv.Client(), srv.URL, tenant, uint64(ci), makeRefs(uint64(ci), 200))
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusGone:
					gone410.Add(1)
				default:
					t.Errorf("unexpected status %s", resp.Status)
				}
			}
		}(ci)
	}
	wg.Wait()
	if ok200.Load() == 0 {
		t.Fatal("no publish succeeded under churn")
	}
	st := svc.Stats()
	if st.Evictions == 0 {
		t.Fatal("registry churn produced no evictions (test lost its race shape)")
	}
	if st.Publishes != ok200.Load() {
		t.Errorf("service publishes %d != 200-responses %d", st.Publishes, ok200.Load())
	}
	// Surviving tenants' books still balance.
	for _, ts := range st.Tenants {
		reconcile(t, ts)
	}
	svc.Close() // waits for every async eviction close
	if got := svc.TenantCount(); got != 0 {
		t.Fatalf("tenants after Close = %d", got)
	}
	t.Logf("eviction race: %d ok, %d gone, %d evictions", ok200.Load(), gone410.Load(), st.Evictions)
}

// TestServiceLoadE2E is the acceptance load test: >= 1000 concurrent clients
// across >= 16 tenants publishing through real HTTP, with exact per-tenant
// reconciliation afterwards. Connections are pooled below the fd limit; the
// concurrency is in the 1000 client goroutines.
func TestServiceLoadE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short")
	}
	const (
		tenants   = 16
		clients   = 1000
		batchRefs = 200
		batches   = 2
	)
	svc, err := NewService(ServiceConfig{
		MaxTenants: tenants,
		Tenant:     ShardedConfig{Shards: 2, MaxGrammarSymbols: 2048, AnalysisWorkers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := &http.Client{Transport: &http.Transport{MaxConnsPerHost: 64, MaxIdleConnsPerHost: 64}}

	var wg sync.WaitGroup
	var produced [tenants]atomic.Uint64
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			ti := ci % tenants
			tenant := fmt.Sprintf("fleet-%02d", ti)
			for b := 0; b < batches; b++ {
				resp := postTrace(t, client, srv.URL, tenant, uint64(ci), makeRefs(uint64(ci), batchRefs))
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: %s", ci, resp.Status)
					return
				}
				produced[ti].Add(batchRefs)
			}
		}(ci)
	}
	wg.Wait()

	st := svc.Stats()
	if st.TenantCount != tenants {
		t.Fatalf("tenant count = %d, want %d", st.TenantCount, tenants)
	}
	var total uint64
	for _, ts := range st.Tenants {
		reconcile(t, ts)
		var ti int
		if _, err := fmt.Sscanf(ts.Key, "fleet-%d", &ti); err != nil {
			t.Fatalf("unexpected tenant %q", ts.Key)
		}
		want := produced[ti].Load()
		if ts.PublishedRefs != want {
			t.Errorf("tenant %s: published %d, clients produced %d", ts.Key, ts.PublishedRefs, want)
		}
		if ts.Profile.Pushed != want {
			t.Errorf("tenant %s: pushed %d, want %d (Block policy sheds nothing)", ts.Key, ts.Profile.Pushed, want)
		}
		total += ts.PublishedRefs
	}
	if want := uint64(clients * batches * batchRefs); total != want {
		t.Errorf("fleet total %d refs, want %d", total, want)
	}
	t.Logf("load: %d clients x %d batches x %d refs across %d tenants, %d refs ingested",
		clients, batches, batchRefs, tenants, total)
}

// TestServiceMetricsCardinalityBound pins the label-cardinality contract:
// with more tenants than MetricsTenants, only the busiest get their own
// series and the rest alias tenant="_other" — including any real tenant
// named "_other".
func TestServiceMetricsCardinalityBound(t *testing.T) {
	svc, err := NewService(ServiceConfig{MetricsTenants: 2, MaxTenants: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Publish volumes: big > mid > the tail (small, _other).
	for _, pub := range []struct {
		key string
		n   int
	}{{"big", 3000}, {"mid", 2000}, {"small", 500}, {"_other", 400}} {
		resp := postTrace(t, srv.Client(), srv.URL, pub.key, 1, makeRefs(1, pub.n))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("publish %s: %s", pub.key, resp.Status)
		}
	}
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(metrics)
	for _, want := range []string{
		`hotprefetch_tenant_published_refs_total{tenant="big"} 3000`,
		`hotprefetch_tenant_published_refs_total{tenant="mid"} 2000`,
		`hotprefetch_tenant_published_refs_total{tenant="_other"} 900`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(text, `tenant="small"`) {
		t.Error("tail tenant got its own label series despite the cardinality bound")
	}
}

// TestServicePredictorSelection pins the deployment-level predictor choice:
// the default resolves to the DFSM, an explicit registered name is accepted
// and surfaced through Stats (and thus GET /stats), and an unregistered
// name is rejected at construction.
func TestServicePredictorSelection(t *testing.T) {
	svc, err := NewService(ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Stats().Predictor; got != DefaultPredictor {
		t.Fatalf("default Stats.Predictor = %q, want %q", got, DefaultPredictor)
	}
	svc.Close()

	svc, err = NewService(ServiceConfig{Predictor: "markov"})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	st := svc.Stats()
	if st.Predictor != "markov" {
		t.Fatalf("Stats.Predictor = %q, want %q", st.Predictor, "markov")
	}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["predictor"] != "markov" {
		t.Fatalf("stats JSON predictor = %v, want %q", decoded["predictor"], "markov")
	}

	if _, err := NewService(ServiceConfig{Predictor: "no-such"}); err == nil {
		t.Fatal("unregistered ServiceConfig.Predictor accepted")
	}
}
