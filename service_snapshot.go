package hotprefetch

// Durable per-tenant snapshots: with ServiceConfig.SnapshotDir set, every
// tenant's profile is checkpointed to <dir>/<key>.snap — periodically by a
// background loop, on demand via CheckpointAll (hdsprofd's graceful drain),
// and over HTTP via POST/GET /snapshot. Tenant keys are already
// filesystem-safe ([A-Za-z0-9._-], bounded length), so the key maps to the
// file name directly.
//
// Checkpoints are crash-safe: each write goes to a temp file in the same
// directory, is fsynced, and renamed over the target, so a crash at any
// instant leaves either the old snapshot or the new one — never a torn
// file. A writer also refuses to overwrite a file whose header carries a
// generation at or above the one it is about to write (another instance
// owns it), failing with ErrSnapshotGeneration instead.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hotprefetch/internal/snapshot"
)

// snapshotExt is the per-tenant snapshot file suffix under SnapshotDir.
const snapshotExt = ".snap"

// ErrSnapshotGeneration is returned by CheckpointAll (and counted in
// ServiceStats.SnapshotRefused) when an existing snapshot file carries a
// generation at or above the one about to be written: a newer writer owns
// the file, and clobbering it would roll the durable profile backwards.
var ErrSnapshotGeneration = errors.New("hotprefetch: existing snapshot has a newer generation")

// snapshotPath returns the tenant's snapshot file path.
func (svc *Service) snapshotPath(key string) string {
	return filepath.Join(svc.cfg.SnapshotDir, key+snapshotExt)
}

// warmLoadLocked restores <dir>/<key>.snap into a freshly created tenant's
// profile, if the file exists. A missing file is a plain cold start; a
// corrupt or stale-format file counts a load failure (service and profile
// level) and the tenant starts cold — a bad snapshot can cost a warm start,
// never a tenant. Called with svc.mu held during tenant creation: snapshot
// loads are bounded by the format's section caps and tenant creation is
// rare, so the registry lock hold is acceptable.
func (svc *Service) warmLoadLocked(t *Tenant) {
	f, err := os.Open(svc.snapshotPath(t.key))
	if err != nil {
		return
	}
	defer f.Close()
	info, err := t.sp.RestoreSnapshot(bufio.NewReader(f))
	if err != nil {
		// The profile counted its own load failure and emitted the event;
		// mirror it at the service level.
		svc.snapLoadFails.Add(1)
		return
	}
	t.gen.Store(info.Generation)
	svc.snapLoads.Add(1)
}

// LoadSnapshots scans SnapshotDir for *.snap files and materializes a warm
// tenant for each — hdsprofd's boot-time warm start. It returns how many
// tenants restored and how many snapshot files failed to load (corrupt
// files leave their tenant registered but cold). Without a SnapshotDir it
// is a no-op.
func (svc *Service) LoadSnapshots() (loaded, failed int) {
	if svc.cfg.SnapshotDir == "" {
		return 0, 0
	}
	entries, err := os.ReadDir(svc.cfg.SnapshotDir)
	if err != nil {
		return 0, 0
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, snapshotExt) {
			continue
		}
		key := strings.TrimSuffix(name, snapshotExt)
		if !validTenantKey(key) {
			continue
		}
		before := svc.snapLoads.Load()
		// Tenant creation performs the restore (warmLoadLocked); an already
		// registered tenant was restored at its own creation.
		if _, err := svc.Tenant(key); err != nil {
			failed++
			continue
		}
		if svc.snapLoads.Load() > before {
			loaded++
		} else {
			failed++
		}
	}
	return loaded, failed
}

// CheckpointAll writes every registered tenant's snapshot, returning how
// many checkpoints landed and the join of per-tenant failures. Safe to call
// concurrently with live ingest: the encode reads only banked streams.
// Without a SnapshotDir it is a no-op.
func (svc *Service) CheckpointAll() (int, error) {
	if svc.cfg.SnapshotDir == "" {
		return 0, nil
	}
	svc.snapMu.Lock()
	defer svc.snapMu.Unlock()
	var (
		written int
		errs    []error
	)
	for _, t := range svc.snapshotTenants() {
		if err := svc.checkpointTenantLocked(t); err != nil {
			errs = append(errs, fmt.Errorf("tenant %q: %w", t.key, err))
			continue
		}
		written++
	}
	return written, errors.Join(errs...)
}

// checkpointTenantLocked writes one tenant's snapshot atomically under the
// next generation. Callers hold svc.snapMu, which serializes generation
// advancement.
func (svc *Service) checkpointTenantLocked(t *Tenant) error {
	gen := t.gen.Load() + 1
	path := svc.snapshotPath(t.key)
	// Peek the existing file's header: a generation at or above ours means
	// a newer writer owns this file — refuse rather than roll it back. An
	// unreadable or corrupt existing file is overwritten (that is the
	// recovery path for torn disks).
	if f, err := os.Open(path); err == nil {
		info, ierr := snapshot.ReadInfo(bufio.NewReader(f))
		f.Close()
		if ierr == nil && info.Generation >= gen {
			svc.snapRefused.Add(1)
			return fmt.Errorf("%w: file generation %d >= next %d", ErrSnapshotGeneration, info.Generation, gen)
		}
	}
	tmp, err := os.CreateTemp(svc.cfg.SnapshotDir, "."+t.key+".tmp-*")
	if err != nil {
		svc.snapWriteErrs.Add(1)
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	bw := bufio.NewWriter(tmp)
	if err := t.sp.WriteSnapshot(bw, gen); err != nil {
		tmp.Close()
		svc.snapWriteErrs.Add(1)
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		svc.snapWriteErrs.Add(1)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		svc.snapWriteErrs.Add(1)
		return err
	}
	if err := tmp.Close(); err != nil {
		svc.snapWriteErrs.Add(1)
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		svc.snapWriteErrs.Add(1)
		return err
	}
	t.gen.Store(gen)
	svc.snapWrites.Add(1)
	return nil
}

// checkpointLoop is the periodic checkpoint goroutine, started by
// NewService when SnapshotDir is set with a positive SnapshotInterval and
// stopped by Close.
func (svc *Service) checkpointLoop(stop <-chan struct{}) {
	defer svc.closers.Done()
	ticker := time.NewTicker(svc.cfg.SnapshotInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			// Failures are counted in the snapshot counters; the loop keeps
			// ticking (a full disk now may clear later).
			svc.CheckpointAll()
		}
	}
}

// snapshotResult is the POST /snapshot success response body.
type snapshotResult struct {
	Tenant     string `json:"tenant"`
	Generation uint64 `json:"generation"`
	Streams    int    `json:"streams"`
	Refs       int    `json:"refs"`
}

// handleSnapshotGet serves GET /snapshot?tenant=K: the tenant's current
// durable state in the snapshot wire format, at its current generation —
// a read, so the generation does not advance.
func (svc *Service) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("tenant")
	if !validTenantKey(key) {
		http.Error(w, ErrBadTenantKey.Error(), http.StatusBadRequest)
		return
	}
	t, ok := svc.Lookup(key)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown tenant %q", key), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := t.sp.WriteSnapshot(w, t.gen.Load()); err != nil {
		// Headers are out; the client sees a truncated body and its own
		// loader rejects it with a typed error. Nothing more we can do.
		svc.snapWriteErrs.Add(1)
	}
}

// handleSnapshotPost serves POST /snapshot?tenant=K: restore an uploaded
// snapshot into the tenant (creating it if absent) — the remote half of a
// warm start, for migrating a profile between service instances. A body the
// format validator rejects is a 400 with the typed error's message and the
// tenant stays as it was.
func (svc *Service) handleSnapshotPost(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("tenant")
	t, err := svc.Tenant(key)
	switch {
	case errors.Is(err, ErrBadTenantKey):
		svc.rejected.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case errors.Is(err, ErrServiceClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	body := http.MaxBytesReader(w, r.Body, svc.cfg.MaxBodyBytes)
	info, err := t.sp.RestoreSnapshot(bufio.NewReader(body))
	if err != nil {
		svc.snapLoadFails.Add(1)
		http.Error(w, err.Error(), httpDecodeStatus(err))
		return
	}
	svc.snapLoads.Add(1)
	// Adopt the snapshot's generation when it is ahead, so the next
	// checkpoint writes past it instead of being refused.
	for {
		cur := t.gen.Load()
		if info.Generation <= cur || t.gen.CompareAndSwap(cur, info.Generation) {
			break
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snapshotResult{
		Tenant:     key,
		Generation: info.Generation,
		Streams:    info.Streams,
		Refs:       info.Refs,
	})
}
