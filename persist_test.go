package hotprefetch

import (
	"bytes"
	"reflect"
	"testing"

	"hotprefetch/internal/fault"
	"hotprefetch/internal/obs"
	"hotprefetch/internal/snapshot"
)

// cycledProfile returns a profile with at least one grammar cycle banked
// from the given phase's trace.
func cycledProfile(t *testing.T, phase int) *ShardedProfile {
	t.Helper()
	sp, err := NewShardedProfileConfig(ShardedConfig{
		Shards:            1,
		MaxGrammarSymbols: 64,
		CycleAnalysis:     AnalysisConfig{MinLen: 4, MaxLen: 64, MinCoverage: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	feedUntilCycle(t, sp, phaseTrace(phase, 40), 0)
	return sp
}

// TestSnapshotRoundTripProfile: a snapshotted and restored profile reports
// bit-identical BankedStreams — words, order, and heats.
func TestSnapshotRoundTripProfile(t *testing.T) {
	src := cycledProfile(t, 1)
	defer src.Close()
	want := src.BankedStreams(0)
	if len(want) == 0 {
		t.Fatal("no banked streams to snapshot")
	}

	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf, 3); err != nil {
		t.Fatal(err)
	}
	if st := src.Stats(); st.SnapshotWrites != 1 {
		t.Fatalf("SnapshotWrites = %d, want 1", st.SnapshotWrites)
	}
	if n := src.Observer().Count(obs.KindSnapshotWritten); n != 1 {
		t.Fatalf("KindSnapshotWritten count = %d, want 1", n)
	}

	dst := NewShardedProfile(1)
	defer dst.Close()
	info, err := dst.RestoreSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 3 || info.Streams != len(want) {
		t.Fatalf("RestoreInfo = %+v, want generation 3, %d streams", info, len(want))
	}
	got := dst.BankedStreams(0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored BankedStreams diverged:\n got %+v\nwant %+v", got, want)
	}
	st := dst.Stats()
	if st.SnapshotRestores != 1 || st.RestoredStreams != len(want) || st.SnapshotGeneration != 3 {
		t.Fatalf("restore stats = restores %d, restored %d, generation %d",
			st.SnapshotRestores, st.RestoredStreams, st.SnapshotGeneration)
	}
	if n := dst.Observer().Count(obs.KindSnapshotRestored); n != 1 {
		t.Fatalf("KindSnapshotRestored count = %d, want 1", n)
	}

	// And a re-snapshot of the restored profile is byte-identical payload:
	// same streams, same order (generation differs, so compare streams).
	var buf2 bytes.Buffer
	if err := dst.WriteSnapshot(&buf2, 3); err != nil {
		t.Fatal(err)
	}
	again, err := snapshot.Read(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Streams) != len(want) {
		t.Fatalf("re-snapshot has %d streams, want %d", len(again.Streams), len(want))
	}
}

// TestSnapshotRestoreFailureColdFallback: a corrupt snapshot load returns
// the loader's typed error, counts a load failure, emits the tracer event,
// and leaves the profile cold and fully usable.
func TestSnapshotRestoreFailureColdFallback(t *testing.T) {
	src := cycledProfile(t, 1)
	defer src.Close()
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf, 1); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	enc[len(enc)/2] ^= 0x40

	sp := NewShardedProfile(1)
	defer sp.Close()
	if _, err := sp.RestoreSnapshot(bytes.NewReader(enc)); !snapshot.IsFormatError(err) {
		t.Fatalf("corrupt restore error = %v, want a format error", err)
	}
	st := sp.Stats()
	if st.SnapshotLoadFailures != 1 || st.RestoredStreams != 0 || st.SnapshotRestores != 0 {
		t.Fatalf("failure stats = %+v", st)
	}
	if n := sp.Observer().Count(obs.KindSnapshotLoadFailed); n != 1 {
		t.Fatalf("KindSnapshotLoadFailed count = %d, want 1", n)
	}
	// Cold fallback: the profile still profiles from zero.
	if err := sp.Shard(0).AddAll(phaseTrace(1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := sp.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := sp.Stats().Consumed; got == 0 {
		t.Fatal("profile did not ingest after failed restore")
	}
}

// warmStart snapshots src and restores it into a fresh profile + supervisor
// wired with cfg, returning both.
func warmStart(t *testing.T, src *ShardedProfile, cfg SupervisorConfig) (*ShardedProfile, *ConcurrentMatcher, *Supervisor) {
	t.Helper()
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf, 1); err != nil {
		t.Fatal(err)
	}
	sp, err := NewShardedProfileConfig(ShardedConfig{
		Shards:            1,
		MaxGrammarSymbols: 64,
		CycleAnalysis:     AnalysisConfig{MinLen: 4, MaxLen: 64, MinCoverage: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.RestoreSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	cm, err := NewConcurrentMatcher(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := Supervise(sp, cm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sp, cm, sup
}

// TestSupervisorWarmStart: a supervisor over a restored profile reaches
// Optimized immediately — no profiling period — provisionally, and one good
// live accuracy window promotes it to fully trusted.
func TestSupervisorWarmStart(t *testing.T) {
	src := cycledProfile(t, 1)
	defer src.Close()
	sp, cm, sup := warmStart(t, src, SupervisorConfig{
		AccuracyFloor:         0.5,
		MinWindowObservations: 64,
	})
	defer sp.Close()
	defer sup.Close()

	if got := sup.State(); got != StateOptimized {
		t.Fatalf("warm-start state = %v, want %v", got, StateOptimized)
	}
	if cm.NumStates() <= 1 {
		t.Fatalf("warm-start matcher has %d states, want > 1", cm.NumStates())
	}
	ss := sup.Snapshot()
	if !ss.Provisional {
		t.Fatal("warm-start optimization not marked provisional")
	}
	// The restored baseline seeds the reported accuracy until a live window
	// concludes (src never enabled tracking, so it may be zero; just check
	// the supervised run judges real traffic next).
	observeAll(cm, phaseTrace(1, 40))
	if err := sup.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := sup.State(); got != StateOptimized {
		t.Fatalf("state after healthy warm window = %v, want %v", got, StateOptimized)
	}
	if acc := sup.Accuracy(); acc < 0.5 {
		t.Fatalf("warm window accuracy = %g, want >= 0.5", acc)
	}
	if ss = sup.Snapshot(); ss.Provisional {
		t.Fatal("good window did not promote the provisional optimization")
	}
	if st := sp.Stats(); st.SnapshotStaleRejected != 0 {
		t.Fatalf("healthy warm start counted %d stale rejections", st.SnapshotStaleRejected)
	}
}

// TestSupervisorWarmStartStaleDemotion: a warm start whose accuracy windows
// come in bad is demoted to cold profiling within ProvisionalWindows — the
// restored set is dropped, the stale-rejection counter and event fire, and
// the profile re-optimizes later from live evidence only.
func TestSupervisorWarmStartStaleDemotion(t *testing.T) {
	src := cycledProfile(t, 1)
	defer src.Close()
	sp, cm, sup := warmStart(t, src, SupervisorConfig{
		AccuracyFloor:         0.5,
		MinWindowObservations: 64,
		ProvisionalWindows:    2,
		DriftOverlapFloor:     -1, // isolate the accuracy path
		Fault:                 &fault.Hooks{MatcherStaleFn: func() bool { return true }},
	})
	defer sp.Close()
	defer sup.Close()

	trace := phaseTrace(1, 40)
	for poll := 0; poll < 2; poll++ {
		observeAll(cm, trace)
		if err := sup.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	if got := sup.State(); got != StateProfiling {
		t.Fatalf("state after %d forced-stale windows = %v, want %v", 2, got, StateProfiling)
	}
	st := sp.Stats()
	if st.SnapshotStaleRejected != 1 || st.RestoredStreams != 0 {
		t.Fatalf("demotion stats: stale rejected %d, restored %d", st.SnapshotStaleRejected, st.RestoredStreams)
	}
	if n := sp.Observer().Count(obs.KindSnapshotStaleRejected); n != 1 {
		t.Fatalf("KindSnapshotStaleRejected count = %d, want 1", n)
	}
	if cm.NumStates() > 1 {
		t.Fatalf("demoted matcher still has %d states", cm.NumStates())
	}
}

// TestSupervisorWarmStartDriftDemotion: a restored profile from workload
// phase 1 against live phase-2 traffic is demoted by the overlap heuristic
// as soon as the first live cycle banks — before any accuracy window can
// accumulate (MinWindowObservations is set unreachably high).
func TestSupervisorWarmStartDriftDemotion(t *testing.T) {
	src := cycledProfile(t, 1)
	defer src.Close()
	sp, _, sup := warmStart(t, src, SupervisorConfig{
		AccuracyFloor:         0.5,
		MinWindowObservations: 1 << 40,
		DriftOverlapFloor:     0.25,
	})
	defer sp.Close()
	defer sup.Close()

	if got := sup.State(); got != StateOptimized {
		t.Fatalf("warm-start state = %v, want %v", got, StateOptimized)
	}
	// Drive a drifted workload until a live cycle banks, then poll.
	feedUntilCycle(t, sp, phaseTrace(2, 40), sp.Stats().Resets)
	if err := sup.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := sup.State(); got != StateProfiling {
		t.Fatalf("state after drifted cycle = %v, want %v", got, StateProfiling)
	}
	st := sp.Stats()
	if st.SnapshotStaleRejected != 1 || st.RestoredStreams != 0 {
		t.Fatalf("drift stats: stale rejected %d, restored %d", st.SnapshotStaleRejected, st.RestoredStreams)
	}
}

// TestSupervisorWarmStartDriftOverlapHolds: same-workload live cycles
// overlap the restored set, so the drift check passes and the warm start
// survives it.
func TestSupervisorWarmStartDriftOverlapHolds(t *testing.T) {
	src := cycledProfile(t, 1)
	defer src.Close()
	sp, _, sup := warmStart(t, src, SupervisorConfig{
		AccuracyFloor:         0.5,
		MinWindowObservations: 1 << 40,
		DriftOverlapFloor:     0.25,
	})
	defer sp.Close()
	defer sup.Close()

	feedUntilCycle(t, sp, phaseTrace(1, 40), sp.Stats().Resets)
	if err := sup.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := sup.State(); got != StateOptimized {
		t.Fatalf("state after same-workload cycle = %v, want %v", got, StateOptimized)
	}
	if st := sp.Stats(); st.SnapshotStaleRejected != 0 {
		t.Fatalf("same-workload warm start counted %d stale rejections", st.SnapshotStaleRejected)
	}
}

func TestStreamOverlap(t *testing.T) {
	a := []Stream{{Refs: []Ref{{PC: 1, Addr: 2}}, Heat: 10}, {Refs: []Ref{{PC: 3, Addr: 4}}, Heat: 5}}
	b := []Stream{{Refs: []Ref{{PC: 1, Addr: 2}}, Heat: 99}}
	if got := streamOverlap(a, b); got != 1 {
		t.Fatalf("contained overlap = %g, want 1", got)
	}
	c := []Stream{{Refs: []Ref{{PC: 9, Addr: 9}}, Heat: 1}}
	if got := streamOverlap(a, c); got != 0 {
		t.Fatalf("disjoint overlap = %g, want 0", got)
	}
	if got := streamOverlap(nil, a); got != 0 {
		t.Fatalf("empty overlap = %g, want 0", got)
	}
}
