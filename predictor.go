package hotprefetch

import (
	"fmt"
	"sort"
	"sync"

	"hotprefetch/internal/markov"
	"hotprefetch/internal/ref"
	"hotprefetch/internal/stride"
)

// Predictor is one point in the prefetch-predictor design space: it consumes
// the reference stream one observation at a time and returns the addresses
// worth prefetching plus the detection cost the observation paid (the
// DFSM's comparison count, a Markov table's probe count, a stride table's
// CAM occupancy — always >= 1).
//
// Training happens at construction (see NewPredictor): a predictor is built
// over a hot-stream set and is immutable apart from its rolling match state,
// which Reset returns to the start. Built over an empty stream set, every
// implementation must behave as pass-through — no prefetch ever, one
// comparison per observation — because that is the deoptimized state the
// Supervisor swaps in (§5).
//
// Implementations follow Matcher's contracts: not safe for concurrent use
// (wrap in ConcurrentMatcher), returned prefetch slices alias internal state
// and are valid only until the next Observe, and accuracy accounting uses
// the same FIFO-window issued/hits ledger so A/B comparisons across
// predictors measure the same thing.
type Predictor interface {
	Observe(r Ref) (prefetch []uint64, comparisons int)
	Reset()
	EnableAccuracyTracking(window int)
	AccuracyCounters() (issued, hits uint64)
}

// AccuracyBooks is optionally implemented by predictors whose accuracy
// tracker exposes its full ledger. The books balance exactly:
// issued == hits + outstanding + dropped (dropped covers FIFO evictions and
// issues coalesced with an already-outstanding address). The conformance
// and fuzz suites assert this invariant; all registered predictors
// implement it.
type AccuracyBooks interface {
	AccuracyBooks() (issued, hits, outstanding, dropped uint64)
}

// AccuracyBooks exposes the matcher's tracker ledger; see the AccuracyBooks
// interface.
func (m *Matcher) AccuracyBooks() (issued, hits, outstanding, dropped uint64) {
	return m.m.HitBooks()
}

// PredictorFactory builds a trained predictor over a hot-stream set.
// headLen is the stream head length in references (see NewMatcher);
// implementations that have no prefix/suffix split are free to ignore it.
// An empty or nil stream set must yield a pass-through predictor, not an
// error.
type PredictorFactory func(streams []Stream, headLen int) (Predictor, error)

var (
	predictorMu  sync.RWMutex
	predictorReg = make(map[string]PredictorFactory)
)

// RegisterPredictor adds a named predictor implementation to the registry.
// Registering a name twice panics: the registry is process-global and a
// silent override would re-route every service that selected the name.
// Tests registering throwaway predictors should use distinct names.
func RegisterPredictor(name string, f PredictorFactory) {
	if name == "" || f == nil {
		panic("hotprefetch: RegisterPredictor needs a name and a factory")
	}
	predictorMu.Lock()
	defer predictorMu.Unlock()
	if _, dup := predictorReg[name]; dup {
		panic(fmt.Sprintf("hotprefetch: predictor %q already registered", name))
	}
	predictorReg[name] = f
}

// NewPredictor builds a trained instance of the named predictor.
func NewPredictor(name string, streams []Stream, headLen int) (Predictor, error) {
	predictorMu.RLock()
	f := predictorReg[name]
	predictorMu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("hotprefetch: unknown predictor %q (registered: %v)",
			name, PredictorNames())
	}
	return f(streams, headLen)
}

// predictorRegistered reports whether name is in the registry.
func predictorRegistered(name string) bool {
	predictorMu.RLock()
	defer predictorMu.RUnlock()
	return predictorReg[name] != nil
}

// PredictorNames returns the registered predictor names, sorted.
func PredictorNames() []string {
	predictorMu.RLock()
	defer predictorMu.RUnlock()
	names := make([]string, 0, len(predictorReg))
	for n := range predictorReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DefaultPredictor is the registry name of the paper's DFSM prefix matcher,
// the default everywhere a predictor is selectable.
const DefaultPredictor = "dfsm"

func init() {
	RegisterPredictor(DefaultPredictor, func(streams []Stream, headLen int) (Predictor, error) {
		return NewMatcher(streams, headLen)
	})
	RegisterPredictor("markov", func(streams []Stream, headLen int) (Predictor, error) {
		p, err := markov.New(toMarkovStreams(streams), markov.Config{})
		if err != nil {
			return nil, err
		}
		return &trackedPredictor{observe: p.Observe, reset: p.Reset}, nil
	})
	RegisterPredictor("stride", func(streams []Stream, headLen int) (Predictor, error) {
		p, err := stride.New(toStrideStreams(streams), stride.Config{})
		if err != nil {
			return nil, err
		}
		return &trackedPredictor{observe: p.Observe, reset: p.Reset}, nil
	})
}

func toMarkovStreams(streams []Stream) []markov.Stream {
	out := make([]markov.Stream, len(streams))
	for i, s := range streams {
		out[i] = markov.Stream{Refs: toRefs(s.Refs), Heat: s.Heat}
	}
	return out
}

func toStrideStreams(streams []Stream) []stride.Stream {
	out := make([]stride.Stream, len(streams))
	for i, s := range streams {
		out[i] = stride.Stream{Refs: toRefs(s.Refs), Heat: s.Heat}
	}
	return out
}

func toRefs(rs []Ref) []ref.Ref {
	out := make([]ref.Ref, len(rs))
	for i, r := range rs {
		out[i] = ref.Ref{PC: r.PC, Addr: r.Addr}
	}
	return out
}

// trackedPredictor adapts an internal predictor core (markov, stride) to the
// Predictor interface, adding the same FIFO-window accuracy ledger the DFSM
// matcher keeps (see internal/dfsm's hitTracker): observation is credited
// before the core's new prefetches issue, so a reference never hits a
// prefetch triggered by itself.
type trackedPredictor struct {
	observe func(ref.Ref) ([]uint64, int)
	reset   func()
	tracker *predTracker
}

func (t *trackedPredictor) Observe(r Ref) (prefetch []uint64, comparisons int) {
	prefetch, comparisons = t.observe(ref.Ref{PC: r.PC, Addr: r.Addr})
	if t.tracker != nil {
		t.tracker.observeThenIssue(r.Addr, prefetch)
	}
	return prefetch, comparisons
}

func (t *trackedPredictor) Reset() { t.reset() }

func (t *trackedPredictor) EnableAccuracyTracking(window int) {
	if window <= 0 {
		window = 4096
	}
	t.tracker = newPredTracker(window)
}

func (t *trackedPredictor) AccuracyCounters() (issued, hits uint64) {
	if t.tracker == nil {
		return 0, 0
	}
	return t.tracker.issued, t.tracker.hits
}

func (t *trackedPredictor) AccuracyBooks() (issued, hits, outstanding, dropped uint64) {
	if t.tracker == nil {
		return 0, 0, 0, 0
	}
	tr := t.tracker
	return tr.issued, tr.hits, uint64(len(tr.set)), tr.evicted + tr.coalesced
}

// predTracker mirrors internal/dfsm's hitTracker — the conformance suite
// pins the two to identical ledger semantics so per-predictor accuracy
// numbers are comparable.
type predTracker struct {
	set       map[uint64]struct{}
	fifo      []uint64
	head      int
	issued    uint64
	hits      uint64
	evicted   uint64
	coalesced uint64
}

func newPredTracker(window int) *predTracker {
	return &predTracker{
		set:  make(map[uint64]struct{}, window),
		fifo: make([]uint64, 0, window),
	}
}

func (t *predTracker) observeThenIssue(addr uint64, issued []uint64) {
	if _, ok := t.set[addr]; ok {
		t.hits++
		delete(t.set, addr)
	}
	if len(issued) == 0 {
		return
	}
	t.issued += uint64(len(issued))
	for _, a := range issued {
		if _, ok := t.set[a]; ok {
			t.coalesced++
			continue
		}
		if len(t.fifo) < cap(t.fifo) {
			t.fifo = append(t.fifo, a)
		} else {
			if old := t.fifo[t.head]; old != a {
				if _, live := t.set[old]; live {
					delete(t.set, old)
					t.evicted++
				}
			}
			t.fifo[t.head] = a
			t.head++
			if t.head == len(t.fifo) {
				t.head = 0
			}
		}
		t.set[a] = struct{}{}
	}
}
