package hotprefetch

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hotprefetch/internal/snapshot"
)

// snapshotServiceConfig is the tenant template the snapshot tests share: a
// grammar budget so cycles bank streams worth persisting.
func snapshotServiceConfig(dir string) ServiceConfig {
	return ServiceConfig{
		Tenant: ShardedConfig{
			Shards:            1,
			MaxGrammarSymbols: 64,
			CycleAnalysis:     AnalysisConfig{MinLen: 4, MaxLen: 64, MinCoverage: 0.05},
		},
		SnapshotDir:      dir,
		SnapshotInterval: -1, // checkpoints driven explicitly by the tests
	}
}

// bankCycles publishes the phase's trace until the tenant banks a cycle.
func bankCycles(t *testing.T, svc *Service, key string, phase int) {
	t.Helper()
	tn, err := svc.Tenant(key)
	if err != nil {
		t.Fatal(err)
	}
	feedUntilCycle(t, tn.Profile(), phaseTrace(phase, 40), tn.Profile().Stats().Resets)
}

// TestServiceSnapshotCheckpointRestore: CheckpointAll writes an atomic
// per-tenant file, and a fresh service over the same directory warm-starts
// the tenant with bit-identical banked streams.
func TestServiceSnapshotCheckpointRestore(t *testing.T) {
	dir := t.TempDir()
	svc, err := NewService(snapshotServiceConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	bankCycles(t, svc, "alpha", 1)
	tn, _ := svc.Lookup("alpha")
	want := tn.Profile().BankedStreams(0)
	if len(want) == 0 {
		t.Fatal("no banked streams to checkpoint")
	}
	n, err := svc.CheckpointAll()
	if err != nil || n != 1 {
		t.Fatalf("CheckpointAll = %d, %v", n, err)
	}
	if st := svc.Stats(); st.SnapshotWrites != 1 {
		t.Fatalf("SnapshotWrites = %d, want 1", st.SnapshotWrites)
	}
	if _, err := os.Stat(filepath.Join(dir, "alpha.snap")); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name() != "alpha.snap" {
			t.Fatalf("stray file %q in snapshot dir", e.Name())
		}
	}
	svc.Close()

	svc2, err := NewService(snapshotServiceConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	loaded, failed := svc2.LoadSnapshots()
	if loaded != 1 || failed != 0 {
		t.Fatalf("LoadSnapshots = %d loaded, %d failed", loaded, failed)
	}
	tn2, ok := svc2.Lookup("alpha")
	if !ok {
		t.Fatal("warm-started tenant not registered")
	}
	got := tn2.Profile().BankedStreams(0)
	if len(got) != len(want) {
		t.Fatalf("restored %d streams, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Heat != want[i].Heat || len(got[i].Refs) != len(want[i].Refs) {
			t.Fatalf("stream %d diverged: %+v vs %+v", i, got[i], want[i])
		}
	}
	st := svc2.Stats()
	if st.SnapshotLoads != 1 || st.Tenants[0].Generation != 1 {
		t.Fatalf("warm-start stats: loads %d, generation %d", st.SnapshotLoads, st.Tenants[0].Generation)
	}
	// The next checkpoint advances past the restored generation instead of
	// being refused.
	if n, err := svc2.CheckpointAll(); n != 1 || err != nil {
		t.Fatalf("post-restore CheckpointAll = %d, %v", n, err)
	}
	if gen := svc2.Stats().Tenants[0].Generation; gen != 2 {
		t.Fatalf("post-restore generation = %d, want 2", gen)
	}
}

// TestServiceSnapshotGenerationRefusal: a checkpoint never overwrites a
// snapshot file whose header carries a newer generation — it fails with
// ErrSnapshotGeneration, counts the refusal, and leaves the file intact.
func TestServiceSnapshotGenerationRefusal(t *testing.T) {
	dir := t.TempDir()
	svc, err := NewService(snapshotServiceConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	bankCycles(t, svc, "alpha", 1)

	// Another instance owns the file at generation 99.
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, &snapshot.Profile{Generation: 99, CreatedAt: 1}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "alpha.snap")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	n, err := svc.CheckpointAll()
	if n != 0 || !errors.Is(err, ErrSnapshotGeneration) {
		t.Fatalf("CheckpointAll = %d, %v; want 0, ErrSnapshotGeneration", n, err)
	}
	if st := svc.Stats(); st.SnapshotRefused != 1 || st.SnapshotWrites != 0 {
		t.Fatalf("refusal stats: refused %d, writes %d", st.SnapshotRefused, st.SnapshotWrites)
	}
	got, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(got, buf.Bytes()) {
		t.Fatalf("refused checkpoint modified the file (err %v)", err)
	}
}

// TestServiceSnapshotCorruptFileColdStart: a corrupt snapshot file costs the
// warm start, not the tenant — creation succeeds cold, the load failure is
// counted at both service and profile level, and ingest works.
func TestServiceSnapshotCorruptFileColdStart(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "alpha.snap"), []byte("HDSSNP\x01\x00garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(snapshotServiceConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	loaded, failed := svc.LoadSnapshots()
	if loaded != 0 || failed != 1 {
		t.Fatalf("LoadSnapshots = %d loaded, %d failed", loaded, failed)
	}
	tn, ok := svc.Lookup("alpha")
	if !ok {
		t.Fatal("tenant not registered after corrupt load")
	}
	st := svc.Stats()
	if st.SnapshotLoadFailures != 1 || st.SnapshotLoads != 0 {
		t.Fatalf("corrupt-load stats: failures %d, loads %d", st.SnapshotLoadFailures, st.SnapshotLoads)
	}
	if ps := tn.Profile().Stats(); ps.SnapshotLoadFailures != 1 || ps.RestoredStreams != 0 {
		t.Fatalf("profile stats: failures %d, restored %d", ps.SnapshotLoadFailures, ps.RestoredStreams)
	}
	bankCycles(t, svc, "alpha", 1) // cold profiling still works
}

// TestServiceSnapshotHTTP: GET /snapshot round-trips a tenant's durable
// state through POST /snapshot on a second service; a corrupt POST body is
// a 400 with the loader's typed message.
func TestServiceSnapshotHTTP(t *testing.T) {
	svcA, err := NewService(snapshotServiceConfig("")) // endpoints work dirless
	if err != nil {
		t.Fatal(err)
	}
	defer svcA.Close()
	bankCycles(t, svcA, "alpha", 1)
	tnA, _ := svcA.Lookup("alpha")
	want := tnA.Profile().BankedStreams(0)

	srvA := httptest.NewServer(svcA.Handler())
	defer srvA.Close()
	resp, err := http.Get(srvA.URL + "/snapshot?tenant=alpha")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /snapshot = %d: %s", resp.StatusCode, raw)
	}
	if _, err := snapshot.Read(bytes.NewReader(raw)); err != nil {
		t.Fatalf("GET body is not a valid snapshot: %v", err)
	}

	svcB, err := NewService(snapshotServiceConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	defer svcB.Close()
	srvB := httptest.NewServer(svcB.Handler())
	defer srvB.Close()
	resp, err = http.Post(srvB.URL+"/snapshot?tenant=alpha", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var res snapshotResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || res.Streams != len(want) {
		t.Fatalf("POST /snapshot = %d, %+v; want %d streams", resp.StatusCode, res, len(want))
	}
	tnB, _ := svcB.Lookup("alpha")
	got := tnB.Profile().BankedStreams(0)
	if len(got) != len(want) {
		t.Fatalf("migrated %d streams, want %d", len(got), len(want))
	}

	// Corrupt upload: 400, typed rejection, tenant state unchanged.
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0x01
	resp, err = http.Post(srvB.URL+"/snapshot?tenant=alpha", "application/octet-stream", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt POST /snapshot = %d: %s", resp.StatusCode, msg)
	}
	if st := svcB.Stats(); st.SnapshotLoadFailures != 1 {
		t.Fatalf("corrupt POST counted %d load failures", st.SnapshotLoadFailures)
	}
	if after := tnB.Profile().BankedStreams(0); len(after) != len(got) {
		t.Fatalf("corrupt POST mutated tenant state: %d streams, want %d", len(after), len(got))
	}
}

// TestServiceSnapshotPeriodicLoop: a positive SnapshotInterval checkpoints
// tenants in the background without any explicit CheckpointAll.
func TestServiceSnapshotPeriodicLoop(t *testing.T) {
	dir := t.TempDir()
	cfg := snapshotServiceConfig(dir)
	cfg.SnapshotInterval = 10 * time.Millisecond
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bankCycles(t, svc, "alpha", 1)
	for i := 0; i < 500 && svc.Stats().SnapshotWrites == 0; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if svc.Stats().SnapshotWrites == 0 {
		t.Fatal("periodic loop wrote no checkpoint")
	}
	svc.Close() // must stop the loop without goroutine leak (chaos test verifies globally)
	if _, err := os.Stat(filepath.Join(dir, "alpha.snap")); err != nil {
		t.Fatalf("periodic checkpoint file missing: %v", err)
	}
}
