package hotprefetch

import (
	"sync"
	"sync/atomic"
)

// ConcurrentMatcher is a Matcher safe for use by multiple goroutines. The
// DFSM transition tables are immutable after construction, so the mutex only
// guards the single current-state word and the comparison accounting; the
// common case is a short critical section around an array-indexed Step.
//
// All callers share one match state — observations interleave into a single
// logical reference stream, exactly as if one goroutine called Observe with
// the merged order. To match per-thread streams independently, give each
// thread its own Matcher instead.
type ConcurrentMatcher struct {
	mu       sync.Mutex
	m        *Matcher
	observed atomic.Uint64
}

// NewConcurrentMatcher builds the prefix-matching DFSM for streams (see
// NewMatcher) and wraps it for concurrent use.
func NewConcurrentMatcher(streams []Stream, headLen int) (*ConcurrentMatcher, error) {
	m, err := NewMatcher(streams, headLen)
	if err != nil {
		return nil, err
	}
	return &ConcurrentMatcher{m: m}, nil
}

// Observe consumes one data reference; see Matcher.Observe. The returned
// prefetch slice aliases the matcher's state tables and must not be
// mutated.
func (c *ConcurrentMatcher) Observe(r Ref) (prefetch []uint64, comparisons int) {
	c.mu.Lock()
	prefetch, comparisons = c.m.Observe(r)
	c.mu.Unlock()
	c.observed.Add(1)
	return prefetch, comparisons
}

// Observations returns the number of references observed so far, for service
// stats (see ShardedProfile.AttachMatcher).
func (c *ConcurrentMatcher) Observations() uint64 { return c.observed.Load() }

// Reset returns the matcher to its start state (nothing matched).
func (c *ConcurrentMatcher) Reset() {
	c.mu.Lock()
	c.m.Reset()
	c.mu.Unlock()
}

// NumStates returns the number of DFSM states, including the start state.
func (c *ConcurrentMatcher) NumStates() int { return c.m.NumStates() }

// NumTransitions returns the number of explicit DFSM transitions.
func (c *ConcurrentMatcher) NumTransitions() int { return c.m.NumTransitions() }

// PCs returns the sorted instruction addresses needing detection code.
func (c *ConcurrentMatcher) PCs() []int { return c.m.PCs() }
