package hotprefetch

import (
	"sort"
	"sync"
	"sync/atomic"

	"hotprefetch/internal/obs"
)

// ConcurrentMatcher is a Predictor safe for use by multiple goroutines, with
// hot swapping of both the matched stream set and the predictor
// implementation behind it. Historically it wrapped only the DFSM matcher —
// the name stuck — but any registered Predictor (see RegisterPredictor) can
// be published through it; NewConcurrentMatcher installs the default DFSM.
//
// The current predictor is published through an atomic pointer: Swap builds
// the replacement entirely off to the side and installs it with one short
// lock-protected store, so Observe never waits on a retraining build and
// never sees a torn or half-compiled table — the paper's §5
// de-optimize/re-optimize transition without a stop-the-world on the
// detection path. The step mutex only guards the predictor's rolling match
// state; the common case is a short critical section around an
// array-indexed Step.
//
// All callers share one match state — observations interleave into a single
// logical reference stream, exactly as if one goroutine called Observe with
// the merged order. To match per-thread streams independently, give each
// thread its own Predictor instead.
type ConcurrentMatcher struct {
	mu       sync.Mutex // serializes stepping of the current predictor
	cur      atomic.Pointer[predEntry]
	observed atomic.Uint64
	swaps    atomic.Uint64

	// buildMu serializes Swap against concurrent Swap calls: two racing
	// retrains used to publish in either order (double-counting swaps while
	// leaving an arbitrary winner installed); the build mutex — deliberately
	// not the step lock, so Observe still never waits on a build — makes
	// publication last-writer-deterministic: each Swap's build and store are
	// atomic with respect to other Swaps.
	buildMu sync.Mutex

	// Accuracy accounting (see EnableAccuracyTracking): the live counters
	// belong to the current predictor and are read under mu; counters of
	// replaced instances accumulate per predictor name in book so totals
	// survive swaps and A/B windows attribute exactly to the
	// implementation that earned them.
	trackWindow atomic.Int64
	book        map[string]*predictorBook // guarded by mu
	issuedBase  atomic.Uint64
	hitBase     atomic.Uint64

	// obs, when set (see SetObserver), receives a KindMatcherSwap event for
	// each published retrain. AttachMatcher sets it so swaps land in the
	// same trace as the grammar cycles that triggered them.
	obs atomic.Pointer[obs.Observer]
}

// predEntry is one published predictor: the implementation, its registry
// name, and the size of the stream set it was trained on (the DFSM exposes
// real state counts; the stream count is the stats fallback for
// implementations that do not).
type predEntry struct {
	name    string
	p       Predictor
	streams int
}

// predictorBook accumulates one implementation's retired accuracy counters
// across swaps.
type predictorBook struct {
	issued, hits uint64
	swaps        uint64
}

// PredictorAccuracy is one predictor's cumulative accuracy ledger across
// every instance of it this matcher has published; see AccuracyByPredictor.
type PredictorAccuracy struct {
	Name   string `json:"name"`
	Issued uint64 `json:"issued"`
	Hits   uint64 `json:"hits"`
	Swaps  uint64 `json:"swaps"` // times an instance of this predictor was published
}

// SetObserver points the matcher's event emission at o (nil detaches).
// ShardedProfile.AttachMatcher calls this with the profile's Observer.
func (c *ConcurrentMatcher) SetObserver(o *obs.Observer) {
	c.obs.Store(o)
}

// NewConcurrentMatcher builds the prefix-matching DFSM for streams (see
// NewMatcher) and wraps it for concurrent use. An empty (or nil) stream set
// is valid and yields a pass-through machine that matches nothing — the
// deoptimized state of the paper's runtime, where detection code costs one
// failed comparison and no prefetch ever fires.
func NewConcurrentMatcher(streams []Stream, headLen int) (*ConcurrentMatcher, error) {
	return NewConcurrentPredictor(DefaultPredictor, streams, headLen)
}

// NewConcurrentPredictor builds a trained instance of the named registered
// predictor (see RegisterPredictor) and wraps it for concurrent use. The
// empty-stream-set contract matches NewConcurrentMatcher: a pass-through
// predictor that never prefetches.
func NewConcurrentPredictor(name string, streams []Stream, headLen int) (*ConcurrentMatcher, error) {
	p, err := NewPredictor(name, streams, headLen)
	if err != nil {
		return nil, err
	}
	c := &ConcurrentMatcher{book: make(map[string]*predictorBook)}
	c.cur.Store(&predEntry{name: name, p: p, streams: len(streams)})
	c.bookFor(name).swaps++
	return c, nil
}

// bookFor returns (creating if needed) the accumulated ledger for name.
// Callers hold mu, except during construction.
func (c *ConcurrentMatcher) bookFor(name string) *predictorBook {
	b := c.book[name]
	if b == nil {
		b = &predictorBook{}
		c.book[name] = b
	}
	return b
}

// Observe consumes one data reference; see Predictor. The returned prefetch
// slice aliases the predictor's state tables and must not be mutated.
//
// Observe loads the published predictor under the step lock: a concurrent
// Swap either lands before (this reference drives the new predictor from its
// start state) or after (it drove the old one, whose tables remain valid),
// but never mid-step.
func (c *ConcurrentMatcher) Observe(r Ref) (prefetch []uint64, comparisons int) {
	c.mu.Lock()
	prefetch, comparisons = c.cur.Load().p.Observe(r)
	c.mu.Unlock()
	c.observed.Add(1)
	return prefetch, comparisons
}

// Swap retrains the current predictor implementation on a new stream set;
// see SwapNamed. Swapping in an empty stream set installs the pass-through
// instance (deoptimization).
func (c *ConcurrentMatcher) Swap(streams []Stream, headLen int) error {
	return c.SwapNamed(c.cur.Load().name, streams, headLen)
}

// SwapNamed retrains the matcher, possibly changing the predictor
// implementation: it builds the named predictor for the new stream set —
// without holding the step lock, so Observe proceeds against the old
// instance throughout the build — and publishes it positioned at its start
// state. On error the current predictor is left in place. Concurrent swaps
// are serialized by a build mutex, so each retrain's build and publication
// are atomic with respect to other retrains and the swap count is exact.
func (c *ConcurrentMatcher) SwapNamed(name string, streams []Stream, headLen int) error {
	c.buildMu.Lock()
	defer c.buildMu.Unlock()
	p, err := NewPredictor(name, streams, headLen)
	if err != nil {
		return err
	}
	if w := c.trackWindow.Load(); w != 0 {
		p.EnableAccuracyTracking(int(w))
	}
	// Publish under the step lock: the old predictor's accuracy counters
	// are folded into its book in the same critical section, so no Observe
	// can bump them between the read and the store.
	c.mu.Lock()
	old := c.cur.Load()
	issued, hits := old.p.AccuracyCounters()
	b := c.bookFor(old.name)
	b.issued += issued
	b.hits += hits
	c.bookFor(name).swaps++
	c.issuedBase.Add(issued)
	c.hitBase.Add(hits)
	c.cur.Store(&predEntry{name: name, p: p, streams: len(streams)})
	c.mu.Unlock()
	c.swaps.Add(1)
	if o := c.obs.Load(); o != nil {
		// Value carries the new instance's stream count: zero marks a
		// deoptimizing swap to the pass-through predictor.
		o.Emit(obs.KindMatcherSwap, -1, uint64(len(streams)))
	}
	return nil
}

// Predictor returns the registry name of the currently published predictor
// implementation.
func (c *ConcurrentMatcher) Predictor() string { return c.cur.Load().name }

// EnableAccuracyTracking turns on prefetch accuracy accounting on the
// current predictor and every instance installed by future Swaps; see
// Matcher.EnableAccuracyTracking. window <= 0 means 4096.
func (c *ConcurrentMatcher) EnableAccuracyTracking(window int) {
	if window <= 0 {
		window = 4096
	}
	c.buildMu.Lock()
	defer c.buildMu.Unlock()
	c.trackWindow.Store(int64(window))
	c.mu.Lock()
	c.cur.Load().p.EnableAccuracyTracking(window)
	c.mu.Unlock()
}

// AccuracyCounters returns the cumulative prefetch addresses issued and hit
// across all predictors this matcher has published (swaps included). Both
// are zero until EnableAccuracyTracking.
func (c *ConcurrentMatcher) AccuracyCounters() (issued, hits uint64) {
	c.mu.Lock()
	issued, hits = c.cur.Load().p.AccuracyCounters()
	c.mu.Unlock()
	return issued + c.issuedBase.Load(), hits + c.hitBase.Load()
}

// AccuracyByPredictor splits AccuracyCounters by predictor implementation:
// each entry accumulates the issued/hit counters of every instance of that
// name published so far, the live one included. Entries are sorted by name.
// Reads fold under the step lock, so at any instant the per-predictor
// counters sum exactly to AccuracyCounters — A/B accuracy windows cannot
// cross-contaminate or lose observations at a swap boundary.
func (c *ConcurrentMatcher) AccuracyByPredictor() []PredictorAccuracy {
	c.mu.Lock()
	out := make([]PredictorAccuracy, 0, len(c.book))
	cur := c.cur.Load()
	liveIssued, liveHits := cur.p.AccuracyCounters()
	for name, b := range c.book {
		pa := PredictorAccuracy{Name: name, Issued: b.issued, Hits: b.hits, Swaps: b.swaps}
		if name == cur.name {
			pa.Issued += liveIssued
			pa.Hits += liveHits
		}
		out = append(out, pa)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Observations returns the number of references observed so far, for service
// stats (see ShardedProfile.AttachMatcher).
func (c *ConcurrentMatcher) Observations() uint64 { return c.observed.Load() }

// Swaps returns the number of Swap retrainings published so far.
func (c *ConcurrentMatcher) Swaps() uint64 { return c.swaps.Load() }

// Reset returns the matcher to its start state (nothing matched).
func (c *ConcurrentMatcher) Reset() {
	c.mu.Lock()
	c.cur.Load().p.Reset()
	c.mu.Unlock()
}

// NumStates returns the number of DFSM states, including the start state.
// For predictor implementations without a state machine it approximates:
// 1 (pass-through) when trained on no streams, stream count + 1 otherwise —
// preserving the "NumStates() > 1 means trained" test every caller uses.
func (c *ConcurrentMatcher) NumStates() int {
	e := c.cur.Load()
	if m, ok := e.p.(*Matcher); ok {
		return m.NumStates()
	}
	if e.streams == 0 {
		return 1
	}
	return e.streams + 1
}

// NumTransitions returns the number of explicit DFSM transitions (zero for
// non-DFSM predictors).
func (c *ConcurrentMatcher) NumTransitions() int {
	if m, ok := c.cur.Load().p.(*Matcher); ok {
		return m.NumTransitions()
	}
	return 0
}

// PCs returns the sorted instruction addresses needing detection code (nil
// for non-DFSM predictors, which observe every reference).
func (c *ConcurrentMatcher) PCs() []int {
	if m, ok := c.cur.Load().p.(*Matcher); ok {
		return m.PCs()
	}
	return nil
}
