package hotprefetch

import (
	"sync"
	"sync/atomic"

	"hotprefetch/internal/obs"
)

// ConcurrentMatcher is a Matcher safe for use by multiple goroutines, with
// hot swapping of the matched stream set. The DFSM transition tables are
// immutable after construction, so the step mutex only guards the single
// current-state word; the common case is a short critical section around an
// array-indexed Step.
//
// The current machine is published through an atomic pointer: Swap builds
// the replacement DFSM entirely off to the side and installs it with one
// short lock-protected store, so Observe never waits on a retraining build
// and never sees a torn or half-compiled table — the paper's §5
// de-optimize/re-optimize transition without a stop-the-world on the
// detection path.
//
// All callers share one match state — observations interleave into a single
// logical reference stream, exactly as if one goroutine called Observe with
// the merged order. To match per-thread streams independently, give each
// thread its own Matcher instead.
type ConcurrentMatcher struct {
	mu       sync.Mutex // serializes stepping of the current machine
	cur      atomic.Pointer[Matcher]
	observed atomic.Uint64
	swaps    atomic.Uint64

	// buildMu serializes Swap against concurrent Swap calls: two racing
	// retrains used to publish in either order (double-counting swaps while
	// leaving an arbitrary winner installed); the build mutex — deliberately
	// not the step lock, so Observe still never waits on a build — makes
	// publication last-writer-deterministic: each Swap's build and store are
	// atomic with respect to other Swaps.
	buildMu sync.Mutex

	// Accuracy accounting (see EnableAccuracyTracking): the live counters
	// belong to the current Matcher and are read under mu; counters of
	// replaced machines accumulate in the bases so totals survive swaps.
	trackWindow atomic.Int64
	issuedBase  atomic.Uint64
	hitBase     atomic.Uint64

	// obs, when set (see SetObserver), receives a KindMatcherSwap event for
	// each published retrain. AttachMatcher sets it so swaps land in the
	// same trace as the grammar cycles that triggered them.
	obs atomic.Pointer[obs.Observer]
}

// SetObserver points the matcher's event emission at o (nil detaches).
// ShardedProfile.AttachMatcher calls this with the profile's Observer.
func (c *ConcurrentMatcher) SetObserver(o *obs.Observer) {
	c.obs.Store(o)
}

// NewConcurrentMatcher builds the prefix-matching DFSM for streams (see
// NewMatcher) and wraps it for concurrent use. An empty (or nil) stream set
// is valid and yields a pass-through machine that matches nothing — the
// deoptimized state of the paper's runtime, where detection code costs one
// failed comparison and no prefetch ever fires.
func NewConcurrentMatcher(streams []Stream, headLen int) (*ConcurrentMatcher, error) {
	m, err := NewMatcher(streams, headLen)
	if err != nil {
		return nil, err
	}
	c := &ConcurrentMatcher{}
	c.cur.Store(m)
	return c, nil
}

// Observe consumes one data reference; see Matcher.Observe. The returned
// prefetch slice aliases the matcher's state tables and must not be
// mutated.
//
// Observe loads the published machine under the step lock: a concurrent
// Swap either lands before (this reference drives the new machine from its
// start state) or after (it drove the old machine, whose tables remain
// valid), but never mid-step.
func (c *ConcurrentMatcher) Observe(r Ref) (prefetch []uint64, comparisons int) {
	c.mu.Lock()
	prefetch, comparisons = c.cur.Load().Observe(r)
	c.mu.Unlock()
	c.observed.Add(1)
	return prefetch, comparisons
}

// Swap retrains the matcher: it builds the DFSM for the new stream set —
// without holding the step lock, so Observe proceeds against the old
// machine throughout the build — and publishes it positioned at its start
// state. On error the current machine is left in place. Concurrent Swap
// calls are serialized by a build mutex, so each retrain's build and
// publication are atomic with respect to other retrains and the swap count
// is exact. Swapping in an empty stream set installs the pass-through
// machine (deoptimization).
func (c *ConcurrentMatcher) Swap(streams []Stream, headLen int) error {
	c.buildMu.Lock()
	defer c.buildMu.Unlock()
	m, err := NewMatcher(streams, headLen)
	if err != nil {
		return err
	}
	if w := c.trackWindow.Load(); w != 0 {
		m.EnableAccuracyTracking(int(w))
	}
	// Publish under the step lock: the old machine's accuracy counters are
	// folded into the bases in the same critical section, so no Observe can
	// bump them between the read and the store.
	c.mu.Lock()
	issued, hits := c.cur.Load().AccuracyCounters()
	c.issuedBase.Add(issued)
	c.hitBase.Add(hits)
	c.cur.Store(m)
	c.mu.Unlock()
	c.swaps.Add(1)
	if o := c.obs.Load(); o != nil {
		// Value carries the new machine's stream count: zero marks a
		// deoptimizing swap to the pass-through machine.
		o.Emit(obs.KindMatcherSwap, -1, uint64(len(streams)))
	}
	return nil
}

// EnableAccuracyTracking turns on prefetch accuracy accounting on the
// current machine and every machine installed by future Swaps; see
// Matcher.EnableAccuracyTracking. window <= 0 means 4096.
func (c *ConcurrentMatcher) EnableAccuracyTracking(window int) {
	if window <= 0 {
		window = 4096
	}
	c.buildMu.Lock()
	defer c.buildMu.Unlock()
	c.trackWindow.Store(int64(window))
	c.mu.Lock()
	c.cur.Load().EnableAccuracyTracking(window)
	c.mu.Unlock()
}

// AccuracyCounters returns the cumulative prefetch addresses issued and hit
// across all machines this matcher has published (swaps included). Both are
// zero until EnableAccuracyTracking.
func (c *ConcurrentMatcher) AccuracyCounters() (issued, hits uint64) {
	c.mu.Lock()
	issued, hits = c.cur.Load().AccuracyCounters()
	c.mu.Unlock()
	return issued + c.issuedBase.Load(), hits + c.hitBase.Load()
}

// Observations returns the number of references observed so far, for service
// stats (see ShardedProfile.AttachMatcher).
func (c *ConcurrentMatcher) Observations() uint64 { return c.observed.Load() }

// Swaps returns the number of Swap retrainings published so far.
func (c *ConcurrentMatcher) Swaps() uint64 { return c.swaps.Load() }

// Reset returns the matcher to its start state (nothing matched).
func (c *ConcurrentMatcher) Reset() {
	c.mu.Lock()
	c.cur.Load().Reset()
	c.mu.Unlock()
}

// NumStates returns the number of DFSM states, including the start state.
func (c *ConcurrentMatcher) NumStates() int { return c.cur.Load().NumStates() }

// NumTransitions returns the number of explicit DFSM transitions.
func (c *ConcurrentMatcher) NumTransitions() int { return c.cur.Load().NumTransitions() }

// PCs returns the sorted instruction addresses needing detection code.
func (c *ConcurrentMatcher) PCs() []int { return c.cur.Load().PCs() }
