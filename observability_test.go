package hotprefetch

import (
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// recordingTracer appends every event under a mutex, the canonical Tracer
// for tests (emission is synchronous, so the mutex never blocks an emitter
// for long).
type recordingTracer struct {
	mu     sync.Mutex
	events []Event
}

func (r *recordingTracer) TraceEvent(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *recordingTracer) snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// TestTracerPhaseCycleSequence is the acceptance test for the event trace: a
// subscribed Tracer watches a full profile → optimize → deoptimize cycle and
// the exact ordered event sequence comes out. Cycle events (start, analyzed,
// banked) repeat once per grammar-budget cycle — how many cycles a trace
// needs is Sequitur's business — so the assertion is exact in two layers:
// the non-cycle events must be precisely the five-phase transition story,
// and every cycle must emit its three events as an uninterrupted, ordered
// triple between the profiling start and the first matcher swap.
func TestTracerPhaseCycleSequence(t *testing.T) {
	analysis := AnalysisConfig{MinLen: 4, MaxLen: 64, MinCoverage: 0.05}
	sp, err := NewShardedProfileConfig(ShardedConfig{
		Shards:            1,
		MaxGrammarSymbols: 64,
		CycleAnalysis:     analysis,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	tracer := &recordingTracer{}
	sp.Observer().Subscribe(tracer)

	cm, err := NewConcurrentMatcher(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := Supervise(sp, cm, SupervisorConfig{
		AccuracyFloor:         0.5,
		BadWindows:            1,
		MinWindowObservations: 1,
		HeadLen:               2,
		Analysis:              analysis,
		MinFreshCycles:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	// Profile phase A until a cycle banks, optimize, then hit the machine
	// with phase B traffic it cannot match: one conclusive zero-accuracy
	// window deoptimizes.
	phaseA := phaseTrace(1, 40)
	feedUntilCycle(t, sp, phaseA, 0)
	if err := sup.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := sup.State(); got != StateOptimized {
		t.Fatalf("state after banked cycle = %v, want %v", got, StateOptimized)
	}
	observeAll(cm, phaseTrace(2, 4))
	if err := sup.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := sup.State(); got != StateHibernating {
		t.Fatalf("state after stale window = %v, want %v", got, StateHibernating)
	}

	events := tracer.snapshot()
	if len(events) == 0 {
		t.Fatal("tracer received no events")
	}

	// Global ordering invariants: gapless strictly increasing Seq, monotone
	// When.
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d, want %d (gapless from 1)", i, e.Seq, i+1)
		}
		if i > 0 && e.When < events[i-1].When {
			t.Fatalf("event %d time %v precedes event %d time %v", i, e.When, i-1, events[i-1].When)
		}
	}

	// Layer 1: the phase/matcher story, exactly.
	var phases []EventKind
	for _, e := range events {
		switch e.Kind {
		case EventCycleStart, EventCycleAnalyzed, EventCycleBanked:
		default:
			phases = append(phases, e.Kind)
		}
	}
	want := []EventKind{
		EventPhaseProfiling,
		EventMatcherSwap, EventPhaseOptimized,
		EventMatcherSwap, EventPhaseHibernating,
	}
	if len(phases) != len(want) {
		t.Fatalf("phase/matcher events = %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phase/matcher event %d = %v, want %v (full: %v)", i, phases[i], want[i], phases)
		}
	}

	// Layer 2: every cycle is an uninterrupted start → analyzed → banked
	// triple, and all of them land between the profiling start and the
	// optimizing swap.
	cycles := 0
	for i := 0; i < len(events); i++ {
		if events[i].Kind != EventCycleStart {
			continue
		}
		cycles++
		if i+2 >= len(events) ||
			events[i+1].Kind != EventCycleAnalyzed ||
			events[i+2].Kind != EventCycleBanked {
			t.Fatalf("cycle at event %d is not a start/analyzed/banked triple: %v %v %v",
				i, events[i].Kind, events[i+1].Kind, events[i+2].Kind)
		}
		if events[i].Shard != 0 || events[i+1].Shard != 0 || events[i+2].Shard != 0 {
			t.Fatalf("cycle events carry shard %d %d %d, want 0",
				events[i].Shard, events[i+1].Shard, events[i+2].Shard)
		}
		if events[i+2].Value == 0 {
			t.Fatalf("cycle banked 0 streams at event %d", i+2)
		}
		i += 2
	}
	if cycles == 0 {
		t.Fatal("no grammar cycle events in the trace")
	}
	firstSwap := 0
	for i, e := range events {
		if e.Kind == EventMatcherSwap {
			firstSwap = i
			break
		}
	}
	for i := firstSwap; i < len(events); i++ {
		switch events[i].Kind {
		case EventCycleStart, EventCycleAnalyzed, EventCycleBanked:
			t.Fatalf("cycle event %v at %d after the optimizing swap at %d", events[i].Kind, i, firstSwap)
		}
	}
	if events[0].Kind != EventPhaseProfiling {
		t.Fatalf("first event = %v, want %v", events[0].Kind, EventPhaseProfiling)
	}

	// Payload spot checks: the optimizing swap carries a positive stream
	// count, the deoptimizing swap carries zero.
	if events[firstSwap].Value == 0 {
		t.Fatal("optimizing swap carries 0 streams")
	}
	var lastSwap int
	for i, e := range events {
		if e.Kind == EventMatcherSwap {
			lastSwap = i
		}
	}
	if events[lastSwap].Value != 0 {
		t.Fatalf("deoptimizing swap carries %d streams, want 0", events[lastSwap].Value)
	}

	// The judged zero-accuracy window must have landed in the ratio
	// histogram.
	st := sp.Stats()
	if st.AccuracyWindows.Count == 0 {
		t.Fatal("AccuracyWindows histogram is empty after a judged window")
	}
	if st.AnalysisLatency.Count == 0 || st.IngestStall.Count == 0 || st.FlushLatency.Count == 0 {
		t.Fatalf("latency histograms empty: analysis=%d stall=%d flush=%d",
			st.AnalysisLatency.Count, st.IngestStall.Count, st.FlushLatency.Count)
	}

	// The ring snapshot agrees with the tracer on the tail of the stream.
	ringEvents := sp.Observer().Events()
	if len(ringEvents) == 0 {
		t.Fatal("observer ring is empty")
	}
	tail := events[len(events)-len(ringEvents):]
	for i := range ringEvents {
		if ringEvents[i] != tail[i] {
			t.Fatalf("ring event %d = %+v, tracer saw %+v", i, ringEvents[i], tail[i])
		}
	}
}

// TestMetricsEndpoint locks down the Prometheus exposition: after a
// supervised run, the scrape body must carry the analysis-latency and
// ingest-stall histograms and the supervisor phase-transition counters the
// acceptance criteria name, well-formed (cumulative buckets, _sum/_count).
func TestMetricsEndpoint(t *testing.T) {
	analysis := AnalysisConfig{MinLen: 4, MaxLen: 64, MinCoverage: 0.05}
	sp, err := NewShardedProfileConfig(ShardedConfig{
		Shards:            1,
		MaxGrammarSymbols: 64,
		CycleAnalysis:     analysis,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	cm, err := NewConcurrentMatcher(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := Supervise(sp, cm, SupervisorConfig{
		BadWindows:            1,
		MinWindowObservations: 1,
		Analysis:              analysis,
		MinFreshCycles:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	feedUntilCycle(t, sp, phaseTrace(1, 40), 0)
	if err := sup.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := sup.State(); got != StateOptimized {
		t.Fatalf("state = %v, want %v", got, StateOptimized)
	}

	srv := httptest.NewServer(sp.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text exposition format 0.0.4", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		"# TYPE hotprefetch_analysis_latency_seconds histogram",
		`hotprefetch_analysis_latency_seconds_bucket{le="+Inf"}`,
		"hotprefetch_analysis_latency_seconds_sum",
		"hotprefetch_analysis_latency_seconds_count",
		"# TYPE hotprefetch_ingest_stall_seconds histogram",
		`hotprefetch_ingest_stall_seconds_bucket{le="+Inf"}`,
		"# TYPE hotprefetch_flush_duration_seconds histogram",
		"# TYPE hotprefetch_accuracy_window_ratio histogram",
		"# TYPE hotprefetch_supervisor_phase_transitions_total counter",
		`hotprefetch_supervisor_phase_transitions_total{phase="profiling"} 1`,
		`hotprefetch_supervisor_phase_transitions_total{phase="optimized"} 1`,
		`hotprefetch_supervisor_phase_transitions_total{phase="hibernating"} 0`,
		`hotprefetch_phase_events_total{kind="cycle_start"}`,
		"hotprefetch_refs_consumed_total",
		"hotprefetch_grammar_resets_total",
		"hotprefetch_matcher_swaps_total 1",
		"hotprefetch_supervisor_reoptimizations_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape body missing %q", want)
		}
	}

	// Histogram sanity: the analysis-latency count series matches Stats.
	st := sp.Stats()
	if st.AnalysisLatency.Count == 0 {
		t.Fatal("AnalysisLatency histogram empty after cycles")
	}
	wantCount := "hotprefetch_analysis_latency_seconds_count " + strconv.FormatUint(st.AnalysisLatency.Count, 10)
	if !strings.Contains(body, wantCount) {
		t.Errorf("scrape body missing %q", wantCount)
	}

	// The expvar bridge serves the same snapshot as Stats.String.
	v := sp.ExpvarVar()
	if s := v.String(); !strings.Contains(s, `"cycles_analyzed"`) || !strings.Contains(s, `"analysis_latency"`) {
		t.Errorf("expvar snapshot missing histogram fields: %s", s)
	}
}

// TestStatsInvariantUnderLoad is the satellite regression test for the
// transient snapshot invariant: with pipelined analysis racing ingestion, a
// sampler hammers Stats and every sample must satisfy
// CyclesAnalyzed + AnalysesFailed + AnalysesSkipped <= Resets — the books
// may run behind in-flight cycles but never ahead. After a drain the two
// sides must be equal.
func TestStatsInvariantUnderLoad(t *testing.T) {
	sp, err := NewShardedProfileConfig(ShardedConfig{
		Shards:            4,
		MaxGrammarSymbols: 64,
		AnalysisWorkers:   2,
		CycleAnalysis:     AnalysisConfig{MinLen: 2, MaxLen: 100, MinCoverage: 0.001, MaxStreams: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < sp.NumShards(); i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			trace := phaseTrace(shard+1, 8)
			for !stop.Load() {
				// Shift the working set every batch: identical batches
				// compress so well the grammar plateaus under its budget,
				// while novel addresses keep cycles firing.
				for j := range trace {
					trace[j].Addr += 1 << 20
				}
				if err := sp.AddBatch(shard, trace); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}

	// Sampler: every snapshot, under full load, must satisfy the invariant.
	deadline := time.Now().Add(500 * time.Millisecond)
	samples := 0
	for time.Now().Before(deadline) {
		st := sp.Stats()
		accounted := st.CyclesAnalyzed + st.AnalysesFailed + st.AnalysesSkipped
		if accounted > st.Resets {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("sample %d: CyclesAnalyzed(%d) + AnalysesFailed(%d) + AnalysesSkipped(%d) = %d > Resets(%d)",
				samples, st.CyclesAnalyzed, st.AnalysesFailed, st.AnalysesSkipped, accounted, st.Resets)
		}
		samples++
	}
	stop.Store(true)
	wg.Wait()

	// Drain: HotStreams waits out the rings and the analysis pool, after
	// which the books must balance exactly.
	sp.HotStreams(AnalysisConfig{MinLen: 2, MaxLen: 100, MinCoverage: 0.001, MaxStreams: 100})
	st := sp.Stats()
	if st.Resets == 0 {
		t.Fatal("no grammar cycles ran; the hammer exercised nothing")
	}
	if got := st.CyclesAnalyzed + st.AnalysesFailed + st.AnalysesSkipped; got != st.Resets {
		t.Fatalf("after drain: CyclesAnalyzed+Failed+Skipped = %d, want Resets = %d", got, st.Resets)
	}
	if samples < 100 {
		t.Logf("only %d invariant samples (slow machine?)", samples)
	}
}
