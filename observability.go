package hotprefetch

import (
	"expvar"
	"io"
	"net/http"

	"hotprefetch/internal/obs"
)

// The observability layer lives in internal/obs; these aliases re-export the
// types that appear in the public API (Stats snapshots, Tracer subscription)
// so importers never need to reach into an internal package.

// Observer is the observability hub a ShardedProfile emits phase events and
// latency observations into; see ShardedConfig.Observer and
// ShardedProfile.Observer.
type Observer = obs.Observer

// Event is one structured phase event; see Observer.Subscribe.
type Event = obs.Event

// EventKind identifies a phase event's type.
type EventKind = obs.Kind

// Tracer receives every phase event synchronously at emission.
type Tracer = obs.Tracer

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc = obs.TracerFunc

// HistogramSnapshot is a point-in-time copy of a latency or ratio
// distribution, carried by Stats.
type HistogramSnapshot = obs.HistogramSnapshot

// Re-exported event kinds; see the internal/obs documentation for each
// kind's Value payload.
const (
	EventPhaseProfiling   = obs.KindPhaseProfiling
	EventPhaseOptimized   = obs.KindPhaseOptimized
	EventPhaseHibernating = obs.KindPhaseHibernating
	EventCycleStart       = obs.KindCycleStart
	EventCycleAnalyzed    = obs.KindCycleAnalyzed
	EventCycleBanked      = obs.KindCycleBanked
	EventAnalysisFailed   = obs.KindAnalysisFailed
	EventAnalysisSkipped  = obs.KindAnalysisSkipped
	EventBreakerOpen      = obs.KindBreakerOpen
	EventBreakerHalfOpen  = obs.KindBreakerHalfOpen
	EventBreakerClosed    = obs.KindBreakerClosed
	EventMatcherSwap      = obs.KindMatcherSwap
	EventBurstAwake       = obs.KindBurstAwake
	EventBurstHibernate   = obs.KindBurstHibernate
)

// WriteMetrics writes the profile's metrics in Prometheus text exposition
// format (version 0.0.4): the observer's latency histograms and phase-event
// counters, plus counter and gauge series derived from a Stats snapshot.
func (sp *ShardedProfile) WriteMetrics(w io.Writer) {
	sp.obs.WritePrometheus(w)
	st := sp.Stats()
	obs.WriteCounter(w, "hotprefetch_refs_pushed_total", "References accepted into shard rings.", st.Pushed)
	obs.WriteCounter(w, "hotprefetch_refs_consumed_total", "References compressed into grammars.", st.Consumed)
	obs.WriteCounter(w, "hotprefetch_refs_dropped_total", "References shed on full rings.", st.Dropped)
	obs.WriteCounter(w, "hotprefetch_refs_sampled_out_total", "References skipped by sampling degradation.", st.Sampled)
	obs.WriteCounter(w, "hotprefetch_burst_shed_total", "References shed by the bursty-sampling front end.", st.BurstShed)
	if sp.cfg.Burst.Enabled {
		bc := sp.cfg.Burst.controllerConfig()
		obs.WriteGauge(w, "hotprefetch_burst_sampling_rate", "Configured awake-phase burst sampling rate.", bc.SamplingRate())
		obs.WriteGauge(w, "hotprefetch_burst_overall_rate", "Configured long-run sampling rate including hibernation.", bc.OverallRate())
	}
	obs.WriteCounter(w, "hotprefetch_grammar_resets_total", "Grammar budget cycles across shards.", st.Resets)
	obs.WriteCounter(w, "hotprefetch_cycles_analyzed_total", "Cycle-end analyses completed.", st.CyclesAnalyzed)
	obs.WriteCounter(w, "hotprefetch_analyses_failed_total", "Cycle-end analyses that panicked or timed out.", st.AnalysesFailed)
	obs.WriteCounter(w, "hotprefetch_analyses_skipped_total", "Cycles degraded to ingest-and-recycle by open breakers.", st.AnalysesSkipped)
	obs.WriteCounter(w, "hotprefetch_breaker_transitions_total", "Circuit-breaker state changes across shards.", st.BreakerTransitions)
	obs.WriteCounter(w, "hotprefetch_flush_stalls_total", "Lossy HotStreams calls that returned a partial merge.", st.FlushStalls)
	obs.WriteGauge(w, "hotprefetch_grammar_symbols", "Live grammar size summed across shards.", float64(st.GrammarSize))
	obs.WriteGauge(w, "hotprefetch_analysis_queue_depth", "Full grammars waiting for a background analysis worker.", float64(st.AnalysisQueueDepth))
	obs.WriteCounter(w, "hotprefetch_matcher_observations_total", "References observed by the attached matcher.", st.MatcherObservations)
	obs.WriteCounter(w, "hotprefetch_matcher_swaps_total", "Matcher retraining swaps published.", st.MatcherSwaps)
	if sup := st.Supervisor; sup != nil {
		obs.WriteGauge(w, "hotprefetch_supervisor_accuracy", "Last conclusive accuracy window's hits/issued ratio.", sup.Accuracy)
		obs.WriteGauge(w, "hotprefetch_supervisor_windows_below_floor", "Current run of consecutive bad accuracy windows.", float64(sup.WindowsBelowFloor))
		obs.WriteCounter(w, "hotprefetch_supervisor_deoptimizations_total", "Transitions out of the optimized phase.", sup.Deoptimizations)
		obs.WriteCounter(w, "hotprefetch_supervisor_reoptimizations_total", "Transitions back into the optimized phase.", sup.Reoptimizations)
		obs.WriteCounter(w, "hotprefetch_prefetches_issued_total", "Prefetch addresses issued by the matcher.", sup.PrefetchesIssued)
		obs.WriteCounter(w, "hotprefetch_prefetches_hit_total", "Issued prefetch addresses subsequently referenced.", sup.PrefetchesHit)
	}
}

// MetricsHandler returns an http.Handler serving WriteMetrics — a
// dependency-free Prometheus scrape endpoint:
//
//	http.Handle("/metrics", sp.MetricsHandler())
func (sp *ShardedProfile) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		sp.WriteMetrics(w)
	})
}

// ExpvarVar adapts the profile's Stats to expvar.Var, for publication on the
// standard debug endpoint:
//
//	expvar.Publish("hotprefetch", sp.ExpvarVar())
func (sp *ShardedProfile) ExpvarVar() expvar.Var {
	return expvar.Func(func() any { return sp.Stats() })
}
