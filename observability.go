package hotprefetch

import (
	"expvar"
	"io"
	"net/http"
	"sort"

	"hotprefetch/internal/obs"
)

// The observability layer lives in internal/obs; these aliases re-export the
// types that appear in the public API (Stats snapshots, Tracer subscription)
// so importers never need to reach into an internal package.

// Observer is the observability hub a ShardedProfile emits phase events and
// latency observations into; see ShardedConfig.Observer and
// ShardedProfile.Observer.
type Observer = obs.Observer

// Event is one structured phase event; see Observer.Subscribe.
type Event = obs.Event

// EventKind identifies a phase event's type.
type EventKind = obs.Kind

// Tracer receives every phase event synchronously at emission.
type Tracer = obs.Tracer

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc = obs.TracerFunc

// HistogramSnapshot is a point-in-time copy of a latency or ratio
// distribution, carried by Stats.
type HistogramSnapshot = obs.HistogramSnapshot

// Re-exported event kinds; see the internal/obs documentation for each
// kind's Value payload.
const (
	EventPhaseProfiling   = obs.KindPhaseProfiling
	EventPhaseOptimized   = obs.KindPhaseOptimized
	EventPhaseHibernating = obs.KindPhaseHibernating
	EventCycleStart       = obs.KindCycleStart
	EventCycleAnalyzed    = obs.KindCycleAnalyzed
	EventCycleBanked      = obs.KindCycleBanked
	EventAnalysisFailed   = obs.KindAnalysisFailed
	EventAnalysisSkipped  = obs.KindAnalysisSkipped
	EventBreakerOpen      = obs.KindBreakerOpen
	EventBreakerHalfOpen  = obs.KindBreakerHalfOpen
	EventBreakerClosed    = obs.KindBreakerClosed
	EventMatcherSwap      = obs.KindMatcherSwap
	EventBurstAwake       = obs.KindBurstAwake
	EventBurstHibernate   = obs.KindBurstHibernate

	EventSnapshotWritten       = obs.KindSnapshotWritten
	EventSnapshotRestored      = obs.KindSnapshotRestored
	EventSnapshotLoadFailed    = obs.KindSnapshotLoadFailed
	EventSnapshotStaleRejected = obs.KindSnapshotStaleRejected

	EventPredictorTrial  = obs.KindPredictorTrial
	EventPredictorWinner = obs.KindPredictorWinner
)

// WriteMetrics writes the profile's metrics in Prometheus text exposition
// format (version 0.0.4): the observer's latency histograms and phase-event
// counters, plus counter and gauge series derived from a Stats snapshot.
func (sp *ShardedProfile) WriteMetrics(w io.Writer) {
	sp.obs.WritePrometheus(w)
	st := sp.Stats()
	obs.WriteCounter(w, "hotprefetch_refs_pushed_total", "References accepted into shard rings.", st.Pushed)
	obs.WriteCounter(w, "hotprefetch_refs_consumed_total", "References compressed into grammars.", st.Consumed)
	obs.WriteCounter(w, "hotprefetch_refs_dropped_total", "References shed on full rings.", st.Dropped)
	obs.WriteCounter(w, "hotprefetch_refs_sampled_out_total", "References skipped by sampling degradation.", st.Sampled)
	obs.WriteCounter(w, "hotprefetch_burst_shed_total", "References shed by the bursty-sampling front end.", st.BurstShed)
	obs.WriteCounter(w, "hotprefetch_refs_quota_shed_total", "References shed at the producer boundary by the reference quota.", st.QuotaShed)
	obs.WriteCounter(w, "hotprefetch_prepass_collapsed_refs_total", "Consumed references absorbed by the two-level ingest front end.", st.Collapsed)
	obs.WriteCounter(w, "hotprefetch_prepass_minted_rules_total", "Phrase and doubling rules minted by the ingest front end.", st.PrepassMinted)
	if sp.cfg.Burst.Enabled {
		bc := sp.cfg.Burst.controllerConfig()
		obs.WriteGauge(w, "hotprefetch_burst_sampling_rate", "Configured awake-phase burst sampling rate.", bc.SamplingRate())
		obs.WriteGauge(w, "hotprefetch_burst_overall_rate", "Configured long-run sampling rate including hibernation.", bc.OverallRate())
	}
	obs.WriteCounter(w, "hotprefetch_grammar_resets_total", "Grammar budget cycles across shards.", st.Resets)
	obs.WriteCounter(w, "hotprefetch_cycles_analyzed_total", "Cycle-end analyses completed.", st.CyclesAnalyzed)
	obs.WriteCounter(w, "hotprefetch_analyses_failed_total", "Cycle-end analyses that panicked or timed out.", st.AnalysesFailed)
	obs.WriteCounter(w, "hotprefetch_analyses_skipped_total", "Cycles degraded to ingest-and-recycle by open breakers.", st.AnalysesSkipped)
	obs.WriteCounter(w, "hotprefetch_breaker_transitions_total", "Circuit-breaker state changes across shards.", st.BreakerTransitions)
	obs.WriteCounter(w, "hotprefetch_flush_stalls_total", "Lossy HotStreams calls that returned a partial merge.", st.FlushStalls)
	obs.WriteGauge(w, "hotprefetch_grammar_symbols", "Live grammar size summed across shards.", float64(st.GrammarSize))
	obs.WriteGauge(w, "hotprefetch_analysis_queue_depth", "Full grammars waiting for a background analysis worker.", float64(st.AnalysisQueueDepth))
	obs.WriteCounter(w, "hotprefetch_snapshot_writes_total", "Durable snapshots encoded.", st.SnapshotWrites)
	obs.WriteCounter(w, "hotprefetch_snapshot_restores_total", "Snapshots restored for warm start.", st.SnapshotRestores)
	obs.WriteCounter(w, "hotprefetch_snapshot_load_failures_total", "Snapshot loads rejected by the format validator.", st.SnapshotLoadFailures)
	obs.WriteCounter(w, "hotprefetch_snapshot_stale_rejected_total", "Restored snapshots demoted as stale by the supervisor.", st.SnapshotStaleRejected)
	obs.WriteGauge(w, "hotprefetch_restored_streams", "Warm-start streams currently merged into the banked set.", float64(st.RestoredStreams))
	obs.WriteCounter(w, "hotprefetch_matcher_observations_total", "References observed by the attached matcher.", st.MatcherObservations)
	obs.WriteCounter(w, "hotprefetch_matcher_swaps_total", "Matcher retraining swaps published.", st.MatcherSwaps)
	if len(st.Predictors) > 0 {
		issued := make(map[string]uint64, len(st.Predictors))
		hits := make(map[string]uint64, len(st.Predictors))
		swaps := make(map[string]uint64, len(st.Predictors))
		for _, pa := range st.Predictors {
			issued[pa.Name] = pa.Issued
			hits[pa.Name] = pa.Hits
			swaps[pa.Name] = pa.Swaps
		}
		obs.WriteCounterVec(w, "hotprefetch_predictor_prefetches_issued_total",
			"Prefetch addresses issued, by predictor implementation.", "predictor", issued)
		obs.WriteCounterVec(w, "hotprefetch_predictor_prefetches_hit_total",
			"Issued prefetch addresses subsequently referenced, by predictor implementation.", "predictor", hits)
		obs.WriteCounterVec(w, "hotprefetch_predictor_swaps_total",
			"Predictor instances published, by implementation.", "predictor", swaps)
	}
	if sup := st.Supervisor; sup != nil {
		obs.WriteGauge(w, "hotprefetch_supervisor_accuracy", "Last conclusive accuracy window's hits/issued ratio.", sup.Accuracy)
		obs.WriteGauge(w, "hotprefetch_supervisor_windows_below_floor", "Current run of consecutive bad accuracy windows.", float64(sup.WindowsBelowFloor))
		obs.WriteCounter(w, "hotprefetch_supervisor_deoptimizations_total", "Transitions out of the optimized phase.", sup.Deoptimizations)
		obs.WriteCounter(w, "hotprefetch_supervisor_reoptimizations_total", "Transitions back into the optimized phase.", sup.Reoptimizations)
		obs.WriteCounter(w, "hotprefetch_prefetches_issued_total", "Prefetch addresses issued by the matcher.", sup.PrefetchesIssued)
		obs.WriteCounter(w, "hotprefetch_prefetches_hit_total", "Issued prefetch addresses subsequently referenced.", sup.PrefetchesHit)
	}
}

// MetricsHandler returns an http.Handler serving WriteMetrics — a
// dependency-free Prometheus scrape endpoint:
//
//	http.Handle("/metrics", sp.MetricsHandler())
func (sp *ShardedProfile) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		sp.WriteMetrics(w)
	})
}

// ExpvarVar adapts the profile's Stats to expvar.Var, for publication on the
// standard debug endpoint:
//
//	expvar.Publish("hotprefetch", sp.ExpvarVar())
func (sp *ShardedProfile) ExpvarVar() expvar.Var {
	return expvar.Func(func() any { return sp.Stats() })
}

// otherTenantLabel aggregates tenants beyond the MetricsTenants cardinality
// bound. "_other" is a legal tenant key, so to keep the aggregate honest a
// real tenant with that exact key is always folded into it rather than ever
// labeled individually.
const otherTenantLabel = "_other"

// WriteMetrics writes the service's metrics in Prometheus text exposition
// format: registry and ingest-endpoint counters, plus per-tenant series with
// bounded label cardinality — the busiest ServiceConfig.MetricsTenants
// tenants (by published references) get their own tenant="key" series, and
// every remaining tenant is folded into tenant="_other", so scrape size is
// bounded however many tenants churn through the registry.
func (svc *Service) WriteMetrics(w io.Writer) {
	obs.WriteGauge(w, "hotprefetch_service_tenants", "Registered tenants.", float64(svc.TenantCount()))
	obs.WriteCounter(w, "hotprefetch_service_evictions_total", "Tenants evicted from the registry.", svc.evictions.Load())
	obs.WriteCounter(w, "hotprefetch_service_publishes_total", "Publish requests accepted.", svc.publishes.Load())
	obs.WriteCounter(w, "hotprefetch_service_published_refs_total", "References accepted from publish bodies.", svc.publishedRefs.Load())
	obs.WriteCounter(w, "hotprefetch_service_decode_errors_total", "Publish bodies rejected by the wire-format decoder.", svc.decodeErrors.Load())
	obs.WriteCounter(w, "hotprefetch_service_rejected_total", "Publish requests rejected before decoding (bad tenant key).", svc.rejected.Load())
	obs.WriteCounter(w, "hotprefetch_service_snapshot_loads_total", "Tenant snapshots restored for warm start.", svc.snapLoads.Load())
	obs.WriteCounter(w, "hotprefetch_service_snapshot_load_failures_total", "Tenant snapshot loads rejected by the format validator.", svc.snapLoadFails.Load())
	obs.WriteCounter(w, "hotprefetch_service_snapshot_writes_total", "Tenant checkpoints written.", svc.snapWrites.Load())
	obs.WriteCounter(w, "hotprefetch_service_snapshot_write_errors_total", "Tenant checkpoints that failed to write.", svc.snapWriteErrs.Load())
	obs.WriteCounter(w, "hotprefetch_service_snapshot_refused_total", "Checkpoints refused over a newer-generation file.", svc.snapRefused.Load())

	tenants := svc.snapshotTenants()
	// Busiest tenants first; the tail shares the _other aggregate.
	sort.Slice(tenants, func(i, j int) bool {
		pi, pj := tenants[i].published.Load(), tenants[j].published.Load()
		if pi != pj {
			return pi > pj
		}
		return tenants[i].key < tenants[j].key
	})
	type counterSeries struct {
		name, help string
		value      func(Stats, *Tenant) uint64
	}
	counters := []counterSeries{
		{"hotprefetch_tenant_published_refs_total", "References accepted from this tenant's publish bodies.",
			func(_ Stats, t *Tenant) uint64 { return t.published.Load() }},
		{"hotprefetch_tenant_refs_pushed_total", "References accepted into the tenant's shard rings.",
			func(st Stats, _ *Tenant) uint64 { return st.Pushed }},
		{"hotprefetch_tenant_refs_consumed_total", "References compressed into the tenant's grammars.",
			func(st Stats, _ *Tenant) uint64 { return st.Consumed }},
		{"hotprefetch_tenant_refs_dropped_total", "References shed on the tenant's full rings.",
			func(st Stats, _ *Tenant) uint64 { return st.Dropped }},
		{"hotprefetch_tenant_refs_sampled_out_total", "References skipped by the tenant's sampling degradation.",
			func(st Stats, _ *Tenant) uint64 { return st.Sampled }},
		{"hotprefetch_tenant_burst_shed_total", "References shed by the tenant's bursty-sampling front end.",
			func(st Stats, _ *Tenant) uint64 { return st.BurstShed }},
		{"hotprefetch_tenant_quota_shed_total", "References shed by the tenant's reference quota.",
			func(st Stats, _ *Tenant) uint64 { return st.QuotaShed }},
		{"hotprefetch_tenant_grammar_resets_total", "Grammar budget cycles across the tenant's shards.",
			func(st Stats, _ *Tenant) uint64 { return st.Resets }},
		{"hotprefetch_tenant_prepass_collapsed_refs_total", "Consumed references absorbed by the tenant's ingest front end.",
			func(st Stats, _ *Tenant) uint64 { return st.Collapsed }},
		{"hotprefetch_tenant_snapshot_load_failures_total", "Snapshot loads into this tenant rejected by the format validator.",
			func(st Stats, _ *Tenant) uint64 { return st.SnapshotLoadFailures }},
		{"hotprefetch_tenant_snapshot_stale_rejected_total", "Restored snapshots demoted as stale by this tenant's supervisor.",
			func(st Stats, _ *Tenant) uint64 { return st.SnapshotStaleRejected }},
	}
	stats := make([]Stats, len(tenants))
	for i, t := range tenants {
		stats[i] = t.sp.Stats()
	}
	labeled := svc.cfg.MetricsTenants
	label := func(i int, t *Tenant) string {
		if i < labeled && t.key != otherTenantLabel {
			return t.key
		}
		return otherTenantLabel
	}
	for _, cs := range counters {
		values := make(map[string]uint64, labeled+1)
		for i, t := range tenants {
			values[label(i, t)] += cs.value(stats[i], t)
		}
		obs.WriteCounterVec(w, cs.name, cs.help, "tenant", values)
	}
	grammar := make(map[string]float64, labeled+1)
	for i, t := range tenants {
		grammar[label(i, t)] += float64(stats[i].GrammarSize)
	}
	obs.WriteGaugeVec(w, "hotprefetch_tenant_grammar_symbols",
		"Live grammar size summed across the tenant's shards.", "tenant", grammar)
}

// MetricsHandler returns an http.Handler serving the service's WriteMetrics;
// Service.Handler mounts it at GET /metrics.
func (svc *Service) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		svc.WriteMetrics(w)
	})
}
