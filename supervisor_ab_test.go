package hotprefetch_test

// Live A/B predictor trials: the Supervisor splits accuracy windows between
// a champion and a challenger implementation over the same trained stream
// set and keeps the winner. These tests pin the two ends of that machinery:
// a genuine upset (the challenger measurably outpredicts a dud champion and
// is promoted) and a chaos run (the challenger's factory panics mid-trial
// and the supervisor demotes cleanly to pass-through with the trial ledger
// fully accounted). Both run under -race in the chaos CI job.

import (
	"testing"

	"hotprefetch"
	"hotprefetch/internal/fault"
)

// dudPredictor is a registered pass-through predictor that never prefetches:
// the weakest possible champion, so any real implementation wins the trial.
type dudPredictor struct{}

func (dudPredictor) Observe(hotprefetch.Ref) ([]uint64, int) { return nil, 1 }
func (dudPredictor) Reset()                                  {}
func (dudPredictor) EnableAccuracyTracking(int)              {}
func (dudPredictor) AccuracyCounters() (uint64, uint64)      { return 0, 0 }
func (dudPredictor) AccuracyBooks() (uint64, uint64, uint64, uint64) {
	return 0, 0, 0, 0
}

func init() {
	hotprefetch.RegisterPredictor("test-dud",
		func([]hotprefetch.Stream, int) (hotprefetch.Predictor, error) {
			return dudPredictor{}, nil
		})
	// test-boom panics when built over a trained stream set — the shape of a
	// broken implementation detonating exactly when an A/B trial hands it
	// the matcher. Built untrained (the deoptimized state) it succeeds, so
	// only the challenger-build path blows up.
	hotprefetch.RegisterPredictor("test-boom",
		func(streams []hotprefetch.Stream, _ int) (hotprefetch.Predictor, error) {
			if len(streams) > 0 {
				panic("test-boom: deliberate build panic")
			}
			return dudPredictor{}, nil
		})
}

// abTrace builds a trace dominated by one repeating hot stream, hot enough
// for the DFSM to predict with high accuracy once trained on it.
func abTrace(phase, reps int) []hotprefetch.Ref {
	stream := make([]hotprefetch.Ref, 12)
	for i := range stream {
		stream[i] = hotprefetch.Ref{PC: 1000*phase + i, Addr: uint64(0x10000*phase + 8*i)}
	}
	var trace []hotprefetch.Ref
	for r := 0; r < reps; r++ {
		trace = append(trace, stream...)
		trace = append(trace, hotprefetch.Ref{PC: 90000 + phase, Addr: uint64(0xdead0000 + 64*r)})
	}
	return trace
}

// feedCycle pushes trace repetitions through shard 0 until a fresh
// grammar-budget cycle banks past base.
func feedCycle(t *testing.T, sp *hotprefetch.ShardedProfile, trace []hotprefetch.Ref, base uint64) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if err := sp.Shard(0).AddAll(trace); err != nil {
			t.Fatal(err)
		}
		if err := sp.Flush(); err != nil {
			t.Fatal(err)
		}
		if sp.Stats().Resets > base {
			return
		}
	}
	t.Fatalf("no grammar cycle banked past %d", base)
}

// TestSupervisorABWinnerSelection runs a full A/B trial where the champion
// is a dud (never prefetches, accuracy 0) and the challenger is the real
// DFSM: after the champion serves its windows the supervisor hands the
// matcher to the challenger on the same stream set, and at conclusion the
// strictly-higher mean accuracy promotes the challenger for good — observed
// live through Snapshot, the matcher's published name, the per-predictor
// ledgers, and the emitted trial/winner events.
func TestSupervisorABWinnerSelection(t *testing.T) {
	analysis := hotprefetch.AnalysisConfig{MinLen: 4, MaxLen: 64, MinCoverage: 0.05}
	sp, err := hotprefetch.NewShardedProfileConfig(hotprefetch.ShardedConfig{
		Shards:            1,
		MaxGrammarSymbols: 64,
		CycleAnalysis:     analysis,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	cm, err := hotprefetch.NewConcurrentPredictor("test-dud", nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := hotprefetch.Supervise(sp, cm, hotprefetch.SupervisorConfig{
		Predictor:             "test-dud",
		ABTest:                "dfsm",
		ABWindows:             2,
		AccuracyFloor:         0.5,
		BadWindows:            100, // the dud's bad windows must not deoptimize mid-trial
		MinWindowObservations: 64,
		HeadLen:               2,
		Analysis:              analysis,
		MinFreshCycles:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	trace := abTrace(1, 40)
	feedCycle(t, sp, trace, 0)
	if err := sup.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := sup.State(); got != hotprefetch.StateOptimized {
		t.Fatalf("state after banked cycle = %v, want %v", got, hotprefetch.StateOptimized)
	}
	if got := cm.Predictor(); got != "test-dud" {
		t.Fatalf("champion arm runs first: predictor = %q, want %q", got, "test-dud")
	}
	snap := sup.Snapshot()
	if !snap.ABActive || snap.ABChampion != "test-dud" || snap.ABChallenger != "dfsm" {
		t.Fatalf("trial not open as configured: %+v", snap)
	}
	if got := sp.Observer().Count(hotprefetch.EventPredictorTrial); got != 1 {
		t.Fatalf("predictor_trial events = %d, want 1", got)
	}

	// Champion windows: the dud sees traffic, issues nothing, scores 0.
	for poll := 1; poll <= 2; poll++ {
		for _, r := range trace {
			cm.Observe(r)
		}
		if err := sup.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	// Both champion windows served; the matcher now belongs to the
	// challenger on the same stream set.
	snap = sup.Snapshot()
	if snap.ABChampionWindows != 2 || snap.ABChallengerWindows != 0 {
		t.Fatalf("windows after champion arm = (%d, %d), want (2, 0)",
			snap.ABChampionWindows, snap.ABChallengerWindows)
	}
	if snap.ABChampionAccuracy != 0 {
		t.Fatalf("dud champion accuracy = %g, want 0", snap.ABChampionAccuracy)
	}
	if got := cm.Predictor(); got != "dfsm" {
		t.Fatalf("after champion windows predictor = %q, want challenger %q", got, "dfsm")
	}

	// Challenger windows: the DFSM predicts the repeating stream.
	for poll := 1; poll <= 2; poll++ {
		for _, r := range trace {
			cm.Observe(r)
		}
		if err := sup.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	snap = sup.Snapshot()
	if snap.ABActive {
		t.Fatalf("trial still active after both arms served: %+v", snap)
	}
	if snap.ABLastWinner != "dfsm" {
		t.Fatalf("ABLastWinner = %q, want challenger %q", snap.ABLastWinner, "dfsm")
	}
	if snap.ABTrials != 1 || snap.ABAborts != 0 {
		t.Fatalf("trials=%d aborts=%d, want 1, 0", snap.ABTrials, snap.ABAborts)
	}
	if got := cm.Predictor(); got != "dfsm" {
		t.Fatalf("published winner = %q, want %q", got, "dfsm")
	}
	if got := sup.State(); got != hotprefetch.StateOptimized {
		t.Fatalf("state after concluded trial = %v, want %v", got, hotprefetch.StateOptimized)
	}
	if got := sp.Observer().Count(hotprefetch.EventPredictorWinner); got != 1 {
		t.Fatalf("predictor_winner events = %d, want 1", got)
	}

	// Exact window accounting: every issued/hit the trial measured is
	// attributed to exactly one implementation, and the per-predictor
	// ledgers sum to the matcher totals.
	byName := map[string]hotprefetch.PredictorAccuracy{}
	var sumIssued, sumHits uint64
	for _, pa := range cm.AccuracyByPredictor() {
		byName[pa.Name] = pa
		sumIssued += pa.Issued
		sumHits += pa.Hits
	}
	if byName["test-dud"].Issued != 0 {
		t.Fatalf("dud issued %d prefetches, want 0", byName["test-dud"].Issued)
	}
	if byName["dfsm"].Issued == 0 || byName["dfsm"].Hits == 0 {
		t.Fatalf("challenger ledger empty: %+v", byName["dfsm"])
	}
	issued, hits := cm.AccuracyCounters()
	if sumIssued != issued || sumHits != hits {
		t.Fatalf("per-predictor ledgers (%d, %d) do not sum to totals (%d, %d)",
			sumIssued, sumHits, issued, hits)
	}

	// The winner and the split ledgers surface in service stats.
	st := sp.Stats()
	if st.MatcherPredictor != "dfsm" {
		t.Fatalf("Stats.MatcherPredictor = %q, want %q", st.MatcherPredictor, "dfsm")
	}
	if len(st.Predictors) != 2 {
		t.Fatalf("Stats.Predictors has %d entries, want 2: %+v", len(st.Predictors), st.Predictors)
	}
}

// TestSupervisorABChaosPanicDemotes drives an A/B trial into a challenger
// whose factory panics at build time: the supervisor must absorb the panic
// (the loop survives), abort the trial with its ledger cleanly dropped, and
// demote to the pass-through state — then recover by re-optimizing and
// opening a fresh trial once new evidence banks.
func TestSupervisorABChaosPanicDemotes(t *testing.T) {
	analysis := hotprefetch.AnalysisConfig{MinLen: 4, MaxLen: 64, MinCoverage: 0.05}
	sp, err := hotprefetch.NewShardedProfileConfig(hotprefetch.ShardedConfig{
		Shards:            1,
		MaxGrammarSymbols: 64,
		CycleAnalysis:     analysis,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	cm, err := hotprefetch.NewConcurrentMatcher(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := hotprefetch.Supervise(sp, cm, hotprefetch.SupervisorConfig{
		ABTest:                "test-boom",
		ABWindows:             2,
		AccuracyFloor:         0.25,
		BadWindows:            100,
		MinWindowObservations: 64,
		HeadLen:               2,
		Analysis:              analysis,
		MinFreshCycles:        1,
		// Forced staleness makes every window conclusive-bad, so the trial
		// advances on cadence regardless of real traffic accuracy.
		Fault: &fault.Hooks{MatcherStaleFn: func() bool { return true }},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	trace := abTrace(2, 40)
	feedCycle(t, sp, trace, 0)
	if err := sup.Poll(); err != nil {
		t.Fatal(err)
	}
	if !sup.Snapshot().ABActive {
		t.Fatal("trial did not open at optimization")
	}

	// First champion window: trial ledger advances, nothing detonates yet.
	for _, r := range trace {
		cm.Observe(r)
	}
	if err := sup.Poll(); err != nil {
		t.Fatal(err)
	}
	snap := sup.Snapshot()
	if snap.ABChampionWindows != 1 || snap.ABChallengerWindows != 0 {
		t.Fatalf("windows before detonation = (%d, %d), want (1, 0)",
			snap.ABChampionWindows, snap.ABChallengerWindows)
	}

	// Second champion window completes the arm; the hand-off builds the
	// challenger, whose factory panics. The poll itself must not.
	for _, r := range trace {
		cm.Observe(r)
	}
	if err := sup.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := sup.State(); got != hotprefetch.StateHibernating {
		t.Fatalf("state after challenger panic = %v, want %v", got, hotprefetch.StateHibernating)
	}
	if got := cm.NumStates(); got != 1 {
		t.Fatalf("matcher has %d states after demotion, want 1 (pass-through)", got)
	}
	snap = sup.Snapshot()
	if snap.ABActive {
		t.Fatalf("trial still active after abort: %+v", snap)
	}
	if snap.ABAborts != 1 || snap.ABTrials != 0 {
		t.Fatalf("aborts=%d trials=%d, want 1, 0 (aborted, never concluded)",
			snap.ABAborts, snap.ABTrials)
	}
	if snap.ABLastWinner != "" {
		t.Fatalf("ABLastWinner = %q after an aborted trial, want empty", snap.ABLastWinner)
	}
	if snap.PollErrors != 1 {
		t.Fatalf("PollErrors = %d, want 1 (the recovered panic)", snap.PollErrors)
	}
	if snap.Deoptimizations != 1 {
		t.Fatalf("Deoptimizations = %d, want 1", snap.Deoptimizations)
	}
	if got := sp.Observer().Count(hotprefetch.EventPredictorWinner); got != 0 {
		t.Fatalf("predictor_winner events = %d after abort, want 0", got)
	}

	// No fresh evidence: hibernation holds.
	if err := sup.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := sup.State(); got != hotprefetch.StateHibernating {
		t.Fatalf("state without fresh cycles = %v, want %v", got, hotprefetch.StateHibernating)
	}

	// Fresh evidence re-optimizes and opens a new trial; the crash cost the
	// process one trial, not the supervision loop.
	feedCycle(t, sp, trace, sp.Stats().Resets)
	if err := sup.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := sup.State(); got != hotprefetch.StateOptimized {
		t.Fatalf("state after recovery cycle = %v, want %v", got, hotprefetch.StateOptimized)
	}
	snap = sup.Snapshot()
	if !snap.ABActive || snap.ABAborts != 1 {
		t.Fatalf("recovery did not reopen a trial: %+v", snap)
	}
	if got := sp.Observer().Count(hotprefetch.EventPredictorTrial); got != 2 {
		t.Fatalf("predictor_trial events = %d, want 2 (original + reopened)", got)
	}
}
