package hotprefetch_test

// Differential conformance for the predictor zoo: every registered
// implementation passes the shared contract suite, and the DFSM reached
// through the Predictor registry is bit-identical to the pre-refactor
// direct matcher on the full workload catalog — the refactor moved code,
// not behavior.

import (
	"reflect"
	"strings"
	"testing"

	"hotprefetch"
	"hotprefetch/internal/experiment"
	"hotprefetch/internal/predictortest"
	"hotprefetch/internal/workload"
)

// TestPredictorConformance runs the contract suite over every registered
// predictor. Test-only predictors (registered by other test files in this
// package with a "test-" prefix) are excluded: they exist to misbehave.
func TestPredictorConformance(t *testing.T) {
	trace := predictortest.Trace(1, 60)
	streams := predictortest.Streams(t, trace)
	for _, name := range hotprefetch.PredictorNames() {
		if strings.HasPrefix(name, "test-") {
			continue
		}
		t.Run(name, func(t *testing.T) {
			predictortest.Conformance(t, name, streams, trace)
		})
	}
}

// TestRegistryCoversBuiltins pins the registry surface: the three built-in
// implementations are registered, the default resolves, and unknown names
// fail with a useful error.
func TestRegistryCoversBuiltins(t *testing.T) {
	names := hotprefetch.PredictorNames()
	for _, want := range []string{"dfsm", "markov", "stride"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in predictor %q not registered (have %v)", want, names)
		}
	}
	if _, err := hotprefetch.NewPredictor(hotprefetch.DefaultPredictor, nil, 2); err != nil {
		t.Fatalf("default predictor does not build: %v", err)
	}
	if _, err := hotprefetch.NewPredictor("no-such-predictor", nil, 2); err == nil {
		t.Fatal("unknown predictor name built successfully")
	}
}

// TestDFSMThroughInterfaceBitIdentical replays every catalog workload
// through the direct *Matcher and through the registry-built "dfsm"
// Predictor (standalone and behind ConcurrentMatcher): prefetch sequences
// and comparison counts must be bit-identical on all of them. This is the
// acceptance gate for the interface carve-out.
func TestDFSMThroughInterfaceBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog differential replay")
	}
	analysis := hotprefetch.AnalysisConfig{MinLen: 2, MaxLen: 100, MinCoverage: 0.02}
	for _, p := range workload.Catalog() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			raw, err := experiment.CaptureTrace(p, 30000)
			if err != nil {
				t.Fatal(err)
			}
			trace := make([]hotprefetch.Ref, len(raw))
			for i, r := range raw {
				trace[i] = hotprefetch.Ref{PC: r.PC, Addr: r.Addr}
			}
			cut := len(trace) * 60 / 100
			prof := hotprefetch.NewProfile()
			prof.AddAll(trace[:cut])
			streams := prof.HotStreams(analysis)
			if len(streams) == 0 {
				t.Skipf("%s: no hot streams at this trace length", p.Name)
			}

			direct, err := hotprefetch.NewMatcher(streams, 2)
			if err != nil {
				t.Fatal(err)
			}
			viaRegistry, err := hotprefetch.NewPredictor("dfsm", streams, 2)
			if err != nil {
				t.Fatal(err)
			}
			viaConcurrent, err := hotprefetch.NewConcurrentPredictor("dfsm", streams, 2)
			if err != nil {
				t.Fatal(err)
			}

			issued := 0
			for i, r := range trace[cut:] {
				pf0, c0 := direct.Observe(r)
				pf1, c1 := viaRegistry.Observe(r)
				pf2, c2 := viaConcurrent.Observe(r)
				if c0 != c1 || !reflect.DeepEqual(pf0, pf1) {
					t.Fatalf("ref %d: direct (%v, %d) != registry (%v, %d)", i, pf0, c0, pf1, c1)
				}
				if c0 != c2 || !reflect.DeepEqual(pf0, pf2) {
					t.Fatalf("ref %d: direct (%v, %d) != concurrent (%v, %d)", i, pf0, c0, pf2, c2)
				}
				issued += len(pf0)
			}
			if issued == 0 {
				t.Logf("%s: matcher issued no prefetches on the eval split", p.Name)
			}
		})
	}
}
