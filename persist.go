package hotprefetch

import (
	"io"
	"time"

	"hotprefetch/internal/obs"
	"hotprefetch/internal/ref"
	"hotprefetch/internal/snapshot"
)

// RestoreInfo describes a successfully restored snapshot: what the warm
// start is now working from.
type RestoreInfo struct {
	// Generation is the snapshot's generation counter — monotonically
	// increasing across checkpoints of the same profile, used by writers to
	// refuse overwriting a newer file.
	Generation uint64

	// CreatedAt is when the snapshot was encoded.
	CreatedAt time.Time

	// Streams and Refs are the restored hot-stream count and their total
	// reference count.
	Streams int
	Refs    int

	// BaselineValid reports whether the snapshot carried supervisor
	// accuracy counters; BaselineAccuracy is their hits/issued ratio — the
	// accuracy the previous run achieved, which a warm-started supervisor
	// uses as its provisional starting point.
	BaselineValid    bool
	BaselineAccuracy float64
}

// WriteSnapshot encodes the profile's durable state — the banked hot-stream
// set (restored streams included, so checkpoints survive generations of
// restarts) and the attached matcher's accuracy baseline — to w in the
// internal/snapshot format under the given generation counter.
//
// Like BankedStreams, the encode is safe while producers and consumers are
// running: it reads each shard's retained set under its lock and never
// touches the live grammars, so periodic checkpointing does not stall
// ingestion. Cycles whose background analysis has not landed are simply not
// in the snapshot; the next checkpoint picks them up.
func (sp *ShardedProfile) WriteSnapshot(w io.Writer, generation uint64) error {
	streams := sp.BankedStreams(0)
	p := &snapshot.Profile{
		Generation: generation,
		CreatedAt:  time.Now().UnixNano(),
		Streams:    make([]snapshot.Stream, len(streams)),
	}
	for i, st := range streams {
		refs := make([]ref.Ref, len(st.Refs))
		for j, r := range st.Refs {
			refs[j] = ref.Ref{PC: r.PC, Addr: r.Addr}
		}
		p.Streams[i] = snapshot.Stream{Refs: refs, Heat: st.Heat}
	}
	if m := sp.matcher.Load(); m != nil {
		if issued, hits := m.AccuracyCounters(); issued > 0 {
			p.Baseline = snapshot.Baseline{Valid: true, Issued: issued, Hits: hits}
		}
	}
	if err := snapshot.Write(w, p); err != nil {
		return err
	}
	sp.snapWrites.Add(1)
	sp.obs.Emit(obs.KindSnapshotWritten, -1, uint64(len(streams)))
	return nil
}

// RestoreSnapshot loads a snapshot into the profile as its warm-start
// stream set: the restored streams merge into BankedStreams (so the next
// optimization — or checkpoint — sees them alongside anything live cycles
// bank), and an attached matcher is pre-compiled over them immediately.
//
// Every load failure — bad magic, version skew, checksum mismatch,
// truncation, implausible counts — returns the loader's typed error
// (snapshot.IsFormatError), increments Stats.SnapshotLoadFailures, emits an
// EventSnapshotLoadFailed tracer event, and leaves the profile exactly as
// it was: cold, profiling from zero. A corrupt snapshot can cost a warm
// start, never correctness.
//
// The restored set is provisional: a Supervisor attached after the restore
// optimizes from it immediately but demotes to cold profiling if the live
// workload disagrees (see SupervisorConfig.ProvisionalWindows and
// DriftOverlapFloor), clearing the restored set.
func (sp *ShardedProfile) RestoreSnapshot(r io.Reader) (RestoreInfo, error) {
	p, err := snapshot.Read(r)
	if err != nil {
		sp.snapLoadFailures.Add(1)
		sp.obs.Emit(obs.KindSnapshotLoadFailed, -1, 0)
		return RestoreInfo{}, err
	}
	streams := make([]Stream, len(p.Streams))
	totalRefs := 0
	for i, st := range p.Streams {
		refs := make([]Ref, len(st.Refs))
		for j, r := range st.Refs {
			refs[j] = Ref{PC: r.PC, Addr: r.Addr}
		}
		streams[i] = Stream{Refs: refs, Heat: st.Heat}
		totalRefs += len(st.Refs)
	}
	sp.restoredMu.Lock()
	sp.restored = streams
	sp.restoredGen = p.Generation
	sp.restoredBaseline = p.Baseline
	sp.restoredMu.Unlock()
	sp.snapRestores.Add(1)
	sp.obs.Emit(obs.KindSnapshotRestored, -1, uint64(len(streams)))
	if m := sp.matcher.Load(); m != nil && len(streams) > 0 {
		// Pre-compile the DFSM so prefetching starts before any supervisor
		// tick. defaultHeadLen matches SupervisorConfig's zero-value HeadLen;
		// a supervisor with a different HeadLen re-swaps at attach.
		if err := m.Swap(streams, defaultHeadLen); err != nil {
			return RestoreInfo{}, err
		}
	}
	return RestoreInfo{
		Generation:       p.Generation,
		CreatedAt:        time.Unix(0, p.CreatedAt),
		Streams:          len(streams),
		Refs:             totalRefs,
		BaselineValid:    p.Baseline.Valid,
		BaselineAccuracy: p.Baseline.Accuracy(),
	}, nil
}

// defaultHeadLen is the paper's best detection prefix length (§4.3) — the
// SupervisorConfig zero-value and the head length RestoreSnapshot
// pre-compiles with.
const defaultHeadLen = 2

// restoredStreams returns a copy of the warm-start stream set, nil when
// cold.
func (sp *ShardedProfile) restoredStreams() []Stream {
	sp.restoredMu.Lock()
	defer sp.restoredMu.Unlock()
	if len(sp.restored) == 0 {
		return nil
	}
	out := make([]Stream, len(sp.restored))
	copy(out, sp.restored)
	return out
}

// clearRestored drops the warm-start stream set (supervisor demotion), and
// counts the rejection. value is the bad-window run that triggered it (0
// for drift detection).
func (sp *ShardedProfile) clearRestored(value uint64) {
	sp.restoredMu.Lock()
	sp.restored = nil
	sp.restoredMu.Unlock()
	sp.snapStaleRejected.Add(1)
	sp.obs.Emit(obs.KindSnapshotStaleRejected, -1, value)
}

// streamOverlap is the drift heuristic: |a ∩ b| / min(|a|, |b|) over exact
// stream identity (same references in the same order). 1 means the smaller
// set is contained in the larger; 0 means disjoint — the restored profile
// describes a workload the live trace no longer runs.
func streamOverlap(a, b []Stream) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[string]struct{}, len(a))
	var key []byte
	for _, st := range a {
		key = streamKey(key[:0], st)
		set[string(key)] = struct{}{}
	}
	inter := 0
	for _, st := range b {
		key = streamKey(key[:0], st)
		if _, ok := set[string(key)]; ok {
			inter++
		}
	}
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	return float64(inter) / float64(m)
}
