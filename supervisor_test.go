package hotprefetch

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"hotprefetch/internal/fault"
)

// phaseTrace builds a trace dominated by one repeating hot stream whose
// identity is offset per phase, so phase A's matcher is useless on phase B.
func phaseTrace(phase, reps int) []Ref {
	stream := make([]Ref, 12)
	for i := range stream {
		stream[i] = Ref{PC: 1000*phase + i, Addr: uint64(0x10000*phase + 8*i)}
	}
	var trace []Ref
	for r := 0; r < reps; r++ {
		trace = append(trace, stream...)
		trace = append(trace, Ref{PC: 90000 + phase, Addr: uint64(0xdead0000 + 64*r)})
	}
	return trace
}

// feedUntilCycle pushes trace repetitions through shard 0 until at least one
// fresh grammar-budget cycle banks past base, then flushes.
func feedUntilCycle(t *testing.T, sp *ShardedProfile, trace []Ref, base uint64) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if err := sp.Shard(0).AddAll(trace); err != nil {
			t.Fatal(err)
		}
		if err := sp.Flush(); err != nil {
			t.Fatal(err)
		}
		if sp.Stats().Resets > base {
			return
		}
	}
	t.Fatalf("no grammar cycle banked past %d after 200 trace repetitions", base)
}

// observeAll drives a trace through the matcher, as inserted detection code
// would.
func observeAll(cm *ConcurrentMatcher, trace []Ref) {
	for _, r := range trace {
		cm.Observe(r)
	}
}

// TestSupervisorDeoptimizeReoptimize is the acceptance test for the
// supervised runtime: a workload phase shift drags prefetch accuracy below
// the floor, the supervisor deoptimizes (Hibernating appears in Stats and a
// pass-through matcher is installed), re-optimizes from the next banked
// cycle, and accuracy recovers — with zero manual Swap calls anywhere.
func TestSupervisorDeoptimizeReoptimize(t *testing.T) {
	analysis := AnalysisConfig{MinLen: 4, MaxLen: 64, MinCoverage: 0.05}
	sp, err := NewShardedProfileConfig(ShardedConfig{
		Shards:            1,
		MaxGrammarSymbols: 64,
		CycleAnalysis:     analysis,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	cm, err := NewConcurrentMatcher(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := Supervise(sp, cm, SupervisorConfig{
		AccuracyFloor:         0.5,
		BadWindows:            2,
		MinWindowObservations: 64,
		HeadLen:               2,
		Analysis:              analysis,
		MinFreshCycles:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	if got := sup.State(); got != StateProfiling {
		t.Fatalf("initial state = %v, want %v", got, StateProfiling)
	}

	// Phase A: profile until a cycle banks, then the supervisor optimizes.
	phaseA := phaseTrace(1, 40)
	feedUntilCycle(t, sp, phaseA, 0)
	if err := sup.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := sup.State(); got != StateOptimized {
		t.Fatalf("state after first banked cycle = %v, want %v", got, StateOptimized)
	}
	if cm.NumStates() <= 1 {
		t.Fatalf("optimized matcher has %d states, want > 1", cm.NumStates())
	}

	// Phase A traffic through the optimized matcher: accuracy is high, the
	// window is good, and the supervisor stays optimized.
	observeAll(cm, phaseA)
	if err := sup.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := sup.State(); got != StateOptimized {
		t.Fatalf("state after healthy window = %v, want %v", got, StateOptimized)
	}
	if acc := sup.Accuracy(); acc < 0.5 {
		t.Fatalf("phase A window accuracy = %g, want >= 0.5", acc)
	}
	issued, hits := cm.AccuracyCounters()
	if issued == 0 || hits == 0 {
		t.Fatalf("phase A counters issued=%d hits=%d, want both > 0", issued, hits)
	}

	// Phase shift: phase B references never match phase A heads, so the
	// matcher issues nothing against real traffic — stale by definition.
	// Two consecutive bad windows deoptimize.
	phaseB := phaseTrace(2, 40)
	for poll := 0; poll < 2; poll++ {
		observeAll(cm, phaseB)
		if err := sup.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	if got := sup.State(); got != StateHibernating {
		t.Fatalf("state after %d stale windows = %v, want %v", 2, got, StateHibernating)
	}
	if cm.NumStates() != 1 {
		t.Fatalf("deoptimized matcher has %d states, want 1 (pass-through)", cm.NumStates())
	}
	st := sp.Stats()
	if st.Supervisor == nil {
		t.Fatal("Stats.Supervisor is nil with a supervisor attached")
	}
	if st.Supervisor.State != "hibernating" {
		t.Fatalf("Stats.Supervisor.State = %q, want %q", st.Supervisor.State, "hibernating")
	}
	if st.Supervisor.Deoptimizations != 1 {
		t.Fatalf("Deoptimizations = %d, want 1", st.Supervisor.Deoptimizations)
	}

	// Polling while hibernating with no fresh evidence is a no-op.
	if err := sup.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := sup.State(); got != StateHibernating {
		t.Fatalf("state with no fresh cycles = %v, want %v", got, StateHibernating)
	}

	// Phase B profiles; the next banked cycle re-optimizes.
	feedUntilCycle(t, sp, phaseB, sp.Stats().Resets)
	if err := sup.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := sup.State(); got != StateOptimized {
		t.Fatalf("state after fresh phase B cycle = %v, want %v", got, StateOptimized)
	}
	if cm.NumStates() <= 1 {
		t.Fatalf("re-optimized matcher has %d states, want > 1", cm.NumStates())
	}

	// Accuracy recovers on phase B traffic.
	observeAll(cm, phaseB)
	if err := sup.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := sup.State(); got != StateOptimized {
		t.Fatalf("state after recovered window = %v, want %v", got, StateOptimized)
	}
	if acc := sup.Accuracy(); acc < 0.5 {
		t.Fatalf("phase B window accuracy = %g, want >= 0.5", acc)
	}
	snap := sup.Snapshot()
	if snap.Reoptimizations != 1 {
		t.Fatalf("Reoptimizations = %d, want 1", snap.Reoptimizations)
	}
	if snap.WindowsBelowFloor != 0 {
		t.Fatalf("WindowsBelowFloor = %d, want 0 after recovery", snap.WindowsBelowFloor)
	}
	// The supervisor did all the swapping: initial optimize, deoptimize,
	// re-optimize.
	if got := cm.Swaps(); got != 3 {
		t.Fatalf("matcher swaps = %d, want exactly 3 (all supervisor-driven)", got)
	}
}

// TestSupervisorForcedStaleness drives the deoptimization path with the
// fault injector's forced-staleness point: traffic is healthy, but every
// window is judged stale, so the supervisor must deoptimize after exactly
// BadWindows polls.
func TestSupervisorForcedStaleness(t *testing.T) {
	analysis := AnalysisConfig{MinLen: 4, MaxLen: 64, MinCoverage: 0.05}
	trace := phaseTrace(3, 40)
	sp, err := NewShardedProfileConfig(ShardedConfig{Shards: 1, CycleAnalysis: analysis})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if err := sp.Shard(0).AddAll(trace); err != nil {
		t.Fatal(err)
	}
	streams, err := sp.HotStreamsErr(analysis)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) == 0 {
		t.Fatal("no hot streams detected to optimize with")
	}
	cm, err := NewConcurrentMatcher(streams, 2)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := Supervise(sp, cm, SupervisorConfig{
		AccuracyFloor:         0.25,
		BadWindows:            3,
		MinWindowObservations: 64,
		Analysis:              analysis,
		Fault:                 &fault.Hooks{MatcherStaleFn: func() bool { return true }},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	if got := sup.State(); got != StateOptimized {
		t.Fatalf("supervising a trained matcher starts in %v, want %v", got, StateOptimized)
	}
	for poll := 1; poll <= 3; poll++ {
		observeAll(cm, trace)
		if err := sup.Poll(); err != nil {
			t.Fatal(err)
		}
		want := StateOptimized
		if poll == 3 {
			want = StateHibernating
		}
		if got := sup.State(); got != want {
			t.Fatalf("state after forced-stale poll %d = %v, want %v", poll, got, want)
		}
	}
	if got := sup.Snapshot().Deoptimizations; got != 1 {
		t.Fatalf("Deoptimizations = %d, want 1", got)
	}
}

// TestSupervisorBackgroundLoop runs the supervisor on its own ticker: with
// no Poll calls at all, a profiled workload must get optimized in the
// background, and Close must stop the loop idempotently and detach the
// supervisor from Stats.
func TestSupervisorBackgroundLoop(t *testing.T) {
	analysis := AnalysisConfig{MinLen: 4, MaxLen: 64, MinCoverage: 0.05}
	sp, err := NewShardedProfileConfig(ShardedConfig{
		Shards:            1,
		MaxGrammarSymbols: 64,
		CycleAnalysis:     analysis,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	cm, err := NewConcurrentMatcher(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := Supervise(sp, cm, SupervisorConfig{
		Interval: time.Millisecond,
		Analysis: analysis,
	})
	if err != nil {
		t.Fatal(err)
	}

	trace := phaseTrace(4, 40)
	deadline := time.Now().Add(10 * time.Second)
	for sup.State() != StateOptimized {
		if time.Now().After(deadline) {
			t.Fatalf("background loop never optimized; state=%v stats=%v", sup.State(), sp.Stats())
		}
		if err := sp.Shard(0).AddAll(trace); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if cm.Swaps() == 0 {
		t.Fatal("background loop reported Optimized without swapping the matcher")
	}

	sup.Close()
	sup.Close() // idempotent
	if sp.Stats().Supervisor != nil {
		t.Fatal("Stats.Supervisor still set after supervisor Close")
	}
}

func TestSupervisorConfigValidate(t *testing.T) {
	bad := []SupervisorConfig{
		{Interval: -time.Second},
		{AccuracyFloor: -0.1},
		{AccuracyFloor: 1.5},
		{BadWindows: -1},
		{HeadLen: -2},
		{Analysis: AnalysisConfig{MinLen: -1}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d (%+v) validated", i, cfg)
		}
	}
	sp := NewShardedProfile(1)
	defer sp.Close()
	cm, err := NewConcurrentMatcher(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Supervise(sp, cm, SupervisorConfig{Interval: -time.Second}); err == nil {
		t.Fatal("Supervise accepted a negative interval")
	}
	if sp.Stats().Supervisor != nil {
		t.Fatal("failed Supervise still attached a supervisor")
	}
}

// TestStatsJSONRoundTripWithSupervisor extends the Stats JSON contract to
// the supervision snapshot.
func TestStatsJSONRoundTripWithSupervisor(t *testing.T) {
	sp := NewShardedProfile(1)
	defer sp.Close()
	cm, err := NewConcurrentMatcher(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := Supervise(sp, cm, SupervisorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	st := sp.Stats()
	if st.Supervisor == nil || st.Supervisor.State != "profiling" {
		t.Fatalf("Stats.Supervisor = %+v, want profiling snapshot", st.Supervisor)
	}
	var back Stats
	if err := json.Unmarshal([]byte(st.String()), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, back) {
		t.Fatalf("Stats did not survive the JSON round trip:\n got %+v\nwant %+v", back, st)
	}
}
