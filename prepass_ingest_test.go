package hotprefetch

// Tests for the two-level ingest front end wired through ShardedProfile
// (ShardedConfig.Prepass): banked hot-stream equivalence against the
// lossless path, grammar-budget safety under the front end's deferred
// symbol expansion, exact collapse accounting on every exit path, burst
// composition, and the flag-value parser.

import (
	"strings"
	"sync"
	"testing"
)

// prepassTrace builds a per-producer trace of a repeating hot stream with
// interleaved noise — periodic enough that the phrase cache mints and hits.
func prepassTrace(producer, reps int) []Ref {
	stream := make([]Ref, 12)
	for i := range stream {
		stream[i] = Ref{PC: 100*producer + i, Addr: uint64(0x1000*producer + 8*i)}
	}
	var trace []Ref
	for r := 0; r < reps; r++ {
		trace = append(trace, stream...)
		trace = append(trace, Ref{PC: 9000 + producer, Addr: uint64(r % 7)})
	}
	return trace
}

// TestPrepassBankedStreamsEquivalence is the end-to-end contract check: the
// same trace profiled under grammar-budget cycling with the front end on
// and off must bank the same planted hot streams. Grammars are not
// bit-identical (cycle boundaries shift with grammar size), so the
// assertion is stream-level: every planted stream the lossless run banks,
// the prepass run banks too.
func TestPrepassBankedStreamsEquivalence(t *testing.T) {
	n := 300000
	if testing.Short() {
		n = 100000
	}
	trace := coreTrace(n)
	cycleCfg := AnalysisConfig{MinLen: 10, MaxLen: 100, MinUnique: 10, MinCoverage: 0.01, MaxStreams: 100}
	run := func(mode PrepassMode) ([]Stream, Stats) {
		sp, err := NewShardedProfileConfig(ShardedConfig{
			Shards:            1,
			MaxGrammarSymbols: 4096,
			CycleAnalysis:     cycleCfg,
			Prepass:           PrepassConfig{Mode: mode},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sp.Close()
		if err := sp.Shard(0).AddAll(trace); err != nil {
			t.Fatal(err)
		}
		if err := sp.Flush(); err != nil {
			t.Fatal(err)
		}
		return sp.BankedStreams(0), sp.Stats()
	}

	lossless, offStats := run(PrepassOff)
	banked, onStats := run(PrepassOn)
	if offStats.Collapsed != 0 || offStats.PrepassMinted != 0 {
		t.Errorf("lossless run reports collapse accounting: collapsed %d, minted %d",
			offStats.Collapsed, offStats.PrepassMinted)
	}
	if onStats.Collapsed == 0 || onStats.PrepassMinted == 0 {
		t.Errorf("prepass run absorbed nothing: collapsed %d, minted %d",
			onStats.Collapsed, onStats.PrepassMinted)
	}
	if offStats.Resets == 0 || onStats.Resets == 0 {
		t.Fatalf("budget cycling not exercised: resets off=%d on=%d", offStats.Resets, onStats.Resets)
	}

	// coreTrace plants 20 streams with leading refs {PC: s*100, Addr: s<<20}.
	covered := func(streams []Stream, lead Ref) bool {
		for _, st := range streams {
			for _, r := range st.Refs {
				if r == lead {
					return true
				}
			}
		}
		return false
	}
	found := 0
	for s := 0; s < 20; s++ {
		lead := Ref{PC: s * 100, Addr: uint64(s) << 20}
		if !covered(lossless, lead) {
			continue
		}
		found++
		if !covered(banked, lead) {
			t.Errorf("planted stream %d banked by the lossless run but not through the prepass", s)
		}
	}
	if found == 0 {
		t.Fatal("lossless run banked none of the planted streams; trace too small to compare")
	}
}

// TestPrepassPeakUnderBudget checks the halved budget-chunking bound: the
// front end can emit up to two net symbols per reference (phrase mints and
// run doubling chains), and the shard's conservative chunk divisor must
// keep the grammar peak at or under MaxGrammarSymbols anyway.
func TestPrepassPeakUnderBudget(t *testing.T) {
	total := 2_000_000
	if testing.Short() {
		total = 300_000
	}
	const budget = 2048
	sp, err := NewShardedProfileConfig(ShardedConfig{
		Shards:            1,
		MaxGrammarSymbols: budget,
		CycleAnalysis:     AnalysisConfig{MinLen: 10, MaxLen: 100, MinUnique: 10, MinCoverage: 0.01, MaxStreams: 100},
		Prepass:           PrepassConfig{Mode: PrepassOn},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	s := sp.Shard(0)

	stream := make([]Ref, 12)
	for i := range stream {
		stream[i] = Ref{PC: 100 + i, Addr: uint64(0x1000 + 8*i)}
	}
	added := 0
	for noise := 0; added < total; noise++ {
		for _, r := range stream {
			s.Add(r)
		}
		s.Add(Ref{PC: 500000 + noise, Addr: uint64(noise)})
		added += len(stream) + 1
	}
	if err := sp.Flush(); err != nil {
		t.Fatal(err)
	}

	st := sp.Stats()
	if st.Resets == 0 {
		t.Fatalf("no grammar resets across %d references with budget %d", added, budget)
	}
	if peak := st.Shards[0].PeakGrammarSize; peak > budget {
		t.Errorf("peak grammar size %d exceeds budget %d with prepass on", peak, budget)
	}
	if st.Consumed != uint64(added) {
		t.Errorf("consumed %d, want %d", st.Consumed, added)
	}
	if st.Collapsed == 0 {
		t.Error("nothing collapsed across a heavily repetitive trace")
	}
	if st.Collapsed > st.Consumed {
		t.Errorf("collapsed %d exceeds consumed %d", st.Collapsed, st.Consumed)
	}
	if st.PrepassMinted == 0 {
		t.Error("no phrase/doubling rules minted")
	}
}

// TestPrepassReconciliation is the books-balance check with the front end
// on, per ingest policy under concurrent producers (run with -race): the
// producer ledger is untouched (Pushed + Dropped + Sampled = produced,
// Consumed = Pushed at quiescence) and the consumer-side collapse counter
// stays within Consumed on both the Flush and Close exit paths.
func TestPrepassReconciliation(t *testing.T) {
	reps := 8000
	if testing.Short() {
		reps = 2000
	}
	const producers = 4
	for _, pol := range []IngestPolicy{Block, Drop, Sample} {
		t.Run(pol.String(), func(t *testing.T) {
			sp, err := NewShardedProfileConfig(ShardedConfig{
				Shards:  producers,
				RingCap: 256,
				Policy:  pol,
				Prepass: PrepassConfig{Mode: PrepassOn},
			})
			if err != nil {
				t.Fatal(err)
			}
			var produced uint64
			var mu sync.Mutex
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					trace := prepassTrace(p+1, reps)
					if err := sp.Shard(p).AddAll(trace); err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					produced += uint64(len(trace))
					mu.Unlock()
				}(p)
			}
			wg.Wait()
			if err := sp.Flush(); err != nil {
				t.Fatal(err)
			}
			check := func(st Stats, when string) {
				if got := st.Pushed + st.Dropped + st.Sampled; got != produced {
					t.Errorf("%s: pushed %d + dropped %d + sampled %d = %d, want %d produced",
						when, st.Pushed, st.Dropped, st.Sampled, got, produced)
				}
				if st.Consumed != st.Pushed {
					t.Errorf("%s: consumed %d != pushed %d at quiescence", when, st.Consumed, st.Pushed)
				}
				if st.Collapsed > st.Consumed {
					t.Errorf("%s: collapsed %d exceeds consumed %d", when, st.Collapsed, st.Consumed)
				}
				var collapsed, minted uint64
				for i, ss := range st.Shards {
					if ss.Collapsed > ss.Consumed {
						t.Errorf("%s: shard %d collapsed %d exceeds consumed %d", when, i, ss.Collapsed, ss.Consumed)
					}
					collapsed += ss.Collapsed
					minted += ss.PrepassMinted
				}
				if collapsed != st.Collapsed || minted != st.PrepassMinted {
					t.Errorf("%s: shard sums collapsed %d minted %d, totals %d/%d",
						when, collapsed, minted, st.Collapsed, st.PrepassMinted)
				}
			}
			st := sp.Stats()
			check(st, "after flush")
			if st.Collapsed == 0 {
				t.Error("nothing collapsed across repetitive producer traces")
			}
			sp.Close()
			check(sp.Stats(), "after close")
		})
	}
}

// TestPrepassBurstComposition runs the bursty-sampling front end and the
// ingest prepass together: shedding happens at the producer boundary, the
// collapse happens on the consumer side of whatever survives, and the two
// ledgers stay independent and exact.
func TestPrepassBurstComposition(t *testing.T) {
	trace := prepassTrace(1, 20000)
	sp, err := NewShardedProfileConfig(ShardedConfig{
		Shards:  1,
		Burst:   BurstConfig{Enabled: true, NCheck: 190, NInstr: 10, NAwake: 5, NHibernate: 5},
		Prepass: PrepassConfig{Mode: PrepassOn},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if err := sp.Shard(0).AddAll(trace); err != nil {
		t.Fatal(err)
	}
	if err := sp.Flush(); err != nil {
		t.Fatal(err)
	}
	st := sp.Stats()
	produced := uint64(len(trace))
	if got := st.Pushed + st.Dropped + st.Sampled + st.BurstShed; got != produced {
		t.Errorf("pushed %d + dropped %d + sampled %d + burstShed %d = %d, want %d produced",
			st.Pushed, st.Dropped, st.Sampled, st.BurstShed, got, produced)
	}
	if st.Consumed != st.Pushed {
		t.Errorf("consumed %d != pushed %d at quiescence", st.Consumed, st.Pushed)
	}
	if st.BurstShed == 0 {
		t.Error("burst front end shed nothing; composition not exercised")
	}
	if st.Collapsed == 0 {
		t.Error("prepass collapsed nothing behind the burst gate")
	}
	if st.Collapsed > st.Consumed {
		t.Errorf("collapsed %d exceeds consumed %d", st.Collapsed, st.Consumed)
	}
}

// TestPrepassAutoResolution: a plain ShardedProfile resolves Auto to Off
// (bit-identity with a single Profile is preserved), while On engages the
// front end over the identical trace.
func TestPrepassAutoResolution(t *testing.T) {
	trace := prepassTrace(1, 3000)
	run := func(mode PrepassMode) Stats {
		sp, err := NewShardedProfileConfig(ShardedConfig{
			Shards:  1,
			Prepass: PrepassConfig{Mode: mode},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sp.Close()
		if err := sp.Shard(0).AddAll(trace); err != nil {
			t.Fatal(err)
		}
		if err := sp.Flush(); err != nil {
			t.Fatal(err)
		}
		return sp.Stats()
	}
	if st := run(PrepassAuto); st.Collapsed != 0 || st.PrepassMinted != 0 {
		t.Errorf("Auto engaged the front end on a plain ShardedProfile: collapsed %d, minted %d",
			st.Collapsed, st.PrepassMinted)
	}
	if st := run(PrepassOn); st.Collapsed == 0 {
		t.Error("On collapsed nothing over the same trace")
	}
}

func TestParsePrepassConfig(t *testing.T) {
	cases := []struct {
		in      string
		want    PrepassConfig
		wantErr string
	}{
		{in: "", want: PrepassConfig{Mode: PrepassAuto}},
		{in: "auto", want: PrepassConfig{Mode: PrepassAuto}},
		{in: "off", want: PrepassConfig{Mode: PrepassOff}},
		{in: "on", want: PrepassConfig{Mode: PrepassOn}},
		{in: "on:16:4:2048", want: PrepassConfig{Mode: PrepassOn, Window: 16, MinRun: 4, CacheSize: 2048}},
		{in: "on:0:0:0", want: PrepassConfig{Mode: PrepassOn}},
		{in: "on:16", wantErr: "bad prepass config"},
		{in: "off:1:2:3", wantErr: "bad prepass config"},
		{in: "on:16:-4:2048", wantErr: "bad prepass parameter"},
		{in: "on:a:b:c", wantErr: "bad prepass parameter"},
		{in: "bogus", wantErr: "bad prepass config"},
	}
	for _, c := range cases {
		got, err := ParsePrepassConfig(c.in)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParsePrepassConfig(%q) err = %v, want containing %q", c.in, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePrepassConfig(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParsePrepassConfig(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestPrepassConfigValidate(t *testing.T) {
	good := []PrepassConfig{
		{},
		{Mode: PrepassOn},
		{Mode: PrepassOff, Window: 8, MinRun: 4, CacheSize: 512},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v", c, err)
		}
	}
	bad := []PrepassConfig{
		{Mode: PrepassMode(7)},
		{Window: -1},
		{MinRun: -2},
		{CacheSize: -3},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid config", c)
		}
	}
	if err := (ShardedConfig{Shards: 1, Prepass: PrepassConfig{Window: -1}}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "Prepass") {
		t.Errorf("ShardedConfig.Validate did not surface prepass error: %v", err)
	}
	if PrepassAuto.String() != "auto" || PrepassOn.String() != "on" || PrepassOff.String() != "off" {
		t.Error("PrepassMode.String mismatch")
	}
}
