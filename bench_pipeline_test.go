package hotprefetch

// Pipeline benchmarks for the phase-transition rework: batched ingestion
// through the shard rings, and the cycle-turnaround stall — the longest a
// producer is blocked while a grammar-budget cycle runs — inline versus
// pipelined through the background analysis pool.
//
//	go test -bench='AddBatch|CycleTurnaround' -benchmem .
//
// Medians of 3 runs are recorded in BENCH_pipeline.json; the acceptance bar
// is a >= 5x reduction in max ingest stall for the pipelined configuration.

import (
	"fmt"
	"testing"
)

// BenchmarkAddBatch measures end-to-end ingestion (producer push through
// consumer compression) per reference at increasing batch sizes with the
// two-level ingest front end on — the service's ingest configuration;
// batch1 is the per-reference Add baseline, where windows never fill and
// the front end is pure overhead. The curve should drop steeply once
// batches are long enough for runs and phrase windows to collapse.
func BenchmarkAddBatch(b *testing.B) {
	trace := coreTrace(1 << 16)
	for _, size := range []int{1, 4, 16, 256} {
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			sp, err := NewShardedProfileConfig(ShardedConfig{
				Shards:  1,
				Prepass: PrepassConfig{Mode: PrepassOn},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sp.Close()
			b.ReportAllocs()
			b.ResetTimer()
			pos := 0
			for i := 0; i < b.N; i += size {
				if pos+size > len(trace) {
					pos = 0
				}
				if err := sp.AddBatch(0, trace[pos:pos+size]); err != nil {
					b.Fatal(err)
				}
				pos += size
			}
		})
	}
}

// BenchmarkAddBatchLossless is the prior bit-identical ingest path (prepass
// off), kept benchmarked so the front end's win is always measured against
// a live number rather than a stale one.
func BenchmarkAddBatchLossless(b *testing.B) {
	trace := coreTrace(1 << 16)
	for _, size := range []int{16, 256} {
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			sp := NewShardedProfile(1)
			defer sp.Close()
			b.ReportAllocs()
			b.ResetTimer()
			pos := 0
			for i := 0; i < b.N; i += size {
				if pos+size > len(trace) {
					pos = 0
				}
				if err := sp.AddBatch(0, trace[pos:pos+size]); err != nil {
					b.Fatal(err)
				}
				pos += size
			}
		})
	}
}

// BenchmarkAddBatchBurst is BenchmarkAddBatch with the paper's bursty
// sampling front end enabled: the per-reference cost collapses to the burst
// controller's checking-phase bookkeeping (one Skip subtraction per
// checking span), since ~99.5% of references are shed before the ring.
func BenchmarkAddBatchBurst(b *testing.B) {
	trace := coreTrace(1 << 16)
	for _, size := range []int{1, 256} {
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			sp, err := NewShardedProfileConfig(ShardedConfig{
				Shards: 1,
				Burst:  BurstConfig{Enabled: true},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sp.Close()
			b.ReportAllocs()
			b.ResetTimer()
			pos := 0
			for i := 0; i < b.N; i += size {
				if pos+size > len(trace) {
					pos = 0
				}
				if err := sp.AddBatch(0, trace[pos:pos+size]); err != nil {
					b.Fatal(err)
				}
				pos += size
			}
			b.StopTimer()
			st := sp.Stats()
			if total := st.Pushed + st.Dropped + st.Sampled + st.BurstShed; st.BurstShed == 0 && total > 1<<16 {
				b.Fatal("burst front end shed nothing; sampling not exercised")
			}
		})
	}
}

// BenchmarkAddBatchAuto measures batched ingestion through shard-per-P
// placement (AddBatchAuto): the AddBatch path plus one procPin read and an
// uncontended producer-lock CAS per batch.
func BenchmarkAddBatchAuto(b *testing.B) {
	trace := coreTrace(1 << 16)
	sp := NewShardedProfile(1)
	defer sp.Close()
	b.ReportAllocs()
	b.ResetTimer()
	const size = 256
	pos := 0
	for i := 0; i < b.N; i += size {
		if pos+size > len(trace) {
			pos = 0
		}
		if err := sp.AddBatchAuto(trace[pos : pos+size]); err != nil {
			b.Fatal(err)
		}
		pos += size
	}
}

// benchCycleTurnaround drives a grammar-budget shard hard enough to cycle
// repeatedly and reports, alongside the per-reference ingest cost, the
// longest stall a phase transition imposed on the ingest path
// ("max-stall-ns", from Stats.MaxCycleStall — measured on the consumer
// goroutine, so it is not polluted by producer-side scheduling noise).
// Inline cycling blocks ingestion for the whole cycle-end analysis;
// pipelined cycling swaps in a spare grammar and the stall collapses to a
// pointer exchange plus a channel send.
func benchCycleTurnaround(b *testing.B, workers int) {
	trace := coreTrace(1 << 16)
	sp, err := NewShardedProfileConfig(ShardedConfig{
		Shards:            1,
		RingCap:           1024,
		MaxGrammarSymbols: 2048,
		CycleAnalysis:     AnalysisConfig{MinLen: 2, MaxLen: 100, MinCoverage: 0.01, MaxStreams: 100},
		AnalysisWorkers:   workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sp.Close()
	s := sp.Shard(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Add(trace[i&(1<<16-1)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := sp.Flush(); err != nil {
		b.Fatal(err)
	}
	st := sp.Stats()
	b.ReportMetric(float64(st.MaxCycleStall.Nanoseconds()), "max-stall-ns")
	if st.Resets == 0 && b.N > 1<<16 {
		b.Fatalf("no grammar cycles in %d references; turnaround not exercised", b.N)
	}
}

func BenchmarkCycleTurnaroundInline(b *testing.B)    { benchCycleTurnaround(b, 0) }
func BenchmarkCycleTurnaroundPipelined(b *testing.B) { benchCycleTurnaround(b, 2) }
