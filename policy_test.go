package hotprefetch

import (
	"encoding/json"
	"errors"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

// rawShard builds a single shard whose consumer is NOT running, so the
// producer-side policy state machine can be exercised deterministically
// against a ring that never drains.
func rawShard(t *testing.T, cfg ShardedConfig) *ProfileShard {
	t.Helper()
	cfg.Shards = 1
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return newShardedProfile(cfg).shards[0]
}

func TestAddAfterCloseReturnsError(t *testing.T) {
	for _, policy := range []IngestPolicy{Block, Drop, Sample} {
		t.Run(policy.String(), func(t *testing.T) {
			sp, err := NewShardedProfileConfig(ShardedConfig{Shards: 2, Policy: policy})
			if err != nil {
				t.Fatal(err)
			}
			if err := sp.Shard(0).Add(Ref{PC: 1, Addr: 2}); err != nil {
				t.Fatalf("Add before Close: %v", err)
			}
			sp.Close()
			if err := sp.Shard(0).Add(Ref{PC: 1, Addr: 2}); !errors.Is(err, ErrClosed) {
				t.Fatalf("Add after Close = %v, want ErrClosed", err)
			}
			if err := sp.Shard(1).AddAll([]Ref{{PC: 1, Addr: 2}}); !errors.Is(err, ErrClosed) {
				t.Fatalf("AddAll after Close = %v, want ErrClosed", err)
			}
		})
	}
}

// TestAddRacingClose hammers Add from per-shard producers while Close lands:
// no Add may spin forever, and every accepted reference must be accounted
// for. Run under -race this also validates the close/consume edges.
func TestAddRacingClose(t *testing.T) {
	for _, policy := range []IngestPolicy{Block, Drop, Sample} {
		t.Run(policy.String(), func(t *testing.T) {
			sp, err := NewShardedProfileConfig(ShardedConfig{
				Shards: 2, Policy: policy, RingCap: 16,
			})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for i := 0; i < sp.NumShards(); i++ {
				wg.Add(1)
				go func(s *ProfileShard) {
					defer wg.Done()
					r := Ref{PC: 7, Addr: 7}
					for {
						if err := s.Add(r); errors.Is(err, ErrClosed) {
							return
						}
					}
				}(sp.Shard(i))
			}
			time.Sleep(5 * time.Millisecond)
			sp.Close() // must unblock all producers
			wg.Wait()
			st := sp.Stats()
			// Close drains; anything accepted before the close cut must have
			// been consumed. (A push that raced the final drain may remain
			// in-flight, so allow consumed <= pushed but require near-total
			// drainage only when they match — the invariant that must always
			// hold is consumed never exceeds pushed.)
			if st.Consumed > st.Pushed {
				t.Fatalf("consumed %d > pushed %d", st.Consumed, st.Pushed)
			}
		})
	}
}

func TestDropPolicyDeterministicAccounting(t *testing.T) {
	s := rawShard(t, ShardedConfig{Policy: Drop, RingCap: 4})
	const attempts = 1000
	for i := 0; i < attempts; i++ {
		if err := s.Add(Ref{PC: i, Addr: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	pushed, dropped := s.pushed.Load(), s.dropped.Load()
	if pushed != 4 {
		t.Errorf("pushed = %d, want 4 (ring capacity, consumer never drains)", pushed)
	}
	if pushed+dropped != attempts {
		t.Errorf("pushed %d + dropped %d != attempts %d", pushed, dropped, attempts)
	}
}

// TestDropPolicyStressAccounting checks drop counts stay exact while a live
// consumer races the producer: every attempt is either pushed or dropped,
// and after Close everything pushed has been consumed.
func TestDropPolicyStressAccounting(t *testing.T) {
	attempts := 200000
	if testing.Short() {
		attempts = 20000
	}
	sp, err := NewShardedProfileConfig(ShardedConfig{Shards: 1, Policy: Drop, RingCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := sp.Shard(0)
	for i := 0; i < attempts; i++ {
		if err := s.Add(Ref{PC: i % 64, Addr: uint64(i % 256)}); err != nil {
			t.Fatal(err)
		}
	}
	sp.Close()
	pushed, dropped, consumed := s.pushed.Load(), s.dropped.Load(), s.consumed.Load()
	if pushed+dropped != uint64(attempts) {
		t.Errorf("pushed %d + dropped %d != attempts %d", pushed, dropped, attempts)
	}
	if consumed != pushed {
		t.Errorf("consumed %d != pushed %d after Close", consumed, pushed)
	}
	if sp.Len() != pushed {
		t.Errorf("Len = %d, want %d", sp.Len(), pushed)
	}
}

func TestSamplePolicyDegradation(t *testing.T) {
	const n = 4
	s := rawShard(t, ShardedConfig{Policy: Sample, RingCap: 4, SampleInterval: n})
	add := func() {
		t.Helper()
		if err := s.Add(Ref{PC: 1, Addr: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Ring fills at full acceptance.
	for i := 0; i < 4; i++ {
		add()
	}
	if got := s.pushed.Load(); got != 4 {
		t.Fatalf("pushed = %d, want 4", got)
	}
	// First rejection: dropped, and the shard degrades.
	add()
	if got := s.dropped.Load(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	if !s.degraded {
		t.Fatal("shard should be degraded after a full-ring rejection")
	}
	// Degraded: only every n-th reference is attempted; the rest are
	// sampled out without touching the ring.
	for i := 0; i < 2*n; i++ {
		add()
	}
	if got := s.sampledOut.Load(); got != 2*(n-1) {
		t.Errorf("sampled = %d, want %d", got, 2*(n-1))
	}
	if got := s.dropped.Load(); got != 3 {
		t.Errorf("dropped = %d, want 3 (initial + one per degraded attempt)", got)
	}
	if got := s.pushed.Load(); got != 4 {
		t.Errorf("pushed = %d, want 4 (ring still full)", got)
	}
	// Drain below half capacity; the next attempted push succeeds and the
	// shard recovers to full acceptance.
	var buf [3]Ref
	s.q.PopBatch(buf[:])
	for i := 0; i < n; i++ {
		add()
	}
	if s.degraded {
		t.Error("shard should have recovered after the backlog receded")
	}
	if got := s.pushed.Load(); got != 5 {
		t.Errorf("pushed = %d, want 5 after recovery push", got)
	}
}

// TestGrammarBudgetCycling is the bounded-memory acceptance run: a shard
// with MaxGrammarSymbols set must keep its peak grammar size at or under
// the budget across a 10M-reference synthetic trace while still detecting
// the planted hot stream across cycle resets.
func TestGrammarBudgetCycling(t *testing.T) {
	total := 10_000_000
	if testing.Short() {
		total = 500_000
	}
	const budget = 2048
	cycleCfg := AnalysisConfig{MinLen: 10, MaxLen: 100, MinUnique: 10, MinCoverage: 0.01, MaxStreams: 100}
	sp, err := NewShardedProfileConfig(ShardedConfig{
		Shards:            1,
		MaxGrammarSymbols: budget,
		CycleAnalysis:     cycleCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := sp.Shard(0)

	// Planted hot stream: 12 fixed references, separated by unique noise so
	// the grammar keeps growing and must cycle.
	stream := make([]Ref, 12)
	for i := range stream {
		stream[i] = Ref{PC: 100 + i, Addr: uint64(0x1000 + 8*i)}
	}
	added := 0
	for noise := 0; added < total; noise++ {
		for _, r := range stream {
			s.Add(r)
		}
		s.Add(Ref{PC: 500000 + noise, Addr: uint64(noise)})
		added += len(stream) + 1
	}
	if err := sp.Flush(); err != nil {
		t.Fatal(err)
	}

	st := sp.Stats()
	if st.Resets == 0 {
		t.Fatalf("no grammar resets across %d references with budget %d", added, budget)
	}
	if peak := st.Shards[0].PeakGrammarSize; peak > budget {
		t.Errorf("peak grammar size %d exceeds budget %d", peak, budget)
	}
	if st.GrammarSize > budget {
		t.Errorf("live grammar size %d exceeds budget %d", st.GrammarSize, budget)
	}
	if st.Consumed != uint64(added) {
		t.Errorf("consumed %d, want %d", st.Consumed, added)
	}

	streams := sp.HotStreams(AnalysisConfig{MinLen: 2, MaxLen: 100, MinCoverage: 0.001, MaxStreams: 100})
	found := false
	for _, hs := range streams {
		for _, r := range hs.Refs {
			if r == stream[0] {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("planted hot stream not detected across %d cycle resets", st.Resets)
	}
	sp.Close()
}

// TestGrammarResetRacesObservers cycles the grammar continuously while other
// goroutines snapshot Stats — run under -race this validates that cycling,
// counter reads, and retained-stream access are properly synchronized.
func TestGrammarResetRacesObservers(t *testing.T) {
	total := 300000
	if testing.Short() {
		total = 50000
	}
	sp, err := NewShardedProfileConfig(ShardedConfig{
		Shards:            1,
		MaxGrammarSymbols: 256,
		CycleAnalysis:     AnalysisConfig{MinLen: 2, MaxLen: 100, MinCoverage: 0.05, MaxStreams: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = sp.Stats().String()
			}
		}
	}()
	s := sp.Shard(0)
	for i := 0; i < total; i++ {
		// Alternate a short repeating motif with unique noise so the
		// grammar both compresses and keeps growing toward the budget.
		if i%3 == 0 {
			s.Add(Ref{PC: i, Addr: uint64(i)})
		} else {
			s.Add(Ref{PC: i % 4, Addr: uint64(i % 8)})
		}
	}
	if err := sp.Flush(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if st := sp.Stats(); st.Resets == 0 {
		t.Error("expected at least one grammar reset")
	}
	sp.Close()
}

// TestFlushBoundedUnderActiveProducers regresses the Flush livelock: with
// producers continuously refilling the rings, Flush used to chase the
// pushed counter forever. Now it snapshots its target on entry and must
// return promptly.
func TestFlushBoundedUnderActiveProducers(t *testing.T) {
	sp, err := NewShardedProfileConfig(ShardedConfig{Shards: 2, RingCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < sp.NumShards(); i++ {
		wg.Add(1)
		go func(s *ProfileShard) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
					s.Add(Ref{PC: j % 32, Addr: uint64(j % 64)})
				}
			}
		}(sp.Shard(i))
	}
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; i < 20; i++ {
		if err := sp.Flush(); err != nil {
			t.Fatalf("Flush %d: %v", i, err)
		}
		if time.Now().After(deadline) {
			t.Fatal("Flush calls did not complete promptly under active producers")
		}
	}
	close(stop)
	wg.Wait()
	sp.Close()
}

// TestFlushStalledConsumer checks the bounded-wait error path: a shard whose
// consumer never runs cannot drain, so Flush must give up with
// ErrFlushStalled instead of spinning forever.
func TestFlushStalledConsumer(t *testing.T) {
	cfg := ShardedConfig{Shards: 1, FlushStallTimeout: 20 * time.Millisecond}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	sp := newShardedProfile(cfg) // consumers intentionally not started
	sp.Shard(0).Add(Ref{PC: 1, Addr: 1})
	start := time.Now()
	err := sp.Flush()
	if !errors.Is(err, ErrFlushStalled) {
		t.Fatalf("Flush = %v, want ErrFlushStalled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Flush took %v to give up, want bounded by the stall timeout", elapsed)
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	sp, err := NewShardedProfileConfig(ShardedConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	trace := shardTrace(1, 100)
	if err := sp.Shard(0).AddAll(trace); err != nil {
		t.Fatal(err)
	}
	if err := sp.Flush(); err != nil {
		t.Fatal(err)
	}
	streams := sp.HotStreams(AnalysisConfig{MinLen: 2, MaxLen: 100, MinCoverage: 0.1})
	if len(streams) == 0 {
		t.Fatal("no hot streams")
	}
	cm, err := NewConcurrentMatcher(streams, 2)
	if err != nil {
		t.Fatal(err)
	}
	sp.AttachMatcher(cm)
	for _, r := range trace[:100] {
		cm.Observe(r)
	}

	st := sp.Stats()
	if st.Pushed != uint64(len(trace)) || st.Consumed != uint64(len(trace)) {
		t.Errorf("pushed/consumed = %d/%d, want %d", st.Pushed, st.Consumed, len(trace))
	}
	if st.MergeCount == 0 {
		t.Error("merge count not recorded")
	}
	if st.MatcherObservations != 100 {
		t.Errorf("matcher observations = %d, want 100", st.MatcherObservations)
	}
	if st.Shards[1].Pushed != 0 {
		t.Errorf("idle shard pushed = %d, want 0", st.Shards[1].Pushed)
	}

	// expvar compatibility: String() is the JSON encoding and it round-trips.
	var back Stats
	if err := json.Unmarshal([]byte(st.String()), &back); err != nil {
		t.Fatalf("Stats.String() is not valid JSON: %v", err)
	}
	if !reflect.DeepEqual(st, back) {
		t.Errorf("Stats JSON round-trip diverged:\n got %+v\nwant %+v", back, st)
	}
}

func TestShardedConfigValidate(t *testing.T) {
	bad := []ShardedConfig{
		{Policy: IngestPolicy(42)},
		{SampleInterval: -1},
		{RingCap: -4},
		{MaxGrammarSymbols: -1},
		{MaxGrammarSymbols: 4},
		{FlushStallTimeout: -time.Second},
		{CycleAnalysis: AnalysisConfig{MinLen: -1}},
		{AnalysisWorkers: -1},
		{AnalysisTimeout: -time.Second},
		{BreakerThreshold: -1},
		{BreakerBackoff: -time.Millisecond},
		{BreakerMaxBackoff: -time.Millisecond},
	}
	for i, cfg := range bad {
		if _, err := NewShardedProfileConfig(cfg); err == nil {
			t.Errorf("config %d (%+v) accepted, want error", i, cfg)
		}
	}
	sp, err := NewShardedProfileConfig(ShardedConfig{})
	if err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	sp.Close()
}

func TestParseIngestPolicy(t *testing.T) {
	for _, p := range []IngestPolicy{Block, Drop, Sample} {
		got, err := ParseIngestPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseIngestPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseIngestPolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

// TestAddBatchMatchesAdd checks batched ingestion is observationally
// identical to per-reference ingestion: same consumed count, same hot
// streams.
func TestAddBatchMatchesAdd(t *testing.T) {
	trace := shardTrace(1, 300)
	cfg := AnalysisConfig{MinLen: 2, MaxLen: 100, MinCoverage: 0.01, MaxStreams: 50}

	batched := NewShardedProfile(1)
	defer batched.Close()
	for i := 0; i < len(trace); i += 100 {
		end := i + 100
		if end > len(trace) {
			end = len(trace)
		}
		if err := batched.AddBatch(0, trace[i:end]); err != nil {
			t.Fatal(err)
		}
	}

	single := NewShardedProfile(1)
	defer single.Close()
	if err := single.Shard(0).AddAll(trace); err != nil {
		t.Fatal(err)
	}

	if got, want := batched.Len(), single.Len(); got != want {
		t.Fatalf("batched Len = %d, per-ref Len = %d", got, want)
	}
	got, want := batched.HotStreams(cfg), single.HotStreams(cfg)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("batched HotStreams diverge from per-ref:\n got %v\nwant %v", got, want)
	}
}

// TestAddBatchDropAccounting mirrors the Drop Add accounting test: every
// reference in a batch is either pushed or counted dropped, never silently
// lost.
func TestAddBatchDropAccounting(t *testing.T) {
	s := rawShard(t, ShardedConfig{Policy: Drop, RingCap: 4})
	const attempts = 1000
	refs := make([]Ref, attempts)
	for i := range refs {
		refs[i] = Ref{PC: i, Addr: uint64(i)}
	}
	if err := s.AddBatch(refs); err != nil {
		t.Fatal(err)
	}
	pushed, dropped := s.pushed.Load(), s.dropped.Load()
	if pushed != 4 {
		t.Errorf("pushed = %d, want 4 (ring capacity, consumer never drains)", pushed)
	}
	if pushed+dropped != attempts {
		t.Errorf("pushed %d + dropped %d != attempts %d", pushed, dropped, attempts)
	}
	if err := s.AddBatch(nil); err != nil {
		t.Errorf("AddBatch(nil) = %v, want nil", err)
	}
}

// TestAddBatchRacingClose races batch producers against Close: the producer
// must come to rest with ErrClosed (never spin forever against stopped
// consumers), and every reference it managed to push must be accounted.
// Run under -race this also validates the batch-push/close synchronization.
func TestAddBatchRacingClose(t *testing.T) {
	for _, policy := range []IngestPolicy{Block, Drop, Sample} {
		t.Run(policy.String(), func(t *testing.T) {
			sp, err := NewShardedProfileConfig(ShardedConfig{Shards: 1, Policy: policy, RingCap: 64})
			if err != nil {
				t.Fatal(err)
			}
			s := sp.Shard(0)
			batch := make([]Ref, 48)
			for i := range batch {
				batch[i] = Ref{PC: i % 7, Addr: uint64(i % 5)}
			}
			errc := make(chan error, 1)
			started := make(chan struct{})
			go func() {
				close(started)
				for {
					if err := s.AddBatch(batch); err != nil {
						errc <- err
						return
					}
				}
			}()
			<-started
			sp.Close()
			if err := <-errc; !errors.Is(err, ErrClosed) {
				t.Fatalf("AddBatch after Close = %v, want ErrClosed", err)
			}
			// Refs pushed after the consumer's final drain stay in the ring;
			// consumed can never exceed pushed.
			if p, c := s.pushed.Load(), s.consumed.Load(); c > p {
				t.Errorf("consumed %d > pushed %d", c, p)
			}
		})
	}
}

// TestPipelinedMatchesInline is the differential acceptance check for
// pipelined phase transitions: the same trace pushed through an inline-cycling
// service and a background-pool service must yield the same hot-stream set —
// same words, same heats — and matchers built over the two sets must charge
// identical comparison counts. Cycle points are deterministic (the budget is
// checked per reference), so only merge order may differ; both sets are
// canonicalized before comparison.
func TestPipelinedMatchesInline(t *testing.T) {
	trace := shardTrace(3, 2000)
	cycleCfg := AnalysisConfig{MinLen: 2, MaxLen: 100, MinCoverage: 0.01}
	run := func(workers int) []Stream {
		sp, err := NewShardedProfileConfig(ShardedConfig{
			Shards:            1,
			MaxGrammarSymbols: 256,
			CycleAnalysis:     cycleCfg,
			AnalysisWorkers:   workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sp.Close()
		if err := sp.AddBatch(0, trace); err != nil {
			t.Fatal(err)
		}
		streams := sp.HotStreams(cycleCfg)
		if st := sp.Stats(); st.Resets == 0 {
			t.Fatalf("workers=%d: no grammar cycles ran; differential test needs cycling", workers)
		} else if workers > 0 && st.CyclesAnalyzed == 0 {
			t.Errorf("workers=%d: resets=%d but no background analyses recorded", workers, st.Resets)
		}
		return streams
	}
	inline := canonicalStreams(run(0))
	piped := canonicalStreams(run(2))
	if len(inline) == 0 {
		t.Fatal("inline run found no hot streams")
	}
	if len(inline) != len(piped) {
		t.Fatalf("inline found %d streams, pipelined %d", len(inline), len(piped))
	}
	for i := range inline {
		if inline[i].Heat != piped[i].Heat || !reflect.DeepEqual(inline[i].Refs, piped[i].Refs) {
			t.Fatalf("stream %d diverges:\n inline %v\n piped  %v", i, inline[i], piped[i])
		}
	}

	mi, err := NewMatcher(inline, 2)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := NewMatcher(piped, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range trace[:2000] {
		pf1, c1 := mi.Observe(r)
		pf2, c2 := mp.Observe(r)
		if c1 != c2 || !reflect.DeepEqual(pf1, pf2) {
			t.Fatalf("ref %d: inline matcher (%v, %d) != pipelined matcher (%v, %d)", i, pf1, c1, pf2, c2)
		}
	}
}

// canonicalStreams orders streams by heat (hottest first) breaking ties by
// reference sequence, removing the merge-order dependence among equal heats
// so stream sets can be compared across scheduling histories.
func canonicalStreams(streams []Stream) []Stream {
	out := make([]Stream, len(streams))
	copy(out, streams)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Heat != out[j].Heat {
			return out[i].Heat > out[j].Heat
		}
		a, b := out[i].Refs, out[j].Refs
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k].PC != b[k].PC {
				return a[k].PC < b[k].PC
			}
			if a[k].Addr != b[k].Addr {
				return a[k].Addr < b[k].Addr
			}
		}
		return len(a) < len(b)
	})
	return out
}

// TestGrammarSwapRacesAddStats churns grammar budget cycles through the
// background analysis pool while producers batch references in and an
// observer snapshots Stats — run under -race this validates the spare-grammar
// swap, the analysis queue, and the pipeline counters.
func TestGrammarSwapRacesAddStats(t *testing.T) {
	const shards = 2
	sp, err := NewShardedProfileConfig(ShardedConfig{
		Shards:            shards,
		MaxGrammarSymbols: 256,
		CycleAnalysis:     AnalysisConfig{MinLen: 2, MaxLen: 100, MinCoverage: 0.05, MaxStreams: 20},
		AnalysisWorkers:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var obs sync.WaitGroup
	obs.Add(1)
	go func() {
		defer obs.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = sp.Stats().String()
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			trace := shardTrace(i+1, 2000)
			for len(trace) > 0 {
				n := 64
				if n > len(trace) {
					n = len(trace)
				}
				if err := sp.AddBatch(i, trace[:n]); err != nil {
					t.Error(err)
					return
				}
				trace = trace[n:]
			}
		}(i)
	}
	wg.Wait()
	streams := sp.HotStreams(AnalysisConfig{MinLen: 2, MaxLen: 100, MinCoverage: 0.001, MaxStreams: 100})
	if len(streams) == 0 {
		t.Error("no hot streams survived pipelined cycling")
	}
	close(stop)
	obs.Wait()
	st := sp.Stats()
	if st.Resets == 0 {
		t.Error("no grammar cycles ran")
	}
	if st.CyclesAnalyzed != st.Resets {
		t.Errorf("CyclesAnalyzed = %d, want %d (every cycle analyzed after drain)", st.CyclesAnalyzed, st.Resets)
	}
	if st.AnalysisLatency.Max == 0 {
		t.Error("AnalysisLatency.Max = 0 after background cycles")
	}
	if st.AnalysisLatency.Count != st.CyclesAnalyzed {
		t.Errorf("AnalysisLatency.Count = %d, want %d (one observation per analyzed cycle)",
			st.AnalysisLatency.Count, st.CyclesAnalyzed)
	}
	sp.Close()
	if st := sp.Stats(); st.AnalysisQueueDepth != 0 {
		t.Errorf("AnalysisQueueDepth = %d after Close, want 0", st.AnalysisQueueDepth)
	}
}
