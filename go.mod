module hotprefetch

go 1.22
