package hotprefetch_test

// FuzzPredictorObserve feeds arbitrary byte strings through the full
// predictor pipeline: the input decodes into a training stream and an
// observation trace, a fuzzer-chosen implementation is built over the
// stream, and the trace replays through two independent instances. The
// invariants are the conformance suite's, checked on adversarial input:
// no panic anywhere, at least one comparison per observation, bit-exact
// agreement between the twin instances, and accuracy books that balance.

import (
	"reflect"
	"testing"

	"hotprefetch"
)

// decodeRefs turns fuzz bytes into references, 3 bytes per ref: one for the
// pc (small space, so streams repeat pcs) and two for the address (quantized
// so hits, strides, and page crossings all occur).
func decodeRefs(data []byte) []hotprefetch.Ref {
	out := make([]hotprefetch.Ref, 0, len(data)/3)
	for i := 0; i+2 < len(data); i += 3 {
		out = append(out, hotprefetch.Ref{
			PC:   int(data[i] % 32),
			Addr: uint64(data[i+1])<<8 | uint64(data[i+2]),
		})
	}
	return out
}

func FuzzPredictorObserve(f *testing.F) {
	// Seeds: a strided walk, a repeating pointer chain, and noise — one per
	// predictor family's sweet spot, so coverage starts in interesting
	// states for all three implementations.
	f.Add([]byte{0, 4, 8, 1, 0x10, 0x00, 1, 0x10, 0x20, 1, 0x10, 0x40, 1, 0x10, 0x60, 1, 0x10, 0x80})
	f.Add([]byte{1, 9, 3, 2, 0xaa, 0x00, 3, 0xbb, 0x40, 4, 0xcc, 0x80, 2, 0xaa, 0x00, 3, 0xbb, 0x40, 4, 0xcc, 0x80})
	f.Add([]byte{2, 0, 1, 7, 0x01, 0x03, 5, 0x09, 0x02, 6, 0x7f, 0xff, 7, 0x01, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		// The built-in trio is spelled out rather than read from
		// PredictorNames(): other test files in this package register
		// deliberately-misbehaving predictors, and a fixed list keeps the
		// seed byte's mapping stable as registrations come and go.
		names := []string{"dfsm", "markov", "stride"}
		name := names[int(data[0])%len(names)]
		window := int(data[1]%16) + 1
		heat := uint64(data[2]) // zero heat is a valid, interesting case
		refs := decodeRefs(data[3:])
		if len(refs) == 0 {
			return
		}
		// First half trains, the whole sequence replays: the trace revisits
		// the trained region, so prefetch issue, hits, coalescing, and
		// window evictions all fire.
		var streams []hotprefetch.Stream
		if cut := len(refs) / 2; cut > 0 {
			streams = []hotprefetch.Stream{{Refs: refs[:cut], Heat: heat}}
		}
		a, err := hotprefetch.NewPredictor(name, streams, 2)
		if err != nil {
			t.Fatalf("%s: build failed on fuzz streams: %v", name, err)
		}
		b, err := hotprefetch.NewPredictor(name, streams, 2)
		if err != nil {
			t.Fatalf("%s: twin build failed: %v", name, err)
		}
		a.EnableAccuracyTracking(window)
		b.EnableAccuracyTracking(window)
		var issuedSum uint64
		for i, r := range refs {
			pfA, cmpA := a.Observe(r)
			pfB, cmpB := b.Observe(r)
			if cmpA < 1 {
				t.Fatalf("%s: comparisons = %d at ref %d, want >= 1", name, cmpA, i)
			}
			if cmpA != cmpB || !reflect.DeepEqual(pfA, pfB) {
				t.Fatalf("%s: twins diverged at ref %d: (%v, %d) != (%v, %d)",
					name, i, pfA, cmpA, pfB, cmpB)
			}
			issuedSum += uint64(len(pfA))
		}
		books, ok := a.(hotprefetch.AccuracyBooks)
		if !ok {
			t.Fatalf("%s does not implement AccuracyBooks", name)
		}
		issued, hits, outstanding, dropped := books.AccuracyBooks()
		if issued != hits+outstanding+dropped {
			t.Fatalf("%s: books do not balance: issued=%d hits=%d outstanding=%d dropped=%d",
				name, issued, hits, outstanding, dropped)
		}
		if issued != issuedSum {
			t.Fatalf("%s: ledger issued=%d, observed %d", name, issued, issuedSum)
		}
		cIssued, cHits := a.AccuracyCounters()
		if cIssued != issued || cHits != hits {
			t.Fatalf("%s: AccuracyCounters (%d, %d) disagree with books (%d, %d)",
				name, cIssued, cHits, issued, hits)
		}
	})
}
