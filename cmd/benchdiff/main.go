// Command benchdiff compares a fresh `go test -bench` run against the
// checked-in baseline JSONs (BENCH_core.json, BENCH_pipeline.json) and fails
// when a benchmark regresses beyond the tolerance. It prints a markdown diff
// table, so CI can append it to the job summary:
//
//	go test -run '^$' -bench . -benchmem . ./internal/ring | \
//	    go run ./cmd/benchdiff -baseline BENCH_core.json -baseline BENCH_pipeline.json
//
// ns/op is gated at +tolerance (default 20%): simulator-grade CI machines
// are noisy, so only a regression past the band fails; a large improvement
// is reported but passes (refresh the baseline when it sticks). allocs/op
// is gated in both directions with the same relative band — for the
// zero-alloc hot paths the band is exactly zero, so a single steady-state
// allocation appearing is a hard failure.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// measure is one benchmark's numbers, from either side of the diff.
type measure struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	hasAllocs   bool
}

// baselineEntry accepts both checked-in shapes: BENCH_pipeline.json records
// flat measures; BENCH_core.json records {"pre": ..., "post": ...} pairs,
// where post is the current expected state.
type baselineEntry struct {
	measure
	Post *measure `json:"post"`
}

type baselineFile struct {
	Benchmarks map[string]json.RawMessage `json:"benchmarks"`
}

// multiFlag collects a repeatable -baseline flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var baselines multiFlag
	fs.Var(&baselines, "baseline", "baseline JSON file (repeatable)")
	input := fs.String("input", "", "read `go test -bench` output from this file instead of stdin")
	tolerance := fs.Float64("tolerance", 0.20, "relative tolerance band")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(baselines) == 0 {
		return fmt.Errorf("at least one -baseline file is required")
	}

	base := map[string]measure{}
	for _, path := range baselines {
		if err := loadBaseline(path, base); err != nil {
			return err
		}
	}

	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	current, err := parseBenchOutput(in)
	if err != nil {
		return err
	}

	return report(out, base, current, *tolerance)
}

func loadBaseline(path string, into map[string]measure) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	for name, raw := range bf.Benchmarks {
		var e baselineEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			return fmt.Errorf("%s: %s: %w", path, name, err)
		}
		m := e.measure
		if e.Post != nil {
			m = *e.Post
		}
		// The checked-in zero-alloc paths record allocs explicitly; treat
		// every baseline entry as alloc-gated.
		m.hasAllocs = true
		into[name] = m
	}
	return nil
}

// pkgPrefixes maps `pkg:` header lines in bench output to the name prefix
// the baseline files use (the root package is unprefixed).
var pkgPrefixes = map[string]string{
	"hotprefetch/internal/ring":      "ring.",
	"hotprefetch/internal/tracefile": "tracefile.",
	"hotprefetch/client":             "client.",
}

var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBenchOutput reads standard `go test -bench` text: `pkg:` headers
// select the name prefix; each benchmark line yields ns/op and, with
// -benchmem, B/op and allocs/op. The `-N` GOMAXPROCS suffix is stripped so
// names match the baselines regardless of the CI machine's core count.
func parseBenchOutput(r io.Reader) (map[string]measure, error) {
	out := map[string]measure{}
	prefix := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if pkg, ok := strings.CutPrefix(line, "pkg: "); ok {
			prefix = pkgPrefixes[strings.TrimSpace(pkg)]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := prefix + m[1]
		var meas measure
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				meas.NsPerOp = v
			case "B/op":
				meas.BytesPerOp = v
			case "allocs/op":
				meas.AllocsPerOp = v
				meas.hasAllocs = true
			}
		}
		if meas.NsPerOp == 0 {
			continue // e.g. a custom-metric-only line
		}
		out[name] = meas
	}
	return out, sc.Err()
}

func report(w io.Writer, base, current map[string]measure, tol float64) error {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "| benchmark | base ns/op | now ns/op | Δ | base allocs | now allocs | status |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|---|\n")
	failed := 0
	missing := 0
	for _, name := range names {
		b := base[name]
		c, ok := current[name]
		if !ok {
			missing++
			fmt.Fprintf(w, "| %s | %s | — | — | %.0f | — | MISSING |\n", name, fmtNs(b.NsPerOp), b.AllocsPerOp)
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		status := "ok"
		switch {
		case delta > tol:
			status = "**FAIL: slower**"
			failed++
		case delta < -tol:
			status = "improved (refresh baseline?)"
		}
		switch {
		case b.hasAllocs && !c.hasAllocs && b.AllocsPerOp == 0:
			// A zero-alloc baseline compared against a run without
			// -benchmem would silently skip the alloc gate — the exact
			// regression the gate exists to catch slips through unchecked.
			status = "**FAIL: no alloc data (zero-alloc baseline; run with -benchmem)**"
			failed++
		case b.hasAllocs && c.hasAllocs && !allocsWithin(b.AllocsPerOp, c.AllocsPerOp, tol):
			status = "**FAIL: allocs**"
			failed++
		}
		fmt.Fprintf(w, "| %s | %s | %s | %+.1f%% | %.0f | %s | %s |\n",
			name, fmtNs(b.NsPerOp), fmtNs(c.NsPerOp), 100*delta, b.AllocsPerOp, fmtAllocs(c), status)
	}
	fmt.Fprintf(w, "\n%d compared, %d failed, %d missing from this run (tolerance ±%.0f%%)\n",
		len(names)-missing, failed, missing, 100*tol)
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond ±%.0f%%", failed, 100*tol)
	}
	return nil
}

// allocsWithin applies the relative band to allocs/op; a zero baseline
// admits only zero.
func allocsWithin(base, now, tol float64) bool {
	return now >= base*(1-tol) && now <= base*(1+tol)
}

func fmtNs(v float64) string {
	if v >= 1000 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

func fmtAllocs(m measure) string {
	if !m.hasAllocs {
		return "—"
	}
	return strconv.FormatFloat(m.AllocsPerOp, 'f', 0, 64)
}
