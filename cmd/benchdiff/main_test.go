package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: hotprefetch
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkProfileAdd-8      	 2850992	       430.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkMatcherObserve-8  	212480155	         5.60 ns/op	       0 B/op	       0 allocs/op
BenchmarkCycleTurnaroundInline-8   	 3105198	       386.0 ns/op	    419582 max_stall_ns	       5 B/op	       0 allocs/op
BenchmarkAddBatch/batch16-8        	 2592928	       460.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkFigure11Base-8            	       1	999999999 ns/op
PASS
pkg: hotprefetch/internal/ring
BenchmarkPushPop-8         	67573528	        17.70 ns/op	       0 B/op	       0 allocs/op
PASS
pkg: hotprefetch/client
BenchmarkClientPublish-8   	   17665	     33900 ns/op	    1496 B/op	      12 allocs/op
PASS
`

const sampleBaseline = `{
  "benchmarks": {
    "BenchmarkProfileAdd": {
      "pre": {"ns_per_op": 921.0, "bytes_per_op": 292, "allocs_per_op": 6},
      "post": {"ns_per_op": 420.1, "bytes_per_op": 0, "allocs_per_op": 0}
    },
    "BenchmarkMatcherObserve": {
      "pre": {"ns_per_op": 11.98, "bytes_per_op": 0, "allocs_per_op": 0},
      "post": {"ns_per_op": 5.493, "bytes_per_op": 0, "allocs_per_op": 0}
    },
    "BenchmarkCycleTurnaroundInline": {"ns_per_op": 386.3, "max_stall_ns": 419582},
    "BenchmarkAddBatch/batch16": {"ns_per_op": 462.7, "bytes_per_op": 0, "allocs_per_op": 0},
    "ring.BenchmarkPushPop": {"ns_per_op": 17.60, "bytes_per_op": 0, "allocs_per_op": 0},
    "client.BenchmarkClientPublish": {"ns_per_op": 33867, "bytes_per_op": 1496, "allocs_per_op": 12}
  }
}`

func writeBaseline(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffClean compares a run that sits within tolerance of the baseline:
// every row must be matched (both baseline shapes, the subbenchmark name,
// the custom-metric line, and the ring.-prefixed cross-package name) and
// the command must succeed.
func TestDiffClean(t *testing.T) {
	path := writeBaseline(t, sampleBaseline)
	var out strings.Builder
	err := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "6 compared, 0 failed, 0 missing") {
		t.Errorf("wrong summary:\n%s", got)
	}
	for _, name := range []string{
		"BenchmarkProfileAdd", "BenchmarkMatcherObserve",
		"BenchmarkCycleTurnaroundInline", "BenchmarkAddBatch/batch16",
		"ring.BenchmarkPushPop", "client.BenchmarkClientPublish",
	} {
		if !strings.Contains(got, "| "+name+" |") {
			t.Errorf("missing row for %s:\n%s", name, got)
		}
	}
	if strings.Contains(got, "FAIL") {
		t.Errorf("unexpected failure row:\n%s", got)
	}
}

// TestDiffRegression makes the baseline much faster than the run, so every
// ns/op comparison breaches +20% and the command must fail.
func TestDiffRegression(t *testing.T) {
	path := writeBaseline(t, `{"benchmarks": {
		"BenchmarkProfileAdd": {"ns_per_op": 100.0, "allocs_per_op": 0}
	}}`)
	var out strings.Builder
	err := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out)
	if err == nil {
		t.Fatalf("run succeeded on a 4x regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL: slower") {
		t.Errorf("missing regression marker:\n%s", out.String())
	}
}

// TestDiffAllocRegression pins the zero-alloc gate: a baseline of 0
// allocs/op admits only 0, whatever the tolerance.
func TestDiffAllocRegression(t *testing.T) {
	path := writeBaseline(t, `{"benchmarks": {
		"BenchmarkProfileAdd": {"ns_per_op": 430.0, "allocs_per_op": 0}
	}}`)
	bench := "pkg: hotprefetch\nBenchmarkProfileAdd-8 100 430.0 ns/op 16 B/op 1 allocs/op\n"
	var out strings.Builder
	err := run([]string{"-baseline", path}, strings.NewReader(bench), &out)
	if err == nil {
		t.Fatalf("run succeeded with a new allocation on a zero-alloc path:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL: allocs") {
		t.Errorf("missing alloc marker:\n%s", out.String())
	}
}

// TestDiffNoAllocData: a zero-alloc baseline compared against a run made
// without -benchmem must fail — otherwise the alloc gate silently skips.
func TestDiffNoAllocData(t *testing.T) {
	path := writeBaseline(t, `{"benchmarks": {
		"BenchmarkProfileAdd": {"ns_per_op": 430.0, "allocs_per_op": 0},
		"BenchmarkWithAllocs": {"ns_per_op": 100.0, "allocs_per_op": 5}
	}}`)
	// Neither line carries allocs/op; only the zero-alloc baseline fails.
	bench := "pkg: hotprefetch\n" +
		"BenchmarkProfileAdd-8 100 430.0 ns/op\n" +
		"BenchmarkWithAllocs-8 100 100.0 ns/op\n"
	var out strings.Builder
	err := run([]string{"-baseline", path}, strings.NewReader(bench), &out)
	if err == nil {
		t.Fatalf("run succeeded with no alloc data against a zero-alloc baseline:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL: no alloc data") {
		t.Errorf("missing no-alloc-data marker:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "1 benchmark(s)") {
		t.Errorf("nonzero-alloc baseline without data should pass, got: %v", err)
	}
}

// TestDiffImprovementPasses: faster than the band reports but does not fail.
func TestDiffImprovementPasses(t *testing.T) {
	path := writeBaseline(t, `{"benchmarks": {
		"BenchmarkProfileAdd": {"ns_per_op": 2000.0, "allocs_per_op": 0}
	}}`)
	var out strings.Builder
	if err := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatalf("run failed on an improvement: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "improved") {
		t.Errorf("missing improvement note:\n%s", out.String())
	}
}

// TestDiffMissing: a baseline entry absent from the run is reported but not
// fatal (CI may run a benchmark subset).
func TestDiffMissing(t *testing.T) {
	path := writeBaseline(t, `{"benchmarks": {
		"BenchmarkNoSuchThing": {"ns_per_op": 10.0, "allocs_per_op": 0}
	}}`)
	var out strings.Builder
	if err := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "MISSING") || !strings.Contains(out.String(), "1 missing") {
		t.Errorf("missing-benchmark row not reported:\n%s", out.String())
	}
}

// TestErrors pins the argument failure modes.
func TestErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(""), &out); err == nil {
		t.Error("run succeeded with no baselines")
	}
	if err := run([]string{"-baseline", "/nonexistent.json"}, strings.NewReader(""), &out); err == nil {
		t.Error("run succeeded with an unreadable baseline")
	}
	path := writeBaseline(t, "{not json")
	if err := run([]string{"-baseline", path}, strings.NewReader(""), &out); err == nil {
		t.Error("run succeeded with a corrupt baseline")
	}
}
