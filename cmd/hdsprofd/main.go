// Command hdsprofd is the networked multi-tenant profiling daemon: it hosts
// the hotprefetch.Service HTTP API — trace ingest, per-tenant hot streams,
// stats, and Prometheus metrics — on one address with one graceful-shutdown
// lifecycle. Remote processes embed the client package (or POST
// tracefile-framed bodies directly) to publish their reference streams;
// each tenant key gets an independent sharded profile built from the flags
// below.
//
// Usage:
//
//	hdsprofd -listen :9190
//	hdsprofd -listen :9190 -shards 4 -membudget 4096 -workers 2 \
//	         -policy drop -burst paper -quota 10000000 -tenants 128
//
// SIGINT/SIGTERM drains gracefully: the HTTP server stops accepting work
// and finishes in-flight publishes and scrapes first (bounded by
// -draintimeout), then the tenant profiles drain and close, then the final
// service stats print — so an interrupted daemon still reports complete,
// reconciled books.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"hotprefetch"
)

var (
	publishExpvar sync.Once
	currentSvc    atomic.Pointer[hotprefetch.Service]
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hdsprofd: ")
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		log.Fatal(err)
	}
}

// run is main minus the process plumbing, so tests can boot the daemon
// in-process against a real listener: ready (when non-nil) receives the
// bound address once the server is accepting.
func run(args []string, out io.Writer, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("hdsprofd", flag.ContinueOnError)
	listen := fs.String("listen", ":9190", "address to serve the profiling API on")
	shards := fs.Int("shards", 0, "shards per tenant profile (0 = 1)")
	policy := fs.String("policy", "block", "per-tenant ingestion policy: block, drop, or sample")
	sampleN := fs.Int("samplen", 16, "Sample policy: accept 1 in N under pressure")
	memBudget := fs.Int("membudget", 4096, "per-shard grammar symbol budget (0 = unbounded)")
	workers := fs.Int("workers", 1, "background analysis workers per tenant (0 = inline cycles)")
	burstFlag := fs.String("burst", "off", "bursty-sampling front end: off, paper, or nCheck:nInstr:nAwake:nHibernate")
	quota := fs.Uint64("quota", 0, "per-tenant lifetime reference quota (0 = unlimited)")
	tenants := fs.Int("tenants", 0, "max registered tenants before LRU eviction (0 = 64)")
	maxBody := fs.Int64("maxbody", 0, "max publish body bytes (0 = 32 MiB)")
	metricsTenants := fs.Int("metricstenants", 0, "tenant label cardinality bound for /metrics (0 = 16)")
	snapshotDir := fs.String("snapshot-dir", "", "directory for durable per-tenant snapshots (empty = disabled); tenants warm-start from it at boot")
	snapshotInterval := fs.Duration("snapshot-interval", time.Minute, "periodic checkpoint cadence when -snapshot-dir is set (<= 0 disables the loop)")
	predictor := fs.String("predictor", "", "prefetch predictor implementation advertised by this deployment (empty = dfsm; see GET /stats)")
	drainTimeout := fs.Duration("draintimeout", 10*time.Second, "how long shutdown waits for in-flight requests")
	if err := fs.Parse(args); err != nil {
		return err
	}

	pol, err := hotprefetch.ParseIngestPolicy(*policy)
	if err != nil {
		return err
	}
	burstCfg, err := hotprefetch.ParseBurstConfig(*burstFlag)
	if err != nil {
		return err
	}
	svc, err := hotprefetch.NewService(hotprefetch.ServiceConfig{
		Tenant: hotprefetch.ShardedConfig{
			Shards:            *shards,
			Policy:            pol,
			SampleInterval:    *sampleN,
			MaxGrammarSymbols: *memBudget,
			AnalysisWorkers:   *workers,
			Burst:             burstCfg,
			RefQuota:          *quota,
		},
		MaxTenants:       *tenants,
		MaxBodyBytes:     *maxBody,
		MetricsTenants:   *metricsTenants,
		SnapshotDir:      *snapshotDir,
		SnapshotInterval: *snapshotInterval,
		Predictor:        *predictor,
	})
	if err != nil {
		return err
	}
	if *snapshotDir != "" {
		if err := os.MkdirAll(*snapshotDir, 0o755); err != nil {
			svc.Close()
			return fmt.Errorf("snapshot dir: %w", err)
		}
		loaded, failed := svc.LoadSnapshots()
		log.Printf("warm start from %s: %d tenants restored, %d snapshots failed to load", *snapshotDir, loaded, failed)
	}

	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	// expvar registration is global and panics on duplicates; route through a
	// process-wide slot so a test can run the daemon more than once.
	currentSvc.Store(svc)
	publishExpvar.Do(func() {
		expvar.Publish("hotprefetch_service", expvar.Func(func() any {
			if s := currentSvc.Load(); s != nil {
				return s.Stats()
			}
			return nil
		}))
	})
	mux.Handle("GET /debug/vars", expvar.Handler())

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Printf("serving profiling API on http://%s (ingest, hotstreams, stats, metrics)", ln.Addr())
	if ready != nil {
		ready <- ln.Addr()
	}

	select {
	case <-ctx.Done():
		log.Printf("received shutdown signal: draining (timeout %v)", *drainTimeout)
	case err := <-serveErr:
		svc.Close()
		return fmt.Errorf("serve: %w", err)
	}

	// One lifecycle for every endpoint: the server's Shutdown finishes
	// in-flight publishes and scrapes against a live registry, and only then
	// do the tenant profiles drain and close.
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("shutdown: %v (closing anyway)", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	// Final checkpoint after the publish fence and before Close empties the
	// registry: every tenant's banked streams land durably, so the next boot
	// warm-starts from exactly what this run learned. A newer-generation
	// file (another instance took over the directory) is refused per tenant,
	// never clobbered.
	if *snapshotDir != "" {
		if n, err := svc.CheckpointAll(); err != nil {
			log.Printf("final checkpoint: %d written, %v", n, err)
		} else {
			log.Printf("final checkpoint: %d tenants written to %s", n, *snapshotDir)
		}
	}
	// Snapshot before Close empties the registry; the producer-side counters
	// the report prints are final because Shutdown fenced off new publishes.
	st := svc.Stats()
	svc.Close()
	fmt.Fprintf(out, "tenants      %d (evictions %d)\n", st.TenantCount, st.Evictions)
	fmt.Fprintf(out, "publishes    %d (%d refs; %d decode errors, %d rejected)\n",
		st.Publishes, st.PublishedRefs, st.DecodeErrors, st.Rejected)
	if *snapshotDir != "" {
		fmt.Fprintf(out, "snapshots    loads=%d loadfailures=%d writes=%d writeerrors=%d refused=%d\n",
			st.SnapshotLoads, st.SnapshotLoadFailures, st.SnapshotWrites, st.SnapshotWriteErrors, st.SnapshotRefused)
	}
	for _, t := range st.Tenants {
		p := t.Profile
		fmt.Fprintf(out, "tenant %-20s refs=%d pushed=%d dropped=%d sampled=%d burst=%d quota=%d resets=%d\n",
			t.Key, t.PublishedRefs, p.Pushed, p.Dropped, p.Sampled, p.BurstShed, p.QuotaShed, p.Resets)
	}
	return nil
}
