package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"hotprefetch/client"
	"hotprefetch/internal/ref"
	"hotprefetch/internal/tracefile"
)

// TestDaemonSmoke boots the daemon in-process on an ephemeral port, drives
// synthetic clients at it through the client library, checks the HTTP API
// surface, then delivers SIGINT and verifies the graceful drain: run returns
// cleanly and the final report reconciles with what the clients sent.
func TestDaemonSmoke(t *testing.T) {
	const (
		clients   = 8
		tenants   = 4
		perClient = 600
	)
	ready := make(chan net.Addr, 1)
	var out bytes.Buffer
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-listen", "127.0.0.1:0",
			"-shards", "2",
			"-membudget", "1024",
			"-draintimeout", "5s",
		}, &out, ready)
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("daemon died before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr.String()

	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cc, err := client.New(client.Config{
				Server:        base,
				Tenant:        fmt.Sprintf("smoke-%d", ci%tenants),
				Stream:        uint64(ci + 1),
				BufferRefs:    128,
				FlushInterval: -1,
				MaxPending:    64,
			})
			if err != nil {
				t.Errorf("client %d: %v", ci, err)
				return
			}
			for i := 0; i < perClient; i++ {
				cc.Add(ci, uint64(0x1000*ci+8*(i%32)))
			}
			if err := cc.Close(); err != nil {
				t.Errorf("client %d close: %v", ci, err)
			}
		}(ci)
	}
	wg.Wait()

	// The API surface answers: stats reconcile, metrics expose, direct
	// tracefile POSTs ingest.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		TenantCount   int    `json:"tenant_count"`
		PublishedRefs uint64 `json:"published_refs"`
		Tenants       []struct {
			Key           string `json:"key"`
			PublishedRefs uint64 `json:"published_refs"`
		} `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	const want = clients * perClient
	if st.TenantCount != tenants || st.PublishedRefs != want {
		t.Fatalf("daemon stats: %d tenants / %d refs, want %d / %d", st.TenantCount, st.PublishedRefs, tenants, want)
	}
	for _, ts := range st.Tenants {
		if ts.PublishedRefs != want/tenants {
			t.Errorf("tenant %s: %d refs, want %d", ts.Key, ts.PublishedRefs, want/tenants)
		}
	}
	for _, path := range []string{"/metrics", "/debug/vars"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(body) == 0 {
			t.Errorf("GET %s: %s (%d bytes)", path, resp.Status, len(body))
		}
	}
	var raw bytes.Buffer
	if err := writeSmokeTrace(&raw, 100); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/ingest?tenant=smoke-raw", "application/octet-stream", &raw)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw ingest: %s", resp.Status)
	}

	// Graceful drain on SIGINT: run returns nil and the final report covers
	// every tenant.
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v after SIGINT", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain within 15s of SIGINT")
	}
	report := out.String()
	if !strings.Contains(report, fmt.Sprintf("tenants      %d", tenants+1)) {
		t.Errorf("final report tenant count wrong:\n%s", report)
	}
	for ci := 0; ci < tenants; ci++ {
		if !strings.Contains(report, fmt.Sprintf("smoke-%d", ci)) {
			t.Errorf("final report missing tenant smoke-%d:\n%s", ci, report)
		}
	}
}

// writeSmokeTrace frames n synthetic references for a raw-POST ingest.
func writeSmokeTrace(w io.Writer, n int) error {
	refs := make([]ref.Ref, n)
	for i := range refs {
		refs[i] = ref.Ref{PC: i % 11, Addr: uint64(0x2000 + 16*i)}
	}
	return tracefile.Write(w, refs)
}
