package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"hotprefetch/client"
	"hotprefetch/internal/ref"
	"hotprefetch/internal/snapshot"
	"hotprefetch/internal/tracefile"
)

// craftGenerationFile encodes a minimal valid snapshot at the given
// generation, standing in for a file another daemon instance owns.
func craftGenerationFile(t *testing.T, gen uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, &snapshot.Profile{Generation: gen, CreatedAt: 1}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDaemonSmoke boots the daemon in-process on an ephemeral port, drives
// synthetic clients at it through the client library, checks the HTTP API
// surface, then delivers SIGINT and verifies the graceful drain: run returns
// cleanly and the final report reconciles with what the clients sent.
func TestDaemonSmoke(t *testing.T) {
	const (
		clients   = 8
		tenants   = 4
		perClient = 600
	)
	ready := make(chan net.Addr, 1)
	var out bytes.Buffer
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-listen", "127.0.0.1:0",
			"-shards", "2",
			"-membudget", "1024",
			"-draintimeout", "5s",
		}, &out, ready)
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("daemon died before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr.String()

	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cc, err := client.New(client.Config{
				Server:        base,
				Tenant:        fmt.Sprintf("smoke-%d", ci%tenants),
				Stream:        uint64(ci + 1),
				BufferRefs:    128,
				FlushInterval: -1,
				MaxPending:    64,
			})
			if err != nil {
				t.Errorf("client %d: %v", ci, err)
				return
			}
			for i := 0; i < perClient; i++ {
				cc.Add(ci, uint64(0x1000*ci+8*(i%32)))
			}
			if err := cc.Close(); err != nil {
				t.Errorf("client %d close: %v", ci, err)
			}
		}(ci)
	}
	wg.Wait()

	// The API surface answers: stats reconcile, metrics expose, direct
	// tracefile POSTs ingest.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		TenantCount   int    `json:"tenant_count"`
		PublishedRefs uint64 `json:"published_refs"`
		Tenants       []struct {
			Key           string `json:"key"`
			PublishedRefs uint64 `json:"published_refs"`
		} `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	const want = clients * perClient
	if st.TenantCount != tenants || st.PublishedRefs != want {
		t.Fatalf("daemon stats: %d tenants / %d refs, want %d / %d", st.TenantCount, st.PublishedRefs, tenants, want)
	}
	for _, ts := range st.Tenants {
		if ts.PublishedRefs != want/tenants {
			t.Errorf("tenant %s: %d refs, want %d", ts.Key, ts.PublishedRefs, want/tenants)
		}
	}
	for _, path := range []string{"/metrics", "/debug/vars"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(body) == 0 {
			t.Errorf("GET %s: %s (%d bytes)", path, resp.Status, len(body))
		}
	}
	var raw bytes.Buffer
	if err := writeSmokeTrace(&raw, 100); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/ingest?tenant=smoke-raw", "application/octet-stream", &raw)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw ingest: %s", resp.Status)
	}

	// Graceful drain on SIGINT: run returns nil and the final report covers
	// every tenant.
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v after SIGINT", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain within 15s of SIGINT")
	}
	report := out.String()
	if !strings.Contains(report, fmt.Sprintf("tenants      %d", tenants+1)) {
		t.Errorf("final report tenant count wrong:\n%s", report)
	}
	for ci := 0; ci < tenants; ci++ {
		if !strings.Contains(report, fmt.Sprintf("smoke-%d", ci)) {
			t.Errorf("final report missing tenant smoke-%d:\n%s", ci, report)
		}
	}
}

// writeSmokeTrace frames n synthetic references for a raw-POST ingest.
func writeSmokeTrace(w io.Writer, n int) error {
	refs := make([]ref.Ref, n)
	for i := range refs {
		refs[i] = ref.Ref{PC: i % 11, Addr: uint64(0x2000 + 16*i)}
	}
	return tracefile.Write(w, refs)
}

// writeCyclicTrace frames reps repetitions of one 12-reference hot stream,
// regular enough that a small grammar budget banks it as a hot stream.
func writeCyclicTrace(w io.Writer, reps int) error {
	var refs []ref.Ref
	for r := 0; r < reps; r++ {
		for i := 0; i < 12; i++ {
			refs = append(refs, ref.Ref{PC: 100 + i, Addr: uint64(0x4000 + 8*i)})
		}
		refs = append(refs, ref.Ref{PC: 999, Addr: uint64(0xbeef0000 + 64*r)})
	}
	return tracefile.Write(w, refs)
}

// bootDaemon starts run() with the given extra flags and waits for ready.
func bootDaemon(t *testing.T, out *bytes.Buffer, extra ...string) (string, chan error) {
	t.Helper()
	ready := make(chan net.Addr, 1)
	runErr := make(chan error, 1)
	args := append([]string{"-listen", "127.0.0.1:0", "-shards", "1", "-membudget", "256", "-draintimeout", "5s"}, extra...)
	go func() { runErr <- run(args, out, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr.String(), runErr
	case err := <-runErr:
		t.Fatalf("daemon died before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return "", nil
}

// drainDaemon delivers SIGINT and waits for run to return cleanly.
func drainDaemon(t *testing.T, runErr chan error) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v after SIGINT", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain within 15s of SIGINT")
	}
}

// hotStreamCount reads the tenant's banked hot-stream count over the API.
func hotStreamCount(t *testing.T, base, tenant string) int {
	t.Helper()
	resp, err := http.Get(base + "/hotstreams?tenant=" + tenant)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /hotstreams: %s: %s", resp.Status, body)
	}
	var hs struct {
		Streams []json.RawMessage `json:"streams"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
		t.Fatal(err)
	}
	return len(hs.Streams)
}

// TestDaemonSnapshotLifecycle is the daemon-level warm-start regression:
// run A banks hot streams and its graceful drain writes a final per-tenant
// checkpoint; run B over the same -snapshot-dir boots with the tenant
// already warm (banked streams served before any ingest); and a
// newer-generation file swapped in behind run B's back is refused — counted
// in the report, never clobbered.
func TestDaemonSnapshotLifecycle(t *testing.T) {
	dir := t.TempDir()
	snapFlags := []string{"-snapshot-dir", dir, "-snapshot-interval", "-1s"}

	// Run A: ingest until the tenant banks hot streams, then drain.
	var outA bytes.Buffer
	base, runErr := bootDaemon(t, &outA, snapFlags...)
	var banked int
	for attempt := 0; attempt < 50 && banked == 0; attempt++ {
		var raw bytes.Buffer
		if err := writeCyclicTrace(&raw, 200); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/ingest?tenant=persist&stream=1", "application/octet-stream", &raw)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest: %s", resp.Status)
		}
		banked = hotStreamCount(t, base, "persist")
	}
	if banked == 0 {
		t.Fatal("tenant banked no hot streams to persist")
	}
	drainDaemon(t, runErr)
	if !strings.Contains(outA.String(), "snapshots    loads=0 loadfailures=0 writes=1") {
		t.Fatalf("run A report missing final checkpoint:\n%s", outA.String())
	}
	if _, err := os.Stat(dir + "/persist.snap"); err != nil {
		t.Fatalf("final checkpoint file missing: %v", err)
	}

	// Run B: warm start — the tenant serves its banked streams with zero
	// ingest this run.
	var outB bytes.Buffer
	base, runErr = bootDaemon(t, &outB, snapFlags...)
	if got := hotStreamCount(t, base, "persist"); got != banked {
		t.Fatalf("warm-started tenant serves %d streams, want %d", got, banked)
	}
	resp, err := http.Get(base + "/snapshot?tenant=persist")
	if err != nil {
		t.Fatal(err)
	}
	snapBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(snapBody) == 0 {
		t.Fatalf("GET /snapshot: %s (%d bytes)", resp.Status, len(snapBody))
	}

	// Swap in a newer-generation file behind run B's back; the drain
	// checkpoint must refuse it and leave it byte-identical.
	newer := craftGenerationFile(t, 99)
	if err := os.WriteFile(dir+"/persist.snap", newer, 0o644); err != nil {
		t.Fatal(err)
	}
	drainDaemon(t, runErr)
	if !strings.Contains(outB.String(), "loads=1") || !strings.Contains(outB.String(), "refused=1") {
		t.Fatalf("run B report missing warm load or refusal:\n%s", outB.String())
	}
	after, err := os.ReadFile(dir + "/persist.snap")
	if err != nil || !bytes.Equal(after, newer) {
		t.Fatalf("refused checkpoint modified the newer-generation file (err %v)", err)
	}
}
