// Command seqdump builds the Sequitur grammar for a string and prints it in
// the paper's Figure 4 style, together with the hot data stream analysis
// values of Figure 6 / Table 1.
//
// Usage:
//
//	seqdump [-heat 8] [-minlen 2] [-maxlen 7] [string]
//
// With no argument it uses the paper's worked example, w = abaabcabcabcabc.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"hotprefetch/internal/hotds"
	"hotprefetch/internal/sequitur"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seqdump: ")

	heat := flag.Uint64("heat", 8, "heat threshold H")
	minLen := flag.Uint64("minlen", 2, "minimum stream length")
	maxLen := flag.Uint64("maxlen", 7, "maximum stream length")
	flag.Parse()

	w := "abaabcabcabcabc" // paper Figure 4
	if flag.NArg() > 0 {
		w = flag.Arg(0)
	}
	for _, c := range w {
		if c < 'a' || c > 'z' {
			log.Fatalf("input must be lowercase letters, got %q", c)
		}
	}

	g := sequitur.New()
	for _, c := range w {
		g.Append(uint64(c - 'a'))
	}
	snap := g.Snapshot()

	fmt.Printf("input (%d symbols): %s\n\n", len(w), w)
	fmt.Println("Sequitur grammar (paper Figure 4):")
	fmt.Print(snap.String())

	cfg := hotds.Config{MinLen: *minLen, MaxLen: *maxLen, Heat: *heat}
	streams, stats := hotds.AnalyzeDetailed(snap, cfg)

	fmt.Printf("\nAnalysis values (paper Table 1), H=%d, minLen=%d, maxLen=%d:\n", *heat, *minLen, *maxLen)
	fmt.Println("rule  word              length  index  uses  coldUses  heat  hot?")
	for _, st := range stats {
		word := wordString(snap.Expand(st.Rule))
		if len(word) > 16 {
			word = word[:13] + "..."
		}
		fmt.Printf("%-5d %-17s %-7d %-6d %-5d %-9d %-5d %v\n",
			st.Rule, word, st.Len, st.Index, st.Uses, st.ColdUses, st.Heat, st.Hot)
	}

	fmt.Printf("\nHot data streams (%d):\n", len(streams))
	for _, s := range streams {
		fmt.Printf("  %s  heat=%d  coverage=%.0f%%\n",
			wordString(s.Word), s.Heat, 100*s.Coverage(uint64(len(w))))
	}
}

func wordString(word []uint64) string {
	var b strings.Builder
	for _, v := range word {
		b.WriteByte(byte('a' + v))
	}
	return b.String()
}
