// Command hdsprof profiles a benchmark's data reference stream offline and
// prints its hot data streams: the output of the paper's §2 pipeline
// (bursty-tracing sample -> Sequitur -> fast hot data stream analysis)
// without the optimization back end.
//
// Usage:
//
//	hdsprof -bench mcf [-refs 200000] [-precise] [-top 20]
//	hdsprof -bench mcf -save trace.hds     # capture the trace to a file
//	hdsprof -load trace.hds                # analyze a previously saved trace
//	hdsprof -bench mcf -service -membudget 4096 -policy drop
//	                                       # profile through the sharded
//	                                       # service and print its stats JSON
//	hdsprof -bench mcf -service -membudget 4096 -workers 2
//	                                       # pipeline grammar cycles through a
//	                                       # background analysis pool
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"hotprefetch"
	"hotprefetch/internal/dfsm"
	"hotprefetch/internal/machine"
	"hotprefetch/internal/ref"
	"hotprefetch/internal/tracefile"
	"hotprefetch/internal/workload"
)

// collector records every executed data reference until its budget runs out
// or a shutdown signal lands.
type collector struct {
	add     func(hotprefetch.Ref) // profiling sink (plain Profile or service shard)
	raw     []ref.Ref             // kept when the trace will be saved
	keepRaw bool
	budget  int
	machine *machine.Machine
	stop    *atomic.Bool // SIGINT/SIGTERM: yield the machine, stop producing
}

func (c *collector) Check(pc int) (machine.Version, uint64) {
	return machine.VersionInstrumented, 0
}

func (c *collector) TraceRef(pc int, addr machine.Word, isWrite bool) uint64 {
	c.add(hotprefetch.Ref{PC: pc, Addr: addr})
	if c.keepRaw {
		c.raw = append(c.raw, ref.Ref{PC: pc, Addr: addr})
	}
	c.budget--
	if c.budget <= 0 || c.stop.Load() {
		c.machine.Yield()
	}
	return 0
}

func (c *collector) Match(pc int, addr machine.Word) ([]machine.Word, uint64) {
	return nil, 0
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hdsprof: ")

	bench := flag.String("bench", "mcf", "benchmark to profile")
	refs := flag.Int("refs", 200000, "number of data references to trace")
	precise := flag.Bool("precise", false, "use the exact (Larus-style) detector instead of the fast approximation")
	top := flag.Int("top", 20, "streams to print")
	save := flag.String("save", "", "write the captured trace to this file")
	load := flag.String("load", "", "analyze a saved trace instead of profiling a benchmark")
	dot := flag.String("dot", "", "write the prefix-matching DFSM for the streams as Graphviz DOT")
	headLen := flag.Int("headlen", 2, "prefix length for the -dot DFSM")
	service := flag.Bool("service", false, "profile through the sharded profiling service and print its stats JSON")
	policy := flag.String("policy", "block", "service ingestion policy: block, drop, or sample")
	sampleN := flag.Int("samplen", 16, "service Sample policy: accept 1 in N under pressure")
	memBudget := flag.Int("membudget", 0, "service per-shard grammar symbol budget (0 = unbounded)")
	workers := flag.Int("workers", 0, "service background analysis workers for pipelined grammar cycles (0 = inline)")
	burstFlag := flag.String("burst", "off", "service bursty-sampling front end: off, paper, or nCheck:nInstr:nAwake:nHibernate")
	metrics := flag.String("metrics", "", "serve Prometheus metrics (/metrics) and expvar (/debug/vars) on this address during a -service run, e.g. :9090")
	predictor := flag.String("predictor", "", "train this predictor on the detected streams and replay the captured trace through it; a registry name or \"all\"")
	flag.Parse()

	var replayNames []string
	if *predictor != "" {
		if *predictor == "all" {
			replayNames = hotprefetch.PredictorNames()
		} else {
			replayNames = []string{*predictor}
		}
		for _, n := range replayNames {
			if _, err := hotprefetch.NewPredictor(n, nil, *headLen); err != nil {
				log.Fatal(err)
			}
		}
	}

	// The profiling sink: a plain Profile, or — in service mode — one shard
	// of the concurrent profiling service, exercising its ingestion policy,
	// grammar memory budget, and stats plumbing on the same trace.
	var (
		profile *hotprefetch.Profile
		svc     *hotprefetch.ShardedProfile
	)
	// The raw trace is kept when it will be saved or replayed through a
	// predictor after analysis.
	col := &collector{budget: *refs, keepRaw: *save != "" || *predictor != "", stop: new(atomic.Bool)}

	// Graceful shutdown: the first SIGINT/SIGTERM stops the producer side
	// and lets the run fall through to the normal flush/analyze/report path,
	// so an interrupted profile still prints complete, drained stats. A
	// second signal gets the default fatal behavior.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		log.Printf("received %v: stopping trace, flushing and reporting (send again to kill)", s)
		col.stop.Store(true)
		signal.Stop(sigc)
	}()
	if *service {
		if *precise {
			log.Fatal("-precise is not supported with -service (the service merges per-cycle fast analyses)")
		}
		pol, err := hotprefetch.ParseIngestPolicy(*policy)
		if err != nil {
			log.Fatal(err)
		}
		burstCfg, err := hotprefetch.ParseBurstConfig(*burstFlag)
		if err != nil {
			log.Fatal(err)
		}
		svc, err = hotprefetch.NewShardedProfileConfig(hotprefetch.ShardedConfig{
			Shards:            1,
			Policy:            pol,
			SampleInterval:    *sampleN,
			MaxGrammarSymbols: *memBudget,
			AnalysisWorkers:   *workers,
			Burst:             burstCfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer svc.Close()
		if *metrics != "" {
			ln, err := net.Listen("tcp", *metrics)
			if err != nil {
				log.Fatal(err)
			}
			mux := http.NewServeMux()
			mux.Handle("/metrics", svc.MetricsHandler())
			expvar.Publish("hotprefetch", svc.ExpvarVar())
			mux.Handle("/debug/vars", expvar.Handler())
			srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
			go func() {
				if err := srv.Serve(ln); err != nil &&
					err != http.ErrServerClosed && !errors.Is(err, net.ErrClosed) {
					log.Printf("metrics server: %v", err)
				}
			}()
			// Registered after `defer svc.Close()`, so on the drain path the
			// server shuts down first: an in-flight scrape finishes against a
			// live profile instead of being cut off mid-response by a bare
			// listener close, and only then does the profile close.
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				defer cancel()
				if err := srv.Shutdown(ctx); err != nil {
					log.Printf("metrics server shutdown: %v", err)
				}
			}()
			log.Printf("serving metrics on http://%s/metrics", ln.Addr())
		}
		shard := svc.Shard(0)
		col.add = func(r hotprefetch.Ref) {
			if err := shard.Add(r); err != nil {
				log.Fatal(err)
			}
		}
	} else if *metrics != "" {
		log.Fatal("-metrics requires -service (metrics are the sharded service's)")
	} else {
		profile = hotprefetch.NewProfile()
		col.add = profile.Add
	}
	name := *bench
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(err)
		}
		trace, err := tracefile.Read(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range trace {
			if col.stop.Load() {
				break
			}
			col.add(hotprefetch.Ref{PC: r.PC, Addr: r.Addr})
			if col.keepRaw {
				col.raw = append(col.raw, r)
			}
		}
		name = *load
	} else {
		p, ok := workload.ByName(*bench)
		if !ok {
			log.Fatalf("unknown benchmark %q", *bench)
		}
		inst := workload.Build(p)
		m := inst.NewMachine(workload.CacheConfig(), true)
		col.machine = m
		m.RT = col

		m.Start()
		for col.budget > 0 && !col.stop.Load() {
			st, err := m.Run(0)
			if err != nil {
				log.Fatal(err)
			}
			if st == machine.Halted {
				break
			}
		}
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracefile.Write(f, col.raw); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved %d references to %s\n", len(col.raw), *save)
	}

	cfg := hotprefetch.DefaultAnalysisConfig()
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	var (
		streams     []hotprefetch.Stream
		traceLen    uint64
		grammarSize int
	)
	switch {
	case *service:
		// Producers are done (budget exhausted or signal): drain the rings
		// and the analysis pool so the report and stats below are final.
		// Close is bounded — a stalled consumer or analysis pool surfaces
		// through HotStreamsErr instead of hanging shutdown.
		svc.Close()
		var err error
		streams, err = svc.HotStreamsErr(cfg)
		if err != nil {
			log.Printf("partial analysis: %v", err)
		}
		traceLen = svc.Len()
		grammarSize = svc.Stats().GrammarSize
	case *precise:
		streams = profile.HotStreamsPrecise(cfg)
		traceLen = profile.Len()
		grammarSize = profile.GrammarSize()
	default:
		streams = profile.HotStreams(cfg)
		traceLen = profile.Len()
		grammarSize = profile.GrammarSize()
	}
	fmt.Printf("source       %s\n", name)
	fmt.Printf("traced refs  %d\n", traceLen)
	fmt.Printf("grammar size %d symbols\n", grammarSize)
	fmt.Printf("hot streams  %d\n", len(streams))
	if *service {
		st := svc.Stats()
		fmt.Printf("stats        %s\n", st)
		if *burstFlag != "off" && *burstFlag != "" {
			fmt.Printf("burst        shed=%d pushed=%d phase=%s duty-phases=%d\n",
				st.BurstShed, st.Pushed, st.Shards[0].BurstPhase, st.BurstDuty.Count)
		}
		if *memBudget > 0 {
			al := st.AnalysisLatency
			fmt.Printf("pipeline     cycles=%d analysis(last)=%v analysis(max)=%v analysis(mean)=%v ingest-stall(max)=%v queue=%d\n",
				st.CyclesAnalyzed, al.LastDuration(), al.MaxDuration(),
				time.Duration(al.Mean()), st.MaxCycleStall, st.AnalysisQueueDepth)
		}
	}
	fmt.Println()

	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeDOT(f, streams, *headLen); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote DFSM to %s\n", *dot)
	}

	for i, s := range streams {
		if i >= *top {
			fmt.Printf("... and %d more\n", len(streams)-*top)
			break
		}
		fmt.Printf("#%-3d len=%-4d heat=%-7d coverage=%5.2f%%  head: ", i+1, len(s.Refs), s.Heat, 100*s.Coverage(traceLen))
		for j, r := range s.Refs {
			if j == 4 {
				fmt.Print("...")
				break
			}
			fmt.Printf("(pc%d,0x%x) ", r.PC, r.Addr)
		}
		fmt.Println()
	}

	if len(replayNames) > 0 {
		replayPredictors(replayNames, streams, col.raw, *headLen)
	}
}

// replayPredictors trains each named predictor on the detected streams and
// replays the captured trace through it, reporting the accuracy ledger —
// an offline miniature of the Supervisor's A/B comparison.
func replayPredictors(names []string, streams []hotprefetch.Stream, raw []ref.Ref, headLen int) {
	fmt.Println()
	fmt.Println("predictor replay (trained on the streams above, over the captured trace)")
	for _, name := range names {
		p, err := hotprefetch.NewPredictor(name, streams, headLen)
		if err != nil {
			log.Fatal(err)
		}
		p.EnableAccuracyTracking(0)
		var comparisons uint64
		for _, r := range raw {
			_, cmp := p.Observe(hotprefetch.Ref{PC: r.PC, Addr: r.Addr})
			comparisons += uint64(cmp)
		}
		issued, hits := p.AccuracyCounters()
		acc := 0.0
		if issued > 0 {
			acc = float64(hits) / float64(issued)
		}
		cmpPerRef := 0.0
		if len(raw) > 0 {
			cmpPerRef = float64(comparisons) / float64(len(raw))
		}
		line := fmt.Sprintf("%-8s issued=%-8d hits=%-8d accuracy=%.2f cmp/ref=%.1f", name, issued, hits, acc, cmpPerRef)
		if b, ok := p.(hotprefetch.AccuracyBooks); ok {
			_, _, outstanding, dropped := b.AccuracyBooks()
			line += fmt.Sprintf(" outstanding=%d dropped=%d", outstanding, dropped)
		}
		fmt.Println(line)
	}
}

// writeDOT builds the combined prefix-matching DFSM for the streams and
// renders it as Graphviz DOT.
func writeDOT(w io.Writer, streams []hotprefetch.Stream, headLen int) error {
	split := make([]dfsm.Stream, 0, len(streams))
	for _, s := range streams {
		rs := make([]ref.Ref, len(s.Refs))
		for i, r := range s.Refs {
			rs[i] = ref.Ref{PC: r.PC, Addr: r.Addr}
		}
		split = append(split, dfsm.Split(rs, s.Heat, headLen))
	}
	return dfsm.Build(split, headLen).WriteDOT(w)
}
