package main

import (
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"hotprefetch/internal/experiment"
	"hotprefetch/internal/stats"
)

var update = flag.Bool("update", false, "rewrite the golden CSV files from a fresh run")

// TestFigureCSVGolden is the conformance test for the -format csv output the
// paper-reproduction scripts consume: the Figure 11 and Figure 12 exports
// must keep their header, benchmark rows, and column count exactly as the
// golden files record them. Numeric cells are simulator-relative (they move
// when the simulator, analysis defaults, or optimizer change), so they are
// held only to being well-formed finite floats — run with -update to bless
// an intentional shift; a structural change must come with a new golden
// file in the same commit.
func TestFigureCSVGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full Figure 11/12 simulations (~20s)")
	}
	for _, tc := range []struct {
		name   string
		golden string
		got    func() (string, error)
	}{
		{
			name:   "figure11",
			golden: filepath.Join("testdata", "figure11.csv"),
			got: func() (string, error) {
				runs, err := experiment.Figure11(nil)
				if err != nil {
					return "", err
				}
				return stats.CSVFigure11(runs), nil
			},
		},
		{
			name:   "figure12",
			golden: filepath.Join("testdata", "figure12.csv"),
			got: func() (string, error) {
				runs, err := experiment.Figure12(nil)
				if err != nil {
					return "", err
				}
				return stats.CSVFigure12(runs), nil
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.got()
			if err != nil {
				t.Fatal(err)
			}
			if *update {
				if err := os.WriteFile(tc.golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", tc.golden)
				return
			}
			want, err := os.ReadFile(tc.golden)
			if err != nil {
				t.Fatal(err)
			}
			compareCSV(t, string(want), got)
		})
	}
}

// compareCSV holds got to the golden structure: identical header, identical
// benchmark column, identical shape — with the numeric cells required only
// to parse as finite floats.
func compareCSV(t *testing.T, want, got string) {
	t.Helper()
	wantLines := strings.Split(strings.TrimRight(want, "\n"), "\n")
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(gotLines) != len(wantLines) {
		t.Fatalf("output has %d lines, golden has %d\ngot:\n%s", len(gotLines), len(wantLines), got)
	}
	if gotLines[0] != wantLines[0] {
		t.Fatalf("header = %q, want %q", gotLines[0], wantLines[0])
	}
	cols := len(strings.Split(wantLines[0], ","))
	for i := 1; i < len(wantLines); i++ {
		wantCells := strings.Split(wantLines[i], ",")
		gotCells := strings.Split(gotLines[i], ",")
		if len(gotCells) != cols || len(wantCells) != cols {
			t.Fatalf("row %d has %d columns, want %d: %q", i, len(gotCells), cols, gotLines[i])
		}
		if gotCells[0] != wantCells[0] {
			t.Fatalf("row %d benchmark = %q, want %q", i, gotCells[0], wantCells[0])
		}
		for j := 1; j < cols; j++ {
			v, err := strconv.ParseFloat(gotCells[j], 64)
			if err != nil {
				t.Fatalf("row %d column %d: %q is not a float: %v", i, j, gotCells[j], err)
			}
			if v != v || v > 1e6 || v < -1e6 {
				t.Fatalf("row %d column %d: %q is not a sane percentage", i, j, gotCells[j])
			}
		}
	}
}
