// Command figures regenerates the paper's evaluation artifacts: Figure 11
// (profiling/analysis overhead), Figure 12 (prefetching performance),
// Table 2 (detailed characterization), the §4.3 head-length ablation, and
// the §5.1 hardware prefetcher comparison.
//
// Usage:
//
//	figures [-fig 11|12] [-table 2] [-ablation headlen|hardware] [-bench name] [-all]
//
// With no flags, -all is assumed. Each artifact prints the corresponding
// paper values alongside so the shapes can be compared directly.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hotprefetch/internal/burst"
	"hotprefetch/internal/experiment"
	"hotprefetch/internal/sequitur"
	"hotprefetch/internal/stats"
	"hotprefetch/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	fig := flag.Int("fig", 0, "regenerate figure 11 or 12")
	table := flag.Int("table", 0, "regenerate table 2")
	ablation := flag.String("ablation", "", "run an ablation: headlen, hardware, static, schedule, hybrid, stability, motivation, sampling, prepass, reuse, or predictors")
	bench := flag.String("bench", "", "restrict to one benchmark (default: all six)")
	all := flag.Bool("all", false, "regenerate everything")
	format := flag.String("format", "text", "output format for figures/tables: text, csv, or chart")
	flag.Parse()

	if *fig == 0 && *table == 0 && *ablation == "" {
		*all = true
	}

	var params []workload.Params
	if *bench != "" {
		p, ok := workload.ByName(*bench)
		if !ok {
			log.Fatalf("unknown benchmark %q", *bench)
		}
		params = []workload.Params{p}
	}

	csv := *format == "csv"
	chartFmt := *format == "chart"
	if *format != "text" && *format != "csv" && *format != "chart" {
		log.Fatalf("unknown format %q", *format)
	}
	if *all || *fig == 11 {
		runs, err := experiment.Figure11(params)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case csv:
			fmt.Print(stats.CSVFigure11(runs))
		case chartFmt:
			fmt.Println(stats.ChartFigure11(runs))
		default:
			fmt.Println(stats.RenderFigure11(runs))
		}
	}
	if *all || *fig == 12 {
		runs, err := experiment.Figure12(params)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case csv:
			fmt.Print(stats.CSVFigure12(runs))
		case chartFmt:
			fmt.Println(stats.ChartFigure12(runs))
		default:
			fmt.Println(stats.RenderFigure12(runs))
		}
	}
	if *all || *table == 2 {
		runs, err := experiment.Table2(params)
		if err != nil {
			log.Fatal(err)
		}
		if csv {
			fmt.Print(stats.CSVTable2(runs))
		} else {
			fmt.Println(stats.RenderTable2(runs))
		}
	}
	if *all || *ablation == "headlen" {
		p := workload.Vpr()
		if len(params) == 1 {
			p = params[0]
		}
		results, err := experiment.AblationHeadLen(p, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(stats.RenderHeadLen(p.Name, results))
	}
	if *all || *ablation == "hardware" {
		results, err := experiment.HardwareComparison(params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(stats.RenderHardware(results))
	}
	if *all || *ablation == "static" {
		results, err := experiment.StaticVsDynamic(params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(stats.RenderStaticDyn(results))
	}
	if *all || *ablation == "schedule" {
		p := workload.Mcf()
		if len(params) == 1 {
			p = params[0]
		}
		results, err := experiment.AblationScheduling(p, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(stats.RenderScheduling(p.Name, results))
	}
	if *all || *ablation == "hybrid" {
		results, err := experiment.HybridComparison(params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(stats.RenderHybrid(results))
	}
	if *all || *ablation == "stability" {
		results, err := experiment.ProfileStability(params, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(stats.RenderStability(results))
	}
	if *all || *ablation == "motivation" {
		results, err := experiment.Motivation(params, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(stats.RenderMotivation(results))
	}
	if *all || *ablation == "sampling" {
		for _, cfg := range []struct {
			title string
			bcfg  burst.Config
		}{
			{"paper 0.5% rate, 60-ref bursts", experiment.PaperSamplingConfig()},
			{"scaled 5% rate, 60-ref bursts", experiment.ScaledSamplingConfig()},
		} {
			results, err := experiment.SamplingComparison(params, 0, cfg.bcfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(stats.RenderSampling(cfg.title, results))
		}
	}
	if *all || *ablation == "prepass" {
		results, err := experiment.PrepassComparison(params, 0, sequitur.PrepassConfig{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(stats.RenderPrepass(results))
	}
	if *all || *ablation == "reuse" {
		results, err := experiment.ReuseDistances(params, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(stats.RenderReuse(results))
	}
	if *all || *ablation == "predictors" {
		results, err := experiment.PredictorComparison(params, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(stats.RenderPredictors(results))
	}
	if !*all && *fig != 0 && *fig != 11 && *fig != 12 {
		fmt.Fprintln(os.Stderr, "only figures 11 and 12 exist in the paper")
		os.Exit(2)
	}
}
