package main

import (
	"strings"
	"testing"
)

// TestRunAllModes exercises the full command path — flag parsing, mode
// lookup, simulation, report formatting — for every evaluation mode the
// paper's figures use.
func TestRunAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations are slow; skipped in -short")
	}
	for name := range modes {
		t.Run(name, func(t *testing.T) {
			var out strings.Builder
			if err := run([]string{"-bench", "boxsim", "-mode", name}, &out); err != nil {
				t.Fatalf("run: %v", err)
			}
			got := out.String()
			for _, want := range []string{
				"benchmark            boxsim",
				"mode                 ",
				"baseline cycles      ",
				"execution cycles     ",
				"overhead             ",
				"L1 miss ratio        ",
				"prefetches issued    ",
			} {
				if !strings.Contains(got, want) {
					t.Errorf("report missing %q:\n%s", want, got)
				}
			}
		})
	}
}

// TestRunEvents covers the -events path: the optimizer's decision log must
// stream to the writer and end with the completion summary.
func TestRunEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations are slow; skipped in -short")
	}
	var out strings.Builder
	if err := run([]string{"-bench", "boxsim", "-mode", "dyn-pref", "-events"}, &out); err != nil {
		t.Fatalf("run -events: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "done: ") {
		t.Errorf("missing completion summary:\n%s", got)
	}
	if !strings.Contains(got, "optimization cycles") {
		t.Errorf("missing cycle count in summary:\n%s", got)
	}
}

// TestRunErrors pins the failure modes: bad flags, unknown mode, unknown
// benchmark (with and without -events).
func TestRunErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"unknown mode", []string{"-mode", "warp-speed"}, `unknown mode "warp-speed"`},
		{"unknown bench", []string{"-bench", "nosuch"}, `"nosuch"`},
		{"unknown bench events", []string{"-bench", "nosuch", "-events"}, `unknown benchmark "nosuch"`},
		{"bad flag", []string{"-frobnicate"}, "flag provided but not defined"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			err := run(tc.args, &out)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}
