// Command prefetchsim simulates one benchmark under one evaluation mode and
// prints a run report: execution time versus the unoptimized baseline,
// optimization cycle activity, and cache behaviour.
//
// Usage:
//
//	prefetchsim -bench vpr -mode dyn-pref
//
// Modes: base, prof, hds, no-pref, seq-pref, dyn-pref (paper Figures 11/12).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"hotprefetch"
	"hotprefetch/internal/experiment"
	"hotprefetch/internal/opt"
	"hotprefetch/internal/workload"
)

var modes = map[string]hotprefetch.Mode{
	"base":     hotprefetch.ModeBase,
	"prof":     hotprefetch.ModeProfile,
	"hds":      hotprefetch.ModeHds,
	"no-pref":  hotprefetch.ModeNoPref,
	"seq-pref": hotprefetch.ModeSeqPref,
	"dyn-pref": hotprefetch.ModeDynPref,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("prefetchsim: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam: args are the command-line
// arguments (without the program name) and all report output goes to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prefetchsim", flag.ContinueOnError)
	bench := fs.String("bench", "mcf", "benchmark to run (vpr, mcf, twolf, parser, vortex, boxsim)")
	modeName := fs.String("mode", "dyn-pref", "evaluation mode (base, prof, hds, no-pref, seq-pref, dyn-pref)")
	events := fs.Bool("events", false, "print the optimizer's decision log while running")
	if err := fs.Parse(args); err != nil {
		return err
	}

	mode, ok := modes[*modeName]
	if !ok {
		return fmt.Errorf("unknown mode %q", *modeName)
	}
	if *events {
		return runWithEvents(out, *bench, mode)
	}
	rep, err := hotprefetch.RunBenchmark(*bench, mode)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "benchmark            %s\n", rep.Benchmark)
	fmt.Fprintf(out, "mode                 %s\n", rep.Mode)
	fmt.Fprintf(out, "baseline cycles      %d\n", rep.BaselineCycles)
	fmt.Fprintf(out, "execution cycles     %d\n", rep.ExecCycles)
	fmt.Fprintf(out, "overhead             %+.2f%% (negative = speedup)\n", rep.OverheadPct)
	fmt.Fprintf(out, "optimization cycles  %d\n", rep.OptCycles)
	if rep.OptCycles > 0 {
		fmt.Fprintf(out, "traced refs/cycle    %d\n", rep.TracedRefsPerCycle)
		fmt.Fprintf(out, "hot streams/cycle    %d\n", rep.HotStreamsPerCycle)
		fmt.Fprintf(out, "DFSM                 <%d states, %d checks>\n", rep.DFSMStates, rep.DFSMTransitions)
		fmt.Fprintf(out, "procs modified/cycle %d\n", rep.ProcsModified)
	}
	fmt.Fprintf(out, "L1 miss ratio        %.3f\n", rep.L1MissRatio)
	fmt.Fprintf(out, "prefetches issued    %d (useful: %d)\n", rep.Prefetches, rep.UsefulPrefetches)
	return nil
}

// runWithEvents reruns the benchmark with the optimizer's decision log
// streaming to out — the observable version of the Figure-1 cycle.
func runWithEvents(out io.Writer, bench string, mode hotprefetch.Mode) error {
	p, ok := workload.ByName(bench)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", bench)
	}
	inst := workload.Build(p)
	m := inst.NewMachine(workload.CacheConfig(), true)
	o := opt.New(m, experiment.OptConfig(opt.Mode(mode)))
	o.SetEventSink(func(e opt.Event) { fmt.Fprintln(out, e) })
	if err := m.RunToCompletion(); err != nil {
		return err
	}
	res := o.Result()
	fmt.Fprintf(out, "done: %d optimization cycles, %d cycles executed\n",
		res.OptCycles(), res.ExecCycles)
	return nil
}
