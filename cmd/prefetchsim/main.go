// Command prefetchsim simulates one benchmark under one evaluation mode and
// prints a run report: execution time versus the unoptimized baseline,
// optimization cycle activity, and cache behaviour.
//
// Usage:
//
//	prefetchsim -bench vpr -mode dyn-pref
//
// Modes: base, prof, hds, no-pref, seq-pref, dyn-pref (paper Figures 11/12).
package main

import (
	"flag"
	"fmt"
	"log"

	"hotprefetch"
	"hotprefetch/internal/experiment"
	"hotprefetch/internal/opt"
	"hotprefetch/internal/workload"
)

var modes = map[string]hotprefetch.Mode{
	"base":     hotprefetch.ModeBase,
	"prof":     hotprefetch.ModeProfile,
	"hds":      hotprefetch.ModeHds,
	"no-pref":  hotprefetch.ModeNoPref,
	"seq-pref": hotprefetch.ModeSeqPref,
	"dyn-pref": hotprefetch.ModeDynPref,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("prefetchsim: ")

	bench := flag.String("bench", "mcf", "benchmark to run (vpr, mcf, twolf, parser, vortex, boxsim)")
	modeName := flag.String("mode", "dyn-pref", "evaluation mode (base, prof, hds, no-pref, seq-pref, dyn-pref)")
	events := flag.Bool("events", false, "print the optimizer's decision log while running")
	flag.Parse()

	mode, ok := modes[*modeName]
	if !ok {
		log.Fatalf("unknown mode %q", *modeName)
	}
	if *events {
		runWithEvents(*bench, mode)
		return
	}
	rep, err := hotprefetch.RunBenchmark(*bench, mode)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark            %s\n", rep.Benchmark)
	fmt.Printf("mode                 %s\n", rep.Mode)
	fmt.Printf("baseline cycles      %d\n", rep.BaselineCycles)
	fmt.Printf("execution cycles     %d\n", rep.ExecCycles)
	fmt.Printf("overhead             %+.2f%% (negative = speedup)\n", rep.OverheadPct)
	fmt.Printf("optimization cycles  %d\n", rep.OptCycles)
	if rep.OptCycles > 0 {
		fmt.Printf("traced refs/cycle    %d\n", rep.TracedRefsPerCycle)
		fmt.Printf("hot streams/cycle    %d\n", rep.HotStreamsPerCycle)
		fmt.Printf("DFSM                 <%d states, %d checks>\n", rep.DFSMStates, rep.DFSMTransitions)
		fmt.Printf("procs modified/cycle %d\n", rep.ProcsModified)
	}
	fmt.Printf("L1 miss ratio        %.3f\n", rep.L1MissRatio)
	fmt.Printf("prefetches issued    %d (useful: %d)\n", rep.Prefetches, rep.UsefulPrefetches)
}

// runWithEvents reruns the benchmark with the optimizer's decision log
// streaming to stdout — the observable version of the Figure-1 cycle.
func runWithEvents(bench string, mode hotprefetch.Mode) {
	p, ok := workload.ByName(bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", bench)
	}
	inst := workload.Build(p)
	m := inst.NewMachine(workload.CacheConfig(), true)
	o := opt.New(m, experiment.OptConfig(opt.Mode(mode)))
	o.SetEventSink(func(e opt.Event) { fmt.Println(e) })
	if err := m.RunToCompletion(); err != nil {
		log.Fatal(err)
	}
	res := o.Result()
	fmt.Printf("done: %d optimization cycles, %d cycles executed\n",
		res.OptCycles(), res.ExecCycles)
}
