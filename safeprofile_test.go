package hotprefetch

import (
	"sync"
	"testing"
)

func TestSafeProfileConcurrentAdds(t *testing.T) {
	sp := NewSafeProfile()
	stream := mkStream(50, 12)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				sp.AddAll(stream)
			}
		}()
	}
	// Concurrent snapshots must not race with the adds.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			_ = sp.HotStreams(AnalysisConfig{MinLen: 10, MaxLen: 60, MinCoverage: 0.01})
		}
	}()
	wg.Wait()
	<-done

	if got, want := sp.Len(), uint64(8*25*len(stream)); got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
	streams := sp.HotStreams(AnalysisConfig{MinLen: 10, MaxLen: 60, MinCoverage: 0.01})
	if len(streams) == 0 {
		t.Error("the repeated stream should be detected")
	}
}
