package hotprefetch

import (
	"fmt"

	"hotprefetch/internal/experiment"
	"hotprefetch/internal/opt"
	"hotprefetch/internal/workload"
)

// Mode selects how much of the dynamic prefetching pipeline a simulated run
// executes — the bars of the paper's Figures 11 and 12.
type Mode int

const (
	// ModeBase pays only for the dynamic checks (Figure 11 "Base").
	ModeBase Mode = iota
	// ModeProfile adds temporal data reference profiling (Figure 11 "Prof").
	ModeProfile
	// ModeHds adds hot data stream analysis (Figure 11 "Hds").
	ModeHds
	// ModeNoPref adds DFSM matching without prefetching (Figure 12
	// "No-pref").
	ModeNoPref
	// ModeSeqPref prefetches sequentially-following blocks instead of
	// stream addresses (Figure 12 "Seq-pref").
	ModeSeqPref
	// ModeDynPref is the full dynamic prefetching scheme (Figure 12
	// "Dyn-pref").
	ModeDynPref
)

// String returns the paper's name for the mode.
func (m Mode) String() string { return opt.Mode(m).String() }

// Benchmarks lists the simulated benchmark suite in the paper's order:
// vpr, mcf, twolf, parser, vortex, boxsim (§4.1).
func Benchmarks() []string {
	cat := workload.Catalog()
	names := make([]string, len(cat))
	for i, p := range cat {
		names[i] = p.Name
	}
	return names
}

// Report summarizes one simulated benchmark run.
type Report struct {
	Benchmark string
	Mode      Mode

	// BaselineCycles is the execution time of the original, unoptimized
	// program; ExecCycles is the time under the selected mode.
	BaselineCycles uint64
	ExecCycles     uint64
	// OverheadPct is 100*(Exec/Baseline - 1); negative values are speedups.
	OverheadPct float64

	// OptCycles counts completed profile/optimize/hibernate cycles; the
	// remaining fields are per-cycle averages (paper Table 2).
	OptCycles          int
	TracedRefsPerCycle uint64
	HotStreamsPerCycle int
	DFSMStates         int
	DFSMTransitions    int
	ProcsModified      int

	// Cache behaviour under the selected mode.
	L1MissRatio      float64
	Prefetches       uint64
	UsefulPrefetches uint64
}

// RunBenchmark simulates the named benchmark under the given mode and
// reports the outcome. The run is deterministic: the same name and mode
// always produce the same report.
func RunBenchmark(name string, mode Mode) (Report, error) {
	p, ok := workload.ByName(name)
	if !ok {
		return Report{}, fmt.Errorf("hotprefetch: unknown benchmark %q (have %v)", name, Benchmarks())
	}
	run, err := experiment.RunBenchmark(p, []opt.Mode{opt.Mode(mode)})
	if err != nil {
		return Report{}, err
	}
	res := run.Results[opt.Mode(mode)]
	avg := res.AvgPerCycle()
	return Report{
		Benchmark:          name,
		Mode:               mode,
		BaselineCycles:     run.Baseline,
		ExecCycles:         res.ExecCycles,
		OverheadPct:        run.Overhead(opt.Mode(mode)),
		OptCycles:          res.OptCycles(),
		TracedRefsPerCycle: avg.TracedRefs,
		HotStreamsPerCycle: avg.HotStreams,
		DFSMStates:         avg.DFSMStates,
		DFSMTransitions:    avg.DFSMTransitions,
		ProcsModified:      avg.ProcsModified,
		L1MissRatio:        res.Cache.MissRatio(),
		Prefetches:         res.Cache.Prefetches,
		UsefulPrefetches:   res.Cache.UsefulPrefetches,
	}, nil
}
