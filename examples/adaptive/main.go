// Adaptive: track program phase changes the way the paper's dynamic scheme
// does (§1: "for programs with distinct phase behavior, a dynamic
// prefetching scheme that adapts to program phase transitions may perform
// better").
//
// The simulated program alternates between two phases touching disjoint
// structures. A static, profile-once approach keeps prefetching phase-A
// streams forever; the adaptive approach re-profiles in windows — the
// library-level equivalent of the paper's profile/optimize/hibernate cycle —
// and its stream set follows the phase.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"

	"hotprefetch"
)

func phaseTrace(pcBase int, addrBase uint64, streams, length, laps int) []hotprefetch.Ref {
	var out []hotprefetch.Ref
	for lap := 0; lap < laps; lap++ {
		for s := 0; s < streams; s++ {
			for i := 0; i < length; i++ {
				out = append(out, hotprefetch.Ref{
					PC:   pcBase + s*100 + i,
					Addr: addrBase + uint64(s)*4096 + uint64(i)*64,
				})
			}
		}
	}
	return out
}

func main() {
	cfg := hotprefetch.AnalysisConfig{MinLen: 10, MaxLen: 60, MinUnique: 10, MinCoverage: 0.02}

	// The program: 3 windows of phase A, then 3 windows of phase B.
	var windows [][]hotprefetch.Ref
	for i := 0; i < 3; i++ {
		windows = append(windows, phaseTrace(1000, 0x100000, 4, 14, 10))
	}
	for i := 0; i < 3; i++ {
		windows = append(windows, phaseTrace(5000, 0x900000, 4, 14, 10))
	}

	// Static scheme: profile window 0, prefetch those streams forever.
	static := hotprefetch.NewProfile()
	static.AddAll(windows[0])
	staticStreams := static.HotStreams(cfg)

	fmt.Println("window  phase  static-useful  adaptive-useful  adaptive-streams")
	for w, trace := range windows {
		phase := "A"
		if w >= 3 {
			phase = "B"
		}

		// Adaptive scheme: re-profile this window (the awake phase), then
		// match over it (the hibernation).
		adaptiveProfile := hotprefetch.NewProfile()
		adaptiveProfile.AddAll(trace)
		adaptiveStreams := adaptiveProfile.HotStreams(cfg)

		fmt.Printf("%-7d %-6s %-14d %-16d %d\n",
			w, phase,
			usefulPrefetches(staticStreams, trace),
			usefulPrefetches(adaptiveStreams, trace),
			len(adaptiveStreams))
	}
	fmt.Println("\nthe static stream set goes stale at the phase boundary; the adaptive")
	fmt.Println("re-profiling cycle keeps issuing useful prefetches in both phases.")

	supervised(windows)
}

// supervised runs the same phased program through the Supervisor, which
// closes the paper's loop automatically: it optimizes from banked grammar
// cycles, measures prefetch accuracy in windows, deoptimizes to a
// pass-through matcher when the phase shift drags accuracy under the floor,
// and re-optimizes from fresh evidence — no manual Swap calls anywhere.
func supervised(windows [][]hotprefetch.Ref) {
	svc, err := hotprefetch.NewShardedProfileConfig(hotprefetch.ShardedConfig{
		Shards:            1,
		MaxGrammarSymbols: 64, // tight budget so every window banks detection cycles
	})
	if err != nil {
		panic(err)
	}
	defer svc.Close()

	matcher, err := hotprefetch.NewConcurrentMatcher(nil, 2) // starts pass-through
	if err != nil {
		panic(err)
	}
	sup, err := hotprefetch.Supervise(svc, matcher, hotprefetch.SupervisorConfig{
		// Interval 0: we drive the supervision windows ourselves with Poll,
		// once per program window. A server would set Interval instead and
		// let the background loop pace itself.
		AccuracyFloor: 0.25,
		BadWindows:    2,
		Analysis:      hotprefetch.AnalysisConfig{MinLen: 10, MaxLen: 60, MinUnique: 10, MinCoverage: 0.02},
	})
	if err != nil {
		panic(err)
	}
	defer sup.Close()

	fmt.Println("\nsupervised (hands-off):")
	fmt.Println("window  phase  state-after-poll  accuracy  deopts  reopts")
	for w, trace := range windows {
		phase := "A"
		if w >= 3 {
			phase = "B"
		}
		// The running program: every reference feeds both the profile (the
		// instrumented awake phase) and the matcher (the detection code).
		for _, r := range trace {
			svc.Shard(0).Add(r)
			matcher.Observe(r)
		}
		svc.Flush()
		// One supervision window per program window. Poll twice so a phase
		// shift can both strike the stale matcher and, once hibernated,
		// re-optimize within the same program window.
		sup.Poll()
		sup.Poll()
		snap := sup.Snapshot()
		fmt.Printf("%-7d %-6s %-17s %-9.2f %-7d %d\n",
			w, phase, snap.State, snap.Accuracy, snap.Deoptimizations, snap.Reoptimizations)
	}
	fmt.Println("\nthe supervisor noticed the phase boundary by itself: accuracy fell,")
	fmt.Println("it hibernated the stale matcher, and retrained it on phase-B cycles.")
}

// usefulPrefetches replays a trace through a matcher for the given streams
// and counts prefetched addresses that are subsequently referenced.
func usefulPrefetches(streams []hotprefetch.Stream, trace []hotprefetch.Ref) int {
	if len(streams) == 0 {
		return 0
	}
	matcher, err := hotprefetch.NewMatcher(streams, 2)
	if err != nil {
		panic(err)
	}
	pending := map[uint64]bool{}
	useful := 0
	for _, r := range trace {
		if pending[r.Addr] {
			useful++
			delete(pending, r.Addr)
		}
		if prefetch, _ := matcher.Observe(r); prefetch != nil {
			for _, a := range prefetch {
				pending[a] = true
			}
		}
	}
	return useful
}
