// Adaptive: track program phase changes the way the paper's dynamic scheme
// does (§1: "for programs with distinct phase behavior, a dynamic
// prefetching scheme that adapts to program phase transitions may perform
// better").
//
// The simulated program alternates between two phases touching disjoint
// structures. A static, profile-once approach keeps prefetching phase-A
// streams forever; the adaptive approach re-profiles in windows — the
// library-level equivalent of the paper's profile/optimize/hibernate cycle —
// and its stream set follows the phase.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"

	"hotprefetch"
)

func phaseTrace(pcBase int, addrBase uint64, streams, length, laps int) []hotprefetch.Ref {
	var out []hotprefetch.Ref
	for lap := 0; lap < laps; lap++ {
		for s := 0; s < streams; s++ {
			for i := 0; i < length; i++ {
				out = append(out, hotprefetch.Ref{
					PC:   pcBase + s*100 + i,
					Addr: addrBase + uint64(s)*4096 + uint64(i)*64,
				})
			}
		}
	}
	return out
}

func main() {
	cfg := hotprefetch.AnalysisConfig{MinLen: 10, MaxLen: 60, MinUnique: 10, MinCoverage: 0.02}

	// The program: 3 windows of phase A, then 3 windows of phase B.
	var windows [][]hotprefetch.Ref
	for i := 0; i < 3; i++ {
		windows = append(windows, phaseTrace(1000, 0x100000, 4, 14, 10))
	}
	for i := 0; i < 3; i++ {
		windows = append(windows, phaseTrace(5000, 0x900000, 4, 14, 10))
	}

	// Static scheme: profile window 0, prefetch those streams forever.
	static := hotprefetch.NewProfile()
	static.AddAll(windows[0])
	staticStreams := static.HotStreams(cfg)

	fmt.Println("window  phase  static-useful  adaptive-useful  adaptive-streams")
	for w, trace := range windows {
		phase := "A"
		if w >= 3 {
			phase = "B"
		}

		// Adaptive scheme: re-profile this window (the awake phase), then
		// match over it (the hibernation).
		adaptiveProfile := hotprefetch.NewProfile()
		adaptiveProfile.AddAll(trace)
		adaptiveStreams := adaptiveProfile.HotStreams(cfg)

		fmt.Printf("%-7d %-6s %-14d %-16d %d\n",
			w, phase,
			usefulPrefetches(staticStreams, trace),
			usefulPrefetches(adaptiveStreams, trace),
			len(adaptiveStreams))
	}
	fmt.Println("\nthe static stream set goes stale at the phase boundary; the adaptive")
	fmt.Println("re-profiling cycle keeps issuing useful prefetches in both phases.")
}

// usefulPrefetches replays a trace through a matcher for the given streams
// and counts prefetched addresses that are subsequently referenced.
func usefulPrefetches(streams []hotprefetch.Stream, trace []hotprefetch.Ref) int {
	if len(streams) == 0 {
		return 0
	}
	matcher, err := hotprefetch.NewMatcher(streams, 2)
	if err != nil {
		panic(err)
	}
	pending := map[uint64]bool{}
	useful := 0
	for _, r := range trace {
		if pending[r.Addr] {
			useful++
			delete(pending, r.Addr)
		}
		if prefetch, _ := matcher.Observe(r); prefetch != nil {
			for _, a := range prefetch {
				pending[a] = true
			}
		}
	}
	return useful
}
