// Simulation: run the paper's end-to-end evaluation on one benchmark using
// the public simulation API — the original program versus the full dynamic
// prefetching scheme (paper Figure 12's No-pref vs Dyn-pref comparison for
// a single benchmark).
//
//	go run ./examples/simulation
package main

import (
	"fmt"

	"hotprefetch"
)

func main() {
	const bench = "mcf"
	fmt.Printf("simulating %s (one of %v)\n\n", bench, hotprefetch.Benchmarks())

	noPref, err := hotprefetch.RunBenchmark(bench, hotprefetch.ModeNoPref)
	if err != nil {
		panic(err)
	}
	dyn, err := hotprefetch.RunBenchmark(bench, hotprefetch.ModeDynPref)
	if err != nil {
		panic(err)
	}

	fmt.Printf("%-22s %15s %15s\n", "", "no-pref", "dyn-pref")
	fmt.Printf("%-22s %15d %15d\n", "execution cycles", noPref.ExecCycles, dyn.ExecCycles)
	fmt.Printf("%-22s %14.1f%% %14.1f%%\n", "vs unoptimized", noPref.OverheadPct, dyn.OverheadPct)
	fmt.Printf("%-22s %15.3f %15.3f\n", "L1 miss ratio", noPref.L1MissRatio, dyn.L1MissRatio)
	fmt.Printf("%-22s %15d %15d\n", "prefetches issued", noPref.Prefetches, dyn.Prefetches)
	fmt.Printf("%-22s %15d %15d\n", "useful prefetches", noPref.UsefulPrefetches, dyn.UsefulPrefetches)

	fmt.Printf("\nper optimization cycle (dyn-pref, %d cycles):\n", dyn.OptCycles)
	fmt.Printf("  traced refs     %d\n", dyn.TracedRefsPerCycle)
	fmt.Printf("  hot streams     %d\n", dyn.HotStreamsPerCycle)
	fmt.Printf("  DFSM            <%d states, %d transitions>\n", dyn.DFSMStates, dyn.DFSMTransitions)
	fmt.Printf("  procs modified  %d\n", dyn.ProcsModified)

	saved := float64(noPref.ExecCycles-dyn.ExecCycles) / float64(noPref.ExecCycles) * 100
	fmt.Printf("\ndynamic prefetching recovers %.1f%% over matching without prefetching —\n", saved)
	fmt.Println("the paper's Figure 12 effect, reproduced end to end in simulation.")
}
