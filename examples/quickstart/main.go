// Quickstart: profile a data reference trace, extract its hot data streams,
// and drive the prefix-matching engine — the paper's §2 and §3 pipeline on
// user-supplied data.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"hotprefetch"
)

func main() {
	// A program that repeatedly traverses two linked structures. Each
	// traversal produces the same (pc, addr) sequence — a hot data stream —
	// with unrelated references in between.
	listA := traversal(100, 0x10000, 16) // 16-node list, loads at pcs 100..
	treeB := traversal(300, 0x40000, 12) // 12-node path, loads at pcs 300..
	rng := rand.New(rand.NewSource(42))

	profile := hotprefetch.NewProfile()
	for lap := 0; lap < 50; lap++ {
		profile.AddAll(listA)
		profile.Add(noise(rng))
		profile.AddAll(treeB)
		profile.Add(noise(rng))
	}

	// Extract hot data streams with the paper's default thresholds:
	// more than ten unique references, covering at least 1% of the trace.
	streams := profile.HotStreams(hotprefetch.DefaultAnalysisConfig())
	fmt.Printf("profiled %d references -> %d hot data streams\n\n", profile.Len(), len(streams))
	for i, s := range streams {
		fmt.Printf("stream %d: %d refs, heat %d, %.0f%% of trace\n",
			i+1, len(s.Refs), s.Heat, 100*s.Coverage(profile.Len()))
	}

	// Build the combined prefix-matching DFSM (headLen = 2, the paper's
	// §4.3 choice) and replay one traversal: after the first two references
	// match, the engine hands back the remaining addresses to prefetch.
	matcher, err := hotprefetch.NewMatcher(streams, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nDFSM: %d states, %d transitions, detection code at %d pcs\n",
		matcher.NumStates(), matcher.NumTransitions(), len(matcher.PCs()))

	for i, r := range listA {
		prefetch, comparisons := matcher.Observe(r)
		if prefetch != nil {
			fmt.Printf("\nafter %d references (%d comparisons), prefetch %d addresses:\n",
				i+1, comparisons, len(prefetch))
			for j, a := range prefetch {
				if j == 6 {
					fmt.Println("  ...")
					break
				}
				fmt.Printf("  0x%x\n", a)
			}
			break
		}
	}
}

// traversal fabricates the reference sequence of one pointer-structure walk:
// one load pc and one object address per step.
func traversal(pcBase int, addrBase uint64, n int) []hotprefetch.Ref {
	refs := make([]hotprefetch.Ref, n)
	for i := range refs {
		refs[i] = hotprefetch.Ref{PC: pcBase + 2*i, Addr: addrBase + uint64(i)*96}
	}
	return refs
}

// noise fabricates an unrelated one-off reference.
func noise(rng *rand.Rand) hotprefetch.Ref {
	return hotprefetch.Ref{PC: 9000 + rng.Intn(100), Addr: uint64(rng.Intn(1 << 24))}
}
