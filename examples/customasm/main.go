// Customasm: write your own program in the virtual ISA's assembly and run
// it under the complete dynamic prefetching system — static instrumentation,
// bursty-tracing profiling, online analysis, code injection, hibernation —
// using the public vm package, then compare against its unoptimized
// execution.
//
//	go run ./examples/customasm
package main

import (
	"fmt"
	"os"

	"hotprefetch/vm"
)

// The program: 600 laps over two scattered linked lists. Each traversal is
// a hot data stream; the working set thrashes the small cache configured
// below.
const source = `
proc main
  const r1, 600
laps:
  call walk_a
  call walk_b
  loop r1, laps
  ret

proc walk_a
  const r2, 16        ; head slot of list A
  load r3, [r2+0]
chase_a:
  load r3, [r3+0]     ; r3 = r3->next
  arith 2
  bnez r3, chase_a
  ret

proc walk_b
  const r2, 24        ; head slot of list B
  load r3, [r2+0]
chase_b:
  load r3, [r3+0]
  arith 2
  bnez r3, chase_b
  ret
`

func main() {
	prog, err := vm.Assemble(source)
	if err != nil {
		panic(err)
	}
	m := vm.NewMachine(prog, vm.MachineConfig{
		HeapWords: 1 << 14,
		Cache: vm.CacheConfig{ // small cache so the lists thrash it
			BlockSize: 32, L1Size: 512, L1Assoc: 2, L2Size: 2048, L2Assoc: 2,
			L2HitCycles: 10, MemCycles: 100,
		},
	})
	// Two 40-node scattered lists; the code expects their heads at fixed
	// heap slots 16 and 24.
	m.WriteWord(16, m.AllocList(40, 4, true, 1)[0])
	m.WriteWord(24, m.AllocList(40, 4, true, 2)[0])

	baseline, err := m.RunUnoptimized()
	if err != nil {
		panic(err)
	}

	cfg := vm.DefaultOptimizeConfig()
	cfg.SamplingDenominator = 4 // short demo program: sample aggressively
	cfg.AwakePeriods = 4
	cfg.HibernatePeriods = 60
	cfg.MinCoverage = 0.02
	cfg.Events = os.Stdout // watch the Figure-1 cycle live
	rep, err := m.RunOptimized(cfg)
	if err != nil {
		panic(err)
	}

	fmt.Println("\ncustom assembly program under dynamic hot data stream prefetching")
	fmt.Printf("  unoptimized execution   %d cycles\n", baseline)
	fmt.Printf("  with dynamic prefetch   %d cycles (%+.1f%%)\n",
		rep.Cycles, 100*(float64(rep.Cycles)/float64(baseline)-1))
	fmt.Printf("  optimization cycles     %d\n", rep.OptCycles)
	fmt.Printf("  hot streams per cycle   %d\n", rep.HotStreams)
	fmt.Printf("  procedures modified     %d\n", rep.ProcsModified)
	fmt.Printf("  prefetches (useful)     %d (%d)\n", rep.Prefetches, rep.UsefulPrefetches)
}
