// Webcache: apply hot data stream prefetching outside the CPU cache domain.
//
// A content server observes requests for objects (template fragments, user
// records, assets). Sessions of the same kind fetch the same objects in the
// same order — hot data streams at the request level. This example profiles
// the request log, detects the streams, and uses the prefix matcher to warm
// a backend cache: after the first two requests of a known session shape,
// the remaining objects are fetched before they are asked for.
//
//	go run ./examples/webcache
package main

import (
	"fmt"
	"math/rand"

	"hotprefetch"
)

// Object identifiers double as "addresses"; the handler that fetched the
// object is the "pc". A request is therefore a data reference.
type object = uint64

const (
	handlerPage  = 1 // page renderer
	handlerUser  = 2 // user-record fetcher
	handlerAsset = 3 // asset resolver
)

// sessionShapes are the object sequences typical session kinds request.
var sessionShapes = [][]hotprefetch.Ref{
	makeShape("landing", handlerPage, 1000, 14),
	makeShape("checkout", handlerUser, 2000, 18),
	makeShape("dashboard", handlerAsset, 3000, 12),
}

func makeShape(name string, handler int, base object, n int) []hotprefetch.Ref {
	refs := make([]hotprefetch.Ref, n)
	for i := range refs {
		refs[i] = hotprefetch.Ref{PC: handler, Addr: base + object(i)}
	}
	return refs
}

func main() {
	rng := rand.New(rand.NewSource(7))

	// Phase 1: profile a day of traffic. Most requests follow one of the
	// session shapes; some are one-off lookups.
	profile := hotprefetch.NewProfile()
	var replay []hotprefetch.Ref
	for i := 0; i < 400; i++ {
		if rng.Intn(10) == 0 {
			r := hotprefetch.Ref{PC: 9, Addr: object(50000 + rng.Intn(10000))}
			profile.Add(r)
			replay = append(replay, r)
			continue
		}
		shape := sessionShapes[rng.Intn(len(sessionShapes))]
		profile.AddAll(shape)
		replay = append(replay, shape...)
	}

	streams := profile.HotStreams(hotprefetch.AnalysisConfig{
		MinLen: 8, MaxLen: 64, MinUnique: 8, MinCoverage: 0.01, MaxStreams: 10,
	})
	fmt.Printf("request log: %d requests -> %d hot request streams\n",
		profile.Len(), len(streams))
	for i, s := range streams {
		fmt.Printf("  stream %d: %d objects, %.0f%% of traffic\n",
			i+1, len(s.Refs), 100*s.Coverage(profile.Len()))
	}

	// Phase 2: serve live traffic with stream-driven cache warming.
	matcher, err := hotprefetch.NewMatcher(streams, 2)
	if err != nil {
		panic(err)
	}
	warm := map[object]bool{}
	var hits, misses, warmed int
	for _, req := range replay {
		if warm[req.Addr] {
			hits++
		} else {
			misses++
			warm[req.Addr] = true // fetched on demand, now cached
		}
		if prefetch, _ := matcher.Observe(req); prefetch != nil {
			for _, obj := range prefetch {
				if !warm[obj] {
					warm[obj] = true
					warmed++
				}
			}
		}
	}
	total := hits + misses
	fmt.Printf("\nreplaying traffic with stream-driven warming:\n")
	fmt.Printf("  %d requests, %d served warm (%.0f%%), %d cold\n",
		total, hits, 100*float64(hits)/float64(total), misses)
	fmt.Printf("  %d objects warmed ahead of first use\n", warmed)
}
