package hotprefetch

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"hotprefetch/internal/fault"
	"hotprefetch/internal/snapshot"
)

// The chaos matrix: every way a snapshot load can go wrong — truncated at
// any byte, any single bit flipped, version- or flags-skewed — must produce
// a typed format error, count exactly one load failure, leave the profile
// cold but fully usable, and leak no goroutines. Run under -race in CI's
// chaos job. The stale and drifted warm-start demotions (the remaining rows
// of the matrix) are TestSupervisorWarmStartStaleDemotion and
// TestSupervisorWarmStartDriftDemotion in persist_test.go.

// settleGoroutines polls until the goroutine count returns to base (small
// slack for runtime background threads), failing if it never does — the
// leak check every chaos scenario runs under.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, started with %d", n, base)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// chaosSnapshot builds one real snapshot encoding to mutate.
func chaosSnapshot(t *testing.T) []byte {
	t.Helper()
	src := cycledProfile(t, 1)
	defer src.Close()
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf, 7); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotChaosMatrix(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	enc := chaosSnapshot(t)
	sp, err := NewShardedProfileConfig(ShardedConfig{
		Shards:            1,
		MaxGrammarSymbols: 64,
		CycleAnalysis:     AnalysisConfig{MinLen: 4, MaxLen: 64, MinCoverage: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	var loads uint64
	mustFail := func(name string, mutated []byte) {
		t.Helper()
		if _, err := sp.RestoreSnapshot(bytes.NewReader(mutated)); !snapshot.IsFormatError(err) {
			t.Fatalf("%s: error = %v, want a typed format error", name, err)
		}
		loads++
	}

	// Truncation at every prefix length: the framing's length commitments
	// mean no strict prefix may ever parse.
	for cut := 0; cut < len(enc); cut++ {
		mustFail("truncate", enc[:cut])
	}

	// Every offset single-bit-flipped once (seeded corruptor picks the bit):
	// magic, version, and flags fail the header check, the section count is
	// fenced by the trailing-bytes rule, and everything else is under a CRC.
	c := fault.NewCorruptor(1)
	for i := 0; i < 2*len(enc); i++ {
		mutated := append([]byte(nil), enc...)
		c.FlipBit(mutated)
		mustFail("bitflip", mutated)
	}
	if c.Flips() == 0 {
		t.Fatal("corruptor flipped nothing")
	}

	// Random truncations on top of the exhaustive sweep, for the corruptor's
	// own coverage accounting.
	for i := 0; i < 32; i++ {
		mutated := append([]byte(nil), enc...)
		mustFail("corruptor-truncate", c.Truncate(mutated))
	}

	// Version and flags skew: a future writer's file is ErrVersion, not a
	// misparse.
	skew := append([]byte(nil), enc...)
	skew[6] = 2
	if _, err := sp.RestoreSnapshot(bytes.NewReader(skew)); !errors.Is(err, snapshot.ErrVersion) {
		t.Fatalf("version skew error = %v, want ErrVersion", err)
	}
	loads++
	skew = append([]byte(nil), enc...)
	skew[7] = 0x80
	if _, err := sp.RestoreSnapshot(bytes.NewReader(skew)); !errors.Is(err, snapshot.ErrVersion) {
		t.Fatalf("flags skew error = %v, want ErrVersion", err)
	}
	loads++

	// The books: one counted load failure per scenario, nothing restored.
	st := sp.Stats()
	if st.SnapshotLoadFailures != loads || st.SnapshotRestores != 0 || st.RestoredStreams != 0 {
		t.Fatalf("after %d corrupt loads: failures %d, restores %d, restored %d",
			loads, st.SnapshotLoadFailures, st.SnapshotRestores, st.RestoredStreams)
	}

	// Cold fallback: the battered profile still profiles from zero, and the
	// pristine bytes still restore — the failures poisoned nothing.
	feedUntilCycle(t, sp, phaseTrace(2, 40), 0)
	if len(sp.BankedStreams(0)) == 0 {
		t.Fatal("no streams banked after corrupt-load barrage")
	}
	fresh := NewShardedProfile(1)
	defer fresh.Close()
	if _, err := fresh.RestoreSnapshot(bytes.NewReader(enc)); err != nil {
		t.Fatalf("pristine snapshot failed to restore: %v", err)
	}

	settleGoroutines(t, baseGoroutines)
}

// TestSnapshotChaosServiceDir drives the same failure classes through the
// service's warm-load path: a directory of damaged snapshot files costs the
// warm starts, never the tenants — every tenant registers cold, ingests,
// and the failures are counted per file.
func TestSnapshotChaosServiceDir(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	enc := chaosSnapshot(t)
	dir := t.TempDir()

	c := fault.NewCorruptor(2)
	flipped := append([]byte(nil), enc...)
	c.FlipBit(flipped)
	skewed := append([]byte(nil), enc...)
	skewed[6] = 9
	damaged := map[string][]byte{
		"truncated.snap": enc[:len(enc)/2],
		"flipped.snap":   flipped,
		"skewed.snap":    skewed,
		"empty.snap":     {},
	}
	for name, body := range damaged {
		if err := os.WriteFile(filepath.Join(dir, name), body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "intact.snap"), enc, 0o644); err != nil {
		t.Fatal(err)
	}

	svc, err := NewService(snapshotServiceConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	loaded, failed := svc.LoadSnapshots()
	if loaded != 1 || failed != len(damaged) {
		t.Fatalf("LoadSnapshots = %d loaded, %d failed; want 1, %d", loaded, failed, len(damaged))
	}
	st := svc.Stats()
	if st.SnapshotLoads != 1 || st.SnapshotLoadFailures != uint64(len(damaged)) {
		t.Fatalf("service stats: loads %d, failures %d", st.SnapshotLoads, st.SnapshotLoadFailures)
	}
	// Every tenant — damaged files included — registered and profiles cold.
	for name := range damaged {
		key := name[:len(name)-len(".snap")]
		bankCycles(t, svc, key, 1)
	}
	svc.Close()
	settleGoroutines(t, baseGoroutines)
}
