package hotprefetch

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hotprefetch/internal/ring"
)

// ShardedProfile scales profile ingestion across concurrent producers: N
// independent Profile shards, each fed through its own single-producer
// single-consumer ring buffer by a dedicated consumer goroutine. Producers
// never contend on a lock or on each other's cache lines, so aggregate
// ingestion throughput grows with the shard count — the concurrency layer a
// multi-tenant profiling service needs on top of the paper's inherently
// sequential per-trace algorithms (§2.3 profiles one program; a service
// profiles many).
//
// Each shard builds an independent Sequitur grammar over the subsequence it
// receives, so hot data streams are detected per shard and merged by heat.
// Route references so that one logical trace (one profiled program, tenant,
// or thread) always lands on the same shard: interleaving a single logical
// trace across shards splits its regularity and weakens detection. With one
// producer per logical trace and NumShards == 1 the result is identical to
// feeding a single Profile.
type ShardedProfile struct {
	shards []*ProfileShard
	closed atomic.Bool
}

// ProfileShard is one shard's producer handle. Each shard accepts references
// from at most one goroutine at a time (the single-producer half of the SPSC
// contract); distinct shards are fully independent.
type ProfileShard struct {
	q        *ring.SPSC[Ref]
	p        *Profile
	pushed   atomic.Uint64 // references accepted by Add
	consumed atomic.Uint64 // references applied to p
	stop     chan struct{}
	done     chan struct{}
}

// shardRingCap bounds the per-shard backlog; large enough to ride out
// consumer scheduling hiccups, small enough to keep memory per shard modest.
const shardRingCap = 1 << 12

// NewShardedProfile returns a profile with n shards (n < 1 is treated as 1),
// spawning one consumer goroutine per shard. Call Close to stop the
// consumers when the profile is no longer needed.
func NewShardedProfile(n int) *ShardedProfile {
	if n < 1 {
		n = 1
	}
	sp := &ShardedProfile{shards: make([]*ProfileShard, n)}
	for i := range sp.shards {
		s := &ProfileShard{
			q:    ring.New[Ref](shardRingCap),
			p:    NewProfile(),
			stop: make(chan struct{}),
			done: make(chan struct{}),
		}
		sp.shards[i] = s
		go s.consume()
	}
	return sp
}

// consume drains the shard's ring into its Profile until stopped.
func (s *ProfileShard) consume() {
	defer close(s.done)
	var batch [256]Ref
	for {
		n := s.q.PopBatch(batch[:])
		if n == 0 {
			select {
			case <-s.stop:
				// Drain what raced in before the stop signal.
				for {
					n := s.q.PopBatch(batch[:])
					if n == 0 {
						return
					}
					s.apply(batch[:n])
				}
			default:
				runtime.Gosched()
				continue
			}
		}
		s.apply(batch[:n])
	}
}

func (s *ProfileShard) apply(refs []Ref) {
	for _, r := range refs {
		s.p.Add(r)
	}
	s.consumed.Add(uint64(len(refs)))
}

// Add appends one data reference to the shard, blocking (spinning with
// scheduler yields) while the shard's ring is full.
func (s *ProfileShard) Add(r Ref) {
	s.q.Push(r)
	s.pushed.Add(1)
}

// AddAll appends each reference in order.
func (s *ProfileShard) AddAll(refs []Ref) {
	for _, r := range refs {
		s.Add(r)
	}
}

// drained reports whether every accepted reference has been applied.
func (s *ProfileShard) drained() bool {
	return s.consumed.Load() == s.pushed.Load()
}

// NumShards returns the number of shards.
func (sp *ShardedProfile) NumShards() int { return len(sp.shards) }

// Shard returns producer handle i (0 <= i < NumShards).
func (sp *ShardedProfile) Shard(i int) *ProfileShard { return sp.shards[i] }

// Flush blocks until every reference accepted by the shards has been
// compressed into its shard's grammar. Producers should be quiescent;
// references added concurrently with Flush may or may not be included.
func (sp *ShardedProfile) Flush() {
	for _, s := range sp.shards {
		for !s.drained() {
			runtime.Gosched()
		}
	}
}

// Len returns the total number of references ingested across all shards
// (flushing first so in-flight references are counted).
func (sp *ShardedProfile) Len() uint64 {
	sp.Flush()
	var n uint64
	for _, s := range sp.shards {
		n += s.p.Len()
	}
	return n
}

// Close stops the consumer goroutines after draining in-flight references.
// The profile remains readable (HotStreams, Len) but Add must not be called
// after Close. Close is idempotent.
func (sp *ShardedProfile) Close() {
	if !sp.closed.CompareAndSwap(false, true) {
		return
	}
	for _, s := range sp.shards {
		close(s.stop)
	}
	for _, s := range sp.shards {
		<-s.done
	}
}

// HotStreams flushes all shards, extracts each shard's hot data streams in
// parallel, and merges them: identical streams found by several shards are
// deduplicated with their heats summed (frequency adds across shards, and
// heat = length × frequency), then the result is re-ranked hottest first
// and capped at cfg.MaxStreams.
//
// cfg's coverage threshold applies per shard (each shard knows only its own
// trace length), so with N > 1 a stream must be hot within at least one
// shard to be found — route whole logical traces to single shards to keep
// this faithful.
func (sp *ShardedProfile) HotStreams(cfg AnalysisConfig) []Stream {
	sp.Flush()
	perShard := make([][]Stream, len(sp.shards))
	var wg sync.WaitGroup
	for i, s := range sp.shards {
		wg.Add(1)
		go func(i int, s *ProfileShard) {
			defer wg.Done()
			perShard[i] = s.p.HotStreams(cfg)
		}(i, s)
	}
	wg.Wait()
	return mergeStreams(perShard, cfg.MaxStreams)
}

// mergeStreams deduplicates identical streams across shards (summing heat)
// and returns them hottest first, preserving shard-extraction order among
// equal heats, capped at maxStreams (0 = no cap).
func mergeStreams(perShard [][]Stream, maxStreams int) []Stream {
	type slot struct {
		idx  int
		heat uint64
	}
	var (
		out  []Stream
		key  strings.Builder
		seen = map[string]*slot{}
	)
	for _, streams := range perShard {
		for _, st := range streams {
			key.Reset()
			for _, r := range st.Refs {
				fmt.Fprintf(&key, "%d:%x;", r.PC, r.Addr)
			}
			if sl, ok := seen[key.String()]; ok {
				sl.heat += st.Heat
				out[sl.idx].Heat = sl.heat
				continue
			}
			seen[key.String()] = &slot{idx: len(out), heat: st.Heat}
			out = append(out, st)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Heat > out[j].Heat })
	if maxStreams > 0 && len(out) > maxStreams {
		out = out[:maxStreams]
	}
	return out
}
