package hotprefetch

import (
	"context"
	"encoding/binary"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hotprefetch/internal/burst"
	"hotprefetch/internal/fault"
	"hotprefetch/internal/obs"
	"hotprefetch/internal/procid"
	"hotprefetch/internal/ring"
	"hotprefetch/internal/snapshot"
)

// ShardedProfile scales profile ingestion across concurrent producers: N
// independent Profile shards, each fed through its own single-producer
// single-consumer ring buffer by a dedicated consumer goroutine. Producers
// never contend on a lock or on each other's cache lines, so aggregate
// ingestion throughput grows with the shard count — the concurrency layer a
// multi-tenant profiling service needs on top of the paper's inherently
// sequential per-trace algorithms (§2.3 profiles one program; a service
// profiles many).
//
// Each shard builds an independent Sequitur grammar over the subsequence it
// receives, so hot data streams are detected per shard and merged by heat.
// Route references so that one logical trace (one profiled program, tenant,
// or thread) always lands on the same shard: interleaving a single logical
// trace across shards splits its regularity and weakens detection. With one
// producer per logical trace and NumShards == 1 the result is identical to
// feeding a single Profile.
//
// The service-facing robustness knobs live in ShardedConfig: an ingestion
// policy for full-ring back-pressure (Block, Drop, Sample), a per-shard
// grammar memory budget with automatic phase cycling, and a Stats snapshot
// for monitoring.
//
// With AnalysisWorkers > 0, grammar-budget cycles are pipelined instead of
// inline: the shard consumer swaps in a pre-warmed spare grammar and hands
// the full one to a background analysis pool, so ingestion never stalls for
// the duration of a cycle-end analysis — the paper's requirement that
// analysis be cheap enough to run while the program executes (§2), turned
// into an off-the-ingest-path phase transition.
type ShardedProfile struct {
	shards []*ProfileShard
	cfg    ShardedConfig
	closed atomic.Bool

	// analysisQ feeds full profiles to the background analysis pool; nil
	// when AnalysisWorkers == 0 (inline cycling).
	analysisQ   chan analysisJob
	workersDone sync.WaitGroup

	// quotaUsed counts references admitted against cfg.RefQuota across all
	// shards; producers reserve from it before touching any per-shard state,
	// so the quota is exact even with concurrent producers (the counter may
	// overshoot the quota, but every reference is admitted or shed exactly
	// once).
	quotaUsed atomic.Uint64

	mergeCount  atomic.Uint64 // HotStreams merge passes
	mergeNanos  atomic.Uint64 // cumulative time spent merging
	cycles      atomic.Uint64 // cycle analyses completed (inline + background)
	flushStalls atomic.Uint64 // lossy HotStreams calls that hit a stall
	matcher     atomic.Pointer[ConcurrentMatcher]
	supervisor  atomic.Pointer[Supervisor]

	// Warm-start state (see persist.go): restored holds the stream set
	// loaded by RestoreSnapshot until a supervisor demotes it as stale;
	// restoredGen and restoredBaseline carry the snapshot's generation and
	// accuracy counters for checkpointing and provisional trust.
	restoredMu       sync.Mutex
	restored         []Stream
	restoredGen      uint64
	restoredBaseline snapshot.Baseline

	// Snapshot lifecycle counters, mirrored into Stats and WriteMetrics.
	snapWrites        atomic.Uint64
	snapRestores      atomic.Uint64
	snapLoadFailures  atomic.Uint64
	snapStaleRejected atomic.Uint64

	// obs is the observability hub (never nil): phase events, latency
	// histograms, and the Prometheus exporter's source. See Observer.
	obs *obs.Observer
}

// Observer returns the profile's observability hub: subscribe a Tracer for
// the phase-event timeline, or read the latency histograms directly. The
// same hub is what MetricsHandler exposes in Prometheus text format.
func (sp *ShardedProfile) Observer() *obs.Observer { return sp.obs }

// Breaker states; see breaker.
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

// breakerStateName maps a breaker state to its Stats string.
func breakerStateName(s int32) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-shard circuit breaker over cycle-end analyses: after
// threshold consecutive failures (panics or deadline overruns) it opens and
// the shard degrades to ingest-and-recycle without analysis, instead of
// feeding a failing analysis path forever. After a jittered exponential
// backoff it half-opens and admits exactly one probe analysis; success
// closes it (resetting the backoff), failure reopens it with a doubled
// backoff.
type breaker struct {
	mu          sync.Mutex
	threshold   int
	minBackoff  time.Duration
	maxBackoff  time.Duration
	backoff     time.Duration // next open duration (pre-jitter)
	state       int32
	consecFails int
	openUntil   time.Time
	probing     bool   // a half-open probe is in flight
	rng         uint64 // splitmix64 state for backoff jitter
	transitions atomic.Uint64

	// onTransition, when non-nil, is called with the new state after every
	// state change — outside the breaker lock, so the callback may emit
	// phase events (whose tracers must never be invoked under an internal
	// lock they could want to read through).
	onTransition func(newState int32)
}

// notify invokes onTransition for state; call only with b.mu released.
func (b *breaker) notify(state int32) {
	if b.onTransition != nil {
		b.onTransition(state)
	}
}

func (b *breaker) nextRand() uint64 {
	b.rng += 0x9e3779b97f4a7c15
	x := b.rng
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// allow reports whether an analysis may run now. A true return from the
// open state admits the half-open probe; the caller must report the outcome
// via success or failure.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	switch b.state {
	case breakerClosed:
		b.mu.Unlock()
		return true
	case breakerOpen:
		if now.Before(b.openUntil) {
			b.mu.Unlock()
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		b.transitions.Add(1)
		b.mu.Unlock()
		b.notify(breakerHalfOpen)
		return true
	default: // half-open
		if b.probing {
			b.mu.Unlock()
			return false
		}
		b.probing = true
		b.mu.Unlock()
		return true
	}
}

func (b *breaker) success() {
	b.mu.Lock()
	b.consecFails = 0
	b.probing = false
	closed := b.state != breakerClosed
	if closed {
		b.state = breakerClosed
		b.backoff = b.minBackoff
		b.transitions.Add(1)
	}
	b.mu.Unlock()
	if closed {
		b.notify(breakerClosed)
	}
}

func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	b.consecFails++
	wasProbe := b.probing
	b.probing = false
	switch b.state {
	case breakerClosed:
		if b.consecFails < b.threshold {
			b.mu.Unlock()
			return
		}
	case breakerHalfOpen:
		if !wasProbe {
			b.mu.Unlock()
			return
		}
	case breakerOpen:
		// A job admitted before the trip failed late; the breaker is
		// already open, leave its backoff schedule alone.
		b.mu.Unlock()
		return
	}
	b.state = breakerOpen
	b.transitions.Add(1)
	// Jittered backoff in [backoff/2, backoff], doubled per reopen up to
	// the cap, so shards that tripped together do not probe in lockstep.
	d := b.backoff
	if half := d / 2; half > 0 {
		d = half + time.Duration(b.nextRand()%uint64(half+1))
	}
	b.openUntil = now.Add(d)
	b.backoff *= 2
	if b.backoff > b.maxBackoff {
		b.backoff = b.maxBackoff
	}
	b.mu.Unlock()
	b.notify(breakerOpen)
}

// snapshot returns the state name and transition count for Stats.
func (b *breaker) snapshot() (string, uint64) {
	b.mu.Lock()
	s := b.state
	b.mu.Unlock()
	return breakerStateName(s), b.transitions.Load()
}

// analysisJob is one detached full profile awaiting background analysis.
type analysisJob struct {
	shard *ProfileShard
	p     *Profile
}

// ProfileShard is one shard's producer handle. Each shard accepts references
// from at most one goroutine at a time (the single-producer half of the SPSC
// contract); distinct shards are fully independent.
type ProfileShard struct {
	q   *ring.SPSC[Ref]
	p   *Profile
	sp  *ShardedProfile // owner; reaches the analysis pool and its stats
	idx int             // shard index, used by fault injection and errors
	inj fault.Injector  // nil unless ShardedConfig.Fault was set

	policy     IngestPolicy
	sampleN    int
	maxSymbols int
	cycleCfg   AnalysisConfig

	// prepassOn mirrors the resolved ShardedConfig.Prepass mode for the
	// consumer's fast path: when set, the shard's profiles run the two-level
	// ingest front end and the consumer tracks collapse deltas. collapsed
	// and minted accumulate across grammar cycles (the per-profile counters
	// die with each cycle's Reset); both are consumer-written, Stats-read.
	prepassOn bool
	collapsed atomic.Uint64 // references absorbed by the front end
	minted    atomic.Uint64 // phrase/run rules minted by the front end

	// brk degrades this shard to ingest-and-recycle when its cycle-end
	// analyses keep failing; analysesFailed/analysesSkipped account every
	// cycle that did not complete an analysis, so resets ==
	// completed + failed + skipped at quiescence.
	brk             breaker
	analysesFailed  atomic.Uint64
	analysesSkipped atomic.Uint64

	// spare holds reset profiles for double buffering (pipelined cycling):
	// the consumer swaps one in at a cycle instead of analyzing inline, and
	// analysis workers return recycled profiles to it.
	spare       chan *Profile
	pending     atomic.Int64  // analyses queued or running for this shard
	spareMisses atomic.Uint64 // cycles that had to allocate a fresh profile

	closed     atomic.Bool
	pushed     atomic.Uint64 // references accepted by Add
	consumed   atomic.Uint64 // references applied to p
	dropped    atomic.Uint64 // references shed on a full ring (Drop/Sample)
	sampledOut atomic.Uint64 // references skipped by Sample degradation
	resets     atomic.Uint64 // grammar budget cycles completed

	grammarSize atomic.Uint64 // p's grammar size as of the last batch
	peakGrammar atomic.Uint64 // high-water mark of the grammar size

	// maxCycleStallNanos is the longest a grammar-budget cycle has blocked
	// this shard's ingest path: the whole analysis when cycling inline, just
	// the grammar swap and enqueue when pipelined.
	maxCycleStallNanos atomic.Uint64

	// Producer-local Sample state: guarded by the single-producer contract,
	// never touched by the consumer.
	degraded bool
	skip     int

	// burst is the producer-local bursty-sampling front end
	// (ShardedConfig.Burst); nil when disabled. Like the Sample state it is
	// guarded by the single-producer contract. burstShed counts references
	// the front end shed without touching the ring.
	burst     *burstGate
	burstShed atomic.Uint64

	// quotaShed counts references shed at this shard's producer boundary
	// because the profile-wide RefQuota was exhausted.
	quotaShed atomic.Uint64

	// prodLock serializes Auto-placed producers on this shard (AddAuto and
	// AddBatchAuto): the SPSC ring and the producer-local Sample/burst
	// state admit one producer at a time, and P-indexed placement cannot
	// guarantee two goroutines never pick the same shard.
	prodLock atomic.Bool

	mu       sync.Mutex // guards retained
	retained []Stream   // hot streams extracted at grammar resets

	stop chan struct{}
	done chan struct{}
}

// NewShardedProfile returns a profile with n shards (n < 1 is treated as 1)
// using the default configuration: Block ingestion, 4096-slot rings, no
// grammar budget. Call Close to stop the consumers when the profile is no
// longer needed.
func NewShardedProfile(n int) *ShardedProfile {
	sp, err := NewShardedProfileConfig(ShardedConfig{Shards: n})
	if err != nil {
		// The zero config is always valid; only Shards varies and it is
		// clamped.
		panic(err)
	}
	return sp
}

// NewShardedProfileConfig returns a profile configured by cfg, spawning one
// consumer goroutine per shard. Call Close to stop the consumers when the
// profile is no longer needed.
func NewShardedProfileConfig(cfg ShardedConfig) (*ShardedProfile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sp := newShardedProfile(cfg)
	for i := 0; i < sp.cfg.AnalysisWorkers; i++ {
		sp.workersDone.Add(1)
		go sp.analysisWorker()
	}
	for _, s := range sp.shards {
		go s.consume()
	}
	return sp, nil
}

// newShardedProfile builds the shard set without starting consumers; tests
// use it to exercise producer-side policies deterministically.
func newShardedProfile(cfg ShardedConfig) *ShardedProfile {
	cfg = cfg.withDefaults()
	sp := &ShardedProfile{shards: make([]*ProfileShard, cfg.Shards), cfg: cfg}
	sp.obs = cfg.Observer
	if sp.obs == nil {
		sp.obs = obs.New()
	}
	if cfg.AnalysisWorkers > 0 {
		// Queue capacity of two jobs per shard: a shard can have at most one
		// analysis in flight per spare it can draw, and the spare channel
		// holds two, so enqueues block only when the pool is badly behind.
		sp.analysisQ = make(chan analysisJob, 2*cfg.Shards)
	}
	for i := range sp.shards {
		s := &ProfileShard{
			q:          ring.New[Ref](cfg.RingCap),
			p:          sp.newProfile(),
			sp:         sp,
			idx:        i,
			inj:        cfg.Fault,
			policy:     cfg.Policy,
			sampleN:    cfg.SampleInterval,
			maxSymbols: cfg.MaxGrammarSymbols,
			cycleCfg:   cfg.CycleAnalysis,
			prepassOn:  cfg.Prepass.Mode == PrepassOn,
			stop:       make(chan struct{}),
			done:       make(chan struct{}),
		}
		s.brk = breaker{
			threshold:  cfg.BreakerThreshold,
			minBackoff: cfg.BreakerBackoff,
			maxBackoff: cfg.BreakerMaxBackoff,
			backoff:    cfg.BreakerBackoff,
			rng:        uint64(i)*0x9e3779b97f4a7c15 + 1,
		}
		shard := i
		s.brk.onTransition = func(newState int32) {
			switch newState {
			case breakerOpen:
				sp.obs.Emit(obs.KindBreakerOpen, shard, 0)
			case breakerHalfOpen:
				sp.obs.Emit(obs.KindBreakerHalfOpen, shard, 0)
			default:
				sp.obs.Emit(obs.KindBreakerClosed, shard, 0)
			}
		}
		if cfg.Burst.Enabled {
			s.burst = &burstGate{ctl: burst.New(cfg.Burst.controllerConfig())}
		}
		if cfg.AnalysisWorkers > 0 && cfg.MaxGrammarSymbols > 0 {
			// Pre-warm one spare so the first phase transition is a pure
			// pointer swap.
			s.spare = make(chan *Profile, 2)
			s.spare <- sp.newProfile()
		}
		sp.shards[i] = s
	}
	return sp
}

// newProfile builds one shard profile under the profile-wide prepass mode.
// A plain ShardedProfile resolves PrepassAuto to Off, preserving the
// contract that NumShards == 1 compresses bit-identically to a single
// Profile; the networked Service resolves Auto to On before construction.
func (sp *ShardedProfile) newProfile() *Profile {
	if sp.cfg.Prepass.Mode == PrepassOn {
		return NewPrepassProfile(sp.cfg.Prepass)
	}
	return NewProfile()
}

// analysisWorker drains the analysis queue: each job is one shard's full,
// detached profile, run with panic isolation, an optional deadline, and the
// shard's circuit breaker consulted first. Runs until the queue is closed;
// because every failure mode completes the job (panic recovered, deadline
// abandoned, breaker skipped), a failing analysis path can never wedge the
// pool.
// Analysis workers, shard consumers, and the supervisor loop run under
// runtime/pprof profiler labels so a CPU profile attributes time to the
// paper's phases directly: filter on hotprefetch_phase=analysis to see what
// cycle-end hot-stream extraction costs, ingest for Sequitur compression.
func (sp *ShardedProfile) analysisWorker() {
	defer sp.workersDone.Done()
	pprof.Do(context.Background(), pprof.Labels("hotprefetch_phase", "analysis"), func(context.Context) {
		for job := range sp.analysisQ {
			sp.runAnalysis(job)
		}
	})
}

// safeAnalyze runs one cycle-end hot-stream analysis on the calling
// goroutine with panic isolation and fault injection. A recovered panic is
// returned as an error wrapping ErrAnalysisPanic.
func (s *ProfileShard) safeAnalyze(p *Profile) (streams []Stream, err error) {
	defer func() {
		if r := recover(); r != nil {
			streams = nil
			err = fmt.Errorf("hotprefetch: shard %d %w: %v", s.idx, ErrAnalysisPanic, r)
		}
	}()
	if s.inj != nil {
		f := s.inj.Analysis(s.idx)
		if f.Delay > 0 {
			time.Sleep(f.Delay)
		}
		if f.Panic {
			panic("fault: injected analysis panic")
		}
	}
	return p.HotStreams(s.cycleCfg), nil
}

// analyzeIsolated runs safeAnalyze, enforcing timeout when positive by
// running the analysis on a helper goroutine. On a deadline overrun the
// helper is abandoned together with the profile (abandoned == true): the
// runaway analysis still reads p, so p must never be recycled; when the
// helper eventually finishes, its send lands in the buffered channel and
// both are garbage collected.
func (s *ProfileShard) analyzeIsolated(p *Profile, timeout time.Duration) (streams []Stream, err error, abandoned bool) {
	if timeout <= 0 {
		streams, err = s.safeAnalyze(p)
		return streams, err, false
	}
	type result struct {
		streams []Stream
		err     error
	}
	done := make(chan result, 1)
	go func() {
		st, err := s.safeAnalyze(p)
		done <- result{st, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-done:
		return r.streams, r.err, false
	case <-timer.C:
		return nil, fmt.Errorf("hotprefetch: shard %d analysis exceeded %v: %w", s.idx, timeout, ErrAnalysisTimeout), true
	}
}

// recycle resets a detached profile and offers it back as a spare.
func (s *ProfileShard) recycle(p *Profile) {
	p.Reset()
	select {
	case s.spare <- p:
	default: // spare buffer full; let the profile go
	}
}

// runAnalysis executes one background analysis job end to end: breaker
// check, isolated analysis, retained-stream banking, profile recycling, and
// failure accounting. It always completes the job (pending is decremented
// on every path), which is the liveness contract drainAnalyses and Close
// rely on.
func (sp *ShardedProfile) runAnalysis(job analysisJob) {
	s := job.shard
	// Last on every path: drainAnalyses readers must see the retained
	// merge and the failure accounting.
	defer s.pending.Add(-1)
	if !s.brk.allow(time.Now()) {
		// Breaker open: degrade to ingest-and-recycle without analysis.
		s.analysesSkipped.Add(1)
		sp.obs.Emit(obs.KindAnalysisSkipped, s.idx, 0)
		s.recycle(job.p)
		return
	}
	start := time.Now()
	streams, err, abandoned := s.analyzeIsolated(job.p, sp.cfg.AnalysisTimeout)
	if err != nil {
		s.analysesFailed.Add(1)
		sp.obs.Emit(obs.KindAnalysisFailed, s.idx, 0)
		s.brk.failure(time.Now())
		if !abandoned {
			s.recycle(job.p)
		}
		return
	}
	s.brk.success()
	sp.noteAnalysis(s, time.Since(start))
	s.bank(streams)
	s.recycle(job.p)
}

// bank merges one completed cycle's hot streams into the retained set.
func (s *ProfileShard) bank(streams []Stream) {
	if len(streams) == 0 {
		return
	}
	s.mu.Lock()
	s.retained = mergeStreams([][]Stream{s.retained, streams}, s.cycleCfg.MaxStreams)
	s.mu.Unlock()
	s.sp.obs.Emit(obs.KindCycleBanked, s.idx, uint64(len(streams)))
}

// noteAnalysis records one completed cycle analysis: the counter feeding
// the Resets invariant, the latency histogram, and the phase event.
//
// Counter-ordering contract (see Stats): a cycle's reset is counted before
// its analysis reaches a terminal state, and Stats reads the terminal
// counters before the resets, so every snapshot satisfies
// CyclesAnalyzed + AnalysesFailed + AnalysesSkipped <= Resets, with
// equality at quiescence.
func (sp *ShardedProfile) noteAnalysis(s *ProfileShard, d time.Duration) {
	sp.cycles.Add(1)
	sp.obs.AnalysisLatency.ObserveDuration(d)
	sp.obs.Emit(obs.KindCycleAnalyzed, s.idx, uint64(d))
}

// analysesDone totals the cycle analyses that have reached a terminal state
// (completed, failed, or skipped) — the progress measure drainAnalyses
// watches.
func (sp *ShardedProfile) analysesDone() uint64 {
	n := sp.cycles.Load()
	for _, s := range sp.shards {
		n += s.analysesFailed.Load() + s.analysesSkipped.Load()
	}
	return n
}

// drainAnalyses blocks until no shard has a cycle analysis queued or
// running, so the retained sets are complete up to the analyses enqueued
// before the call. Failed and breaker-skipped analyses count as drained —
// the isolation contract is that every job terminates — but if the pool
// stops making progress for FlushStallTimeout (e.g. a hung analysis with no
// AnalysisTimeout configured), drainAnalyses gives up with an error
// wrapping ErrAnalysisStalled instead of spinning forever.
func (sp *ShardedProfile) drainAnalyses() error {
	if sp.analysisQ == nil {
		return nil
	}
	lastDone := sp.analysesDone()
	lastProgress := time.Now()
	for i, s := range sp.shards {
		for s.pending.Load() > 0 {
			if d := sp.analysesDone(); d != lastDone {
				lastDone, lastProgress = d, time.Now()
			} else if time.Since(lastProgress) > sp.cfg.FlushStallTimeout {
				return fmt.Errorf("hotprefetch: shard %d has %d cycle analyses pending with no pool progress for %v: %w",
					i, s.pending.Load(), sp.cfg.FlushStallTimeout, ErrAnalysisStalled)
			}
			runtime.Gosched()
		}
	}
	return nil
}

// consume drains the shard's ring into its Profile until stopped.
func (s *ProfileShard) consume() {
	defer close(s.done)
	prepass := "off"
	if s.prepassOn {
		prepass = "on"
	}
	pprof.Do(context.Background(),
		pprof.Labels("hotprefetch_phase", "ingest", "hotprefetch_shard", strconv.Itoa(s.idx),
			"hotprefetch_prepass", prepass),
		func(context.Context) { s.consumeLoop() })
}

func (s *ProfileShard) consumeLoop() {
	var batch [256]Ref
	for {
		n := s.q.PopBatch(batch[:])
		if n == 0 {
			select {
			case <-s.stop:
				// Drain what raced in before the stop signal.
				for {
					n := s.q.PopBatch(batch[:])
					if n == 0 {
						return
					}
					s.apply(batch[:n])
				}
			default:
				runtime.Gosched()
				continue
			}
		}
		s.apply(batch[:n])
	}
}

// compressLatencyMinBatch gates per-batch CompressLatency observation:
// singleton batches compress in tens of nanoseconds, below the monotonic
// clock's useful resolution, and a time.Now pair would roughly double their
// cost.
const compressLatencyMinBatch = 8

// addChunk feeds one chunk into the shard's current profile. With the
// prepass enabled it brackets the call with the profile's collapse counters
// so the shard-level totals survive grammar cycles (each cycle's Reset
// clears the per-profile counters).
func (s *ProfileShard) addChunk(chunk []Ref) {
	if !s.prepassOn {
		s.p.AddBatch(chunk)
		return
	}
	cb, mb := s.p.Collapsed(), s.p.MintedRules()
	s.p.AddBatch(chunk)
	s.collapsed.Add(s.p.Collapsed() - cb)
	s.minted.Add(s.p.MintedRules() - mb)
}

func (s *ProfileShard) apply(refs []Ref) {
	n := len(refs)
	observe := n >= compressLatencyMinBatch
	var start time.Time
	var collapsedStart uint64
	if observe {
		start = time.Now()
		if s.prepassOn {
			// s.collapsed is consumer-written, so this pre/post read pair is
			// exact for the batch even though Stats reads it concurrently.
			collapsedStart = s.collapsed.Load()
		}
	}
	peak := int(s.peakGrammar.Load())
	if s.maxSymbols <= 0 {
		s.addChunk(refs)
		if sz := s.p.GrammarSize(); sz > peak {
			peak = sz
		}
	} else {
		// Grammar budget: feed the batch in budget-headroom chunks, cycling
		// between chunks (paper §5's cycle-end deallocation). One appended
		// reference grows the grammar by at most one net symbol, so a chunk
		// of (budget - size) references can reach the budget but never
		// overshoot it — the peak stays at or under MaxGrammarSymbols while
		// whole chunks flow through the batch-aware AppendRun path instead
		// of checking the ceiling per reference. Chunk boundaries depend
		// only on how the grammar grows over the reference sequence, never
		// on how the ring batched it, so cycle points stay deterministic.
		// With the prepass enabled a reference can mint a phrase or doubling
		// rule, growing the grammar by up to two net symbols, so the
		// headroom is halved (never below one reference per chunk).
		for len(refs) > 0 {
			sz := s.p.GrammarSize()
			if sz >= s.maxSymbols {
				if sz > peak {
					peak = sz
				}
				s.cycle()
				sz = s.p.GrammarSize()
			}
			k := s.maxSymbols - sz
			if s.prepassOn {
				if k /= 2; k < 1 {
					k = 1
				}
			}
			if k > len(refs) {
				k = len(refs)
			}
			s.addChunk(refs[:k])
			if sz := s.p.GrammarSize(); sz > peak {
				peak = sz
			}
			refs = refs[k:]
		}
	}
	s.grammarSize.Store(uint64(s.p.GrammarSize()))
	s.peakGrammar.Store(uint64(peak))
	s.consumed.Add(uint64(n))
	if observe {
		s.sp.obs.CompressLatency.ObserveDuration(time.Since(start))
		if s.prepassOn {
			s.sp.obs.PrepassCollapse.Observe(1000 * (s.collapsed.Load() - collapsedStart) / uint64(n))
		}
	}
}

// cycle ends the current profiling phase when the grammar hits its budget.
// Runs on the consumer goroutine, which owns s.p.
//
// Pipelined (AnalysisWorkers > 0): swap in a pre-warmed spare grammar and
// hand the full one to the background analysis pool — the ingest path stalls
// for a pointer exchange and a channel send, not for the analysis itself.
// Inline (no pool): extract hot streams, bank them, and recycle the grammar
// before returning, stalling ingestion for the whole analysis (the paper
// §5's cycle-end deallocation, run synchronously).
// In both modes the shard's reset is counted before the cycle's analysis
// can reach a terminal state (analyzed, failed, or skipped), so a Stats
// snapshot taken mid-cycle never sees the terminal counters ahead of
// Resets — the snapshot invariant documented on Stats.
func (s *ProfileShard) cycle() {
	start := time.Now()
	s.sp.obs.Emit(obs.KindCycleStart, s.idx, uint64(s.p.GrammarSize()))
	if s.spare != nil {
		full := s.p
		var next *Profile
		select {
		case next = <-s.spare:
		default:
			// Both spares are still in the pool (analysis running behind);
			// allocate rather than stall ingestion waiting for one.
			next = s.sp.newProfile()
			s.spareMisses.Add(1)
		}
		s.p = next
		s.pending.Add(1)
		// Count the reset before the job is visible to a worker: once the
		// send lands, the analysis may complete at any moment, and its
		// terminal counter must never be observable ahead of this one.
		s.resets.Add(1)
		s.sp.analysisQ <- analysisJob{shard: s, p: full}
		s.noteCycleStall(time.Since(start))
		return
	}
	// Inline: the consumer goroutine owns s.p throughout, so the analysis
	// runs here under the same breaker and panic isolation as the pool
	// (AnalysisTimeout does not apply — the grammar cannot be abandoned to
	// a runaway goroutine when the consumer must reuse it).
	s.resets.Add(1)
	if s.brk.allow(start) {
		streams, err := s.safeAnalyze(s.p)
		if err != nil {
			s.analysesFailed.Add(1)
			s.sp.obs.Emit(obs.KindAnalysisFailed, s.idx, 0)
			s.brk.failure(time.Now())
		} else {
			s.brk.success()
			s.sp.noteAnalysis(s, time.Since(start))
			s.bank(streams)
		}
	} else {
		s.analysesSkipped.Add(1)
		s.sp.obs.Emit(obs.KindAnalysisSkipped, s.idx, 0)
	}
	s.p.Reset()
	s.noteCycleStall(time.Since(start))
}

// noteCycleStall records how long one cycle blocked the ingest path: the
// per-shard max the benchmarks report, and the service-wide stall
// distribution.
func (s *ProfileShard) noteCycleStall(d time.Duration) {
	s.sp.obs.IngestStall.ObserveDuration(d)
	for {
		cur := s.maxCycleStallNanos.Load()
		if uint64(d) <= cur || s.maxCycleStallNanos.CompareAndSwap(cur, uint64(d)) {
			return
		}
	}
}

// tryPush pushes one reference, treating the ring as full when the fault
// injector simulates pressure.
func (s *ProfileShard) tryPush(r Ref) bool {
	if s.inj != nil && s.inj.RingFull(s.idx) {
		return false
	}
	return s.q.TryPush(r)
}

// tryPushBatch pushes a run of references, treating the ring as full when
// the fault injector simulates pressure.
func (s *ProfileShard) tryPushBatch(refs []Ref) int {
	if s.inj != nil && s.inj.RingFull(s.idx) {
		return 0
	}
	return s.q.PushBatch(refs)
}

// retainedStreams returns a copy of the streams banked by grammar cycles.
func (s *ProfileShard) retainedStreams() []Stream {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Stream, len(s.retained))
	copy(out, s.retained)
	return out
}

// burstGate is a shard's producer-side bursty-sampling state: the paper's
// counter machine (internal/burst) plus per-phase accounting for the
// duty-cycle histogram. Owned by the producer goroutine under the
// single-producer contract; only the phase mirror is read by Stats.
type burstGate struct {
	ctl           *burst.Controller
	sampled       uint64       // references admitted during the current phase
	shed          uint64       // references shed during the current phase
	checksAtStart uint64       // ctl.Stats().Checks at phase entry
	phase         atomic.Int32 // mirrors ctl.Phase() for Stats readers
}

// admitBurst runs one reference through the bursty-sampling controller and
// reports whether it should reach the ingest policy: only references landing
// in an awake-phase instrumented burst are admitted (§2.2; hibernation
// bursts are discarded to avoid trace contamination, §2.4).
func (s *ProfileShard) admitBurst() bool {
	bg := s.burst
	instrumented, phaseEnded := bg.ctl.Check()
	admit := instrumented && bg.ctl.Awake()
	if admit {
		bg.sampled++
	} else {
		bg.shed++
		s.burstShed.Add(1)
	}
	if phaseEnded {
		s.burstPhaseEnd()
	}
	return admit
}

// burstPhaseEnd observes the ended phase's sampling duty, emits the phase
// event, and flips the controller between awake and hibernating — the
// self-clocked profile/hibernate alternation of the paper's Figure 3,
// driven entirely by reference arrival.
func (s *ProfileShard) burstPhaseEnd() {
	bg := s.burst
	if checks := bg.ctl.Stats().Checks - bg.checksAtStart; checks > 0 {
		s.sp.obs.BurstDuty.Observe(1000 * bg.sampled / checks)
	}
	if bg.ctl.Awake() {
		s.sp.obs.Emit(obs.KindBurstHibernate, s.idx, bg.sampled)
		bg.ctl.Hibernate()
	} else {
		s.sp.obs.Emit(obs.KindBurstAwake, s.idx, bg.shed)
		bg.ctl.Wake()
	}
	bg.phase.Store(int32(bg.ctl.Phase()))
	bg.sampled, bg.shed = 0, 0
	bg.checksAtStart = bg.ctl.Stats().Checks
}

// Add appends one data reference to the shard. When the shard's ring is full
// the configured IngestPolicy decides whether Add waits (Block), sheds the
// reference (Drop), or degrades to sampled acceptance (Sample); shed
// references are counted in Stats, never silently lost from the books. With
// bursty sampling enabled (ShardedConfig.Burst), the reference first passes
// the burst controller, and the full-rate common case is one counter
// decrement with no ring traffic at all.
//
// Add returns ErrClosed once the profile has been closed — including for a
// Block Add already spinning against a full ring when Close lands, which
// previously span forever against stopped consumers.
func (s *ProfileShard) Add(r Ref) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if q := s.sp.cfg.RefQuota; q > 0 {
		if s.sp.quotaUsed.Add(1) > q {
			s.quotaShed.Add(1)
			return nil
		}
	}
	if s.burst != nil && !s.admitBurst() {
		return nil
	}
	return s.addPolicy(r)
}

// addPolicy routes one burst-admitted reference through the shard's ingest
// policy. The caller has already checked closed (Block re-checks while
// spinning).
func (s *ProfileShard) addPolicy(r Ref) error {
	switch s.policy {
	case Drop:
		if !s.tryPush(r) {
			s.dropped.Add(1)
			return nil
		}
	case Sample:
		if s.degraded {
			s.skip++
			if s.skip < s.sampleN {
				s.sampledOut.Add(1)
				return nil
			}
			s.skip = 0
		}
		if !s.tryPush(r) {
			s.degraded = true
			s.skip = 0
			s.dropped.Add(1)
			return nil
		}
		// Leave degraded mode only once the backlog has visibly receded;
		// exiting on the first successful push would thrash between full
		// speed and 1-in-N at the boundary.
		if s.degraded && s.q.Len() <= s.q.Cap()/2 {
			s.degraded = false
		}
	default: // Block
		for !s.tryPush(r) {
			if s.closed.Load() {
				return ErrClosed
			}
			runtime.Gosched()
		}
	}
	s.pushed.Add(1)
	return nil
}

// AddAll appends each reference in order, stopping at the first error.
func (s *ProfileShard) AddAll(refs []Ref) error {
	for _, r := range refs {
		if err := s.Add(r); err != nil {
			return err
		}
	}
	return nil
}

// AddBatch appends a run of references in order, amortizing the ring's
// release fence and head refresh over the whole run (one tail store per
// PushBatch instead of one per reference). Policy semantics match Add:
// Block pushes every reference (returning ErrClosed if the profile closes
// mid-batch), Drop sheds whatever does not fit the ring, and Sample falls
// back to per-reference admission because its degradation decisions are made
// reference by reference. With bursty sampling enabled the batch first runs
// through the burst controller: checking-phase spans are shed in one O(1)
// counter subtraction (burst.Controller.Skip), and only the sampled spans
// touch the ring.
func (s *ProfileShard) AddBatch(refs []Ref) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if len(refs) == 0 {
		return nil
	}
	if s.sp.cfg.RefQuota > 0 {
		if refs = s.admitQuota(refs); len(refs) == 0 {
			return nil
		}
	}
	if s.burst != nil {
		return s.addBatchBurst(refs)
	}
	return s.pushBatchPolicy(refs)
}

// admitQuota reserves the batch against the profile-wide reference quota and
// returns the admitted prefix; the shed suffix is counted in quotaShed. The
// reservation is a single atomic add, so concurrent producers on different
// shards split the remaining headroom exactly — never admitting more than
// RefQuota references in total.
func (s *ProfileShard) admitQuota(refs []Ref) []Ref {
	q := s.sp.cfg.RefQuota
	used := s.sp.quotaUsed.Add(uint64(len(refs)))
	if used <= q {
		return refs
	}
	over := used - q
	if over >= uint64(len(refs)) {
		s.quotaShed.Add(uint64(len(refs)))
		return nil
	}
	s.quotaShed.Add(over)
	return refs[:uint64(len(refs))-over]
}

// pushBatchPolicy routes a burst-admitted run of references through the
// shard's ingest policy; see AddBatch for the per-policy semantics.
func (s *ProfileShard) pushBatchPolicy(refs []Ref) error {
	switch s.policy {
	case Drop:
		n := s.tryPushBatch(refs)
		s.pushed.Add(uint64(n))
		if n < len(refs) {
			s.dropped.Add(uint64(len(refs) - n))
		}
	case Sample:
		for _, r := range refs {
			if s.closed.Load() {
				return ErrClosed
			}
			if err := s.addPolicy(r); err != nil {
				return err
			}
		}
	default: // Block
		pushed := 0
		for pushed < len(refs) {
			n := s.tryPushBatch(refs[pushed:])
			if n == 0 {
				if s.closed.Load() {
					s.pushed.Add(uint64(pushed))
					return ErrClosed
				}
				runtime.Gosched()
				continue
			}
			pushed += n
		}
		s.pushed.Add(uint64(pushed))
	}
	return nil
}

// addBatchBurst runs a batch through the bursty front end. Checking-phase
// spans — the overwhelming majority under the paper's parameters — are
// consumed by burst.Controller.Skip in one subtraction per span; the
// remaining references go through the controller one check at a time, and
// maximal admitted spans are pushed contiguously through the ingest policy
// so batch amortization survives sampling.
func (s *ProfileShard) addBatchBurst(refs []Ref) error {
	bg := s.burst
	i := 0
	spanStart := -1 // start of the current admitted span, -1 when none
	flush := func(end int) error {
		if spanStart < 0 {
			return nil
		}
		start := spanStart
		spanStart = -1
		return s.pushBatchPolicy(refs[start:end])
	}
	for i < len(refs) {
		// Skip only makes progress in checking code, which the controller
		// can only be in with no admitted span open (an admitted reference
		// leaves it in instrumented code), so there is nothing to flush.
		if k := bg.ctl.Skip(int64(len(refs) - i)); k > 0 {
			bg.shed += uint64(k)
			s.burstShed.Add(uint64(k))
			i += int(k)
			continue
		}
		instrumented, phaseEnded := bg.ctl.Check()
		if instrumented && bg.ctl.Awake() {
			bg.sampled++
			if spanStart < 0 {
				spanStart = i
			}
		} else {
			bg.shed++
			s.burstShed.Add(1)
			if err := flush(i); err != nil {
				return err
			}
		}
		if phaseEnded {
			// A phase always ends on a non-admitted check, so the span is
			// already flushed; account the phase before the next reference.
			s.burstPhaseEnd()
		}
		i++
	}
	return flush(len(refs))
}

// AddBatch appends a run of references to shard i; see ProfileShard.AddBatch.
func (sp *ShardedProfile) AddBatch(i int, refs []Ref) error {
	return sp.shards[i].AddBatch(refs)
}

// lockProducer claims the shard's Auto-producer slot, spinning with
// scheduler yields; unlockProducer releases it. Uncontended in the steady
// state — each P's producers route to their own shard — so the common cost
// is one uncontended CAS.
func (s *ProfileShard) lockProducer() {
	for !s.prodLock.CompareAndSwap(false, true) {
		runtime.Gosched()
	}
}

func (s *ProfileShard) unlockProducer() { s.prodLock.Store(false) }

// AddAuto appends one reference to the shard indexed by the caller's P
// (GOMAXPROCS slot, modulo the shard count) — shard-per-P placement that
// needs no per-producer handle plumbing and keeps same-P producers on the
// same cache-warm shard. Because P indices are placement hints, not
// ownership, concurrent AddAuto callers that land on the same shard are
// serialized by a per-shard producer lock; do not mix Auto calls with
// direct Shard(i) producers on the same profile.
//
// A goroutine that migrates between Ps mid-trace splits its reference
// sequence across shards, which weakens per-shard stream detection (see
// the ShardedProfile contract); prefer AddBatchAuto, which keeps each
// batch whole on one shard, when tracing with Auto placement.
func (sp *ShardedProfile) AddAuto(r Ref) error {
	s := sp.shards[procid.Get()%len(sp.shards)]
	s.lockProducer()
	err := s.Add(r)
	s.unlockProducer()
	return err
}

// AddBatchAuto appends a run of references to the shard indexed by the
// caller's P; see AddAuto for the placement contract. The whole batch lands
// on one shard, so intra-batch regularity is never split.
func (sp *ShardedProfile) AddBatchAuto(refs []Ref) error {
	s := sp.shards[procid.Get()%len(sp.shards)]
	s.lockProducer()
	err := s.AddBatch(refs)
	s.unlockProducer()
	return err
}

// mix64 is the splitmix64 finalizer, used to spread stream identifiers over
// shards without clustering on sequential ids.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// PublishBatch appends a run of references on behalf of the logical stream
// identified by stream: the batch lands whole on the shard the stream hashes
// to, and concurrent publishers are serialized by that shard's producer lock
// — the multi-producer entry point the networked service uses, where
// references arrive from arbitrary handler goroutines rather than one
// pinned producer per shard. A stable stream id keeps one remote client's
// whole trace on one shard, preserving the regularity Sequitur detects (see
// the ShardedProfile contract); distinct streams spread over shards.
//
// Do not mix PublishBatch with direct Shard(i) producers on the same
// profile — like AddAuto, it shares the per-shard producer lock, which
// direct shard producers bypass.
func (sp *ShardedProfile) PublishBatch(stream uint64, refs []Ref) error {
	s := sp.shards[mix64(stream)%uint64(len(sp.shards))]
	s.lockProducer()
	err := s.AddBatch(refs)
	s.unlockProducer()
	return err
}

// NumShards returns the number of shards.
func (sp *ShardedProfile) NumShards() int { return len(sp.shards) }

// Shard returns producer handle i (0 <= i < NumShards).
func (sp *ShardedProfile) Shard(i int) *ProfileShard { return sp.shards[i] }

// Flush blocks until every reference the shards had accepted at the moment
// Flush was called has been compressed into its shard's grammar, then
// returns nil. References accepted while Flush runs may or may not be
// included — the quiescence contract: only a moment with no active
// producers gives a complete cut. Because the target is snapshotted up
// front, concurrent producers keeping the rings full can no longer livelock
// Flush; and if a consumer stops making progress toward the snapshot for
// FlushStallTimeout, Flush gives up with an error wrapping ErrFlushStalled
// instead of spinning forever.
func (sp *ShardedProfile) Flush() error {
	start := time.Now()
	defer func() { sp.obs.FlushLatency.ObserveDuration(time.Since(start)) }()
	for i, s := range sp.shards {
		target := s.pushed.Load()
		last := s.consumed.Load()
		lastProgress := time.Now()
		for {
			c := s.consumed.Load()
			if c >= target {
				break
			}
			if c != last {
				last, lastProgress = c, time.Now()
			} else if time.Since(lastProgress) > sp.cfg.FlushStallTimeout {
				return fmt.Errorf("shard %d consumer stalled at %d/%d references for %v "+
					"(quiescence contract: Flush only completes the references accepted "+
					"before it was called, and requires a live consumer to drain them): %w",
					i, c, target, sp.cfg.FlushStallTimeout, ErrFlushStalled)
			}
			runtime.Gosched()
		}
	}
	return nil
}

// Len returns the total number of references ingested across all shards
// (flushing first so in-flight references are counted). Shed references
// (Drop/Sample policies) are not ingested and do not count.
func (sp *ShardedProfile) Len() uint64 {
	sp.Flush()
	var n uint64
	for _, s := range sp.shards {
		n += s.consumed.Load()
	}
	return n
}

// Close stops the consumer goroutines after draining in-flight references.
// The profile remains readable (HotStreams, Len, Stats) but Add returns
// ErrClosed afterwards. Close is idempotent.
func (sp *ShardedProfile) Close() {
	if !sp.closed.CompareAndSwap(false, true) {
		return
	}
	// Fail producers fast first so a Block Add spinning against a full ring
	// observes the close instead of spinning against a stopped consumer.
	for _, s := range sp.shards {
		s.closed.Store(true)
	}
	for _, s := range sp.shards {
		close(s.stop)
	}
	for _, s := range sp.shards {
		<-s.done
	}
	// Consumers are joined, so no further jobs can be enqueued; close the
	// analysis queue and wait for the pool to finish banking in-flight
	// cycles. Readers after Close see complete retained sets.
	if sp.analysisQ != nil {
		close(sp.analysisQ)
		sp.workersDone.Wait()
	}
}

// HotStreamsErr flushes all shards, extracts each shard's hot data streams
// in parallel, and merges them — together with any streams retained by
// grammar budget cycles — deduplicating identical streams with their heats
// summed (frequency adds across shards and cycles, and heat = length ×
// frequency), re-ranked hottest first and capped at cfg.MaxStreams.
//
// cfg's coverage threshold applies per shard (each shard knows only its own
// trace length), so with N > 1 a stream must be hot within at least one
// shard to be found — route whole logical traces to single shards to keep
// this faithful. Producers should be quiescent, as for Flush.
//
// If a shard's consumer stalls (ErrFlushStalled) or the background analysis
// pool stops progressing (ErrAnalysisStalled), HotStreamsErr still merges
// and returns what it can see, together with the non-nil error — a partial
// merge is never silently presented as complete.
func (sp *ShardedProfile) HotStreamsErr(cfg AnalysisConfig) ([]Stream, error) {
	err := sp.Flush()
	// Pipelined cycling: Flush only guarantees the references were consumed;
	// the cycles they triggered may still be in the analysis pool. Wait for
	// those to land in the retained sets before merging.
	if derr := sp.drainAnalyses(); derr != nil && err == nil {
		err = derr
	}
	n := len(sp.shards)
	perShard := make([][]Stream, 2*n)
	var wg sync.WaitGroup
	for i, s := range sp.shards {
		perShard[n+i] = s.retainedStreams()
		wg.Add(1)
		go func(i int, s *ProfileShard) {
			defer wg.Done()
			perShard[i] = s.p.HotStreams(cfg)
		}(i, s)
	}
	wg.Wait()
	start := time.Now()
	out := mergeStreams(perShard, cfg.MaxStreams)
	sp.mergeNanos.Add(uint64(time.Since(start)))
	sp.mergeCount.Add(1)
	return out, err
}

// HotStreams is the lossy convenience wrapper over HotStreamsErr: a flush
// or analysis-pool stall is recorded in Stats.FlushStalls and the (possibly
// partial) merge is returned anyway. Callers that must distinguish a
// partial merge from a complete one use HotStreamsErr.
func (sp *ShardedProfile) HotStreams(cfg AnalysisConfig) []Stream {
	out, err := sp.HotStreamsErr(cfg)
	if err != nil {
		sp.flushStalls.Add(1)
	}
	return out
}

// BankedStreams merges only the streams banked by grammar-budget cycles,
// capped at maxStreams (<= 0 for the analysis default), without touching the
// live grammars. Unlike HotStreams and HotStreamsErr — whose live-grammar
// analysis requires producer quiescence — BankedStreams reads each shard's
// retained set under its lock and is safe while producers and consumers are
// running; the Supervisor retrains from it on live traffic. Cycles whose
// background analysis has not landed yet are simply not visible; callers
// needing a complete cut use HotStreamsErr at quiescence instead.
// A snapshot-restored stream set (RestoreSnapshot) participates in the
// merge like one more shard's banked cycles — sorted and duplicate-free, so
// a restore followed by a snapshot of an otherwise idle profile round-trips
// the stream set bit-identically. Live evidence for the same stream sums
// its heat with the restored copy.
func (sp *ShardedProfile) BankedStreams(maxStreams int) []Stream {
	perShard := make([][]Stream, 0, len(sp.shards)+1)
	if rs := sp.restoredStreams(); len(rs) > 0 {
		perShard = append(perShard, rs)
	}
	for _, s := range sp.shards {
		perShard = append(perShard, s.retainedStreams())
	}
	return mergeStreams(perShard, maxStreams)
}

// liveBankedStreams is BankedStreams without the warm-start set: only
// streams banked by this run's grammar cycles. The supervisor's drift check
// compares it against the restored set.
func (sp *ShardedProfile) liveBankedStreams(maxStreams int) []Stream {
	perShard := make([][]Stream, len(sp.shards))
	for i, s := range sp.shards {
		perShard[i] = s.retainedStreams()
	}
	return mergeStreams(perShard, maxStreams)
}

// streamKey appends a collision-safe binary key for st to buf: the reference
// count followed by fixed-width PC/Addr words. Unlike a formatted-string
// key, no choice of separator can collide two distinct streams, and the
// fixed-width encoding costs no formatting allocations.
func streamKey(buf []byte, st Stream) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(st.Refs)))
	for _, r := range st.Refs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.PC))
		buf = binary.LittleEndian.AppendUint64(buf, r.Addr)
	}
	return buf
}

// mergeStreams deduplicates identical streams across shards (summing heat)
// and returns them hottest first, preserving shard-extraction order among
// equal heats, capped at maxStreams (0 = no cap).
//
// hotds.Analyze already emits each shard's streams hottest-first, so when no
// stream recurs across shards — the common case, since shards see disjoint
// logical traces — no heat ever changes after emission and the inputs are k
// sorted lists: a selection merge reproduces exactly the order a stable sort
// of the concatenation would, without the O(n log n) sort, and stops as soon
// as maxStreams streams are out. A duplicate (heats sum, possibly re-ranking
// an earlier entry) or an unsorted input falls back to dedup + stable sort.
func mergeStreams(perShard [][]Stream, maxStreams int) []Stream {
	type slot struct {
		idx  int
		heat uint64
	}
	var (
		out  []Stream
		key  []byte
		seen = map[string]*slot{}
	)
	sorted, dup := true, false
	for _, streams := range perShard {
		for i, st := range streams {
			if i > 0 && st.Heat > streams[i-1].Heat {
				sorted = false
			}
			key = streamKey(key[:0], st)
			if sl, ok := seen[string(key)]; ok {
				dup = true
				sl.heat += st.Heat
				out[sl.idx].Heat = sl.heat
				continue
			}
			seen[string(key)] = &slot{idx: len(out), heat: st.Heat}
			out = append(out, st)
		}
	}
	if sorted && !dup {
		return kwayMergeSorted(perShard, maxStreams)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Heat > out[j].Heat })
	if maxStreams > 0 && len(out) > maxStreams {
		out = out[:maxStreams]
	}
	return out
}

// kwayMergeSorted merges hottest-first, duplicate-free lists by selection:
// repeatedly take the hottest head, breaking ties toward the lowest list
// index. Within a list heats are non-increasing, so among equal heats every
// entry of list i is emitted before any entry of list j > i — the same order
// a stable sort of the concatenation yields.
func kwayMergeSorted(lists [][]Stream, maxStreams int) []Stream {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if maxStreams > 0 && total > maxStreams {
		total = maxStreams
	}
	if total == 0 {
		return nil
	}
	out := make([]Stream, 0, total)
	pos := make([]int, len(lists))
	for len(out) < total {
		best := -1
		for i, l := range lists {
			if pos[i] >= len(l) {
				continue
			}
			if best < 0 || l[pos[i]].Heat > lists[best][pos[best]].Heat {
				best = i
			}
		}
		out = append(out, lists[best][pos[best]])
		pos[best]++
	}
	return out
}
