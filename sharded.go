package hotprefetch

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hotprefetch/internal/ring"
)

// ShardedProfile scales profile ingestion across concurrent producers: N
// independent Profile shards, each fed through its own single-producer
// single-consumer ring buffer by a dedicated consumer goroutine. Producers
// never contend on a lock or on each other's cache lines, so aggregate
// ingestion throughput grows with the shard count — the concurrency layer a
// multi-tenant profiling service needs on top of the paper's inherently
// sequential per-trace algorithms (§2.3 profiles one program; a service
// profiles many).
//
// Each shard builds an independent Sequitur grammar over the subsequence it
// receives, so hot data streams are detected per shard and merged by heat.
// Route references so that one logical trace (one profiled program, tenant,
// or thread) always lands on the same shard: interleaving a single logical
// trace across shards splits its regularity and weakens detection. With one
// producer per logical trace and NumShards == 1 the result is identical to
// feeding a single Profile.
//
// The service-facing robustness knobs live in ShardedConfig: an ingestion
// policy for full-ring back-pressure (Block, Drop, Sample), a per-shard
// grammar memory budget with automatic phase cycling, and a Stats snapshot
// for monitoring.
type ShardedProfile struct {
	shards []*ProfileShard
	cfg    ShardedConfig
	closed atomic.Bool

	mergeCount atomic.Uint64 // HotStreams merge passes
	mergeNanos atomic.Uint64 // cumulative time spent merging
	matcher    atomic.Pointer[ConcurrentMatcher]
}

// ProfileShard is one shard's producer handle. Each shard accepts references
// from at most one goroutine at a time (the single-producer half of the SPSC
// contract); distinct shards are fully independent.
type ProfileShard struct {
	q *ring.SPSC[Ref]
	p *Profile

	policy     IngestPolicy
	sampleN    int
	maxSymbols int
	cycleCfg   AnalysisConfig

	closed     atomic.Bool
	pushed     atomic.Uint64 // references accepted by Add
	consumed   atomic.Uint64 // references applied to p
	dropped    atomic.Uint64 // references shed on a full ring (Drop/Sample)
	sampledOut atomic.Uint64 // references skipped by Sample degradation
	resets     atomic.Uint64 // grammar budget cycles completed

	grammarSize atomic.Uint64 // p's grammar size as of the last batch
	peakGrammar atomic.Uint64 // high-water mark of the grammar size

	// Producer-local Sample state: guarded by the single-producer contract,
	// never touched by the consumer.
	degraded bool
	skip     int

	mu       sync.Mutex // guards retained
	retained []Stream   // hot streams extracted at grammar resets

	stop chan struct{}
	done chan struct{}
}

// NewShardedProfile returns a profile with n shards (n < 1 is treated as 1)
// using the default configuration: Block ingestion, 4096-slot rings, no
// grammar budget. Call Close to stop the consumers when the profile is no
// longer needed.
func NewShardedProfile(n int) *ShardedProfile {
	sp, err := NewShardedProfileConfig(ShardedConfig{Shards: n})
	if err != nil {
		// The zero config is always valid; only Shards varies and it is
		// clamped.
		panic(err)
	}
	return sp
}

// NewShardedProfileConfig returns a profile configured by cfg, spawning one
// consumer goroutine per shard. Call Close to stop the consumers when the
// profile is no longer needed.
func NewShardedProfileConfig(cfg ShardedConfig) (*ShardedProfile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sp := newShardedProfile(cfg)
	for _, s := range sp.shards {
		go s.consume()
	}
	return sp, nil
}

// newShardedProfile builds the shard set without starting consumers; tests
// use it to exercise producer-side policies deterministically.
func newShardedProfile(cfg ShardedConfig) *ShardedProfile {
	cfg = cfg.withDefaults()
	sp := &ShardedProfile{shards: make([]*ProfileShard, cfg.Shards), cfg: cfg}
	for i := range sp.shards {
		sp.shards[i] = &ProfileShard{
			q:          ring.New[Ref](cfg.RingCap),
			p:          NewProfile(),
			policy:     cfg.Policy,
			sampleN:    cfg.SampleInterval,
			maxSymbols: cfg.MaxGrammarSymbols,
			cycleCfg:   cfg.CycleAnalysis,
			stop:       make(chan struct{}),
			done:       make(chan struct{}),
		}
	}
	return sp
}

// consume drains the shard's ring into its Profile until stopped.
func (s *ProfileShard) consume() {
	defer close(s.done)
	var batch [256]Ref
	for {
		n := s.q.PopBatch(batch[:])
		if n == 0 {
			select {
			case <-s.stop:
				// Drain what raced in before the stop signal.
				for {
					n := s.q.PopBatch(batch[:])
					if n == 0 {
						return
					}
					s.apply(batch[:n])
				}
			default:
				runtime.Gosched()
				continue
			}
		}
		s.apply(batch[:n])
	}
}

func (s *ProfileShard) apply(refs []Ref) {
	peak := int(s.peakGrammar.Load())
	for _, r := range refs {
		s.p.Add(r)
		sz := s.p.GrammarSize()
		if sz > peak {
			peak = sz
		}
		// Grammar budget: at the ceiling, bank this cycle's hot streams and
		// recycle the grammar (paper §5's cycle-end deallocation). Checked
		// per reference because a batch can overshoot the budget by its
		// whole length; a single Add grows the grammar by at most one
		// symbol, so the peak never exceeds the budget itself.
		if s.maxSymbols > 0 && sz >= s.maxSymbols {
			s.cycle()
		}
	}
	s.grammarSize.Store(uint64(s.p.GrammarSize()))
	s.peakGrammar.Store(uint64(peak))
	s.consumed.Add(uint64(len(refs)))
}

// cycle extracts the current grammar's hot streams into the retained set and
// resets the grammar and interner, recycling their storage. Runs on the
// consumer goroutine, which owns s.p.
func (s *ProfileShard) cycle() {
	streams := s.p.HotStreams(s.cycleCfg)
	s.p.Reset()
	s.resets.Add(1)
	if len(streams) == 0 {
		return
	}
	s.mu.Lock()
	s.retained = mergeStreams([][]Stream{s.retained, streams}, s.cycleCfg.MaxStreams)
	s.mu.Unlock()
}

// retainedStreams returns a copy of the streams banked by grammar cycles.
func (s *ProfileShard) retainedStreams() []Stream {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Stream, len(s.retained))
	copy(out, s.retained)
	return out
}

// Add appends one data reference to the shard. When the shard's ring is full
// the configured IngestPolicy decides whether Add waits (Block), sheds the
// reference (Drop), or degrades to sampled acceptance (Sample); shed
// references are counted in Stats, never silently lost from the books.
//
// Add returns ErrClosed once the profile has been closed — including for a
// Block Add already spinning against a full ring when Close lands, which
// previously span forever against stopped consumers.
func (s *ProfileShard) Add(r Ref) error {
	if s.closed.Load() {
		return ErrClosed
	}
	switch s.policy {
	case Drop:
		if !s.q.TryPush(r) {
			s.dropped.Add(1)
			return nil
		}
	case Sample:
		if s.degraded {
			s.skip++
			if s.skip < s.sampleN {
				s.sampledOut.Add(1)
				return nil
			}
			s.skip = 0
		}
		if !s.q.TryPush(r) {
			s.degraded = true
			s.skip = 0
			s.dropped.Add(1)
			return nil
		}
		// Leave degraded mode only once the backlog has visibly receded;
		// exiting on the first successful push would thrash between full
		// speed and 1-in-N at the boundary.
		if s.degraded && s.q.Len() <= s.q.Cap()/2 {
			s.degraded = false
		}
	default: // Block
		for !s.q.TryPush(r) {
			if s.closed.Load() {
				return ErrClosed
			}
			runtime.Gosched()
		}
	}
	s.pushed.Add(1)
	return nil
}

// AddAll appends each reference in order, stopping at the first error.
func (s *ProfileShard) AddAll(refs []Ref) error {
	for _, r := range refs {
		if err := s.Add(r); err != nil {
			return err
		}
	}
	return nil
}

// NumShards returns the number of shards.
func (sp *ShardedProfile) NumShards() int { return len(sp.shards) }

// Shard returns producer handle i (0 <= i < NumShards).
func (sp *ShardedProfile) Shard(i int) *ProfileShard { return sp.shards[i] }

// Flush blocks until every reference the shards had accepted at the moment
// Flush was called has been compressed into its shard's grammar, then
// returns nil. References accepted while Flush runs may or may not be
// included — the quiescence contract: only a moment with no active
// producers gives a complete cut. Because the target is snapshotted up
// front, concurrent producers keeping the rings full can no longer livelock
// Flush; and if a consumer stops making progress toward the snapshot for
// FlushStallTimeout, Flush gives up with an error wrapping ErrFlushStalled
// instead of spinning forever.
func (sp *ShardedProfile) Flush() error {
	for i, s := range sp.shards {
		target := s.pushed.Load()
		last := s.consumed.Load()
		lastProgress := time.Now()
		for {
			c := s.consumed.Load()
			if c >= target {
				break
			}
			if c != last {
				last, lastProgress = c, time.Now()
			} else if time.Since(lastProgress) > sp.cfg.FlushStallTimeout {
				return fmt.Errorf("shard %d consumer stalled at %d/%d references for %v "+
					"(quiescence contract: Flush only completes the references accepted "+
					"before it was called, and requires a live consumer to drain them): %w",
					i, c, target, sp.cfg.FlushStallTimeout, ErrFlushStalled)
			}
			runtime.Gosched()
		}
	}
	return nil
}

// Len returns the total number of references ingested across all shards
// (flushing first so in-flight references are counted). Shed references
// (Drop/Sample policies) are not ingested and do not count.
func (sp *ShardedProfile) Len() uint64 {
	sp.Flush()
	var n uint64
	for _, s := range sp.shards {
		n += s.consumed.Load()
	}
	return n
}

// Close stops the consumer goroutines after draining in-flight references.
// The profile remains readable (HotStreams, Len, Stats) but Add returns
// ErrClosed afterwards. Close is idempotent.
func (sp *ShardedProfile) Close() {
	if !sp.closed.CompareAndSwap(false, true) {
		return
	}
	// Fail producers fast first so a Block Add spinning against a full ring
	// observes the close instead of spinning against a stopped consumer.
	for _, s := range sp.shards {
		s.closed.Store(true)
	}
	for _, s := range sp.shards {
		close(s.stop)
	}
	for _, s := range sp.shards {
		<-s.done
	}
}

// HotStreams flushes all shards, extracts each shard's hot data streams in
// parallel, and merges them — together with any streams retained by grammar
// budget cycles — deduplicating identical streams with their heats summed
// (frequency adds across shards and cycles, and heat = length × frequency),
// re-ranked hottest first and capped at cfg.MaxStreams.
//
// cfg's coverage threshold applies per shard (each shard knows only its own
// trace length), so with N > 1 a stream must be hot within at least one
// shard to be found — route whole logical traces to single shards to keep
// this faithful. Producers should be quiescent, as for Flush.
func (sp *ShardedProfile) HotStreams(cfg AnalysisConfig) []Stream {
	sp.Flush()
	n := len(sp.shards)
	perShard := make([][]Stream, 2*n)
	var wg sync.WaitGroup
	for i, s := range sp.shards {
		perShard[n+i] = s.retainedStreams()
		wg.Add(1)
		go func(i int, s *ProfileShard) {
			defer wg.Done()
			perShard[i] = s.p.HotStreams(cfg)
		}(i, s)
	}
	wg.Wait()
	start := time.Now()
	out := mergeStreams(perShard, cfg.MaxStreams)
	sp.mergeNanos.Add(uint64(time.Since(start)))
	sp.mergeCount.Add(1)
	return out
}

// streamKey appends a collision-safe binary key for st to buf: the reference
// count followed by fixed-width PC/Addr words. Unlike a formatted-string
// key, no choice of separator can collide two distinct streams, and the
// fixed-width encoding costs no formatting allocations.
func streamKey(buf []byte, st Stream) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(st.Refs)))
	for _, r := range st.Refs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.PC))
		buf = binary.LittleEndian.AppendUint64(buf, r.Addr)
	}
	return buf
}

// mergeStreams deduplicates identical streams across shards (summing heat)
// and returns them hottest first, preserving shard-extraction order among
// equal heats, capped at maxStreams (0 = no cap).
func mergeStreams(perShard [][]Stream, maxStreams int) []Stream {
	type slot struct {
		idx  int
		heat uint64
	}
	var (
		out  []Stream
		key  []byte
		seen = map[string]*slot{}
	)
	for _, streams := range perShard {
		for _, st := range streams {
			key = streamKey(key[:0], st)
			if sl, ok := seen[string(key)]; ok {
				sl.heat += st.Heat
				out[sl.idx].Heat = sl.heat
				continue
			}
			seen[string(key)] = &slot{idx: len(out), heat: st.Heat}
			out = append(out, st)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Heat > out[j].Heat })
	if maxStreams > 0 && len(out) > maxStreams {
		out = out[:maxStreams]
	}
	return out
}
