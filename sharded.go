package hotprefetch

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hotprefetch/internal/ring"
)

// ShardedProfile scales profile ingestion across concurrent producers: N
// independent Profile shards, each fed through its own single-producer
// single-consumer ring buffer by a dedicated consumer goroutine. Producers
// never contend on a lock or on each other's cache lines, so aggregate
// ingestion throughput grows with the shard count — the concurrency layer a
// multi-tenant profiling service needs on top of the paper's inherently
// sequential per-trace algorithms (§2.3 profiles one program; a service
// profiles many).
//
// Each shard builds an independent Sequitur grammar over the subsequence it
// receives, so hot data streams are detected per shard and merged by heat.
// Route references so that one logical trace (one profiled program, tenant,
// or thread) always lands on the same shard: interleaving a single logical
// trace across shards splits its regularity and weakens detection. With one
// producer per logical trace and NumShards == 1 the result is identical to
// feeding a single Profile.
//
// The service-facing robustness knobs live in ShardedConfig: an ingestion
// policy for full-ring back-pressure (Block, Drop, Sample), a per-shard
// grammar memory budget with automatic phase cycling, and a Stats snapshot
// for monitoring.
//
// With AnalysisWorkers > 0, grammar-budget cycles are pipelined instead of
// inline: the shard consumer swaps in a pre-warmed spare grammar and hands
// the full one to a background analysis pool, so ingestion never stalls for
// the duration of a cycle-end analysis — the paper's requirement that
// analysis be cheap enough to run while the program executes (§2), turned
// into an off-the-ingest-path phase transition.
type ShardedProfile struct {
	shards []*ProfileShard
	cfg    ShardedConfig
	closed atomic.Bool

	// analysisQ feeds full profiles to the background analysis pool; nil
	// when AnalysisWorkers == 0 (inline cycling).
	analysisQ   chan analysisJob
	workersDone sync.WaitGroup

	mergeCount        atomic.Uint64 // HotStreams merge passes
	mergeNanos        atomic.Uint64 // cumulative time spent merging
	cycles            atomic.Uint64 // cycle analyses completed (inline + background)
	lastAnalysisNanos atomic.Uint64
	maxAnalysisNanos  atomic.Uint64
	matcher           atomic.Pointer[ConcurrentMatcher]
}

// analysisJob is one detached full profile awaiting background analysis.
type analysisJob struct {
	shard *ProfileShard
	p     *Profile
}

// ProfileShard is one shard's producer handle. Each shard accepts references
// from at most one goroutine at a time (the single-producer half of the SPSC
// contract); distinct shards are fully independent.
type ProfileShard struct {
	q  *ring.SPSC[Ref]
	p  *Profile
	sp *ShardedProfile // owner; reaches the analysis pool and its stats

	policy     IngestPolicy
	sampleN    int
	maxSymbols int
	cycleCfg   AnalysisConfig

	// spare holds reset profiles for double buffering (pipelined cycling):
	// the consumer swaps one in at a cycle instead of analyzing inline, and
	// analysis workers return recycled profiles to it.
	spare       chan *Profile
	pending     atomic.Int64  // analyses queued or running for this shard
	spareMisses atomic.Uint64 // cycles that had to allocate a fresh profile

	closed     atomic.Bool
	pushed     atomic.Uint64 // references accepted by Add
	consumed   atomic.Uint64 // references applied to p
	dropped    atomic.Uint64 // references shed on a full ring (Drop/Sample)
	sampledOut atomic.Uint64 // references skipped by Sample degradation
	resets     atomic.Uint64 // grammar budget cycles completed

	grammarSize atomic.Uint64 // p's grammar size as of the last batch
	peakGrammar atomic.Uint64 // high-water mark of the grammar size

	// maxCycleStallNanos is the longest a grammar-budget cycle has blocked
	// this shard's ingest path: the whole analysis when cycling inline, just
	// the grammar swap and enqueue when pipelined.
	maxCycleStallNanos atomic.Uint64

	// Producer-local Sample state: guarded by the single-producer contract,
	// never touched by the consumer.
	degraded bool
	skip     int

	mu       sync.Mutex // guards retained
	retained []Stream   // hot streams extracted at grammar resets

	stop chan struct{}
	done chan struct{}
}

// NewShardedProfile returns a profile with n shards (n < 1 is treated as 1)
// using the default configuration: Block ingestion, 4096-slot rings, no
// grammar budget. Call Close to stop the consumers when the profile is no
// longer needed.
func NewShardedProfile(n int) *ShardedProfile {
	sp, err := NewShardedProfileConfig(ShardedConfig{Shards: n})
	if err != nil {
		// The zero config is always valid; only Shards varies and it is
		// clamped.
		panic(err)
	}
	return sp
}

// NewShardedProfileConfig returns a profile configured by cfg, spawning one
// consumer goroutine per shard. Call Close to stop the consumers when the
// profile is no longer needed.
func NewShardedProfileConfig(cfg ShardedConfig) (*ShardedProfile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sp := newShardedProfile(cfg)
	for i := 0; i < sp.cfg.AnalysisWorkers; i++ {
		sp.workersDone.Add(1)
		go sp.analysisWorker()
	}
	for _, s := range sp.shards {
		go s.consume()
	}
	return sp, nil
}

// newShardedProfile builds the shard set without starting consumers; tests
// use it to exercise producer-side policies deterministically.
func newShardedProfile(cfg ShardedConfig) *ShardedProfile {
	cfg = cfg.withDefaults()
	sp := &ShardedProfile{shards: make([]*ProfileShard, cfg.Shards), cfg: cfg}
	if cfg.AnalysisWorkers > 0 {
		// Queue capacity of two jobs per shard: a shard can have at most one
		// analysis in flight per spare it can draw, and the spare channel
		// holds two, so enqueues block only when the pool is badly behind.
		sp.analysisQ = make(chan analysisJob, 2*cfg.Shards)
	}
	for i := range sp.shards {
		s := &ProfileShard{
			q:          ring.New[Ref](cfg.RingCap),
			p:          NewProfile(),
			sp:         sp,
			policy:     cfg.Policy,
			sampleN:    cfg.SampleInterval,
			maxSymbols: cfg.MaxGrammarSymbols,
			cycleCfg:   cfg.CycleAnalysis,
			stop:       make(chan struct{}),
			done:       make(chan struct{}),
		}
		if cfg.AnalysisWorkers > 0 && cfg.MaxGrammarSymbols > 0 {
			// Pre-warm one spare so the first phase transition is a pure
			// pointer swap.
			s.spare = make(chan *Profile, 2)
			s.spare <- NewProfile()
		}
		sp.shards[i] = s
	}
	return sp
}

// analysisWorker drains the analysis queue: each job is one shard's full,
// detached profile. The worker extracts its hot streams, banks them in the
// shard's retained set, recycles the profile's storage, and returns it to
// the shard as a future spare. Runs until the queue is closed.
func (sp *ShardedProfile) analysisWorker() {
	defer sp.workersDone.Done()
	for job := range sp.analysisQ {
		start := time.Now()
		streams := job.p.HotStreams(job.shard.cycleCfg)
		if len(streams) > 0 {
			s := job.shard
			s.mu.Lock()
			s.retained = mergeStreams([][]Stream{s.retained, streams}, s.cycleCfg.MaxStreams)
			s.mu.Unlock()
		}
		job.p.Reset()
		select {
		case job.shard.spare <- job.p:
		default: // spare buffer full; let the profile go
		}
		sp.noteAnalysis(time.Since(start))
		// Last: drainAnalyses readers must see the retained merge.
		job.shard.pending.Add(-1)
	}
}

// noteAnalysis records one completed cycle analysis in the pipeline stats.
func (sp *ShardedProfile) noteAnalysis(d time.Duration) {
	sp.cycles.Add(1)
	sp.lastAnalysisNanos.Store(uint64(d))
	for {
		cur := sp.maxAnalysisNanos.Load()
		if uint64(d) <= cur || sp.maxAnalysisNanos.CompareAndSwap(cur, uint64(d)) {
			return
		}
	}
}

// drainAnalyses blocks until no shard has a cycle analysis queued or
// running, so the retained sets are complete up to the analyses enqueued
// before the call.
func (sp *ShardedProfile) drainAnalyses() {
	if sp.analysisQ == nil {
		return
	}
	for _, s := range sp.shards {
		for s.pending.Load() > 0 {
			runtime.Gosched()
		}
	}
}

// consume drains the shard's ring into its Profile until stopped.
func (s *ProfileShard) consume() {
	defer close(s.done)
	var batch [256]Ref
	for {
		n := s.q.PopBatch(batch[:])
		if n == 0 {
			select {
			case <-s.stop:
				// Drain what raced in before the stop signal.
				for {
					n := s.q.PopBatch(batch[:])
					if n == 0 {
						return
					}
					s.apply(batch[:n])
				}
			default:
				runtime.Gosched()
				continue
			}
		}
		s.apply(batch[:n])
	}
}

func (s *ProfileShard) apply(refs []Ref) {
	peak := int(s.peakGrammar.Load())
	for _, r := range refs {
		s.p.Add(r)
		sz := s.p.GrammarSize()
		if sz > peak {
			peak = sz
		}
		// Grammar budget: at the ceiling, bank this cycle's hot streams and
		// recycle the grammar (paper §5's cycle-end deallocation). Checked
		// per reference because a batch can overshoot the budget by its
		// whole length; a single Add grows the grammar by at most one
		// symbol, so the peak never exceeds the budget itself.
		if s.maxSymbols > 0 && sz >= s.maxSymbols {
			s.cycle()
		}
	}
	s.grammarSize.Store(uint64(s.p.GrammarSize()))
	s.peakGrammar.Store(uint64(peak))
	s.consumed.Add(uint64(len(refs)))
}

// cycle ends the current profiling phase when the grammar hits its budget.
// Runs on the consumer goroutine, which owns s.p.
//
// Pipelined (AnalysisWorkers > 0): swap in a pre-warmed spare grammar and
// hand the full one to the background analysis pool — the ingest path stalls
// for a pointer exchange and a channel send, not for the analysis itself.
// Inline (no pool): extract hot streams, bank them, and recycle the grammar
// before returning, stalling ingestion for the whole analysis (the paper
// §5's cycle-end deallocation, run synchronously).
func (s *ProfileShard) cycle() {
	start := time.Now()
	if s.spare != nil {
		full := s.p
		var next *Profile
		select {
		case next = <-s.spare:
		default:
			// Both spares are still in the pool (analysis running behind);
			// allocate rather than stall ingestion waiting for one.
			next = NewProfile()
			s.spareMisses.Add(1)
		}
		s.p = next
		s.pending.Add(1)
		s.sp.analysisQ <- analysisJob{shard: s, p: full}
		s.resets.Add(1)
		s.noteCycleStall(time.Since(start))
		return
	}
	streams := s.p.HotStreams(s.cycleCfg)
	s.p.Reset()
	s.resets.Add(1)
	if len(streams) > 0 {
		s.mu.Lock()
		s.retained = mergeStreams([][]Stream{s.retained, streams}, s.cycleCfg.MaxStreams)
		s.mu.Unlock()
	}
	d := time.Since(start)
	s.sp.noteAnalysis(d)
	s.noteCycleStall(d)
}

// noteCycleStall records how long one cycle blocked the ingest path.
func (s *ProfileShard) noteCycleStall(d time.Duration) {
	for {
		cur := s.maxCycleStallNanos.Load()
		if uint64(d) <= cur || s.maxCycleStallNanos.CompareAndSwap(cur, uint64(d)) {
			return
		}
	}
}

// retainedStreams returns a copy of the streams banked by grammar cycles.
func (s *ProfileShard) retainedStreams() []Stream {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Stream, len(s.retained))
	copy(out, s.retained)
	return out
}

// Add appends one data reference to the shard. When the shard's ring is full
// the configured IngestPolicy decides whether Add waits (Block), sheds the
// reference (Drop), or degrades to sampled acceptance (Sample); shed
// references are counted in Stats, never silently lost from the books.
//
// Add returns ErrClosed once the profile has been closed — including for a
// Block Add already spinning against a full ring when Close lands, which
// previously span forever against stopped consumers.
func (s *ProfileShard) Add(r Ref) error {
	if s.closed.Load() {
		return ErrClosed
	}
	switch s.policy {
	case Drop:
		if !s.q.TryPush(r) {
			s.dropped.Add(1)
			return nil
		}
	case Sample:
		if s.degraded {
			s.skip++
			if s.skip < s.sampleN {
				s.sampledOut.Add(1)
				return nil
			}
			s.skip = 0
		}
		if !s.q.TryPush(r) {
			s.degraded = true
			s.skip = 0
			s.dropped.Add(1)
			return nil
		}
		// Leave degraded mode only once the backlog has visibly receded;
		// exiting on the first successful push would thrash between full
		// speed and 1-in-N at the boundary.
		if s.degraded && s.q.Len() <= s.q.Cap()/2 {
			s.degraded = false
		}
	default: // Block
		for !s.q.TryPush(r) {
			if s.closed.Load() {
				return ErrClosed
			}
			runtime.Gosched()
		}
	}
	s.pushed.Add(1)
	return nil
}

// AddAll appends each reference in order, stopping at the first error.
func (s *ProfileShard) AddAll(refs []Ref) error {
	for _, r := range refs {
		if err := s.Add(r); err != nil {
			return err
		}
	}
	return nil
}

// AddBatch appends a run of references in order, amortizing the ring's
// release fence and head refresh over the whole run (one tail store per
// PushBatch instead of one per reference). Policy semantics match Add:
// Block pushes every reference (returning ErrClosed if the profile closes
// mid-batch), Drop sheds whatever does not fit the ring, and Sample falls
// back to per-reference Add because its degradation decisions are made
// reference by reference.
func (s *ProfileShard) AddBatch(refs []Ref) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if len(refs) == 0 {
		return nil
	}
	switch s.policy {
	case Drop:
		n := s.q.PushBatch(refs)
		s.pushed.Add(uint64(n))
		if n < len(refs) {
			s.dropped.Add(uint64(len(refs) - n))
		}
	case Sample:
		for _, r := range refs {
			if err := s.Add(r); err != nil {
				return err
			}
		}
	default: // Block
		pushed := 0
		for pushed < len(refs) {
			n := s.q.PushBatch(refs[pushed:])
			if n == 0 {
				if s.closed.Load() {
					s.pushed.Add(uint64(pushed))
					return ErrClosed
				}
				runtime.Gosched()
				continue
			}
			pushed += n
		}
		s.pushed.Add(uint64(pushed))
	}
	return nil
}

// AddBatch appends a run of references to shard i; see ProfileShard.AddBatch.
func (sp *ShardedProfile) AddBatch(i int, refs []Ref) error {
	return sp.shards[i].AddBatch(refs)
}

// NumShards returns the number of shards.
func (sp *ShardedProfile) NumShards() int { return len(sp.shards) }

// Shard returns producer handle i (0 <= i < NumShards).
func (sp *ShardedProfile) Shard(i int) *ProfileShard { return sp.shards[i] }

// Flush blocks until every reference the shards had accepted at the moment
// Flush was called has been compressed into its shard's grammar, then
// returns nil. References accepted while Flush runs may or may not be
// included — the quiescence contract: only a moment with no active
// producers gives a complete cut. Because the target is snapshotted up
// front, concurrent producers keeping the rings full can no longer livelock
// Flush; and if a consumer stops making progress toward the snapshot for
// FlushStallTimeout, Flush gives up with an error wrapping ErrFlushStalled
// instead of spinning forever.
func (sp *ShardedProfile) Flush() error {
	for i, s := range sp.shards {
		target := s.pushed.Load()
		last := s.consumed.Load()
		lastProgress := time.Now()
		for {
			c := s.consumed.Load()
			if c >= target {
				break
			}
			if c != last {
				last, lastProgress = c, time.Now()
			} else if time.Since(lastProgress) > sp.cfg.FlushStallTimeout {
				return fmt.Errorf("shard %d consumer stalled at %d/%d references for %v "+
					"(quiescence contract: Flush only completes the references accepted "+
					"before it was called, and requires a live consumer to drain them): %w",
					i, c, target, sp.cfg.FlushStallTimeout, ErrFlushStalled)
			}
			runtime.Gosched()
		}
	}
	return nil
}

// Len returns the total number of references ingested across all shards
// (flushing first so in-flight references are counted). Shed references
// (Drop/Sample policies) are not ingested and do not count.
func (sp *ShardedProfile) Len() uint64 {
	sp.Flush()
	var n uint64
	for _, s := range sp.shards {
		n += s.consumed.Load()
	}
	return n
}

// Close stops the consumer goroutines after draining in-flight references.
// The profile remains readable (HotStreams, Len, Stats) but Add returns
// ErrClosed afterwards. Close is idempotent.
func (sp *ShardedProfile) Close() {
	if !sp.closed.CompareAndSwap(false, true) {
		return
	}
	// Fail producers fast first so a Block Add spinning against a full ring
	// observes the close instead of spinning against a stopped consumer.
	for _, s := range sp.shards {
		s.closed.Store(true)
	}
	for _, s := range sp.shards {
		close(s.stop)
	}
	for _, s := range sp.shards {
		<-s.done
	}
	// Consumers are joined, so no further jobs can be enqueued; close the
	// analysis queue and wait for the pool to finish banking in-flight
	// cycles. Readers after Close see complete retained sets.
	if sp.analysisQ != nil {
		close(sp.analysisQ)
		sp.workersDone.Wait()
	}
}

// HotStreams flushes all shards, extracts each shard's hot data streams in
// parallel, and merges them — together with any streams retained by grammar
// budget cycles — deduplicating identical streams with their heats summed
// (frequency adds across shards and cycles, and heat = length × frequency),
// re-ranked hottest first and capped at cfg.MaxStreams.
//
// cfg's coverage threshold applies per shard (each shard knows only its own
// trace length), so with N > 1 a stream must be hot within at least one
// shard to be found — route whole logical traces to single shards to keep
// this faithful. Producers should be quiescent, as for Flush.
func (sp *ShardedProfile) HotStreams(cfg AnalysisConfig) []Stream {
	sp.Flush()
	// Pipelined cycling: Flush only guarantees the references were consumed;
	// the cycles they triggered may still be in the analysis pool. Wait for
	// those to land in the retained sets before merging.
	sp.drainAnalyses()
	n := len(sp.shards)
	perShard := make([][]Stream, 2*n)
	var wg sync.WaitGroup
	for i, s := range sp.shards {
		perShard[n+i] = s.retainedStreams()
		wg.Add(1)
		go func(i int, s *ProfileShard) {
			defer wg.Done()
			perShard[i] = s.p.HotStreams(cfg)
		}(i, s)
	}
	wg.Wait()
	start := time.Now()
	out := mergeStreams(perShard, cfg.MaxStreams)
	sp.mergeNanos.Add(uint64(time.Since(start)))
	sp.mergeCount.Add(1)
	return out
}

// streamKey appends a collision-safe binary key for st to buf: the reference
// count followed by fixed-width PC/Addr words. Unlike a formatted-string
// key, no choice of separator can collide two distinct streams, and the
// fixed-width encoding costs no formatting allocations.
func streamKey(buf []byte, st Stream) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(st.Refs)))
	for _, r := range st.Refs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.PC))
		buf = binary.LittleEndian.AppendUint64(buf, r.Addr)
	}
	return buf
}

// mergeStreams deduplicates identical streams across shards (summing heat)
// and returns them hottest first, preserving shard-extraction order among
// equal heats, capped at maxStreams (0 = no cap).
//
// hotds.Analyze already emits each shard's streams hottest-first, so when no
// stream recurs across shards — the common case, since shards see disjoint
// logical traces — no heat ever changes after emission and the inputs are k
// sorted lists: a selection merge reproduces exactly the order a stable sort
// of the concatenation would, without the O(n log n) sort, and stops as soon
// as maxStreams streams are out. A duplicate (heats sum, possibly re-ranking
// an earlier entry) or an unsorted input falls back to dedup + stable sort.
func mergeStreams(perShard [][]Stream, maxStreams int) []Stream {
	type slot struct {
		idx  int
		heat uint64
	}
	var (
		out  []Stream
		key  []byte
		seen = map[string]*slot{}
	)
	sorted, dup := true, false
	for _, streams := range perShard {
		for i, st := range streams {
			if i > 0 && st.Heat > streams[i-1].Heat {
				sorted = false
			}
			key = streamKey(key[:0], st)
			if sl, ok := seen[string(key)]; ok {
				dup = true
				sl.heat += st.Heat
				out[sl.idx].Heat = sl.heat
				continue
			}
			seen[string(key)] = &slot{idx: len(out), heat: st.Heat}
			out = append(out, st)
		}
	}
	if sorted && !dup {
		return kwayMergeSorted(perShard, maxStreams)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Heat > out[j].Heat })
	if maxStreams > 0 && len(out) > maxStreams {
		out = out[:maxStreams]
	}
	return out
}

// kwayMergeSorted merges hottest-first, duplicate-free lists by selection:
// repeatedly take the hottest head, breaking ties toward the lowest list
// index. Within a list heats are non-increasing, so among equal heats every
// entry of list i is emitted before any entry of list j > i — the same order
// a stable sort of the concatenation yields.
func kwayMergeSorted(lists [][]Stream, maxStreams int) []Stream {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if maxStreams > 0 && total > maxStreams {
		total = maxStreams
	}
	if total == 0 {
		return nil
	}
	out := make([]Stream, 0, total)
	pos := make([]int, len(lists))
	for len(out) < total {
		best := -1
		for i, l := range lists {
			if pos[i] >= len(l) {
				continue
			}
			if best < 0 || l[pos[i]].Heat > lists[best][pos[best]].Heat {
				best = i
			}
		}
		out = append(out, lists[best][pos[best]])
		pos[best]++
	}
	return out
}
