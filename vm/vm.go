// Package vm exposes the reproduction's execution substrate for custom
// workloads: assemble a program in the virtual ISA, lay out a heap, and run
// it under the complete dynamic prefetching system — or unoptimized, for
// comparison.
//
// The assembly format is line-oriented (see Assemble). Programs address a
// flat byte-addressed heap; loads of pointer fields enable the
// pointer-chasing traversals the paper's optimizer targets.
//
//	prog, _ := vm.Assemble(src)
//	m := vm.NewMachine(prog, vm.MachineConfig{HeapWords: 1 << 16})
//	m.WriteWord(16, headAddr)               // wire up data structures
//	baseline, _ := m.RunUnoptimized()
//	report, _ := m.RunOptimized(vm.DefaultOptimizeConfig())
package vm

import (
	"fmt"
	"io"

	"hotprefetch/internal/burst"
	"hotprefetch/internal/heap"
	"hotprefetch/internal/hotds"
	"hotprefetch/internal/machine"
	"hotprefetch/internal/memsim"
	"hotprefetch/internal/opt"
	"hotprefetch/internal/vulcan"
)

// Program is an assembled virtual-ISA program.
type Program struct {
	src string
}

// Assemble parses a program in the textual assembly format:
//
//	; comment
//	proc main
//	  const r1, 100
//	head:
//	  load r2, [r1+8]       ; r2 = Mem[r1+8], a data reference
//	  store [r1+16], r2
//	  arith 3               ; 3 cycles of computation
//	  loop r1, head         ; decrement r1, branch if non-zero
//	  beqz r2, head         ; bnez also available
//	  constproc r3, helper  ; r3 = proc index, for calli
//	  calli r3
//	  call helper
//	  ret
//	proc helper
//	  ret
//
// Registers are r0..r15; the entry point is "main" or the first procedure.
// Assemble validates labels, call targets, and branch ranges.
func Assemble(src string) (*Program, error) {
	// Validate eagerly so errors surface at assembly time; the program is
	// re-assembled per machine because instrumentation mutates it.
	if _, err := machine.Assemble(src); err != nil {
		return nil, err
	}
	return &Program{src: src}, nil
}

// Disasm returns the program's disassembly.
func (p *Program) Disasm() string {
	prog, err := machine.Assemble(p.src)
	if err != nil {
		// Assemble validated the source already.
		panic("vm: program became unassemblable: " + err.Error())
	}
	return prog.Disasm()
}

// CacheConfig describes the simulated two-level cache hierarchy.
type CacheConfig struct {
	BlockSize   int // bytes per cache block (power of two)
	L1Size      int // bytes
	L1Assoc     int
	L2Size      int // bytes
	L2Assoc     int
	L2HitCycles uint64 // extra cycles for an L1 miss hitting L2
	MemCycles   uint64 // extra cycles for a memory access
	MaxInflight int    // outstanding prefetch fills (0 = unlimited)
}

// DefaultCacheConfig returns the paper's hierarchy (16KB 4-way L1D, 256KB
// 8-way L2, 32-byte blocks, §4.1).
func DefaultCacheConfig() CacheConfig {
	d := memsim.DefaultConfig()
	return CacheConfig{
		BlockSize: d.BlockSize, L1Size: d.L1Size, L1Assoc: d.L1Assoc,
		L2Size: d.L2Size, L2Assoc: d.L2Assoc,
		L2HitCycles: d.L2HitLatency, MemCycles: d.MemLatency,
	}
}

func (c CacheConfig) internal() memsim.Config {
	return memsim.Config{
		BlockSize: c.BlockSize, L1Size: c.L1Size, L1Assoc: c.L1Assoc,
		L2Size: c.L2Size, L2Assoc: c.L2Assoc,
		L2HitLatency: c.L2HitCycles, MemLatency: c.MemCycles,
		MaxInflight: c.MaxInflight,
	}
}

// MachineConfig sizes a machine.
type MachineConfig struct {
	// HeapWords is the simulated heap size in 8-byte words.
	HeapWords int
	// Cache defaults to DefaultCacheConfig when zero.
	Cache CacheConfig
}

// Machine is a simulated machine loaded with a program and a heap image.
// Build the heap with WriteWord/Alloc helpers, then call RunUnoptimized
// and/or RunOptimized; each run re-executes from a pristine copy of the
// heap, so results are directly comparable.
type Machine struct {
	prog      *Program
	cfg       MachineConfig
	image     []uint64
	allocator *heap.Arena
}

// NewMachine creates a machine for prog.
func NewMachine(prog *Program, cfg MachineConfig) *Machine {
	if cfg.HeapWords <= 0 {
		cfg.HeapWords = 1 << 16
	}
	if cfg.Cache == (CacheConfig{}) {
		cfg.Cache = DefaultCacheConfig()
	}
	img := make([]uint64, cfg.HeapWords)
	return &Machine{
		prog:      prog,
		cfg:       cfg,
		image:     img,
		allocator: heap.NewArena(img, 1024),
	}
}

// WriteWord stores val at byte address addr in the initial heap image.
func (m *Machine) WriteWord(addr, val uint64) { m.image[addr/8] = val }

// ReadWord reads the initial heap image at byte address addr.
func (m *Machine) ReadWord(addr uint64) uint64 { return m.image[addr/8] }

// Alloc reserves size bytes in the heap image (8-byte aligned bump
// allocation, above the first 1KB which is left for fixed slots) and
// returns the address.
func (m *Machine) Alloc(size int) uint64 { return m.allocator.Alloc(uint64(size)) }

// AllocList allocates a nil-terminated linked list of n nodes of nodeWords
// words, linked through word offset 0, physically shuffled when scatter is
// true. It returns the node addresses in traversal order.
func (m *Machine) AllocList(n, nodeWords int, scatter bool, seed int64) []uint64 {
	var perm []int
	if scatter {
		perm = heap.ShuffledPerm(n, seed)
	}
	return m.allocator.List(n, nodeWords, 0, perm, 0)
}

func (m *Machine) instantiate(instrument bool) (*machine.Machine, error) {
	prog, err := machine.Assemble(m.prog.src)
	if err != nil {
		return nil, err
	}
	if instrument {
		vulcan.Instrument(prog)
	}
	mm := machine.New(prog, m.cfg.HeapWords, m.cfg.Cache.internal())
	copy(mm.Mem, m.image)
	return mm, nil
}

// RunUnoptimized executes the program with no instrumentation and returns
// its execution time in simulated cycles.
func (m *Machine) RunUnoptimized() (uint64, error) {
	mm, err := m.instantiate(false)
	if err != nil {
		return 0, err
	}
	return opt.RunBaseline(mm)
}

// OptimizeConfig controls the dynamic prefetching system for RunOptimized.
type OptimizeConfig struct {
	// SamplingDenominator sets the profiling rate: one burst check in this
	// many (e.g. 20 = 5%). The paper uses 200 (0.5%, §4.1).
	SamplingDenominator int
	// BurstChecks is the profiling burst length in checks (paper: 60).
	BurstChecks int
	// AwakePeriods and HibernatePeriods set the duty cycle in burst-periods
	// (paper: 50 awake, 2450 hibernating).
	AwakePeriods, HibernatePeriods int
	// HeadLen is the stream prefix length to match before prefetching
	// (paper: 2).
	HeadLen int
	// MinStreamLen / MaxStreamLen / MinCoverage configure hot data stream
	// detection (paper: >10 unique refs, 1% of trace).
	MinStreamLen, MaxStreamLen int
	MinCoverage                float64
	// ScheduleChunk > 0 spreads tail prefetches over subsequent checks.
	ScheduleChunk int
	// Static keeps the first injection forever (one-shot static scheme).
	Static bool
	// Events receives the optimizer's decision log when non-nil.
	Events io.Writer
}

// DefaultOptimizeConfig returns settings suited to programs that run for
// millions of cycles: 5% sampling in 60-check bursts, hibernation-dominated
// duty cycle, the paper's analysis thresholds.
func DefaultOptimizeConfig() OptimizeConfig {
	return OptimizeConfig{
		SamplingDenominator: 20,
		BurstChecks:         60,
		AwakePeriods:        8,
		HibernatePeriods:    80,
		HeadLen:             2,
		MinStreamLen:        10,
		MaxStreamLen:        200,
		MinCoverage:         0.01,
	}
}

// Report summarizes an optimized run.
type Report struct {
	Cycles           uint64 // execution time under the optimizer
	OptCycles        int    // completed profile/optimize/hibernate cycles
	HotStreams       int    // per-cycle average
	ProcsModified    int    // per-cycle average
	Prefetches       uint64
	UsefulPrefetches uint64
	L1MissRatio      float64
}

// RunOptimized executes the program under the dynamic prefetching system.
func (m *Machine) RunOptimized(cfg OptimizeConfig) (Report, error) {
	if cfg.SamplingDenominator < 2 {
		return Report{}, fmt.Errorf("vm: SamplingDenominator must be >= 2, got %d", cfg.SamplingDenominator)
	}
	if cfg.BurstChecks < 1 {
		return Report{}, fmt.Errorf("vm: BurstChecks must be >= 1")
	}
	mm, err := m.instantiate(true)
	if err != nil {
		return Report{}, err
	}
	ocfg := opt.Config{
		Mode: opt.ModeDynPref,
		Burst: burst.Config{
			NCheck0:     int64(cfg.BurstChecks) * int64(cfg.SamplingDenominator-1),
			NInstr0:     int64(cfg.BurstChecks),
			NAwake0:     int64(cfg.AwakePeriods),
			NHibernate0: int64(cfg.HibernatePeriods),
			CheckCost:   2,
		},
		Analysis: hotds.Config{
			MinLen:      uint64(cfg.MinStreamLen),
			MaxLen:      uint64(cfg.MaxStreamLen),
			MinCoverage: cfg.MinCoverage,
			MaxStreams:  100,
		},
		HeadLen:       cfg.HeadLen,
		Costs:         opt.DefaultCostModel(),
		ScheduleChunk: cfg.ScheduleChunk,
		Static:        cfg.Static,
	}
	o := opt.New(mm, ocfg)
	if cfg.Events != nil {
		w := cfg.Events
		o.SetEventSink(func(e opt.Event) { fmt.Fprintln(w, e) })
	}
	if err := mm.RunToCompletion(); err != nil {
		return Report{}, err
	}
	res := o.Result()
	avg := res.AvgPerCycle()
	return Report{
		Cycles:           res.ExecCycles,
		OptCycles:        res.OptCycles(),
		HotStreams:       avg.HotStreams,
		ProcsModified:    avg.ProcsModified,
		Prefetches:       res.Cache.Prefetches,
		UsefulPrefetches: res.Cache.UsefulPrefetches,
		L1MissRatio:      res.Cache.MissRatio(),
	}, nil
}
