package vm

import (
	"strings"
	"testing"
)

const chaseSource = `
proc main
  const r1, 500
laps:
  call walk
  loop r1, laps
  ret

proc walk
  const r2, 16
  load r3, [r2+0]
chase:
  load r3, [r3+0]
  arith 2
  bnez r3, chase
  ret
`

func chaseMachine(t *testing.T) *Machine {
	t.Helper()
	prog, err := Assemble(chaseSource)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(prog, MachineConfig{
		HeapWords: 1 << 14,
		Cache: CacheConfig{
			BlockSize: 32, L1Size: 512, L1Assoc: 2, L2Size: 2048, L2Assoc: 2,
			L2HitCycles: 10, MemCycles: 100,
		},
	})
	list := m.AllocList(80, 4, true, 7)
	m.WriteWord(16, list[0])
	return m
}

func TestAssembleRejectsBadSource(t *testing.T) {
	if _, err := Assemble("proc p\n bogus\n ret\n"); err == nil {
		t.Error("bad source must be rejected")
	}
}

func TestDisasm(t *testing.T) {
	prog, err := Assemble(chaseSource)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.Disasm()
	for _, want := range []string{"main:", "walk:", "bnez r3"} {
		if !strings.Contains(d, want) {
			t.Errorf("disasm missing %q", want)
		}
	}
}

func TestUnoptimizedRunIsDeterministic(t *testing.T) {
	a, err := chaseMachine(t).RunUnoptimized()
	if err != nil {
		t.Fatal(err)
	}
	b, err := chaseMachine(t).RunUnoptimized()
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a == 0 {
		t.Errorf("runs diverged: %d vs %d", a, b)
	}
}

func TestOptimizedBeatsUnoptimized(t *testing.T) {
	m := chaseMachine(t)
	base, err := m.RunUnoptimized()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultOptimizeConfig()
	cfg.SamplingDenominator = 4 // short program: sample aggressively
	cfg.AwakePeriods = 4
	cfg.HibernatePeriods = 40
	rep, err := m.RunOptimized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OptCycles == 0 || rep.HotStreams == 0 {
		t.Fatalf("optimizer idle: %+v", rep)
	}
	if rep.Cycles >= base {
		t.Errorf("optimized %d should beat unoptimized %d", rep.Cycles, base)
	}
	if rep.UsefulPrefetches == 0 {
		t.Error("no useful prefetches")
	}
}

func TestRunsShareAPristineHeap(t *testing.T) {
	// RunUnoptimized mutates nothing visible: running it twice from the
	// same Machine gives identical results even though the simulated
	// program writes to its heap (the schedule cursor is in machine
	// memory, not the image).
	m := chaseMachine(t)
	a, err := m.RunUnoptimized()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.RunUnoptimized()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("heap image leaked between runs")
	}
}

func TestEventsStream(t *testing.T) {
	m := chaseMachine(t)
	var log strings.Builder
	cfg := DefaultOptimizeConfig()
	cfg.SamplingDenominator = 4
	cfg.AwakePeriods = 4
	cfg.HibernatePeriods = 40
	cfg.Events = &log
	if _, err := m.RunOptimized(cfg); err != nil {
		t.Fatal(err)
	}
	out := log.String()
	for _, want := range []string{"analyzed", "injected", "hibernate"} {
		if !strings.Contains(out, want) {
			t.Errorf("event log missing %q:\n%s", want, out)
		}
	}
}

func TestOptimizeConfigValidation(t *testing.T) {
	m := chaseMachine(t)
	bad := DefaultOptimizeConfig()
	bad.SamplingDenominator = 1
	if _, err := m.RunOptimized(bad); err == nil {
		t.Error("SamplingDenominator 1 must be rejected")
	}
	bad = DefaultOptimizeConfig()
	bad.BurstChecks = 0
	if _, err := m.RunOptimized(bad); err == nil {
		t.Error("BurstChecks 0 must be rejected")
	}
}

func TestAllocHelpers(t *testing.T) {
	prog, err := Assemble("proc main\n ret\n")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(prog, MachineConfig{HeapWords: 4096})
	a := m.Alloc(64)
	b := m.Alloc(8)
	if a < 1024 || b <= a {
		t.Errorf("allocations misplaced: %d, %d", a, b)
	}
	m.WriteWord(a, 42)
	if m.ReadWord(a) != 42 {
		t.Error("image write/read broken")
	}
	list := m.AllocList(5, 2, false, 0)
	if len(list) != 5 {
		t.Fatalf("list has %d nodes", len(list))
	}
	for i := 0; i < 4; i++ {
		if m.ReadWord(list[i]) != list[i+1] {
			t.Errorf("list link %d broken", i)
		}
	}
	if m.ReadWord(list[4]) != 0 {
		t.Error("list must be nil-terminated")
	}
}
