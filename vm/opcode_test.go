package vm

import (
	"strings"
	"testing"
)

// opcodePrograms is one small halting program per assembly opcode, each
// arranged so the run completes only if the opcode does its job (a wrong
// branch or a clobbered register either halts immediately — suspiciously
// cheap — or never reaches ret and fails the loop guard).
var opcodePrograms = []struct {
	op  string
	src string
	// minCycles guards against the degenerate "branched straight to ret"
	// miscompilation: a correct run must cost at least this much.
	minCycles uint64
}{
	{"nop", `
proc main
  nop
  nop
  ret
`, 1},
	{"arith", `
proc main
  arith 100
  ret
`, 100},
	{"const+move", `
proc main
  const r1, 7
  move r2, r1
loop:
  arith 3
  loop r2, loop
  ret
`, 21},
	{"addimm", `
proc main
  const r1, 0
  addimm r1, r1, 5
loop:
  arith 2
  loop r1, loop
  ret
`, 10},
	{"load", `
proc main
  const r1, 16
  load r2, [r1+0]
loop:
  arith 1
  loop r2, loop
  ret
`, 4},
	{"store", `
proc main
  const r1, 16
  const r2, 6
  store [r1+8], r2
  load r3, [r1+8]
loop:
  arith 2
  loop r3, loop
  ret
`, 12},
	{"prefetch", `
proc main
  const r1, 64
  prefetch [r1+0]
  load r2, [r1+0]
  ret
`, 1},
	{"jump", `
proc main
  const r1, 3
  jump over
  arith 10000
over:
  arith 5
  ret
`, 5},
	{"beqz", `
proc main
  const r1, 0
  beqz r1, taken
  arith 10000
taken:
  arith 7
  ret
`, 7},
	{"bnez", `
proc main
  const r1, 9
  bnez r1, taken
  arith 10000
taken:
  arith 7
  ret
`, 7},
	{"loop", `
proc main
  const r1, 12
again:
  arith 4
  loop r1, again
  ret
`, 48},
	{"call", `
proc main
  call helper
  call helper
  ret

proc helper
  arith 11
  ret
`, 22},
	{"calli+constproc", `
proc main
  constproc r5, helper
  calli r5
  ret

proc helper
  arith 13
  ret
`, 13},
	{"check", `
proc main
  check
  arith 2
  ret
`, 2},
}

// TestOpcodes drives every assembly opcode through the public vm surface:
// each program must assemble, disassemble to something mentioning its
// opcode, and execute deterministically both unoptimized and under the full
// dynamic prefetching system.
func TestOpcodes(t *testing.T) {
	for _, tc := range opcodePrograms {
		t.Run(tc.op, func(t *testing.T) {
			prog, err := Assemble(tc.src)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			mnemonic, _, _ := strings.Cut(tc.op, "+")
			if d := prog.Disasm(); !strings.Contains(d, mnemonic) {
				t.Errorf("disassembly does not mention %q:\n%s", mnemonic, d)
			}
			m := NewMachine(prog, MachineConfig{HeapWords: 1 << 12})
			// Word 16 seeds the load/store programs with a small loop count.
			m.WriteWord(16, 3)
			cycles, err := m.RunUnoptimized()
			if err != nil {
				t.Fatalf("unoptimized: %v", err)
			}
			if cycles < tc.minCycles {
				t.Errorf("run cost %d cycles, want >= %d (opcode misbehaving?)", cycles, tc.minCycles)
			}
			again, err := m.RunUnoptimized()
			if err != nil {
				t.Fatal(err)
			}
			if again != cycles {
				t.Errorf("non-deterministic: %d then %d cycles", cycles, again)
			}
			// The instrumented pipeline must accept the same program.
			cfg := DefaultOptimizeConfig()
			cfg.SamplingDenominator = 4
			rep, err := m.RunOptimized(cfg)
			if err != nil {
				t.Fatalf("optimized: %v", err)
			}
			if rep.Cycles == 0 {
				t.Error("optimized run reported 0 cycles")
			}
		})
	}
}

// TestNewMachineDefaults exercises the zero-config path: default heap size
// and the paper's default cache hierarchy.
func TestNewMachineDefaults(t *testing.T) {
	prog, err := Assemble("proc main\n arith 1\n ret\n")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(prog, MachineConfig{})
	if got := len(m.image); got != 1<<16 {
		t.Errorf("default heap = %d words, want %d", got, 1<<16)
	}
	if m.cfg.Cache == (CacheConfig{}) {
		t.Error("cache config not defaulted")
	}
	if _, err := m.RunUnoptimized(); err != nil {
		t.Fatal(err)
	}
}

// TestOptimizedVariants covers the scheduling and static one-shot knobs of
// RunOptimized on the pointer-chasing workload.
func TestOptimizedVariants(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*OptimizeConfig)
	}{
		{"scheduled", func(c *OptimizeConfig) { c.ScheduleChunk = 4 }},
		{"static", func(c *OptimizeConfig) { c.Static = true }},
		{"scheduled-static", func(c *OptimizeConfig) { c.ScheduleChunk = 2; c.Static = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := chaseMachine(t)
			cfg := DefaultOptimizeConfig()
			cfg.SamplingDenominator = 4
			cfg.AwakePeriods = 4
			cfg.HibernatePeriods = 40
			tc.mut(&cfg)
			rep, err := m.RunOptimized(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.OptCycles == 0 {
				t.Error("no optimization cycles completed")
			}
			if rep.Prefetches == 0 {
				t.Error("no prefetches issued")
			}
		})
	}
}
