package hotprefetch

import (
	"encoding/json"
	"time"
)

// ShardStats is one shard's ingestion and memory counters at a moment in
// time.
type ShardStats struct {
	// Pushed counts references accepted into the shard's ring; Consumed
	// counts those compressed into the grammar so far. Pushed - Consumed is
	// the in-flight backlog.
	Pushed   uint64 `json:"pushed"`
	Consumed uint64 `json:"consumed"`

	// Dropped counts references shed on a full ring (Drop and Sample
	// policies); Sampled counts references skipped by Sample degradation
	// without touching the ring.
	Dropped uint64 `json:"dropped"`
	Sampled uint64 `json:"sampled"`

	// Resets counts grammar budget cycles (MaxGrammarSymbols); Retained is
	// the number of hot streams currently banked by those cycles.
	Resets   uint64 `json:"resets"`
	Retained int    `json:"retained"`

	// GrammarSize is the shard grammar's size as of its last consumed
	// batch; PeakGrammarSize is its high-water mark, which stays at or
	// under MaxGrammarSymbols when a budget is set.
	GrammarSize     int `json:"grammar_size"`
	PeakGrammarSize int `json:"peak_grammar_size"`

	// RingLen and RingCap describe the shard ring's current backlog and
	// capacity.
	RingLen int `json:"ring_len"`
	RingCap int `json:"ring_cap"`
}

// Stats is a point-in-time snapshot of a ShardedProfile's service counters:
// per-shard ingestion accounting plus profile-wide totals, merge timings,
// and the observation count of an attached ConcurrentMatcher. The snapshot
// is approximate under concurrency (each counter is read atomically, but not
// all at the same instant).
//
// Stats marshals to JSON and its String method returns that JSON, so a
// ShardedProfile drops straight into an expvar page:
//
//	expvar.Publish("hotprefetch", expvar.Func(func() any { return sp.Stats() }))
type Stats struct {
	Shards []ShardStats `json:"shards"`

	// Totals across shards.
	Pushed   uint64 `json:"pushed"`
	Consumed uint64 `json:"consumed"`
	Dropped  uint64 `json:"dropped"`
	Sampled  uint64 `json:"sampled"`
	Resets   uint64 `json:"resets"`

	// GrammarSize sums the live per-shard grammar sizes.
	GrammarSize int `json:"grammar_size"`

	// MergeCount and MergeTime account the HotStreams merge passes run so
	// far and the cumulative wall time they took.
	MergeCount uint64        `json:"merge_count"`
	MergeTime  time.Duration `json:"merge_time_ns"`

	// MatcherObservations is the number of references observed by the
	// ConcurrentMatcher registered with AttachMatcher, if any.
	MatcherObservations uint64 `json:"matcher_observations"`
}

// String renders the snapshot as JSON, satisfying expvar.Var.
func (st Stats) String() string {
	b, err := json.Marshal(st)
	if err != nil {
		// Stats contains only marshalable fields; this cannot happen.
		return "{}"
	}
	return string(b)
}

// Stats returns a snapshot of the profile's service counters. It does not
// flush: the snapshot reflects ingestion as it stands, backlog included.
func (sp *ShardedProfile) Stats() Stats {
	st := Stats{
		Shards:     make([]ShardStats, len(sp.shards)),
		MergeCount: sp.mergeCount.Load(),
		MergeTime:  time.Duration(sp.mergeNanos.Load()),
	}
	for i, s := range sp.shards {
		s.mu.Lock()
		retained := len(s.retained)
		s.mu.Unlock()
		ss := ShardStats{
			Pushed:          s.pushed.Load(),
			Consumed:        s.consumed.Load(),
			Dropped:         s.dropped.Load(),
			Sampled:         s.sampledOut.Load(),
			Resets:          s.resets.Load(),
			Retained:        retained,
			GrammarSize:     int(s.grammarSize.Load()),
			PeakGrammarSize: int(s.peakGrammar.Load()),
			RingLen:         s.q.Len(),
			RingCap:         s.q.Cap(),
		}
		st.Shards[i] = ss
		st.Pushed += ss.Pushed
		st.Consumed += ss.Consumed
		st.Dropped += ss.Dropped
		st.Sampled += ss.Sampled
		st.Resets += ss.Resets
		st.GrammarSize += ss.GrammarSize
	}
	if m := sp.matcher.Load(); m != nil {
		st.MatcherObservations = m.Observations()
	}
	return st
}

// AttachMatcher registers the ConcurrentMatcher whose observation count
// Stats should report — typically the matcher serving the streams this
// profile detected. A nil matcher detaches.
func (sp *ShardedProfile) AttachMatcher(m *ConcurrentMatcher) {
	sp.matcher.Store(m)
}
