package hotprefetch

import (
	"encoding/json"
	"time"

	"hotprefetch/internal/burst"
)

// ShardStats is one shard's ingestion and memory counters at a moment in
// time.
type ShardStats struct {
	// Pushed counts references accepted into the shard's ring; Consumed
	// counts those compressed into the grammar so far. Pushed - Consumed is
	// the in-flight backlog.
	Pushed   uint64 `json:"pushed"`
	Consumed uint64 `json:"consumed"`

	// Dropped counts references shed on a full ring (Drop and Sample
	// policies); Sampled counts references skipped by Sample degradation
	// without touching the ring.
	Dropped uint64 `json:"dropped"`
	Sampled uint64 `json:"sampled"`

	// BurstShed counts references shed by the bursty-sampling front end
	// (ShardedConfig.Burst) before reaching the ring; BurstPhase is the
	// front end's current phase ("awake" or "hibernating"), empty when
	// bursty sampling is disabled. QuotaShed counts references shed at the
	// producer boundary because the profile-wide RefQuota was exhausted. At
	// producer quiescence every reference handed to the shard is in exactly
	// one of Pushed, Dropped, Sampled, BurstShed, or QuotaShed.
	BurstShed  uint64 `json:"burst_shed"`
	BurstPhase string `json:"burst_phase,omitempty"`
	QuotaShed  uint64 `json:"quota_shed"`

	// Collapsed counts consumed references the two-level ingest front end
	// (ShardedConfig.Prepass) absorbed without a digram-table epoch — run
	// collapses plus phrase-rule replays. Unlike the shed counters it is
	// consumer-side accounting over references already in Consumed (always
	// Collapsed <= Consumed), so it does not enter the producer ledger.
	// PrepassMinted counts the phrase and doubling rules the front end
	// minted directly into shard grammars. Both are zero with the prepass
	// off.
	Collapsed     uint64 `json:"collapsed"`
	PrepassMinted uint64 `json:"prepass_minted"`

	// Resets counts grammar budget cycles (MaxGrammarSymbols); Retained is
	// the number of hot streams currently banked by those cycles.
	Resets   uint64 `json:"resets"`
	Retained int    `json:"retained"`

	// GrammarSize is the shard grammar's size as of its last consumed
	// batch; PeakGrammarSize is its high-water mark, which stays at or
	// under MaxGrammarSymbols when a budget is set.
	GrammarSize     int `json:"grammar_size"`
	PeakGrammarSize int `json:"peak_grammar_size"`

	// RingLen and RingCap describe the shard ring's current backlog and
	// capacity.
	RingLen int `json:"ring_len"`
	RingCap int `json:"ring_cap"`

	// PendingAnalyses counts this shard's cycles queued or running in the
	// background analysis pool; SpareMisses counts cycles that had to
	// allocate a fresh grammar because both spares were still being
	// recycled. Zero when cycling is inline (AnalysisWorkers == 0).
	PendingAnalyses int64  `json:"pending_analyses"`
	SpareMisses     uint64 `json:"spare_misses"`

	// MaxCycleStall is the longest a grammar-budget cycle has blocked this
	// shard's ingest path: the whole analysis when cycling inline, just the
	// grammar swap when pipelined.
	MaxCycleStall time.Duration `json:"max_cycle_stall_ns"`

	// AnalysesFailed counts cycle-end analyses that panicked or exceeded
	// AnalysisTimeout; AnalysesSkipped counts cycles degraded to
	// ingest-and-recycle by an open circuit breaker. At quiescence
	// Resets == CyclesAnalyzed + AnalysesFailed + AnalysesSkipped.
	AnalysesFailed  uint64 `json:"analyses_failed"`
	AnalysesSkipped uint64 `json:"analyses_skipped"`

	// BreakerState is the shard's circuit-breaker state ("closed", "open",
	// or "half-open"); BreakerTransitions counts its state changes.
	BreakerState       string `json:"breaker_state"`
	BreakerTransitions uint64 `json:"breaker_transitions"`
}

// Stats is a point-in-time snapshot of a ShardedProfile's service counters:
// per-shard ingestion accounting plus profile-wide totals, merge timings,
// and the observation count of an attached ConcurrentMatcher. The snapshot
// is approximate under concurrency (each counter is read atomically, but not
// all at the same instant).
//
// Stats marshals to JSON and its String method returns that JSON, so a
// ShardedProfile drops straight into an expvar page:
//
//	expvar.Publish("hotprefetch", expvar.Func(func() any { return sp.Stats() }))
type Stats struct {
	Shards []ShardStats `json:"shards"`

	// Totals across shards.
	Pushed        uint64 `json:"pushed"`
	Consumed      uint64 `json:"consumed"`
	Dropped       uint64 `json:"dropped"`
	Sampled       uint64 `json:"sampled"`
	BurstShed     uint64 `json:"burst_shed"`
	QuotaShed     uint64 `json:"quota_shed"`
	Collapsed     uint64 `json:"collapsed"`
	PrepassMinted uint64 `json:"prepass_minted"`
	Resets        uint64 `json:"resets"`

	// GrammarSize sums the live per-shard grammar sizes.
	GrammarSize int `json:"grammar_size"`

	// MergeCount and MergeTime account the HotStreams merge passes run so
	// far and the cumulative wall time they took.
	MergeCount uint64        `json:"merge_count"`
	MergeTime  time.Duration `json:"merge_time_ns"`

	// Pipeline counters (all zero when AnalysisWorkers == 0 and no budget
	// cycles have run): AnalysisQueueDepth is the number of full grammars
	// waiting for a background worker right now; CyclesAnalyzed counts
	// cycle-end analyses completed (inline or background).
	//
	// At every snapshot — not just at quiescence —
	// CyclesAnalyzed + AnalysesFailed + AnalysesSkipped <= Resets: a
	// cycle's reset is counted before its analysis can reach a terminal
	// state, and the snapshot reads the terminal counters before the
	// resets, so the books can run behind (cycles still in flight) but
	// never ahead. At quiescence the two sides are equal.
	AnalysisQueueDepth int    `json:"analysis_queue_depth"`
	CyclesAnalyzed     uint64 `json:"cycles_analyzed"`

	// Latency distributions, replacing the lossy last/max scalar pair the
	// snapshot used to carry (the old values survive as the snapshots' Last
	// and Max fields): per-cycle analysis latency, the ingest-path stall
	// each grammar cycle charged, and Flush wall time. Raw units are
	// nanoseconds; see obs.HistogramSnapshot.
	AnalysisLatency HistogramSnapshot `json:"analysis_latency"`
	IngestStall     HistogramSnapshot `json:"ingest_stall"`
	FlushLatency    HistogramSnapshot `json:"flush_latency"`

	// AccuracyWindows is the distribution of supervisor accuracy-window
	// hit ratios (raw unit permille); all-zero until a Supervisor judges
	// its first conclusive window.
	AccuracyWindows HistogramSnapshot `json:"accuracy_windows"`

	// CompressLatency is the per-batch Sequitur compression wall time
	// (batches of 8+ references); BurstDuty is the per-phase bursty-sampling
	// duty cycle, references sampled over references checked (raw unit
	// permille), all-zero unless ShardedConfig.Burst is enabled.
	CompressLatency HistogramSnapshot `json:"compress_latency"`
	BurstDuty       HistogramSnapshot `json:"burst_duty"`

	// PrepassCollapse is the distribution of per-batch collapse ratios —
	// references the ingest front end absorbed over references in the batch
	// (raw unit permille, batches of 8+ references); all-zero unless
	// ShardedConfig.Prepass is on.
	PrepassCollapse HistogramSnapshot `json:"prepass_collapse"`

	// MaxCycleStall is the worst per-shard ingest stall charged to a grammar
	// cycle (max over shards of ShardStats.MaxCycleStall).
	MaxCycleStall time.Duration `json:"max_cycle_stall_ns"`

	// Failure-containment totals across shards: analyses failed (panic or
	// deadline), analyses skipped by open breakers, and breaker state
	// transitions. FlushStalls counts lossy HotStreams calls that hit a
	// consumer or analysis-pool stall and returned a partial merge.
	AnalysesFailed     uint64 `json:"analyses_failed"`
	AnalysesSkipped    uint64 `json:"analyses_skipped"`
	BreakerTransitions uint64 `json:"breaker_transitions"`
	FlushStalls        uint64 `json:"flush_stalls"`

	// MatcherObservations is the number of references observed by the
	// ConcurrentMatcher registered with AttachMatcher, if any;
	// MatcherSwaps counts its lock-free retraining swaps.
	// MatcherPredictor names the predictor implementation currently
	// published, and Predictors splits the cumulative accuracy counters by
	// implementation (see ConcurrentMatcher.AccuracyByPredictor): at any
	// snapshot the per-predictor issued/hits sum exactly to the matcher's
	// totals, so A/B trial windows reconcile without cross-contamination.
	MatcherObservations uint64              `json:"matcher_observations"`
	MatcherSwaps        uint64              `json:"matcher_swaps"`
	MatcherPredictor    string              `json:"matcher_predictor,omitempty"`
	Predictors          []PredictorAccuracy `json:"predictors,omitempty"`

	// Snapshot lifecycle counters (see WriteSnapshot / RestoreSnapshot):
	// RestoredStreams is the size of the warm-start stream set currently
	// merged into BankedStreams (0 when cold or demoted);
	// SnapshotGeneration is the generation of the last restored snapshot.
	// SnapshotWrites counts successful encodes, SnapshotRestores successful
	// loads, SnapshotLoadFailures loads rejected by the format validator,
	// and SnapshotStaleRejected restored profiles the supervisor demoted as
	// stale (bad accuracy windows or workload drift).
	RestoredStreams       int    `json:"restored_streams"`
	SnapshotGeneration    uint64 `json:"snapshot_generation"`
	SnapshotWrites        uint64 `json:"snapshot_writes"`
	SnapshotRestores      uint64 `json:"snapshot_restores"`
	SnapshotLoadFailures  uint64 `json:"snapshot_load_failures"`
	SnapshotStaleRejected uint64 `json:"snapshot_stale_rejected"`

	// Supervisor is the supervision snapshot when a Supervisor is attached
	// (see Supervise): phase-cycle state, last accuracy window, and the
	// deoptimize/re-optimize counts.
	Supervisor *SupervisorStats `json:"supervisor,omitempty"`
}

// String renders the snapshot as JSON, satisfying expvar.Var.
func (st Stats) String() string {
	b, err := json.Marshal(st)
	if err != nil {
		// Stats contains only marshalable fields; this cannot happen.
		return "{}"
	}
	return string(b)
}

// Stats returns a snapshot of the profile's service counters. It does not
// flush: the snapshot reflects ingestion as it stands, backlog included.
func (sp *ShardedProfile) Stats() Stats {
	// CyclesAnalyzed must be read before any shard's resets counter so the
	// snapshot invariant CyclesAnalyzed + AnalysesFailed + AnalysesSkipped
	// <= Resets holds at every sample; see noteAnalysis for the writer side
	// of the contract.
	st := Stats{
		Shards:          make([]ShardStats, len(sp.shards)),
		MergeCount:      sp.mergeCount.Load(),
		MergeTime:       time.Duration(sp.mergeNanos.Load()),
		CyclesAnalyzed:  sp.cycles.Load(),
		FlushStalls:     sp.flushStalls.Load(),
		AnalysisLatency: sp.obs.AnalysisLatency.Snapshot(),
		IngestStall:     sp.obs.IngestStall.Snapshot(),
		FlushLatency:    sp.obs.FlushLatency.Snapshot(),
		AccuracyWindows: sp.obs.AccuracyWindow.Snapshot(),
		CompressLatency: sp.obs.CompressLatency.Snapshot(),
		BurstDuty:       sp.obs.BurstDuty.Snapshot(),
		PrepassCollapse: sp.obs.PrepassCollapse.Snapshot(),
	}
	if sp.analysisQ != nil {
		st.AnalysisQueueDepth = len(sp.analysisQ)
	}
	for i, s := range sp.shards {
		s.mu.Lock()
		retained := len(s.retained)
		s.mu.Unlock()
		// Terminal analysis counters before resets, per the snapshot
		// invariant's read ordering.
		failed, skipped := s.analysesFailed.Load(), s.analysesSkipped.Load()
		ss := ShardStats{
			Pushed:          s.pushed.Load(),
			Consumed:        s.consumed.Load(),
			Dropped:         s.dropped.Load(),
			Sampled:         s.sampledOut.Load(),
			Resets:          s.resets.Load(),
			Retained:        retained,
			GrammarSize:     int(s.grammarSize.Load()),
			PeakGrammarSize: int(s.peakGrammar.Load()),
			RingLen:         s.q.Len(),
			RingCap:         s.q.Cap(),
			PendingAnalyses: s.pending.Load(),
			SpareMisses:     s.spareMisses.Load(),
			MaxCycleStall:   time.Duration(s.maxCycleStallNanos.Load()),
			AnalysesFailed:  failed,
			AnalysesSkipped: skipped,
			BurstShed:       s.burstShed.Load(),
			QuotaShed:       s.quotaShed.Load(),
			Collapsed:       s.collapsed.Load(),
			PrepassMinted:   s.minted.Load(),
		}
		if s.burst != nil {
			ss.BurstPhase = burst.Phase(s.burst.phase.Load()).String()
		}
		ss.BreakerState, ss.BreakerTransitions = s.brk.snapshot()
		st.Shards[i] = ss
		st.Pushed += ss.Pushed
		st.Consumed += ss.Consumed
		st.Dropped += ss.Dropped
		st.Sampled += ss.Sampled
		st.BurstShed += ss.BurstShed
		st.QuotaShed += ss.QuotaShed
		st.Collapsed += ss.Collapsed
		st.PrepassMinted += ss.PrepassMinted
		st.Resets += ss.Resets
		st.GrammarSize += ss.GrammarSize
		st.AnalysesFailed += ss.AnalysesFailed
		st.AnalysesSkipped += ss.AnalysesSkipped
		st.BreakerTransitions += ss.BreakerTransitions
		if ss.MaxCycleStall > st.MaxCycleStall {
			st.MaxCycleStall = ss.MaxCycleStall
		}
	}
	sp.restoredMu.Lock()
	st.RestoredStreams = len(sp.restored)
	st.SnapshotGeneration = sp.restoredGen
	sp.restoredMu.Unlock()
	st.SnapshotWrites = sp.snapWrites.Load()
	st.SnapshotRestores = sp.snapRestores.Load()
	st.SnapshotLoadFailures = sp.snapLoadFailures.Load()
	st.SnapshotStaleRejected = sp.snapStaleRejected.Load()
	if m := sp.matcher.Load(); m != nil {
		st.MatcherObservations = m.Observations()
		st.MatcherSwaps = m.Swaps()
		st.MatcherPredictor = m.Predictor()
		st.Predictors = m.AccuracyByPredictor()
	}
	if sup := sp.supervisor.Load(); sup != nil {
		ss := sup.Snapshot()
		st.Supervisor = &ss
	}
	return st
}

// AttachMatcher registers the ConcurrentMatcher whose observation count
// Stats should report — typically the matcher serving the streams this
// profile detected. Attaching also points the matcher's event emission at
// this profile's Observer, so its retraining swaps land in the same trace
// as the cycles that produced them. A nil matcher detaches.
func (sp *ShardedProfile) AttachMatcher(m *ConcurrentMatcher) {
	if m != nil {
		m.SetObserver(sp.obs)
	}
	sp.matcher.Store(m)
}
