package hotprefetch

import (
	"bytes"
	"io"
	"testing"

	"hotprefetch/internal/ref"
	"hotprefetch/internal/snapshot"
)

// benchSnapshotBytes encodes a synthetic banked-stream set of realistic
// checkpoint size: `streams` hot streams of `refsPer` references each.
func benchSnapshotBytes(b *testing.B, streams, refsPer int) []byte {
	b.Helper()
	p := &snapshot.Profile{Generation: 1, CreatedAt: 1}
	for s := 0; s < streams; s++ {
		refs := make([]ref.Ref, refsPer)
		for i := range refs {
			refs[i] = ref.Ref{PC: 1000*s + i, Addr: uint64(0x10000*s + 8*i)}
		}
		p.Streams = append(p.Streams, snapshot.Stream{Refs: refs, Heat: uint64(1000 - s)})
	}
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, p); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// benchRestoredProfile returns a profile whose banked set is the synthetic
// snapshot — the state a checkpointing tenant encodes every interval.
func benchRestoredProfile(b *testing.B, streams, refsPer int) *ShardedProfile {
	b.Helper()
	sp := NewShardedProfile(1)
	b.Cleanup(sp.Close)
	if _, err := sp.RestoreSnapshot(bytes.NewReader(benchSnapshotBytes(b, streams, refsPer))); err != nil {
		b.Fatal(err)
	}
	return sp
}

// BenchmarkSnapshotEncode measures one checkpoint pass over a profile with
// 256 banked streams of 16 refs: the cost the periodic checkpoint loop adds
// per tenant per interval, which must never stall ingest.
func BenchmarkSnapshotEncode(b *testing.B) {
	sp := benchRestoredProfile(b, 256, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sp.WriteSnapshot(io.Discard, uint64(i)+2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRestore measures a warm start: decode, validate, and
// install 256 banked streams into a cold profile.
func BenchmarkSnapshotRestore(b *testing.B) {
	enc := benchSnapshotBytes(b, 256, 16)
	sp := NewShardedProfile(1)
	defer sp.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.RestoreSnapshot(bytes.NewReader(enc)); err != nil {
			b.Fatal(err)
		}
	}
}
