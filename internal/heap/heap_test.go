package heap

import (
	"testing"
	"testing/quick"
)

func TestAllocAlignmentAndProgress(t *testing.T) {
	mem := make([]uint64, 1024)
	a := NewArena(mem, 0)
	p1 := a.Alloc(1) // rounds to 8
	p2 := a.Alloc(8)
	p3 := a.Alloc(13) // rounds to 16
	p4 := a.Alloc(8)
	if p1%WordSize != 0 || p2%WordSize != 0 || p3%WordSize != 0 {
		t.Error("allocations must be word-aligned")
	}
	if p2 != p1+8 || p3 != p2+8 || p4 != p3+16 {
		t.Errorf("bump allocation broken: %d %d %d %d", p1, p2, p3, p4)
	}
	if p1 == 0 {
		t.Error("address 0 must stay reserved as nil")
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on arena exhaustion")
		}
	}()
	a := NewArena(make([]uint64, 4), 0)
	a.Alloc(1 << 20)
}

func TestReadWrite(t *testing.T) {
	a := NewArena(make([]uint64, 64), 0)
	p := a.AllocWords(4)
	a.Write(p+8, 77)
	if got := a.Read(p + 8); got != 77 {
		t.Errorf("Read = %d, want 77", got)
	}
}

func TestListSequentialLayout(t *testing.T) {
	a := NewArena(make([]uint64, 1024), 0)
	addrs := a.List(5, 4, 1, nil, 0)
	if len(addrs) != 5 {
		t.Fatalf("len = %d, want 5", len(addrs))
	}
	for i := 0; i < 4; i++ {
		if addrs[i+1] != addrs[i]+4*WordSize {
			t.Errorf("sequential layout broken at %d: %d -> %d", i, addrs[i], addrs[i+1])
		}
		if next := a.Read(addrs[i] + WordSize); next != addrs[i+1] {
			t.Errorf("link %d = %d, want %d", i, next, addrs[i+1])
		}
	}
	if last := a.Read(addrs[4] + WordSize); last != 0 {
		t.Errorf("tail next = %d, want nil", last)
	}
}

func TestListScatteredLayoutPreservesLogicalLinks(t *testing.T) {
	a := NewArena(make([]uint64, 4096), 0)
	perm := ShuffledPerm(32, 42)
	addrs := a.List(32, 4, 0, perm, 0)
	// Logical chain must visit all 32 nodes in order regardless of layout.
	cur := addrs[0]
	for i := 0; i < 31; i++ {
		next := a.Read(cur)
		if next != addrs[i+1] {
			t.Fatalf("chain broken at %d", i)
		}
		cur = next
	}
	if a.Read(cur) != 0 {
		t.Error("chain must end in nil")
	}
	// With a shuffle, at least one logical successor must be physically
	// non-adjacent.
	adjacent := 0
	for i := 0; i < 31; i++ {
		if addrs[i+1] == addrs[i]+4*WordSize {
			adjacent++
		}
	}
	if adjacent == 31 {
		t.Error("shuffled layout is fully sequential")
	}
}

func TestListGapBreaksBlockAdjacency(t *testing.T) {
	a := NewArena(make([]uint64, 4096), 0)
	addrs := a.List(8, 2, 0, nil, 48)
	for i := 0; i < 7; i++ {
		if addrs[i+1]-addrs[i] < 2*WordSize+48 {
			t.Errorf("gap not honored between nodes %d and %d", i, i+1)
		}
	}
}

func TestRing(t *testing.T) {
	a := NewArena(make([]uint64, 1024), 0)
	addrs := a.Ring(4, 2, 1, nil, 0)
	if a.Read(addrs[3]+WordSize) != addrs[0] {
		t.Error("ring must close back to the head")
	}
}

func TestTable(t *testing.T) {
	a := NewArena(make([]uint64, 1024), 0)
	vals := []uint64{10, 20, 30}
	base := a.Table(vals)
	for i, v := range vals {
		if got := a.Read(base + uint64(i)*WordSize); got != v {
			t.Errorf("table[%d] = %d, want %d", i, got, v)
		}
	}
}

func TestShuffledPermDeterministic(t *testing.T) {
	p1 := ShuffledPerm(100, 7)
	p2 := ShuffledPerm(100, 7)
	p3 := ShuffledPerm(100, 8)
	same := true
	diff := false
	for i := range p1 {
		if p1[i] != p2[i] {
			same = false
		}
		if p1[i] != p3[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed must give same permutation")
	}
	if !diff {
		t.Error("different seeds should give different permutations")
	}
}

// Property: ShuffledPerm is always a valid permutation.
func TestPropertyShuffledPermIsPermutation(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		size := int(n%64) + 1
		perm := ShuffledPerm(size, seed)
		seen := make([]bool, size)
		for _, v := range perm {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: List never aliases two logical nodes to the same address.
func TestPropertyListNodesDistinct(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		size := int(n%32) + 2
		a := NewArena(make([]uint64, 1<<14), 0)
		addrs := a.List(size, 4, 0, ShuffledPerm(size, seed), 0)
		seen := make(map[uint64]bool)
		for _, p := range addrs {
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
