// Package heap provides a simulated heap allocator for building the
// pointer-based data structures the workloads traverse.
//
// The arena is a bump allocator over the machine's flat memory. Workload
// generators control object layout precisely — the paper's Seq-pref baseline
// (§4.3) behaves very differently on sequentially-allocated streams (parser)
// than on scattered ones (everything else), so allocation order is a
// first-class knob here.
package heap

import (
	"fmt"
	"math/rand"
)

// WordSize is the size of a machine word in bytes.
const WordSize = 8

// Arena is a bump allocator over a word-addressed memory. Addresses are byte
// addresses, always WordSize-aligned.
type Arena struct {
	mem   []uint64
	brk   uint64
	limit uint64
}

// NewArena creates an arena over mem, allocating upward from start (which is
// rounded up to word alignment). Address 0 is conventionally reserved as the
// nil pointer, so start must be positive.
func NewArena(mem []uint64, start uint64) *Arena {
	if start == 0 {
		start = WordSize
	}
	start = (start + WordSize - 1) &^ (WordSize - 1)
	return &Arena{mem: mem, brk: start, limit: uint64(len(mem)) * WordSize}
}

// Alloc reserves size bytes (rounded up to word alignment) and returns the
// address. It panics if the arena is exhausted: workloads are generated with
// known footprints, so exhaustion is a construction bug.
func (a *Arena) Alloc(size uint64) uint64 {
	size = (size + WordSize - 1) &^ (WordSize - 1)
	if a.brk+size > a.limit {
		panic(fmt.Sprintf("heap: arena exhausted: brk=%d size=%d limit=%d", a.brk, size, a.limit))
	}
	addr := a.brk
	a.brk += size
	return addr
}

// AllocWords reserves n words and returns the address.
func (a *Arena) AllocWords(n int) uint64 { return a.Alloc(uint64(n) * WordSize) }

// Skip advances the allocation frontier by size bytes without returning
// them, creating a layout gap that breaks block adjacency between
// consecutively allocated objects.
func (a *Arena) Skip(size uint64) { a.Alloc(size) }

// Used returns the number of bytes allocated so far (including the reserved
// prefix before the start address).
func (a *Arena) Used() uint64 { return a.brk }

// Write stores val at byte address addr.
func (a *Arena) Write(addr, val uint64) { a.mem[addr/WordSize] = val }

// Read returns the word at byte address addr.
func (a *Arena) Read(addr uint64) uint64 { return a.mem[addr/WordSize] }

// Node layout helpers ------------------------------------------------------

// List allocates n nodes of nodeWords words each and links them in logical
// order through the pointer field at word offset nextOff: node[i].next =
// node[i+1], with the final node's next = 0 (nil). The physical placement
// follows perm: node with logical index i is the perm[i]-th object laid out
// in memory. A nil perm places nodes in logical order (sequential layout).
// It returns the node addresses in logical order.
func (a *Arena) List(n, nodeWords, nextOff int, perm []int, gap uint64) []uint64 {
	if perm != nil && len(perm) != n {
		panic("heap: permutation length mismatch")
	}
	slots := make([]uint64, n)
	for i := 0; i < n; i++ {
		slots[i] = a.AllocWords(nodeWords)
		if gap > 0 {
			a.Skip(gap)
		}
	}
	addrs := make([]uint64, n)
	for i := 0; i < n; i++ {
		slot := i
		if perm != nil {
			slot = perm[i]
		}
		addrs[i] = slots[slot]
	}
	for i := 0; i < n; i++ {
		next := uint64(0)
		if i+1 < n {
			next = addrs[i+1]
		}
		a.Write(addrs[i]+uint64(nextOff)*WordSize, next)
	}
	return addrs
}

// Ring links the nodes of a List circularly: the last node points back to
// the first. It returns the node addresses in logical order.
func (a *Arena) Ring(n, nodeWords, nextOff int, perm []int, gap uint64) []uint64 {
	addrs := a.List(n, nodeWords, nextOff, perm, gap)
	a.Write(addrs[n-1]+uint64(nextOff)*WordSize, addrs[0])
	return addrs
}

// Table allocates an array of n pointer words and returns its address. Each
// element is initialized from addrs.
func (a *Arena) Table(addrs []uint64) uint64 {
	base := a.AllocWords(len(addrs))
	for i, p := range addrs {
		a.Write(base+uint64(i)*WordSize, p)
	}
	return base
}

// ShuffledPerm returns a deterministic pseudo-random permutation of [0,n)
// derived from seed. Workloads use it to scatter allocation order so that
// logically consecutive objects land in non-adjacent cache blocks.
func ShuffledPerm(n int, seed int64) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}
