package baseline

import (
	"testing"

	"hotprefetch/internal/memsim"
)

func smallCache() memsim.Config {
	return memsim.Config{
		BlockSize: 32, L1Size: 512, L1Assoc: 2, L2Size: 2048, L2Assoc: 2,
		L2HitLatency: 10, MemLatency: 100,
	}
}

func TestStrideLearnsFixedStride(t *testing.T) {
	h := memsim.New(smallCache())
	s := NewStride(h, 64, 2)
	// pc 7 strides by 64 bytes.
	for i := 0; i < 10; i++ {
		h.Access(uint64(i*200), 7, uint64(0x1000+i*64), false)
	}
	if s.Stats().Trained == 0 || s.Stats().Issued == 0 {
		t.Fatalf("stride prefetcher never trained: %+v", s.Stats())
	}
	// After training, the next blocks along the stride are resident.
	if !h.Contains(1, 0x1000+9*64+64) {
		t.Error("next stride block should be prefetched")
	}
}

func TestStrideIgnoresIrregularAddresses(t *testing.T) {
	h := memsim.New(smallCache())
	s := NewStride(h, 64, 2)
	// Pointer-chase-like pseudo-random deltas at one pc: the §4.3 claim is
	// that hot data stream addresses defeat stride prediction.
	addrs := []uint64{0x1000, 0x5420, 0x2310, 0x7700, 0x120, 0x4448, 0x3330}
	for i, a := range addrs {
		h.Access(uint64(i*200), 9, a, false)
	}
	if s.Stats().Trained != 0 {
		t.Errorf("stride prefetcher trained %d times on irregular stream", s.Stats().Trained)
	}
}

func TestStrideTableConflict(t *testing.T) {
	h := memsim.New(smallCache())
	s := NewStride(h, 1, 1) // single row: every distinct pc conflicts
	h.Access(0, 1, 0x100, false)
	h.Access(1, 2, 0x200, false)
	h.Access(2, 1, 0x300, false)
	if s.Stats().Replaced == 0 {
		t.Error("conflicting pcs must replace the table row")
	}
}

func TestMarkovLearnsMissCorrelation(t *testing.T) {
	h := memsim.New(smallCache())
	m := NewMarkov(h, 1024, 2, 2)
	// A repeating miss sequence: A -> B -> C over a working set that
	// misses every time (3 blocks mapping far apart, cache thrashed by
	// extra traffic).
	seq := []uint64{0x10000, 0x20000, 0x30000}
	now := uint64(0)
	for lap := 0; lap < 6; lap++ {
		for _, a := range seq {
			h.Access(now, 1, a, false)
			now += 200
		}
		// Evict everything with conflicting traffic.
		for i := 0; i < 64; i++ {
			h.Access(now, 2, uint64(0x80000+i*32), false)
			now += 200
		}
	}
	if m.Stats().Learned == 0 {
		t.Fatal("markov prefetcher learned nothing")
	}
	if m.Stats().Issued == 0 {
		t.Fatal("markov prefetcher issued nothing")
	}
	// After training, a miss on A prefetches its learned top successors.
	// (Prefetch feedback perturbs the miss stream during training — hits on
	// prefetched blocks drop out of the correlation chain — so we assert
	// against the model's own learned successors, not the raw sequence.)
	blockA := h.Block(seq[0])
	n, ok := m.nodes[blockA]
	if !ok || len(n.succs) == 0 {
		t.Fatal("no node learned for A")
	}
	before := m.Stats().Issued
	h.Access(now, 1, seq[0], false)
	if m.Stats().Issued == before {
		t.Fatal("miss on a known node must issue prefetches")
	}
	if !h.Contains(1, n.succs[0]*uint64(h.BlockSize())) {
		t.Error("top learned successor should be resident after the trigger miss")
	}
}

func TestMarkovCapacityBounded(t *testing.T) {
	h := memsim.New(smallCache())
	m := NewMarkov(h, 4, 2, 1)
	// Stream of unique misses far beyond capacity.
	for i := 0; i < 100; i++ {
		h.Access(uint64(i*200), 1, uint64(0x100000+i*4096), false)
	}
	if len(m.nodes) > 4 {
		t.Errorf("node table grew to %d, capacity 4", len(m.nodes))
	}
}

func TestMarkovSuccessorMRU(t *testing.T) {
	h := memsim.New(smallCache())
	m := NewMarkov(h, 16, 2, 2)
	// A followed alternately by B, C, D: only 2 successors retained.
	m.learn(1, 2)
	m.learn(1, 3)
	m.learn(1, 4)
	n := m.nodes[1]
	if len(n.succs) != 2 {
		t.Fatalf("successors = %v, want 2 retained", n.succs)
	}
	if n.succs[0] != 4 || n.succs[1] != 3 {
		t.Errorf("succs = %v, want [4 3] (MRU first)", n.succs)
	}
	m.learn(1, 3) // promote 3
	if n.succs[0] != 3 {
		t.Errorf("succs = %v, want 3 promoted to MRU", n.succs)
	}
}

func TestMarkovOnlyMissesDriveModel(t *testing.T) {
	h := memsim.New(smallCache())
	m := NewMarkov(h, 16, 2, 2)
	h.Access(0, 1, 0x100, false) // miss
	h.Access(1, 1, 0x100, false) // hit
	h.Access(2, 1, 0x100, false) // hit
	if m.Stats().Misses != 1 {
		t.Errorf("misses = %d, want 1 (hits must not drive the model)", m.Stats().Misses)
	}
}

func TestNextLineFollowsSequentialRun(t *testing.T) {
	h := memsim.New(smallCache())
	n := NewNextLine(h, 2)
	// Sequential scan: after the first miss, following blocks should be
	// prefetched ahead.
	var misses int
	for i := 0; i < 16; i++ {
		if h.Access(uint64(i*300), 1, uint64(i*32), false) > 0 {
			misses++
		}
	}
	if n.Stats().Issued == 0 {
		t.Fatal("next-line prefetcher issued nothing")
	}
	if misses > 4 {
		t.Errorf("sequential scan stalled %d times with next-line prefetching", misses)
	}
}

func TestNextLineUselessOnScatteredChase(t *testing.T) {
	h := memsim.New(smallCache())
	NewNextLine(h, 2)
	// Pointer-chase: blocks far apart, never sequential.
	addrs := []uint64{0x10000, 0x54000, 0x23000, 0x77000, 0x1000, 0x44000}
	for lap := 0; lap < 4; lap++ {
		for i, a := range addrs {
			h.Access(uint64((lap*len(addrs)+i)*300), 1, a, false)
		}
	}
	st := h.Stats()
	if st.UsefulPrefetches > st.Prefetches/4 {
		t.Errorf("next-line should be mostly useless on a scattered chase: %d/%d useful",
			st.UsefulPrefetches, st.Prefetches)
	}
}
