// Package baseline implements the hardware prefetching schemes the paper
// compares against in its related-work discussion (§5.1): a classic per-PC
// stride prefetcher [7] and a Markov correlation prefetcher in the style of
// Joseph and Grunwald [16].
//
// Both attach to the cache hierarchy as memsim Observers, watching the
// demand access stream and issuing prefetches — the software analog of
// sitting beside the cache controller. They support the paper's §4.3 claim
// that "many [hot data stream addresses] will not be successfully prefetched
// using a simple stride-based prefetching scheme", and quantify how the
// software scheme relates to correlation-based hardware prefetching, its
// closest hardware relative.
package baseline

import "hotprefetch/internal/memsim"

// StrideStats counts stride prefetcher activity.
type StrideStats struct {
	Trained  uint64 // accesses that confirmed a stride
	Issued   uint64 // prefetches issued
	Replaced uint64 // table entries stolen by a different pc
}

// strideEntry is one row of the reference prediction table.
type strideEntry struct {
	pc       int
	lastAddr uint64
	stride   int64
	state    uint8 // 0 = initial, 1 = transient, 2 = steady
}

// Stride is a per-PC stride prefetcher with a direct-mapped reference
// prediction table: when a load pc repeats the same address delta twice, the
// prefetcher issues Degree prefetches ahead along that stride.
type Stride struct {
	h      *memsim.Hierarchy
	table  []strideEntry
	mask   int
	degree int
	stats  StrideStats
}

// NewStride attaches a stride prefetcher with a table of `entries` rows
// (rounded up to a power of two) issuing `degree` blocks ahead.
func NewStride(h *memsim.Hierarchy, entries, degree int) *Stride {
	size := 1
	for size < entries {
		size <<= 1
	}
	s := &Stride{h: h, table: make([]strideEntry, size), mask: size - 1, degree: degree}
	h.SetObserver(s)
	return s
}

// Stats returns the prefetcher's activity counters.
func (s *Stride) Stats() StrideStats { return s.stats }

// OnAccess implements memsim.Observer.
func (s *Stride) OnAccess(now uint64, pc int, addr uint64, l1Hit, l2Hit bool) {
	e := &s.table[pc&s.mask]
	if e.pc != pc {
		// Direct-mapped: a different pc steals the row.
		if e.state != 0 || e.pc != 0 {
			s.stats.Replaced++
		}
		*e = strideEntry{pc: pc, lastAddr: addr}
		return
	}
	delta := int64(addr) - int64(e.lastAddr)
	switch {
	case e.state == 0:
		e.stride = delta
		e.state = 1
	case delta == e.stride && delta != 0:
		if e.state < 2 {
			e.state = 2
		}
		s.stats.Trained++
		for i := 1; i <= s.degree; i++ {
			s.stats.Issued++
			s.h.Prefetch(now, uint64(int64(addr)+int64(i)*e.stride))
		}
	default:
		e.stride = delta
		e.state = 1
	}
	e.lastAddr = addr
}

// MarkovStats counts Markov prefetcher activity.
type MarkovStats struct {
	Misses  uint64 // observed trigger misses
	Learned uint64 // transitions recorded
	Issued  uint64 // prefetches issued
}

// markovNode holds the most-recently-confirmed successors of one miss
// block, MRU first.
type markovNode struct {
	block uint64
	succs []uint64
}

// Markov is a correlation prefetcher after Joseph & Grunwald [16]: nodes are
// miss block addresses, edges are observed miss-successor frequencies
// (approximated by MRU order), and a miss to a known node prefetches its top
// successors. The node table is capacity-bounded with FIFO replacement, as a
// hardware table would be.
type Markov struct {
	h        *memsim.Hierarchy
	nodes    map[uint64]*markovNode
	order    []uint64 // FIFO of node blocks for replacement
	capacity int
	maxSuccs int
	degree   int
	prev     uint64
	hasPrev  bool
	stats    MarkovStats
}

// NewMarkov attaches a Markov prefetcher with the given node capacity,
// successors retained per node, and prefetch degree (successors fetched per
// trigger miss).
func NewMarkov(h *memsim.Hierarchy, capacity, maxSuccs, degree int) *Markov {
	m := &Markov{
		h:        h,
		nodes:    make(map[uint64]*markovNode, capacity),
		capacity: capacity,
		maxSuccs: maxSuccs,
		degree:   degree,
	}
	h.SetObserver(m)
	return m
}

// Stats returns the prefetcher's activity counters.
func (m *Markov) Stats() MarkovStats { return m.stats }

// OnAccess implements memsim.Observer. Only L1 misses drive the model, as in
// the original proposal (prefetching on the miss reference stream).
func (m *Markov) OnAccess(now uint64, pc int, addr uint64, l1Hit, l2Hit bool) {
	if l1Hit {
		return
	}
	block := m.h.Block(addr)
	m.stats.Misses++

	// Learn the transition prev -> block.
	if m.hasPrev && m.prev != block {
		m.learn(m.prev, block)
	}
	m.prev = block
	m.hasPrev = true

	// Predict: prefetch the top successors of this block.
	if n, ok := m.nodes[block]; ok {
		limit := m.degree
		if limit > len(n.succs) {
			limit = len(n.succs)
		}
		bs := uint64(m.h.BlockSize())
		for i := 0; i < limit; i++ {
			m.stats.Issued++
			m.h.Prefetch(now, n.succs[i]*bs)
		}
	}
}

func (m *Markov) learn(from, to uint64) {
	n, ok := m.nodes[from]
	if !ok {
		if len(m.nodes) >= m.capacity {
			victim := m.order[0]
			m.order = m.order[1:]
			delete(m.nodes, victim)
		}
		n = &markovNode{block: from}
		m.nodes[from] = n
		m.order = append(m.order, from)
	}
	// Move `to` to MRU position, or insert it, dropping the LRU successor
	// beyond maxSuccs.
	for i, s := range n.succs {
		if s == to {
			copy(n.succs[1:i+1], n.succs[:i])
			n.succs[0] = to
			return
		}
	}
	m.stats.Learned++
	n.succs = append(n.succs, 0)
	copy(n.succs[1:], n.succs[:len(n.succs)-1])
	n.succs[0] = to
	if len(n.succs) > m.maxSuccs {
		n.succs = n.succs[:m.maxSuccs]
	}
}

// NextLineStats counts next-line prefetcher activity.
type NextLineStats struct {
	Triggers uint64 // misses and first-touches of prefetched lines
	Issued   uint64
}

// NextLine is a tagged next-line prefetcher in the spirit of Jouppi's
// stream buffers (paper reference [17], discussed in §5.1): an L1 miss to
// block B triggers prefetches of B+1..B+Degree, and a first demand touch of
// a prefetched block keeps the run going. It exploits spatially sequential
// access and, like the paper's Seq-pref baseline, cannot follow
// pointer-chased hot data streams.
type NextLine struct {
	h       *memsim.Hierarchy
	degree  int
	tagged  map[uint64]struct{} // blocks we prefetched and have not seen yet
	stats   NextLineStats
	maxTags int
}

// NewNextLine attaches a next-line prefetcher of the given degree.
func NewNextLine(h *memsim.Hierarchy, degree int) *NextLine {
	n := &NextLine{
		h:       h,
		degree:  degree,
		tagged:  make(map[uint64]struct{}),
		maxTags: 4096,
	}
	h.SetObserver(n)
	return n
}

// Stats returns the prefetcher's activity counters.
func (n *NextLine) Stats() NextLineStats { return n.stats }

// OnAccess implements memsim.Observer.
func (n *NextLine) OnAccess(now uint64, pc int, addr uint64, l1Hit, l2Hit bool) {
	block := n.h.Block(addr)
	_, wasTagged := n.tagged[block]
	if wasTagged {
		delete(n.tagged, block)
	}
	if !l1Hit || wasTagged {
		n.stats.Triggers++
		bs := uint64(n.h.BlockSize())
		for i := 1; i <= n.degree; i++ {
			next := block + uint64(i)
			n.stats.Issued++
			n.h.Prefetch(now, next*bs)
			if len(n.tagged) < n.maxTags {
				n.tagged[next] = struct{}{}
			}
		}
	}
}
