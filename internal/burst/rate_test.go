package burst

import (
	"math"
	"testing"
)

// Regression: an all-zero Config used to make SamplingRate and OverallRate
// divide by zero, leaking NaN into the Prometheus gauges built from them.
func TestRatesZeroConfig(t *testing.T) {
	var c Config
	if r := c.SamplingRate(); r != 0 || math.IsNaN(r) {
		t.Errorf("SamplingRate on zero config = %v, want 0", r)
	}
	if r := c.OverallRate(); r != 0 || math.IsNaN(r) {
		t.Errorf("OverallRate on zero config = %v, want 0", r)
	}
	// Partially-zero configs hit the other zero-denominator shapes.
	for _, c := range []Config{
		{NAwake0: 50, NHibernate0: 2450},              // nCheck0+nInstr0 == 0
		{NCheck0: 11940, NInstr0: 60},                 // nAwake0+nHibernate0 == 0
		{NCheck0: -60, NInstr0: 60, NAwake0: 1, NHibernate0: 1}, // negative sum
	} {
		if r := c.SamplingRate(); math.IsNaN(r) || math.IsInf(r, 0) {
			t.Errorf("SamplingRate(%+v) = %v, want finite", c, r)
		}
		if r := c.OverallRate(); math.IsNaN(r) || math.IsInf(r, 0) {
			t.Errorf("OverallRate(%+v) = %v, want finite", c, r)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := PaperConfig().Validate(); err != nil {
		t.Errorf("paper config must validate: %v", err)
	}
	for _, c := range []Config{
		{},
		{NCheck0: 11940, NInstr0: 0, NAwake0: 50, NHibernate0: 2450},
		{NCheck0: 0, NInstr0: 60, NAwake0: 50, NHibernate0: 2450},
		{NCheck0: 11940, NInstr0: 60, NAwake0: 0, NHibernate0: 2450},
		{NCheck0: 11940, NInstr0: 60, NAwake0: 50, NHibernate0: 0},
		{NCheck0: -1, NInstr0: 60, NAwake0: 50, NHibernate0: 2450},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

// The paper's configuration must still report its published rates.
func TestPaperRates(t *testing.T) {
	c := PaperConfig()
	if got, want := c.SamplingRate(), 0.005; got != want {
		t.Errorf("paper SamplingRate = %v, want %v", got, want)
	}
	if got := c.OverallRate(); math.Abs(got-0.0001) > 1e-9 {
		t.Errorf("paper OverallRate = %v, want 0.0001", got)
	}
}
