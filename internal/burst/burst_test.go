package burst

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperConfigRates(t *testing.T) {
	cfg := PaperConfig()
	// §4.1: 0.5% sampling during the active period, bursts of 60 checks.
	if got := cfg.SamplingRate(); math.Abs(got-0.005) > 1e-9 {
		t.Errorf("SamplingRate = %v, want 0.005", got)
	}
	// Overall: awake 50 of 2500 periods -> 1/50th of 0.5% = 0.01%.
	if got := cfg.OverallRate(); math.Abs(got-0.0001) > 1e-9 {
		t.Errorf("OverallRate = %v, want 0.0001", got)
	}
}

func TestBurstStructure(t *testing.T) {
	cfg := Config{NCheck0: 9, NInstr0: 3, NAwake0: 100, NHibernate0: 100}
	c := New(cfg)
	// First 9 checks: checking code (instrumented = false after checks 1-8,
	// true after the 9th which starts the burst).
	for i := 0; i < 8; i++ {
		inst, ended := c.Check()
		if inst || ended {
			t.Fatalf("check %d: got instrumented=%v ended=%v", i, inst, ended)
		}
	}
	inst, _ := c.Check()
	if !inst {
		t.Fatal("9th check must transfer to instrumented code")
	}
	// Burst lasts nInstr0 = 3 checks: 2 more instrumented, then back.
	inst, _ = c.Check()
	if !inst {
		t.Fatal("burst should continue")
	}
	inst, _ = c.Check()
	if !inst {
		t.Fatal("burst should continue for the 3rd instrumented check")
	}
	inst, _ = c.Check()
	if inst {
		t.Fatal("burst should have ended after 3 instrumented checks")
	}
	if got := c.Stats().BurstPeriods; got != 1 {
		t.Errorf("BurstPeriods = %d, want 1", got)
	}
}

// runPeriods drives the controller n checks and returns how many were
// instrumented.
func runChecks(c *Controller, n int) (instrumented int, phaseEnds int) {
	for i := 0; i < n; i++ {
		inst, ended := c.Check()
		if inst {
			instrumented++
		}
		if ended {
			phaseEnds++
			// Mimic the optimizer's phase driving.
			if c.Phase() == Awake {
				c.Hibernate()
			} else {
				c.Wake()
			}
		}
	}
	return
}

func TestAwakePhaseEndsAfterNAwakePeriods(t *testing.T) {
	cfg := Config{NCheck0: 9, NInstr0: 3, NAwake0: 5, NHibernate0: 10}
	c := New(cfg)
	checksPerPeriod := int(cfg.NCheck0 + cfg.NInstr0)
	for i := 0; i < 5*checksPerPeriod-1; i++ {
		_, ended := c.Check()
		if ended {
			t.Fatalf("phase ended early at check %d", i)
		}
	}
	_, ended := c.Check()
	if !ended {
		t.Fatal("awake phase must end after nAwake0 burst-periods")
	}
	if c.Stats().AwakePhases != 1 {
		t.Errorf("AwakePhases = %d, want 1", c.Stats().AwakePhases)
	}
}

func TestHibernationTracesOncePerPeriod(t *testing.T) {
	cfg := Config{NCheck0: 9, NInstr0: 3, NAwake0: 5, NHibernate0: 4}
	c := New(cfg)
	c.Hibernate()
	if c.Phase() != Hibernating {
		t.Fatal("controller should be hibernating")
	}
	// A hibernating burst-period is still nCheck0+nInstr0 = 12 checks long
	// (Figure 3), with exactly one instrumented check.
	checksPerPeriod := int(cfg.NCheck0 + cfg.NInstr0)
	inst := 0
	for i := 0; i < checksPerPeriod; i++ {
		got, ended := c.Check()
		if got {
			inst++
		}
		if ended {
			t.Fatalf("hibernation ended early at check %d", i)
		}
	}
	if inst != 1 {
		t.Errorf("instrumented checks per hibernating period = %d, want 1", inst)
	}
	// After nHibernate0 periods total, the phase ends.
	for i := 0; i < 3*checksPerPeriod-1; i++ {
		_, ended := c.Check()
		if ended {
			t.Fatalf("hibernation ended early in period loop at %d", i)
		}
	}
	_, ended := c.Check()
	if !ended {
		t.Error("hibernation must end after nHibernate0 burst-periods")
	}
}

func TestWakeRestoresCounters(t *testing.T) {
	cfg := Config{NCheck0: 9, NInstr0: 3, NAwake0: 5, NHibernate0: 4}
	c := New(cfg)
	c.Hibernate()
	c.Wake()
	if c.Phase() != Awake {
		t.Fatal("controller should be awake")
	}
	// The first burst after waking starts after nCheck0 checks again.
	for i := 0; i < 8; i++ {
		if inst, _ := c.Check(); inst {
			t.Fatalf("instrumented too early after wake at check %d", i)
		}
	}
	if inst, _ := c.Check(); !inst {
		t.Error("burst should begin on the 9th check after wake")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{NCheck0: 7, NInstr0: 2, NAwake0: 3, NHibernate0: 6}
	run := func() []bool {
		c := New(cfg)
		out := make([]bool, 500)
		for i := range out {
			inst, ended := c.Check()
			out[i] = inst
			if ended {
				if c.Phase() == Awake {
					c.Hibernate()
				} else {
					c.Wake()
				}
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at check %d", i)
		}
	}
}

// Property: over full awake/hibernate cycles, the fraction of instrumented
// checks approximates the configured overall sampling rate (§2.2).
func TestPropertySamplingRateConverges(t *testing.T) {
	f := func(seed uint8) bool {
		nCheck := int64(seed%20) + 5
		cfg := Config{NCheck0: nCheck, NInstr0: 2, NAwake0: 4, NHibernate0: 8}
		c := New(cfg)
		checksPerPeriod := cfg.NCheck0 + cfg.NInstr0
		totalChecks := int(checksPerPeriod * (cfg.NAwake0 + cfg.NHibernate0) * 10)
		instrumented, _ := runChecks(c, totalChecks)

		// During hibernation, 1 check per period is instrumented (but its
		// refs are ignored); the awake-phase instrumented fraction is what
		// approximates the overall rate. Count only awake instrumented
		// checks for the comparison.
		awakeInstr := instrumented - 10*int(cfg.NHibernate0) // 1 per hib period
		got := float64(awakeInstr) / float64(totalChecks)
		want := cfg.OverallRate()
		return math.Abs(got-want)/want < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: burst-periods have identical length in executed checks in both
// phases (Figure 3's design goal).
func TestPropertyPeriodLengthPhaseInvariant(t *testing.T) {
	f := func(a, b uint8) bool {
		cfg := Config{
			NCheck0: int64(a%30) + 2, NInstr0: int64(b%5) + 1,
			NAwake0: 3, NHibernate0: 3,
		}
		perPeriod := int(cfg.NCheck0 + cfg.NInstr0)

		// Awake: count checks until the first period completes.
		c := New(cfg)
		n := 0
		for {
			n++
			c.Check()
			if c.Stats().BurstPeriods == 1 {
				break
			}
		}
		if n != perPeriod {
			return false
		}

		// Hibernating: same length.
		c2 := New(cfg)
		c2.Hibernate()
		n = 0
		for {
			n++
			c2.Check()
			if c2.Stats().BurstPeriods == 1 {
				break
			}
		}
		return n == perPeriod
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCheck(b *testing.B) {
	c := New(PaperConfig())
	for i := 0; i < b.N; i++ {
		_, ended := c.Check()
		if ended {
			if c.Phase() == Awake {
				c.Hibernate()
			} else {
				c.Wake()
			}
		}
	}
}

// TestSkipMatchesChecks is the differential check for the batch fast path:
// interleaving Skip calls of arbitrary sizes with single Checks must drive
// the controller through exactly the same trajectory as per-check stepping,
// since every skipped check would have returned (false, false).
func TestSkipMatchesChecks(t *testing.T) {
	cfg := Config{NCheck0: 37, NInstr0: 5, NAwake0: 3, NHibernate0: 4}
	batched, stepped := New(cfg), New(cfg)
	phaseFlip := func(c *Controller, ended bool) {
		if !ended {
			return
		}
		if c.Awake() {
			c.Hibernate()
		} else {
			c.Wake()
		}
	}
	rng := uint64(1)
	total := 0
	for total < 200000 {
		rng = rng*6364136223846793005 + 1442695040888963407
		want := int64(rng>>33)%23 + 1
		n := batched.Skip(want)
		if n > want {
			t.Fatalf("Skip(%d) consumed %d", want, n)
		}
		for i := int64(0); i < n; i++ {
			inst, ended := stepped.Check()
			if inst || ended {
				t.Fatalf("skipped check %d/%d was not a quiet checking step (instrumented=%v ended=%v)", i, n, inst, ended)
			}
		}
		bi, be := batched.Check()
		si, se := stepped.Check()
		if bi != si || be != se {
			t.Fatalf("after %d checks: batched (%v,%v) != stepped (%v,%v)", total, bi, be, si, se)
		}
		phaseFlip(batched, be)
		phaseFlip(stepped, se)
		total += int(n) + 1
		if batched.Stats() != stepped.Stats() {
			t.Fatalf("stats diverged: %+v vs %+v", batched.Stats(), stepped.Stats())
		}
		if batched.Phase() != stepped.Phase() {
			t.Fatalf("phase diverged: %v vs %v", batched.Phase(), stepped.Phase())
		}
	}
}

// TestSkipRefusesInstrumented pins Skip's boundary behavior: no progress in
// instrumented code, and never consuming the check that would transfer.
func TestSkipRefusesInstrumented(t *testing.T) {
	c := New(Config{NCheck0: 5, NInstr0: 2, NAwake0: 10, NHibernate0: 10})
	if n := c.Skip(100); n != 4 {
		t.Fatalf("Skip(100) = %d, want 4 (nCheck0-1)", n)
	}
	if n := c.Skip(100); n != 0 {
		t.Fatalf("Skip at transfer boundary = %d, want 0", n)
	}
	if inst, _ := c.Check(); !inst {
		t.Fatal("transfer check not instrumented after Skip left it in place")
	}
	if n := c.Skip(100); n != 0 {
		t.Fatalf("Skip in instrumented code = %d, want 0", n)
	}
}
