// Package burst implements the bursty tracing profiling framework of the
// paper's §2.1–2.2 (Figures 2 and 3), an extension of the Arnold-Ryder
// counter-based sampling scheme.
//
// Procedure code exists in two versions — checking and instrumented — that
// transfer control to each other at checks placed at procedure entries and
// loop back-edges. A pair of counters decides where execution continues:
//
//   - in checking code, nCheck is decremented at every check; when it
//     reaches zero, nInstr is initialized to nInstr0 and control moves to
//     the instrumented code, beginning a profiling burst;
//   - in instrumented code, nInstr is decremented at every check; when it
//     reaches zero, nCheck is reinitialized to nCheck0 and control returns
//     to the checking code.
//
// nCheck0+nInstr0 dynamic checks form one burst-period. For online
// optimization the framework alternates between an awake phase (nAwake0
// burst-periods of real tracing) and a hibernating phase (nHibernate0
// burst-periods during which nCheck0' = nCheck0+nInstr0-1 and nInstr0' = 1,
// so the profiler enters instrumented code only once per burst-period and
// traces next to nothing). Everything is deterministic.
package burst

import "fmt"

// Phase identifies the profiler's current phase.
type Phase int

const (
	// Awake is the active profiling phase.
	Awake Phase = iota
	// Hibernating is the low-overhead phase during which the program runs
	// with injected prefetching and (virtually) no tracing.
	Hibernating
)

func (p Phase) String() string {
	if p == Awake {
		return "awake"
	}
	return "hibernating"
}

// Config holds the four counters of the extended framework plus the modeled
// cost of one dynamic check.
type Config struct {
	NCheck0     int64 // checks spent in checking code per burst-period
	NInstr0     int64 // checks spent in instrumented code per burst-period
	NAwake0     int64 // burst-periods per awake phase
	NHibernate0 int64 // burst-periods per hibernating phase

	// CheckCost is the cycle cost of one dynamic check (the "Base"
	// overhead of the paper's Figure 11). The paper measures 2.5–6%
	// total from checks alone.
	CheckCost uint64
}

// PaperConfig returns the settings of the paper's §4.1: a 0.5% sampling
// rate with bursts of 60 checks (nCheck0 = 11940, nInstr0 = 60), awake for
// 50 burst-periods out of every 2500 (1 second of every 50).
func PaperConfig() Config {
	return Config{
		NCheck0:     11940,
		NInstr0:     60,
		NAwake0:     50,
		NHibernate0: 2450,
		CheckCost:   2,
	}
}

// SamplingRate returns the awake-phase sampling rate nInstr0 /
// (nInstr0 + nCheck0). An all-zero (or otherwise degenerate) configuration
// reports 0 rather than NaN, so the rate can be exported as a gauge without
// poisoning the scrape.
func (c Config) SamplingRate() float64 {
	if c.NInstr0+c.NCheck0 <= 0 {
		return 0
	}
	return float64(c.NInstr0) / float64(c.NInstr0+c.NCheck0)
}

// OverallRate returns the long-run sampling rate including hibernation
// (§2.2): (nAwake0*nInstr0) / ((nAwake0+nHibernate0)*(nInstr0+nCheck0)).
// Like SamplingRate, a zero denominator reports 0, never NaN.
func (c Config) OverallRate() float64 {
	d := float64(c.NAwake0+c.NHibernate0) * float64(c.NInstr0+c.NCheck0)
	if d <= 0 {
		return 0
	}
	return float64(c.NAwake0*c.NInstr0) / d
}

// Validate reports whether the counter configuration can drive a controller:
// every counter must be positive, or the burst-period state machine divides
// its phase lengths by zero and the exported sampling-rate gauges go NaN.
func (c Config) Validate() error {
	if c.NCheck0 < 1 || c.NInstr0 < 1 || c.NAwake0 < 1 || c.NHibernate0 < 1 {
		return fmt.Errorf("burst: non-positive counter (nCheck0 %d, nInstr0 %d, nAwake0 %d, nHibernate0 %d); every counter must be >= 1",
			c.NCheck0, c.NInstr0, c.NAwake0, c.NHibernate0)
	}
	return nil
}

// Stats counts controller activity.
type Stats struct {
	Checks       uint64 // dynamic checks executed
	BurstPeriods uint64 // burst-periods completed
	AwakePhases  uint64 // awake phases completed
}

// Controller decides, at every dynamic check, whether execution continues
// in the checking or the instrumented version of the code, and tracks phase
// boundaries. The zero value is not usable; call New.
type Controller struct {
	cfg Config

	// Effective counters for the current phase (hibernation overrides).
	nCheck0, nInstr0 int64

	nCheck, nInstr int64
	instrumented   bool
	phase          Phase
	periodsInPhase int64
	stats          Stats
}

// New returns a controller starting at the beginning of an awake phase, in
// checking code, exactly as the framework starts up (§2.1).
func New(cfg Config) *Controller {
	c := &Controller{cfg: cfg}
	c.enterPhase(Awake)
	return c
}

func (c *Controller) enterPhase(p Phase) {
	c.phase = p
	c.periodsInPhase = 0
	if p == Awake {
		c.nCheck0 = c.cfg.NCheck0
		c.nInstr0 = c.cfg.NInstr0
	} else {
		// Hibernation: one instrumented check per burst-period so periods
		// keep the same length in executed checks (Figure 3).
		c.nCheck0 = c.cfg.NCheck0 + c.cfg.NInstr0 - 1
		c.nInstr0 = 1
	}
	c.nCheck = c.nCheck0
	c.nInstr = 0
	c.instrumented = false
}

// Phase returns the current phase.
func (c *Controller) Phase() Phase { return c.phase }

// Awake reports whether the profiler is in its awake phase. Data references
// traced during hibernation are ignored by the profiling pipeline to avoid
// trace contamination (§2.4).
func (c *Controller) Awake() bool { return c.phase == Awake }

// Stats returns a snapshot of the activity counters.
func (c *Controller) Stats() Stats { return c.stats }

// CheckCost returns the configured cost of one dynamic check.
func (c *Controller) CheckCost() uint64 { return c.cfg.CheckCost }

// Check executes one dynamic check. It returns whether execution continues
// in the instrumented version, and whether the current phase just completed
// (the caller — the online optimizer — then either runs its analysis and
// calls Hibernate, or deoptimizes and calls Wake).
func (c *Controller) Check() (instrumented, phaseEnded bool) {
	c.stats.Checks++
	if !c.instrumented {
		c.nCheck--
		if c.nCheck <= 0 {
			c.nInstr = c.nInstr0
			c.instrumented = true
		}
		return c.instrumented, false
	}
	c.nInstr--
	if c.nInstr <= 0 {
		c.nCheck = c.nCheck0
		c.instrumented = false
		c.stats.BurstPeriods++
		c.periodsInPhase++
		switch c.phase {
		case Awake:
			if c.periodsInPhase >= c.cfg.NAwake0 {
				c.stats.AwakePhases++
				return false, true
			}
		case Hibernating:
			if c.periodsInPhase >= c.cfg.NHibernate0 {
				return false, true
			}
		}
	}
	return c.instrumented, false
}

// Skip consumes up to n dynamic checks in bulk while execution is in
// checking code, without ever transferring to instrumented code: it leaves
// at least one check on the counter, so the check that would transfer still
// goes through Check one at a time. It returns how many checks were
// consumed — zero when the controller is in instrumented code or about to
// transfer.
//
// Skip is the batch front end's fast path: a full-rate producer hands a
// whole batch to the controller, and the checking-phase portion is charged
// in one subtraction instead of one Check call per reference — the paper's
// "~2 cycles per check" (Figure 11 Base) collapses to O(1) per batch.
// Skipping n checks is observably identical to n Check calls returning
// (false, false).
func (c *Controller) Skip(n int64) int64 {
	if c.instrumented || n <= 0 {
		return 0
	}
	k := c.nCheck - 1
	if k <= 0 {
		return 0
	}
	if k > n {
		k = n
	}
	c.nCheck -= k
	c.stats.Checks += uint64(k)
	return k
}

// Hibernate switches the controller into the hibernating phase. The online
// optimizer calls this after finishing its analysis and injecting
// prefetching code.
func (c *Controller) Hibernate() { c.enterPhase(Hibernating) }

// Wake switches the controller back into the awake phase, restoring the
// original counters. The optimizer calls this after de-optimizing.
func (c *Controller) Wake() { c.enterPhase(Awake) }
