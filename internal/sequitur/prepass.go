package sequitur

// Two-level ingest compression: a phrase-collapsing front end in front of
// the Sequitur digram machinery.
//
// AppendRun already amortizes digram-table epochs across a run, but every
// reference still walks the full check/match path — one table probe, and on
// duplicates a restructuring — which floors batched ingest in the hundreds
// of nanoseconds per reference. Hot data streams are by construction highly
// repetitive (the paper's whole premise), so most references arrive as part
// of a phrase the grammar has already seen. The Prepass exploits that with
// two allocation-free recognizers that run before the grammar proper:
//
//   - a run collapser that turns k >= MinRun immediate repeats of one
//     symbol into O(log k) appends of lazily-minted doubling rules
//     (R1 -> v v, R2 -> R1 R1, ...), instead of k digram-table epochs;
//
//   - a direct-mapped recent-phrase cache over a rolling hash of
//     Window-symbol windows: a window whose content matches an
//     already-minted rule's expansion is emitted as that single rule
//     symbol via AppendRule, skipping the digram-table epoch for the whole
//     window. A window seen for the second time (candidate hit) mints a
//     pinned rule whose RHS is the window's terminals.
//
// Only residual novel symbols reach Grammar.AppendRun. The resulting
// grammar is no longer bit-identical to the sequential path, but it is
// content-lossless: Snapshot().Expand(0) reproduces the input exactly
// (FuzzPrepassEquivalence enforces this), so hot-stream extraction sees the
// same trace — equivalence-after-expansion replaces bit-identity as the
// correctness bar (DESIGN.md §12).
//
// # Why minted rules are safe
//
// Minted rules break two Sequitur bookkeeping conventions, deliberately:
//
//   - Their internal digrams are not registered in the digram table. A
//     missing table entry only costs dedup opportunities (a duplicate in
//     the residual stream won't fold into the minted rule); no operation
//     requires the table to be complete, and deleteDigram/delOwned are
//     ownership-checked no-ops for unregistered digrams.
//
//   - Each minted rule carries a phantom +1 on its reference count — the
//     cache's own reference. Rule deletion happens only in expand(), which
//     fires only on an exact count of 1; a pinned rule referenced by n live
//     nonterminals has count n+1 >= 2 whenever a nonterminal exists to be
//     expanded, so a cached rule index stays valid (and its expansion
//     fixed) until Grammar.Reset. Minted entries are sticky: a candidate
//     never replaces a minted slot, so a hot phrase keeps one rule id for
//     the whole cycle and its heat accrues to one rule instead of
//     splintering across re-mints. A phrase that loses the slot race to an
//     earlier mint stays residual — still consistently encoded, just by
//     the digram machinery instead of the cache.
//
// Sequitur restructuring never changes a rule's expansion, only its
// representation, so a cached rule symbol appended later always expands to
// the cached phrase.
type Prepass struct {
	g *Grammar

	window int
	minRun int
	shift  uint // 64 - log2(len(entries)); multiplicative slot hash
	powW   uint64

	entries []phraseEntry
	phrases []uint64 // flat storage: entry i's phrase at [i*window, (i+1)*window)

	runs []runEntry

	// Cumulative counters; reset with the grammar (Reset).
	collapsed uint64 // input refs emitted through rule symbols, bypassing AppendRun
	minted    uint64 // rules minted (phrase rules + run doubling levels)
	hits      uint64 // phrase-cache hits on minted rules
	runRefs   uint64 // refs consumed by the run collapser
}

// PrepassConfig tunes a Prepass. The zero value selects the defaults.
type PrepassConfig struct {
	// Window is the phrase length in symbols (0 means 8). Kept below the
	// default hot-stream MinLen of 10 so a lone phrase rule is never itself
	// reported as a stream; composite rules built from phrase symbols carry
	// the streams.
	Window int

	// MinRun is the shortest immediate-repeat run the run collapser takes
	// over (0 means 4). Shorter runs go through the grammar, whose
	// overlapping-digram handling ("aaa") is already linear.
	MinRun int

	// CacheSize is the number of direct-mapped phrase slots, rounded up to
	// a power of two (0 means 1024).
	CacheSize int
}

// Prepass defaults.
const (
	defaultPrepassWindow    = 8
	defaultPrepassMinRun    = 4
	defaultPrepassCacheSize = 1024

	// phraseHashBase is the odd multiplier of the rolling polynomial hash.
	phraseHashBase = 0x9E3779B97F4A7C15

	// phraseSlotMix turns the rolling hash into a slot index by
	// multiplicative hashing (take the high bits of h * odd constant).
	phraseSlotMix = 0xD6E8FEB86659FD93

	// maxRunLevels caps the doubling chain per symbol: level j expands to
	// 2^(j+1) copies, so 21 levels cover runs beyond 4M references in one
	// rule symbol; longer runs just repeat the top level.
	maxRunLevels = 21

	// runSlots is the direct-mapped run-cache size. Runs are dominated by a
	// handful of symbols (zero fills, sentinel scans), so a small cache
	// keeps the doubling chains hot without measurable footprint.
	runSlots = 64
)

// phraseEntry states.
const (
	phraseEmpty uint8 = iota
	phraseCandidate
	phraseMinted
)

type phraseEntry struct {
	hash  uint64
	rule  uint32
	state uint8
}

type runEntry struct {
	sym    uint64
	used   bool
	n      uint8 // minted levels: levels[j] expands to 2^(j+1) copies of sym
	levels [maxRunLevels]uint32
}

func (c PrepassConfig) withDefaults() PrepassConfig {
	if c.Window <= 0 {
		c.Window = defaultPrepassWindow
	}
	if c.Window < 2 {
		c.Window = 2
	}
	if c.MinRun <= 0 {
		c.MinRun = defaultPrepassMinRun
	}
	if c.MinRun < 2 {
		c.MinRun = 2
	}
	if c.CacheSize <= 0 {
		c.CacheSize = defaultPrepassCacheSize
	}
	// Round CacheSize up to a power of two for the multiplicative slot hash.
	size := 1
	for size < c.CacheSize {
		size <<= 1
	}
	c.CacheSize = size
	return c
}

// NewPrepass returns a phrase-collapsing front end feeding g. All cache
// storage is allocated here; Append and Reset are allocation-free in steady
// state. The Prepass owns rule references inside g, so it must be Reset
// whenever g is (Profile.Reset does both).
func NewPrepass(g *Grammar, cfg PrepassConfig) *Prepass {
	cfg = cfg.withDefaults()
	shift := uint(64)
	for s := cfg.CacheSize; s > 1; s >>= 1 {
		shift--
	}
	powW := uint64(1)
	for i := 0; i < cfg.Window-1; i++ {
		powW *= phraseHashBase
	}
	return &Prepass{
		g:       g,
		window:  cfg.Window,
		minRun:  cfg.MinRun,
		shift:   shift,
		powW:    powW,
		entries: make([]phraseEntry, cfg.CacheSize),
		phrases: make([]uint64, cfg.CacheSize*cfg.Window),
		runs:    make([]runEntry, runSlots),
	}
}

// Reset clears the caches and counters. It must be called whenever the
// underlying grammar is Reset: cached rule indices are only valid for the
// grammar incarnation that minted them.
func (p *Prepass) Reset() {
	clear(p.entries)
	clear(p.runs)
	p.collapsed = 0
	p.minted = 0
	p.hits = 0
	p.runRefs = 0
}

// Collapsed returns the cumulative number of input references emitted as
// rule symbols — references that bypassed the per-symbol digram machinery.
// Always <= the total references appended since the last Reset.
func (p *Prepass) Collapsed() uint64 { return p.collapsed }

// Minted returns the cumulative number of rules the front end has minted
// (phrase rules plus run doubling levels) since the last Reset.
func (p *Prepass) Minted() uint64 { return p.minted }

// Hits returns the cumulative minted-phrase cache hits since the last Reset.
func (p *Prepass) Hits() uint64 { return p.hits }

// Append feeds a run of terminals through the front end and on into the
// grammar. The front end is stateless across calls (phrase windows and runs
// never straddle an Append boundary), so interleaving Append with the
// grammar's own Append/AppendRun stays content-exact.
func (p *Prepass) Append(vs []uint64) {
	n := len(vs)
	if n == 0 {
		return
	}
	w := p.window
	res := 0       // start of the pending residual span
	noRunScan := 0 // positions below this are inside an already-measured short run
	hashPos := -1  // position the rolling hash h corresponds to, -1 = stale
	var h uint64

	i := 0
	for i < n {
		// Run collapse: a cheap adjacency test first, the full count only
		// when it fires. Short runs are remembered via noRunScan so the
		// measured span is never recounted (keeps the scan linear).
		if i >= noRunScan && i+1 < n && vs[i] == vs[i+1] {
			k := 2
			for i+k < n && vs[i+k] == vs[i] {
				k++
			}
			if k >= p.minRun {
				p.flush(vs[res:i])
				p.emitRun(vs[i], k)
				i += k
				res = i
				hashPos = -1
				continue
			}
			noRunScan = i + k
		}

		// Phrase cache: only when a full window fits in this batch.
		if i+w <= n {
			if hashPos != i {
				h = p.fullHash(vs[i:])
				hashPos = i
			}
			slot := int((h * phraseSlotMix) >> p.shift)
			e := &p.entries[slot]
			stored := p.phrases[slot*w : slot*w+w]
			if e.state != phraseEmpty && e.hash == h && equalWindow(stored, vs[i:i+w]) {
				if e.state == phraseMinted {
					p.flush(vs[res:i])
					p.g.AppendRule(e.rule, uint64(w))
					p.collapsed += uint64(w)
					p.hits++
				} else {
					// Second sighting: mint a pinned rule for the phrase
					// and emit this occurrence as the rule symbol. The
					// first occurrence already went in as residual
					// terminals; both expand to the same content.
					p.flush(vs[res:i])
					e.rule = p.g.mintPhrase(vs[i : i+w])
					e.state = phraseMinted
					p.minted++
					p.g.AppendRule(e.rule, uint64(w))
					p.collapsed += uint64(w)
				}
				i += w
				res = i
				hashPos = -1
				continue
			}
			// Miss: install this window as the slot's candidate — unless the
			// slot holds a minted rule. Minted entries are sticky until
			// Reset: in a direct-mapped cache nearly every position is a
			// miss, so letting one-off noise windows evict minted phrases
			// would re-mint a hot phrase under a fresh rule id on every
			// recurrence, splintering its heat across variant rules and
			// hiding it from hot-stream analysis. A phrase that loses the
			// slot race is simply never collapsed — its occurrences reach
			// the digram machinery as residual, consistently.
			if e.state != phraseMinted {
				e.hash = h
				e.rule = 0
				e.state = phraseCandidate
				copy(stored, vs[i:i+w])
			}
			// Roll the hash one position for the next iteration.
			if i+w < n {
				h = (h-vs[i]*p.powW)*phraseHashBase + vs[i+w]
				hashPos = i + 1
			} else {
				hashPos = -1
			}
		}
		i++
	}
	p.flush(vs[res:n])
}

// flush hands a residual span of novel symbols to the grammar's batch path.
func (p *Prepass) flush(vs []uint64) {
	if len(vs) > 0 {
		p.g.AppendRun(vs)
	}
}

// fullHash computes the polynomial hash of the window starting at vs[0].
func (p *Prepass) fullHash(vs []uint64) uint64 {
	var h uint64
	for i := 0; i < p.window; i++ {
		h = h*phraseHashBase + vs[i]
	}
	return h
}

func equalWindow(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// emitRun appends k copies of v (k >= minRun) as a greedy binary
// decomposition over the symbol's doubling chain: the largest minted level
// whose expansion fits is appended, repeatedly, with a single terminal
// Append for an odd leftover — O(log k) grammar operations total.
func (p *Prepass) emitRun(v uint64, k int) {
	e := p.runSlot(v)
	rem := k
	for rem > 1 {
		// Largest level j with 2^(j+1) <= rem.
		j := 0
		for rem>>(j+2) > 0 && j+1 < maxRunLevels {
			j++
		}
		p.ensureLevels(e, v, j)
		p.g.AppendRule(e.levels[j], 1<<(j+1))
		rem -= 1 << (j + 1)
	}
	p.collapsed += uint64(k - rem)
	p.runRefs += uint64(k)
	if rem == 1 {
		p.g.Append(v)
	}
}

// runSlot returns the direct-mapped run-cache entry for v, evicting any
// previous occupant (its doubling chain stays pinned in the grammar).
func (p *Prepass) runSlot(v uint64) *runEntry {
	slot := (v * phraseSlotMix) >> (64 - 6) // runSlots == 64
	e := &p.runs[slot]
	if !e.used || e.sym != v {
		*e = runEntry{sym: v, used: true}
	}
	return e
}

// ensureLevels mints doubling levels for e.sym up through level j:
// level 0 -> (v, v), level m -> (level m-1, level m-1).
func (p *Prepass) ensureLevels(e *runEntry, v uint64, j int) {
	for int(e.n) <= j {
		var r uint32
		if e.n == 0 {
			pair := [2]uint64{v, v}
			r = p.g.mintPhrase(pair[:])
		} else {
			r = p.g.mintPair(e.levels[e.n-1])
		}
		e.levels[e.n] = r
		e.n++
		p.minted++
	}
}

// AppendRule appends a nonterminal referencing rule r to the end of the
// input, where r's expansion has expLen terminals. It is the front end's
// collapsed-emission primitive: structurally it is Append with a rule
// symbol, so digram uniqueness is restored around the new tail and the
// sequence of rule symbols itself compresses (a hot stream emitted as the
// same phrase-rule sequence folds into higher-level rules exactly as its
// raw terminals would have).
//
// r must be a live rule that the caller guarantees survives restructuring —
// either pinned (minted by the Prepass) or known to be referenced elsewhere.
func (g *Grammar) AppendRule(r uint32, expLen uint64) {
	g.length += expLen
	s := g.alloc(ruleID(r))
	g.insertAfter(g.last(g.start), s)
	if prev := g.sym(s).prev; !g.sym(prev).isGuard() {
		g.check(prev)
	}
}

// mintPhrase creates a pinned rule whose right-hand side is vs verbatim.
// Internal digrams are deliberately not registered (see the package comment
// on why that is safe), and the phantom count pins the rule for the
// grammar's lifetime.
func (g *Grammar) mintPhrase(vs []uint64) uint32 {
	r := g.newRule()
	for _, v := range vs {
		s := g.alloc(termID(v))
		g.insertAfter(g.last(r), s)
	}
	g.rules[r].count++ // phantom: the prepass cache's own reference
	return r
}

// mintPair creates a pinned rule whose right-hand side is two references to
// rule sub — one doubling level of a run chain.
func (g *Grammar) mintPair(sub uint32) uint32 {
	r := g.newRule()
	s1 := g.alloc(ruleID(sub))
	g.insertAfter(g.last(r), s1)
	s2 := g.alloc(ruleID(sub))
	g.insertAfter(g.last(r), s2)
	g.rules[r].count++ // phantom: the prepass cache's own reference
	return r
}
