package sequitur

import (
	"bytes"
	"testing"
)

// digramSet returns the table contents as a map from packed digram key to
// owning arena index — the physical layout (slot order, capacity) may differ
// between two grammars, but the contents must not.
func (g *Grammar) digramSet() map[[2]uint64]uint32 {
	out := make(map[[2]uint64]uint32, g.digrams.n)
	for i := range g.digrams.entries {
		if e := &g.digrams.entries[i]; e.used {
			out[[2]uint64{e.k0, e.k1}] = e.sym
		}
	}
	return out
}

// requireIdentical asserts that two grammars built from the same input are
// bit-identical: same counters, same arena allocation state, same expansion,
// and the same digram table contents including owners (owners are arena
// indices, so matching owners means the structural operation sequences were
// identical, not merely equivalent).
func requireIdentical(t *testing.T, got, want *Grammar) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), want.Len())
	}
	if got.Size() != want.Size() {
		t.Fatalf("Size = %d, want %d", got.Size(), want.Size())
	}
	if got.NumRules() != want.NumRules() {
		t.Fatalf("NumRules = %d, want %d", got.NumRules(), want.NumRules())
	}
	if got.used != want.used {
		t.Fatalf("arena slots used = %d, want %d", got.used, want.used)
	}
	if len(got.freeSyms) != len(want.freeSyms) {
		t.Fatalf("free symbols = %d, want %d", len(got.freeSyms), len(want.freeSyms))
	}
	if got.start != want.start {
		t.Fatalf("start rule = %d, want %d", got.start, want.start)
	}
	gd, wd := got.digramSet(), want.digramSet()
	if len(gd) != len(wd) {
		t.Fatalf("digram table holds %d entries, want %d", len(gd), len(wd))
	}
	for k, sym := range wd {
		if gsym, ok := gd[k]; !ok {
			t.Fatalf("digram %v missing", k)
		} else if gsym != sym {
			t.Fatalf("digram %v owned by %d, want %d", k, gsym, sym)
		}
	}
	ge, we := got.Snapshot().Expand(0), want.Snapshot().Expand(0)
	if len(ge) != len(we) {
		t.Fatalf("expansion length %d, want %d", len(ge), len(we))
	}
	for i := range ge {
		if ge[i] != we[i] {
			t.Fatalf("expansion differs at %d: %d != %d", i, ge[i], we[i])
		}
	}
}

// chunked splits data into run lengths derived from seed (1..8 values per
// run), so the fuzzer exercises run boundaries everywhere in the input.
func chunked(g *Grammar, vals []uint64, seed uint64) {
	for len(vals) > 0 {
		n := int(seed&7) + 1
		seed = seed>>3 | seed<<61
		if n > len(vals) {
			n = len(vals)
		}
		g.AppendRun(vals[:n])
		vals = vals[n:]
	}
}

func toVals(data []byte) []uint64 {
	vals := make([]uint64, len(data))
	for i, b := range data {
		vals[i] = uint64(b)
	}
	return vals
}

// TestAppendRunMatchesAppend pins the batch path to the sequential path on
// the classic Sequitur inputs, both as one whole-input run and split into
// small runs.
func TestAppendRunMatchesAppend(t *testing.T) {
	inputs := [][]byte{
		[]byte("abaabcabcabcabc"),
		[]byte("aaaa"),
		[]byte("aaaaaaaa"),
		[]byte(""),
		[]byte("abcabcabdabcabd"),
		bytes.Repeat([]byte("xy"), 50),
		bytes.Repeat([]byte("a"), 257),
		[]byte("abcdabcd_abcdabcd_abcdabcd_"),
	}
	for _, data := range inputs {
		vals := toVals(data)
		seq := New()
		seq.AppendAll(vals)

		whole := New()
		whole.AppendRun(vals)
		requireIdentical(t, whole, seq)

		split := New()
		chunked(split, vals, 0x9e3779b97f4a7c15)
		requireIdentical(t, split, seq)
	}
}

// TestAppendRunAfterReset checks that a recycled grammar accepts runs and
// still matches the sequential path (reserve and the scratch buffers must
// survive Reset).
func TestAppendRunAfterReset(t *testing.T) {
	vals := toVals(bytes.Repeat([]byte("abcabcabd"), 40))
	g := New()
	g.AppendRun(vals)
	g.Reset()
	g.AppendRun(vals)
	seq := New()
	seq.AppendAll(vals)
	requireIdentical(t, g, seq)
}

// TestAppendRunSteadyStateAllocs mirrors TestResetRetainsCapacity for the
// batch path: once the arena and table are warm, fill/reset cycles through
// AppendRun must not allocate.
func TestAppendRunSteadyStateAllocs(t *testing.T) {
	vals := toVals(bytes.Repeat([]byte("abcabcabdabdz"), 64))
	g := New()
	g.AppendRun(vals)
	g.Reset()
	allocs := testing.AllocsPerRun(10, func() {
		g.AppendRun(vals)
		g.Reset()
	})
	if allocs > 0 {
		t.Errorf("fill/reset cycle via AppendRun allocated %.1f times, want 0", allocs)
	}
}

// FuzzAppendRun is the differential gate for the batch-aware append: an
// arbitrary input split into arbitrary runs must leave the grammar
// bit-identical to sequential Append calls — same rules, symbol counts,
// arena state, and digram-table contents (with owners).
func FuzzAppendRun(f *testing.F) {
	f.Add([]byte("abaabcabcabcabc"), uint64(0))
	f.Add([]byte("aaaaaaaaaaaa"), uint64(1))
	f.Add([]byte(""), uint64(7))
	f.Add([]byte("abcabcabdabcabd"), uint64(0x12345678))
	f.Add(bytes.Repeat([]byte("xy"), 50), uint64(3))
	f.Add(bytes.Repeat([]byte("a"), 257), uint64(0xffffffffffffffff))
	f.Add([]byte("abcdabcd_abcdabcd_abcdabcd_"), uint64(0x9e3779b97f4a7c15))

	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		vals := toVals(data)
		seq := New()
		seq.AppendAll(vals)
		run := New()
		chunked(run, vals, seed)
		requireIdentical(t, run, seq)
	})
}
