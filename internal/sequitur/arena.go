package sequitur

// Arena storage for grammar symbols and rules.
//
// The profiling hot path appends one symbol per sampled data reference, so
// per-symbol heap allocation and map traffic dominate ingestion cost. Symbols
// live in a slab arena grown in fixed-size chunks and are addressed by dense
// uint32 indices; chunks are never reallocated, so &slab[c][o] stays valid for
// the grammar's lifetime. Removed symbols and rules go on freelists and are
// recycled, which makes steady-state appends (a grammar that is compressing
// well) allocation-free.

const (
	chunkShift = 12
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1

	// nilSym marks an unlinked symbol pointer.
	nilSym = ^uint32(0)
)

// symNode is a symbol in a rule's circular doubly-linked right-hand side,
// the arena analog of a pointer-linked Sequitur symbol.
//
// id is the symbol's identity, precomputed so digram keys need no decoding,
// with the node's tags packed into its low two bits: a terminal with value v
// has id v<<2, a nonterminal referencing rule r has id r<<2|1, and a rule's
// guard carries r<<2|3 — the container of any symbol stays reachable, and the
// guard bit (bit 1) excludes guards from digrams without a separate flag
// field. The packing keeps the node at 16 bytes, so four nodes share a cache
// line and a linked-list walk touches half the lines the previous 24-byte
// layout did.
type symNode struct {
	next, prev uint32
	id         uint64
}

// isGuard reports whether the node is a rule's guard.
func (n *symNode) isGuard() bool { return n.id&2 != 0 }

// isNonterminal reports whether the node references a rule (and is not the
// rule's guard).
func (n *symNode) isNonterminal() bool { return n.id&3 == 1 }

// ruleOf returns the rule index encoded in a nonterminal or guard id.
func (n *symNode) ruleOf() uint32 { return uint32(n.id >> 2) }

// value returns the terminal value encoded in a terminal id.
func (n *symNode) value() uint64 { return n.id >> 2 }

// termID, ruleID, and guardID build symbol identities.
func termID(v uint64) uint64   { return v << 2 }
func ruleID(ri uint32) uint64  { return uint64(ri)<<2 | 1 }
func guardID(ri uint32) uint64 { return uint64(ri)<<2 | 3 }

// ruleNode is a grammar production: its guard symbol closes the RHS list and
// count tracks how many nonterminals reference it.
type ruleNode struct {
	guard uint32
	count int32
}

// sym returns the node for index i. The returned pointer is stable: chunks
// are fully allocated up front and never moved.
func (g *Grammar) sym(i uint32) *symNode {
	return &g.slab[i>>chunkShift][i&chunkMask]
}

// alloc returns a fresh, unlinked symbol node, recycling freed slots first.
func (g *Grammar) alloc(id uint64) uint32 {
	var i uint32
	if n := len(g.freeSyms); n > 0 {
		i = g.freeSyms[n-1]
		g.freeSyms = g.freeSyms[:n-1]
	} else {
		if g.used == uint32(len(g.slab))<<chunkShift {
			g.slab = append(g.slab, make([]symNode, chunkSize))
		}
		i = g.used
		g.used++
	}
	*g.sym(i) = symNode{next: nilSym, prev: nilSym, id: id}
	return i
}

// freeSym recycles a symbol slot. The node's fields stay readable until the
// slot is reallocated, so callers may free eagerly and finish reading
// neighbors afterwards within the same grammar operation.
func (g *Grammar) freeSym(i uint32) {
	g.freeSyms = append(g.freeSyms, i)
}

// newRule allocates a production with an empty circular RHS. Rule indices are
// recycled; a slot index identifies a rule only while that rule is live,
// which is all the digram keys require.
func (g *Grammar) newRule() uint32 {
	var ri uint32
	if n := len(g.freeRules); n > 0 {
		ri = g.freeRules[n-1]
		g.freeRules = g.freeRules[:n-1]
	} else {
		ri = uint32(len(g.rules))
		g.rules = append(g.rules, ruleNode{})
	}
	guard := g.alloc(guardID(ri))
	gn := g.sym(guard)
	gn.next = guard
	gn.prev = guard
	g.rules[ri] = ruleNode{guard: guard}
	g.ruleCount++
	return ri
}

// freeRule recycles a rule slot (the caller frees its guard symbol).
func (g *Grammar) freeRule(ri uint32) {
	g.freeRules = append(g.freeRules, ri)
	g.ruleCount--
}

// first and last return the ends of rule ri's right-hand side.
func (g *Grammar) first(ri uint32) uint32 { return g.sym(g.rules[ri].guard).next }
func (g *Grammar) last(ri uint32) uint32  { return g.sym(g.rules[ri].guard).prev }
