package sequitur

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip drives the arena-backed grammar with arbitrary byte strings
// and checks it differentially against the retained pointer-based reference
// implementation (naive_test.go): both must agree on Len, Size, NumRules,
// and the expanded string, and the arena grammar's structural invariants
// must hold.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("abaabcabcabcabc"))
	f.Add([]byte("aaaa"))
	f.Add([]byte(""))
	f.Add([]byte("abcabcabdabcabd"))
	f.Add(bytes.Repeat([]byte("xy"), 50))
	f.Add(bytes.Repeat([]byte("a"), 257))
	f.Add([]byte("abcdabcd_abcdabcd_abcdabcd_"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		g := New()
		naive := newNaive()
		for _, b := range data {
			g.Append(uint64(b))
			naive.Append(uint64(b))
		}
		if g.Len() != uint64(len(data)) {
			t.Fatalf("Len = %d, want %d", g.Len(), len(data))
		}
		if g.Len() != naive.Len() {
			t.Fatalf("Len = %d, naive = %d", g.Len(), naive.Len())
		}
		if g.Size() != naive.Size() {
			t.Fatalf("Size = %d, naive = %d", g.Size(), naive.Size())
		}
		if g.NumRules() != naive.NumRules() {
			t.Fatalf("NumRules = %d, naive = %d", g.NumRules(), naive.NumRules())
		}
		want := naive.expandString()
		snap := g.Snapshot()
		out := snap.Expand(0)
		if len(out) != len(data) {
			t.Fatalf("expansion length %d, want %d", len(out), len(data))
		}
		for i, v := range out {
			if v != uint64(data[i]) {
				t.Fatalf("expansion differs at %d: %d != %d", i, v, data[i])
			}
			if v != want[i] {
				t.Fatalf("expansion diverges from naive at %d: %d != %d", i, v, want[i])
			}
		}
		// Rule utility: every non-start rule used at least twice with at
		// least two symbols.
		refs := make([]int, len(snap.Rules))
		for _, r := range snap.Rules {
			for _, sym := range r.Syms {
				if !sym.IsTerminal() {
					refs[sym.Rule]++
				}
			}
		}
		for ri := 1; ri < len(snap.Rules); ri++ {
			if refs[ri] < 2 {
				t.Fatalf("rule %d used %d times", ri, refs[ri])
			}
			if len(snap.Rules[ri].Syms) < 2 {
				t.Fatalf("rule %d has %d symbols", ri, len(snap.Rules[ri].Syms))
			}
		}
	})
}
