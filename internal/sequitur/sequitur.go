// Package sequitur implements the Sequitur algorithm of Nevill-Manning and
// Witten (paper reference [23]): linear-time, incremental inference of a
// context-free grammar that generates exactly the input string.
//
// The profiling phase of the paper (§2.3) feeds each sampled data reference,
// encoded as an integer symbol, into Sequitur as it is collected; the
// resulting grammar is a compressed, hierarchical representation of the
// temporal data reference profile from which hot data streams are extracted.
//
// The implementation maintains the algorithm's two invariants:
//
//   - digram uniqueness: no pair of adjacent symbols appears more than once
//     in the grammar (except when occurrences overlap, as in "aaa");
//   - rule utility: every rule other than the start rule is used at least
//     twice.
//
// Appending a symbol is amortized O(1); the grammar is deterministic.
package sequitur

// digram identifies an adjacent symbol pair. Terminals and rules are encoded
// into disjoint key spaces.
type digram struct {
	a, b uint64
}

// symbol is a node in a rule's doubly-linked right-hand side. Each rule's
// RHS is a circular list closed by a guard node; the guard's rule field
// points at the owning rule so the container of any symbol is reachable.
type symbol struct {
	next, prev *symbol
	value      uint64 // terminal value (when rule == nil)
	rule       *rule  // target rule (nonterminal) or owner (guard)
	guard      bool
}

func (s *symbol) isNonterminal() bool { return !s.guard && s.rule != nil }

// key encodes the symbol's identity for digram lookup.
func (s *symbol) key() uint64 {
	if s.rule != nil {
		return uint64(s.rule.id)<<1 | 1
	}
	return s.value << 1
}

// rule is a grammar production.
type rule struct {
	id    int
	guard *symbol
	count int // number of nonterminal symbols referencing this rule
}

func (r *rule) first() *symbol { return r.guard.next }
func (r *rule) last() *symbol  { return r.guard.prev }

// Grammar is an incrementally-built Sequitur grammar. The zero value is not
// usable; call New.
type Grammar struct {
	digrams map[digram]*symbol
	start   *rule
	nextID  int
	length  uint64 // terminals appended so far
	symbols int    // symbols currently on all right-hand sides
	rules   int    // live rules including the start rule
}

// New returns an empty grammar.
func New() *Grammar {
	g := &Grammar{digrams: make(map[digram]*symbol)}
	g.start = g.newRule()
	return g
}

func (g *Grammar) newRule() *rule {
	r := &rule{id: g.nextID}
	g.nextID++
	guard := &symbol{rule: r, guard: true}
	guard.next = guard
	guard.prev = guard
	r.guard = guard
	g.rules++
	return r
}

// Len returns the number of terminals appended so far.
func (g *Grammar) Len() uint64 { return g.length }

// NumRules returns the number of live rules, including the start rule.
func (g *Grammar) NumRules() int { return g.rules }

// Size returns the total number of symbols on all right-hand sides — the
// grammar size that the hot-data-stream analysis is linear in.
func (g *Grammar) Size() int { return g.symbols }

// Append adds one terminal to the end of the input string, restoring the
// grammar invariants.
func (g *Grammar) Append(v uint64) {
	g.length++
	s := &symbol{value: v}
	g.insertAfter(g.start.last(), s)
	if prev := s.prev; !prev.guard {
		g.check(prev)
	}
}

// AppendAll appends each value in order.
func (g *Grammar) AppendAll(vs []uint64) {
	for _, v := range vs {
		g.Append(v)
	}
}

// insertAfter links s into the list after pos, updating the digram index.
func (g *Grammar) insertAfter(pos, s *symbol) {
	g.symbols++
	if s.isNonterminal() {
		s.rule.count++
	}
	g.join(s, pos.next)
	g.join(pos, s)
}

// remove unlinks s from its list, joining its neighbors and cleaning up the
// digram table and reference counts (the canonical symbol destructor).
func (g *Grammar) remove(s *symbol) {
	g.join(s.prev, s.next)
	if !s.guard {
		g.deleteDigram(s)
		if s.isNonterminal() {
			s.rule.count--
		}
		g.symbols--
	}
}

// join makes right follow left. If left previously had a successor, its old
// digram is removed; the triple-handling re-inserts digrams for runs like
// "aaa" whose table entries pointed into the removed region.
func (g *Grammar) join(left, right *symbol) {
	if left.next != nil {
		g.deleteDigram(left)
		if sameKey(right.prev, right) && sameKey(right, right.next) {
			g.digrams[digram{right.key(), right.next.key()}] = right
		}
		if sameKey(left.prev, left) && sameKey(left, left.next) {
			g.digrams[digram{left.prev.key(), left.key()}] = left.prev
		}
	}
	left.next = right
	right.prev = left
}

// sameKey reports whether a and b are both non-guard symbols with the same
// identity.
func sameKey(a, b *symbol) bool {
	return a != nil && b != nil && !a.guard && !b.guard && a.key() == b.key()
}

// deleteDigram removes the table entry for the digram starting at s, if s
// owns it.
func (g *Grammar) deleteDigram(s *symbol) {
	if s == nil || s.guard || s.next == nil || s.next.guard {
		return
	}
	d := digram{s.key(), s.next.key()}
	if g.digrams[d] == s {
		delete(g.digrams, d)
	}
}

// check enforces digram uniqueness for the digram beginning at s. It returns
// true if a duplicate was found.
func (g *Grammar) check(s *symbol) bool {
	if s.guard || s.next == nil || s.next.guard {
		return false
	}
	d := digram{s.key(), s.next.key()}
	m, ok := g.digrams[d]
	if !ok {
		g.digrams[d] = s
		return false
	}
	if m == s {
		return false
	}
	if m.next != s {
		// Non-overlapping duplicate: enforce uniqueness.
		g.match(s, m)
		return true
	}
	// Overlapping occurrences, as in "aaa", are left alone; report no match
	// so the caller still checks the neighboring digram.
	return false
}

// match resolves a duplicate digram: s and m begin the same digram at
// different positions.
func (g *Grammar) match(s, m *symbol) {
	var r *rule
	if m.prev.guard && m.next.next.guard {
		// The matching digram is exactly the RHS of an existing rule; reuse
		// it.
		r = m.prev.rule
		g.substitute(s, r)
	} else {
		// Create a new rule for the digram and substitute both occurrences.
		r = g.newRule()
		g.insertAfter(r.last(), &symbol{value: s.value, rule: s.rule})
		g.insertAfter(r.last(), &symbol{value: s.next.value, rule: s.next.rule})
		g.substitute(m, r)
		g.substitute(s, r)
		g.digrams[digram{r.first().key(), r.first().next.key()}] = r.first()
	}
	// Rule utility: if the new rule's first symbol is a nonterminal now used
	// only once, inline it.
	if f := r.first(); f.isNonterminal() && f.rule.count == 1 {
		g.expand(f)
	}
}

// substitute replaces the digram starting at s with a nonterminal
// referencing r.
func (g *Grammar) substitute(s *symbol, r *rule) {
	q := s.prev
	g.remove(s.next)
	g.remove(s)
	nt := &symbol{rule: r}
	g.insertAfter(q, nt)
	if !g.check(q) {
		g.check(nt)
	}
}

// expand inlines the rule referenced by nonterminal s (which must have
// count 1) into s's position and deletes the rule.
func (g *Grammar) expand(s *symbol) {
	left, right := s.prev, s.next
	r := s.rule
	f, l := r.first(), r.last()

	g.deleteDigram(s)
	g.symbols-- // s disappears without a neighbor join
	g.join(left, f)
	g.join(l, right)
	g.digrams[digram{l.key(), right.key()}] = l
	g.rules--
	r.guard = nil
}
