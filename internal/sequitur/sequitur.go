// Package sequitur implements the Sequitur algorithm of Nevill-Manning and
// Witten (paper reference [23]): linear-time, incremental inference of a
// context-free grammar that generates exactly the input string.
//
// The profiling phase of the paper (§2.3) feeds each sampled data reference,
// encoded as an integer symbol, into Sequitur as it is collected; the
// resulting grammar is a compressed, hierarchical representation of the
// temporal data reference profile from which hot data streams are extracted.
//
// The implementation maintains the algorithm's two invariants:
//
//   - digram uniqueness: no pair of adjacent symbols appears more than once
//     in the grammar (except when occurrences overlap, as in "aaa");
//   - rule utility: every rule other than the start rule is used at least
//     twice.
//
// Appending a symbol is amortized O(1); the grammar is deterministic.
//
// Because appending runs inside the profiled program (the paper charges
// profiling at ~0.5% overhead, §2.2), the implementation avoids per-symbol
// heap work: symbols live in a chunked slab arena addressed by uint32
// indices with a freelist (see arena.go), and the digram index is a custom
// open-addressed table keyed on the packed symbol-identity pair (see
// digram.go). A grammar in steady state — recycling as much as it grows —
// appends with zero allocations.
//
// Bursty tracing delivers references in runs rather than singletons, so the
// batch entry point AppendRun amortizes per-symbol overhead across a run:
// one digram-table reservation per run, precomputed digram hashes, and a
// cached tail pointer on the append fast path. The resulting grammar is
// bit-identical to sequential Append calls (enforced by FuzzAppendRun).
package sequitur

// Grammar is an incrementally-built Sequitur grammar. The zero value is not
// usable; call New.
type Grammar struct {
	slab      [][]symNode
	used      uint32 // symbol slots handed out from the slab
	freeSyms  []uint32
	rules     []ruleNode
	freeRules []uint32
	digrams   digramTable

	start     uint32
	length    uint64 // terminals appended so far
	symbols   int    // symbols currently on all right-hand sides
	ruleCount int    // live rules including the start rule

	// runHashes is AppendRun's reusable digram-hash scratch; prefetched is
	// the sink that keeps the table's warm-up loads from being dead code.
	runHashes  []uint64
	prefetched uint64
}

// New returns an empty grammar.
func New() *Grammar {
	g := &Grammar{}
	g.start = g.newRule()
	return g
}

// Len returns the number of terminals appended so far.
func (g *Grammar) Len() uint64 { return g.length }

// NumRules returns the number of live rules, including the start rule.
func (g *Grammar) NumRules() int { return g.ruleCount }

// Size returns the total number of symbols on all right-hand sides — the
// grammar size that the hot-data-stream analysis is linear in.
func (g *Grammar) Size() int { return g.symbols }

// Reset returns the grammar to its empty state while retaining the slab
// arena, freelist, and digram-table capacity already allocated. This is the
// paper's end-of-cycle grammar deallocation (§5: "the Sequitur grammar ...
// [is] deallocated at the end of each cycle" so long-running profiling has a
// bounded footprint), adapted to a recycling arena: the next profiling cycle
// re-fills the same storage instead of allocating afresh.
func (g *Grammar) Reset() {
	g.used = 0
	g.freeSyms = g.freeSyms[:0]
	g.rules = g.rules[:0]
	g.freeRules = g.freeRules[:0]
	g.digrams.reset()
	g.length = 0
	g.symbols = 0
	g.ruleCount = 0
	g.start = g.newRule()
}

// Append adds one terminal to the end of the input string, restoring the
// grammar invariants.
func (g *Grammar) Append(v uint64) {
	g.length++
	s := g.alloc(termID(v))
	g.insertAfter(g.last(g.start), s)
	if prev := g.sym(s).prev; !g.sym(prev).isGuard() {
		g.check(prev)
	}
}

// AppendAll appends each value in order.
func (g *Grammar) AppendAll(vs []uint64) {
	for _, v := range vs {
		g.Append(v)
	}
}

// AppendRun appends each value in order, producing a grammar bit-identical
// to the equivalent sequence of Append calls while amortizing per-symbol
// overhead across the run:
//
//   - the digram table is reserved once for the run's worst-case growth, so
//     no mid-run rehash occurs;
//   - the hashes of the run's adjacent terminal pairs are precomputed in one
//     pass and reused whenever the grammar's tail is still the terminal just
//     appended (the common case — restructuring invalidates the tail, and
//     the next digram hashes fresh);
//   - the tail append is inlined: when the predecessor's digram partner is
//     the start rule's guard, insertAfter/join reduce to four pointer
//     stores, skipping the general path's digram-deletion and
//     triple-re-owning checks, which cannot fire at the end of the start
//     rule;
//   - each iteration issues the next digram's home-slot load early, so the
//     probe that follows hits a warm line.
//
// Only lookup bookkeeping differs from the sequential path; the structural
// operation sequence is identical, so arena indices, rules, and digram
// ownership all match Append exactly (FuzzAppendRun enforces this).
func (g *Grammar) AppendRun(vs []uint64) {
	n := len(vs)
	if n == 0 {
		return
	}
	// One Append grows the live digram set by at most one entry (plus a
	// transient few inside a restructuring), so current size + run length
	// bounds the table's growth for the whole run.
	g.digrams.reserve(g.symbols + n + 4)
	if cap(g.runHashes) < n {
		g.runHashes = make([]uint64, n)
	}
	h := g.runHashes[:n]
	for i := 1; i < n; i++ {
		h[i] = hashDigram(termID(vs[i-1]), termID(vs[i]))
	}

	guard := g.rules[g.start].guard
	gn := g.sym(guard) // stable: chunks never move and the start guard is never freed
	clean := false     // tail is the terminal vs[i-1], untouched by restructuring
	sink := g.prefetched
	for i := 0; i < n; i++ {
		if i+1 < n {
			sink ^= g.digrams.touch(h[i+1])
		}
		g.length++
		s := g.alloc(termID(vs[i]))
		sn := g.sym(s)
		tail := gn.prev
		tn := g.sym(tail)
		// Inline insertAfter(tail, s): s is a terminal appended before the
		// guard, so the digram (tail, guard) was never in the table and no
		// overlapping-run re-owning can apply — linking is four stores.
		g.symbols++
		sn.next = guard
		sn.prev = tail
		gn.prev = s
		tn.next = s
		if tn.isGuard() {
			// First symbol of an empty start rule: no digram to check.
			clean = true
			continue
		}
		// check(tail), with the hash reused when the tail is known.
		var m uint32
		var ok bool
		if clean {
			m, ok = g.digrams.getOrSetH(h[i], tn.id, sn.id, tail)
		} else {
			m, ok = g.digrams.getOrSet(tn.id, sn.id, tail)
		}
		if ok && m != tail && g.sym(m).next != tail {
			// Non-overlapping duplicate: enforce uniqueness. The tail is
			// restructured, so the precomputed hash no longer applies.
			g.match(tail, m)
			clean = false
			continue
		}
		clean = true
	}
	g.prefetched = sink
}

// insertAfter links s into the list after pos, updating the digram index.
func (g *Grammar) insertAfter(pos, s uint32) {
	g.symbols++
	if sn := g.sym(s); sn.isNonterminal() {
		g.rules[sn.ruleOf()].count++
	}
	next := g.sym(pos).next
	g.join(s, next)
	g.join(pos, s)
}

// remove unlinks s from its list, joining its neighbors and cleaning up the
// digram table and reference counts (the canonical symbol destructor). The
// slot is recycled; its fields stay readable until the next alloc.
func (g *Grammar) remove(s uint32) {
	sn := g.sym(s)
	g.join(sn.prev, sn.next)
	if !sn.isGuard() {
		g.deleteDigram(s, sn)
		if sn.isNonterminal() {
			g.rules[sn.ruleOf()].count--
		}
		g.symbols--
	}
	g.freeSym(s)
}

// join makes right follow left. If left previously had a successor, its old
// digram is removed; the triple-handling re-inserts digrams for runs like
// "aaa" whose table entries pointed into the removed region.
func (g *Grammar) join(left, right uint32) {
	ln, rn := g.sym(left), g.sym(right)
	if ln.next != nilSym {
		g.deleteDigram(left, ln)
		// Re-own overlapping-run digrams whose entries pointed into the
		// removed region: right's (prev,right,next) triple, then left's.
		if !rn.isGuard() {
			if rp, rx := rn.prev, rn.next; rp != nilSym && rx != nilSym {
				rpn, rxn := g.sym(rp), g.sym(rx)
				if !rpn.isGuard() && rpn.id == rn.id && !rxn.isGuard() && rn.id == rxn.id {
					g.digrams.set(rn.id, rxn.id, right)
				}
			}
		}
		if !ln.isGuard() {
			if lp, lx := ln.prev, ln.next; lp != nilSym && lx != nilSym {
				lpn, lxn := g.sym(lp), g.sym(lx)
				if !lpn.isGuard() && lpn.id == ln.id && !lxn.isGuard() && ln.id == lxn.id {
					g.digrams.set(lpn.id, ln.id, lp)
				}
			}
		}
	}
	ln.next = right
	rn.prev = left
}

// deleteDigram removes the table entry for the digram starting at s, if s
// owns it. sn must be s's node.
func (g *Grammar) deleteDigram(s uint32, sn *symNode) {
	if sn.isGuard() || sn.next == nilSym {
		return
	}
	nn := g.sym(sn.next)
	if nn.isGuard() {
		return
	}
	g.digrams.delOwned(sn.id, nn.id, s)
}

// check enforces digram uniqueness for the digram beginning at s. It returns
// true if a duplicate was found.
func (g *Grammar) check(s uint32) bool {
	sn := g.sym(s)
	if sn.isGuard() || sn.next == nilSym {
		return false
	}
	nn := g.sym(sn.next)
	if nn.isGuard() {
		return false
	}
	m, ok := g.digrams.getOrSet(sn.id, nn.id, s)
	if !ok || m == s {
		return false
	}
	if g.sym(m).next != s {
		// Non-overlapping duplicate: enforce uniqueness.
		g.match(s, m)
		return true
	}
	// Overlapping occurrences, as in "aaa", are left alone; report no match
	// so the caller still checks the neighboring digram.
	return false
}

// match resolves a duplicate digram: s and m begin the same digram at
// different positions.
func (g *Grammar) match(s, m uint32) {
	var r uint32
	mn := g.sym(m)
	if g.sym(mn.prev).isGuard() && g.sym(g.sym(mn.next).next).isGuard() {
		// The matching digram is exactly the RHS of an existing rule; reuse
		// it.
		r = g.sym(mn.prev).ruleOf()
		g.substitute(s, r)
	} else {
		// Create a new rule for the digram and substitute both occurrences.
		r = g.newRule()
		sn := g.sym(s)
		second := sn.next
		c1 := g.alloc(sn.id)
		g.insertAfter(g.last(r), c1)
		c2 := g.alloc(g.sym(second).id)
		g.insertAfter(g.last(r), c2)
		g.substitute(m, r)
		g.substitute(s, r)
		f := g.first(r)
		fn := g.sym(f)
		g.digrams.set(fn.id, g.sym(fn.next).id, f)
	}
	// Rule utility: if the new rule's first symbol is a nonterminal now used
	// only once, inline it.
	if f := g.first(r); g.sym(f).isNonterminal() && g.rules[g.sym(f).ruleOf()].count == 1 {
		g.expand(f)
	}
}

// substitute replaces the digram starting at s with a nonterminal
// referencing r.
func (g *Grammar) substitute(s uint32, r uint32) {
	q := g.sym(s).prev
	g.remove(g.sym(s).next)
	g.remove(s)
	nt := g.alloc(ruleID(r))
	g.insertAfter(q, nt)
	if !g.check(q) {
		g.check(nt)
	}
}

// expand inlines the rule referenced by nonterminal s (which must have
// count 1) into s's position and deletes the rule.
func (g *Grammar) expand(s uint32) {
	sn := g.sym(s)
	left, right := sn.prev, sn.next
	ri := sn.ruleOf()
	guard := g.rules[ri].guard
	f, l := g.first(ri), g.last(ri)

	g.deleteDigram(s, sn)
	g.symbols-- // s disappears without a neighbor join
	g.join(left, f)
	g.join(l, right)
	g.digrams.set(g.sym(l).id, g.sym(right).id, l)
	g.freeRule(ri)
	g.freeSym(guard)
	g.freeSym(s)
}
