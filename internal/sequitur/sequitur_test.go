package sequitur

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// fromString builds a grammar over a lowercase-letter string, using the
// encoding of the paper's examples (a=0, b=1, ...).
func fromString(s string) *Grammar {
	g := New()
	for _, c := range s {
		g.Append(uint64(c - 'a'))
	}
	return g
}

func expandString(snap *Snapshot, rule int) string {
	var b strings.Builder
	for _, v := range snap.Expand(rule) {
		b.WriteByte(byte('a' + v))
	}
	return b.String()
}

// TestPaperFigure4 reproduces the worked example of paper Figure 4:
// w = abaabcabcabcabc yields S -> AaBB, A -> ab, B -> CC, C -> Ac.
func TestPaperFigure4(t *testing.T) {
	const w = "abaabcabcabcabc"
	g := fromString(w)
	snap := g.Snapshot()

	if got := expandString(snap, 0); got != w {
		t.Fatalf("grammar expands to %q, want %q", got, w)
	}
	if len(snap.Rules) != 4 {
		t.Fatalf("grammar has %d rules, want 4:\n%s", len(snap.Rules), snap)
	}

	// Identify rules by their expansions, since dense indices depend on
	// discovery order.
	byWord := map[string]int{}
	for i := range snap.Rules {
		byWord[expandString(snap, i)] = i
	}
	a, okA := byWord["ab"]
	b, okB := byWord["abcabc"]
	c, okC := byWord["abc"]
	if !okA || !okB || !okC {
		t.Fatalf("missing expected rules; got grammar:\n%s", snap)
	}

	// S -> A a B B
	s := snap.Rules[0].Syms
	want := []Sym{{Rule: a}, {Rule: -1, Value: 0}, {Rule: b}, {Rule: b}}
	if len(s) != 4 || s[0] != want[0] || s[1] != want[1] || s[2] != want[2] || s[3] != want[3] {
		t.Errorf("S = %v, want A a B B (A=%d, B=%d):\n%s", s, a, b, snap)
	}
	// B -> C C
	bs := snap.Rules[b].Syms
	if len(bs) != 2 || bs[0].Rule != c || bs[1].Rule != c {
		t.Errorf("B = %v, want C C:\n%s", bs, snap)
	}
	// C -> A c
	cs := snap.Rules[c].Syms
	if len(cs) != 2 || cs[0].Rule != a || !cs[1].IsTerminal() || cs[1].Value != 2 {
		t.Errorf("C = %v, want A c:\n%s", cs, snap)
	}
	// Expansion lengths (paper Figure 6 word lengths: S=15, A=2, B=6, C=3).
	if snap.Rules[0].Len != 15 || snap.Rules[a].Len != 2 || snap.Rules[b].Len != 6 || snap.Rules[c].Len != 3 {
		t.Errorf("lengths = S:%d A:%d B:%d C:%d, want 15/2/6/3",
			snap.Rules[0].Len, snap.Rules[a].Len, snap.Rules[b].Len, snap.Rules[c].Len)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	g := New()
	snap := g.Snapshot()
	if len(snap.Rules) != 1 || len(snap.Rules[0].Syms) != 0 {
		t.Errorf("empty grammar should have one empty rule, got:\n%s", snap)
	}
	g.Append(7)
	snap = g.Snapshot()
	if got := snap.Expand(0); len(got) != 1 || got[0] != 7 {
		t.Errorf("Expand = %v, want [7]", got)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
}

func TestRepetitionCompresses(t *testing.T) {
	g := New()
	for i := 0; i < 64; i++ {
		g.AppendAll([]uint64{1, 2, 3, 4})
	}
	if g.NumRules() < 2 {
		t.Error("repetitive input should create rules")
	}
	if g.Size() >= 256 {
		t.Errorf("grammar size %d should be much smaller than input 256", g.Size())
	}
	snap := g.Snapshot()
	out := snap.Expand(0)
	if len(out) != 256 {
		t.Fatalf("expansion length %d, want 256", len(out))
	}
	for i, v := range out {
		if v != uint64(i%4)+1 {
			t.Fatalf("expansion wrong at %d: %d", i, v)
		}
	}
}

func TestTriples(t *testing.T) {
	// Runs of identical symbols exercise the overlapping-digram path.
	for _, w := range []string{"aaa", "aaaa", "aaaaa", "aaabaaab", "aabaa", "abbba"} {
		g := fromString(w)
		snap := g.Snapshot()
		if got := expandString(snap, 0); got != w {
			t.Errorf("round-trip of %q failed: got %q\n%s", w, got, snap)
		}
		checkInvariants(t, snap, w)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	const w = "abcabcabdabcabdxyzxyzabc"
	s1 := fromString(w).Snapshot().String()
	s2 := fromString(w).Snapshot().String()
	if s1 != s2 {
		t.Errorf("grammar construction not deterministic:\n%s\nvs\n%s", s1, s2)
	}
}

func TestSnapshotIsolatedFromLaterAppends(t *testing.T) {
	g := fromString("abcabc")
	snap := g.Snapshot()
	before := snap.String()
	g.AppendAll([]uint64{0, 1, 2, 0, 1, 2})
	if snap.String() != before {
		t.Error("snapshot mutated by later appends")
	}
}

func TestSizeMatchesSnapshot(t *testing.T) {
	g := fromString("abaabcabcabcabc")
	snap := g.Snapshot()
	if g.Size() != snap.Size() {
		t.Errorf("Grammar.Size() = %d, Snapshot.Size() = %d", g.Size(), snap.Size())
	}
}

func TestStringRendering(t *testing.T) {
	g := fromString("abab")
	out := g.Snapshot().String()
	if !strings.Contains(out, "S ->") {
		t.Errorf("rendering missing start rule: %q", out)
	}
	if !strings.Contains(out, "a b") {
		t.Errorf("rendering should contain the digram rule: %q", out)
	}
}

// checkInvariants verifies the two Sequitur invariants on a snapshot:
// digram uniqueness (duplicate occurrences must overlap) and rule utility
// (every non-start rule referenced at least twice), plus length consistency.
func checkInvariants(t *testing.T, snap *Snapshot, input string) {
	t.Helper()
	type occ struct{ rule, pos int }
	type dig struct{ a, b Sym }
	occurrences := map[dig][]occ{}
	refs := make([]int, len(snap.Rules))
	for ri, r := range snap.Rules {
		for i, sym := range r.Syms {
			if !sym.IsTerminal() {
				refs[sym.Rule]++
			}
			if i+1 < len(r.Syms) {
				d := dig{r.Syms[i], r.Syms[i+1]}
				occurrences[d] = append(occurrences[d], occ{ri, i})
			}
		}
	}
	for d, occs := range occurrences {
		for i := 0; i < len(occs); i++ {
			for j := i + 1; j < len(occs); j++ {
				a, b := occs[i], occs[j]
				overlap := a.rule == b.rule && (a.pos+1 == b.pos || b.pos+1 == a.pos)
				if !overlap {
					t.Errorf("input %q: digram %v occurs at %v and %v without overlap\n%s",
						input, d, a, b, snap)
				}
			}
		}
	}
	for ri := 1; ri < len(snap.Rules); ri++ {
		if refs[ri] < 2 {
			t.Errorf("input %q: rule %d used %d times, want >= 2\n%s", input, ri, refs[ri], snap)
		}
		if len(snap.Rules[ri].Syms) < 2 {
			t.Errorf("input %q: rule %d has %d symbols, want >= 2\n%s",
				input, ri, len(snap.Rules[ri].Syms), snap)
		}
	}
	// Length consistency.
	for ri := range snap.Rules {
		if int(snap.Rules[ri].Len) != len(snap.Expand(ri)) {
			t.Errorf("input %q: rule %d Len=%d but expansion has %d symbols",
				input, ri, snap.Rules[ri].Len, len(snap.Expand(ri)))
		}
	}
}

// Property: round-trip over random small-alphabet strings, with invariants.
func TestPropertyRoundTripAndInvariants(t *testing.T) {
	f := func(data []byte, alpha uint8) bool {
		k := int(alpha%5) + 2
		var b strings.Builder
		for _, d := range data {
			b.WriteByte('a' + d%byte(k))
		}
		w := b.String()
		g := fromString(w)
		if g.Len() != uint64(len(w)) {
			return false
		}
		snap := g.Snapshot()
		if expandString(snap, 0) != w {
			return false
		}
		checkInvariants(t, snap, w)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: highly repetitive inputs yield grammars logarithmic-ish in input
// size (sanity bound: size at most half the input for 64+ repetitions).
func TestPropertyCompressionOnRepeats(t *testing.T) {
	f := func(seed int64, period uint8) bool {
		p := int(period%6) + 2
		r := rand.New(rand.NewSource(seed))
		unit := make([]uint64, p)
		for i := range unit {
			unit[i] = uint64(r.Intn(4))
		}
		g := New()
		for i := 0; i < 64; i++ {
			g.AppendAll(unit)
		}
		if expand := g.Snapshot().Expand(0); len(expand) != 64*p {
			return false
		}
		return g.Size() <= 32*p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestResetEquivalentToFresh checks that a reset grammar is indistinguishable
// from a newly constructed one: same productions, sizes, and invariants after
// re-appending an arbitrary input.
func TestResetEquivalentToFresh(t *testing.T) {
	inputs := []string{
		"abaabcabcabcabc", // paper Figure 4
		"aaaaaaaa",        // overlapping digrams
		"abcdefg",         // no compression
		"",
	}
	g := New()
	for _, first := range inputs {
		for _, second := range inputs {
			// Dirty the grammar with one input, reset, rebuild with another.
			for _, c := range first {
				g.Append(uint64(c - 'a'))
			}
			g.Reset()
			if g.Len() != 0 || g.Size() != 0 || g.NumRules() != 1 {
				t.Fatalf("after Reset: Len=%d Size=%d NumRules=%d, want 0/0/1",
					g.Len(), g.Size(), g.NumRules())
			}
			for _, c := range second {
				g.Append(uint64(c - 'a'))
			}
			fresh := fromString(second)
			got, want := g.Snapshot(), fresh.Snapshot()
			if gs, ws := got.String(), want.String(); gs != ws {
				t.Fatalf("reset grammar diverges from fresh on %q after %q:\n got:\n%s\nwant:\n%s",
					second, first, gs, ws)
			}
			if second != "" {
				checkInvariants(t, got, second)
			}
			g.Reset()
		}
	}
}

// TestResetRetainsCapacity checks that recycling does not allocate: after one
// fill/reset cycle warms the arena and tables, further cycles over the same
// input are allocation-free.
func TestResetRetainsCapacity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	input := make([]uint64, 4096)
	for i := range input {
		input[i] = uint64(r.Intn(64))
	}
	g := New()
	g.AppendAll(input)
	g.Reset()
	allocs := testing.AllocsPerRun(10, func() {
		g.AppendAll(input)
		g.Reset()
	})
	if allocs > 0 {
		t.Errorf("fill/reset cycle allocated %.1f times, want 0", allocs)
	}
}

func BenchmarkAppendRandom(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	vals := make([]uint64, b.N)
	for i := range vals {
		vals[i] = uint64(r.Intn(256))
	}
	g := New()
	b.ResetTimer()
	for _, v := range vals {
		g.Append(v)
	}
}

func BenchmarkAppendRepetitive(b *testing.B) {
	// Hot-data-stream-like input: long repeating sequences with occasional
	// noise, the workload Sequitur sees during profiling.
	r := rand.New(rand.NewSource(1))
	stream := make([]uint64, 20)
	for i := range stream {
		stream[i] = uint64(i)
	}
	vals := make([]uint64, 0, b.N)
	for len(vals) < b.N {
		if r.Intn(10) == 0 {
			vals = append(vals, uint64(100+r.Intn(50)))
		} else {
			vals = append(vals, stream...)
		}
	}
	vals = vals[:b.N]
	g := New()
	b.ResetTimer()
	for _, v := range vals {
		g.Append(v)
	}
}
