package sequitur

// digramTable is an open-addressed hash table from a packed digram — the
// identity keys of two adjacent symbols — to the arena index of the symbol
// that owns the digram's canonical occurrence. It replaces a Go
// map[struct{a,b uint64}]*symbol on the append hot path: linear probing with
// power-of-two capacity, and tombstone-free deletion by backward shifting,
// so long-lived grammars never degrade from accumulated deletions.
type digramTable struct {
	entries []digramEntry
	n       int // live entries
}

type digramEntry struct {
	k0, k1 uint64
	sym    uint32
	used   bool
}

// hashDigram mixes the two symbol keys (splitmix64-style finalizer).
func hashDigram(a, b uint64) uint64 {
	h := a*0x9E3779B97F4A7C15 + b
	h ^= h >> 32
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 32
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 32
	return h
}

// get returns the owner of digram (k0, k1), if present.
func (t *digramTable) get(k0, k1 uint64) (uint32, bool) {
	if len(t.entries) == 0 {
		return 0, false
	}
	mask := uint64(len(t.entries) - 1)
	for i := hashDigram(k0, k1) & mask; ; i = (i + 1) & mask {
		e := &t.entries[i]
		if !e.used {
			return 0, false
		}
		if e.k0 == k0 && e.k1 == k1 {
			return e.sym, true
		}
	}
}

// getOrSet returns the existing owner of digram (k0, k1), or records sym as
// its owner if absent — one probe sequence for the common check() lookup.
func (t *digramTable) getOrSet(k0, k1 uint64, sym uint32) (uint32, bool) {
	return t.getOrSetH(hashDigram(k0, k1), k0, k1, sym)
}

// getOrSetH is getOrSet with the digram hash supplied by the caller —
// AppendRun precomputes the hashes of a whole run's adjacent pairs in one
// pass and hands them in here, skipping the per-lookup mix.
func (t *digramTable) getOrSetH(h, k0, k1 uint64, sym uint32) (uint32, bool) {
	if 4*(t.n+1) >= 3*len(t.entries) {
		t.grow()
	}
	mask := uint64(len(t.entries) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := &t.entries[i]
		if !e.used {
			*e = digramEntry{k0: k0, k1: k1, sym: sym, used: true}
			t.n++
			return 0, false
		}
		if e.k0 == k0 && e.k1 == k1 {
			return e.sym, true
		}
	}
}

// touch loads the home slot for hash h, warming the cache line an upcoming
// probe will hit. It returns a value derived from the slot so the caller can
// fold it into a sink, keeping the load from being optimized away.
func (t *digramTable) touch(h uint64) uint64 {
	if len(t.entries) == 0 {
		return 0
	}
	return t.entries[h&uint64(len(t.entries)-1)].k0
}

// reserve grows the table so at least n live entries fit under the 75% load
// factor without further rehashing — one table epoch for a whole appended
// run instead of log(run) incremental doublings.
func (t *digramTable) reserve(n int) {
	need := 64
	for 4*(n+1) >= 3*need {
		need <<= 1
	}
	if need <= len(t.entries) {
		return
	}
	old := t.entries
	t.entries = make([]digramEntry, need)
	t.n = 0
	for i := range old {
		if old[i].used {
			t.set(old[i].k0, old[i].k1, old[i].sym)
		}
	}
}

// set inserts or overwrites the owner of digram (k0, k1).
func (t *digramTable) set(k0, k1 uint64, sym uint32) {
	if 4*(t.n+1) >= 3*len(t.entries) { // grow at 75% load
		t.grow()
	}
	mask := uint64(len(t.entries) - 1)
	for i := hashDigram(k0, k1) & mask; ; i = (i + 1) & mask {
		e := &t.entries[i]
		if !e.used {
			*e = digramEntry{k0: k0, k1: k1, sym: sym, used: true}
			t.n++
			return
		}
		if e.k0 == k0 && e.k1 == k1 {
			e.sym = sym
			return
		}
	}
}

// delOwned removes digram (k0, k1) if present and owned by sym, closing the
// probe sequence by backward shifting instead of leaving a tombstone.
func (t *digramTable) delOwned(k0, k1 uint64, sym uint32) {
	if len(t.entries) == 0 {
		return
	}
	mask := uint64(len(t.entries) - 1)
	i := hashDigram(k0, k1) & mask
	for {
		e := &t.entries[i]
		if !e.used {
			return
		}
		if e.k0 == k0 && e.k1 == k1 {
			if e.sym != sym {
				return
			}
			break
		}
		i = (i + 1) & mask
	}
	// Shift later entries of the same probe cluster back over the hole so
	// every surviving entry stays reachable from its home slot.
	j := i
	for {
		j = (j + 1) & mask
		e := &t.entries[j]
		if !e.used {
			break
		}
		home := hashDigram(e.k0, e.k1) & mask
		if (j-home)&mask >= (j-i)&mask {
			t.entries[i] = *e
			i = j
		}
	}
	t.entries[i] = digramEntry{}
	t.n--
}

// reset empties the table, retaining its allocated capacity so a recycled
// grammar's first appends stay allocation-free.
func (t *digramTable) reset() {
	clear(t.entries)
	t.n = 0
}

func (t *digramTable) grow() {
	newCap := 64
	if len(t.entries) > 0 {
		newCap = 2 * len(t.entries)
	}
	old := t.entries
	t.entries = make([]digramEntry, newCap)
	t.n = 0
	for i := range old {
		if old[i].used {
			t.set(old[i].k0, old[i].k1, old[i].sym)
		}
	}
}
