package sequitur

import (
	"bytes"
	"testing"
)

// prepassChunked splits data into run lengths derived from seed (1..64
// values per run) and feeds them through a Prepass, exercising batch
// boundaries everywhere in the input.
func prepassChunked(p *Prepass, vals []uint64, seed uint64) {
	for len(vals) > 0 {
		n := int(seed&63) + 1
		seed = seed>>3 | seed<<61
		if n > len(vals) {
			n = len(vals)
		}
		p.Append(vals[:n])
		vals = vals[n:]
	}
}

// requireSameExpansion asserts the content-lossless contract: the prepass
// grammar's expansion must reproduce the input byte for byte, and its
// length accounting must match.
func requireSameExpansion(t *testing.T, g *Grammar, want []uint64) {
	t.Helper()
	if g.Len() != uint64(len(want)) {
		t.Fatalf("Len = %d, want %d", g.Len(), len(want))
	}
	got := g.Snapshot().Expand(0)
	if len(got) != len(want) {
		t.Fatalf("expansion length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("expansion differs at %d: %d != %d", i, got[i], want[i])
		}
	}
}

// TestPrepassMatchesAppendExpansion pins the front end to the lossless path
// on phrase-heavy, run-heavy, and adversarial inputs, whole and chunked.
func TestPrepassMatchesAppendExpansion(t *testing.T) {
	inputs := [][]byte{
		[]byte(""),
		[]byte("a"),
		[]byte("abaabcabcabcabc"),
		[]byte("aaaa"),
		[]byte("aaaaaaaa"),
		bytes.Repeat([]byte("a"), 257),
		bytes.Repeat([]byte("abcdefgh"), 40),               // exact-window phrase
		bytes.Repeat([]byte("abcdefghijkl"), 40),           // phrase + residual tail
		bytes.Repeat([]byte("abcdefghijklmnopqrstuvx"), 9), // long stream, odd length
		[]byte("abcdabcd_abcdabcd_abcdabcd_"),
		append(bytes.Repeat([]byte("p"), 100), bytes.Repeat([]byte("qrstuvwx"), 20)...),
		append(bytes.Repeat([]byte("abcdefgh"), 3), bytes.Repeat([]byte("h"), 50)...),
	}
	for _, data := range inputs {
		vals := toVals(data)
		g := New()
		p := NewPrepass(g, PrepassConfig{})
		p.Append(vals)
		requireSameExpansion(t, g, vals)

		g2 := New()
		p2 := NewPrepass(g2, PrepassConfig{})
		prepassChunked(p2, vals, 0x9e3779b97f4a7c15)
		requireSameExpansion(t, g2, vals)
	}
}

// TestPrepassRunCollapse checks that long runs are represented in O(log k)
// grammar work and counted exactly.
func TestPrepassRunCollapse(t *testing.T) {
	const k = 1 << 15
	vals := make([]uint64, k)
	for i := range vals {
		vals[i] = 42
	}
	g := New()
	p := NewPrepass(g, PrepassConfig{})
	p.Append(vals)
	requireSameExpansion(t, g, vals)
	if got := p.Collapsed(); got != k {
		t.Errorf("Collapsed = %d, want %d (even run collapses fully)", got, k)
	}
	// A 2^15 run needs 14 doubling levels and one rule append; the whole
	// grammar must stay tiny.
	if g.Size() > 64 {
		t.Errorf("grammar size %d for a %d-run, want O(log k)", g.Size(), k)
	}
	if p.Minted() == 0 {
		t.Error("no doubling rules minted for a long run")
	}

	// Odd leftover goes through the terminal path.
	g2 := New()
	p2 := NewPrepass(g2, PrepassConfig{})
	p2.Append(vals[:k-1])
	vals2 := vals[:k-1]
	requireSameExpansion(t, g2, vals2)
	if got := p2.Collapsed(); got != k-2 {
		t.Errorf("Collapsed = %d, want %d (odd run leaves one terminal)", got, k-2)
	}
}

// TestPrepassPhraseCacheHits checks that a repeated phrase mints once and
// then collapses every later occurrence.
func TestPrepassPhraseCacheHits(t *testing.T) {
	phrase := toVals([]byte("abcdefgh")) // exactly one default window
	sep := toVals([]byte("zy"))
	var vals []uint64
	const reps = 50
	for i := 0; i < reps; i++ {
		vals = append(vals, phrase...)
		vals = append(vals, sep...)
	}
	g := New()
	p := NewPrepass(g, PrepassConfig{})
	p.Append(vals)
	requireSameExpansion(t, g, vals)
	if p.Hits() == 0 {
		t.Fatal("no phrase-cache hits on a 50x-repeated phrase")
	}
	// Occurrence 1 is residual, occurrence 2 mints (collapsed, not a hit),
	// occurrences 3..reps are hits.
	if want := uint64(reps-2) * 8; p.Hits()*8 < want {
		t.Errorf("hit refs = %d, want >= %d", p.Hits()*8, want)
	}
	if p.Collapsed() < (reps-1)*8 {
		t.Errorf("Collapsed = %d, want >= %d", p.Collapsed(), (reps-1)*8)
	}
}

// TestPrepassInterleavedWithAppend checks that mixing front-end batches with
// direct grammar appends stays content-exact (the Profile does this when
// single Add calls bypass the front end).
func TestPrepassInterleavedWithAppend(t *testing.T) {
	a := toVals(bytes.Repeat([]byte("abcdefgh"), 10))
	b := toVals([]byte("xyz"))
	g := New()
	p := NewPrepass(g, PrepassConfig{})
	var want []uint64
	for i := 0; i < 5; i++ {
		p.Append(a)
		want = append(want, a...)
		g.AppendRun(b)
		want = append(want, b...)
		for _, v := range b {
			g.Append(v)
			want = append(want, v)
		}
	}
	requireSameExpansion(t, g, want)
}

// TestPrepassAfterReset checks that a recycled grammar+prepass pair accepts
// input again: cached rule indices must not survive the reset.
func TestPrepassAfterReset(t *testing.T) {
	vals := toVals(bytes.Repeat([]byte("abcdefghaaaaaaaaaaaa"), 20))
	g := New()
	p := NewPrepass(g, PrepassConfig{})
	p.Append(vals)
	g.Reset()
	p.Reset()
	if p.Collapsed() != 0 || p.Minted() != 0 || p.Hits() != 0 {
		t.Fatal("Reset did not clear counters")
	}
	p.Append(vals)
	requireSameExpansion(t, g, vals)
}

// TestPrepassSteadyStateAllocs mirrors TestAppendRunSteadyStateAllocs: once
// the caches, arena, and table are warm, fill/reset cycles through the
// front end must not allocate.
func TestPrepassSteadyStateAllocs(t *testing.T) {
	vals := toVals(bytes.Repeat([]byte("abcabcabdabdzaaaaaaaaabcdefghabcdefgh"), 64))
	g := New()
	p := NewPrepass(g, PrepassConfig{})
	p.Append(vals)
	g.Reset()
	p.Reset()
	allocs := testing.AllocsPerRun(10, func() {
		p.Append(vals)
		g.Reset()
		p.Reset()
	})
	if allocs > 0 {
		t.Errorf("fill/reset cycle via Prepass allocated %.1f times, want 0", allocs)
	}
}

// TestPrepassSmallWindowConfig exercises non-default tuning, including the
// clamped minimum window.
func TestPrepassSmallWindowConfig(t *testing.T) {
	vals := toVals(bytes.Repeat([]byte("abcd"), 30))
	for _, cfg := range []PrepassConfig{
		{Window: 2, MinRun: 2, CacheSize: 4},
		{Window: 4, MinRun: 8, CacheSize: 16},
		{Window: 1},                              // clamps to 2
		{Window: 13, MinRun: 3, CacheSize: 1000}, // non-power-of-two cache rounds up
	} {
		g := New()
		p := NewPrepass(g, cfg)
		prepassChunked(p, vals, 7)
		requireSameExpansion(t, g, vals)
	}
}

// FuzzPrepassEquivalence is the differential gate for the two-level front
// end: an arbitrary input split into arbitrary batches through the prepass
// must expand to exactly the sequence a sequential Append loop would encode.
// Grammars are not bit-identical (that is the point of the front end); the
// contract is equivalence after expansion, which is what hot-stream
// extraction consumes.
func FuzzPrepassEquivalence(f *testing.F) {
	f.Add([]byte("abaabcabcabcabc"), uint64(0))
	f.Add([]byte("aaaaaaaaaaaa"), uint64(1))
	f.Add([]byte(""), uint64(7))
	f.Add(bytes.Repeat([]byte("abcdefgh"), 8), uint64(0x12345678))
	f.Add(bytes.Repeat([]byte("abcdefghijkl"), 6), uint64(3))
	f.Add(bytes.Repeat([]byte("a"), 257), uint64(0xffffffffffffffff))
	f.Add(append(bytes.Repeat([]byte("x"), 40), bytes.Repeat([]byte("pqrstuvw"), 10)...), uint64(0x9e3779b97f4a7c15))

	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		vals := toVals(data)
		seq := New()
		seq.AppendAll(vals)

		g := New()
		// Small cache + window derived from the seed widens the state
		// space: eviction, thrashing, and window/minRun edges all fuzz.
		cfg := PrepassConfig{
			Window:    2 + int(seed%12),
			MinRun:    2 + int((seed>>8)%6),
			CacheSize: 1 << (seed >> 16 % 8),
		}
		p := NewPrepass(g, cfg)
		prepassChunked(p, vals, seed)

		want := seq.Snapshot().Expand(0)
		got := g.Snapshot().Expand(0)
		if g.Len() != seq.Len() {
			t.Fatalf("Len = %d, want %d", g.Len(), seq.Len())
		}
		if len(got) != len(want) {
			t.Fatalf("expansion length %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("expansion differs at %d: %d != %d", i, got[i], want[i])
			}
		}
		if p.Collapsed() > g.Len() {
			t.Fatalf("Collapsed %d exceeds input length %d", p.Collapsed(), g.Len())
		}
	})
}
