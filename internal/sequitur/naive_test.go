package sequitur

// This file retains the original pointer-based Sequitur implementation as a
// naive reference for differential fuzzing: the arena-backed Grammar must
// agree with it on every observable (Len, Size, NumRules, expansion) for
// every input. It is deliberately a verbatim copy of the pre-arena code —
// heap-allocated symbols, a Go map for the digram index — so the two
// implementations share no data-structure code.

type digram struct {
	a, b uint64
}

type symbol struct {
	next, prev *symbol
	value      uint64
	rule       *rule
	guard      bool
}

func (s *symbol) isNonterminal() bool { return !s.guard && s.rule != nil }

func (s *symbol) key() uint64 {
	if s.rule != nil {
		return uint64(s.rule.id)<<1 | 1
	}
	return s.value << 1
}

type rule struct {
	id    int
	guard *symbol
	count int
}

func (r *rule) first() *symbol { return r.guard.next }
func (r *rule) last() *symbol  { return r.guard.prev }

type naiveGrammar struct {
	digrams map[digram]*symbol
	start   *rule
	nextID  int
	length  uint64
	symbols int
	rules   int
}

func newNaive() *naiveGrammar {
	g := &naiveGrammar{digrams: make(map[digram]*symbol)}
	g.start = g.newRule()
	return g
}

func (g *naiveGrammar) newRule() *rule {
	r := &rule{id: g.nextID}
	g.nextID++
	guard := &symbol{rule: r, guard: true}
	guard.next = guard
	guard.prev = guard
	r.guard = guard
	g.rules++
	return r
}

func (g *naiveGrammar) Len() uint64   { return g.length }
func (g *naiveGrammar) NumRules() int { return g.rules }
func (g *naiveGrammar) Size() int     { return g.symbols }

func (g *naiveGrammar) Append(v uint64) {
	g.length++
	s := &symbol{value: v}
	g.insertAfter(g.start.last(), s)
	if prev := s.prev; !prev.guard {
		g.check(prev)
	}
}

func (g *naiveGrammar) insertAfter(pos, s *symbol) {
	g.symbols++
	if s.isNonterminal() {
		s.rule.count++
	}
	g.join(s, pos.next)
	g.join(pos, s)
}

func (g *naiveGrammar) remove(s *symbol) {
	g.join(s.prev, s.next)
	if !s.guard {
		g.deleteDigram(s)
		if s.isNonterminal() {
			s.rule.count--
		}
		g.symbols--
	}
}

func (g *naiveGrammar) join(left, right *symbol) {
	if left.next != nil {
		g.deleteDigram(left)
		if sameKey(right.prev, right) && sameKey(right, right.next) {
			g.digrams[digram{right.key(), right.next.key()}] = right
		}
		if sameKey(left.prev, left) && sameKey(left, left.next) {
			g.digrams[digram{left.prev.key(), left.key()}] = left.prev
		}
	}
	left.next = right
	right.prev = left
}

func sameKey(a, b *symbol) bool {
	return a != nil && b != nil && !a.guard && !b.guard && a.key() == b.key()
}

func (g *naiveGrammar) deleteDigram(s *symbol) {
	if s == nil || s.guard || s.next == nil || s.next.guard {
		return
	}
	d := digram{s.key(), s.next.key()}
	if g.digrams[d] == s {
		delete(g.digrams, d)
	}
}

func (g *naiveGrammar) check(s *symbol) bool {
	if s.guard || s.next == nil || s.next.guard {
		return false
	}
	d := digram{s.key(), s.next.key()}
	m, ok := g.digrams[d]
	if !ok {
		g.digrams[d] = s
		return false
	}
	if m == s {
		return false
	}
	if m.next != s {
		g.match(s, m)
		return true
	}
	return false
}

func (g *naiveGrammar) match(s, m *symbol) {
	var r *rule
	if m.prev.guard && m.next.next.guard {
		r = m.prev.rule
		g.substitute(s, r)
	} else {
		r = g.newRule()
		g.insertAfter(r.last(), &symbol{value: s.value, rule: s.rule})
		g.insertAfter(r.last(), &symbol{value: s.next.value, rule: s.next.rule})
		g.substitute(m, r)
		g.substitute(s, r)
		g.digrams[digram{r.first().key(), r.first().next.key()}] = r.first()
	}
	if f := r.first(); f.isNonterminal() && f.rule.count == 1 {
		g.expand(f)
	}
}

func (g *naiveGrammar) substitute(s *symbol, r *rule) {
	q := s.prev
	g.remove(s.next)
	g.remove(s)
	nt := &symbol{rule: r}
	g.insertAfter(q, nt)
	if !g.check(q) {
		g.check(nt)
	}
}

func (g *naiveGrammar) expand(s *symbol) {
	left, right := s.prev, s.next
	r := s.rule
	f, l := r.first(), r.last()

	g.deleteDigram(s)
	g.symbols--
	g.join(left, f)
	g.join(l, right)
	g.digrams[digram{l.key(), right.key()}] = l
	g.rules--
	r.guard = nil
}

// expandString reconstructs the terminal string the grammar generates, by
// recursive descent from the start rule.
func (g *naiveGrammar) expandString() []uint64 {
	var out []uint64
	var walk func(r *rule)
	walk = func(r *rule) {
		for s := r.first(); !s.guard; s = s.next {
			if s.isNonterminal() {
				walk(s.rule)
			} else {
				out = append(out, s.value)
			}
		}
	}
	walk(g.start)
	return out
}
