package obs

import (
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram with lock-free observation: Observe
// is a linear scan of a small immutable bound table plus four atomic adds,
// so concurrent recorders (shard consumers, analysis workers, the
// supervisor) never contend on a lock and never allocate. Bucket counts are
// stored per bucket (non-cumulative) and summed cumulatively at exposition,
// the way Prometheus expects.
//
// Values are recorded in raw integer units (nanoseconds for durations,
// permille for ratios) and converted to the exported unit (seconds, ratio)
// only at exposition, so the hot path never touches floating point.
type Histogram struct {
	name    string
	help    string
	perUnit float64  // raw units per exported unit (1e9 ns/s, 1e3 permille/ratio)
	upper   []uint64 // bucket upper bounds, raw units, strictly increasing

	counts []atomic.Uint64 // len(upper)+1; last bucket is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // raw units
	last   atomic.Uint64
	max    atomic.Uint64
}

// durationBounds covers 1µs to 10s in a 1-2-5 decade ladder — wide enough
// for both a 2µs pipelined grammar swap and a multi-second stalled flush.
var durationBounds = []uint64{
	1_000, 2_000, 5_000, // 1µs, 2µs, 5µs
	10_000, 20_000, 50_000,
	100_000, 200_000, 500_000,
	1_000_000, 2_000_000, 5_000_000, // 1ms ...
	10_000_000, 20_000_000, 50_000_000,
	100_000_000, 200_000_000, 500_000_000,
	1_000_000_000, 2_000_000_000, 5_000_000_000, // 1s ...
	10_000_000_000,
}

// ratioBounds covers [0, 1] in 0.1 steps, recorded in permille.
var ratioBounds = []uint64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}

// NewDurationHistogram returns a histogram over durationBounds whose raw
// unit is nanoseconds and whose exported unit is seconds.
func NewDurationHistogram(name, help string) *Histogram {
	return NewHistogram(name, help, durationBounds, 1e9)
}

// NewRatioHistogram returns a histogram over ratioBounds whose raw unit is
// permille and whose exported unit is the plain ratio.
func NewRatioHistogram(name, help string) *Histogram {
	return NewHistogram(name, help, ratioBounds, 1e3)
}

// NewHistogram returns a histogram with the given strictly increasing upper
// bounds (raw units) and the number of raw units per exported unit. The
// bounds slice is retained; callers must not mutate it.
func NewHistogram(name, help string, upper []uint64, perUnit float64) *Histogram {
	for i := 1; i < len(upper); i++ {
		if upper[i] <= upper[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		name:    name,
		help:    help,
		perUnit: perUnit,
		upper:   upper,
		counts:  make([]atomic.Uint64, len(upper)+1),
	}
}

// Name returns the exported metric name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value in raw units. Lock- and allocation-free.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	h.last.Store(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveDuration records d (clamped below at zero) in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// ObserveRatio records r (clamped to [0, 1]) in permille.
func (h *Histogram) ObserveRatio(r float64) {
	if r < 0 {
		r = 0
	} else if r > 1 {
		r = 1
	}
	h.Observe(uint64(r * 1000))
}

// Bucket is one histogram bucket in a snapshot: the count of observations
// at or below UpperBound (raw units) and above the previous bound.
type Bucket struct {
	UpperBound uint64 `json:"le"`    // raw units; the last bucket is +Inf (reported as 0)
	Count      uint64 `json:"count"` // non-cumulative
}

// HistogramSnapshot is a point-in-time copy of a histogram, the replacement
// for the lossy last/max scalar pair: Count and Sum give the mean, Buckets
// the distribution, Last and Max the scalars the old fields carried. Raw
// units are nanoseconds for duration histograms and permille for ratio
// histograms. The snapshot is approximate under concurrency (each counter
// is read atomically, but not all at the same instant).
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Last    uint64   `json:"last"`
	Max     uint64   `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// SumDuration returns Sum as a time.Duration (duration histograms only).
func (s HistogramSnapshot) SumDuration() time.Duration { return time.Duration(s.Sum) }

// LastDuration returns Last as a time.Duration (duration histograms only).
func (s HistogramSnapshot) LastDuration() time.Duration { return time.Duration(s.Last) }

// MaxDuration returns Max as a time.Duration (duration histograms only).
func (s HistogramSnapshot) MaxDuration() time.Duration { return time.Duration(s.Max) }

// Mean returns the mean observed value in raw units (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot copies the histogram's counters. Buckets with zero count are
// included so consumers can reconstruct the full bound table.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Last:    h.last.Load(),
		Max:     h.max.Load(),
		Buckets: make([]Bucket, len(h.counts)),
	}
	for i := range h.counts {
		var ub uint64
		if i < len(h.upper) {
			ub = h.upper[i]
		}
		s.Buckets[i] = Bucket{UpperBound: ub, Count: h.counts[i].Load()}
	}
	return s
}

// Merge adds other's bucket counts and totals into h. Both histograms must
// share the same bound table (same constructor); Merge panics otherwise.
// Merge is how per-shard histograms fold into a service-wide view without
// the Add path ever taking a lock.
func (h *Histogram) Merge(other *Histogram) {
	if len(other.counts) != len(h.counts) {
		panic("obs: merging histograms with different bucket layouts")
	}
	for i := range h.counts {
		h.counts[i].Add(other.counts[i].Load())
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	if l := other.last.Load(); l != 0 {
		h.last.Store(l)
	}
	for {
		om, cur := other.max.Load(), h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			break
		}
	}
}
