package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4): enough of the format
// for histograms, counters, and gauges, written with no dependencies. The
// service-level exporter (hotprefetch.MetricsHandler) composes these
// writers with its own Stats-derived series.

// promEscape escapes a label value per the exposition format.
func promEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

// WriteCounter writes one counter sample, with optional label pairs given
// as alternating name, value strings.
func WriteCounter(w io.Writer, name, help string, value uint64, labels ...string) {
	writeHeader(w, name, help, "counter")
	writeSample(w, name, "", labels, fmt.Sprintf("%d", value))
}

// WriteGauge writes one gauge sample, with optional label pairs given as
// alternating name, value strings.
func WriteGauge(w io.Writer, name, help string, value float64, labels ...string) {
	writeHeader(w, name, help, "gauge")
	writeSample(w, name, "", labels, formatFloat(value))
}

// WriteCounterVec writes one counter family with a sample per label value:
// values maps the label's value to the sample. Samples are emitted in
// sorted label order so output is deterministic.
func WriteCounterVec(w io.Writer, name, help, label string, values map[string]uint64) {
	writeHeader(w, name, help, "counter")
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		writeSample(w, name, "", []string{label, k}, fmt.Sprintf("%d", values[k]))
	}
}

// WriteGaugeVec writes one gauge family with a sample per label value:
// values maps the label's value to the sample. Samples are emitted in
// sorted label order so output is deterministic.
func WriteGaugeVec(w io.Writer, name, help, label string, values map[string]float64) {
	writeHeader(w, name, help, "gauge")
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		writeSample(w, name, "", []string{label, k}, formatFloat(values[k]))
	}
}

// WritePrometheus writes h as a Prometheus histogram family: cumulative
// le-labeled buckets in the exported unit, then _sum and _count.
func (h *Histogram) WritePrometheus(w io.Writer) {
	writeHeader(w, h.name, h.help, "histogram")
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.upper) {
			le = formatFloat(float64(h.upper[i]) / h.perUnit)
		}
		writeSample(w, h.name, "_bucket", []string{"le", le}, fmt.Sprintf("%d", cum))
	}
	writeSample(w, h.name, "_sum", nil, formatFloat(float64(h.sum.Load())/h.perUnit))
	writeSample(w, h.name, "_count", nil, fmt.Sprintf("%d", h.count.Load()))
}

// WritePrometheus writes the observer's own series: the latency and ratio
// histograms and the per-kind phase event counters.
func (o *Observer) WritePrometheus(w io.Writer) {
	o.AnalysisLatency.WritePrometheus(w)
	o.IngestStall.WritePrometheus(w)
	o.FlushLatency.WritePrometheus(w)
	o.AccuracyWindow.WritePrometheus(w)
	o.CompressLatency.WritePrometheus(w)
	o.BurstDuty.WritePrometheus(w)
	o.PrepassCollapse.WritePrometheus(w)
	events := make(map[string]uint64, NumKinds)
	for k := Kind(1); k < kindCount; k++ {
		events[k.String()] = o.counts[k].Load()
	}
	WriteCounterVec(w, "hotprefetch_phase_events_total",
		"Structured phase events emitted, by kind.", "kind", events)
	WriteCounterVec(w, "hotprefetch_supervisor_phase_transitions_total",
		"Supervisor phase transitions, by phase entered.", "phase", map[string]uint64{
			"profiling":   o.counts[KindPhaseProfiling].Load(),
			"optimized":   o.counts[KindPhaseOptimized].Load(),
			"hibernating": o.counts[KindPhaseHibernating].Load(),
		})
}

func writeHeader(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// writeSample writes one sample line: name+suffix{labels} value.
func writeSample(w io.Writer, name, suffix string, labels []string, value string) {
	if len(labels) == 0 {
		fmt.Fprintf(w, "%s%s %s\n", name, suffix, value)
		return
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteString(suffix)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(promEscape(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	fmt.Fprintf(w, "%s %s\n", b.String(), value)
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// representation that round-trips, no exponent for typical magnitudes.
func formatFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
