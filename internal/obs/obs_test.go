package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEmitOrderAndRing(t *testing.T) {
	o := NewWithCapacity(16)
	for i := 0; i < 5; i++ {
		o.Emit(KindCycleStart, i, uint64(i*10))
	}
	evs := o.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d: Seq = %d, want %d", i, e.Seq, i+1)
		}
		if e.Kind != KindCycleStart || e.Shard != int32(i) || e.Value != uint64(i*10) {
			t.Errorf("event %d: %+v", i, e)
		}
		if i > 0 && e.When < evs[i-1].When {
			t.Errorf("event %d: When went backwards: %v < %v", i, e.When, evs[i-1].When)
		}
	}
	if o.Seq() != 5 {
		t.Errorf("Seq() = %d, want 5", o.Seq())
	}
	if o.Count(KindCycleStart) != 5 {
		t.Errorf("Count(cycle_start) = %d, want 5", o.Count(KindCycleStart))
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	o := NewWithCapacity(16)
	for i := 0; i < 40; i++ {
		o.Emit(KindCycleAnalyzed, 0, uint64(i))
	}
	evs := o.Events()
	if len(evs) != 16 {
		t.Fatalf("got %d events, want ring capacity 16", len(evs))
	}
	if evs[0].Seq != 25 || evs[15].Seq != 40 {
		t.Errorf("ring holds Seq %d..%d, want 25..40", evs[0].Seq, evs[15].Seq)
	}
}

func TestNegativeShardNormalized(t *testing.T) {
	o := New()
	o.Emit(KindMatcherSwap, -7, 3)
	if evs := o.Events(); evs[0].Shard != -1 {
		t.Errorf("Shard = %d, want -1", evs[0].Shard)
	}
}

func TestInvalidKindTracedNotCounted(t *testing.T) {
	o := New()
	o.Emit(Kind(200), 0, 0)
	if got := o.Count(Kind(200)); got != 0 {
		t.Errorf("Count(invalid) = %d, want 0", got)
	}
	evs := o.Events()
	if len(evs) != 1 || evs[0].Kind != 0 {
		t.Errorf("invalid kind not normalized: %+v", evs)
	}
	if evs[0].Kind.String() != "unknown" {
		t.Errorf("Kind(0).String() = %q", evs[0].Kind.String())
	}
}

func TestTracerFanoutOrder(t *testing.T) {
	o := New()
	var mu sync.Mutex
	var got []Event
	o.Subscribe(TracerFunc(func(e Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	}))
	var second []Kind
	o.Subscribe(TracerFunc(func(e Event) {
		mu.Lock()
		second = append(second, e.Kind)
		mu.Unlock()
	}))
	o.Emit(KindPhaseProfiling, -1, 0)
	o.Emit(KindPhaseOptimized, -1, 0)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0].Kind != KindPhaseProfiling || got[1].Kind != KindPhaseOptimized {
		t.Errorf("first tracer saw %+v", got)
	}
	if len(second) != 2 {
		t.Errorf("second tracer saw %d events, want 2", len(second))
	}
}

func TestKindStringsDistinct(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(1); k < kindCount; k++ {
		s := k.String()
		if s == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share name %q", prev, k, s)
		}
		seen[s] = k
	}
	if len(seen) != NumKinds {
		t.Errorf("NumKinds = %d, named %d", NumKinds, len(seen))
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewDurationHistogram("test_seconds", "test")
	h.ObserveDuration(500 * time.Nanosecond) // below first bound -> bucket 0
	h.ObserveDuration(time.Microsecond)      // exactly the first bound -> bucket 0
	h.ObserveDuration(3 * time.Microsecond)  // (2µs, 5µs] -> bucket 2
	h.ObserveDuration(time.Minute)           // above all bounds -> +Inf bucket
	h.ObserveDuration(-time.Second)          // clamped to 0 -> bucket 0
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if got := s.Buckets[0].Count; got != 3 {
		t.Errorf("bucket 0 count = %d, want 3", got)
	}
	if got := s.Buckets[2].Count; got != 1 {
		t.Errorf("bucket 2 count = %d, want 1", got)
	}
	inf := s.Buckets[len(s.Buckets)-1]
	if inf.UpperBound != 0 || inf.Count != 1 {
		t.Errorf("+Inf bucket = %+v", inf)
	}
	if s.Max != uint64(time.Minute) {
		t.Errorf("Max = %d, want %d", s.Max, uint64(time.Minute))
	}
	if s.Last != 0 {
		t.Errorf("Last = %d, want 0 (clamped negative)", s.Last)
	}
	if s.MaxDuration() != time.Minute {
		t.Errorf("MaxDuration = %v", s.MaxDuration())
	}
	wantSum := uint64(500 + 1000 + 3000 + time.Minute.Nanoseconds())
	if s.Sum != wantSum {
		t.Errorf("Sum = %d, want %d", s.Sum, wantSum)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewRatioHistogram("test_ratio", "test")
	if (HistogramSnapshot{}).Mean() != 0 {
		t.Error("empty Mean must be 0")
	}
	h.ObserveRatio(0.25)
	h.ObserveRatio(0.75)
	h.ObserveRatio(2.0)  // clamps to 1
	h.ObserveRatio(-0.5) // clamps to 0
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d", s.Count)
	}
	if got := s.Mean(); got != 500 {
		t.Errorf("Mean = %g permille, want 500", got)
	}
	if s.Max != 1000 {
		t.Errorf("Max = %d, want 1000", s.Max)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewDurationHistogram("a", "")
	b := NewDurationHistogram("b", "")
	a.ObserveDuration(time.Microsecond)
	b.ObserveDuration(time.Millisecond)
	b.ObserveDuration(time.Second)
	a.Merge(b)
	s := a.Snapshot()
	if s.Count != 3 {
		t.Errorf("merged Count = %d, want 3", s.Count)
	}
	if s.Max != uint64(time.Second) {
		t.Errorf("merged Max = %d", s.Max)
	}
}

func TestHistogramMergePanicsOnLayoutMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merge of mismatched layouts must panic")
		}
	}()
	NewDurationHistogram("a", "").Merge(NewRatioHistogram("b", ""))
}

func TestNewHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds must panic")
		}
	}()
	NewHistogram("x", "", []uint64{10, 10}, 1)
}

func TestWritePrometheusHistogram(t *testing.T) {
	h := NewDurationHistogram("hp_test_seconds", "A test histogram.")
	h.ObserveDuration(3 * time.Microsecond)
	h.ObserveDuration(30 * time.Millisecond)
	var b strings.Builder
	h.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP hp_test_seconds A test histogram.",
		"# TYPE hp_test_seconds histogram",
		`hp_test_seconds_bucket{le="1e-06"} 0`,
		`hp_test_seconds_bucket{le="5e-06"} 1`, // cumulative
		`hp_test_seconds_bucket{le="10"} 2`,
		`hp_test_seconds_bucket{le="+Inf"} 2`,
		"hp_test_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusObserver(t *testing.T) {
	o := New()
	o.Emit(KindPhaseProfiling, -1, 0)
	o.Emit(KindPhaseOptimized, -1, 0)
	o.Emit(KindCycleStart, 0, 128)
	o.AnalysisLatency.ObserveDuration(time.Millisecond)
	o.IngestStall.ObserveDuration(2 * time.Microsecond)
	var b strings.Builder
	o.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"hotprefetch_analysis_latency_seconds_count 1",
		"hotprefetch_ingest_stall_seconds_count 1",
		"hotprefetch_flush_duration_seconds_count 0",
		"hotprefetch_accuracy_window_ratio_count 0",
		`hotprefetch_phase_events_total{kind="cycle_start"} 1`,
		`hotprefetch_phase_events_total{kind="matcher_swap"} 0`,
		`hotprefetch_supervisor_phase_transitions_total{phase="optimized"} 1`,
		`hotprefetch_supervisor_phase_transitions_total{phase="profiling"} 1`,
		`hotprefetch_supervisor_phase_transitions_total{phase="hibernating"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCounterAndGauge(t *testing.T) {
	var b strings.Builder
	WriteCounter(&b, "hp_refs_total", "Refs.", 42)
	WriteCounter(&b, "hp_labeled_total", "", 7, "shard", "3")
	WriteGauge(&b, "hp_state", "State.", 2)
	out := b.String()
	for _, want := range []string{
		"# TYPE hp_refs_total counter",
		"hp_refs_total 42",
		`hp_labeled_total{shard="3"} 7`,
		"# TYPE hp_state gauge",
		"hp_state 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "# HELP hp_labeled_total") {
		t.Error("empty help must not emit a HELP line")
	}
}

func TestPromEscape(t *testing.T) {
	var b strings.Builder
	WriteCounter(&b, "hp_esc_total", "", 1, "path", "a\"b\\c\nd")
	if !strings.Contains(b.String(), `path="a\"b\\c\nd"`) {
		t.Errorf("label not escaped: %s", b.String())
	}
}

// TestEmitDoesNotAllocate locks in the zero-allocation emission contract:
// ring append, kind counter, and tracer fan-out all run without a single
// heap allocation.
func TestEmitDoesNotAllocate(t *testing.T) {
	o := New()
	o.Subscribe(TracerFunc(func(Event) {}))
	allocs := testing.AllocsPerRun(1000, func() {
		o.Emit(KindCycleStart, 1, 64)
		o.AnalysisLatency.Observe(1000)
		o.AccuracyWindow.ObserveRatio(0.5)
	})
	if allocs != 0 {
		t.Errorf("emission allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkObserve measures the observability hot path with a subscriber
// attached: one phase event plus two histogram observations. The acceptance
// bar is 0 allocs/op.
func BenchmarkObserve(b *testing.B) {
	o := New()
	o.Subscribe(TracerFunc(func(Event) {}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Emit(KindCycleStart, 0, uint64(i))
		o.IngestStall.Observe(uint64(i) & 0xffff)
		o.AnalysisLatency.Observe(uint64(i) & 0xfffff)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewDurationHistogram("bench_seconds", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i) & 0xffffff)
	}
}
