// Package obs is the profiling service's observability layer: a bounded
// ring of structured phase events with monotonic timestamps, fixed-bucket
// latency histograms, and Prometheus text-format exposition.
//
// The paper's system is judged entirely by online measurements — profiling
// overhead (Figure 11), analysis latency per optimization cycle, and
// prefetch accuracy (Table 2) — so a production deployment needs the same
// telemetry as first-class runtime output: distributions instead of lossy
// last/max scalars, and a timeline of phase transitions instead of
// point-in-time counters.
//
// Everything on an emission path is allocation-free: events are fixed-size
// values appended to a preallocated ring, histogram observation is a bucket
// search plus atomic adds, and tracer fan-out walks a copy-on-write slice.
// Emission is cheap enough for per-cycle use but is not meant for the
// per-reference hot path — references are observed through the histograms'
// callers at phase granularity (cycle stalls, analysis latencies), never
// one event per Ref.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies a phase event. The zero Kind is invalid.
type Kind uint8

const (
	// KindPhaseProfiling, KindPhaseOptimized, and KindPhaseHibernating mark
	// the supervisor entering the corresponding phase of the paper's §5
	// profile → optimize → hibernate cycle. For KindPhaseOptimized, Value is
	// the number of hot streams the installed machine serves; for
	// KindPhaseHibernating it is the bad-window run that triggered the
	// teardown; for KindPhaseProfiling it is unused.
	KindPhaseProfiling Kind = iota + 1
	KindPhaseOptimized
	KindPhaseHibernating

	// KindCycleStart marks a shard's grammar hitting its symbol budget and
	// beginning a cycle-end phase transition. Value is the grammar size.
	KindCycleStart

	// KindCycleAnalyzed marks a cycle-end hot-stream analysis completing.
	// Value is the analysis latency in nanoseconds.
	KindCycleAnalyzed

	// KindCycleBanked marks a cycle's hot streams landing in the shard's
	// retained set. Value is the number of streams banked.
	KindCycleBanked

	// KindAnalysisFailed marks a cycle-end analysis that panicked or blew
	// its deadline; KindAnalysisSkipped marks a cycle degraded to
	// ingest-and-recycle by an open circuit breaker. Value is unused.
	KindAnalysisFailed
	KindAnalysisSkipped

	// KindBreakerOpen, KindBreakerHalfOpen, and KindBreakerClosed mark a
	// shard's circuit breaker changing state. Value is unused.
	KindBreakerOpen
	KindBreakerHalfOpen
	KindBreakerClosed

	// KindMatcherSwap marks a ConcurrentMatcher publishing a retrained (or
	// pass-through) DFSM. Value is the new machine's stream count: zero
	// marks a deoptimizing swap to the pass-through machine.
	KindMatcherSwap

	// KindBurstAwake and KindBurstHibernate mark a shard's bursty-sampling
	// front end switching phase (paper §2.2: nAwake0 burst-periods of real
	// tracing alternating with nHibernate0 of near-silence). For
	// KindBurstHibernate, Value is the number of references sampled during
	// the awake phase that just ended; for KindBurstAwake it is the number
	// of references shed during the completed hibernation.
	KindBurstAwake
	KindBurstHibernate

	// KindSnapshotWritten marks a durable snapshot encode completing (Value
	// is the stream count written). KindSnapshotRestored marks a warm start
	// from a snapshot (Value is the stream count restored).
	// KindSnapshotLoadFailed marks a snapshot load rejected by the format
	// validator — corruption, truncation, or version skew — and the profile
	// degrading to cold profiling. KindSnapshotStaleRejected marks a
	// restored profile demoted by the supervisor as stale: bad accuracy
	// windows or workload drift (Value is the bad-window run or 0 for
	// drift).
	KindSnapshotWritten
	KindSnapshotRestored
	KindSnapshotLoadFailed
	KindSnapshotStaleRejected

	// KindPredictorTrial marks the supervisor starting an A/B predictor
	// trial (Value is the trained stream count). KindPredictorWinner marks
	// a trial concluding with the winner swapped in (Value is 0 when the
	// champion won, 1 for the challenger).
	KindPredictorTrial
	KindPredictorWinner

	kindCount // sentinel; keep last
)

// NumKinds is the number of defined event kinds.
const NumKinds = int(kindCount) - 1

// String returns the snake_case kind name used as the Prometheus label.
func (k Kind) String() string {
	switch k {
	case KindPhaseProfiling:
		return "phase_profiling"
	case KindPhaseOptimized:
		return "phase_optimized"
	case KindPhaseHibernating:
		return "phase_hibernating"
	case KindCycleStart:
		return "cycle_start"
	case KindCycleAnalyzed:
		return "cycle_analyzed"
	case KindCycleBanked:
		return "cycle_banked"
	case KindAnalysisFailed:
		return "analysis_failed"
	case KindAnalysisSkipped:
		return "analysis_skipped"
	case KindBreakerOpen:
		return "breaker_open"
	case KindBreakerHalfOpen:
		return "breaker_half_open"
	case KindBreakerClosed:
		return "breaker_closed"
	case KindMatcherSwap:
		return "matcher_swap"
	case KindBurstAwake:
		return "burst_awake"
	case KindBurstHibernate:
		return "burst_hibernate"
	case KindSnapshotWritten:
		return "snapshot_written"
	case KindSnapshotRestored:
		return "snapshot_restored"
	case KindSnapshotLoadFailed:
		return "snapshot_load_failed"
	case KindSnapshotStaleRejected:
		return "snapshot_stale_rejected"
	case KindPredictorTrial:
		return "predictor_trial"
	case KindPredictorWinner:
		return "predictor_winner"
	default:
		return "unknown"
	}
}

// Event is one structured phase event. Events are small fixed-size values:
// they are stored in the ring and handed to tracers by value, so emission
// never allocates.
type Event struct {
	// Seq is the event's position in the observer's global emission order,
	// starting at 1. Gaps never occur; a tracer can detect ring overwrite by
	// comparing Seq against the ring snapshot.
	Seq uint64

	// When is the monotonic time of emission, measured from the observer's
	// creation. Monotonic by construction: events with higher Seq never have
	// smaller When.
	When time.Duration

	// Kind is the event type; Value is its kind-specific payload.
	Kind  Kind
	Value uint64

	// Shard is the index of the shard the event concerns, or -1 for events
	// that are not shard-scoped (supervisor phases, matcher swaps).
	Shard int32
}

// Tracer receives every event synchronously at emission, in order.
// Implementations must be fast and must not call back into the emitting
// subsystem (the emitter may hold internal locks); tests typically append
// to a slice under a private mutex.
type Tracer interface {
	TraceEvent(Event)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(Event)

// TraceEvent calls f(e).
func (f TracerFunc) TraceEvent(e Event) { f(e) }

// Observer is the observability hub one profiling service shares: the phase
// event ring, the latency histograms, and the per-kind event counters the
// Prometheus exporter reads. The zero value is not usable; call New.
//
// All methods are safe for concurrent use.
type Observer struct {
	start time.Time // monotonic base for Event.When

	// Latency and ratio distributions, recorded by the service at phase
	// granularity. Never nil.
	AnalysisLatency *Histogram // cycle-end hot-stream analysis wall time
	IngestStall     *Histogram // ingest-path stall charged to a grammar cycle
	FlushLatency    *Histogram // ShardedProfile.Flush wall time
	AccuracyWindow  *Histogram // supervisor accuracy-window hit ratio
	CompressLatency *Histogram // per-batch Sequitur compression wall time
	BurstDuty       *Histogram // per-phase burst sampling duty (sampled/checked)
	PrepassCollapse *Histogram // per-batch ingest front-end collapse ratio

	mu      sync.Mutex // guards ring writes and tracer registration
	ring    []Event    // fixed-capacity event ring
	next    uint64     // ring slot for the next event (monotone, mod len)
	seq     atomic.Uint64
	tracers atomic.Pointer[[]Tracer] // copy-on-write subscriber list

	counts [kindCount]atomic.Uint64 // emissions per kind
}

// DefaultRingCapacity is the event ring size used by New.
const DefaultRingCapacity = 1024

// New returns an Observer with the default ring capacity.
func New() *Observer { return NewWithCapacity(DefaultRingCapacity) }

// NewWithCapacity returns an Observer whose event ring holds capacity
// events (minimum 16); older events are overwritten once it wraps.
func NewWithCapacity(capacity int) *Observer {
	if capacity < 16 {
		capacity = 16
	}
	return &Observer{
		start:           time.Now(),
		ring:            make([]Event, capacity),
		AnalysisLatency: NewDurationHistogram("hotprefetch_analysis_latency_seconds", "Cycle-end hot-stream analysis latency."),
		IngestStall:     NewDurationHistogram("hotprefetch_ingest_stall_seconds", "Ingest-path stall charged to a grammar-budget cycle."),
		FlushLatency:    NewDurationHistogram("hotprefetch_flush_duration_seconds", "ShardedProfile.Flush wall time."),
		AccuracyWindow:  NewRatioHistogram("hotprefetch_accuracy_window_ratio", "Supervisor accuracy-window hits/issued ratio."),
		CompressLatency: NewDurationHistogram("hotprefetch_compress_latency_seconds", "Per-batch Sequitur compression latency (batches of 8+ references; smaller batches are below clock resolution)."),
		BurstDuty:       NewRatioHistogram("hotprefetch_burst_duty_ratio", "References sampled per burst phase over references checked."),
		PrepassCollapse: NewRatioHistogram("hotprefetch_prepass_collapse_ratio", "References absorbed by the two-level ingest front end per batch over batch size (batches of 8+ references)."),
	}
}

// Emit records one event: it stamps the sequence number and monotonic
// timestamp, appends to the ring (overwriting the oldest event when full),
// bumps the kind counter, and fans the event out to every subscribed
// tracer, synchronously and in subscription order. Allocation-free.
//
// shard is the shard index the event concerns, or a negative value for
// events that are not shard-scoped.
func (o *Observer) Emit(kind Kind, shard int, value uint64) {
	if kind <= 0 || kind >= kindCount {
		kind = 0 // counted nowhere, but still traced as unknown
	} else {
		o.counts[kind].Add(1)
	}
	sh := int32(shard)
	if shard < 0 {
		sh = -1
	}
	o.mu.Lock()
	e := Event{
		Seq:   o.seq.Add(1),
		When:  time.Since(o.start),
		Kind:  kind,
		Value: value,
		Shard: sh,
	}
	o.ring[o.next%uint64(len(o.ring))] = e
	o.next++
	o.mu.Unlock()
	if ts := o.tracers.Load(); ts != nil {
		for _, t := range *ts {
			t.TraceEvent(e)
		}
	}
}

// Subscribe registers t to receive every subsequent event. Tracers cannot
// be unsubscribed individually; subscribe for the observer's lifetime.
func (o *Observer) Subscribe(t Tracer) {
	o.mu.Lock()
	defer o.mu.Unlock()
	var cur []Tracer
	if p := o.tracers.Load(); p != nil {
		cur = *p
	}
	next := make([]Tracer, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = t
	o.tracers.Store(&next)
}

// Events returns the ring contents, oldest first. The slice is a copy.
func (o *Observer) Events() []Event {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := o.next
	cap64 := uint64(len(o.ring))
	count := n
	if count > cap64 {
		count = cap64
	}
	out := make([]Event, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, o.ring[i%cap64])
	}
	return out
}

// Count returns the number of events emitted with the given kind.
func (o *Observer) Count(kind Kind) uint64 {
	if kind <= 0 || kind >= kindCount {
		return 0
	}
	return o.counts[kind].Load()
}

// Seq returns the sequence number of the most recent event (0 if none).
func (o *Observer) Seq() uint64 { return o.seq.Load() }

// Uptime returns the monotonic time since the observer was created — the
// clock Event.When is measured on.
func (o *Observer) Uptime() time.Duration { return time.Since(o.start) }
