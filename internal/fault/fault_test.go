package fault

import (
	"testing"
	"time"
)

// TestSeededDeterminism checks the core chaos-harness property: the same
// seed reproduces the same injection schedule, and different seeds diverge.
func TestSeededDeterminism(t *testing.T) {
	cfg := SeededConfig{
		Seed:         42,
		PanicRate:    0.3,
		DelayRate:    0.2,
		Delay:        time.Millisecond,
		RingFullRate: 0.5,
		StaleRate:    0.1,
	}
	run := func(cfg SeededConfig) (outs []Outcome, rings []bool, stales []bool) {
		s := NewSeeded(cfg)
		for i := 0; i < 1000; i++ {
			outs = append(outs, s.Analysis(i%4))
			rings = append(rings, s.RingFull(i%4))
			stales = append(stales, s.MatcherStale())
		}
		return
	}
	o1, r1, st1 := run(cfg)
	o2, r2, st2 := run(cfg)
	for i := range o1 {
		if o1[i] != o2[i] || r1[i] != r2[i] || st1[i] != st2[i] {
			t.Fatalf("decision %d diverged across runs with the same seed", i)
		}
	}
	cfg.Seed = 43
	o3, r3, _ := run(cfg)
	same := true
	for i := range o1 {
		if o1[i] != o3[i] || r1[i] != r3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical 1000-decision schedules")
	}
}

// TestSeededRates checks the rate boundaries: 0 never fires, 1 always does,
// and the injected counters match the observed decisions exactly.
func TestSeededRates(t *testing.T) {
	never := NewSeeded(SeededConfig{Seed: 7})
	for i := 0; i < 500; i++ {
		if out := never.Analysis(0); out.Panic || out.Delay != 0 {
			t.Fatal("zero-rate injector produced an analysis fault")
		}
		if never.RingFull(0) || never.MatcherStale() {
			t.Fatal("zero-rate injector fired a ring/stale fault")
		}
	}
	if never.Panics()+never.Delays()+never.RingFulls()+never.Stales() != 0 {
		t.Error("zero-rate injector counted injections")
	}

	always := NewSeeded(SeededConfig{
		Seed: 7, PanicRate: 1, DelayRate: 1, Delay: time.Millisecond,
		RingFullRate: 1, StaleRate: 1,
	})
	const n = 500
	for i := 0; i < n; i++ {
		out := always.Analysis(0)
		if !out.Panic || out.Delay != time.Millisecond {
			t.Fatal("rate-1 injector skipped an analysis fault")
		}
		if !always.RingFull(0) || !always.MatcherStale() {
			t.Fatal("rate-1 injector skipped a ring/stale fault")
		}
	}
	if always.Panics() != n || always.Delays() != n || always.RingFulls() != n || always.Stales() != n {
		t.Errorf("counters = %d/%d/%d/%d, want %d each",
			always.Panics(), always.Delays(), always.RingFulls(), always.Stales(), n)
	}
}

// TestSeededRateConvergence sanity-checks that a mid-range rate injects
// roughly its share of decisions.
func TestSeededRateConvergence(t *testing.T) {
	s := NewSeeded(SeededConfig{Seed: 99, PanicRate: 0.25})
	const n = 20000
	for i := 0; i < n; i++ {
		s.Analysis(0)
	}
	got := float64(s.Panics()) / n
	if got < 0.22 || got > 0.28 {
		t.Errorf("panic rate converged to %.3f, want ~0.25", got)
	}
}

// TestHooks checks nil fields are inert and set fields pass through.
func TestHooks(t *testing.T) {
	var empty Hooks
	if out := empty.Analysis(0); out != (Outcome{}) {
		t.Error("nil AnalysisFn returned a fault")
	}
	if empty.RingFull(0) || empty.MatcherStale() {
		t.Error("nil hooks fired")
	}
	h := Hooks{
		AnalysisFn:     func(shard int) Outcome { return Outcome{Panic: true} },
		RingFullFn:     func(shard int) bool { return shard == 1 },
		MatcherStaleFn: func() bool { return true },
	}
	if !h.Analysis(0).Panic || h.RingFull(0) || !h.RingFull(1) || !h.MatcherStale() {
		t.Error("hooks did not pass through")
	}
}
