// Package fault provides deterministic, seedable fault injection for the
// hotprefetch profiling service. The service's supervision points (the
// background analysis pool, the ring-buffer producers, and the supervisor's
// accuracy sampler) consult an Injector before doing real work; a nil
// injector — the default — disables every point with a single branch of
// overhead, so production builds pay nothing for the chaos hooks.
//
// Injection decisions are driven by a splitmix64 sequence keyed on a seed
// and a per-point draw counter, so the schedule of injected faults for a
// given seed is reproducible run to run: draw i at point p always yields the
// same verdict regardless of which goroutine consumes it. Implementations
// count what they actually injected, letting chaos tests reconcile the
// service's failure accounting against the injected schedule.
package fault

import (
	"sync/atomic"
	"time"
)

// Outcome is one analysis-point decision: delay the job, make it panic, or
// both (the delay is applied first, so a delayed panic also exercises the
// deadline path when the delay exceeds it).
type Outcome struct {
	Delay time.Duration
	Panic bool
}

// Injector is the hook interface compiled into the service's supervision
// points. All methods must be safe for concurrent use; every method is
// consulted from hot service goroutines, so implementations should be
// allocation-free.
type Injector interface {
	// Analysis is consulted once per cycle-end analysis (background pool
	// job or inline cycle) for the given shard, before the analysis runs.
	Analysis(shard int) Outcome

	// RingFull reports whether the producer's next push to the given
	// shard's ring should be treated as if the ring were full, simulating
	// back-pressure without needing a stalled consumer.
	RingFull(shard int) bool

	// MatcherStale reports whether the supervisor should treat the current
	// accuracy window as zero — forcing the matcher to look stale so the
	// deoptimization path can be driven on demand.
	MatcherStale() bool
}

// splitmix64 is the SplitMix64 output function: a bijective mixer whose
// outputs pass BigCrush, cheap enough for per-decision use.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw returns a uniform value in [0,1) for decision number seq at point
// salt under the given seed.
func draw(seed, salt, seq uint64) float64 {
	return float64(splitmix64(seed^salt*0x9e3779b97f4a7c15^seq)>>11) / float64(1<<53)
}

// Point salts keep the per-point sequences independent under one seed.
const (
	saltPanic = 1 + iota
	saltDelay
	saltRing
	saltStale
	saltCorrupt
)

// SeededConfig configures a Seeded injector. Rates are probabilities in
// [0,1]; a zero rate disables that point.
type SeededConfig struct {
	// Seed keys every decision sequence; the same seed reproduces the same
	// schedule.
	Seed uint64

	// PanicRate is the fraction of analyses that panic.
	PanicRate float64

	// DelayRate is the fraction of analyses delayed by Delay before they
	// run (set Delay above the service's AnalysisTimeout to force deadline
	// failures).
	DelayRate float64
	Delay     time.Duration

	// RingFullRate is the fraction of producer pushes that see a
	// simulated full ring.
	RingFullRate float64

	// StaleRate is the fraction of supervisor accuracy windows forced to
	// zero.
	StaleRate float64
}

// Seeded is a deterministic Injector: each point draws from its own
// seed-keyed splitmix64 sequence and counts what it injected.
type Seeded struct {
	cfg SeededConfig

	panicSeq, delaySeq, ringSeq, staleSeq atomic.Uint64
	panics, delays, ringFulls, stales     atomic.Uint64
}

// NewSeeded returns a deterministic injector for cfg.
func NewSeeded(cfg SeededConfig) *Seeded { return &Seeded{cfg: cfg} }

// Analysis implements Injector.
func (s *Seeded) Analysis(shard int) Outcome {
	var out Outcome
	if s.cfg.DelayRate > 0 && draw(s.cfg.Seed, saltDelay, s.delaySeq.Add(1)) < s.cfg.DelayRate {
		out.Delay = s.cfg.Delay
		s.delays.Add(1)
	}
	if s.cfg.PanicRate > 0 && draw(s.cfg.Seed, saltPanic, s.panicSeq.Add(1)) < s.cfg.PanicRate {
		out.Panic = true
		s.panics.Add(1)
	}
	return out
}

// RingFull implements Injector.
func (s *Seeded) RingFull(shard int) bool {
	if s.cfg.RingFullRate > 0 && draw(s.cfg.Seed, saltRing, s.ringSeq.Add(1)) < s.cfg.RingFullRate {
		s.ringFulls.Add(1)
		return true
	}
	return false
}

// MatcherStale implements Injector.
func (s *Seeded) MatcherStale() bool {
	if s.cfg.StaleRate > 0 && draw(s.cfg.Seed, saltStale, s.staleSeq.Add(1)) < s.cfg.StaleRate {
		s.stales.Add(1)
		return true
	}
	return false
}

// Panics returns the number of analysis panics injected so far.
func (s *Seeded) Panics() uint64 { return s.panics.Load() }

// Delays returns the number of analysis delays injected so far.
func (s *Seeded) Delays() uint64 { return s.delays.Load() }

// RingFulls returns the number of simulated full-ring pushes so far.
func (s *Seeded) RingFulls() uint64 { return s.ringFulls.Load() }

// Stales returns the number of accuracy windows forced stale so far.
func (s *Seeded) Stales() uint64 { return s.stales.Load() }

// Hooks is a function-valued Injector for targeted tests: nil fields are
// inert, so a test can drive exactly one point.
type Hooks struct {
	AnalysisFn     func(shard int) Outcome
	RingFullFn     func(shard int) bool
	MatcherStaleFn func() bool
}

// Analysis implements Injector.
func (h *Hooks) Analysis(shard int) Outcome {
	if h.AnalysisFn == nil {
		return Outcome{}
	}
	return h.AnalysisFn(shard)
}

// RingFull implements Injector.
func (h *Hooks) RingFull(shard int) bool {
	return h.RingFullFn != nil && h.RingFullFn(shard)
}

// MatcherStale implements Injector.
func (h *Hooks) MatcherStale() bool {
	return h.MatcherStaleFn != nil && h.MatcherStaleFn()
}

// Corruptor deterministically corrupts byte buffers for durable-state chaos
// tests: each call draws the next value of a seed-keyed splitmix64 sequence
// to pick an offset and a bit (or a truncation point), so a chaos matrix's
// corruption schedule reproduces run to run exactly like the Seeded
// injector's fault schedule.
type Corruptor struct {
	seed  uint64
	seq   atomic.Uint64
	flips atomic.Uint64
}

// NewCorruptor returns a deterministic corruptor for the seed.
func NewCorruptor(seed uint64) *Corruptor { return &Corruptor{seed: seed} }

// next returns the sequence's next raw draw, keyed like draw's per-point
// sequences (the salt product wraps, hence the non-constant operand).
func (c *Corruptor) next() uint64 {
	salt := uint64(saltCorrupt)
	return splitmix64(c.seed ^ salt*0x9e3779b97f4a7c15 ^ c.seq.Add(1))
}

// FlipBit flips one schedule-determined bit of buf in place and returns the
// byte offset it touched, or -1 for an empty buffer.
func (c *Corruptor) FlipBit(buf []byte) int {
	if len(buf) == 0 {
		return -1
	}
	r := c.next()
	off := int(r % uint64(len(buf)))
	buf[off] ^= 1 << ((r >> 32) % 8)
	c.flips.Add(1)
	return off
}

// Truncate returns a schedule-determined strict prefix of buf (possibly
// empty; always shorter than buf when buf is non-empty).
func (c *Corruptor) Truncate(buf []byte) []byte {
	if len(buf) == 0 {
		return buf
	}
	return buf[:int(c.next()%uint64(len(buf)))]
}

// Flips returns the number of bits flipped so far.
func (c *Corruptor) Flips() uint64 { return c.flips.Load() }
