// Package reuse computes LRU stack (reuse) distances of cache-block traces:
// for each access, the number of distinct blocks touched since the previous
// access to the same block. Under LRU, an access hits a cache of capacity C
// exactly when its reuse distance is below C (per set, approximately, for
// set-associative caches), so the distance distribution predicts miss
// behaviour independent of any particular cache.
//
// The reproduction uses it to validate its workload construction: the
// paper's effect requires hot data stream reuse distances to exceed the L2
// capacity (otherwise the streams would be cache-resident and there would
// be nothing to prefetch). See the reuse-distance experiment in
// internal/experiment.
package reuse

// Infinite is the distance reported for a block's first access.
const Infinite = ^uint64(0)

// fenwick is a binary indexed tree over access positions; a 1 marks the
// current most-recent access position of some block.
type fenwick struct {
	tree []uint64
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]uint64, n+1)} }

func (f *fenwick) add(i int, delta uint64) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// sum returns the prefix sum over positions [0, i].
func (f *fenwick) sum(i int) uint64 {
	var s uint64
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// Distances returns the reuse distance of every access in the block trace,
// Infinite for first touches. It runs in O(n log n).
func Distances(blocks []uint64) []uint64 {
	out := make([]uint64, len(blocks))
	last := make(map[uint64]int, 1024)
	bit := newFenwick(len(blocks))
	var active uint64 // number of distinct blocks seen so far
	for t, b := range blocks {
		if prev, ok := last[b]; ok {
			// Distinct blocks touched after prev: active positions in
			// (prev, t).
			out[t] = active - bit.sum(prev)
			bit.add(prev, ^uint64(0)) // remove the old position (subtract 1)
		} else {
			out[t] = Infinite
			active++
		}
		bit.add(t, 1)
		last[b] = t
	}
	return out
}

// Histogram buckets reuse distances by the given ascending capacity bounds.
// Counts[i] holds accesses with distance < Bounds[i] (and >= Bounds[i-1]);
// Beyond counts finite distances >= the last bound; Cold counts first
// touches.
type Histogram struct {
	Bounds []uint64
	Counts []uint64
	Beyond uint64
	Cold   uint64
	Total  uint64
}

// Compute builds a reuse-distance histogram of the block trace.
func Compute(blocks []uint64, bounds []uint64) Histogram {
	h := Histogram{
		Bounds: append([]uint64(nil), bounds...),
		Counts: make([]uint64, len(bounds)),
		Total:  uint64(len(blocks)),
	}
	for _, d := range Distances(blocks) {
		switch {
		case d == Infinite:
			h.Cold++
		default:
			placed := false
			for i, b := range h.Bounds {
				if d < b {
					h.Counts[i]++
					placed = true
					break
				}
			}
			if !placed {
				h.Beyond++
			}
		}
	}
	return h
}

// FractionAtLeast returns the fraction of non-cold accesses whose reuse
// distance is at least bound.
func (h Histogram) FractionAtLeast(bound uint64) float64 {
	warm := h.Total - h.Cold
	if warm == 0 {
		return 0
	}
	var n uint64 = h.Beyond
	for i, b := range h.Bounds {
		if b > bound {
			n += h.Counts[i]
		}
	}
	// Counts[i] covers [Bounds[i-1], Bounds[i]); include buckets whose lower
	// edge is >= bound. The loop above approximates by bucket upper edge;
	// callers should pass bound equal to one of the bucket bounds for exact
	// results.
	return float64(n) / float64(warm)
}
