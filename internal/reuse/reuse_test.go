package reuse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistancesHandCases(t *testing.T) {
	cases := []struct {
		trace []uint64
		want  []uint64
	}{
		{[]uint64{}, []uint64{}},
		{[]uint64{7}, []uint64{Infinite}},
		{[]uint64{7, 7}, []uint64{Infinite, 0}},
		{[]uint64{1, 2, 1}, []uint64{Infinite, Infinite, 1}},
		{[]uint64{1, 2, 3, 1}, []uint64{Infinite, Infinite, Infinite, 2}},
		// Repeated interleavings: a b a b -> a sees {b}, b sees {a}.
		{[]uint64{1, 2, 1, 2}, []uint64{Infinite, Infinite, 1, 1}},
		// Touching b twice between a's accesses still counts b once.
		{[]uint64{1, 2, 2, 1}, []uint64{Infinite, Infinite, 0, 1}},
	}
	for _, c := range cases {
		got := Distances(c.trace)
		if len(got) != len(c.want) {
			t.Fatalf("trace %v: lengths differ", c.trace)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("trace %v: distance[%d] = %d, want %d", c.trace, i, got[i], c.want[i])
			}
		}
	}
}

// naiveDistances is the O(n^2) specification.
func naiveDistances(blocks []uint64) []uint64 {
	out := make([]uint64, len(blocks))
	for t, b := range blocks {
		prev := -1
		for i := t - 1; i >= 0; i-- {
			if blocks[i] == b {
				prev = i
				break
			}
		}
		if prev < 0 {
			out[t] = Infinite
			continue
		}
		distinct := map[uint64]bool{}
		for i := prev + 1; i < t; i++ {
			distinct[blocks[i]] = true
		}
		out[t] = uint64(len(distinct))
	}
	return out
}

// Property: the Fenwick implementation matches the quadratic specification.
func TestPropertyMatchesNaive(t *testing.T) {
	f := func(seed int64, n8 uint8, alpha uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(n8)%200 + 1
		k := int(alpha)%20 + 1
		trace := make([]uint64, n)
		for i := range trace {
			trace[i] = uint64(r.Intn(k))
		}
		got := Distances(trace)
		want := naiveDistances(trace)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestComputeHistogram(t *testing.T) {
	// Cyclic trace over 4 blocks: after the cold pass, every access has
	// distance 3.
	var trace []uint64
	for lap := 0; lap < 5; lap++ {
		trace = append(trace, 1, 2, 3, 4)
	}
	h := Compute(trace, []uint64{2, 8})
	if h.Cold != 4 {
		t.Errorf("Cold = %d, want 4", h.Cold)
	}
	if h.Counts[0] != 0 || h.Counts[1] != 16 {
		t.Errorf("Counts = %v, want [0 16]", h.Counts)
	}
	if h.Beyond != 0 {
		t.Errorf("Beyond = %d, want 0", h.Beyond)
	}
	if h.Total != 20 {
		t.Errorf("Total = %d", h.Total)
	}
	// All warm accesses have distance 3 >= 2.
	if got := h.FractionAtLeast(2); got != 1 {
		t.Errorf("FractionAtLeast(2) = %v, want 1", got)
	}
	// None have distance >= 8.
	if got := h.FractionAtLeast(8); got != 0 {
		t.Errorf("FractionAtLeast(8) = %v, want 0", got)
	}
}

func TestHistogramLRUEquivalence(t *testing.T) {
	// Sanity link to caching: for a fully-associative LRU cache of C
	// blocks, hits = accesses with distance < C. Check on a random trace
	// against a simple LRU simulation.
	r := rand.New(rand.NewSource(9))
	trace := make([]uint64, 2000)
	for i := range trace {
		trace[i] = uint64(r.Intn(50))
	}
	const capacity = 16

	// LRU simulation.
	var lru []uint64
	hits := 0
	for _, b := range trace {
		found := -1
		for i, x := range lru {
			if x == b {
				found = i
				break
			}
		}
		if found >= 0 {
			hits++
			lru = append(lru[:found], lru[found+1:]...)
		} else if len(lru) == capacity {
			lru = lru[:capacity-1]
		}
		lru = append([]uint64{b}, lru...)
	}

	// Distance-based prediction.
	predicted := 0
	for _, d := range Distances(trace) {
		if d != Infinite && d < capacity {
			predicted++
		}
	}
	if predicted != hits {
		t.Errorf("distance-predicted hits %d != simulated LRU hits %d", predicted, hits)
	}
}

func BenchmarkDistances(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	trace := make([]uint64, 100000)
	for i := range trace {
		trace[i] = uint64(r.Intn(5000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distances(trace)
	}
}
