package experiment

import (
	"testing"

	"hotprefetch/internal/opt"
	"hotprefetch/internal/workload"
)

// TestPaperShapeSuite is the repository's headline integration test: it runs
// every benchmark through every evaluation mode and asserts the qualitative
// shape of the paper's Figures 11 and 12 and Table 2. It takes ~20s; skipped
// under -short.
func TestPaperShapeSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation suite; run without -short")
	}
	allModes := []opt.Mode{
		opt.ModeBase, opt.ModeProfile, opt.ModeHds,
		opt.ModeNoPref, opt.ModeSeqPref, opt.ModeDynPref,
	}
	runs := map[string]*Run{}
	for _, p := range workload.Catalog() {
		run, err := RunBenchmark(p, allModes)
		if err != nil {
			t.Fatal(err)
		}
		runs[p.Name] = run
		dyn := run.Results[opt.ModeDynPref]
		avg := dyn.AvgPerCycle()
		t.Logf("%-7s base=%5.1f%% prof=%5.1f%% hds=%5.1f%% | nopref=%5.1f%% seq=%6.1f%% dyn=%6.1f%% | cyc=%2d traced=%6d hds=%3d dfsm=<%d,%d> procs=%2d miss=%.2f",
			p.Name,
			run.Overhead(opt.ModeBase), run.Overhead(opt.ModeProfile), run.Overhead(opt.ModeHds),
			run.Overhead(opt.ModeNoPref), run.Overhead(opt.ModeSeqPref), run.Overhead(opt.ModeDynPref),
			dyn.OptCycles(), avg.TracedRefs, avg.HotStreams, avg.DFSMStates, avg.DFSMTransitions,
			avg.ProcsModified, dyn.Cache.MissRatio())
	}

	for name, run := range runs {
		base := run.Overhead(opt.ModeBase)
		prof := run.Overhead(opt.ModeProfile)
		hds := run.Overhead(opt.ModeHds)
		noPref := run.Overhead(opt.ModeNoPref)
		seq := run.Overhead(opt.ModeSeqPref)
		dyn := run.Overhead(opt.ModeDynPref)

		// Figure 11 shape: the check overhead dominates and each pipeline
		// stage adds a little; all bars stay single-digit (paper: 2.5-6%
		// Base, <= +1.6% Prof, <= +1.4% Hds, total 3-7%).
		if base < 1 || base > 8 {
			t.Errorf("%s: Base overhead %.1f%% outside plausible range", name, base)
		}
		if prof < base || prof-base > 2.5 {
			t.Errorf("%s: Prof-Base delta %.1f%% (prof %.1f, base %.1f) out of shape",
				name, prof-base, prof, base)
		}
		if hds < prof || hds-prof > 2 {
			t.Errorf("%s: Hds-Prof delta %.1f%% out of shape", name, hds-prof)
		}

		// Figure 12 shape: matching without prefetching costs a bit more
		// than Hds (paper: no-pref 4-8%), and full dynamic prefetching wins
		// overall (paper: 5-19% improvement).
		if noPref < hds {
			t.Errorf("%s: No-pref (%.1f%%) should cost more than Hds (%.1f%%)", name, noPref, hds)
		}
		if noPref > 12 {
			t.Errorf("%s: No-pref overhead %.1f%% implausibly high", name, noPref)
		}
		if dyn >= -1 {
			t.Errorf("%s: Dyn-pref %.1f%% is not a clear win", name, dyn)
		}
		if dyn < -30 {
			t.Errorf("%s: Dyn-pref %.1f%% implausibly large", name, dyn)
		}
		if dyn >= seq {
			t.Errorf("%s: Dyn-pref (%.1f%%) must beat Seq-pref (%.1f%%)", name, dyn, seq)
		}

		// Seq-pref helps only parser (sequentially allocated streams);
		// every other benchmark degrades (paper §4.3).
		if name == "parser" {
			if seq >= 0 {
				t.Errorf("parser: Seq-pref %.1f%% should be a win", seq)
			}
		} else if seq <= 0 {
			t.Errorf("%s: Seq-pref %.1f%% should degrade on scattered layout", name, seq)
		}

		// Table 2 shape: stream counts 14-41ish, DFSM states near 2n+1,
		// procedures modified 6-13.
		avg := run.Results[opt.ModeDynPref].AvgPerCycle()
		if avg.HotStreams < 10 || avg.HotStreams > 50 {
			t.Errorf("%s: %d hot streams per cycle outside Table 2 shape", name, avg.HotStreams)
		}
		if avg.ProcsModified < 5 || avg.ProcsModified > 14 {
			t.Errorf("%s: %d procs modified outside Table 2 shape", name, avg.ProcsModified)
		}
		if avg.DFSMStates < avg.HotStreams || avg.DFSMStates > 4*avg.HotStreams {
			t.Errorf("%s: %d DFSM states inconsistent with %d streams",
				name, avg.DFSMStates, avg.HotStreams)
		}
		if avg.TracedRefs < 1000 {
			t.Errorf("%s: only %d refs traced per cycle", name, avg.TracedRefs)
		}
	}

	// §1: streams are "long enough (15-20 object references on average) so
	// that they can be prefetched ahead of use in a timely manner". Assert
	// the claim over the suite; individual benchmarks (parser's fused
	// sequential chains) may run longer.
	var lenSum float64
	for _, run := range runs {
		lenSum += run.Results[opt.ModeDynPref].AvgPerCycle().AvgStreamLen()
	}
	if suiteAvg := lenSum / float64(len(runs)); suiteAvg < 12 || suiteAvg > 30 {
		t.Errorf("suite average stream length %.1f outside the paper's 15-20 regime", suiteAvg)
	}

	// vpr is the paper's biggest winner (19%); vortex its smallest (5%).
	// Cycle counts order as in Table 2: twolf most, vortex/parser fewest.
	vpr := runs["vpr"].Overhead(opt.ModeDynPref)
	for name, run := range runs {
		if d := run.Overhead(opt.ModeDynPref); d < vpr-0.5 {
			t.Errorf("vpr should win biggest: %s %.1f%% beats vpr %.1f%%", name, d, vpr)
		}
	}
	vortex := runs["vortex"].Overhead(opt.ModeDynPref)
	for name, run := range runs {
		if d := run.Overhead(opt.ModeDynPref); d > vortex+0.5 {
			t.Errorf("vortex should win smallest: %s %.1f%% below vortex %.1f%%", name, d, vortex)
		}
	}
	twolfCycles := runs["twolf"].Results[opt.ModeDynPref].OptCycles()
	for name, run := range runs {
		if c := run.Results[opt.ModeDynPref].OptCycles(); c > twolfCycles {
			t.Errorf("twolf should complete the most cycles: %s has %d > %d", name, c, twolfCycles)
		}
	}
	for _, name := range []string{"parser", "vortex"} {
		if c := runs[name].Results[opt.ModeDynPref].OptCycles(); c < 1 || c > 6 {
			t.Errorf("%s: %d cycles, want a short run (1-6)", name, c)
		}
	}
}
