package experiment

import (
	"testing"

	"hotprefetch/internal/workload"
)

// TestSamplingPreservesHotStreams is the acceptance check behind the
// paper's sampling premise: at the scaled 5% rate, the sampled profile must
// rediscover most of the lossless top streams on a stream-rich workload.
func TestSamplingPreservesHotStreams(t *testing.T) {
	refs := 240000
	if testing.Short() {
		refs = 60000
	}
	res, err := SamplingComparison([]workload.Params{workload.Mcf()}, refs, ScaledSamplingConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.SampledRefs == 0 || r.Rate > 0.10 || r.Rate < 0.01 {
		t.Fatalf("achieved rate %.4f (sampled %d of %d), want ~0.05", r.Rate, r.SampledRefs, r.TotalRefs)
	}
	if r.LosslessStreams == 0 || r.SampledStreams == 0 {
		t.Fatalf("degenerate stream counts: lossless %d, sampled %d", r.LosslessStreams, r.SampledStreams)
	}
	if r.TopRecall < 0.5 {
		t.Errorf("top-10 recall %.2f below 0.5: sampling lost the hottest streams", r.TopRecall)
	}
	if r.HeatRecall < 0.5 {
		t.Errorf("heat-weighted recall %.2f below 0.5", r.HeatRecall)
	}
}

// TestPaperSamplingRateAchieved pins the anchor configuration: awake-only
// paper counters must sample at ~0.5%.
func TestPaperSamplingRateAchieved(t *testing.T) {
	refs := 240000
	if testing.Short() {
		t.Skip("needs a long trace for a 0.5% sample to contain streams")
	}
	res, err := SamplingComparison([]workload.Params{workload.Mcf()}, refs, PaperSamplingConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Rate < 0.004 || r.Rate > 0.006 {
		t.Errorf("achieved rate %.5f, want ~0.005", r.Rate)
	}
}
