package experiment

import (
	"fmt"

	"hotprefetch/internal/machine"
	"hotprefetch/internal/reuse"
	"hotprefetch/internal/workload"
)

// ReuseResult reports the reuse-distance structure of a benchmark's demand
// reference stream, in cache blocks. The paper's effect requires stream
// reuse distances beyond the L2 capacity — blocks evicted between
// traversals are what prefetching brings back early — so this experiment
// validates the substrate: a large share of warm accesses must have
// distances past L2, and the L1/L2 capacities must fall inside the
// distribution rather than beyond it.
type ReuseResult struct {
	Name      string
	Accesses  uint64
	WithinL1  float64 // warm accesses with distance < L1 capacity (hits)
	WithinL2  float64 // warm accesses with distance in [L1, L2)
	BeyondL2  float64 // warm accesses with distance >= L2 capacity (misses)
	ColdShare float64 // first touches
}

// blockRecorder captures the first `budget` demand accesses as block
// numbers.
type blockRecorder struct {
	blocks []uint64
	budget int
	shift  uint
}

func (r *blockRecorder) OnAccess(now uint64, pc int, addr uint64, l1Hit, l2Hit bool) {
	if len(r.blocks) < r.budget {
		r.blocks = append(r.blocks, addr>>r.shift)
	}
}

// ReuseDistances measures each benchmark's reuse-distance distribution over
// its first `accesses` demand references (default 300000).
func ReuseDistances(params []workload.Params, accesses int) ([]ReuseResult, error) {
	if params == nil {
		params = workload.Catalog()
	}
	if accesses <= 0 {
		accesses = 300000
	}
	cache := workload.CacheConfig()
	l1Blocks := uint64(cache.L1Size / cache.BlockSize)
	l2Blocks := uint64(cache.L2Size / cache.BlockSize)

	out := make([]ReuseResult, 0, len(params))
	for _, p := range params {
		inst := workload.Build(p)
		m := inst.NewMachine(cache, false)
		rec := &blockRecorder{budget: accesses, shift: 5} // 32-byte blocks
		m.Cache.SetObserver(rec)
		m.Start()
		for len(rec.blocks) < rec.budget {
			st, err := m.Run(1 << 22)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p.Name, err)
			}
			if st != machine.CycleLimit {
				break
			}
		}

		h := reuse.Compute(rec.blocks, []uint64{l1Blocks, l2Blocks})
		warm := float64(h.Total - h.Cold)
		res := ReuseResult{Name: p.Name, Accesses: h.Total}
		if warm > 0 {
			res.WithinL1 = float64(h.Counts[0]) / warm
			res.WithinL2 = float64(h.Counts[1]) / warm
			res.BeyondL2 = float64(h.Beyond) / warm
		}
		if h.Total > 0 {
			res.ColdShare = float64(h.Cold) / float64(h.Total)
		}
		out = append(out, res)
	}
	return out, nil
}
