package experiment

import (
	"fmt"

	"hotprefetch/internal/baseline"
	"hotprefetch/internal/opt"
	"hotprefetch/internal/workload"
)

// StaticDynResult compares one-shot static prefetching against the paper's
// adaptive dynamic scheme on one benchmark (the comparison the paper defers
// to future work, §1). Overheads are percent versus the unoptimized
// baseline; negative values are speedups.
type StaticDynResult struct {
	Name    string
	Phases  int // program phases in the workload (1 = no phase behaviour)
	Static  float64
	Dynamic float64
}

// StaticVsDynamic runs each benchmark under (a) static one-shot prefetching
// — profile once, inject once, keep forever — and (b) the full dynamic
// cycle. The paper's hypothesis (§1): "for programs with distinct phase
// behavior, a dynamic prefetching scheme that adapts to program phase
// transitions may perform better."
func StaticVsDynamic(params []workload.Params) ([]StaticDynResult, error) {
	if params == nil {
		params = workload.Catalog()
	}
	out := make([]StaticDynResult, 0, len(params))
	for _, p := range params {
		staticCfg := OptConfig(opt.ModeDynPref)
		staticCfg.Static = true
		run, err := runBenchmark(p, []opt.Mode{opt.ModeDynPref}, func(opt.Mode) opt.Config {
			return staticCfg
		}, workload.CacheConfig())
		if err != nil {
			return nil, fmt.Errorf("%s static: %w", p.Name, err)
		}
		dynRun, err := RunBenchmark(p, []opt.Mode{opt.ModeDynPref})
		if err != nil {
			return nil, fmt.Errorf("%s dynamic: %w", p.Name, err)
		}
		out = append(out, StaticDynResult{
			Name:    p.Name,
			Phases:  p.Phases,
			Static:  run.Overhead(opt.ModeDynPref),
			Dynamic: dynRun.Overhead(opt.ModeDynPref),
		})
	}
	return out, nil
}

// ScheduleResult is one row of the prefetch scheduling extension: overall
// overhead and prefetch lateness under a given chunk size.
type ScheduleResult struct {
	Chunk           int // 0 = the paper's issue-all-at-match behaviour
	Overhead        float64
	Dropped         uint64 // prefetches lost at the outstanding-fill limit
	LateStallCycles uint64
	UsefulRatio     float64
}

// AblationScheduling evaluates the §4.3 future-work idea of scheduling
// prefetches instead of issuing a matched stream's whole tail at once:
// chunked issue spreads fills over the stream's own progress. The study
// runs under a memory system with a bounded number of outstanding prefetch
// fills (8 MSHRs) — the constraint that makes bursty issue lossy and
// scheduling worthwhile; with unlimited outstanding fills, immediate issue
// maximizes lead time and wins.
func AblationScheduling(p workload.Params, chunks []int) ([]ScheduleResult, error) {
	if chunks == nil {
		chunks = []int{0, 2, 4, 8}
	}
	cache := workload.CacheConfig()
	cache.MaxInflight = 8
	out := make([]ScheduleResult, 0, len(chunks))
	for _, chunk := range chunks {
		chunk := chunk
		run, err := runBenchmark(p, []opt.Mode{opt.ModeDynPref}, func(m opt.Mode) opt.Config {
			cfg := OptConfig(m)
			cfg.ScheduleChunk = chunk
			return cfg
		}, cache)
		if err != nil {
			return nil, err
		}
		res := run.Results[opt.ModeDynPref]
		useful := 0.0
		if res.Cache.Prefetches > 0 {
			useful = float64(res.Cache.UsefulPrefetches) / float64(res.Cache.Prefetches)
		}
		out = append(out, ScheduleResult{
			Chunk:           chunk,
			Overhead:        run.Overhead(opt.ModeDynPref),
			Dropped:         res.Cache.PrefetchDrops,
			LateStallCycles: res.Cache.LateStallCycles,
			UsefulRatio:     useful,
		})
	}
	return out, nil
}

// HybridResult compares dynamic prefetching alone against dynamic
// prefetching with a stride prefetcher running beside it — the paper's
// suggestion that "a stride-based prefetcher could complement our scheme by
// prefetching data address sequences that do not qualify as hot data
// streams" (§4.3).
type HybridResult struct {
	Name   string
	Dyn    float64
	Hybrid float64
}

// HybridComparison runs each benchmark with and without the complementary
// stride prefetcher attached to the cache during the dynamic prefetching
// run.
func HybridComparison(params []workload.Params) ([]HybridResult, error) {
	if params == nil {
		params = workload.Catalog()
	}
	cache := workload.CacheConfig()
	out := make([]HybridResult, 0, len(params))
	for _, p := range params {
		inst := workload.Build(p)
		base, err := opt.RunBaseline(inst.NewMachine(cache, false))
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", p.Name, err)
		}

		dyn, err := opt.Run(inst.NewMachine(cache, true), OptConfig(opt.ModeDynPref))
		if err != nil {
			return nil, fmt.Errorf("%s dyn: %w", p.Name, err)
		}

		mHybrid := inst.NewMachine(cache, true)
		baseline.NewStride(mHybrid.Cache, 256, 2)
		hyb, err := opt.Run(mHybrid, OptConfig(opt.ModeDynPref))
		if err != nil {
			return nil, fmt.Errorf("%s hybrid: %w", p.Name, err)
		}

		out = append(out, HybridResult{
			Name:   p.Name,
			Dyn:    pct(dyn.ExecCycles, base),
			Hybrid: pct(hyb.ExecCycles, base),
		})
	}
	return out, nil
}
