package experiment

import (
	"fmt"

	"hotprefetch/internal/baseline"
	"hotprefetch/internal/opt"
	"hotprefetch/internal/workload"
)

// HardwareResult compares the dynamic software prefetching scheme against
// the hardware prefetchers of §5.1 on one benchmark. Overheads are percent
// versus the unoptimized baseline (negative = speedup).
type HardwareResult struct {
	Name             string
	Baseline         uint64
	StrideOverhead   float64
	StrideStats      baseline.StrideStats
	NextLineOverhead float64
	NextLineStats    baseline.NextLineStats
	MarkovOverhead   float64
	MarkovStats      baseline.MarkovStats
	DynOverhead      float64
}

// HardwareComparison runs each benchmark under (a) a stride prefetcher, (b)
// a Markov correlation prefetcher, and (c) the paper's dynamic software
// scheme. It substantiates the §4.3 observation that stride prefetching
// cannot cover hot data stream addresses, and relates the software scheme to
// its closest hardware relative (§5.1).
func HardwareComparison(params []workload.Params) ([]HardwareResult, error) {
	if params == nil {
		params = workload.Catalog()
	}
	cache := workload.CacheConfig()
	out := make([]HardwareResult, 0, len(params))
	for _, p := range params {
		inst := workload.Build(p)
		res := HardwareResult{Name: p.Name}

		base, err := opt.RunBaseline(inst.NewMachine(cache, false))
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", p.Name, err)
		}
		res.Baseline = base

		// Stride prefetcher on the uninstrumented program.
		mStride := inst.NewMachine(cache, false)
		stride := baseline.NewStride(mStride.Cache, 256, 2)
		if err := mStride.RunToCompletion(); err != nil {
			return nil, fmt.Errorf("%s stride: %w", p.Name, err)
		}
		res.StrideOverhead = pct(mStride.Cycles, base)
		res.StrideStats = stride.Stats()

		// Tagged next-line prefetcher (stream-buffer-style, [17]).
		mNext := inst.NewMachine(cache, false)
		next := baseline.NewNextLine(mNext.Cache, 2)
		if err := mNext.RunToCompletion(); err != nil {
			return nil, fmt.Errorf("%s next-line: %w", p.Name, err)
		}
		res.NextLineOverhead = pct(mNext.Cycles, base)
		res.NextLineStats = next.Stats()

		// Markov correlation prefetcher.
		mMarkov := inst.NewMachine(cache, false)
		markov := baseline.NewMarkov(mMarkov.Cache, 2048, 2, 2)
		if err := mMarkov.RunToCompletion(); err != nil {
			return nil, fmt.Errorf("%s markov: %w", p.Name, err)
		}
		res.MarkovOverhead = pct(mMarkov.Cycles, base)
		res.MarkovStats = markov.Stats()

		// The paper's software scheme.
		dyn, err := opt.Run(inst.NewMachine(cache, true), OptConfig(opt.ModeDynPref))
		if err != nil {
			return nil, fmt.Errorf("%s dyn: %w", p.Name, err)
		}
		res.DynOverhead = pct(dyn.ExecCycles, base)

		out = append(out, res)
	}
	return out, nil
}

func pct(cycles, base uint64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (float64(cycles)/float64(base) - 1)
}
