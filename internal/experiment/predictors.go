package experiment

// Head-to-head predictor comparison: every workload's trace is split into a
// training prefix and an evaluation suffix, the training split is profiled
// (Sequitur + hot-data-stream analysis, the paper's §3 pipeline) into hot
// streams, and each registered predictor implementation is trained on the
// same streams and drives prefetching over the same evaluation replay
// through internal/memsim. One trace, one stream set, one cache geometry —
// the only variable is the predictor, so coverage/accuracy/timeliness and
// cycle cost are directly comparable across the design space the ROADMAP
// maps (DFSM prefix matching, Markov transition tables, stream/stride
// detection).

import (
	"fmt"

	"hotprefetch/internal/dfsm"
	"hotprefetch/internal/hotds"
	"hotprefetch/internal/markov"
	"hotprefetch/internal/memsim"
	"hotprefetch/internal/ref"
	"hotprefetch/internal/sequitur"
	"hotprefetch/internal/stride"
	"hotprefetch/internal/workload"
)

// PredictorResult is one (workload, predictor) cell of the head-to-head
// table.
type PredictorResult struct {
	Workload  string
	Predictor string

	TrainStreams int // hot streams extracted from the training split
	EvalRefs     int // references replayed through the simulated hierarchy

	Issued      uint64 // prefetch addresses issued during replay
	Useful      uint64 // prefetched blocks later touched by a demand access
	Late        uint64 // useful prefetches touched before their fill completed
	Comparisons uint64 // detection comparisons charged during replay

	Accuracy   float64 // Useful / Issued (paper Table 2's accuracy metric)
	Coverage   float64 // fraction of the baseline's L1 misses eliminated
	Timeliness float64 // 1 - Late/Useful: fraction of useful fills fully ahead

	Cycles         uint64  // replay cycles with this predictor driving prefetch
	BaselineCycles uint64  // the same replay with prefetching disabled
	CycleDelta     float64 // (Cycles - BaselineCycles) / BaselineCycles
}

// refStream is one extracted hot stream with its full reference sequence
// (pc and address), the common training input every predictor consumes.
type refStream struct {
	refs []ref.Ref
	heat uint64
}

// analyzeTraceRefs compresses a reference sequence and extracts its hot
// streams with full references (analyzeTrace keeps only pc sequences).
func analyzeTraceRefs(trace []ref.Ref, cfg hotds.Config) []refStream {
	g := sequitur.New()
	in := ref.NewInterner()
	vals := make([]uint64, len(trace))
	for i, r := range trace {
		vals[i] = uint64(in.Intern(r))
	}
	g.AppendRun(vals)
	infos := hotds.Analyze(g.Snapshot(), cfg)
	out := make([]refStream, len(infos))
	for i, info := range infos {
		refs := make([]ref.Ref, len(info.Word))
		for j, sym := range info.Word {
			refs[j] = in.Ref(ref.Symbol(sym))
		}
		out[i] = refStream{refs: refs, heat: info.Heat}
	}
	return out
}

// observeFn is the predictor surface the replay drives: one reference in,
// prefetch addresses and a detection comparison count out.
type observeFn func(ref.Ref) ([]uint64, int)

// PredictorHeadLen is the stream-head length the harness trains the DFSM
// with (the paper's best setting, §4.3).
const PredictorHeadLen = 2

// buildPredictor trains the named predictor implementation on streams. The
// set of names mirrors the root package's registry; it is spelled out here
// because internal packages cannot import the root registry (the root
// package imports them).
func buildPredictor(name string, streams []refStream) (observeFn, error) {
	switch name {
	case "dfsm":
		split := make([]dfsm.Stream, len(streams))
		for i, s := range streams {
			split[i] = dfsm.Split(s.refs, s.heat, PredictorHeadLen)
		}
		m := dfsm.NewMatcher(dfsm.Build(split, PredictorHeadLen))
		return m.Step, nil
	case "markov":
		ms := make([]markov.Stream, len(streams))
		for i, s := range streams {
			ms[i] = markov.Stream{Refs: s.refs, Heat: s.heat}
		}
		p, err := markov.New(ms, markov.Config{})
		if err != nil {
			return nil, err
		}
		return p.Observe, nil
	case "stride":
		ss := make([]stride.Stream, len(streams))
		for i, s := range streams {
			ss[i] = stride.Stream{Refs: s.refs, Heat: s.heat}
		}
		p, err := stride.New(ss, stride.Config{})
		if err != nil {
			return nil, err
		}
		return p.Observe, nil
	}
	return nil, fmt.Errorf("experiment: unknown predictor %q", name)
}

// PredictorNames lists the implementations the harness compares, in report
// order.
func PredictorNames() []string { return []string{"dfsm", "markov", "stride"} }

// replayPredictor drives the evaluation split through a fresh hierarchy with
// the predictor observing every demand access. Each access advances time by
// one issue cycle plus its stall; each detection comparison is charged one
// further cycle — the same per-check unit the paper's overhead model uses,
// kept deliberately simple so the cycle column measures relative predictor
// cost, not a calibrated machine.
func replayPredictor(eval []ref.Ref, obs observeFn) (memsim.Stats, uint64, uint64) {
	h := memsim.New(workload.CacheConfig())
	var now, comparisons uint64
	for _, r := range eval {
		stall := h.Access(now, r.PC, r.Addr, false)
		now += 1 + stall
		if obs == nil {
			continue
		}
		pf, cmp := obs(r)
		comparisons += uint64(cmp)
		now += uint64(cmp)
		for _, a := range pf {
			h.Prefetch(now, a)
		}
	}
	return h.Stats(), now, comparisons
}

// namedInstance pairs a built workload with its report name.
type namedInstance struct {
	name string
	inst *workload.Instance
}

// predictorWorkloads builds the comparison's workload set: the given params
// (nil means the full catalog), plus — only in full-catalog mode — the
// extended pointer-intensive workloads (health, em3d), which exist as built
// instances rather than catalog Params.
func predictorWorkloads(params []workload.Params) ([]namedInstance, error) {
	full := params == nil
	if full {
		params = workload.Catalog()
	}
	out := make([]namedInstance, 0, len(params)+2)
	for _, p := range params {
		out = append(out, namedInstance{name: p.Name, inst: workload.Build(p)})
	}
	if full {
		for _, name := range workload.ExtendedNames() {
			inst, err := workload.BuildExtended(name)
			if err != nil {
				return nil, err
			}
			out = append(out, namedInstance{name: name, inst: inst})
		}
	}
	return out, nil
}

// PredictorComparison runs every registered predictor over every workload:
// per workload the first 60% of the captured trace trains (profile → hot
// streams), the remaining 40% replays through the simulated hierarchy once
// per predictor plus once with no prefetching (the baseline all metrics are
// relative to). refs <= 0 means 150000 captured references per workload; a
// nil params slice means the full catalog plus the extended workloads.
func PredictorComparison(params []workload.Params, refs int) ([]PredictorResult, error) {
	if refs <= 0 {
		refs = 150000
	}
	insts, err := predictorWorkloads(params)
	if err != nil {
		return nil, err
	}
	acfg := AnalysisConfig()
	out := make([]PredictorResult, 0, len(insts)*len(PredictorNames()))
	for _, ni := range insts {
		trace, err := captureInstanceTrace(ni.inst, refs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ni.name, err)
		}
		cut := len(trace) * 60 / 100
		train, eval := trace[:cut], trace[cut:]
		streams := analyzeTraceRefs(train, acfg)

		base, baseCycles, _ := replayPredictor(eval, nil)
		for _, name := range PredictorNames() {
			obs, err := buildPredictor(name, streams)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", ni.name, name, err)
			}
			st, cycles, comparisons := replayPredictor(eval, obs)
			r := PredictorResult{
				Workload:       ni.name,
				Predictor:      name,
				TrainStreams:   len(streams),
				EvalRefs:       len(eval),
				Issued:         st.Prefetches,
				Useful:         st.UsefulPrefetches,
				Late:           st.LatePrefetches,
				Comparisons:    comparisons,
				Cycles:         cycles,
				BaselineCycles: baseCycles,
			}
			if r.Issued > 0 {
				r.Accuracy = float64(r.Useful) / float64(r.Issued)
			}
			if base.L1Misses > 0 && base.L1Misses >= st.L1Misses {
				r.Coverage = float64(base.L1Misses-st.L1Misses) / float64(base.L1Misses)
			}
			if r.Useful > 0 {
				r.Timeliness = 1 - float64(r.Late)/float64(r.Useful)
			}
			if baseCycles > 0 {
				r.CycleDelta = (float64(cycles) - float64(baseCycles)) / float64(baseCycles)
			}
			out = append(out, r)
		}
	}
	return out, nil
}
