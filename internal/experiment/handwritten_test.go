package experiment

import (
	"testing"

	"hotprefetch/internal/burst"
	"hotprefetch/internal/heap"
	"hotprefetch/internal/hotds"
	"hotprefetch/internal/machine"
	"hotprefetch/internal/memsim"
	"hotprefetch/internal/opt"
	"hotprefetch/internal/vulcan"
)

// healthSource is a hand-written workload in the virtual ISA's assembly, in
// the style of the Olden "health" benchmark: four wards, each with a
// patient list walked every round, dispatched through a vtable of per-ward
// treatment procedures (indirect calls). Head pointers and the vtable live
// at fixed heap slots initialized by the test.
const healthSource = `
proc main
  const r1, 800           ; rounds
rounds:
  const r2, 0x100         ; vtable base
  const r3, 4             ; wards
wards:
  load r4, [r2+0]         ; handler proc index
  load r5, [r2+32]        ; ward's patient list head (slot at vtable+32)
  calli r4                ; treat(r5 = list head)
  addimm r2, r2, 8
  loop r3, wards
  loop r1, rounds
  ret

proc treat_a
walk_a:
  load r5, [r5+0]
  arith 2
  bnez r5, walk_a
  ret

proc treat_b
walk_b:
  load r5, [r5+0]
  arith 3
  bnez r5, walk_b
  ret

proc treat_c
walk_c:
  load r5, [r5+0]
  arith 2
  bnez r5, walk_c
  ret

proc treat_d
walk_d:
  load r5, [r5+0]
  arith 4
  bnez r5, walk_d
  ret
`

func buildHealth(t *testing.T, instrument bool) *machine.Machine {
	t.Helper()
	prog, err := machine.Assemble(healthSource)
	if err != nil {
		t.Fatal(err)
	}
	if instrument {
		vulcan.Instrument(prog)
	}
	cache := memsim.Config{
		BlockSize: 32, L1Size: 512, L1Assoc: 2, L2Size: 4096, L2Assoc: 2,
		L2HitLatency: 10, MemLatency: 100,
	}
	m := machine.New(prog, 1<<15, cache)

	// Vtable at 0x100: handler indices for the four wards; each ward's
	// patient list head at vtable+32 onward (the code loads [r2+32]).
	handlers := []string{"treat_a", "treat_b", "treat_c", "treat_d"}
	arena := heap.NewArena(m.Mem, 0x200)
	for i, h := range handlers {
		pi := prog.ProcIndex(h)
		if pi < 0 {
			t.Fatalf("missing proc %s", h)
		}
		m.WriteWord(uint64(0x100+8*i), uint64(pi))
		list := arena.List(45, 4, 0, heap.ShuffledPerm(45, int64(i+1)), 0)
		m.WriteWord(uint64(0x120+8*i), list[0])
	}
	return m
}

// TestHandWrittenHealthWorkload runs a hand-written assembly program —
// indirect dispatch included — through the complete dynamic prefetching
// pipeline and checks it wins.
func TestHandWrittenHealthWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run")
	}
	base, err := opt.RunBaseline(buildHealth(t, false))
	if err != nil {
		t.Fatal(err)
	}

	cfg := opt.Config{
		Mode: opt.ModeDynPref,
		Burst: burst.Config{
			NCheck0: 80, NInstr0: 80, NAwake0: 4, NHibernate0: 60, CheckCost: 2,
		},
		Analysis: hotds.Config{MinLen: 10, MaxLen: 200, MinCoverage: 0.02, MaxStreams: 20},
		HeadLen:  2,
		Costs:    opt.DefaultCostModel(),
	}
	m := buildHealth(t, true)
	res, err := opt.Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if res.OptCycles() == 0 {
		t.Fatal("no optimization cycles completed")
	}
	avg := res.AvgPerCycle()
	t.Logf("baseline=%d optimized=%d (%+.1f%%) cycles=%d streams=%d procs=%d",
		base, res.ExecCycles, 100*(float64(res.ExecCycles)/float64(base)-1),
		res.OptCycles(), avg.HotStreams, avg.ProcsModified)

	if avg.HotStreams == 0 {
		t.Error("the ward walks should be detected as hot data streams")
	}
	if res.ExecCycles >= base {
		t.Errorf("dynamic prefetching should win: %d vs %d", res.ExecCycles, base)
	}
	if res.Cache.UsefulPrefetches == 0 {
		t.Error("no useful prefetches on a miss-heavy hand-written workload")
	}
}
