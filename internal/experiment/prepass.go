package experiment

// Prepass-vs-lossless profiling comparison: the correctness backing for the
// two-level ingest front end (sequitur.Prepass). The same reference trace is
// compressed twice — once through plain AppendRun, once through the prepass
// — and three things are checked: the prepass grammar expands to the exact
// input (the content-lossless contract), the collapse ratio quantifies how
// much of the trace skipped the digram table, and the hot-stream sets match
// under the same cyclic-fragment containment the sampling study uses (the
// fast detector walks grammar structure, so stream boundaries can shift even
// though the encoded trace is identical).

import (
	"fmt"

	"hotprefetch/internal/hotds"
	"hotprefetch/internal/ref"
	"hotprefetch/internal/sequitur"
	"hotprefetch/internal/workload"
)

// PrepassResult compares one benchmark's hot streams detected from a
// lossless profile against those detected through the two-level ingest
// front end over the same trace.
type PrepassResult struct {
	Name      string
	TotalRefs int // references in the captured trace

	// Collapsed is the number of references the front end absorbed without
	// a digram-table epoch; CollapseRatio is Collapsed/TotalRefs.
	Collapsed     uint64
	CollapseRatio float64

	// LosslessSymbols and PrepassSymbols are the final grammar sizes; the
	// prepass grammar carries extra phrase/doubling rules, so the ratio
	// shows what the speed costs in grammar residency.
	LosslessSymbols, PrepassSymbols int

	LosslessStreams int // hot streams found by the lossless profile
	PrepassStreams  int // hot streams found through the front end

	// TopRecall, HeatRecall, and Precision mirror SamplingResult: the
	// fraction of the lossless top-10 rediscovered, heat-weighted recall
	// over all lossless streams, and the fraction of prepass streams that
	// correspond to some lossless stream.
	TopRecall  float64
	HeatRecall float64
	Precision  float64
}

// prepassChunk is the batch size the study feeds the front end in,
// mirroring the shard consumer's ring batches.
const prepassChunk = 256

// analyzeTracePrepass compresses a reference sequence through the two-level
// front end and extracts its hot streams as pc sequences, also returning
// the collapse count and grammar size. The prepass grammar's expansion is
// verified against the input before analysis: a mismatch is a contract
// violation, not a quality degradation, and fails the whole comparison.
func analyzeTracePrepass(trace []ref.Ref, cfg hotds.Config, pcfg sequitur.PrepassConfig) ([]pcStream, uint64, int, error) {
	g := sequitur.New()
	in := ref.NewInterner()
	vals := make([]uint64, len(trace))
	for i, r := range trace {
		vals[i] = uint64(in.Intern(r))
	}
	p := sequitur.NewPrepass(g, pcfg)
	for lo := 0; lo < len(vals); lo += prepassChunk {
		hi := lo + prepassChunk
		if hi > len(vals) {
			hi = len(vals)
		}
		p.Append(vals[lo:hi])
	}
	got := g.Snapshot().Expand(0)
	if len(got) != len(vals) {
		return nil, 0, 0, fmt.Errorf("prepass expansion length %d, want %d", len(got), len(vals))
	}
	for i := range got {
		if got[i] != vals[i] {
			return nil, 0, 0, fmt.Errorf("prepass expansion differs at %d: %d != %d", i, got[i], vals[i])
		}
	}
	infos := hotds.Analyze(g.Snapshot(), cfg)
	out := make([]pcStream, len(infos))
	for i, info := range infos {
		pcs := make([]int, len(info.Word))
		for j, sym := range info.Word {
			pcs[j] = in.Ref(ref.Symbol(sym)).PC
		}
		out[i] = pcStream{pcs: pcs, heat: info.Heat}
	}
	return out, p.Collapsed(), g.Size(), nil
}

// PrepassComparison profiles each benchmark's trace losslessly and through
// the two-level ingest front end, verifying the content-lossless contract
// and reporting collapse ratios and hot-stream agreement. refs <= 0 means
// 240000 references per benchmark; a nil params slice means the full
// catalog; the zero pcfg means the front end's defaults.
func PrepassComparison(params []workload.Params, refs int, pcfg sequitur.PrepassConfig) ([]PrepassResult, error) {
	if params == nil {
		params = workload.Catalog()
	}
	if refs <= 0 {
		refs = 240000
	}
	acfg := AnalysisConfig()
	out := make([]PrepassResult, 0, len(params))
	for _, p := range params {
		trace, err := CaptureTrace(p, refs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}

		full := analyzeTrace(trace, acfg)
		var losslessSymbols int
		{
			g := sequitur.New()
			in := ref.NewInterner()
			vals := make([]uint64, len(trace))
			for i, r := range trace {
				vals[i] = uint64(in.Intern(r))
			}
			g.AppendRun(vals)
			losslessSymbols = g.Size()
		}
		pre, collapsed, preSymbols, err := analyzeTracePrepass(trace, acfg, pcfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}

		matched := func(l pcStream) bool {
			for _, s := range pre {
				if streamsMatch(l, s) {
					return true
				}
			}
			return false
		}
		top := full
		if len(top) > 10 {
			top = top[:10]
		}
		topHit := 0
		for _, l := range top {
			if matched(l) {
				topHit++
			}
		}
		var heatTotal, heatHit uint64
		for _, l := range full {
			heatTotal += l.heat
			if matched(l) {
				heatHit += l.heat
			}
		}
		precHit := 0
		for _, s := range pre {
			for _, l := range full {
				if streamsMatch(l, s) {
					precHit++
					break
				}
			}
		}

		r := PrepassResult{
			Name:            p.Name,
			TotalRefs:       len(trace),
			Collapsed:       collapsed,
			LosslessSymbols: losslessSymbols,
			PrepassSymbols:  preSymbols,
			LosslessStreams: len(full),
			PrepassStreams:  len(pre),
		}
		if len(trace) > 0 {
			r.CollapseRatio = float64(collapsed) / float64(len(trace))
		}
		if len(top) > 0 {
			r.TopRecall = float64(topHit) / float64(len(top))
		}
		if heatTotal > 0 {
			r.HeatRecall = float64(heatHit) / float64(heatTotal)
		}
		if len(pre) > 0 {
			r.Precision = float64(precHit) / float64(len(pre))
		}
		out = append(out, r)
	}
	return out, nil
}
