// Package experiment runs the paper's evaluation (§4): the profiling and
// analysis overhead study of Figure 11, the prefetching performance study of
// Figure 12, the detailed characterization of Table 2, and the §4.3 head
// length ablation, over the six workload benchmarks.
//
// Scaling note (see DESIGN.md and EXPERIMENTS.md): the paper profiles at a
// 0.5% sampling rate and is awake 1 second of every 50 on a 550MHz machine —
// billions of cycles per optimization cycle, which a cycle-accounting
// simulator cannot replay verbatim. The harness keeps the framework's
// structure (burst length 20 checks, hibernation-dominated duty cycle,
// deterministic counters) and raises the rates — 5% sampling, awake 25 of
// 125 burst-periods — so full profile/optimize/hibernate cycles complete in
// millions of simulated cycles. The paper's own §4.1 counter settings remain
// the library defaults (burst.PaperConfig, opt.DefaultConfig).
package experiment

import (
	"fmt"

	"hotprefetch/internal/burst"
	"hotprefetch/internal/hotds"
	"hotprefetch/internal/memsim"
	"hotprefetch/internal/opt"
	"hotprefetch/internal/workload"
)

// BurstConfig returns the scaled bursty-tracing settings used for all
// workload experiments.
func BurstConfig() burst.Config {
	return burst.Config{
		NCheck0:     380,
		NInstr0:     20,
		NAwake0:     25,
		NHibernate0: 100,
		// One dynamic check costs ~25 cycles all-in: the counter update,
		// compare, and branch, plus the amortized instruction-cache cost of
		// code duplication. Calibrated so the Base bars land in the paper's
		// 2.5-6% range (Figure 11) on these workloads.
		CheckCost: 25,
	}
}

// AnalysisConfig returns the paper's §4.1 stream detection settings:
// streams of more than ten unique references covering at least 1% of the
// collected trace.
func AnalysisConfig() hotds.Config {
	return hotds.Config{
		MinLen:      10,
		MaxLen:      100,
		MinUnique:   10,
		MinCoverage: 0.01,
		MaxStreams:  100,
	}
}

// OptConfig assembles the optimizer configuration for one evaluation mode.
func OptConfig(mode opt.Mode) opt.Config {
	cfg := opt.Config{
		Mode:     mode,
		Burst:    BurstConfig(),
		Analysis: AnalysisConfig(),
		HeadLen:  2,
		Costs:    opt.DefaultCostModel(),
	}
	if mode == opt.ModeBase {
		cfg = opt.BaseVariant(cfg)
	}
	return cfg
}

// Run holds one benchmark's results across the requested modes.
type Run struct {
	Params   workload.Params
	Baseline uint64 // unoptimized execution time (cycles)
	Results  map[opt.Mode]opt.Result
}

// Overhead returns a mode's execution time overhead relative to the
// unoptimized baseline, in percent; negative values are speedups (the Y
// axis of Figures 11 and 12).
func (r *Run) Overhead(mode opt.Mode) float64 {
	res, ok := r.Results[mode]
	if !ok || r.Baseline == 0 {
		return 0
	}
	return 100 * (float64(res.ExecCycles)/float64(r.Baseline) - 1)
}

// RunBenchmark executes one benchmark: the unoptimized baseline plus one run
// per requested mode, all over identical initial heaps.
func RunBenchmark(p workload.Params, modes []opt.Mode) (*Run, error) {
	return runBenchmark(p, modes, OptConfig, workload.CacheConfig())
}

// runBenchmark lets ablations substitute their own per-mode configuration
// and cache geometry.
func runBenchmark(p workload.Params, modes []opt.Mode, cfgFor func(opt.Mode) opt.Config, cache memsim.Config) (*Run, error) {
	inst := workload.Build(p)

	base, err := opt.RunBaseline(inst.NewMachine(cache, false))
	if err != nil {
		return nil, fmt.Errorf("%s baseline: %w", p.Name, err)
	}
	run := &Run{Params: p, Baseline: base, Results: make(map[opt.Mode]opt.Result)}
	for _, mode := range modes {
		m := inst.NewMachine(cache, true)
		res, err := opt.Run(m, cfgFor(mode))
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", p.Name, mode, err)
		}
		run.Results[mode] = res
	}
	return run, nil
}

// Figure11Modes are the bars of paper Figure 11.
var Figure11Modes = []opt.Mode{opt.ModeBase, opt.ModeProfile, opt.ModeHds}

// Figure12Modes are the bars of paper Figure 12.
var Figure12Modes = []opt.Mode{opt.ModeNoPref, opt.ModeSeqPref, opt.ModeDynPref}

// Figure11 runs the online profiling and analysis overhead study on the
// given benchmarks (all of workload.Catalog if nil).
func Figure11(params []workload.Params) ([]*Run, error) {
	return runAll(params, Figure11Modes)
}

// Figure12 runs the dynamic prefetching performance study.
func Figure12(params []workload.Params) ([]*Run, error) {
	return runAll(params, Figure12Modes)
}

// Table2 runs the full dynamic prefetching configuration and returns the
// per-benchmark characterization (the paper's Table 2 draws its numbers
// from the Dyn-pref runs).
func Table2(params []workload.Params) ([]*Run, error) {
	return runAll(params, []opt.Mode{opt.ModeDynPref})
}

func runAll(params []workload.Params, modes []opt.Mode) ([]*Run, error) {
	if params == nil {
		params = workload.Catalog()
	}
	runs := make([]*Run, 0, len(params))
	for _, p := range params {
		r, err := RunBenchmark(p, modes)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// HeadLenResult is one cell of the §4.3 head length ablation.
type HeadLenResult struct {
	HeadLen  int
	Overhead float64 // percent vs baseline (negative = speedup)
	Result   opt.Result
}

// AblationHeadLen reruns Dyn-pref with prefix-match lengths 1, 2, and 3 on
// one benchmark. The paper reports that 1 lowers matching overhead but hurts
// accuracy and 3 adds overhead without accuracy gains, making 2 the choice
// (§4.3).
func AblationHeadLen(p workload.Params, headLens []int) ([]HeadLenResult, error) {
	if headLens == nil {
		headLens = []int{1, 2, 3}
	}
	out := make([]HeadLenResult, 0, len(headLens))
	for _, hl := range headLens {
		hl := hl
		run, err := runBenchmark(p, []opt.Mode{opt.ModeDynPref}, func(m opt.Mode) opt.Config {
			cfg := OptConfig(m)
			cfg.HeadLen = hl
			return cfg
		}, workload.CacheConfig())
		if err != nil {
			return nil, err
		}
		out = append(out, HeadLenResult{
			HeadLen:  hl,
			Overhead: run.Overhead(opt.ModeDynPref),
			Result:   run.Results[opt.ModeDynPref],
		})
	}
	return out, nil
}
