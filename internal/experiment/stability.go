package experiment

import (
	"fmt"
	"strings"

	"hotprefetch/internal/hotds"
	"hotprefetch/internal/machine"
	"hotprefetch/internal/ref"
	"hotprefetch/internal/sequitur"
	"hotprefetch/internal/workload"
)

// StabilityResult reports how similar a benchmark's hot data streams are
// across two different inputs. Streams are compared by their pc signatures
// (the instruction sequence that produces them): the paper's intro cites
// [10]'s finding that "hot data streams have been shown to be fairly stable
// across program inputs and could serve as the basis for an off-line static
// prefetching scheme". Addresses differ across inputs; the code paths do
// not.
type StabilityResult struct {
	Name     string
	StreamsA int
	StreamsB int
	PCSigs   int     // distinct pc signatures across both inputs
	Overlap  float64 // Jaccard similarity of the pc-signature sets
	Concrete float64 // Jaccard similarity of the full (pc, addr) stream identities
}

// collector traces the first `budget` data references of a run.
type collector struct {
	grammar  *sequitur.Grammar
	interner *ref.Interner
	budget   int
	m        *machine.Machine
}

func (c *collector) Check(pc int) (machine.Version, uint64) {
	return machine.VersionInstrumented, 0
}

func (c *collector) TraceRef(pc int, addr machine.Word, isWrite bool) uint64 {
	c.grammar.Append(uint64(c.interner.Intern(ref.Ref{PC: pc, Addr: addr})))
	c.budget--
	if c.budget <= 0 {
		c.m.Yield()
	}
	return 0
}

func (c *collector) Match(pc int, addr machine.Word) ([]machine.Word, uint64) {
	return nil, 0
}

// collectStreams profiles `refs` references of the benchmark and returns
// its hot data streams.
func collectStreams(p workload.Params, refs int) ([][]ref.Ref, error) {
	inst := workload.Build(p)
	m := inst.NewMachine(workload.CacheConfig(), true)
	col := &collector{
		grammar:  sequitur.New(),
		interner: ref.NewInterner(),
		budget:   refs,
		m:        m,
	}
	m.RT = col
	m.Start()
	for col.budget > 0 {
		st, err := m.Run(0)
		if err != nil {
			return nil, err
		}
		if st == machine.Halted {
			break
		}
	}
	infos := hotds.Analyze(col.grammar.Snapshot(), AnalysisConfig())
	streams := make([][]ref.Ref, len(infos))
	for i, info := range infos {
		rs := make([]ref.Ref, len(info.Word))
		for j, sym := range info.Word {
			rs[j] = col.interner.Ref(ref.Symbol(sym))
		}
		streams[i] = rs
	}
	return streams, nil
}

// pcSignature canonicalizes a stream to its instruction sequence.
func pcSignature(stream []ref.Ref) string {
	var b strings.Builder
	for _, r := range stream {
		fmt.Fprintf(&b, "%d,", r.PC)
	}
	return b.String()
}

// ProfileStability profiles each benchmark on two different inputs (layout
// and schedule seeds) and compares the detected hot data streams: pc
// signatures should overlap strongly while concrete addresses do not — the
// property that makes profile-driven static prefetching viable and that the
// dynamic scheme does not depend on.
func ProfileStability(params []workload.Params, refs int) ([]StabilityResult, error) {
	if params == nil {
		params = workload.Catalog()
	}
	if refs <= 0 {
		refs = 60000
	}
	out := make([]StabilityResult, 0, len(params))
	for _, p := range params {
		alt := p
		alt.Seed += 77777 // a different "program input"

		a, err := collectStreams(p, refs)
		if err != nil {
			return nil, fmt.Errorf("%s input A: %w", p.Name, err)
		}
		b, err := collectStreams(alt, refs)
		if err != nil {
			return nil, fmt.Errorf("%s input B: %w", p.Name, err)
		}

		sigA, fullA := signatureSets(a)
		sigB, fullB := signatureSets(b)
		out = append(out, StabilityResult{
			Name:     p.Name,
			StreamsA: len(a),
			StreamsB: len(b),
			PCSigs:   unionSize(sigA, sigB),
			Overlap:  jaccard(sigA, sigB),
			Concrete: jaccard(fullA, fullB),
		})
	}
	return out, nil
}

// signatureSets extracts each stream's pc signature and its full concrete
// identity (pcs and addresses).
func signatureSets(streams [][]ref.Ref) (sigs, full map[string]bool) {
	sigs = map[string]bool{}
	full = map[string]bool{}
	for _, s := range streams {
		sigs[pcSignature(s)] = true
		var b strings.Builder
		for _, r := range s {
			fmt.Fprintf(&b, "%d:%d,", r.PC, r.Addr)
		}
		full[b.String()] = true
	}
	return sigs, full
}

func unionSize[K comparable](a, b map[K]bool) int {
	u := map[K]bool{}
	for k := range a {
		u[k] = true
	}
	for k := range b {
		u[k] = true
	}
	return len(u)
}

func jaccard[K comparable](a, b map[K]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	return float64(inter) / float64(unionSize(a, b))
}
