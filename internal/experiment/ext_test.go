package experiment

import (
	"testing"

	"hotprefetch/internal/workload"
)

// TestStaticVsDynamicShape asserts the paper's §1 hypothesis: the dynamic
// scheme beats one-shot static prefetching on phased programs, while on
// single-phase programs static is competitive (it skips re-profiling).
func TestStaticVsDynamicShape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload runs")
	}
	results, err := StaticVsDynamic([]workload.Params{workload.Vpr(), workload.Mcf()})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		t.Logf("%-7s phases=%d static=%+.1f%% dynamic=%+.1f%%", r.Name, r.Phases, r.Static, r.Dynamic)
	}
	vpr, mcf := results[0], results[1]
	if vpr.Dynamic >= vpr.Static {
		t.Errorf("vpr (phased): dynamic (%.1f%%) should beat static (%.1f%%)", vpr.Dynamic, vpr.Static)
	}
	// Static must still be a win on the single-phase benchmark, within a
	// few points of dynamic.
	if mcf.Static >= 0 {
		t.Errorf("mcf (single-phase): static should still win, got %+.1f%%", mcf.Static)
	}
	if diff := mcf.Static - mcf.Dynamic; diff > 8 || diff < -8 {
		t.Errorf("mcf: static (%.1f%%) should be within a few points of dynamic (%.1f%%)",
			mcf.Static, mcf.Dynamic)
	}
}

// TestSchedulingAblation asserts the §4.3 future-work finding: under a
// memory system with a bounded number of outstanding prefetch fills, bursty
// issue-all-at-match drops much of each stream's tail, and chunked
// scheduling recovers the loss — "more intelligent prefetch scheduling
// could produce larger benefits".
func TestSchedulingAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("workload runs")
	}
	results, err := AblationScheduling(workload.Mcf(), []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		t.Logf("chunk=%d overhead=%+.1f%% dropped=%d lateStall=%d useful=%.2f",
			r.Chunk, r.Overhead, r.Dropped, r.LateStallCycles, r.UsefulRatio)
	}
	immediate, chunked := results[0], results[1]
	if immediate.Overhead >= 0 || chunked.Overhead >= 0 {
		t.Errorf("both variants should still win: immediate %+.1f%%, chunked %+.1f%%",
			immediate.Overhead, chunked.Overhead)
	}
	if chunked.Overhead >= immediate.Overhead {
		t.Errorf("under an MSHR limit, scheduled issue (%.1f%%) should beat bursty issue (%.1f%%)",
			chunked.Overhead, immediate.Overhead)
	}
	if chunked.Dropped >= immediate.Dropped {
		t.Errorf("scheduling should reduce dropped prefetches: %d vs %d",
			chunked.Dropped, immediate.Dropped)
	}
}

// TestHybridComparison asserts that adding the complementary stride
// prefetcher never destroys the dynamic win and typically improves it
// (it covers the regular index traffic the streams do not).
func TestHybridComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("workload runs")
	}
	results, err := HybridComparison([]workload.Params{workload.Mcf()})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	t.Logf("%s dyn=%+.1f%% hybrid=%+.1f%%", r.Name, r.Dyn, r.Hybrid)
	if r.Hybrid > r.Dyn+1 {
		t.Errorf("hybrid (%.1f%%) should not be materially worse than dyn alone (%.1f%%)",
			r.Hybrid, r.Dyn)
	}
	if r.Hybrid >= 0 {
		t.Errorf("hybrid should still win, got %+.1f%%", r.Hybrid)
	}
}

// TestProfileStability reproduces the property the paper's intro relies on
// (reference [10]): hot data streams are stable across inputs at the code
// level. The same benchmark on two inputs must detect streams with strongly
// overlapping pc signatures while sharing almost no concrete addresses.
func TestProfileStability(t *testing.T) {
	if testing.Short() {
		t.Skip("workload runs")
	}
	results, err := ProfileStability([]workload.Params{workload.Mcf(), workload.Parser()}, 40000)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		t.Logf("%-7s streams=%d/%d pcOverlap=%.2f concreteOverlap=%.2f",
			r.Name, r.StreamsA, r.StreamsB, r.Overlap, r.Concrete)
		if r.StreamsA == 0 || r.StreamsB == 0 {
			t.Errorf("%s: no streams detected", r.Name)
		}
		if r.Overlap < 0.5 {
			t.Errorf("%s: pc-signature overlap %.2f too low for stable profiles", r.Name, r.Overlap)
		}
		if r.Concrete > 0.1 {
			t.Errorf("%s: concrete stream overlap %.2f too high — inputs should differ", r.Name, r.Concrete)
		}
	}
}

// TestMotivationShares reproduces the paper's premise (§1, [8]/[28]): the
// detected hot data streams account for the bulk of references and, more
// importantly, the bulk of cache misses on the miss-heavy benchmarks.
func TestMotivationShares(t *testing.T) {
	if testing.Short() {
		t.Skip("workload runs")
	}
	results, err := Motivation([]workload.Params{workload.Mcf(), workload.Vpr()}, 50000)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		t.Logf("%-7s streams=%d refShare=%.2f l1MissShare=%.2f l2MissShare=%.2f",
			r.Name, r.Streams, r.RefShare, r.L1MissShare, r.L2MissShare)
		if r.Streams == 0 {
			t.Errorf("%s: no streams", r.Name)
			continue
		}
		// Hot streams must cover a large share of misses — the property
		// that makes prefetching only them worthwhile. The paper's programs
		// show >80%; the synthetic workloads have deliberate warm traffic,
		// so expect a majority rather than a specific figure.
		if r.L2MissShare < 0.3 {
			t.Errorf("%s: streams cover only %.2f of memory misses", r.Name, r.L2MissShare)
		}
		if r.RefShare < 0.3 {
			t.Errorf("%s: streams cover only %.2f of references", r.Name, r.RefShare)
		}
	}
}

// TestReuseDistanceStructure validates the workload substrate's central
// property: a large share of warm accesses have reuse distances beyond the
// L2 capacity (so traversals miss and prefetching has latency to hide),
// while a meaningful share stays within L1 (the loop-local locality real
// programs have).
func TestReuseDistanceStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("workload runs")
	}
	results, err := ReuseDistances([]workload.Params{workload.Mcf(), workload.Vpr()}, 150000)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		t.Logf("%-7s accesses=%d withinL1=%.2f withinL2=%.2f beyondL2=%.2f cold=%.2f",
			r.Name, r.Accesses, r.WithinL1, r.WithinL2, r.BeyondL2, r.ColdShare)
		if r.BeyondL2 < 0.3 {
			t.Errorf("%s: only %.2f of warm accesses reuse beyond L2 — prefetching would have nothing to hide",
				r.Name, r.BeyondL2)
		}
		if r.BeyondL2 > 0.99 {
			t.Errorf("%s: everything beyond L2 (%.2f) — implausibly structure-free", r.Name, r.BeyondL2)
		}
		if sum := r.WithinL1 + r.WithinL2 + r.BeyondL2; sum < 0.99 || sum > 1.01 {
			t.Errorf("%s: shares sum to %.3f", r.Name, sum)
		}
	}
}
