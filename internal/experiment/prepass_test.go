package experiment

import (
	"testing"

	"hotprefetch/internal/sequitur"
)

// TestPrepassPreservesHotStreams is the acceptance gate for the two-level
// ingest front end: over every catalog workload, the prepass grammar must
// expand to the exact input trace (PrepassComparison fails with an error
// otherwise), and the hot streams detected through it must agree with the
// lossless profile's. Calibration runs put every workload at or near 1.00
// on all three agreement scores with collapse ratios of 0.21–0.50; the
// thresholds below leave headroom for catalog drift, not for regressions.
func TestPrepassPreservesHotStreams(t *testing.T) {
	refs := 240000
	if testing.Short() {
		refs = 60000
	}
	res, err := PrepassComparison(nil, refs, sequitur.PrepassConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		t.Logf("%-8s collapse=%.3f symbols lossless=%d prepass=%d streams lossless=%d prepass=%d top=%.2f heat=%.2f prec=%.2f",
			r.Name, r.CollapseRatio, r.LosslessSymbols, r.PrepassSymbols,
			r.LosslessStreams, r.PrepassStreams, r.TopRecall, r.HeatRecall, r.Precision)
		if r.LosslessStreams == 0 {
			t.Errorf("%s: lossless profile found no hot streams; workload too small to compare", r.Name)
			continue
		}
		if r.PrepassStreams == 0 {
			t.Errorf("%s: no hot streams detected through the prepass (lossless found %d)",
				r.Name, r.LosslessStreams)
		}
		if r.TopRecall < 0.8 {
			t.Errorf("%s: top-10 recall %.2f, want >= 0.8", r.Name, r.TopRecall)
		}
		if r.HeatRecall < 0.8 {
			t.Errorf("%s: heat-weighted recall %.2f, want >= 0.8", r.Name, r.HeatRecall)
		}
		if r.Precision < 0.8 {
			t.Errorf("%s: precision %.2f, want >= 0.8", r.Name, r.Precision)
		}
		if r.CollapseRatio < 0.15 {
			t.Errorf("%s: collapse ratio %.3f, want >= 0.15 — the front end is not absorbing work",
				r.Name, r.CollapseRatio)
		}
		if r.PrepassSymbols > 2*r.LosslessSymbols {
			t.Errorf("%s: prepass grammar %d symbols vs lossless %d — phrase/doubling overhead above 2x",
				r.Name, r.PrepassSymbols, r.LosslessSymbols)
		}
	}
}
