package experiment

import (
	"fmt"

	"hotprefetch/internal/memsim"
	"hotprefetch/internal/workload"
)

// MotivationResult quantifies the premise the paper builds on (§1, citing
// [8] and [28]): hot data streams "account for around 90% of program
// references and more than 80% of cache misses". For one benchmark it
// reports the fraction of demand references and of cache misses that touch
// the addresses of the detected hot data streams.
type MotivationResult struct {
	Name        string
	Streams     int
	RefShare    float64 // fraction of references to stream addresses
	L1MissShare float64 // fraction of L1 misses on stream addresses
	L2MissShare float64 // fraction of L2 misses on stream addresses
}

// shareObserver counts accesses and misses split by stream membership.
type shareObserver struct {
	blocks map[uint64]bool // cache blocks covered by stream addresses
	h      *memsim.Hierarchy

	refs, streamRefs     uint64
	l1Miss, streamL1Miss uint64
	l2Miss, streamL2Miss uint64
}

func (o *shareObserver) OnAccess(now uint64, pc int, addr uint64, l1Hit, l2Hit bool) {
	inStream := o.blocks[o.h.Block(addr)]
	o.refs++
	if inStream {
		o.streamRefs++
	}
	if !l1Hit {
		o.l1Miss++
		if inStream {
			o.streamL1Miss++
		}
		if !l2Hit {
			o.l2Miss++
			if inStream {
				o.streamL2Miss++
			}
		}
	}
}

// Motivation profiles each benchmark, detects its hot data streams, and
// measures how much of the reference and miss traffic the streams cover
// during a subsequent run — the measurement that justifies prefetching only
// hot data streams.
func Motivation(params []workload.Params, profileRefs int) ([]MotivationResult, error) {
	if params == nil {
		params = workload.Catalog()
	}
	if profileRefs <= 0 {
		profileRefs = 60000
	}
	cache := workload.CacheConfig()
	out := make([]MotivationResult, 0, len(params))
	for _, p := range params {
		streams, err := collectStreams(p, profileRefs)
		if err != nil {
			return nil, fmt.Errorf("%s profile: %w", p.Name, err)
		}

		// Measure within the profiled phase: the profile covers the start
		// of the run, so restrict the measurement to one (shortened) phase
		// block rather than the whole multi-phase execution.
		mp := p
		mp.PhaseBlocks = 1
		mp.LapsPerBlock = min(mp.LapsPerBlock, 400)
		inst := workload.Build(mp)
		m := inst.NewMachine(cache, false)
		obs := &shareObserver{blocks: map[uint64]bool{}, h: m.Cache}
		for _, s := range streams {
			for _, r := range s {
				obs.blocks[m.Cache.Block(r.Addr)] = true
			}
		}
		m.Cache.SetObserver(obs)
		if err := m.RunToCompletion(); err != nil {
			return nil, fmt.Errorf("%s measure: %w", p.Name, err)
		}

		res := MotivationResult{Name: p.Name, Streams: len(streams)}
		if obs.refs > 0 {
			res.RefShare = float64(obs.streamRefs) / float64(obs.refs)
		}
		if obs.l1Miss > 0 {
			res.L1MissShare = float64(obs.streamL1Miss) / float64(obs.l1Miss)
		}
		if obs.l2Miss > 0 {
			res.L2MissShare = float64(obs.streamL2Miss) / float64(obs.l2Miss)
		}
		out = append(out, res)
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
