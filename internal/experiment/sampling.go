package experiment

// Sampled-vs-lossless profiling comparison: the quantitative backing for the
// paper's premise that bursty sampling "suffices to detect hot data
// streams" (§2.2, Table 2). The same reference trace is profiled twice —
// once losslessly, once through the bursty-tracing counter machine — and
// the two hot-stream sets are compared by pc sequence. A sampled profile
// sees bursts (contiguous windows) of the trace, so it rediscovers a hot
// stream as a cyclic fragment of the lossless stream's pc sequence: stream
// [a b c d] sampled in bursts may surface as [c d a b] or [b c d a b c] —
// same regularity, different phase and length. Matching is therefore
// cyclic-fragment containment, not exact signature equality.

import (
	"fmt"
	"strings"

	"hotprefetch/internal/burst"
	"hotprefetch/internal/hotds"
	"hotprefetch/internal/machine"
	"hotprefetch/internal/ref"
	"hotprefetch/internal/sequitur"
	"hotprefetch/internal/workload"
)

// SamplingResult compares one benchmark's hot streams detected from a
// lossless profile against those detected from a bursty-sampled profile of
// the same trace.
type SamplingResult struct {
	Name        string
	TotalRefs   int     // references in the captured trace
	SampledRefs int     // references the burst controller admitted
	Rate        float64 // achieved sampling rate SampledRefs/TotalRefs

	LosslessStreams int // hot streams found by the lossless profile
	SampledStreams  int // hot streams found by the sampled profile

	// TopRecall is the fraction of the lossless top-10 streams (by heat)
	// the sampled profile rediscovered (as a cyclic fragment or extension);
	// HeatRecall weights recall by heat over all lossless streams;
	// Precision is the fraction of sampled streams that correspond to some
	// lossless stream (the sampled profile should not hallucinate
	// regularity that is not in the full trace).
	TopRecall  float64
	HeatRecall float64
	Precision  float64
}

// rawCollector captures the first `budget` raw data references of a run.
type rawCollector struct {
	refs   []ref.Ref
	budget int
	m      *machine.Machine
}

func (c *rawCollector) Check(pc int) (machine.Version, uint64) {
	return machine.VersionInstrumented, 0
}

func (c *rawCollector) TraceRef(pc int, addr machine.Word, isWrite bool) uint64 {
	c.refs = append(c.refs, ref.Ref{PC: pc, Addr: addr})
	c.budget--
	if c.budget <= 0 {
		c.m.Yield()
	}
	return 0
}

func (c *rawCollector) Match(pc int, addr machine.Word) ([]machine.Word, uint64) {
	return nil, 0
}

// CaptureTrace runs the benchmark and returns its first `refs` data
// references. The root package's differential predictor tests replay these
// traces, so capture is exported rather than duplicated there.
func CaptureTrace(p workload.Params, refs int) ([]ref.Ref, error) {
	return captureInstanceTrace(workload.Build(p), refs)
}

// captureInstanceTrace is CaptureTrace over an already-built workload
// instance (the extended workloads are built by name, not Params).
func captureInstanceTrace(inst *workload.Instance, refs int) ([]ref.Ref, error) {
	m := inst.NewMachine(workload.CacheConfig(), true)
	col := &rawCollector{refs: make([]ref.Ref, 0, refs), budget: refs, m: m}
	m.RT = col
	m.Start()
	for col.budget > 0 {
		st, err := m.Run(0)
		if err != nil {
			return nil, err
		}
		if st == machine.Halted {
			break
		}
	}
	return col.refs, nil
}

// pcStream is one detected hot stream reduced to its instruction sequence.
type pcStream struct {
	pcs  []int
	heat uint64
}

// analyzeTrace compresses a reference sequence and extracts its hot
// streams as pc sequences.
func analyzeTrace(trace []ref.Ref, cfg hotds.Config) []pcStream {
	g := sequitur.New()
	in := ref.NewInterner()
	vals := make([]uint64, len(trace))
	for i, r := range trace {
		vals[i] = uint64(in.Intern(r))
	}
	g.AppendRun(vals)
	infos := hotds.Analyze(g.Snapshot(), cfg)
	out := make([]pcStream, len(infos))
	for i, info := range infos {
		pcs := make([]int, len(info.Word))
		for j, sym := range info.Word {
			pcs[j] = in.Ref(ref.Symbol(sym)).PC
		}
		out[i] = pcStream{pcs: pcs, heat: info.Heat}
	}
	return out
}

// sampleTrace runs the trace through a bursty-tracing controller and
// returns the references admitted during awake instrumented bursts.
func sampleTrace(trace []ref.Ref, cfg burst.Config) []ref.Ref {
	c := burst.New(cfg)
	out := make([]ref.Ref, 0, len(trace)/64)
	for _, r := range trace {
		instrumented, phaseEnded := c.Check()
		if instrumented && c.Awake() {
			out = append(out, r)
		}
		if phaseEnded {
			if c.Awake() {
				c.Hibernate()
			} else {
				c.Wake()
			}
		}
	}
	return out
}

// sig renders a pc sequence with full-token delimiters (",1,12,"), so
// substring containment can never match across token boundaries.
func sig(pcs []int) string {
	var b strings.Builder
	b.WriteByte(',')
	for _, pc := range pcs {
		fmt.Fprintf(&b, "%d,", pc)
	}
	return b.String()
}

// doubled renders two periods of the sequence (",1,12,1,12,"), the search
// space for cyclic fragments.
func doubled(pcs []int) string {
	var b strings.Builder
	b.WriteByte(',')
	for i := 0; i < 2; i++ {
		for _, pc := range pcs {
			fmt.Fprintf(&b, "%d,", pc)
		}
	}
	return b.String()
}

// streamsMatch reports whether a sampled stream rediscovers a lossless one:
// the sampled pc sequence is a cyclic fragment of the lossless stream (a
// contiguous window of its repetition, any phase, up to two periods long)
// or contains the whole lossless sequence.
func streamsMatch(lossless, sampled pcStream) bool {
	return strings.Contains(doubled(lossless.pcs), sig(sampled.pcs)) ||
		strings.Contains(sig(sampled.pcs), sig(lossless.pcs))
}

// SamplingComparison profiles each benchmark's trace losslessly and through
// the given burst configuration, and reports how much of the hot-stream set
// sampling preserves. refs <= 0 means 240000 references per benchmark; a
// nil params slice means the full catalog.
//
// The analysis uses the paper's §4.1 stream thresholds for both profiles;
// for the sampled profile the coverage floor applies to the sampled trace
// length (coverage is relative to what was collected, exactly as in the
// paper).
func SamplingComparison(params []workload.Params, refs int, bcfg burst.Config) ([]SamplingResult, error) {
	if params == nil {
		params = workload.Catalog()
	}
	if refs <= 0 {
		refs = 240000
	}
	acfg := AnalysisConfig()
	out := make([]SamplingResult, 0, len(params))
	for _, p := range params {
		trace, err := CaptureTrace(p, refs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		sampled := sampleTrace(trace, bcfg)

		full := analyzeTrace(trace, acfg)
		samp := analyzeTrace(sampled, acfg)

		matched := func(l pcStream) bool {
			for _, s := range samp {
				if streamsMatch(l, s) {
					return true
				}
			}
			return false
		}

		// hotds.Analyze emits hottest-first, so full[:10] is the top set.
		top := full
		if len(top) > 10 {
			top = top[:10]
		}
		topHit := 0
		for _, l := range top {
			if matched(l) {
				topHit++
			}
		}
		var heatTotal, heatHit uint64
		for _, l := range full {
			heatTotal += l.heat
			if matched(l) {
				heatHit += l.heat
			}
		}
		precHit := 0
		for _, s := range samp {
			for _, l := range full {
				if streamsMatch(l, s) {
					precHit++
					break
				}
			}
		}

		r := SamplingResult{
			Name:            p.Name,
			TotalRefs:       len(trace),
			SampledRefs:     len(sampled),
			LosslessStreams: len(full),
			SampledStreams:  len(samp),
		}
		if len(trace) > 0 {
			r.Rate = float64(len(sampled)) / float64(len(trace))
		}
		if len(top) > 0 {
			r.TopRecall = float64(topHit) / float64(len(top))
		}
		if heatTotal > 0 {
			r.HeatRecall = float64(heatHit) / float64(heatTotal)
		}
		if len(samp) > 0 {
			r.Precision = float64(precHit) / float64(len(samp))
		}
		out = append(out, r)
	}
	return out, nil
}

// PaperSamplingConfig returns the paper's awake-phase counters (0.5%
// sampling in bursts of 60) with hibernation effectively disabled, so a
// short captured trace is sampled at the anchor rate throughout instead of
// spending most of its references hibernating. The full awake/hibernate
// alternation is exercised by the overhead experiments (Figure 11) and the
// service-level burst front end; here the question is purely what a 0.5%
// sample preserves.
func PaperSamplingConfig() burst.Config {
	cfg := burst.PaperConfig()
	cfg.NAwake0 = 1 << 30
	return cfg
}

// ScaledSamplingConfig returns a 5% sampling rate with the paper's burst
// length, awake-only for the same reason. Burst length is the lever that
// decides whether sampling sees streams at all: a burst must span at least
// two consecutive instances of a hot stream (~2.5x the §4.1 stream lengths)
// for Sequitur to observe the repetition inside one window — the paper's
// 60-reference bursts clear that bar for its 10–100 element streams, while
// e.g. 20-reference bursts at the same rate find almost nothing.
func ScaledSamplingConfig() burst.Config {
	cfg := PaperSamplingConfig()
	cfg.NCheck0 = 1140 // 60 instrumented per 1200 checks = 5%
	return cfg
}
