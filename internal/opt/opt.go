// Package opt implements the paper's primary contribution: the dynamic
// prefetching optimizer that cycles a running program through profiling,
// analysis and optimization, and hibernation phases (paper Figure 1).
//
// The optimizer attaches to a machine as its instrumentation runtime:
//
//   - during the awake phase, bursty-tracing checks steer execution between
//     code versions and sampled data references stream into an incremental
//     Sequitur grammar;
//   - when the awake phase completes, hot data streams are extracted from
//     the grammar (Figure 5), a prefix-matching DFSM is built for all of
//     them (Figure 9), and detection/prefetching code is injected into the
//     running program with the Vulcan analog (Figure 10);
//   - during hibernation the program runs with the injected code; complete
//     prefix matches issue prefetches for stream tails;
//   - when hibernation ends the program is de-optimized and the cycle
//     repeats.
//
// The evaluation modes of the paper's Figures 11 and 12 (Base, Prof, Hds,
// No-pref, Seq-pref, Dyn-pref) are all expressed as configurations of this
// one optimizer, exactly as they are in the paper's framework.
package opt

import (
	"hotprefetch/internal/burst"
	"hotprefetch/internal/dfsm"
	"hotprefetch/internal/hotds"
	"hotprefetch/internal/machine"
	"hotprefetch/internal/memsim"
	"hotprefetch/internal/ref"
	"hotprefetch/internal/sequitur"
	"hotprefetch/internal/vulcan"
)

// Mode selects how much of the pipeline runs, matching the bars of the
// paper's Figures 11 and 12.
type Mode int

const (
	// ModeBase executes only the dynamic checks (Figure 11 "Base").
	ModeBase Mode = iota
	// ModeProfile adds temporal data reference profiling into Sequitur
	// (Figure 11 "Prof").
	ModeProfile
	// ModeHds adds hot data stream analysis each cycle (Figure 11 "Hds").
	ModeHds
	// ModeNoPref adds DFSM construction, code injection, and prefix
	// matching, but discards the prefetches (Figure 12 "No-pref").
	ModeNoPref
	// ModeSeqPref issues prefetches for the cache blocks sequentially
	// following the last prefix-matched reference instead of the stream's
	// addresses (Figure 12 "Seq-pref").
	ModeSeqPref
	// ModeDynPref is the full dynamic prefetching scheme (Figure 12
	// "Dyn-pref").
	ModeDynPref
)

func (m Mode) String() string {
	switch m {
	case ModeBase:
		return "base"
	case ModeProfile:
		return "prof"
	case ModeHds:
		return "hds"
	case ModeNoPref:
		return "no-pref"
	case ModeSeqPref:
		return "seq-pref"
	case ModeDynPref:
		return "dyn-pref"
	}
	return "mode?"
}

func (m Mode) profiles() bool   { return m >= ModeProfile }
func (m Mode) analyzes() bool   { return m >= ModeHds }
func (m Mode) injects() bool    { return m >= ModeNoPref }
func (m Mode) prefetches() bool { return m >= ModeSeqPref }

// CostModel holds the cycle costs of the instrumentation and runtime code
// the optimizer adds to the program. Costs are charged through the machine's
// runtime interface, so every overhead the paper measures is part of
// simulated execution time.
type CostModel struct {
	// TraceCost is charged per profiled data reference: the buffer write
	// plus the amortized incremental Sequitur update (§2.4 sends references
	// to Sequitur as they are collected).
	TraceCost uint64
	// AnalysisPerSymbol is charged per grammar symbol when the hot data
	// stream analysis runs (the algorithm is linear in grammar size).
	AnalysisPerSymbol uint64
	// MatchBase and MatchPerCmp price one executed injected check: a fixed
	// part plus one unit per comparison in the if-chain (Figure 7).
	MatchBase   uint64
	MatchPerCmp uint64
	// PrefetchIssue is charged per prefetch instruction executed.
	// (The machine additionally charges 1 base cycle.)
	PrefetchIssue uint64
	// InjectPause is charged once per optimization cycle that injects code:
	// dynamic Vulcan stops all program threads while binary modifications
	// are in progress (§3.2).
	InjectPause uint64
	// InjectPerCheck is charged per inserted check during injection.
	InjectPerCheck uint64
}

// DefaultCostModel returns costs calibrated so that the framework overheads
// land in the ranges of the paper's Figure 11 on the bundled workloads.
func DefaultCostModel() CostModel {
	return CostModel{
		TraceCost:         30,
		AnalysisPerSymbol: 25,
		MatchBase:         1,
		MatchPerCmp:       1,
		PrefetchIssue:     1,
		InjectPause:       20000,
		InjectPerCheck:    200,
	}
}

// Config configures one optimizer run.
type Config struct {
	Mode     Mode
	Burst    burst.Config
	Analysis hotds.Config
	// HeadLen is the stream prefix length that must match before
	// prefetching is initiated. The paper finds 2 best: 1 hurts accuracy,
	// 3 adds overhead without benefit (§4.3).
	HeadLen int
	Costs   CostModel
	// MaxOptCycles stops optimizing after this many cycles (0 = unlimited);
	// profiling continues but no further injections happen. Used by tests.
	MaxOptCycles int

	// ScheduleChunk, when positive, spreads a matched stream's tail
	// prefetches over subsequent injected checks, at most ScheduleChunk
	// per check, instead of issuing them all at the match point. The paper
	// issues everything immediately and notes that "more intelligent
	// prefetch scheduling could produce larger benefits" (§4.3); this is
	// that extension. Zero preserves the paper's behaviour.
	ScheduleChunk int

	// Static switches the optimizer to a one-shot static scheme: the first
	// awake phase's streams are injected once and kept forever — no
	// de-optimization, no re-profiling. The paper defers this comparison
	// to future work (§1); it isolates the value of adapting to phase
	// transitions. Only meaningful for the prefetching modes.
	Static bool
}

// DefaultConfig returns the paper's §4.1 configuration.
func DefaultConfig() Config {
	return Config{
		Mode:     ModeDynPref,
		Burst:    burst.PaperConfig(),
		Analysis: hotds.DefaultConfig(),
		HeadLen:  2,
		Costs:    DefaultCostModel(),
	}
}

// BaseVariant returns cfg adjusted for the paper's "Base" measurement:
// "setting nCheck0 to an extremely large value and nInstr0 to 1" (§4.2), so
// the program pays for the dynamic checks but performs (virtually) no data
// reference profiling.
func BaseVariant(cfg Config) Config {
	cfg.Mode = ModeBase
	cfg.Burst.NCheck0 = 1 << 40
	cfg.Burst.NInstr0 = 1
	return cfg
}

// CycleStats describes one completed optimization cycle — one row's worth of
// the paper's Table 2.
type CycleStats struct {
	TracedRefs      uint64 // references profiled during the awake phase
	GrammarSize     int    // Sequitur grammar size at analysis time
	HotStreams      int    // hot data streams detected
	StreamRefs      int    // total references across detected streams
	DFSMStates      int
	DFSMTransitions int
	ChecksInserted  int // prefix-match checks injected (Table 2's "checks")
	ProcsModified   int
	PrefixMatches   uint64 // complete head matches during the hibernation
}

// AvgStreamLen returns the average detected stream length in references —
// the paper's intro reports hot data streams are "long enough (15-20 object
// references on average) so that they can be prefetched ahead of use in a
// timely manner" (§1).
func (c CycleStats) AvgStreamLen() float64 {
	if c.HotStreams == 0 {
		return 0
	}
	return float64(c.StreamRefs) / float64(c.HotStreams)
}

// Result aggregates a full run.
type Result struct {
	Mode       Mode
	Cycles     []CycleStats // one entry per completed optimization cycle
	ExecCycles uint64       // total simulated execution time
	Machine    machine.Stats
	Cache      memsim.Stats
	Burst      burst.Stats
}

// OptCycles returns the number of completed optimization cycles.
func (r Result) OptCycles() int { return len(r.Cycles) }

// AvgPerCycle averages cycle statistics (Table 2 reports per-cycle
// averages). It returns zeros when no cycle completed.
func (r Result) AvgPerCycle() CycleStats {
	n := len(r.Cycles)
	if n == 0 {
		return CycleStats{}
	}
	var sum CycleStats
	for _, c := range r.Cycles {
		sum.TracedRefs += c.TracedRefs
		sum.GrammarSize += c.GrammarSize
		sum.HotStreams += c.HotStreams
		sum.StreamRefs += c.StreamRefs
		sum.DFSMStates += c.DFSMStates
		sum.DFSMTransitions += c.DFSMTransitions
		sum.ChecksInserted += c.ChecksInserted
		sum.ProcsModified += c.ProcsModified
		sum.PrefixMatches += c.PrefixMatches
	}
	return CycleStats{
		TracedRefs:      sum.TracedRefs / uint64(n),
		GrammarSize:     sum.GrammarSize / n,
		HotStreams:      sum.HotStreams / n,
		StreamRefs:      sum.StreamRefs / n,
		DFSMStates:      sum.DFSMStates / n,
		DFSMTransitions: sum.DFSMTransitions / n,
		ChecksInserted:  sum.ChecksInserted / n,
		ProcsModified:   sum.ProcsModified / n,
		PrefixMatches:   sum.PrefixMatches / uint64(n),
	}
}

// Optimizer is the machine runtime that implements the dynamic prefetching
// scheme. Create one per run with New.
type Optimizer struct {
	cfg  Config
	m    *machine.Machine
	ctrl *burst.Controller

	interner *ref.Interner
	grammar  *sequitur.Grammar

	matcher   *dfsm.Matcher
	injection vulcan.InjectResult
	injected  bool

	cycles  []CycleStats
	current CycleStats
	optDone bool // MaxOptCycles reached
	blockSz uint64
	seqBufs []machine.Word // scratch for sequential prefetch addresses

	// pending holds scheduled-but-unissued prefetch addresses when
	// ScheduleChunk is in effect; issue is the current check's slice, and
	// headPCs marks the injected sites that drive the matcher (the rest
	// are drain-only sites along stream bodies).
	pending []machine.Word
	issue   []machine.Word
	headPCs map[int]bool
	events  EventSink
}

// New attaches a fresh optimizer to m. The machine's program must already be
// statically instrumented (vulcan.Instrument).
func New(m *machine.Machine, cfg Config) *Optimizer {
	if cfg.HeadLen < 1 {
		cfg.HeadLen = 2
	}
	o := &Optimizer{
		cfg:      cfg,
		m:        m,
		ctrl:     burst.New(cfg.Burst),
		interner: ref.NewInterner(),
		grammar:  sequitur.New(),
		blockSz:  uint64(m.Cache.BlockSize()),
	}
	m.RT = o
	return o
}

// Check implements machine.Runtime.
func (o *Optimizer) Check(pc int) (machine.Version, uint64) {
	instrumented, phaseEnded := o.ctrl.Check()
	cost := o.ctrl.CheckCost()
	if phaseEnded {
		if o.ctrl.Phase() == burst.Awake {
			cost += o.endAwakePhase()
			o.emit(EventHibernate, "%d traced refs this cycle", o.current.TracedRefs)
			o.ctrl.Hibernate()
		} else {
			o.endHibernation()
			if o.cfg.Static && o.injected {
				// One-shot static scheme: stay optimized, never re-profile.
				o.ctrl.Hibernate()
			} else {
				o.emit(EventAwake, "profiling resumes")
				o.ctrl.Wake()
			}
		}
		instrumented = false
	}
	if instrumented {
		return machine.VersionInstrumented, cost
	}
	return machine.VersionChecking, cost
}

// TraceRef implements machine.Runtime: one profiled data reference.
func (o *Optimizer) TraceRef(pc int, addr machine.Word, isWrite bool) uint64 {
	if !o.ctrl.Awake() {
		// Hibernation traces one burst per period into the void; the refs
		// are ignored to avoid trace contamination (§2.4), but the
		// instrumented code still costs its buffer write.
		return o.cfg.Costs.TraceCost
	}
	if o.cfg.Mode.profiles() {
		o.current.TracedRefs++
		sym := o.interner.Intern(ref.Ref{PC: pc, Addr: addr})
		o.grammar.Append(uint64(sym))
	}
	return o.cfg.Costs.TraceCost
}

// Match implements machine.Runtime: one executed injected check.
func (o *Optimizer) Match(pc int, addr machine.Word) ([]machine.Word, uint64) {
	if o.matcher == nil {
		// Stale injected code after de-optimization (a frame that was on
		// the stack at deopt time, §3.2): the check runs but matches
		// nothing.
		return nil, o.cfg.Costs.MatchBase
	}
	var prefetch []uint64
	cost := o.cfg.Costs.MatchBase
	if o.headPCs == nil || o.headPCs[pc] {
		var comparisons int
		prefetch, comparisons = o.matcher.Step(ref.Ref{PC: pc, Addr: addr})
		cost += o.cfg.Costs.MatchPerCmp * uint64(comparisons)
		if prefetch != nil {
			o.current.PrefixMatches++
		}
	}
	if !o.cfg.Mode.prefetches() {
		return nil, cost // ModeNoPref: matching overhead without prefetches
	}
	if prefetch != nil && o.cfg.Mode == ModeSeqPref {
		// Prefetch the blocks sequentially following the last matched
		// reference, one per stream address the real scheme would fetch
		// (§4.3's Seq-pref baseline).
		o.seqBufs = o.seqBufs[:0]
		for i := 1; i <= len(prefetch); i++ {
			o.seqBufs = append(o.seqBufs, addr+uint64(i)*o.blockSz)
		}
		prefetch = o.seqBufs
	}

	chunk := o.cfg.ScheduleChunk
	if chunk <= 0 {
		// The paper's behaviour: issue the whole tail at the match point.
		if prefetch == nil {
			return nil, cost
		}
		return prefetch, cost + o.cfg.Costs.PrefetchIssue*uint64(len(prefetch))
	}

	// Scheduled prefetching: enqueue the tail and drain up to chunk
	// addresses per executed check, overlapping fills with more of the
	// stream's own progress.
	if prefetch != nil {
		o.pending = append(o.pending, prefetch...)
	}
	if len(o.pending) == 0 {
		return nil, cost
	}
	n := chunk
	if n > len(o.pending) {
		n = len(o.pending)
	}
	o.issue = append(o.issue[:0], o.pending[:n]...)
	o.pending = o.pending[:copy(o.pending, o.pending[n:])]
	return o.issue, cost + o.cfg.Costs.PrefetchIssue*uint64(n)
}

// endAwakePhase runs the analysis-and-optimization phase and returns its
// modeled cycle cost.
func (o *Optimizer) endAwakePhase() uint64 {
	var cost uint64
	o.current.GrammarSize = o.grammar.Size()

	if o.cfg.Mode.analyzes() && !o.optDone {
		cost += o.cfg.Costs.AnalysisPerSymbol * uint64(o.grammar.Size())
		streams := hotds.Analyze(o.grammar.Snapshot(), o.cfg.Analysis)
		o.current.HotStreams = len(streams)
		for _, s := range streams {
			o.current.StreamRefs += len(s.Word)
		}
		o.emit(EventAnalyzed, "%d hot streams from %d-symbol grammar",
			len(streams), o.grammar.Size())

		if o.cfg.Mode.injects() && len(streams) > 0 {
			split := make([]dfsm.Stream, 0, len(streams))
			for _, s := range streams {
				refs := make([]ref.Ref, len(s.Word))
				for i, sym := range s.Word {
					refs[i] = o.interner.Ref(ref.Symbol(sym))
				}
				split = append(split, dfsm.Split(refs, s.Heat, o.cfg.HeadLen))
			}
			d := dfsm.Build(split, o.cfg.HeadLen)
			o.current.DFSMStates = d.NumStates()
			o.current.DFSMTransitions = d.NumTransitions()

			pcs := map[int]bool{}
			for _, pc := range d.PCs() {
				pcs[pc] = true
			}
			o.headPCs = pcs
			if o.cfg.ScheduleChunk > 0 {
				// Scheduled prefetching needs drain points along the whole
				// stream, not just its head: inject (drain-only) checks at
				// every stream pc.
				all := map[int]bool{}
				for pc := range pcs {
					all[pc] = true
				}
				for _, s := range split {
					for _, r := range s.Refs {
						all[r.PC] = true
					}
				}
				pcs = all
			}
			o.injection = vulcan.Inject(o.m.Prog, pcs)
			o.injected = true
			o.current.ChecksInserted = o.injection.ChecksInserted
			o.current.ProcsModified = o.injection.ProcsModified()
			o.matcher = dfsm.NewMatcher(d)
			o.emit(EventInjected, "%d checks into %d procs, DFSM <%d states, %d transitions>",
				o.injection.ChecksInserted, o.injection.ProcsModified(),
				d.NumStates(), d.NumTransitions())
			cost += o.cfg.Costs.InjectPause +
				o.cfg.Costs.InjectPerCheck*uint64(o.injection.ChecksInserted)
		}
	}

	// Fresh grammar for the next cycle; the interner persists so symbols
	// remain stable across cycles.
	o.grammar = sequitur.New()
	return cost
}

// endHibernation de-optimizes and closes out the cycle's statistics. Under
// the static one-shot scheme the injection is kept and the optimizer stays
// dormant: the program runs with the first cycle's prefetching forever.
func (o *Optimizer) endHibernation() {
	if o.injected && !o.cfg.Static {
		vulcan.Deoptimize(o.m.Prog, o.injection)
		o.emit(EventDeoptimized, "removed %d entry patches", len(o.injection.Patched))
		o.injected = false
		o.matcher = nil
	}
	o.pending = o.pending[:0]
	o.cycles = append(o.cycles, o.current)
	o.current = CycleStats{}
	if o.cfg.MaxOptCycles > 0 && len(o.cycles) >= o.cfg.MaxOptCycles {
		o.optDone = true
	}
	if o.cfg.Static && o.injected {
		o.optDone = true
	}
}

// Result collects the run's statistics. Call after the machine has halted.
func (o *Optimizer) Result() Result {
	return Result{
		Mode:       o.cfg.Mode,
		Cycles:     o.cycles,
		ExecCycles: o.m.Cycles,
		Machine:    o.m.Stats,
		Cache:      o.m.Cache.Stats(),
		Burst:      o.ctrl.Stats(),
	}
}

// Run executes the machine to completion under the optimizer and returns
// the result.
func Run(m *machine.Machine, cfg Config) (Result, error) {
	o := New(m, cfg)
	if err := m.RunToCompletion(); err != nil {
		return Result{}, err
	}
	return o.Result(), nil
}

// RunBaseline executes a machine with no instrumentation runtime at all and
// returns its cycle count — the "original unoptimized program" execution
// time that Figure 12 normalizes against. The machine's program must be the
// pre-instrumentation build.
func RunBaseline(m *machine.Machine) (uint64, error) {
	m.RT = nil
	if err := m.RunToCompletion(); err != nil {
		return 0, err
	}
	return m.Cycles, nil
}
