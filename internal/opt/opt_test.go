package opt

import (
	"testing"

	"hotprefetch/internal/burst"
	"hotprefetch/internal/heap"
	"hotprefetch/internal/hotds"
	"hotprefetch/internal/machine"
	"hotprefetch/internal/memsim"
	"hotprefetch/internal/vulcan"
)

// testCache is small enough that a modest pointer chase thrashes it:
// L1 = 8 blocks, L2 = 16 blocks. A cyclic traversal of 24 one-block nodes
// misses both levels on every access under LRU.
func testCache() memsim.Config {
	return memsim.Config{
		BlockSize: 32, L1Size: 256, L1Assoc: 2, L2Size: 512, L2Assoc: 2,
		L2HitLatency: 10, MemLatency: 100,
	}
}

// testConfig samples aggressively so small test programs complete several
// optimization cycles.
func testConfig(mode Mode) Config {
	return Config{
		Mode: mode,
		Burst: burst.Config{
			NCheck0: 60, NInstr0: 60, // 50% sampling, bursts long enough for full traversals
			NAwake0: 4, NHibernate0: 60, // hibernation-dominated, like the paper's 1s-in-50s
			CheckCost: 2,
		},
		Analysis: hotds.Config{
			MinLen: 4, MaxLen: 120, MinCoverage: 0.02, MaxStreams: 20,
		},
		HeadLen: 2,
		Costs:   DefaultCostModel(),
	}
}

// chaseMachine builds a machine whose program repeatedly traverses a
// scattered linked list — a miss-heavy workload with one dominant hot data
// stream. instrument controls whether the static Vulcan pass runs.
func chaseMachine(t testing.TB, nodes int, laps int64, instrument bool) *machine.Machine {
	b := machine.NewBuilder()
	b.Proc("main").
		Const(1, laps).
		Label("outer").
		Call("traverse").
		Loop(1, "outer").
		Ret()
	b.Proc("traverse").
		Const(2, 8). // list head address (filled below)
		Load(3, 2, 0).
		Label("chase").
		Load(3, 3, 8). // r3 = r3->next (field at offset 8)
		Arith(4).
		Bnez(3, "chase").
		Ret()
	prog, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	if instrument {
		vulcan.Instrument(prog)
	}
	m := machine.New(prog, 1<<14, testCache())

	// Heap: word 8 holds the head pointer; nodes are scattered (shuffled
	// allocation order) with one node per cache block.
	arena := heap.NewArena(m.Mem, 64)
	addrs := arena.List(nodes, 2, 1, heap.ShuffledPerm(nodes, 11), 16)
	m.WriteWord(8, addrs[0])
	return m
}

func TestBaselineRuns(t *testing.T) {
	m := chaseMachine(t, 24, 50, false)
	cycles, err := RunBaseline(m)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Fatal("baseline must execute")
	}
	if m.Cache.Stats().L2Misses == 0 {
		t.Fatal("workload should miss in L2 (working set exceeds it)")
	}
}

func TestDynPrefCompletesCyclesAndPrefetches(t *testing.T) {
	m := chaseMachine(t, 24, 1200, true)
	res, err := Run(m, testConfig(ModeDynPref))
	if err != nil {
		t.Fatal(err)
	}
	if res.OptCycles() < 2 {
		t.Fatalf("optimization cycles = %d, want >= 2", res.OptCycles())
	}
	avg := res.AvgPerCycle()
	if avg.TracedRefs == 0 {
		t.Error("no references traced")
	}
	if avg.HotStreams == 0 {
		t.Error("no hot streams detected")
	}
	if avg.DFSMStates < 2 {
		t.Errorf("DFSM states = %d, want >= 2", avg.DFSMStates)
	}
	if avg.ProcsModified == 0 {
		t.Error("no procedures modified")
	}
	if res.Machine.Prefetches == 0 {
		t.Error("no prefetches issued")
	}
	if res.Cache.UsefulPrefetches == 0 {
		t.Error("no prefetch was useful")
	}
	// After the run every injection must have been de-optimized or be
	// removable: no procedure that is an original may still be patched
	// after its hibernation ended. (The final phase may be mid-flight, so
	// only check when the last cycle closed.)
	_ = res
}

func TestDynPrefBeatsNoPref(t *testing.T) {
	mNo := chaseMachine(t, 24, 1200, true)
	resNo, err := Run(mNo, testConfig(ModeNoPref))
	if err != nil {
		t.Fatal(err)
	}
	mDyn := chaseMachine(t, 24, 1200, true)
	resDyn, err := Run(mDyn, testConfig(ModeDynPref))
	if err != nil {
		t.Fatal(err)
	}
	if resDyn.ExecCycles >= resNo.ExecCycles {
		t.Errorf("dyn-pref (%d cycles) should beat no-pref (%d cycles)",
			resDyn.ExecCycles, resNo.ExecCycles)
	}
	if resDyn.Cache.L2Misses >= resNo.Cache.L2Misses {
		t.Errorf("dyn-pref L2 misses (%d) should be below no-pref (%d)",
			resDyn.Cache.L2Misses, resNo.Cache.L2Misses)
	}
}

func TestDynPrefBeatsBaselineOnMissHeavyWorkload(t *testing.T) {
	base, err := RunBaseline(chaseMachine(t, 24, 1200, false))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(chaseMachine(t, 24, 1200, true), testConfig(ModeDynPref))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecCycles >= base {
		t.Errorf("dyn-pref (%d) should beat the unoptimized baseline (%d)",
			res.ExecCycles, base)
	}
}

func TestProfileModeTracesButNeverInjects(t *testing.T) {
	m := chaseMachine(t, 24, 1200, true)
	res, err := Run(m, testConfig(ModeProfile))
	if err != nil {
		t.Fatal(err)
	}
	if res.OptCycles() == 0 {
		t.Fatal("profiling cycles expected")
	}
	avg := res.AvgPerCycle()
	if avg.TracedRefs == 0 {
		t.Error("profile mode must trace")
	}
	if avg.HotStreams != 0 || avg.ProcsModified != 0 {
		t.Error("profile mode must not analyze or inject")
	}
	if res.Machine.Matches != 0 {
		t.Error("profile mode must not execute injected checks")
	}
}

func TestHdsModeAnalyzesButNeverInjects(t *testing.T) {
	m := chaseMachine(t, 24, 1200, true)
	res, err := Run(m, testConfig(ModeHds))
	if err != nil {
		t.Fatal(err)
	}
	avg := res.AvgPerCycle()
	if avg.HotStreams == 0 {
		t.Error("hds mode must detect streams")
	}
	if avg.ProcsModified != 0 || res.Machine.Matches != 0 {
		t.Error("hds mode must not inject")
	}
}

func TestNoPrefMatchesWithoutPrefetching(t *testing.T) {
	m := chaseMachine(t, 24, 1200, true)
	res, err := Run(m, testConfig(ModeNoPref))
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.Matches == 0 {
		t.Error("no-pref mode must execute injected checks")
	}
	if res.Machine.Prefetches != 0 || res.Cache.Prefetches != 0 {
		t.Error("no-pref mode must not prefetch")
	}
	avg := res.AvgPerCycle()
	if avg.PrefixMatches == 0 {
		t.Error("prefix matches expected")
	}
}

func TestSeqPrefPrefetchesWrongBlocksOnScatteredLayout(t *testing.T) {
	mSeq := chaseMachine(t, 24, 1200, true)
	resSeq, err := Run(mSeq, testConfig(ModeSeqPref))
	if err != nil {
		t.Fatal(err)
	}
	if resSeq.Cache.Prefetches == 0 {
		t.Fatal("seq-pref must prefetch")
	}
	mDyn := chaseMachine(t, 24, 1200, true)
	resDyn, err := Run(mDyn, testConfig(ModeDynPref))
	if err != nil {
		t.Fatal(err)
	}
	// On a scattered layout, sequential prefetching is far less accurate
	// than stream-targeted prefetching.
	seqUseful := float64(resSeq.Cache.UsefulPrefetches) / float64(resSeq.Cache.Prefetches)
	dynUseful := float64(resDyn.Cache.UsefulPrefetches) / float64(resDyn.Cache.Prefetches)
	if seqUseful >= dynUseful {
		t.Errorf("seq-pref useful ratio (%.2f) should be below dyn-pref (%.2f)",
			seqUseful, dynUseful)
	}
	if resSeq.ExecCycles <= resDyn.ExecCycles {
		t.Errorf("seq-pref (%d) should be slower than dyn-pref (%d)",
			resSeq.ExecCycles, resDyn.ExecCycles)
	}
}

func TestBaseVariantNeverTraces(t *testing.T) {
	m := chaseMachine(t, 24, 200, true)
	cfg := BaseVariant(testConfig(ModeDynPref))
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.TracedRefs != 0 {
		t.Errorf("base variant traced %d refs, want 0", res.Machine.TracedRefs)
	}
	if res.OptCycles() != 0 {
		t.Errorf("base variant completed %d cycles, want 0", res.OptCycles())
	}
	if res.Burst.Checks == 0 {
		t.Error("base variant must still execute checks")
	}
}

func TestBaseVariantCostsMoreThanBaseline(t *testing.T) {
	base, err := RunBaseline(chaseMachine(t, 24, 200, false))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(chaseMachine(t, 24, 200, true), BaseVariant(testConfig(ModeDynPref)))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecCycles <= base {
		t.Errorf("checks must cost something: base-variant %d <= baseline %d",
			res.ExecCycles, base)
	}
	// But not much: the paper reports 2.5-6%; allow up to 30% in the
	// aggressive test configuration.
	if float64(res.ExecCycles) > 1.3*float64(base) {
		t.Errorf("check overhead implausibly high: %d vs %d", res.ExecCycles, base)
	}
}

func TestMaxOptCyclesStopsInjection(t *testing.T) {
	cfg := testConfig(ModeDynPref)
	cfg.MaxOptCycles = 1
	m := chaseMachine(t, 24, 1200, true)
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	injected := 0
	for _, c := range res.Cycles {
		if c.ProcsModified > 0 {
			injected++
		}
	}
	if injected != 1 {
		t.Errorf("cycles with injection = %d, want exactly 1", injected)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		m := chaseMachine(t, 24, 1200, true)
		res, err := Run(m, testConfig(ModeDynPref))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.ExecCycles != b.ExecCycles || a.Machine != b.Machine || a.Cache != b.Cache {
		t.Errorf("runs diverged:\n%+v\nvs\n%+v", a, b)
	}
	if len(a.Cycles) != len(b.Cycles) {
		t.Fatalf("cycle counts differ: %d vs %d", len(a.Cycles), len(b.Cycles))
	}
	for i := range a.Cycles {
		if a.Cycles[i] != b.Cycles[i] {
			t.Errorf("cycle %d differs: %+v vs %+v", i, a.Cycles[i], b.Cycles[i])
		}
	}
}

func TestNoProcRemainsPatchedAfterFullCycles(t *testing.T) {
	m := chaseMachine(t, 24, 1200, true)
	res, err := Run(m, testConfig(ModeDynPref))
	if err != nil {
		t.Fatal(err)
	}
	if res.OptCycles() == 0 {
		t.Skip("no full cycle completed")
	}
	// A program may halt mid-hibernation with an active injection; that is
	// fine. But the number of currently patched procedures must equal the
	// last injection's count or zero, never an accumulation.
	patched := 0
	for _, p := range m.Prog.Procs {
		if p.Redirect != machine.NoRedirect {
			patched++
		}
	}
	last := res.Cycles[len(res.Cycles)-1]
	if patched != 0 && patched > last.ProcsModified+4 {
		t.Errorf("patched procedures accumulated: %d", patched)
	}
}

func TestModeStrings(t *testing.T) {
	for m := ModeBase; m <= ModeDynPref; m++ {
		if m.String() == "mode?" {
			t.Errorf("mode %d has no name", m)
		}
	}
}

func TestScheduledPrefetchingDrainsPending(t *testing.T) {
	cfg := testConfig(ModeDynPref)
	cfg.ScheduleChunk = 2
	m := chaseMachine(t, 24, 1200, true)
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.Prefetches == 0 {
		t.Fatal("scheduled mode issued no prefetches")
	}
	if res.Cache.UsefulPrefetches == 0 {
		t.Error("scheduled prefetches were never useful")
	}
	// Scheduling must not lose the overall win on this workload.
	base, err := RunBaseline(chaseMachine(t, 24, 1200, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecCycles >= base {
		t.Errorf("scheduled dyn-pref (%d) should beat baseline (%d)", res.ExecCycles, base)
	}
}

func TestStaticModeInjectsOnceAndKeepsIt(t *testing.T) {
	cfg := testConfig(ModeDynPref)
	cfg.Static = true
	m := chaseMachine(t, 24, 1200, true)
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	injected := 0
	for _, c := range res.Cycles {
		if c.ProcsModified > 0 {
			injected++
		}
	}
	if injected != 1 {
		t.Errorf("static mode injected in %d cycles, want exactly 1", injected)
	}
	// After the one-shot injection, profiling stops: later cycles trace
	// nothing.
	for i, c := range res.Cycles[1:] {
		if c.TracedRefs != 0 {
			t.Errorf("static mode traced %d refs in cycle %d, want 0", c.TracedRefs, i+1)
		}
	}
	// The injection must still be live at the end of the run.
	patched := 0
	for _, p := range m.Prog.Procs {
		if p.Redirect != machine.NoRedirect {
			patched++
		}
	}
	if patched == 0 {
		t.Error("static mode must keep its injection")
	}
	if res.Machine.Prefetches == 0 || res.Cache.UsefulPrefetches == 0 {
		t.Error("static mode should prefetch throughout")
	}
}

func TestEventSinkObservesTheCycle(t *testing.T) {
	m := chaseMachine(t, 24, 1200, true)
	o := New(m, testConfig(ModeDynPref))
	var events []Event
	o.SetEventSink(func(e Event) { events = append(events, e) })
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if o.Result().OptCycles() == 0 {
		t.Skip("no cycle completed")
	}
	counts := map[EventKind]int{}
	for _, e := range events {
		counts[e.Kind]++
		if e.String() == "" || e.Kind.String() == "event?" {
			t.Errorf("bad event rendering: %+v", e)
		}
	}
	for _, k := range []EventKind{EventAnalyzed, EventInjected, EventHibernate, EventDeoptimized, EventAwake} {
		if counts[k] == 0 {
			t.Errorf("no %s events observed", k)
		}
	}
	// Injections and deoptimizations pair up (the final one may be open).
	if d := counts[EventInjected] - counts[EventDeoptimized]; d < 0 || d > 1 {
		t.Errorf("injections (%d) and deoptimizations (%d) unbalanced",
			counts[EventInjected], counts[EventDeoptimized])
	}
}

// TestNoStreamsGracefulCycle runs the optimizer over a program with no
// repeating reference structure: analysis finds nothing, no injection
// happens, and the run completes with only framework overhead.
func TestNoStreamsGracefulCycle(t *testing.T) {
	// A program whose loads stride over fresh addresses forever: no
	// subsequence ever repeats, so no hot data streams exist.
	b := machine.NewBuilder()
	b.Proc("main").
		Const(1, 20000).
		Const(2, 64).
		Label("head").
		Load(3, 2, 0).
		AddImm(2, 2, 32).
		Loop(1, "head").
		Ret()
	prog, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	vulcan.Instrument(prog)
	m := machine.New(prog, 1<<17, testCache())
	res, err := Run(m, testConfig(ModeDynPref))
	if err != nil {
		t.Fatal(err)
	}
	if res.OptCycles() == 0 {
		t.Fatal("cycles should still complete")
	}
	avg := res.AvgPerCycle()
	if avg.HotStreams != 0 || avg.ProcsModified != 0 {
		t.Errorf("no streams should be found: %+v", avg)
	}
	if res.Machine.Prefetches != 0 {
		t.Error("nothing should be prefetched")
	}
}

// TestStaleFrameKeepsRunningOriginalCode reproduces the paper's §3.2 safety
// argument: return addresses on the stack at optimization time keep
// referring to original procedures, so a frame live across an injection
// continues executing unoptimized code (missed opportunities, never
// wrong execution), while fresh calls run the optimized clone.
func TestStaleFrameKeepsRunningOriginalCode(t *testing.T) {
	// main calls outer once; outer runs a long loop calling leaf each
	// iteration. We inject while outer's frame is live: leaf (freshly
	// called each iteration) must switch to its clone; outer must not.
	b := machine.NewBuilder()
	b.Proc("main").
		Call("outer").
		Ret()
	b.Proc("outer").
		Const(1, 50).
		Const(2, 0x400).
		Label("head").
		Load(3, 2, 0). // outer's own ref
		Call("leaf").
		Loop(1, "head").
		Ret()
	b.Proc("leaf").
		Const(4, 0x800).
		Load(5, 4, 0).
		Ret()
	prog, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	vulcan.Instrument(prog)

	var outerLoadPC, leafLoadPC int
	for _, proc := range prog.Procs {
		for _, in := range proc.Body[0] {
			if in.Op == machine.OpLoad {
				switch proc.Name {
				case "outer":
					outerLoadPC = int(in.PC)
				case "leaf":
					leafLoadPC = int(in.PC)
				}
			}
		}
	}

	m := machine.New(prog, 1<<12, testCache())
	matched := map[int]int{}
	rt := &injectOnceRT{
		m: m, prog: prog,
		pcs:     map[int]bool{outerLoadPC: true, leafLoadPC: true},
		matched: matched,
	}
	m.RT = rt
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if !rt.injected {
		t.Fatal("injection never happened")
	}
	if matched[leafLoadPC] == 0 {
		t.Error("fresh calls to leaf must execute the injected clone")
	}
	if matched[outerLoadPC] != 0 {
		t.Errorf("outer's live frame must keep running original code, saw %d matches",
			matched[outerLoadPC])
	}
}

// injectOnceRT injects at the 5th check and records which pcs' injected
// checks execute.
type injectOnceRT struct {
	m        *machine.Machine
	prog     *machine.Program
	pcs      map[int]bool
	matched  map[int]int
	checks   int
	injected bool
}

func (r *injectOnceRT) Check(pc int) (machine.Version, uint64) {
	r.checks++
	if r.checks == 5 && !r.injected {
		vulcan.Inject(r.prog, r.pcs)
		r.injected = true
	}
	return machine.VersionChecking, 0
}
func (r *injectOnceRT) TraceRef(pc int, addr machine.Word, isWrite bool) uint64 { return 0 }
func (r *injectOnceRT) Match(pc int, addr machine.Word) ([]machine.Word, uint64) {
	r.matched[pc]++
	return nil, 0
}
