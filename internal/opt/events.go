package opt

import "fmt"

// Event is one entry in the optimizer's decision log: phase transitions,
// analysis results, injections, and de-optimizations. Events let operators
// watch the Figure-1 cycle as it happens without digging through
// statistics.
type Event struct {
	// Cycle is the optimization cycle the event belongs to (0-based).
	Cycle int
	// Kind describes what happened.
	Kind EventKind
	// Detail is a human-readable summary.
	Detail string
}

// EventKind enumerates optimizer decisions.
type EventKind int

const (
	// EventAwake marks the start of a profiling (awake) phase.
	EventAwake EventKind = iota
	// EventAnalyzed marks the completion of hot data stream analysis.
	EventAnalyzed
	// EventInjected marks a code injection.
	EventInjected
	// EventHibernate marks the start of a hibernation phase.
	EventHibernate
	// EventDeoptimized marks the removal of injected code.
	EventDeoptimized
)

func (k EventKind) String() string {
	switch k {
	case EventAwake:
		return "awake"
	case EventAnalyzed:
		return "analyzed"
	case EventInjected:
		return "injected"
	case EventHibernate:
		return "hibernate"
	case EventDeoptimized:
		return "deoptimized"
	}
	return "event?"
}

// String renders the event as a log line.
func (e Event) String() string {
	return fmt.Sprintf("cycle %d: %-11s %s", e.Cycle, e.Kind, e.Detail)
}

// EventSink receives optimizer events as they happen. Implementations must
// not retain the machine or mutate optimizer state.
type EventSink func(Event)

// SetEventSink attaches an event sink (nil detaches). Events are emitted
// synchronously from within the optimizer's phase transitions.
func (o *Optimizer) SetEventSink(sink EventSink) { o.events = sink }

func (o *Optimizer) emit(kind EventKind, format string, args ...any) {
	if o.events == nil {
		return
	}
	o.events(Event{
		Cycle:  len(o.cycles),
		Kind:   kind,
		Detail: fmt.Sprintf(format, args...),
	})
}
