package stride

import (
	"reflect"
	"testing"

	"hotprefetch/internal/ref"
)

// cfg4 is a small deterministic geometry for tests: 256 B pages, 16 B
// blocks (16 blocks per page), 4-entry table.
func cfg4() Config {
	return Config{Entries: 4, PageBits: 8, BlockBits: 4, Degree: 2, MaxConf: 3, Threshold: 2}
}

func seq(addrs ...uint64) []ref.Ref {
	rs := make([]ref.Ref, len(addrs))
	for i, a := range addrs {
		rs[i] = ref.Ref{PC: i, Addr: a}
	}
	return rs
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Entries: -1},
		{PageBits: 4, BlockBits: 6},
		{PageBits: 40},
		{Degree: -3},
		{Threshold: 5, MaxConf: 2},
		{Threshold: -1, MaxConf: -1},
	}
	for _, cfg := range cases {
		if _, err := New(nil, cfg); err == nil {
			t.Errorf("New(%+v): expected config error", cfg)
		}
	}
	if _, err := New(nil, Config{}); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
}

func TestUntrainedIsPassThrough(t *testing.T) {
	p, err := New(nil, cfg4())
	if err != nil {
		t.Fatal(err)
	}
	if p.Trained() {
		t.Fatal("empty training set reported trained")
	}
	for i := uint64(0); i < 8; i++ {
		pf, cmp := p.Observe(ref.Ref{Addr: i * 0x10})
		if pf != nil || cmp != 1 {
			t.Fatalf("untrained Observe = (%v,%d), want (nil,1)", pf, cmp)
		}
	}
	if p.Live() != 0 {
		t.Fatalf("untrained table has %d live entries", p.Live())
	}
}

// train returns a predictor seeded with one minimal stream (two refs on a
// far-away page) purely to flip it into trained mode with predictable
// table contents.
func train(t *testing.T, cfg Config) *Predictor {
	t.Helper()
	p, err := New([]Stream{{Refs: seq(0xff00, 0xff10), Heat: 1}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAscendingStreamPrefetches(t *testing.T) {
	p := train(t, cfg4())
	// Walk page 0 upward: blocks 0,1,2,... The first touch installs the
	// entry, the second sets dir with conf 1, the third reaches the
	// threshold and issues.
	var pf []uint64
	var cmp int
	for b := uint64(0); b < 4; b++ {
		pf, cmp = p.Observe(ref.Ref{Addr: b * 0x10})
	}
	if want := []uint64{0x40, 0x50}; !reflect.DeepEqual(pf, want) {
		t.Fatalf("ascending walk predicted %v, want %v", pf, want)
	}
	if cmp < 1 {
		t.Fatalf("comparisons %d < 1", cmp)
	}
}

func TestDescendingStreamPrefetches(t *testing.T) {
	p := train(t, cfg4())
	var pf []uint64
	for b := int64(9); b >= 6; b-- {
		pf, _ = p.Observe(ref.Ref{Addr: uint64(b) * 0x10})
	}
	if want := []uint64{0x50, 0x40}; !reflect.DeepEqual(pf, want) {
		t.Fatalf("descending walk predicted %v, want %v", pf, want)
	}
}

func TestPageBoundaryStopsIssue(t *testing.T) {
	p := train(t, cfg4())
	// Walk up to the last block of page 0 (block 15): degree 2 would want
	// blocks 16,17 — both beyond the page, so nothing issues; block 14
	// still has one in-page successor.
	var pf []uint64
	for b := uint64(10); b <= 14; b++ {
		pf, _ = p.Observe(ref.Ref{Addr: b * 0x10})
	}
	if want := []uint64{0xf0}; !reflect.DeepEqual(pf, want) {
		t.Fatalf("at block 14 predicted %v, want %v (clipped to page)", pf, want)
	}
	pf, _ = p.Observe(ref.Ref{Addr: 15 * 0x10})
	if pf != nil {
		t.Fatalf("at page-final block predicted %v, want none", pf)
	}
}

func TestDirectionFlipRequiresDecay(t *testing.T) {
	p := train(t, cfg4())
	// Build an up-stream at full confidence, then reverse: the first two
	// down-steps only decay confidence (no issue), the flip then rebuilds
	// credit in the new direction before issuing again.
	for b := uint64(0); b < 6; b++ {
		p.Observe(ref.Ref{Addr: b * 0x10})
	}
	sawQuiet := 0
	var atBlock1 []uint64
	for b := int64(4); b >= 0; b-- {
		pf, _ := p.Observe(ref.Ref{Addr: uint64(b) * 0x10})
		if pf == nil {
			sawQuiet++
		}
		if b == 1 {
			atBlock1 = append([]uint64(nil), pf...)
		}
	}
	if sawQuiet == 0 {
		t.Fatal("direction flip issued immediately; expected a decay gap")
	}
	if want := []uint64{0x00}; !reflect.DeepEqual(atBlock1, want) {
		t.Fatalf("after flip, at block 1 predicted %v, want %v", atBlock1, want)
	}
}

func TestSameBlockTouchKeepsConfidence(t *testing.T) {
	p := train(t, cfg4())
	for _, a := range []uint64{0x00, 0x10, 0x20} {
		p.Observe(ref.Ref{Addr: a})
	}
	// Re-touching block 2 is a zero stride: no direction change, no decay.
	if pf, _ := p.Observe(ref.Ref{Addr: 0x28}); pf == nil {
		t.Fatal("zero-stride touch lost stream confidence")
	}
}

func TestLRUReplacement(t *testing.T) {
	cfg := cfg4()
	cfg.Entries = 2
	p := train(t, cfg) // seed occupies one slot with page 0xff
	// Touch page 1 (fills slot 2), then page 2: the seed page 0xff is LRU
	// and must be the victim; page 1 survives.
	p.Observe(ref.Ref{Addr: 1 << 8})
	p.Observe(ref.Ref{Addr: 2 << 8})
	if p.Live() != 2 {
		t.Fatalf("Live() = %d, want 2", p.Live())
	}
	// Rebuild page 1's stream: if it survived, two more touches reach the
	// threshold; a re-installed entry would still be direction-less.
	p.Observe(ref.Ref{Addr: 1<<8 | 0x10})
	pf, _ := p.Observe(ref.Ref{Addr: 1<<8 | 0x20})
	if pf == nil {
		t.Fatal("page 1 was evicted; expected the LRU seed page to go")
	}
}

func TestComparisonsTrackOccupancy(t *testing.T) {
	p := train(t, cfg4())
	_, cmp := p.Observe(ref.Ref{Addr: 0x00}) // miss past 1 valid entry
	if cmp != 1 {
		t.Fatalf("miss over 1-entry table cost %d comparisons, want 1", cmp)
	}
	_, cmp = p.Observe(ref.Ref{Addr: 1 << 8}) // miss past 2 valid entries
	if cmp != 2 {
		t.Fatalf("miss over 2-entry table cost %d, want 2", cmp)
	}
	_, cmp = p.Observe(ref.Ref{Addr: 0x10}) // hit on first slot: probes stop
	if cmp > 3 {
		t.Fatalf("hit cost %d comparisons, want <= table occupancy", cmp)
	}
}

func TestResetRestoresPostTrainState(t *testing.T) {
	p, err := New([]Stream{{Refs: seq(0x00, 0x10, 0x20, 0x30), Heat: 2}}, cfg4())
	if err != nil {
		t.Fatal(err)
	}
	run := func() [][]uint64 {
		var out [][]uint64
		for _, a := range []uint64{0x40, 0x50, 0x300, 0x60} {
			pf, _ := p.Observe(ref.Ref{Addr: a})
			out = append(out, append([]uint64(nil), pf...))
		}
		return out
	}
	first := run()
	p.Reset()
	if second := run(); !reflect.DeepEqual(first, second) {
		t.Fatalf("replay after Reset diverged:\n first %v\nsecond %v", first, second)
	}
	if !p.Trained() {
		t.Fatal("Reset cleared trained state")
	}
}

func TestSeededStreamIssuesImmediately(t *testing.T) {
	// Seeding replays the hot stream: the very first post-training touch
	// that extends it should issue without re-warming confidence.
	p, err := New([]Stream{{Refs: seq(0x00, 0x10, 0x20, 0x30), Heat: 2}}, cfg4())
	if err != nil {
		t.Fatal(err)
	}
	pf, _ := p.Observe(ref.Ref{Addr: 0x40})
	if want := []uint64{0x50, 0x60}; !reflect.DeepEqual(pf, want) {
		t.Fatalf("first touch after seeding predicted %v, want %v", pf, want)
	}
}

func TestObserveAllocFree(t *testing.T) {
	p, err := New([]Stream{{Refs: seq(0x00, 0x10, 0x20, 0x30), Heat: 2}}, cfg4())
	if err != nil {
		t.Fatal(err)
	}
	trace := []ref.Ref{{Addr: 0x40}, {Addr: 0x50}, {Addr: 0x500}, {Addr: 0x60}}
	allocs := testing.AllocsPerRun(100, func() {
		for _, r := range trace {
			p.Observe(r)
		}
	})
	if allocs != 0 {
		t.Fatalf("Observe allocated %.1f times per trace", allocs)
	}
}
