// Package stride implements a table-driven stream/stride prefetcher: a small
// fully-associative table of stream entries, one per active page, each
// tracking the last block touched, the stream's direction, and a saturating
// confidence counter, with LRU replacement — the classic hardware stream
// detector (the Virtuoso/DROPLET StreamEntry shape, and the tracking
// structure Feedback Directed Prefetching builds on).
//
// Unlike the DFSM and Markov predictors, the stride table needs no trained
// address tables to predict: training (see New) only seeds the table by
// replaying the hot streams, priming direction and confidence so known-hot
// pages prefetch from the first post-training touch. Detection is spatial —
// monotone block runs within a page — so it covers array walks the
// grammar-based analysis sees as many distinct streams, and misses
// pointer-chasing streams entirely.
//
// Observe reuses an internal prefetch buffer: the returned slice is valid
// only until the next Observe and must not be retained or mutated.
package stride

import (
	"fmt"

	"hotprefetch/internal/ref"
)

// Stream is one hot data stream used to seed the table; see New.
type Stream struct {
	Refs []ref.Ref
	Heat uint64
}

// Config sizes the table and shapes issue behavior.
type Config struct {
	// Entries is the stream-table size (default 16). Lookup is a linear
	// scan — the hardware structure is a small CAM — so comparisons
	// reported by Observe grow with occupancy.
	Entries int
	// PageBits is log2 of the page size bounding each stream (default 12:
	// 4 KiB). Prefetches never cross a page boundary.
	PageBits uint
	// BlockBits is log2 of the prefetch block (default 5: 32 B, matching
	// internal/memsim's line size).
	BlockBits uint
	// Degree is the number of consecutive blocks issued per confident hit
	// (default 2).
	Degree int
	// MaxConf is the confidence ceiling (default 3).
	MaxConf int8
	// Threshold is the confidence needed before prefetches issue
	// (default 2).
	Threshold int8
}

func (c Config) withDefaults() Config {
	if c.Entries == 0 {
		c.Entries = 16
	}
	if c.PageBits == 0 {
		c.PageBits = 12
	}
	if c.BlockBits == 0 {
		c.BlockBits = 5
	}
	if c.Degree == 0 {
		c.Degree = 2
	}
	if c.MaxConf == 0 {
		c.MaxConf = 3
	}
	if c.Threshold == 0 {
		c.Threshold = 2
	}
	return c
}

func (c Config) validate() error {
	if c.Entries < 1 {
		return fmt.Errorf("stride: table needs >= 1 entry, got %d", c.Entries)
	}
	if c.BlockBits >= c.PageBits {
		return fmt.Errorf("stride: block bits %d must be < page bits %d", c.BlockBits, c.PageBits)
	}
	if c.PageBits > 32 {
		return fmt.Errorf("stride: page bits %d too large", c.PageBits)
	}
	if c.Degree < 1 {
		return fmt.Errorf("stride: degree must be >= 1, got %d", c.Degree)
	}
	if c.Threshold < 1 || c.MaxConf < c.Threshold {
		return fmt.Errorf("stride: need 1 <= threshold (%d) <= max confidence (%d)",
			c.Threshold, c.MaxConf)
	}
	return nil
}

// entry is one tracked stream: a page, the last block index touched within
// it, the detected direction (+1/-1, 0 while unknown), and a saturating
// confidence counter. lru is a global access tick for replacement.
type entry struct {
	valid     bool
	dir       int8
	conf      int8
	lastBlock int32
	page      uint64
	lru       uint64
}

// Predictor is a stride predictor. It is not safe for concurrent use; wrap
// it (see the root package's ConcurrentMatcher) to share it.
type Predictor struct {
	cfg     Config
	table   []entry
	tick    uint64
	trained bool
	buf     []uint64

	// seeds retains the training streams so Reset can restore the exact
	// post-New table state.
	seeds []Stream
}

// New builds a predictor and seeds its table by replaying the hot streams'
// references (in the given order, so callers control which streams win table
// slots when they exceed capacity). An empty (or nil) stream set yields a
// pass-through predictor that never prefetches and costs one comparison per
// observation — matching the other predictors' deoptimized behavior rather
// than free-running stride detection, so swapping in an empty set disables
// prefetching across every predictor uniformly.
func New(streams []Stream, cfg Config) (*Predictor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &Predictor{
		cfg:   cfg,
		table: make([]entry, cfg.Entries),
		buf:   make([]uint64, 0, cfg.Degree),
	}
	if len(streams) == 0 {
		return p, nil
	}
	p.trained = true
	p.seeds = streams
	p.seed()
	return p, nil
}

func (p *Predictor) seed() {
	for _, s := range p.seeds {
		for _, r := range s.Refs {
			p.update(r.Addr)
		}
	}
}

// Observe consumes one data reference and returns the addresses to prefetch
// plus the number of table-entry comparisons the lookup performed (>= 1).
// The returned slice is the predictor's reused buffer: valid only until the
// next Observe.
func (p *Predictor) Observe(r ref.Ref) (prefetch []uint64, comparisons int) {
	if !p.trained {
		return nil, 1
	}
	e, cmp := p.update(r.Addr)
	if e == nil || e.dir == 0 || e.conf < p.cfg.Threshold {
		return nil, cmp
	}
	// Issue Degree blocks ahead in the stream direction, stopping at the
	// page boundary.
	blocksPerPage := int32(1) << (p.cfg.PageBits - p.cfg.BlockBits)
	p.buf = p.buf[:0]
	for i := int32(1); i <= int32(p.cfg.Degree); i++ {
		nb := e.lastBlock + int32(e.dir)*i
		if nb < 0 || nb >= blocksPerPage {
			break
		}
		p.buf = append(p.buf, e.page<<p.cfg.PageBits|uint64(nb)<<p.cfg.BlockBits)
	}
	if len(p.buf) == 0 {
		return nil, cmp
	}
	return p.buf, cmp
}

// update runs the table state machine for one address: find the page's
// entry (linear scan; comparisons = probes), train direction/confidence on
// a hit, allocate the LRU victim on a miss. Returns the entry when the
// access hit an existing stream, nil on a miss.
func (p *Predictor) update(addr uint64) (*entry, int) {
	page := addr >> p.cfg.PageBits
	block := int32(addr>>p.cfg.BlockBits) & (int32(1)<<(p.cfg.PageBits-p.cfg.BlockBits) - 1)
	p.tick++

	cmp := 0
	victim := -1
	for i := range p.table {
		e := &p.table[i]
		if !e.valid {
			// The table fills front to back and entries are never
			// invalidated, so nothing valid lives past the first free
			// slot: probing stops here, and the free slot is the victim.
			victim = i
			break
		}
		cmp++
		if e.page == page {
			d := int8(0)
			switch {
			case block > e.lastBlock:
				d = 1
			case block < e.lastBlock:
				d = -1
			}
			if d != 0 {
				if d == e.dir {
					if e.conf < p.cfg.MaxConf {
						e.conf++
					}
				} else {
					// Direction break: decay confidence, and flip the
					// stream once the old direction's credit is gone.
					e.conf--
					if e.conf <= 0 {
						e.dir = d
						e.conf = 1
					}
				}
			}
			e.lastBlock = block
			e.lru = p.tick
			return e, cmp
		}
		if victim == -1 || e.lru < p.table[victim].lru {
			victim = i
		}
	}
	if cmp == 0 {
		cmp = 1 // an empty table still costs one (failed) probe
	}
	v := &p.table[victim]
	*v = entry{valid: true, page: page, lastBlock: block, lru: p.tick}
	return nil, cmp
}

// Reset restores the exact post-New state: the table is cleared and
// re-seeded from the training streams.
func (p *Predictor) Reset() {
	for i := range p.table {
		p.table[i] = entry{}
	}
	p.tick = 0
	if p.trained {
		p.seed()
	}
}

// Trained reports whether the predictor was seeded with a non-empty stream
// set (an unseeded predictor is pass-through; see New).
func (p *Predictor) Trained() bool { return p.trained }

// Live returns the number of valid table entries, for stats surfaces.
func (p *Predictor) Live() int {
	n := 0
	for i := range p.table {
		if p.table[i].valid {
			n++
		}
	}
	return n
}
