package ref

import (
	"testing"
	"testing/quick"
)

func TestInternRoundTrip(t *testing.T) {
	in := NewInterner()
	a := Ref{PC: 1, Addr: 0x100}
	b := Ref{PC: 2, Addr: 0x200}
	sa := in.Intern(a)
	sb := in.Intern(b)
	if sa == sb {
		t.Fatal("distinct refs must get distinct symbols")
	}
	if in.Intern(a) != sa {
		t.Error("re-interning must return the same symbol")
	}
	if in.Ref(sa) != a || in.Ref(sb) != b {
		t.Error("Ref must invert Intern")
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
}

func TestLookup(t *testing.T) {
	in := NewInterner()
	r := Ref{PC: 3, Addr: 0x300}
	if _, ok := in.Lookup(r); ok {
		t.Error("Lookup of un-interned ref must fail")
	}
	s := in.Intern(r)
	got, ok := in.Lookup(r)
	if !ok || got != s {
		t.Error("Lookup must find interned ref")
	}
}

func TestZeroValueInterner(t *testing.T) {
	var in Interner
	s := in.Intern(Ref{PC: 1, Addr: 2})
	if in.Ref(s) != (Ref{PC: 1, Addr: 2}) {
		t.Error("zero-value interner must be usable")
	}
}

func TestReset(t *testing.T) {
	in := NewInterner()
	in.Intern(Ref{PC: 1, Addr: 1})
	in.Reset()
	if in.Len() != 0 {
		t.Error("Reset must clear")
	}
	s := in.Intern(Ref{PC: 2, Addr: 2})
	if s != 0 {
		t.Errorf("first symbol after reset = %d, want 0", s)
	}
}

func TestRefString(t *testing.T) {
	r := Ref{PC: 5, Addr: 0xff}
	if r.String() != "5:0xff" {
		t.Errorf("String = %q", r.String())
	}
}

func TestStreamLen(t *testing.T) {
	s := Stream{Refs: []Ref{{1, 1}, {2, 2}}, Heat: 4}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

// Property: symbols are dense, stable, and invertible.
func TestPropertyInternerBijective(t *testing.T) {
	f := func(pcs []uint16, addrs []uint16) bool {
		n := len(pcs)
		if len(addrs) < n {
			n = len(addrs)
		}
		in := NewInterner()
		seen := map[Ref]Symbol{}
		for i := 0; i < n; i++ {
			r := Ref{PC: int(pcs[i]), Addr: uint64(addrs[i])}
			s := in.Intern(r)
			if prev, ok := seen[r]; ok {
				if prev != s {
					return false
				}
			} else {
				if int(s) != len(seen) { // dense allocation
					return false
				}
				seen[r] = s
			}
			if in.Ref(s) != r {
				return false
			}
		}
		return in.Len() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
