// Package ref defines the data-reference representation shared by the
// profiling, analysis, and prefetching layers.
//
// Following the paper (§2.1), a data reference r is a load or store of a
// particular address, represented as the pair (r.pc, r.addr). The profiling
// layer interns references into dense symbol identifiers so that the Sequitur
// grammar (which operates on integer terminals) and the hot-data-stream
// analysis can work with compact values and map results back to concrete
// references.
package ref

import "fmt"

// Ref is a single data reference: a load or store of address Addr executed by
// the static instruction identified by PC. PC values are the stable
// instruction identities assigned by the machine package; they survive
// procedure cloning by dynamic instrumentation.
type Ref struct {
	PC   int
	Addr uint64
}

// String renders the reference in the paper's "pc:addr" style.
func (r Ref) String() string {
	return fmt.Sprintf("%d:0x%x", r.PC, r.Addr)
}

// Symbol is a dense identifier for an interned Ref. Symbols are the terminal
// alphabet of the Sequitur grammar.
type Symbol uint32

// Interner assigns dense Symbol identifiers to references and maps them back.
// The zero value is ready to use.
//
// Interning sits on the profiling hot path — one lookup per sampled data
// reference — so instead of a Go map with a composite struct key, the
// interner probes a flat open-addressed table (linear probing, power-of-two
// capacity). Entries store sym+1 so the zero value marks an empty slot;
// nothing is ever deleted, so no tombstone handling is needed.
type Interner struct {
	entries []internEntry
	refs    []Ref
}

type internEntry struct {
	r    Ref
	sym1 uint32 // Symbol+1; 0 = empty slot
}

// hashRef mixes a reference's pc and address (splitmix64-style finalizer).
func hashRef(r Ref) uint64 {
	h := uint64(r.PC)*0x9E3779B97F4A7C15 + r.Addr
	h ^= h >> 32
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 32
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 32
	return h
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{}
}

// Intern returns the symbol for r, allocating a new one on first sight.
func (in *Interner) Intern(r Ref) Symbol {
	if 4*(len(in.refs)+1) >= 3*len(in.entries) { // grow at 75% load
		in.grow()
	}
	mask := uint64(len(in.entries) - 1)
	for i := hashRef(r) & mask; ; i = (i + 1) & mask {
		e := &in.entries[i]
		if e.sym1 == 0 {
			s := Symbol(len(in.refs))
			*e = internEntry{r: r, sym1: uint32(s) + 1}
			in.refs = append(in.refs, r)
			return s
		}
		if e.r == r {
			return Symbol(e.sym1 - 1)
		}
	}
}

// Lookup returns the symbol for r and whether it has been interned.
func (in *Interner) Lookup(r Ref) (Symbol, bool) {
	if len(in.entries) == 0 {
		return 0, false
	}
	mask := uint64(len(in.entries) - 1)
	for i := hashRef(r) & mask; ; i = (i + 1) & mask {
		e := &in.entries[i]
		if e.sym1 == 0 {
			return 0, false
		}
		if e.r == r {
			return Symbol(e.sym1 - 1), true
		}
	}
}

func (in *Interner) grow() {
	newCap := 64
	if len(in.entries) > 0 {
		newCap = 2 * len(in.entries)
	}
	old := in.entries
	in.entries = make([]internEntry, newCap)
	mask := uint64(newCap - 1)
	for _, e := range old {
		if e.sym1 == 0 {
			continue
		}
		for i := hashRef(e.r) & mask; ; i = (i + 1) & mask {
			if in.entries[i].sym1 == 0 {
				in.entries[i] = e
				break
			}
		}
	}
}

// Ref returns the reference for a previously interned symbol.
// It panics if s was never returned by Intern.
func (in *Interner) Ref(s Symbol) Ref {
	return in.refs[s]
}

// Len reports the number of distinct references interned so far.
func (in *Interner) Len() int { return len(in.refs) }

// Reset discards all interned references, recycling the storage.
func (in *Interner) Reset() {
	clear(in.entries)
	in.refs = in.refs[:0]
}

// Stream is a hot data stream: a sequence of references that frequently
// repeats in the same order, together with its regularity magnitude
// (heat = length × frequency, §2.3).
type Stream struct {
	Refs []Ref
	Heat uint64
}

// Len returns the number of references in the stream.
func (s Stream) Len() int { return len(s.Refs) }
