// Package ref defines the data-reference representation shared by the
// profiling, analysis, and prefetching layers.
//
// Following the paper (§2.1), a data reference r is a load or store of a
// particular address, represented as the pair (r.pc, r.addr). The profiling
// layer interns references into dense symbol identifiers so that the Sequitur
// grammar (which operates on integer terminals) and the hot-data-stream
// analysis can work with compact values and map results back to concrete
// references.
package ref

import "fmt"

// Ref is a single data reference: a load or store of address Addr executed by
// the static instruction identified by PC. PC values are the stable
// instruction identities assigned by the machine package; they survive
// procedure cloning by dynamic instrumentation.
type Ref struct {
	PC   int
	Addr uint64
}

// String renders the reference in the paper's "pc:addr" style.
func (r Ref) String() string {
	return fmt.Sprintf("%d:0x%x", r.PC, r.Addr)
}

// Symbol is a dense identifier for an interned Ref. Symbols are the terminal
// alphabet of the Sequitur grammar.
type Symbol uint32

// Interner assigns dense Symbol identifiers to references and maps them back.
// The zero value is ready to use.
type Interner struct {
	ids  map[Ref]Symbol
	refs []Ref
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[Ref]Symbol)}
}

// Intern returns the symbol for r, allocating a new one on first sight.
func (in *Interner) Intern(r Ref) Symbol {
	if in.ids == nil {
		in.ids = make(map[Ref]Symbol)
	}
	if s, ok := in.ids[r]; ok {
		return s
	}
	s := Symbol(len(in.refs))
	in.ids[r] = s
	in.refs = append(in.refs, r)
	return s
}

// Lookup returns the symbol for r and whether it has been interned.
func (in *Interner) Lookup(r Ref) (Symbol, bool) {
	s, ok := in.ids[r]
	return s, ok
}

// Ref returns the reference for a previously interned symbol.
// It panics if s was never returned by Intern.
func (in *Interner) Ref(s Symbol) Ref {
	return in.refs[s]
}

// Len reports the number of distinct references interned so far.
func (in *Interner) Len() int { return len(in.refs) }

// Reset discards all interned references, recycling the storage.
func (in *Interner) Reset() {
	clear(in.ids)
	in.refs = in.refs[:0]
}

// Stream is a hot data stream: a sequence of references that frequently
// repeats in the same order, together with its regularity magnitude
// (heat = length × frequency, §2.3).
type Stream struct {
	Refs []Ref
	Heat uint64
}

// Len returns the number of references in the stream.
func (s Stream) Len() int { return len(s.Refs) }
