package vulcan

import (
	"testing"
	"testing/quick"

	"hotprefetch/internal/machine"
	"hotprefetch/internal/memsim"
)

func cacheCfg() memsim.Config {
	return memsim.Config{
		BlockSize: 32, L1Size: 256, L1Assoc: 2, L2Size: 512, L2Assoc: 2,
		L2HitLatency: 10, MemLatency: 100,
	}
}

// loopProgram builds a program with a counted loop over two loads, the shape
// the instrumentation passes must handle: an entry, a loop head, and a
// back-edge.
func loopProgram(t testing.TB, iters int64) *machine.Program {
	b := machine.NewBuilder()
	b.Proc("main").
		Const(1, iters).
		Const(2, 0x100).
		Label("head").
		Load(3, 2, 0).
		Load(4, 2, 8).
		Arith(2).
		Loop(1, "head").
		Ret()
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// alwaysRT drives execution into a fixed version and records events.
type alwaysRT struct {
	version machine.Version
	checks  int
	traced  int
	matched []int
}

func (r *alwaysRT) Check(pc int) (machine.Version, uint64) {
	r.checks++
	return r.version, 0
}
func (r *alwaysRT) TraceRef(pc int, addr machine.Word, isWrite bool) uint64 {
	r.traced++
	return 0
}
func (r *alwaysRT) Match(pc int, addr machine.Word) ([]machine.Word, uint64) {
	r.matched = append(r.matched, pc)
	return nil, 0
}

func TestInstrumentInsertsEntryAndLoopChecks(t *testing.T) {
	p := loopProgram(t, 5)
	Instrument(p)
	body := p.Procs[0].Body[machine.VersionChecking]
	if body[0].Op != machine.OpCheck {
		t.Error("first instruction must be the entry check")
	}
	checks := 0
	for _, in := range body {
		if in.Op == machine.OpCheck {
			checks++
		}
	}
	if checks != 2 {
		t.Errorf("checks = %d, want 2 (entry + loop head)", checks)
	}
	// Both versions must stay index-aligned with identical opcodes.
	instr := p.Procs[0].Body[machine.VersionInstrumented]
	if len(instr) != len(body) {
		t.Fatal("versions not index-aligned")
	}
	for i := range body {
		if body[i].Op != instr[i].Op || body[i].PC != instr[i].PC {
			t.Fatalf("version mismatch at %d: %v vs %v", i, body[i], instr[i])
		}
		if body[i].IsMemRef() && (body[i].Traced || !instr[i].Traced) {
			t.Fatalf("Traced flags wrong at %d", i)
		}
	}
}

func TestInstrumentedSemanticsUnchanged(t *testing.T) {
	plain := loopProgram(t, 10)
	mPlain := machine.New(plain, 1<<12, cacheCfg())
	if err := mPlain.RunToCompletion(); err != nil {
		t.Fatal(err)
	}

	inst := loopProgram(t, 10)
	Instrument(inst)
	for _, v := range []machine.Version{machine.VersionChecking, machine.VersionInstrumented} {
		m := machine.New(inst, 1<<12, cacheCfg())
		m.RT = &alwaysRT{version: v}
		if err := m.RunToCompletion(); err != nil {
			t.Fatal(err)
		}
		if m.Regs != mPlain.Regs {
			t.Errorf("version %d changed program results", v)
		}
		if m.Stats.Refs != mPlain.Stats.Refs {
			t.Errorf("version %d: refs = %d, want %d", v, m.Stats.Refs, mPlain.Stats.Refs)
		}
	}
}

func TestLoopBackEdgeExecutesCheck(t *testing.T) {
	p := loopProgram(t, 7)
	Instrument(p)
	m := machine.New(p, 1<<12, cacheCfg())
	rt := &alwaysRT{version: machine.VersionChecking}
	m.RT = rt
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	// Entry check once + loop-head check once per iteration.
	if rt.checks != 1+7 {
		t.Errorf("checks = %d, want 8", rt.checks)
	}
}

func TestTracingOnlyInInstrumentedVersion(t *testing.T) {
	p := loopProgram(t, 4)
	Instrument(p)
	rtC := &alwaysRT{version: machine.VersionChecking}
	m := machine.New(p, 1<<12, cacheCfg())
	m.RT = rtC
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if rtC.traced != 0 {
		t.Errorf("checking version traced %d refs", rtC.traced)
	}
	rtI := &alwaysRT{version: machine.VersionInstrumented}
	m2 := machine.New(p, 1<<12, cacheCfg())
	m2.RT = rtI
	if err := m2.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if rtI.traced != 8 { // 2 loads x 4 iterations
		t.Errorf("instrumented version traced %d refs, want 8", rtI.traced)
	}
}

func TestInjectAndDeoptimize(t *testing.T) {
	p := loopProgram(t, 6)
	Instrument(p)

	// Find the stable PCs of the two loads.
	var loadPCs []int
	for _, in := range p.Procs[0].Body[machine.VersionChecking] {
		if in.Op == machine.OpLoad {
			loadPCs = append(loadPCs, int(in.PC))
		}
	}
	if len(loadPCs) != 2 {
		t.Fatal("setup: expected 2 loads")
	}

	res := Inject(p, map[int]bool{loadPCs[0]: true})
	if res.ProcsModified() != 1 || res.ChecksInserted != 1 {
		t.Fatalf("result = %+v, want 1 proc modified, 1 check", res)
	}
	if p.Procs[0].Redirect != res.Clones[0] {
		t.Error("original entry must jump to the clone")
	}
	if got := InjectedPCs(p, res); len(got) != 1 || got[0] != loadPCs[0] {
		t.Errorf("InjectedPCs = %v, want [%d]", got, loadPCs[0])
	}

	// Execution runs the clone: OpMatch fires once per iteration for the
	// first load only, and program semantics are unchanged.
	rt := &alwaysRT{version: machine.VersionChecking}
	m := machine.New(p, 1<<12, cacheCfg())
	m.RT = rt
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if len(rt.matched) != 6 {
		t.Errorf("matches = %d, want 6 (one per iteration)", len(rt.matched))
	}
	for _, pc := range rt.matched {
		if pc != loadPCs[0] {
			t.Errorf("match pc = %d, want %d", pc, loadPCs[0])
		}
	}

	// Deoptimize: no more matches, original runs again.
	Deoptimize(p, res)
	if p.Procs[0].Redirect != machine.NoRedirect {
		t.Error("deoptimize must remove the entry jump")
	}
	rt2 := &alwaysRT{version: machine.VersionChecking}
	m2 := machine.New(p, 1<<12, cacheCfg())
	m2.RT = rt2
	if err := m2.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if len(rt2.matched) != 0 {
		t.Errorf("matches after deopt = %d, want 0", len(rt2.matched))
	}
}

func TestInjectSkipsUntargetedProcs(t *testing.T) {
	b := machine.NewBuilder()
	b.Proc("main").
		Const(1, 0x100).
		Load(2, 1, 0).
		Call("other").
		Ret()
	b.Proc("other").
		Const(3, 0x200).
		Load(4, 3, 0).
		Ret()
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	Instrument(p)
	var mainLoadPC int
	for _, in := range p.Procs[0].Body[0] {
		if in.Op == machine.OpLoad {
			mainLoadPC = int(in.PC)
		}
	}
	res := Inject(p, map[int]bool{mainLoadPC: true})
	if res.ProcsModified() != 1 {
		t.Fatalf("procs modified = %d, want 1", res.ProcsModified())
	}
	if p.Procs[1].Redirect != machine.NoRedirect {
		t.Error("untargeted procedure must not be patched")
	}
}

func TestInjectIsRepeatableAcrossCycles(t *testing.T) {
	p := loopProgram(t, 3)
	Instrument(p)
	var loadPC int
	for _, in := range p.Procs[0].Body[0] {
		if in.Op == machine.OpLoad {
			loadPC = int(in.PC)
			break
		}
	}
	for cycle := 0; cycle < 3; cycle++ {
		res := Inject(p, map[int]bool{loadPC: true})
		if res.ProcsModified() != 1 {
			t.Fatalf("cycle %d: procs modified = %d", cycle, res.ProcsModified())
		}
		Deoptimize(p, res)
	}
	// Three cycles leave three clones registered but none active.
	clones := 0
	for _, proc := range p.Procs {
		if proc.CloneOf != machine.NoRedirect {
			clones++
		}
		if proc.Redirect != machine.NoRedirect {
			t.Error("no procedure should remain patched")
		}
	}
	if clones != 3 {
		t.Errorf("clones = %d, want 3", clones)
	}
}

func TestInjectDoesNotDoublePatch(t *testing.T) {
	p := loopProgram(t, 3)
	Instrument(p)
	var loadPC int
	for _, in := range p.Procs[0].Body[0] {
		if in.Op == machine.OpLoad {
			loadPC = int(in.PC)
			break
		}
	}
	res1 := Inject(p, map[int]bool{loadPC: true})
	res2 := Inject(p, map[int]bool{loadPC: true}) // without deopt in between
	if res2.ProcsModified() != 0 {
		t.Error("a patched procedure must not be patched again")
	}
	Deoptimize(p, res1)
}

// Property: for random loop programs, instrumenting and injecting preserves
// execution semantics (registers and data reference counts) in both
// versions.
func TestPropertySemanticPreservation(t *testing.T) {
	f := func(iters8 uint8, off8 uint8) bool {
		iters := int64(iters8%20) + 1
		off := int64(off8%8) * 8

		build := func() *machine.Program {
			b := machine.NewBuilder()
			b.Proc("main").
				Const(1, iters).
				Const(2, 0x100).
				Label("head").
				Load(3, 2, off).
				Store(2, off+8, 3).
				AddImm(2, 2, 16).
				Loop(1, "head").
				Call("leaf").
				Ret()
			b.Proc("leaf").
				Const(5, 0x40).
				Load(6, 5, 0).
				Ret()
			p, err := b.Build("main")
			if err != nil {
				return nil
			}
			return p
		}

		plain := build()
		if plain == nil {
			return false
		}
		mp := machine.New(plain, 1<<12, cacheCfg())
		if err := mp.RunToCompletion(); err != nil {
			return false
		}

		opt := build()
		Instrument(opt)
		pcs := map[int]bool{}
		for _, proc := range opt.Procs {
			for _, in := range proc.Body[0] {
				if in.IsMemRef() {
					pcs[int(in.PC)] = true
				}
			}
		}
		Inject(opt, pcs)
		for _, v := range []machine.Version{machine.VersionChecking, machine.VersionInstrumented} {
			m := machine.New(opt, 1<<12, cacheCfg())
			m.RT = &alwaysRT{version: v}
			if err := m.RunToCompletion(); err != nil {
				return false
			}
			if m.Regs != mp.Regs || m.Stats.Refs != mp.Stats.Refs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInject(b *testing.B) {
	p := loopProgram(b, 3)
	Instrument(p)
	pcs := map[int]bool{}
	for _, in := range p.Procs[0].Body[0] {
		if in.IsMemRef() {
			pcs[int(in.PC)] = true
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Inject(p, pcs)
		Deoptimize(p, res)
		// Trim accumulated clones so the benchmark stays bounded.
		p.Procs = p.Procs[:1]
	}
}
