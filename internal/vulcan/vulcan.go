// Package vulcan performs the binary-editing operations the paper delegates
// to Vulcan (references [31, 32]): the static pass that prepares a program
// for bursty tracing, and the dynamic pass that injects detection and
// prefetching code into a running program and later removes it.
//
// Substitution note (see DESIGN.md §2): Vulcan rewrites x86 binaries; this
// package performs the same transformations on the virtual-ISA programs of
// the machine package.
//
// Static instrumentation (paper Figure 2): every procedure's code is
// duplicated. Both versions contain the original instructions plus checks at
// procedure entries and loop back-edge targets, but only the instrumented
// version profiles data references (memory ops carry the Traced flag). The
// checks transfer control between versions via the bursty tracing counters.
//
// Dynamic injection (paper Figure 10, §3.2): for every procedure containing
// a pc at which the optimizer wants detection code, the procedure is copied,
// the code is injected into the copy, and the original's first instruction
// is overwritten with an unconditional jump to the copy. De-optimization
// removes only those jumps; return addresses already on the stack keep
// executing original code, which is safe but may miss a few prefetching
// opportunities.
package vulcan

import (
	"sort"

	"hotprefetch/internal/machine"
)

// Instrument applies the static bursty-tracing pass to prog, in place: each
// procedure gains a check at its entry and at every backward-branch target,
// and its body is duplicated into checking and instrumented versions. It
// must be called once, before execution; the original (pre-instrumentation)
// program should be timed separately to obtain the unoptimized baseline.
func Instrument(prog *machine.Program) {
	for _, proc := range prog.Procs {
		orig := proc.Body[machine.VersionChecking]

		// Insertion points: entry plus every backward-branch target that is
		// not already a check.
		before := map[int]bool{}
		if len(orig) > 0 && orig[0].Op != machine.OpCheck {
			before[0] = true
		}
		for i, in := range orig {
			if isBranchOp(in.Op) && int(in.Imm) <= i {
				t := int(in.Imm)
				if orig[t].Op != machine.OpCheck {
					before[t] = true
				}
			}
		}

		checking := insertInstrs(orig, before, nil, func() machine.Instr {
			return machine.Instr{Op: machine.OpCheck, PC: prog.AllocPC()}
		}, nil)

		instrumented := make([]machine.Instr, len(checking))
		copy(instrumented, checking)
		for i := range instrumented {
			if instrumented[i].IsMemRef() {
				instrumented[i].Traced = true
			}
		}
		proc.Body[machine.VersionChecking] = checking
		proc.Body[machine.VersionInstrumented] = instrumented
	}
}

// InjectResult records what a dynamic injection changed, so it can be
// undone and reported (paper Table 2's "# of procs. modified").
type InjectResult struct {
	Patched        []int // indices of original procedures whose entry was patched
	Clones         []int // indices of the clones they jump to
	ChecksInserted int   // OpMatch instructions inserted across all clones
}

// ProcsModified returns the number of procedures modified by the injection.
func (r InjectResult) ProcsModified() int { return len(r.Patched) }

// Inject performs the dynamic optimization step: for every original
// procedure containing one of the target pcs, it builds a clone with an
// OpMatch check inserted after each targeted memory instruction, registers
// the clone, and patches the original's entry to jump to it. The pcs are
// the stable instruction identities of the hot data streams' head
// references.
func Inject(prog *machine.Program, pcs map[int]bool) InjectResult {
	var res InjectResult
	nOrig := len(prog.Procs) // clones appended during the loop are skipped
	for pi := 0; pi < nOrig; pi++ {
		proc := prog.Procs[pi]
		if proc.CloneOf != machine.NoRedirect || proc.Redirect != machine.NoRedirect {
			continue // only unpatched originals are cloned
		}
		checking := proc.Body[machine.VersionChecking]
		after := map[int]bool{}
		for i, in := range checking {
			if in.IsMemRef() && in.PC != machine.InjectedPC && pcs[int(in.PC)] {
				after[i] = true
			}
		}
		if len(after) == 0 {
			continue
		}

		clone := &machine.Proc{
			Name:     proc.Name + "#opt",
			Redirect: machine.NoRedirect,
			CloneOf:  pi,
		}
		matchFor := func(orig machine.Instr) machine.Instr {
			return machine.Instr{
				Op:  machine.OpMatch,
				PC:  machine.InjectedPC,
				Imm: int64(orig.PC),
			}
		}
		clone.Body[machine.VersionChecking] =
			insertInstrs(checking, nil, after, nil, matchFor)
		clone.Body[machine.VersionInstrumented] =
			insertInstrs(proc.Body[machine.VersionInstrumented], nil, after, nil, matchFor)

		ci := prog.AddProc(clone)
		proc.Redirect = ci
		res.Patched = append(res.Patched, pi)
		res.Clones = append(res.Clones, ci)
		res.ChecksInserted += len(after)
	}
	return res
}

// Deoptimize removes the entry jumps installed by Inject. The clones remain
// registered (frames may still return into them), but fresh calls execute
// the original code again.
func Deoptimize(prog *machine.Program, res InjectResult) {
	for _, pi := range res.Patched {
		prog.Procs[pi].Redirect = machine.NoRedirect
	}
}

func isBranchOp(op machine.Opcode) bool {
	switch op {
	case machine.OpLoop, machine.OpJump, machine.OpBeqz, machine.OpBnez:
		return true
	}
	return false
}

// insertInstrs returns a copy of body with new instructions inserted before
// the indices in `before` (built by mkBefore) and after the indices in
// `after` (built from the original instruction by mkAfter). Intra-procedure
// branch targets are remapped; a branch to an index with an inserted
// "before" instruction lands on that instruction, so loop back-edges execute
// the inserted check.
func insertInstrs(
	body []machine.Instr,
	before, after map[int]bool,
	mkBefore func() machine.Instr,
	mkAfter func(machine.Instr) machine.Instr,
) []machine.Instr {
	out := make([]machine.Instr, 0, len(body)+len(before)+len(after))
	// branchTarget[i] is where a branch to old index i should now land.
	branchTarget := make([]int, len(body))
	for i, in := range body {
		if before[i] {
			branchTarget[i] = len(out)
			out = append(out, mkBefore())
		} else {
			branchTarget[i] = len(out)
		}
		out = append(out, in)
		if after[i] {
			out = append(out, mkAfter(in))
		}
	}
	for i := range out {
		if isBranchOp(out[i].Op) {
			out[i].Imm = int64(branchTarget[out[i].Imm])
		}
	}
	return out
}

// InjectedPCs returns the sorted target pcs present in a result's clones —
// a debugging helper for tools.
func InjectedPCs(prog *machine.Program, res InjectResult) []int {
	set := map[int]bool{}
	for _, ci := range res.Clones {
		for _, in := range prog.Procs[ci].Body[machine.VersionChecking] {
			if in.Op == machine.OpMatch {
				set[int(in.Imm)] = true
			}
		}
	}
	pcs := make([]int, 0, len(set))
	for pc := range set {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	return pcs
}
