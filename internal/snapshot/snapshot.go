// Package snapshot serializes a profile's durable state — the banked hot
// data streams a grammar-budget cycle history has accumulated, plus the
// supervisor's accuracy baseline — so a profiling service can checkpoint a
// tenant to disk and warm-start from it after a restart instead of
// relearning from zero (the PGO "feed the profile back into the next run"
// loop, applied at runtime).
//
// The format extends internal/tracefile's fuzz-hardened framing idiom: an
// 8-byte header ("HDSSNP" + format version + flags), a varint section count,
// then length-prefixed sections each carrying a section id, a payload, and a
// CRC32C (Castagnoli) of that payload. Unknown section ids are skipped
// forward-compatibly (their length is known and their checksum still
// verified); missing required sections, duplicate sections, trailing bytes,
// and implausible counts are corruption. Every load-path failure maps to one
// of the typed sentinel errors below, so callers can prove (and count) that
// a stale, truncated, or bit-flipped snapshot degrades to cold profiling
// instead of crashing or misleading the prefetcher.
//
// All counts are attacker-controlled: decoding never allocates more than a
// bounded chunk ahead of the bytes actually read, mirroring tracefile.Read.
package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"hotprefetch/internal/ref"
)

// Format identity. The version byte participates in the header check:
// decoding a snapshot written by a future format version fails with
// ErrVersion, never a misparse.
const (
	formatVersion = 1
	headerLen     = 8
)

var magicPrefix = [6]byte{'H', 'D', 'S', 'S', 'N', 'P'}

// Section ids. New sections get fresh ids; old readers skip them.
const (
	sectionMeta     = 1 // generation counter + creation timestamp
	sectionStreams  = 2 // banked hot streams with heats
	sectionBaseline = 3 // supervisor accuracy baseline
)

// Decode bounds. A 20-byte file can claim 2^60 streams; nothing is
// pre-allocated from a declared count beyond these caps, and counts above
// them are rejected as corrupt outright.
const (
	maxSections    = 64
	maxSectionLen  = 1 << 26 // 64 MiB per section payload
	maxStreams     = 1 << 20
	maxStreamRefs  = 1 << 16
	allocChunkRefs = 1 << 12 // decode-side growth granularity
)

// Typed load-path failures. Every error Read and ReadInfo return wraps
// exactly one of these, so callers can classify without string matching.
var (
	// ErrBadMagic: the header does not start with the snapshot magic.
	ErrBadMagic = errors.New("snapshot: bad magic")

	// ErrVersion: the magic matched but the format version is not one this
	// reader understands (version skew).
	ErrVersion = errors.New("snapshot: unsupported format version")

	// ErrChecksum: a section's payload did not match its CRC32C.
	ErrChecksum = errors.New("snapshot: section checksum mismatch")

	// ErrTruncated: the stream ended before the structure the header and
	// section framing promised.
	ErrTruncated = errors.New("snapshot: truncated")

	// ErrCorrupt: structurally impossible content — counts beyond the
	// format's bounds, duplicate or missing required sections, zero-length
	// streams, trailing bytes after the last section.
	ErrCorrupt = errors.New("snapshot: corrupt")
)

// IsFormatError reports whether err is (or wraps) one of the snapshot
// format's typed load failures — the classification the service's
// snapshot_load_failures accounting keys on.
func IsFormatError(err error) bool {
	return errors.Is(err, ErrBadMagic) || errors.Is(err, ErrVersion) ||
		errors.Is(err, ErrChecksum) || errors.Is(err, ErrTruncated) ||
		errors.Is(err, ErrCorrupt)
}

// castagnoli is the CRC32C table (iSCSI polynomial), hardware-accelerated on
// amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Stream is one banked hot data stream: its reference word and its heat
// (length × frequency), exactly as the profile's BankedStreams reports it.
type Stream struct {
	Refs []ref.Ref
	Heat uint64
}

// Baseline is the supervisor accuracy baseline captured at snapshot time:
// the matcher's cumulative issued/hit prefetch counters. A warm-started
// supervisor surfaces it as the provisional accuracy until its first live
// window concludes. Valid distinguishes "no supervisor was attached" from
// an all-zero baseline.
type Baseline struct {
	Valid  bool
	Issued uint64
	Hits   uint64
}

// Accuracy returns the baseline's hits/issued ratio (0 when nothing was
// issued or the baseline is absent).
func (b Baseline) Accuracy() float64 {
	if !b.Valid || b.Issued == 0 {
		return 0
	}
	return float64(b.Hits) / float64(b.Issued)
}

// Profile is a decoded snapshot: the durable state one profile carries
// across a restart.
type Profile struct {
	// Generation is the monotonic checkpoint counter; a writer refuses to
	// overwrite a snapshot file whose header carries a generation at or
	// above the one it is about to write.
	Generation uint64

	// CreatedAt is the encoding wall time in Unix nanoseconds.
	CreatedAt int64

	// Streams are the banked hot streams, hottest first.
	Streams []Stream

	// Baseline is the supervisor accuracy baseline (zero when none was
	// attached at snapshot time).
	Baseline Baseline
}

// Info is the cheap header view ReadInfo decodes: enough to compare
// generations without materializing the stream payload.
type Info struct {
	Generation uint64
	CreatedAt  int64
}

// Write encodes p to w. It validates the same bounds Read enforces, so any
// profile Write accepts round-trips through Read.
func Write(w io.Writer, p *Profile) error {
	if len(p.Streams) > maxStreams {
		return fmt.Errorf("snapshot: encode: %d streams exceeds the format bound %d", len(p.Streams), maxStreams)
	}
	var payload bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(buf *bytes.Buffer, v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}
	putVarint := func(buf *bytes.Buffer, v int64) {
		n := binary.PutVarint(scratch[:], v)
		buf.Write(scratch[:n])
	}

	bw := bufio.NewWriter(w)
	header := [headerLen]byte{}
	copy(header[:], magicPrefix[:])
	header[6] = formatVersion
	header[7] = 0 // flags, reserved
	if _, err := bw.Write(header[:]); err != nil {
		return err
	}
	sections := 2 // meta + streams
	if p.Baseline.Valid {
		sections++
	}
	putUvarint(&payload, uint64(sections))
	if _, err := bw.Write(payload.Bytes()); err != nil {
		return err
	}

	writeSection := func(id uint64, body []byte) error {
		var head bytes.Buffer
		putUvarint(&head, id)
		putUvarint(&head, uint64(len(body)))
		if _, err := bw.Write(head.Bytes()); err != nil {
			return err
		}
		if _, err := bw.Write(body); err != nil {
			return err
		}
		// The checksum covers the section header as well as the payload, so a
		// bit flip in the id or length can never silently reframe or drop a
		// section — it fails as ErrChecksum like any payload flip.
		var crc [4]byte
		sum := crc32.Update(0, castagnoli, head.Bytes())
		sum = crc32.Update(sum, castagnoli, body)
		binary.LittleEndian.PutUint32(crc[:], sum)
		_, err := bw.Write(crc[:])
		return err
	}

	payload.Reset()
	putUvarint(&payload, p.Generation)
	putVarint(&payload, p.CreatedAt)
	if err := writeSection(sectionMeta, payload.Bytes()); err != nil {
		return err
	}

	payload.Reset()
	putUvarint(&payload, uint64(len(p.Streams)))
	for i, st := range p.Streams {
		if len(st.Refs) == 0 || len(st.Refs) > maxStreamRefs {
			return fmt.Errorf("snapshot: encode: stream %d has %d refs (format bound 1..%d)", i, len(st.Refs), maxStreamRefs)
		}
		putUvarint(&payload, uint64(len(st.Refs)))
		prevPC, prevAddr := int64(0), int64(0)
		for _, r := range st.Refs {
			putVarint(&payload, int64(r.PC)-prevPC)
			putVarint(&payload, int64(r.Addr)-prevAddr)
			prevPC, prevAddr = int64(r.PC), int64(r.Addr)
		}
		putUvarint(&payload, st.Heat)
	}
	if payload.Len() > maxSectionLen {
		return fmt.Errorf("snapshot: encode: streams section %d bytes exceeds the format bound %d", payload.Len(), maxSectionLen)
	}
	if err := writeSection(sectionStreams, payload.Bytes()); err != nil {
		return err
	}

	if p.Baseline.Valid {
		payload.Reset()
		payload.WriteByte(1) // validity flag
		putUvarint(&payload, p.Baseline.Issued)
		putUvarint(&payload, p.Baseline.Hits)
		if err := writeSection(sectionBaseline, payload.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// decoder carries one Read's state.
type decoder struct {
	br       *bufio.Reader
	sections int
}

// newDecoder validates the header and returns a decoder positioned at the
// first section.
func newDecoder(r io.Reader) (*decoder, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var head [headerLen]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrTruncated, err)
	}
	if !bytes.Equal(head[:6], magicPrefix[:]) {
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, head[:6])
	}
	if head[6] != formatVersion {
		return nil, fmt.Errorf("%w: got version %d, this reader understands %d", ErrVersion, head[6], formatVersion)
	}
	if head[7] != 0 {
		// Flags are reserved; a writer that sets one needs semantics this
		// reader does not have, which is version skew, not corruption.
		return nil, fmt.Errorf("%w: unsupported flags %#02x", ErrVersion, head[7])
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: section count: %v", ErrTruncated, err)
	}
	if count == 0 || count > maxSections {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrCorrupt, count)
	}
	return &decoder{br: br, sections: int(count)}, nil
}

// nextSection reads one section's id and checksum-verified payload. The
// payload buffer grows only as actual bytes arrive, regardless of the
// declared length.
func (d *decoder) nextSection() (id uint64, payload []byte, err error) {
	id, err = binary.ReadUvarint(d.br)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: section id: %v", ErrTruncated, err)
	}
	if id == 0 {
		return 0, nil, fmt.Errorf("%w: section id 0", ErrCorrupt)
	}
	length, err := binary.ReadUvarint(d.br)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: section %d length: %v", ErrTruncated, id, err)
	}
	if length > maxSectionLen {
		return 0, nil, fmt.Errorf("%w: section %d claims %d bytes (bound %d)", ErrCorrupt, id, length, maxSectionLen)
	}
	// Incremental read: the initial allocation is capped; a section claiming
	// 64 MiB but delivering 12 bytes costs 12 bytes plus one chunk.
	hint := length
	if hint > allocChunkRefs {
		hint = allocChunkRefs
	}
	payload = make([]byte, 0, hint)
	var chunk [4096]byte
	for uint64(len(payload)) < length {
		want := length - uint64(len(payload))
		if want > uint64(len(chunk)) {
			want = uint64(len(chunk))
		}
		n, rerr := io.ReadFull(d.br, chunk[:want])
		payload = append(payload, chunk[:n]...)
		if rerr != nil {
			return 0, nil, fmt.Errorf("%w: section %d body at byte %d/%d: %v", ErrTruncated, id, len(payload), length, rerr)
		}
	}
	var crcBytes [4]byte
	if _, err := io.ReadFull(d.br, crcBytes[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: section %d checksum: %v", ErrTruncated, id, err)
	}
	want := binary.LittleEndian.Uint32(crcBytes[:])
	// Recompute over the canonical header encoding plus the payload; see
	// writeSection for why the header participates.
	var head [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(head[:], id)
	n += binary.PutUvarint(head[n:], length)
	got := crc32.Update(0, castagnoli, head[:n])
	got = crc32.Update(got, castagnoli, payload)
	if got != want {
		return 0, nil, fmt.Errorf("%w: section %d: got %08x, header says %08x", ErrChecksum, id, got, want)
	}
	return id, payload, nil
}

// parseMeta decodes the meta section payload.
func parseMeta(payload []byte) (gen uint64, createdAt int64, err error) {
	buf := bytes.NewReader(payload)
	gen, err = binary.ReadUvarint(buf)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: meta generation: %v", ErrCorrupt, err)
	}
	createdAt, err = binary.ReadVarint(buf)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: meta created-at: %v", ErrCorrupt, err)
	}
	if buf.Len() != 0 {
		return 0, 0, fmt.Errorf("%w: %d trailing bytes in meta section", ErrCorrupt, buf.Len())
	}
	return gen, createdAt, nil
}

// parseStreams decodes the streams section payload.
func parseStreams(payload []byte) ([]Stream, error) {
	buf := bytes.NewReader(payload)
	count, err := binary.ReadUvarint(buf)
	if err != nil {
		return nil, fmt.Errorf("%w: stream count: %v", ErrCorrupt, err)
	}
	if count > maxStreams {
		return nil, fmt.Errorf("%w: implausible stream count %d (bound %d)", ErrCorrupt, count, maxStreams)
	}
	// The payload passed its checksum, so the declared count is honest about
	// the section's own bytes — but each ref costs at least 2 bytes, so a
	// count wildly beyond the remaining payload is still rejected before any
	// allocation happens.
	if count > uint64(buf.Len()) {
		return nil, fmt.Errorf("%w: %d streams declared in %d payload bytes", ErrCorrupt, count, buf.Len())
	}
	streams := make([]Stream, 0, count)
	for i := uint64(0); i < count; i++ {
		refCount, err := binary.ReadUvarint(buf)
		if err != nil {
			return nil, fmt.Errorf("%w: stream %d ref count: %v", ErrCorrupt, i, err)
		}
		if refCount == 0 || refCount > maxStreamRefs {
			return nil, fmt.Errorf("%w: stream %d has %d refs (bound 1..%d)", ErrCorrupt, i, refCount, maxStreamRefs)
		}
		if refCount > uint64(buf.Len()) {
			return nil, fmt.Errorf("%w: stream %d declares %d refs in %d remaining bytes", ErrCorrupt, i, refCount, buf.Len())
		}
		refs := make([]ref.Ref, 0, refCount)
		prevPC, prevAddr := int64(0), int64(0)
		for j := uint64(0); j < refCount; j++ {
			dpc, err := binary.ReadVarint(buf)
			if err != nil {
				return nil, fmt.Errorf("%w: stream %d ref %d pc: %v", ErrCorrupt, i, j, err)
			}
			daddr, err := binary.ReadVarint(buf)
			if err != nil {
				return nil, fmt.Errorf("%w: stream %d ref %d addr: %v", ErrCorrupt, i, j, err)
			}
			prevPC += dpc
			prevAddr += daddr
			refs = append(refs, ref.Ref{PC: int(prevPC), Addr: uint64(prevAddr)})
		}
		heat, err := binary.ReadUvarint(buf)
		if err != nil {
			return nil, fmt.Errorf("%w: stream %d heat: %v", ErrCorrupt, i, err)
		}
		streams = append(streams, Stream{Refs: refs, Heat: heat})
	}
	if buf.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in streams section", ErrCorrupt, buf.Len())
	}
	return streams, nil
}

// parseBaseline decodes the baseline section payload.
func parseBaseline(payload []byte) (Baseline, error) {
	buf := bytes.NewReader(payload)
	flag, err := buf.ReadByte()
	if err != nil {
		return Baseline{}, fmt.Errorf("%w: baseline flag: %v", ErrCorrupt, err)
	}
	if flag != 1 {
		return Baseline{}, fmt.Errorf("%w: baseline flag %d", ErrCorrupt, flag)
	}
	issued, err := binary.ReadUvarint(buf)
	if err != nil {
		return Baseline{}, fmt.Errorf("%w: baseline issued: %v", ErrCorrupt, err)
	}
	hits, err := binary.ReadUvarint(buf)
	if err != nil {
		return Baseline{}, fmt.Errorf("%w: baseline hits: %v", ErrCorrupt, err)
	}
	if hits > issued {
		return Baseline{}, fmt.Errorf("%w: baseline hits %d exceed issued %d", ErrCorrupt, hits, issued)
	}
	if buf.Len() != 0 {
		return Baseline{}, fmt.Errorf("%w: %d trailing bytes in baseline section", ErrCorrupt, buf.Len())
	}
	return Baseline{Valid: true, Issued: issued, Hits: hits}, nil
}

// Read decodes a snapshot written by Write. Any failure wraps one of the
// typed sentinel errors (IsFormatError reports true), and decoding never
// allocates more than a bounded chunk ahead of the bytes actually read.
func Read(r io.Reader) (*Profile, error) {
	d, err := newDecoder(r)
	if err != nil {
		return nil, err
	}
	p := &Profile{}
	seen := map[uint64]bool{}
	for i := 0; i < d.sections; i++ {
		id, payload, err := d.nextSection()
		if err != nil {
			return nil, err
		}
		if id <= sectionBaseline && seen[id] {
			return nil, fmt.Errorf("%w: duplicate section %d", ErrCorrupt, id)
		}
		seen[id] = true
		switch id {
		case sectionMeta:
			if p.Generation, p.CreatedAt, err = parseMeta(payload); err != nil {
				return nil, err
			}
		case sectionStreams:
			if p.Streams, err = parseStreams(payload); err != nil {
				return nil, err
			}
		case sectionBaseline:
			if p.Baseline, err = parseBaseline(payload); err != nil {
				return nil, err
			}
		default:
			// Unknown section from a future writer: checksum verified, content
			// skipped.
		}
	}
	if !seen[sectionMeta] || !seen[sectionStreams] {
		return nil, fmt.Errorf("%w: missing required section (meta %v, streams %v)", ErrCorrupt, seen[sectionMeta], seen[sectionStreams])
	}
	// The section count is the framing's end marker; bytes after the last
	// section mean the count lied.
	if _, err := d.br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing bytes after final section", ErrCorrupt)
	}
	return p, nil
}

// ReadInfo decodes only the snapshot's identity — generation and creation
// time — scanning sections until meta is found. Writers use it to compare
// the generation of an existing snapshot file against the one they are
// about to write without materializing the stream payload.
func ReadInfo(r io.Reader) (Info, error) {
	d, err := newDecoder(r)
	if err != nil {
		return Info{}, err
	}
	for i := 0; i < d.sections; i++ {
		id, payload, err := d.nextSection()
		if err != nil {
			return Info{}, err
		}
		if id != sectionMeta {
			continue
		}
		gen, createdAt, err := parseMeta(payload)
		if err != nil {
			return Info{}, err
		}
		return Info{Generation: gen, CreatedAt: createdAt}, nil
	}
	return Info{}, fmt.Errorf("%w: missing meta section", ErrCorrupt)
}
