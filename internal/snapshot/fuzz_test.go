package snapshot

import (
	"bytes"
	"reflect"
	"testing"

	"hotprefetch/internal/ref"
)

// FuzzSnapshotRestore is the snapshot loader's differential fuzzer: for
// arbitrary bytes, Read must either fail with a typed format error or
// produce a profile that (a) satisfies every format bound — so Write
// accepts it — and (b) survives a re-encode/re-decode round trip
// bit-identically. Seeded with valid snapshots, truncations, bit flips, and
// hand-framed corruption so the engine starts at the format's edges; the
// checked-in corpus under testdata/fuzz extends these.
func FuzzSnapshotRestore(f *testing.F) {
	valid := func(p *Profile) []byte {
		var buf bytes.Buffer
		if err := Write(&buf, p); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	full := valid(&Profile{
		Generation: 3,
		CreatedAt:  1754700000000000000,
		Streams: []Stream{
			{Refs: []ref.Ref{{PC: 10, Addr: 4096}, {PC: 18, Addr: 4128}}, Heat: 64},
			{Refs: []ref.Ref{{PC: 7, Addr: 1 << 33}}, Heat: 2},
		},
		Baseline: Baseline{Valid: true, Issued: 100, Hits: 25},
	})
	f.Add(full)
	f.Add(valid(&Profile{Generation: 1}))
	f.Add(full[:len(full)/2])               // truncated mid-section
	f.Add(full[:headerLen])                 // header only
	f.Add([]byte("HDSSNP"))                 // short header
	f.Add([]byte("HDSTRC\x01\x00\x02"))     // tracefile magic, wrong format
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	skewed := append([]byte(nil), full...)
	skewed[6] = formatVersion + 1
	f.Add(skewed)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Read(bytes.NewReader(data))
		if err != nil {
			if !IsFormatError(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted input: the decoded profile must be inside the format's
		// bounds, so re-encoding cannot fail...
		var buf bytes.Buffer
		if err := Write(&buf, p); err != nil {
			t.Fatalf("accepted profile failed to re-encode: %v\nprofile: %+v", err, p)
		}
		// ...and the round trip must be exact: any divergence means the two
		// directions disagree about the format.
		p2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded profile failed to decode: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip diverged:\n first %+v\nsecond %+v", p, p2)
		}
	})
}
