package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"reflect"
	"strings"
	"testing"

	"hotprefetch/internal/ref"
)

// sample returns a representative profile: several streams with delta-coded
// refs that exercise negative deltas, a baseline, and a non-zero generation.
func sample() *Profile {
	return &Profile{
		Generation: 7,
		CreatedAt:  1754700000000000000,
		Streams: []Stream{
			{Refs: []ref.Ref{{PC: 100, Addr: 4096}, {PC: 108, Addr: 4128}, {PC: 92, Addr: 64}}, Heat: 900},
			{Refs: []ref.Ref{{PC: 1 << 30, Addr: 1 << 40}, {PC: 4, Addr: 8}}, Heat: 512},
			{Refs: []ref.Ref{{PC: 0, Addr: 0}}, Heat: 3},
		},
		Baseline: Baseline{Valid: true, Issued: 1000, Hits: 640},
	}
}

func encode(t *testing.T, p *Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	want := sample()
	got, err := Read(bytes.NewReader(encode(t, want)))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestRoundTripNoBaseline(t *testing.T) {
	want := sample()
	want.Baseline = Baseline{}
	got, err := Read(bytes.NewReader(encode(t, want)))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Baseline.Valid {
		t.Fatalf("baseline materialized from nothing: %+v", got.Baseline)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestRoundTripEmptyStreams(t *testing.T) {
	want := &Profile{Generation: 1, CreatedAt: 42}
	got, err := Read(bytes.NewReader(encode(t, want)))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got.Streams) != 0 || got.Generation != 1 || got.CreatedAt != 42 {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestReadInfo(t *testing.T) {
	enc := encode(t, sample())
	info, err := ReadInfo(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("ReadInfo: %v", err)
	}
	if info.Generation != 7 || info.CreatedAt != 1754700000000000000 {
		t.Fatalf("ReadInfo = %+v", info)
	}
}

func TestBadMagic(t *testing.T) {
	enc := encode(t, sample())
	enc[0] ^= 0xff
	if _, err := Read(bytes.NewReader(enc)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestVersionSkew(t *testing.T) {
	enc := encode(t, sample())
	enc[6] = formatVersion + 1
	if _, err := Read(bytes.NewReader(enc)); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: got %v, want ErrVersion", err)
	}
	enc[6] = formatVersion
	enc[7] = 0x80 // reserved flag
	if _, err := Read(bytes.NewReader(enc)); !errors.Is(err, ErrVersion) {
		t.Fatalf("reserved flag: got %v, want ErrVersion", err)
	}
}

// TestTruncationEveryPrefix: every strict prefix of a valid snapshot must
// fail with a typed error — which subsumes truncation at every section
// boundary.
func TestTruncationEveryPrefix(t *testing.T) {
	enc := encode(t, sample())
	for n := 0; n < len(enc); n++ {
		_, err := Read(bytes.NewReader(enc[:n]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", n, len(enc))
		}
		if !IsFormatError(err) {
			t.Fatalf("prefix of %d bytes: untyped error %v", n, err)
		}
	}
}

// TestEveryBitFlip: flipping any single bit of a valid snapshot must yield a
// typed error, never a silent semantic change and never a panic. The section
// checksums cover the section headers too, so even id/length flips are
// caught rather than reframing the file.
func TestEveryBitFlip(t *testing.T) {
	enc := encode(t, sample())
	for i := 0; i < len(enc); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), enc...)
			mut[i] ^= 1 << bit
			_, err := Read(bytes.NewReader(mut))
			if err == nil {
				t.Fatalf("flip byte %d bit %d decoded successfully", i, bit)
			}
			if !IsFormatError(err) {
				t.Fatalf("flip byte %d bit %d: untyped error %v", i, bit, err)
			}
		}
	}
}

func TestTrailingGarbage(t *testing.T) {
	enc := append(encode(t, sample()), 0xAA)
	if _, err := Read(bytes.NewReader(enc)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

// rawSection frames a section the way Write does, checksum included.
func rawSection(id uint64, body []byte) []byte {
	var out []byte
	out = binary.AppendUvarint(out, id)
	out = binary.AppendUvarint(out, uint64(len(body)))
	head := append([]byte(nil), out...)
	out = append(out, body...)
	sum := crc32.Update(0, castagnoli, head)
	sum = crc32.Update(sum, castagnoli, body)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], sum)
	return append(out, crc[:]...)
}

// craft builds a snapshot file from raw sections.
func craft(sections ...[]byte) []byte {
	out := []byte{'H', 'D', 'S', 'S', 'N', 'P', formatVersion, 0}
	out = binary.AppendUvarint(out, uint64(len(sections)))
	for _, s := range sections {
		out = append(out, s...)
	}
	return out
}

func metaSection(gen uint64, createdAt int64) []byte {
	var body []byte
	body = binary.AppendUvarint(body, gen)
	body = binary.AppendVarint(body, createdAt)
	return rawSection(sectionMeta, body)
}

func TestImplausibleCounts(t *testing.T) {
	// A streams section declaring 2^20+1 streams in a tiny payload.
	var body []byte
	body = binary.AppendUvarint(body, maxStreams+1)
	enc := craft(metaSection(1, 0), rawSection(sectionStreams, body))
	if _, err := Read(bytes.NewReader(enc)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized stream count: got %v, want ErrCorrupt", err)
	}

	// A stream declaring more refs than the remaining payload could hold.
	body = body[:0]
	body = binary.AppendUvarint(body, 1)
	body = binary.AppendUvarint(body, 60000)
	enc = craft(metaSection(1, 0), rawSection(sectionStreams, body))
	if _, err := Read(bytes.NewReader(enc)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized ref count: got %v, want ErrCorrupt", err)
	}

	// A zero-ref stream is structurally impossible.
	body = body[:0]
	body = binary.AppendUvarint(body, 1)
	body = binary.AppendUvarint(body, 0)
	body = binary.AppendUvarint(body, 5) // heat
	enc = craft(metaSection(1, 0), rawSection(sectionStreams, body))
	if _, err := Read(bytes.NewReader(enc)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero-ref stream: got %v, want ErrCorrupt", err)
	}

	// An implausible section count.
	enc = craft()
	if _, err := Read(bytes.NewReader(enc)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero sections: got %v, want ErrCorrupt", err)
	}
}

func TestDuplicateSection(t *testing.T) {
	var streams []byte
	streams = binary.AppendUvarint(streams, 0)
	enc := craft(metaSection(1, 0), metaSection(2, 0), rawSection(sectionStreams, streams))
	if _, err := Read(bytes.NewReader(enc)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("duplicate meta: got %v, want ErrCorrupt", err)
	}
}

func TestMissingRequiredSection(t *testing.T) {
	enc := craft(metaSection(1, 0))
	if _, err := Read(bytes.NewReader(enc)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing streams: got %v, want ErrCorrupt", err)
	}
}

// TestUnknownSectionSkipped: a section id from a future writer is skipped
// (checksum still verified) and the rest of the file decodes.
func TestUnknownSectionSkipped(t *testing.T) {
	var streams []byte
	streams = binary.AppendUvarint(streams, 0)
	future := rawSection(99, []byte("future payload this reader cannot interpret"))
	enc := craft(metaSection(11, 22), future, rawSection(sectionStreams, streams))
	p, err := Read(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("Read with unknown section: %v", err)
	}
	if p.Generation != 11 || p.CreatedAt != 22 {
		t.Fatalf("decoded %+v", p)
	}
	// A corrupted future section must still be caught by its checksum.
	enc[len(enc)-len(rawSection(sectionStreams, streams))-3] ^= 0x01
	if _, err := Read(bytes.NewReader(enc)); !IsFormatError(err) {
		t.Fatalf("corrupt unknown section: got %v, want typed error", err)
	}
}

func TestBaselineBounds(t *testing.T) {
	var body []byte
	body = append(body, 1)
	body = binary.AppendUvarint(body, 10)  // issued
	body = binary.AppendUvarint(body, 999) // hits > issued
	var streams []byte
	streams = binary.AppendUvarint(streams, 0)
	enc := craft(metaSection(1, 0), rawSection(sectionStreams, streams), rawSection(sectionBaseline, body))
	if _, err := Read(bytes.NewReader(enc)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hits > issued: got %v, want ErrCorrupt", err)
	}
}

func TestBaselineAccuracy(t *testing.T) {
	if acc := (Baseline{}).Accuracy(); acc != 0 {
		t.Fatalf("zero baseline accuracy %v", acc)
	}
	if acc := (Baseline{Valid: true, Issued: 4, Hits: 3}).Accuracy(); acc != 0.75 {
		t.Fatalf("accuracy %v, want 0.75", acc)
	}
}

func TestWriteBounds(t *testing.T) {
	p := &Profile{Streams: []Stream{{Refs: nil, Heat: 1}}}
	if err := Write(io.Discard, p); err == nil || !strings.Contains(err.Error(), "refs") {
		t.Fatalf("empty-stream encode: %v", err)
	}
	p = &Profile{Streams: []Stream{{Refs: make([]ref.Ref, maxStreamRefs+1), Heat: 1}}}
	if err := Write(io.Discard, p); err == nil {
		t.Fatal("oversized-stream encode succeeded")
	}
}

// TestDeclaredLengthAllocationBound: a section claiming a huge payload but
// delivering a few bytes must fail without the declared size ever being
// allocated.
func TestDeclaredLengthAllocationBound(t *testing.T) {
	var enc []byte
	enc = append(enc, 'H', 'D', 'S', 'S', 'N', 'P', formatVersion, 0)
	enc = binary.AppendUvarint(enc, 1)
	enc = binary.AppendUvarint(enc, sectionMeta)
	enc = binary.AppendUvarint(enc, maxSectionLen) // claims 64 MiB
	enc = append(enc, []byte("only a few bytes")...)
	allocated := testing.AllocsPerRun(5, func() {
		if _, err := Read(bytes.NewReader(enc)); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
	// The exact count doesn't matter; what matters is that it's a handful of
	// small buffers, not one 64 MiB slab (which would show up as a huge
	// bytes-per-op, caught here as allocation count explosion via chunking).
	if allocated > 40 {
		t.Fatalf("truncated huge-claim decode allocated %.0f objects", allocated)
	}
	if _, err := Read(bytes.NewReader(enc)); !IsFormatError(err) {
		t.Fatal("expected typed error")
	}
	// And a section length beyond the format bound is corrupt immediately.
	enc = enc[:0]
	enc = append(enc, 'H', 'D', 'S', 'S', 'N', 'P', formatVersion, 0)
	enc = binary.AppendUvarint(enc, 1)
	enc = binary.AppendUvarint(enc, sectionMeta)
	enc = binary.AppendUvarint(enc, maxSectionLen+1)
	if _, err := Read(bytes.NewReader(enc)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("over-bound section length: got %v, want ErrCorrupt", err)
	}
}

func TestIsFormatError(t *testing.T) {
	for _, err := range []error{ErrBadMagic, ErrVersion, ErrChecksum, ErrTruncated, ErrCorrupt} {
		if !IsFormatError(err) {
			t.Fatalf("%v not classified as format error", err)
		}
	}
	if IsFormatError(io.EOF) || IsFormatError(nil) {
		t.Fatal("misclassified non-format error")
	}
}

// limitWriter fails after n bytes, driving Write's io error paths.
type limitWriter struct{ n int }

func (w *limitWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, io.ErrShortWrite
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, io.ErrShortWrite
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteIOFailure(t *testing.T) {
	enc := encode(t, sample())
	// Failing at every byte offset must surface the writer's error, never
	// panic. bufio batches small writes, so only some offsets trip mid-call;
	// the flush catches the rest.
	for n := 0; n < len(enc); n += 7 {
		if err := Write(&limitWriter{n: n}, sample()); err == nil {
			t.Fatalf("Write with %d-byte budget succeeded", n)
		}
	}
}

func TestSectionPayloadCorruption(t *testing.T) {
	// Corrupt payloads whose checksums are recomputed to match, so parsing —
	// not the CRC — must reject them: trailing bytes inside each section.
	var streams []byte
	streams = binary.AppendUvarint(streams, 0)
	okStreams := rawSection(sectionStreams, streams)

	meta := metaSection(1, 2)
	var metaBody []byte
	metaBody = binary.AppendUvarint(metaBody, 1)
	metaBody = binary.AppendVarint(metaBody, 2)
	metaBody = append(metaBody, 0xFF) // trailing byte
	enc := craft(rawSection(sectionMeta, metaBody), okStreams)
	if _, err := Read(bytes.NewReader(enc)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("meta trailing byte: got %v, want ErrCorrupt", err)
	}

	sBody := append(append([]byte(nil), streams...), 0xFF)
	enc = craft(meta, rawSection(sectionStreams, sBody))
	if _, err := Read(bytes.NewReader(enc)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("streams trailing byte: got %v, want ErrCorrupt", err)
	}

	bBody := []byte{1}
	bBody = binary.AppendUvarint(bBody, 10)
	bBody = binary.AppendUvarint(bBody, 5)
	bBody = append(bBody, 0xFF)
	enc = craft(meta, okStreams, rawSection(sectionBaseline, bBody))
	if _, err := Read(bytes.NewReader(enc)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("baseline trailing byte: got %v, want ErrCorrupt", err)
	}

	// Truncated-inside-payload variants: valid checksum, short varints.
	enc = craft(meta, okStreams, rawSection(sectionBaseline, []byte{1}))
	if _, err := Read(bytes.NewReader(enc)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("baseline short payload: got %v, want ErrCorrupt", err)
	}
	enc = craft(meta, okStreams, rawSection(sectionBaseline, []byte{9}))
	if _, err := Read(bytes.NewReader(enc)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("baseline bad flag: got %v, want ErrCorrupt", err)
	}
	enc = craft(rawSection(sectionMeta, nil), okStreams)
	if _, err := Read(bytes.NewReader(enc)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty meta: got %v, want ErrCorrupt", err)
	}
}

func TestReadInfoErrors(t *testing.T) {
	if _, err := ReadInfo(bytes.NewReader(nil)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty: got %v, want ErrTruncated", err)
	}
	enc := encode(t, sample())
	enc[6] = formatVersion + 1
	if _, err := ReadInfo(bytes.NewReader(enc)); !errors.Is(err, ErrVersion) {
		t.Fatalf("version skew: got %v, want ErrVersion", err)
	}
	// A file whose sections never include meta.
	var streams []byte
	streams = binary.AppendUvarint(streams, 0)
	noMeta := craft(rawSection(sectionStreams, streams))
	if _, err := ReadInfo(bytes.NewReader(noMeta)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing meta: got %v, want ErrCorrupt", err)
	}
	// Corruption ahead of the meta section surfaces as its typed error.
	bad := encode(t, sample())
	bad[len(bad)-1] ^= 0xFF
	if _, err := ReadInfo(bytes.NewReader(bad[:headerLen+1])); !IsFormatError(err) {
		t.Fatalf("truncated: got %v", err)
	}
	// And the happy path tolerates meta not being first.
	reordered := craft(rawSection(sectionStreams, streams), metaSection(9, 8))
	info, err := ReadInfo(bytes.NewReader(reordered))
	if err != nil || info.Generation != 9 {
		t.Fatalf("reordered meta: %+v, %v", info, err)
	}
}
