package ring

import (
	"testing"
)

// FuzzBatchInterleavings drives an SPSC ring through a fuzz-chosen sequence
// of PushBatch/PopBatch/TryPush/TryPop calls against a plain-slice model:
// every element must come out exactly once, in FIFO order, and the
// accepted/returned counts and Len must agree with the model at every step.
// Single-goroutine by design — the SPSC contract allows one producer and one
// consumer, so a sequential interleaving of both sides is a valid schedule,
// and it makes every fuzz input fully deterministic and replayable.
func FuzzBatchInterleavings(f *testing.F) {
	f.Add(uint8(4), []byte{0x05, 0x83, 0x02, 0x81})
	f.Add(uint8(1), []byte{0x01, 0x81, 0x01, 0x81, 0x01, 0x81})
	f.Add(uint8(16), []byte{0x20, 0xa0, 0x20, 0xa0})
	f.Add(uint8(0), []byte{})
	f.Fuzz(func(t *testing.T, capacity uint8, ops []byte) {
		q := New[uint64](int(capacity))
		var model []uint64
		next := uint64(1) // values are a strictly increasing sequence

		for _, op := range ops {
			// High bit selects pop vs push; low 7 bits are the batch size
			// (0 exercises the degenerate empty batch).
			n := int(op & 0x7f)
			if op&0x80 == 0 {
				if n == 0 {
					// TryPush a single element instead.
					full := len(model) == q.Cap()
					if q.TryPush(next) {
						if full {
							t.Fatalf("TryPush succeeded with %d/%d queued", len(model), q.Cap())
						}
						model = append(model, next)
						next++
					} else if !full {
						t.Fatalf("TryPush failed with %d/%d queued", len(model), q.Cap())
					}
					continue
				}
				src := make([]uint64, n)
				for i := range src {
					src[i] = next + uint64(i)
				}
				pushed := q.PushBatch(src)
				free := q.Cap() - len(model)
				want := n
				if want > free {
					want = free
				}
				if pushed != want {
					t.Fatalf("PushBatch(%d) = %d with %d free", n, pushed, free)
				}
				model = append(model, src[:pushed]...)
				next += uint64(pushed)
			} else {
				if n == 0 {
					v, ok := q.TryPop()
					if ok != (len(model) > 0) {
						t.Fatalf("TryPop ok=%v with %d queued", ok, len(model))
					}
					if ok {
						if v != model[0] {
							t.Fatalf("TryPop = %d, want %d (FIFO)", v, model[0])
						}
						model = model[1:]
					}
					continue
				}
				dst := make([]uint64, n)
				popped := q.PopBatch(dst)
				// The consumer serves from its cached tail view (a lower
				// bound on occupancy) and refreshes only when that view says
				// empty, so popped may fall short of min(n, queued) — but
				// never exceed it, and never be zero while elements remain.
				want := n
				if want > len(model) {
					want = len(model)
				}
				if popped > want {
					t.Fatalf("PopBatch(%d) = %d with only %d queued", n, popped, len(model))
				}
				if popped == 0 && want > 0 {
					t.Fatalf("PopBatch(%d) = 0 with %d queued", n, len(model))
				}
				for i := 0; i < popped; i++ {
					if dst[i] != model[i] {
						t.Fatalf("PopBatch element %d = %d, want %d (FIFO)", i, dst[i], model[i])
					}
				}
				model = model[popped:]
			}
			if got := q.Len(); got != len(model) {
				t.Fatalf("Len = %d, model has %d", got, len(model))
			}
		}

		// Drain: everything still queued must come out in order.
		for i := 0; len(model) > 0; i++ {
			v, ok := q.TryPop()
			if !ok {
				t.Fatalf("ring empty with %d modeled elements left", len(model))
			}
			if v != model[0] {
				t.Fatalf("drain element = %d, want %d", v, model[0])
			}
			model = model[1:]
		}
		if v, ok := q.TryPop(); ok {
			t.Fatalf("ring yielded %d after the model drained", v)
		}
	})
}
