// Package ring provides a bounded single-producer single-consumer queue.
//
// ShardedProfile feeds each profile shard through one of these rings: the
// producing goroutine owns the tail, the consuming goroutine owns the head,
// and each side re-reads the other's index only when its cached copy says
// the ring looks full (producer) or empty (consumer). Under Go's memory
// model the atomic head/tail loads and stores order the slot accesses, so
// the queue is race-detector clean without locks.
package ring

import (
	"runtime"
	"sync/atomic"
)

// pad keeps the producer- and consumer-owned fields on separate cache lines
// so the two sides do not false-share.
type pad [64]byte

// SPSC is a bounded lock-free queue for exactly one producer goroutine and
// one consumer goroutine. The zero value is not usable; call New.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	_         pad
	head      atomic.Uint64 // next slot to read; owned by the consumer
	tailCache uint64        // consumer's last view of tail
	_         pad
	tail      atomic.Uint64 // next slot to write; owned by the producer
	headCache uint64        // producer's last view of head
	_         pad
}

// New returns an empty ring holding at least capacity elements (rounded up
// to a power of two, minimum 2).
func New[T any](capacity int) *SPSC[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Cap returns the ring's capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Len returns the number of queued elements. It may be called from either
// side (or a third observer) and is approximate under concurrency, but is
// always within [0, Cap]: head is snapshotted before tail, so a pop racing
// between the two loads can only make the difference smaller than the true
// occupancy, never negative, and a racing push can only overshoot up to Cap.
func (q *SPSC[T]) Len() int {
	h := q.head.Load()
	t := q.tail.Load()
	// tail only grows, and head <= tail held when h was read, so t >= h and
	// the subtraction cannot underflow. Pushes landing between the two loads
	// can still inflate the difference past the capacity; clamp.
	n := t - h
	if n > uint64(len(q.buf)) {
		n = uint64(len(q.buf))
	}
	return int(n)
}

// TryPush enqueues v, reporting false if the ring is full. Producer side
// only.
func (q *SPSC[T]) TryPush(v T) bool {
	t := q.tail.Load()
	if t-q.headCache == uint64(len(q.buf)) {
		q.headCache = q.head.Load()
		if t-q.headCache == uint64(len(q.buf)) {
			return false
		}
	}
	q.buf[t&q.mask] = v
	q.tail.Store(t + 1)
	return true
}

// Push enqueues v, spinning (with scheduler yields) while the ring is full.
// Producer side only.
func (q *SPSC[T]) Push(v T) {
	for !q.TryPush(v) {
		runtime.Gosched()
	}
}

// PushBatch enqueues up to len(src) elements and returns how many fit,
// publishing them with a single tail store — the producer-side counterpart
// of PopBatch, amortizing the release fence and head refresh over a burst.
// Producer side only.
func (q *SPSC[T]) PushBatch(src []T) int {
	t := q.tail.Load()
	free := uint64(len(q.buf)) - (t - q.headCache)
	if free < uint64(len(src)) {
		q.headCache = q.head.Load()
		free = uint64(len(q.buf)) - (t - q.headCache)
		if free == 0 {
			return 0
		}
	}
	n := uint64(len(src))
	if n > free {
		n = free
	}
	// The run occupies at most two contiguous spans of the power-of-two
	// buffer (before and after the wrap point); two copy calls replace the
	// per-element masked stores and let the runtime move words in bulk.
	start := t & q.mask
	first := copy(q.buf[start:], src[:n])
	copy(q.buf, src[first:n])
	q.tail.Store(t + n)
	return int(n)
}

// TryPop dequeues one element, reporting false if the ring is empty.
// Consumer side only.
func (q *SPSC[T]) TryPop() (T, bool) {
	h := q.head.Load()
	if h == q.tailCache {
		q.tailCache = q.tail.Load()
		if h == q.tailCache {
			var zero T
			return zero, false
		}
	}
	v := q.buf[h&q.mask]
	q.head.Store(h + 1)
	return v, true
}

// PopBatch dequeues up to len(dst) elements into dst and returns the count.
// Consumer side only.
func (q *SPSC[T]) PopBatch(dst []T) int {
	h := q.head.Load()
	avail := q.tailCache - h
	if avail == 0 {
		q.tailCache = q.tail.Load()
		avail = q.tailCache - h
		if avail == 0 {
			return 0
		}
	}
	n := uint64(len(dst))
	if n > avail {
		n = avail
	}
	// Mirror of PushBatch: at most two contiguous spans around the wrap.
	start := h & q.mask
	first := copy(dst[:n], q.buf[start:])
	copy(dst[first:n], q.buf)
	q.head.Store(h + n)
	return int(n)
}
