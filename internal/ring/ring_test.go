package ring

import (
	"runtime"
	"sync"
	"testing"
)

func TestFIFOOrder(t *testing.T) {
	q := New[int](8)
	if q.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", q.Cap())
	}
	for i := 0; i < 8; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if q.TryPush(99) {
		t.Error("push succeeded on full ring")
	}
	for i := 0; i < 8; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Error("pop succeeded on empty ring")
	}
}

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{{0, 2}, {1, 2}, {3, 4}, {4, 4}, {1000, 1024}} {
		if got := New[byte](tc.ask).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestConcurrentTransfer moves a large sequence through the ring with one
// producer and one consumer; run under -race this validates the
// happens-before edges between the two sides.
func TestConcurrentTransfer(t *testing.T) {
	n := uint64(50000)
	if testing.Short() {
		n = 5000
	}
	q := New[uint64](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; i++ {
			q.Push(i)
		}
	}()
	var next uint64
	buf := make([]uint64, 32)
	for next < n {
		k := q.PopBatch(buf)
		if k == 0 {
			if v, ok := q.TryPop(); ok {
				buf[0] = v
				k = 1
			} else {
				runtime.Gosched()
				continue
			}
		}
		for i := 0; i < k; i++ {
			if buf[i] != next {
				t.Fatalf("element %d = %d, want %d", next, buf[i], next)
			}
			next++
		}
	}
	wg.Wait()
	if q.Len() != 0 {
		t.Errorf("ring should be drained, Len = %d", q.Len())
	}
}

func TestLenCounts(t *testing.T) {
	q := New[int](8)
	if q.Len() != 0 {
		t.Fatalf("empty Len = %d, want 0", q.Len())
	}
	for i := 0; i < 5; i++ {
		q.TryPush(i)
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
	q.TryPop()
	q.TryPop()
	if q.Len() != 3 {
		t.Fatalf("Len after pops = %d, want 3", q.Len())
	}
}

// TestLenBoundsUnderRace regresses the Len bug where tail was loaded before
// head: a pop completing between the two loads made tail-head wrap negative
// (reported as a huge positive int after conversion). An observer goroutine
// samples Len while a producer and consumer churn the ring; every sample
// must land in [0, Cap].
func TestLenBoundsUnderRace(t *testing.T) {
	n := uint64(50000)
	if testing.Short() {
		n = 5000
	}
	q := New[uint64](4)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; i++ {
			q.Push(i)
		}
	}()
	go func() {
		defer wg.Done()
		for got := uint64(0); got < n; {
			if _, ok := q.TryPop(); ok {
				got++
			} else {
				runtime.Gosched()
			}
		}
	}()
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		if l := q.Len(); l < 0 || l > q.Cap() {
			t.Fatalf("Len = %d, outside [0, %d]", l, q.Cap())
		}
		runtime.Gosched()
	}
}

func TestPushBatch(t *testing.T) {
	q := New[int](8)
	if n := q.PushBatch(nil); n != 0 {
		t.Fatalf("PushBatch(nil) = %d, want 0", n)
	}
	if n := q.PushBatch([]int{0, 1, 2, 3, 4}); n != 5 {
		t.Fatalf("PushBatch = %d, want 5", n)
	}
	// Partial: only 3 slots remain.
	if n := q.PushBatch([]int{5, 6, 7, 8, 9}); n != 3 {
		t.Fatalf("PushBatch on nearly-full ring = %d, want 3", n)
	}
	if n := q.PushBatch([]int{99}); n != 0 {
		t.Fatalf("PushBatch on full ring = %d, want 0", n)
	}
	for i := 0; i < 8; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v, want %d,true", v, ok, i)
		}
	}
}

// TestPushBatchWraparound drives the batch write across the index wrap to
// check the modular slot arithmetic.
func TestPushBatchWraparound(t *testing.T) {
	q := New[int](4)
	next := 0
	buf := make([]int, 3)
	for round := 0; round < 10; round++ {
		batch := []int{next, next + 1, next + 2}
		if n := q.PushBatch(batch); n != 3 {
			t.Fatalf("round %d: PushBatch = %d, want 3", round, n)
		}
		next += 3
		if n := q.PopBatch(buf); n != 3 {
			t.Fatalf("round %d: PopBatch = %d, want 3", round, n)
		}
		for i, v := range buf {
			if v != next-3+i {
				t.Fatalf("round %d: buf[%d] = %d, want %d", round, i, v, next-3+i)
			}
		}
	}
}

// TestPushBatchConcurrentTransfer is TestConcurrentTransfer with batched
// pushes; under -race this validates the single tail store publishing a
// whole batch of slot writes.
func TestPushBatchConcurrentTransfer(t *testing.T) {
	n := uint64(50000)
	if testing.Short() {
		n = 5000
	}
	q := New[uint64](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch := make([]uint64, 16)
		for i := uint64(0); i < n; {
			k := uint64(len(batch))
			if k > n-i {
				k = n - i
			}
			for j := uint64(0); j < k; j++ {
				batch[j] = i + j
			}
			sent := uint64(0)
			for sent < k {
				m := q.PushBatch(batch[sent:k])
				if m == 0 {
					runtime.Gosched()
					continue
				}
				sent += uint64(m)
			}
			i += k
		}
	}()
	var next uint64
	buf := make([]uint64, 32)
	for next < n {
		k := q.PopBatch(buf)
		if k == 0 {
			runtime.Gosched()
			continue
		}
		for i := 0; i < k; i++ {
			if buf[i] != next {
				t.Fatalf("element %d = %d, want %d", next, buf[i], next)
			}
			next++
		}
	}
	wg.Wait()
}

func BenchmarkPushPop(b *testing.B) {
	q := New[uint64](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.TryPush(uint64(i))
		q.TryPop()
	}
}

// BenchmarkPushPopBatch is BenchmarkPushPop amortized over 256-element
// batches: one tail store and one head store per batch instead of per
// element. ns/op is per element.
func BenchmarkPushPopBatch(b *testing.B) {
	q := New[uint64](1024)
	src := make([]uint64, 256)
	dst := make([]uint64, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i += len(src) {
		q.PushBatch(src)
		q.PopBatch(dst)
	}
}
