package tracefile

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"hotprefetch/internal/ref"
)

func TestRoundTrip(t *testing.T) {
	refs := []ref.Ref{
		{PC: 10, Addr: 0x1000},
		{PC: 12, Addr: 0x1020},
		{PC: 10, Addr: 0x1000}, // repeat (negative deltas)
		{PC: 9999, Addr: 1 << 40},
	}
	var buf bytes.Buffer
	if err := Write(&buf, refs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(refs) {
		t.Fatalf("len = %d, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Errorf("ref %d = %v, want %v", i, got[i], refs[i])
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d refs from empty trace", len(got))
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTATRACE-------"))); err == nil {
		t.Error("bad magic must be rejected")
	}
}

func TestTruncated(t *testing.T) {
	refs := make([]ref.Ref, 100)
	for i := range refs {
		refs[i] = ref.Ref{PC: i, Addr: uint64(i) * 64}
	}
	var buf bytes.Buffer
	if err := Write(&buf, refs); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 9, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestCompressionOnRepetitiveTrace(t *testing.T) {
	// A hot-data-stream-like trace should encode far smaller than 16 bytes
	// per reference.
	var refs []ref.Ref
	for lap := 0; lap < 100; lap++ {
		for i := 0; i < 20; i++ {
			refs = append(refs, ref.Ref{PC: 100 + i, Addr: uint64(0x1000 + i*64)})
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, refs); err != nil {
		t.Fatal(err)
	}
	if perRef := float64(buf.Len()) / float64(len(refs)); perRef > 6 {
		t.Errorf("%.1f bytes/ref, want delta coding to stay under 6", perRef)
	}
}

// Property: round trip over random traces.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		refs := make([]ref.Ref, int(n8))
		for i := range refs {
			refs[i] = ref.Ref{PC: r.Intn(1 << 20), Addr: r.Uint64() >> r.Intn(40)}
		}
		var buf bytes.Buffer
		if err := Write(&buf, refs); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(refs) {
			return false
		}
		for i := range refs {
			if got[i] != refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
