package tracefile

import (
	"bytes"
	"encoding/binary"
	"testing"

	"hotprefetch/internal/ref"
)

// encode builds a valid trace file for seeding.
func encode(t testing.TB, refs []ref.Ref) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := Write(&b, refs); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// FuzzRead feeds arbitrary bytes to the trace parser: it must never panic or
// over-allocate, and anything it accepts must survive a write/read round
// trip bit-for-bit (the decoder and encoder agree on the format).
func FuzzRead(f *testing.F) {
	f.Add([]byte{})
	f.Add(magic[:])
	f.Add(encode(f, nil))
	f.Add(encode(f, []ref.Ref{{PC: 1, Addr: 8}}))
	f.Add(encode(f, []ref.Ref{
		{PC: 10, Addr: 0x1000},
		{PC: 11, Addr: 0x1008},
		{PC: 10, Addr: 0x1000},
		{PC: 12, Addr: 0xffffffffffffffff},
	}))
	// Truncations and corruptions of a valid file.
	valid := encode(f, []ref.Ref{{PC: 3, Addr: 24}, {PC: 4, Addr: 32}})
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:9])
	corrupt := append([]byte(nil), valid...)
	corrupt[6] = 2 // wrong version byte
	f.Add(corrupt)
	// A tiny file claiming an enormous count: must fail or stay small, not
	// pre-allocate gigabytes.
	huge := append([]byte(nil), magic[:]...)
	var v [binary.MaxVarintLen64]byte
	n := binary.PutVarint(v[:], 1<<32)
	f.Add(append(huge, v[:n]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		refs, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		out := encode(t, refs)
		refs2, err := Read(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-read of re-encoded trace failed: %v", err)
		}
		if len(refs2) != len(refs) {
			t.Fatalf("round trip changed count: %d != %d", len(refs2), len(refs))
		}
		for i := range refs {
			if refs[i] != refs2[i] {
				t.Fatalf("round trip changed ref %d: %+v != %+v", i, refs[i], refs2[i])
			}
		}
	})
}

// FuzzRoundTrip builds a trace from fuzz-chosen bytes and requires the
// write/read cycle to reproduce it exactly, whatever the deltas look like
// (negative, huge, zigzag edge cases).
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		var refs []ref.Ref
		for len(data) >= 16 {
			refs = append(refs, ref.Ref{
				PC:   int(int64(binary.LittleEndian.Uint64(data[:8]))),
				Addr: binary.LittleEndian.Uint64(data[8:16]),
			})
			data = data[16:]
		}
		var b bytes.Buffer
		if err := Write(&b, refs); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&b)
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if len(got) != len(refs) {
			t.Fatalf("count %d != %d", len(got), len(refs))
		}
		for i := range refs {
			if got[i] != refs[i] {
				t.Fatalf("ref %d: %+v != %+v", i, got[i], refs[i])
			}
		}
	})
}
