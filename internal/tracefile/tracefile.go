// Package tracefile reads and writes data reference traces in a compact
// binary format, so profiles can be captured once and analyzed offline —
// the workflow of the paper's earlier, trace-driven work ([8], [21]) that
// the online system replaces, and still the right tool for debugging and
// for feeding external traces into the analysis.
//
// Format: an 8-byte header ("HDSTRC" + version + flags), a varint reference
// count, then per reference a varint pc delta (zigzag) and a varint address
// delta (zigzag) from the previous reference. Delta coding keeps repetitive
// traces small.
package tracefile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"hotprefetch/internal/ref"
)

var magic = [8]byte{'H', 'D', 'S', 'T', 'R', 'C', 1, 0}

// byteWriter is the subset of bufio.Writer the encoder needs; a destination
// that already buffers (bytes.Buffer, bufio.Writer) satisfies it directly,
// sparing the per-call bufio.Writer allocation on pooled-buffer hot paths
// like the capture client's publish loop.
type byteWriter interface {
	io.Writer
	Flush() error
}

// passthroughWriter adapts an already-buffered io.Writer to byteWriter.
type passthroughWriter struct{ io.Writer }

func (passthroughWriter) Flush() error { return nil }

// Write encodes refs to w.
func Write(w io.Writer, refs []ref.Ref) error {
	var bw byteWriter
	switch dst := w.(type) {
	case byteWriter:
		bw = dst
	case interface{ AvailableBuffer() []byte }: // bytes.Buffer: self-buffering
		bw = passthroughWriter{w}
	default:
		bw = bufio.NewWriter(w)
	}
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(int64(len(refs))); err != nil {
		return err
	}
	prevPC := int64(0)
	prevAddr := int64(0)
	for _, r := range refs {
		if err := put(int64(r.PC) - prevPC); err != nil {
			return err
		}
		if err := put(int64(r.Addr) - prevAddr); err != nil {
			return err
		}
		prevPC = int64(r.PC)
		prevAddr = int64(r.Addr)
	}
	return bw.Flush()
}

// Decoder decodes a trace incrementally, a caller-sized chunk of references
// at a time, so a consumer never has to materialize the whole stream: the
// resident cost of decoding is the chunk buffer, regardless of how many
// references the header claims or the body carries. This is what a network
// ingest path must use — Read's all-at-once slice lets a large (or
// maliciously long) upload grow the server's heap by the full trace size.
type Decoder struct {
	br               *bufio.Reader
	count            int64 // references the header declares
	decoded          int64 // references decoded so far
	prevPC, prevAddr int64
}

// NewDecoder reads and validates the trace header from r and returns a
// decoder positioned at the first reference. The declared count is bounded
// the same way Read bounds it; nothing is pre-allocated from it.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var head [8]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("tracefile: short header: %w", err)
	}
	if head != magic {
		return nil, fmt.Errorf("tracefile: bad magic %q", head[:6])
	}
	count, err := binary.ReadVarint(br)
	if err != nil {
		return nil, fmt.Errorf("tracefile: count: %w", err)
	}
	if count < 0 || count > 1<<32 {
		return nil, fmt.Errorf("tracefile: implausible count %d", count)
	}
	return &Decoder{br: br, count: count}, nil
}

// Count returns the number of references the header declares. The body may
// still turn out to be truncated; Next reports that as an error.
func (d *Decoder) Count() int64 { return d.count }

// Remaining returns how many declared references have not been decoded yet.
func (d *Decoder) Remaining() int64 { return d.count - d.decoded }

// Next decodes up to len(buf) references into buf and returns how many it
// decoded. At end of trace it returns (0, io.EOF); a truncated or corrupt
// body returns the underlying decode error. Next never allocates: the only
// buffer involved is the caller's.
func (d *Decoder) Next(buf []ref.Ref) (int, error) {
	if d.decoded >= d.count {
		return 0, io.EOF
	}
	n := 0
	for n < len(buf) && d.decoded < d.count {
		dpc, err := binary.ReadVarint(d.br)
		if err != nil {
			return n, fmt.Errorf("tracefile: ref %d pc: %w", d.decoded, err)
		}
		daddr, err := binary.ReadVarint(d.br)
		if err != nil {
			return n, fmt.Errorf("tracefile: ref %d addr: %w", d.decoded, err)
		}
		d.prevPC += dpc
		d.prevAddr += daddr
		buf[n] = ref.Ref{PC: int(d.prevPC), Addr: uint64(d.prevAddr)}
		n++
		d.decoded++
	}
	return n, nil
}

// Read decodes a trace written by Write, materializing it as one slice —
// fine for traces the caller chose to load (a -load file), wrong for
// untrusted network bodies, which should stream through a Decoder instead.
func Read(r io.Reader) ([]ref.Ref, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	// Pre-size from the header only up to a modest cap: the count is
	// attacker-controlled (a 9-byte file can claim 2^32 refs), so beyond the
	// cap the slice grows only as actual data arrives.
	sizeHint := d.count
	if sizeHint > 1<<16 {
		sizeHint = 1 << 16
	}
	refs := make([]ref.Ref, 0, sizeHint)
	var chunk [4096]ref.Ref
	for {
		n, err := d.Next(chunk[:])
		refs = append(refs, chunk[:n]...)
		if err == io.EOF {
			return refs, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
