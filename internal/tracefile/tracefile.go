// Package tracefile reads and writes data reference traces in a compact
// binary format, so profiles can be captured once and analyzed offline —
// the workflow of the paper's earlier, trace-driven work ([8], [21]) that
// the online system replaces, and still the right tool for debugging and
// for feeding external traces into the analysis.
//
// Format: an 8-byte header ("HDSTRC" + version + flags), a varint reference
// count, then per reference a varint pc delta (zigzag) and a varint address
// delta (zigzag) from the previous reference. Delta coding keeps repetitive
// traces small.
package tracefile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"hotprefetch/internal/ref"
)

var magic = [8]byte{'H', 'D', 'S', 'T', 'R', 'C', 1, 0}

// Write encodes refs to w.
func Write(w io.Writer, refs []ref.Ref) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(int64(len(refs))); err != nil {
		return err
	}
	prevPC := int64(0)
	prevAddr := int64(0)
	for _, r := range refs {
		if err := put(int64(r.PC) - prevPC); err != nil {
			return err
		}
		if err := put(int64(r.Addr) - prevAddr); err != nil {
			return err
		}
		prevPC = int64(r.PC)
		prevAddr = int64(r.Addr)
	}
	return bw.Flush()
}

// Read decodes a trace written by Write.
func Read(r io.Reader) ([]ref.Ref, error) {
	br := bufio.NewReader(r)
	var head [8]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("tracefile: short header: %w", err)
	}
	if head != magic {
		return nil, fmt.Errorf("tracefile: bad magic %q", head[:6])
	}
	count, err := binary.ReadVarint(br)
	if err != nil {
		return nil, fmt.Errorf("tracefile: count: %w", err)
	}
	if count < 0 || count > 1<<32 {
		return nil, fmt.Errorf("tracefile: implausible count %d", count)
	}
	// Pre-size from the header only up to a modest cap: the count is
	// attacker-controlled (a 9-byte file can claim 2^32 refs), so beyond the
	// cap the slice grows only as actual data arrives.
	sizeHint := count
	if sizeHint > 1<<16 {
		sizeHint = 1 << 16
	}
	refs := make([]ref.Ref, 0, sizeHint)
	prevPC := int64(0)
	prevAddr := int64(0)
	for i := int64(0); i < count; i++ {
		dpc, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("tracefile: ref %d pc: %w", i, err)
		}
		daddr, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("tracefile: ref %d addr: %w", i, err)
		}
		prevPC += dpc
		prevAddr += daddr
		refs = append(refs, ref.Ref{PC: int(prevPC), Addr: uint64(prevAddr)})
	}
	return refs, nil
}
