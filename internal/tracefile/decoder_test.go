package tracefile

import (
	"bytes"
	"encoding/binary"
	"io"
	"runtime"
	"testing"

	"hotprefetch/internal/ref"
)

// TestDecoderChunks decodes a trace through every chunk size that stresses
// the boundary arithmetic and checks the result matches Read.
func TestDecoderChunks(t *testing.T) {
	refs := make([]ref.Ref, 1000)
	for i := range refs {
		refs[i] = ref.Ref{PC: i % 97, Addr: uint64(i) * 64}
	}
	var buf bytes.Buffer
	if err := Write(&buf, refs); err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 3, 64, 999, 1000, 4096} {
		d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if d.Count() != int64(len(refs)) {
			t.Fatalf("chunk %d: Count = %d, want %d", chunk, d.Count(), len(refs))
		}
		var got []ref.Ref
		b := make([]ref.Ref, chunk)
		for {
			n, err := d.Next(b)
			got = append(got, b[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("chunk %d: %v", chunk, err)
			}
		}
		if len(got) != len(refs) {
			t.Fatalf("chunk %d: decoded %d refs, want %d", chunk, len(got), len(refs))
		}
		for i := range refs {
			if got[i] != refs[i] {
				t.Fatalf("chunk %d: ref %d = %v, want %v", chunk, i, got[i], refs[i])
			}
		}
		if d.Remaining() != 0 {
			t.Errorf("chunk %d: Remaining = %d after EOF", chunk, d.Remaining())
		}
	}
}

func TestDecoderTruncated(t *testing.T) {
	refs := make([]ref.Ref, 100)
	for i := range refs {
		refs[i] = ref.Ref{PC: i, Addr: uint64(i) * 8}
	}
	var buf bytes.Buffer
	if err := Write(&buf, refs); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	d, err := NewDecoder(bytes.NewReader(full[:len(full)/2]))
	if err != nil {
		t.Fatal(err)
	}
	b := make([]ref.Ref, 4096)
	_, err = d.Next(b)
	if err == nil || err == io.EOF {
		t.Fatalf("truncated body: err = %v, want decode error", err)
	}
}

// hugeClaimTrace returns a tiny trace whose header claims `claim` references
// but whose body carries only `actual` of them.
func hugeClaimTrace(t testing.TB, claim int64, actual int) []byte {
	t.Helper()
	var body bytes.Buffer
	refs := make([]ref.Ref, actual)
	for i := range refs {
		refs[i] = ref.Ref{PC: i, Addr: uint64(i)}
	}
	if err := Write(&body, refs); err != nil {
		t.Fatal(err)
	}
	// Rewrite the count varint in place: header(8) + count + deltas.
	out := append([]byte(nil), magic[:]...)
	var v [binary.MaxVarintLen64]byte
	n := binary.PutVarint(v[:], claim)
	out = append(out, v[:n]...)
	full := body.Bytes()
	skip := 8
	_, m := binary.Varint(full[skip:])
	return append(out, full[skip+m:]...)
}

// TestDecoderByteBudget is the OOM regression test for the ingest path: a
// body claiming 2^32 references must cost the server no more than the chunk
// buffer while being streamed, however large the claim. The pre-PR-7 Read
// path materialized the whole stream, so even with its pre-allocation cap a
// long genuine body would grow the heap without bound; the Decoder holds
// decoding to the caller's buffer.
func TestDecoderByteBudget(t *testing.T) {
	data := hugeClaimTrace(t, 1<<32, 100_000)
	rd := bytes.NewReader(data)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	d, err := NewDecoder(rd)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]ref.Ref, 4096)
	var total int64
	for {
		n, err := d.Next(buf)
		total += int64(n)
		if err != nil {
			// Truncation is expected: the body carries fewer refs than the
			// header claims. What matters is that nothing was pre-allocated
			// for the claimed 2^32.
			break
		}
	}
	runtime.ReadMemStats(&after)
	if total != 100_000 {
		t.Fatalf("decoded %d refs, want 100000", total)
	}
	// 2^32 refs at 16 bytes each would be 64 GiB; the streaming path must
	// stay within a modest fixed budget (chunk buffer + bufio + noise).
	const budget = 1 << 20
	if grew := after.TotalAlloc - before.TotalAlloc; grew > budget {
		t.Errorf("decoding allocated %d bytes, want <= %d", grew, budget)
	}
}

// TestDecoderNextZeroAlloc pins the steady-state contract: Next allocates
// nothing, whatever the trace contents.
func TestDecoderNextZeroAlloc(t *testing.T) {
	refs := make([]ref.Ref, 50_000)
	for i := range refs {
		refs[i] = ref.Ref{PC: i % 113, Addr: uint64(i%127) * 64}
	}
	var buf bytes.Buffer
	if err := Write(&buf, refs); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	b := make([]ref.Ref, 1024)
	allocs := testing.AllocsPerRun(40, func() {
		if _, err := d.Next(b); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Next allocates %v per call, want 0", allocs)
	}
}

// BenchmarkDecoderDrain measures streaming decode throughput: one iteration
// opens a decoder over a 1<<14-reference frame and drains it in 2048-ref
// chunks — the ingest endpoint's exact access pattern. The per-drain
// allocations are the decoder's fixed setup (bufio reader + Decoder); Next
// itself allocates nothing (see TestDecoderNextZeroAlloc).
func BenchmarkDecoderDrain(b *testing.B) {
	const n = 1 << 14
	refs := make([]ref.Ref, n)
	for i := range refs {
		refs[i] = ref.Ref{PC: i % 97, Addr: uint64(i) * 64}
	}
	var buf bytes.Buffer
	if err := Write(&buf, refs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	chunk := make([]ref.Ref, 2048)
	rd := bytes.NewReader(data)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(data)
		d, err := NewDecoder(rd)
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for {
			got, err := d.Next(chunk)
			total += got
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		if total != n {
			b.Fatalf("decoded %d refs, want %d", total, n)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "refs-ns/op")
}
