// Package workload generates the six benchmark programs of the paper's
// evaluation (§4.1): analogs of the memory-performance-limited SPECint2000
// benchmarks vpr, mcf, twolf, parser, and vortex, plus boxsim, a graphics
// application simulating spheres bouncing in a box.
//
// Substitution note (see DESIGN.md §2): SPEC sources and reference inputs
// are not redistributable, and native execution is unavailable, so each
// benchmark is a generated virtual-ISA program engineered to reproduce the
// properties the paper's effect depends on:
//
//   - pointer-chasing references dominate, and hot-chain reuse distances
//     exceed the L2 capacity, so traversals miss without prefetching;
//   - a small number of hot data streams — repeated traversals of the same
//     object chains, 15-25 references each — pass the 1%-of-trace heat
//     threshold, with per-benchmark counts shaped to the paper's Table 2
//     (14-41 streams, 6-12 procedures);
//   - traversal order is driven by long shuffled schedule rings (wrapping
//     only every ~37 laps), so a chain's neighbors keep changing and
//     Sequitur isolates each chain's chase sequence as its own stream
//     instead of fusing whole laps;
//   - layout is scattered (all chains' objects interleaved in one global
//     shuffled allocation order, one object per block) so sequentially-
//     following blocks belong to unrelated chains and are useless to
//     prefetch — except for parser, whose chains are allocated in traversal
//     order, making the Seq-pref baseline profitable exactly as in §4.3;
//   - compute-per-reference varies per benchmark (vortex least memory
//     bound, vpr/mcf most), spreading Dyn-pref wins across the paper's
//     5-19% range;
//   - vpr, twolf, and boxsim switch between program phases (distinct hot
//     chain sets), exercising adaptive re-optimization.
//
// The cache geometry used with these workloads is the paper's hierarchy
// scaled down 8x (2KB 4-way L1, 32KB 8-way L2, 32-byte blocks, same
// latencies); working sets are scaled with it, keeping every reuse-distance
// relationship intact while making full profile-optimize-hibernate cycles
// affordable in simulation.
package workload

import (
	"fmt"

	"hotprefetch/internal/heap"
	"hotprefetch/internal/machine"
	"hotprefetch/internal/memsim"
	"hotprefetch/internal/vulcan"
)

// CacheConfig returns the scaled cache hierarchy used for the workload
// experiments: the paper's geometry (16KB/256KB, 4/8-way, 32B blocks, §4.1)
// with capacities divided by 8 and latencies preserved.
func CacheConfig() memsim.Config {
	return memsim.Config{
		BlockSize:    32,
		L1Size:       2 << 10,
		L1Assoc:      4,
		L2Size:       32 << 10,
		L2Assoc:      8,
		L2HitLatency: 10,
		MemLatency:   100,
	}
}

// Params defines one generated benchmark.
type Params struct {
	Name string
	// Seed drives all layout and schedule shuffling.
	Seed int64

	// HotChains is the number of frequently-traversed chains per phase —
	// the hot data stream population.
	HotChains int
	// ChainLen is the number of objects per chain; one traversal is one
	// occurrence of the chain's hot data stream.
	ChainLen int
	// Repeats is how many times each hot chain is traversed per lap,
	// interleaved with warm traffic so repeats stay far apart.
	Repeats int

	// WarmPool and WarmPerLap control background traffic: a large pool of
	// chains traversed round-robin, WarmPerLap per lap. Warm chains are
	// individually too cold to pass the heat threshold but collectively
	// push hot-chain reuse distances past L2.
	WarmPool   int
	WarmPerLap int

	// ArithPerRef is the compute (cycles) between consecutive references —
	// the memory-boundedness dial.
	ArithPerRef int64

	// Sequential lays hot chains out in traversal order, contiguous
	// (parser). Otherwise objects are shuffled with a one-block gap.
	Sequential bool

	// HotProcs is the number of traversal procedures the hot chains are
	// distributed over (Table 2's "procedures modified").
	HotProcs int

	// SharedHeads groups this many chains behind a common sentinel object
	// whose reference begins each of their traversals. Streams in a group
	// are therefore ambiguous at their first reference and only
	// disambiguate at the second — the reason the paper's prefix length of
	// 1 "may hurt prefetching accuracy" while 2 suffices (§1, §4.3).
	// Values below 2 disable sharing.
	SharedHeads int

	// Phases is the number of distinct hot-chain sets; PhaseBlocks is how
	// many phase blocks execute (rotating through the sets), and
	// LapsPerBlock is the laps per block.
	Phases       int
	PhaseBlocks  int
	LapsPerBlock int
}

// RefsPerLap estimates the data references one lap performs.
func (p Params) RefsPerLap() int {
	perEntry := p.ChainLen + 2 // ring node + head + chase
	if p.SharedHeads >= 2 {
		perEntry += 2 // sentinel pointer + sentinel reference
	}
	return p.HotChains*p.Repeats*perEntry + p.WarmPerLap*perEntry
}

// Instance is a built benchmark: a program generator plus the initial heap
// image shared by all machines built from it.
type Instance struct {
	Params Params
	image  []uint64
	words  int
	build  func(instrument bool) *machine.Program
}

// NewMachine builds a fresh machine running the benchmark. Each call
// constructs an independent program (instrumented or not) over an identical
// initial heap, so baseline and optimized runs are directly comparable.
func (in *Instance) NewMachine(cache memsim.Config, instrument bool) *machine.Machine {
	m := machine.New(in.build(instrument), in.words, cache)
	copy(m.Mem, in.image)
	return m
}

// TotalLaps returns the number of laps the benchmark executes.
func (in *Instance) TotalLaps() int {
	return in.Params.PhaseBlocks * in.Params.LapsPerBlock
}

// cursorBase is where the per-procedure schedule ring cursors live; the
// arena starts above them.
const (
	cursorBase = 16
	arenaStart = 1024
	nodeWords  = 4 // 32 bytes: one object per cache block
	ringWords  = 3 // ring node: {next, chainHead, sentinel}
)

// Build generates the benchmark described by p.
func Build(p Params) *Instance {
	if p.Phases < 1 {
		p.Phases = 1
	}
	if p.Repeats < 1 {
		p.Repeats = 1
	}
	if p.HotProcs < 1 {
		p.HotProcs = 1
	}

	// ---- Heap planning ------------------------------------------------
	totalHot := p.Phases * p.HotChains
	totalChains := totalHot + p.WarmPool
	const schedRev = 37 // must match schedRevLaps below
	need := uint64(totalChains)*uint64(p.ChainLen+1)*uint64(nodeWords*8) +
		uint64(totalHot*p.Repeats*schedRev+p.WarmPool)*ringWords*8 +
		arenaStart + 65536
	words := int(need / 8)

	img := make([]uint64, words)
	arena := heap.NewArena(img, arenaStart)
	// Different inputs see different heap offsets (allocations preceding
	// the structures vary with the input), so concrete addresses differ
	// across seeds even for sequentially-allocated structures.
	arena.Skip(uint64(p.Seed%97)*40 + 8)

	// Allocate every chain node. Scattered benchmarks interleave ALL nodes
	// of all chains in one global shuffled order, so physically adjacent
	// blocks belong to unrelated chains and sequential prefetching fetches
	// garbage. Parser's hot chains are instead laid out contiguously in
	// traversal order (sequentially allocated hot data streams, §4.3);
	// only its warm pool is interleaved.
	nodeAddrs := make([][]uint64, totalChains)
	for c := range nodeAddrs {
		nodeAddrs[c] = make([]uint64, p.ChainLen)
	}
	seqChains := 0
	if p.Sequential {
		seqChains = totalHot
		for c := 0; c < totalHot; c++ {
			for i := 0; i < p.ChainLen; i++ {
				nodeAddrs[c][i] = arena.AllocWords(nodeWords)
			}
		}
	}
	scattered := (totalChains - seqChains) * p.ChainLen
	perm := heap.ShuffledPerm(scattered, p.Seed+7919)
	slots := make([]uint64, scattered)
	for i := range slots {
		slots[i] = arena.AllocWords(nodeWords)
	}
	for i, pi := range perm {
		c := seqChains + i/p.ChainLen
		nodeAddrs[c][i%p.ChainLen] = slots[pi]
	}
	// Link each chain in logical order, nil-terminated (next at offset 0).
	for c := 0; c < totalChains; c++ {
		for i := 0; i < p.ChainLen; i++ {
			next := uint64(0)
			if i+1 < p.ChainLen {
				next = nodeAddrs[c][i+1]
			}
			arena.Write(nodeAddrs[c][i], next)
		}
	}
	warmHeads := make([]uint64, p.WarmPool)
	for i := range warmHeads {
		warmHeads[i] = nodeAddrs[totalHot+i][0]
	}

	// Sentinel objects: chains in the same SharedHeads group begin every
	// traversal with a reference to the group's shared sentinel, so their
	// streams collide on the first reference and disambiguate on the
	// second. Groups are formed within each traversal procedure (below for
	// hot chains, here for the warm pool), because ambiguity requires the
	// shared reference to come from the same instruction.
	sentinelOf := make([]uint64, totalChains)
	newSentinel := func(tag int) uint64 {
		s := arena.AllocWords(nodeWords)
		arena.Write(s, uint64(tag)) // arbitrary payload
		return s
	}
	if p.SharedHeads >= 2 {
		var current uint64
		for i := 0; i < p.WarmPool; i++ {
			if i%p.SharedHeads == 0 {
				current = newSentinel(totalHot + i)
			}
			sentinelOf[totalHot+i] = current
		}
	}

	// mkRing builds a circular schedule of chain heads (with their group
	// sentinels) and stores its first node in the cursor slot. Walkers
	// persist their position there, so the schedule rotates across calls.
	mkRing := func(heads, sentinels []uint64, cursorSlot uint64) {
		nodes := arena.Ring(len(heads), ringWords, 0, nil, 0)
		for i, n := range nodes {
			arena.Write(n+8, heads[i])
			if sentinels != nil {
				arena.Write(n+16, sentinels[i])
			}
		}
		arena.Write(cursorSlot, nodes[0])
	}

	// Hot schedule rings: one per (phase, proc). Each ring is a long
	// shuffled schedule — every chain of the proc appears Repeats times per
	// lap on average, and the ring only wraps every schedRevLaps laps.
	// Because every ring node has a distinct address and chain neighbors
	// are randomized over the whole revolution, no super-sequence spanning
	// two chains ever repeats within a profiling window: the repeating
	// units Sequitur isolates are exactly the per-chain chase sequences,
	// the benchmark's hot data streams.
	const schedRevLaps = 37
	cursorSlot := func(idx int) uint64 { return cursorBase + uint64(idx)*8 }
	type hotProc struct {
		cursor  uint64
		perCall int
	}
	hotProcs := make([][]hotProc, p.Phases)
	slot := 0
	for ph := 0; ph < p.Phases; ph++ {
		base := ph * p.HotChains
		hotProcs[ph] = make([]hotProc, p.HotProcs)
		for proc := 0; proc < p.HotProcs; proc++ {
			var mine []int // global chain indices owned by this proc
			for c := proc; c < p.HotChains; c += p.HotProcs {
				mine = append(mine, base+c)
			}
			if p.SharedHeads >= 2 {
				// Sentinel groups within this proc's chain set.
				var current uint64
				for j, c := range mine {
					if j%p.SharedHeads == 0 {
						current = newSentinel(c)
					}
					sentinelOf[c] = current
				}
			}
			sched := make([]int, 0, len(mine)*p.Repeats*schedRevLaps)
			for r := 0; r < p.Repeats*schedRevLaps; r++ {
				sched = append(sched, mine...)
			}
			perm := heap.ShuffledPerm(len(sched), p.Seed+int64(ph*1000+proc)*31337)
			heads := make([]uint64, len(sched))
			sentinels := make([]uint64, len(sched))
			for i, pi := range perm {
				heads[i] = nodeAddrs[sched[pi]][0]
				sentinels[i] = sentinelOf[sched[pi]]
			}
			cs := cursorSlot(slot)
			slot++
			mkRing(heads, sentinels, cs)
			hotProcs[ph][proc] = hotProc{cursor: cs, perCall: len(mine)}
		}
	}

	// Warm ring: the whole pool in shuffled order.
	warmCursor := cursorSlot(slot)
	slot++
	{
		perm := heap.ShuffledPerm(len(warmHeads), p.Seed+424243)
		heads := make([]uint64, len(warmHeads))
		sentinels := make([]uint64, len(warmHeads))
		for i, pi := range perm {
			heads[i] = warmHeads[pi]
			sentinels[i] = sentinelOf[totalHot+pi]
		}
		mkRing(heads, sentinels, warmCursor)
	}

	// ---- Program ------------------------------------------------------
	// emitWalker produces a procedure that advances a schedule ring by
	// `entries` nodes, chasing each node's chain with straight-line loads
	// (one pc per reference, as in the paper's hot data streams).
	emitWalker := func(b *machine.Builder, name string, cursor uint64, entries, chainLen int, arith int64) {
		pb := b.Proc(name)
		pb.Const(2, int64(cursor)).
			Load(3, 2, 0). // ring cursor
			Const(4, int64(entries)).
			Label("ring").
			Load(5, 3, 8) // chain head from ring node
		if p.SharedHeads >= 2 {
			// Every traversal starts at the group's shared sentinel — the
			// first reference of the chain's hot data stream. It must
			// immediately precede the chase so Sequitur folds it into the
			// stream's repeating word.
			pb.Load(6, 3, 16) // sentinel pointer from ring node
			pb.Load(6, 6, 0)  // sentinel reference (shared within the group)
		}
		for n := 0; n < chainLen; n++ {
			pb.Load(5, 5, 0) // r5 = r5->next
			if arith > 0 {
				pb.Arith(arith)
			}
		}
		pb.Load(3, 3, 0). // advance ring
					Loop(4, "ring").
					Store(2, 0, 3). // persist cursor
					Ret()
	}

	buildProg := func(instrument bool) *machine.Program {
		b := machine.NewBuilder()
		for ph := 0; ph < p.Phases; ph++ {
			for proc := 0; proc < p.HotProcs; proc++ {
				hp := hotProcs[ph][proc]
				emitWalker(b, fmt.Sprintf("work_p%d_%d", ph, proc),
					hp.cursor, hp.perCall, p.ChainLen, p.ArithPerRef)
			}
		}
		warmSlice := p.WarmPerLap / p.Repeats
		if warmSlice < 1 {
			warmSlice = 1
		}
		emitWalker(b, "warm_sweep", warmCursor, warmSlice, p.ChainLen, 1)

		for ph := 0; ph < p.Phases; ph++ {
			lb := b.Proc(fmt.Sprintf("lap_p%d", ph))
			for r := 0; r < p.Repeats; r++ {
				for proc := 0; proc < p.HotProcs; proc++ {
					lb.Call(fmt.Sprintf("work_p%d_%d", ph, proc))
				}
				lb.Call("warm_sweep")
			}
			lb.Ret()
		}

		mb := b.Proc("main")
		for blk := 0; blk < p.PhaseBlocks; blk++ {
			label := fmt.Sprintf("blk%d", blk)
			mb.Const(1, int64(p.LapsPerBlock)).
				Label(label).
				Call(fmt.Sprintf("lap_p%d", blk%p.Phases)).
				Loop(1, label)
		}
		mb.Ret()

		prog, err := b.Build("main")
		if err != nil {
			panic("workload: " + err.Error()) // generator bug, not user input
		}
		if instrument {
			vulcan.Instrument(prog)
		}
		return prog
	}

	return &Instance{Params: p, image: img, words: words, build: buildProg}
}
