package workload

import (
	"fmt"

	"hotprefetch/internal/heap"
	"hotprefetch/internal/machine"
	"hotprefetch/internal/vulcan"
)

// Extended workloads: two additional pointer-chasing program families with
// access shapes different from the catalog's schedule-ring walkers, in the
// style of the Olden suite the prefetching literature evaluates on. They
// are not part of the paper's Table 2 suite; they exercise the system on
// hierarchical and gather-style traversals and back the extended
// integration tests.

// HealthParams sizes the hierarchical workload: a three-level hierarchy
// (hospital -> wards -> patient lists), fully re-traversed every lap.
type HealthParams struct {
	Seed     int64
	Wards    int // second-level nodes
	Patients int // list length per ward
	Laps     int
	Arith    int64
}

// DefaultHealth returns a miss-heavy configuration.
func DefaultHealth() HealthParams {
	return HealthParams{Seed: 17, Wards: 24, Patients: 18, Laps: 2500, Arith: 2}
}

// BuildHealth generates the hierarchical workload. Every lap walks:
// hospital header -> ward (via the ward table) -> ward header -> patient
// chain. Each ward's walk is one hot data stream.
func BuildHealth(p HealthParams) *Instance {
	const wardWords = 4 // {patientsHead, pad...}
	need := arenaStart + 65536 +
		uint64(p.Wards)*(8 /*table*/ +wardWords*8) +
		uint64(p.Wards*p.Patients)*nodeWords*8
	words := int(need / 8)
	img := make([]uint64, words)
	arena := heap.NewArena(img, arenaStart)

	// Patient nodes globally interleaved so layout is scattered.
	addrs := make([][]uint64, p.Wards)
	perm := heap.ShuffledPerm(p.Wards*p.Patients, p.Seed)
	slots := make([]uint64, p.Wards*p.Patients)
	for i := range slots {
		slots[i] = arena.AllocWords(nodeWords)
	}
	for i, pi := range perm {
		w := i / p.Patients
		if addrs[w] == nil {
			addrs[w] = make([]uint64, 0, p.Patients)
		}
		addrs[w] = append(addrs[w], slots[pi])
	}
	wardHeaders := make([]uint64, p.Wards)
	for w := 0; w < p.Wards; w++ {
		for i := 0; i < p.Patients; i++ {
			next := uint64(0)
			if i+1 < p.Patients {
				next = addrs[w][i+1]
			}
			arena.Write(addrs[w][i], next)
		}
		wardHeaders[w] = arena.AllocWords(wardWords)
		arena.Write(wardHeaders[w], addrs[w][0]) // ward.patients
	}
	wardTable := arena.Table(wardHeaders)
	const hospitalSlot = 16
	arena.Write(hospitalSlot, wardTable)

	build := func(instrument bool) *machine.Program {
		b := machine.NewBuilder()
		b.Proc("main").
			Const(1, int64(p.Laps)).
			Label("lap").
			Call("visit_hospital").
			Loop(1, "lap").
			Ret()
		vb := b.Proc("visit_hospital")
		vb.Const(2, hospitalSlot).
			Load(3, 2, 0). // ward table base
			Const(4, int64(p.Wards)).
			Label("ward").
			Load(5, 3, 0). // ward header pointer (table entry)
			Load(6, 5, 0)  // ward.patients
		for i := 0; i < p.Patients; i++ {
			vb.Load(6, 6, 0) // patient chain
			if p.Arith > 0 {
				vb.Arith(p.Arith)
			}
		}
		vb.AddImm(3, 3, 8). // next table entry
					Loop(4, "ward").
					Ret()
		prog, err := b.Build("main")
		if err != nil {
			panic("workload: health: " + err.Error())
		}
		if instrument {
			vulcan.Instrument(prog)
		}
		return prog
	}
	return &Instance{
		Params: Params{Name: "health", Seed: p.Seed},
		image:  img, words: words, build: build,
	}
}

// Em3dParams sizes the bipartite gather workload: eNodes each hold Degree
// pointers into the hNodes set; every iteration gathers each E node's
// dependencies.
type Em3dParams struct {
	Seed   int64
	ENodes int
	HNodes int
	Degree int
	Iters  int
	Arith  int64
}

// DefaultEm3d returns a miss-heavy configuration.
func DefaultEm3d() Em3dParams {
	return Em3dParams{Seed: 23, ENodes: 40, HNodes: 2600, Degree: 14, Iters: 2200, Arith: 2}
}

// BuildEm3d generates the bipartite workload. E nodes are chained; each E
// node embeds Degree pointers to pseudo-randomly chosen H nodes. An E
// node's gather — its header plus its H dependencies in order — is one hot
// data stream.
func BuildEm3d(p Em3dParams) *Instance {
	eWords := 1 + p.Degree // {next, deps...}
	need := arenaStart + 65536 +
		uint64(p.ENodes)*uint64(eWords)*8 +
		uint64(p.HNodes)*nodeWords*8
	words := int(need / 8)
	img := make([]uint64, words)
	arena := heap.NewArena(img, arenaStart)

	hAddrs := make([]uint64, p.HNodes)
	for i := range hAddrs {
		hAddrs[i] = arena.AllocWords(nodeWords)
		arena.Write(hAddrs[i], uint64(i))
	}
	hPerm := heap.ShuffledPerm(p.HNodes, p.Seed+1)

	eAddrs := make([]uint64, p.ENodes)
	for i := range eAddrs {
		eAddrs[i] = arena.AllocWords(eWords)
	}
	pick := 0
	for i, e := range eAddrs {
		next := uint64(0)
		if i+1 < p.ENodes {
			next = eAddrs[i+1]
		}
		arena.Write(e, next)
		for d := 0; d < p.Degree; d++ {
			arena.Write(e+uint64(1+d)*8, hAddrs[hPerm[pick%len(hPerm)]])
			pick++
		}
	}
	const headSlot = 16
	arena.Write(headSlot, eAddrs[0])

	build := func(instrument bool) *machine.Program {
		b := machine.NewBuilder()
		b.Proc("main").
			Const(1, int64(p.Iters)).
			Label("iter").
			Call("compute").
			Loop(1, "iter").
			Ret()
		cb := b.Proc("compute")
		cb.Const(2, headSlot).
			Load(3, 2, 0). // first E node
			Label("enode")
		for d := 0; d < p.Degree; d++ {
			cb.Load(4, 3, int64(1+d)*8) // dep pointer
			cb.Load(5, 4, 0)            // H node value
			if p.Arith > 0 {
				cb.Arith(p.Arith)
			}
		}
		cb.Load(3, 3, 0). // next E node
					Bnez(3, "enode").
					Ret()
		prog, err := b.Build("main")
		if err != nil {
			panic("workload: em3d: " + err.Error())
		}
		if instrument {
			vulcan.Instrument(prog)
		}
		return prog
	}
	return &Instance{
		Params: Params{Name: "em3d", Seed: p.Seed},
		image:  img, words: words, build: build,
	}
}

// ExtendedNames lists the extended workload family names.
func ExtendedNames() []string { return []string{"health", "em3d"} }

// BuildExtended builds an extended workload by name.
func BuildExtended(name string) (*Instance, error) {
	switch name {
	case "health":
		return BuildHealth(DefaultHealth()), nil
	case "em3d":
		return BuildEm3d(DefaultEm3d()), nil
	}
	return nil, fmt.Errorf("workload: unknown extended workload %q", name)
}
