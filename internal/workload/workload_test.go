package workload

import (
	"testing"

	"hotprefetch/internal/burst"
	"hotprefetch/internal/hotds"
	"hotprefetch/internal/opt"
)

// tiny returns a quick-to-run parameter set for structural tests.
func tiny() Params {
	return Params{
		Name: "tiny", Seed: 1,
		HotChains: 8, ChainLen: 10, Repeats: 2,
		WarmPool: 40, WarmPerLap: 10,
		ArithPerRef: 1, HotProcs: 3,
		Phases: 2, PhaseBlocks: 2, LapsPerBlock: 5,
	}
}

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 6 {
		t.Fatalf("catalog has %d benchmarks, want 6", len(cat))
	}
	want := []string{"vpr", "mcf", "twolf", "parser", "vortex", "boxsim"}
	for i, p := range cat {
		if p.Name != want[i] {
			t.Errorf("catalog[%d] = %s, want %s (paper figure order)", i, p.Name, want[i])
		}
		if p.HotChains < 10 || p.HotChains > 50 {
			t.Errorf("%s: HotChains %d outside Table 2 stream range", p.Name, p.HotChains)
		}
		if p.HotProcs < 6 || p.HotProcs > 12 {
			t.Errorf("%s: HotProcs %d outside Table 2 procedure range", p.Name, p.HotProcs)
		}
		if p.ChainLen <= 10 {
			t.Errorf("%s: ChainLen %d must exceed the 10-unique-refs threshold", p.Name, p.ChainLen)
		}
	}
	if _, ok := ByName("parser"); !ok {
		t.Error("ByName must find parser")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName must reject unknown names")
	}
	seq := 0
	for _, p := range cat {
		if p.Sequential {
			seq++
			if p.Name != "parser" {
				t.Errorf("%s should not be sequential", p.Name)
			}
		}
	}
	if seq != 1 {
		t.Error("exactly parser must have sequential layout")
	}
}

func TestInstanceRunsToCompletion(t *testing.T) {
	inst := Build(tiny())
	m := inst.NewMachine(CacheConfig(), false)
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Refs == 0 {
		t.Fatal("workload performed no references")
	}
	// The workload must be miss-heavy: pointer chasing across a working
	// set beyond L2.
	if ratio := m.Cache.Stats().MissRatio(); ratio < 0.3 {
		t.Errorf("L1 miss ratio %.2f too low for a memory-bound workload", ratio)
	}
	if m.Cache.Stats().L2Misses == 0 {
		t.Error("workload should miss in L2")
	}
}

func TestRefsPerLapEstimate(t *testing.T) {
	p := tiny()
	inst := Build(p)
	m := inst.NewMachine(CacheConfig(), false)
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	est := uint64(p.RefsPerLap() * inst.TotalLaps())
	got := m.Stats.Refs
	// The estimate ignores cursor loads and rounding; demand 25% accuracy.
	if got < est*3/4 || got > est*5/4 {
		t.Errorf("refs = %d, estimate %d diverges beyond 25%%", got, est)
	}
}

func TestDeterministicImageAndExecution(t *testing.T) {
	a := Build(tiny()).NewMachine(CacheConfig(), false)
	b := Build(tiny()).NewMachine(CacheConfig(), false)
	if err := a.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if err := b.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Stats != b.Stats {
		t.Error("same params must give identical executions")
	}
}

func TestInstrumentedMatchesBaselineSemantics(t *testing.T) {
	inst := Build(tiny())
	base := inst.NewMachine(CacheConfig(), false)
	if err := base.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	instr := inst.NewMachine(CacheConfig(), true)
	// nil runtime: checks cost nothing, checking version runs throughout.
	if err := instr.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if base.Stats.Refs != instr.Stats.Refs {
		t.Errorf("instrumentation changed refs: %d vs %d", base.Stats.Refs, instr.Stats.Refs)
	}
}

func TestMachinesFromSameInstanceAreIndependent(t *testing.T) {
	inst := Build(tiny())
	m1 := inst.NewMachine(CacheConfig(), false)
	if err := m1.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	// m1 mutated its heap (schedule cursors); a second machine must start
	// from the pristine image.
	m2 := inst.NewMachine(CacheConfig(), false)
	if err := m2.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m1.Cycles != m2.Cycles {
		t.Error("second machine saw a dirty heap image")
	}
}

func TestHotProcsAppearInProgram(t *testing.T) {
	p := tiny()
	prog := Build(p).NewMachine(CacheConfig(), false).Prog
	for ph := 0; ph < p.Phases; ph++ {
		for i := 0; i < p.HotProcs; i++ {
			name := "work_p" + string(rune('0'+ph)) + "_" + string(rune('0'+i))
			if prog.ProcIndex(name) < 0 {
				t.Errorf("missing procedure %s", name)
			}
		}
	}
	if prog.ProcIndex("warm_sweep") < 0 {
		t.Error("missing warm_sweep")
	}
}

// TestEndToEndPrefetchingWin runs a scaled-down benchmark through the full
// optimizer and asserts a net win, tying workload and optimizer together.
func TestEndToEndPrefetchingWin(t *testing.T) {
	p := Params{
		Name: "e2e", Seed: 3,
		HotChains: 12, ChainLen: 14, Repeats: 3,
		WarmPool: 120, WarmPerLap: 40,
		ArithPerRef: 1, HotProcs: 4,
		Phases: 1, PhaseBlocks: 1, LapsPerBlock: 700,
	}
	inst := Build(p)
	base, err := opt.RunBaseline(inst.NewMachine(CacheConfig(), false))
	if err != nil {
		t.Fatal(err)
	}
	cfg := opt.Config{
		Mode: opt.ModeDynPref,
		Burst: burst.Config{
			NCheck0: 380, NInstr0: 20, NAwake0: 25, NHibernate0: 100, CheckCost: 25,
		},
		Analysis: hotds.Config{
			MinLen: 10, MaxLen: 100, MinUnique: 10, MinCoverage: 0.01, MaxStreams: 100,
		},
		HeadLen: 2,
		Costs:   opt.DefaultCostModel(),
	}
	res, err := opt.Run(inst.NewMachine(CacheConfig(), true), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OptCycles() == 0 {
		t.Fatal("no optimization cycle completed")
	}
	if res.ExecCycles >= base {
		t.Errorf("dyn-pref %d should beat baseline %d", res.ExecCycles, base)
	}
}

// TestCatalogDesignRules checks the analytic properties DESIGN.md derives
// for every catalog benchmark: each hot chain covers at least the 1% heat
// threshold of the trace, and the distinct blocks touched between a chain's
// repeats exceed the L2 capacity so traversals miss without prefetching.
func TestCatalogDesignRules(t *testing.T) {
	cache := CacheConfig()
	l2Blocks := cache.L2Size / cache.BlockSize
	for _, p := range Catalog() {
		refsPerLap := float64(p.RefsPerLap())
		coverage := float64(p.ChainLen*p.Repeats) / refsPerLap
		if coverage < 0.01 {
			t.Errorf("%s: per-chain coverage %.4f below the 1%% threshold", p.Name, coverage)
		}
		// Spacing between a chain's repeats, in chase-reference blocks.
		spacing := refsPerLap / float64(p.Repeats)
		perEntry := float64(p.ChainLen + 2)
		distinctBlocks := spacing * float64(p.ChainLen) / perEntry
		// vortex is deliberately the least memory-bound benchmark; every
		// other benchmark's spacing must reach the L2 capacity. The
		// estimate counts only chase references (warm and sentinel refs
		// also touch distinct blocks), so allow a 5% underestimate.
		if p.Name != "vortex" && distinctBlocks < 0.95*float64(l2Blocks) {
			t.Errorf("%s: repeat spacing ~%.0f blocks below L2 capacity %d",
				p.Name, distinctBlocks, l2Blocks)
		}
		// Streams must be long enough for the >10-unique-refs threshold
		// and short enough that tails fit comfortably in L2.
		if p.ChainLen <= 10 || p.ChainLen > l2Blocks/4 {
			t.Errorf("%s: ChainLen %d outside the workable stream range", p.Name, p.ChainLen)
		}
	}
}
