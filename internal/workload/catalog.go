package workload

// The catalog's six benchmarks mirror the paper's §4.1 suite. Parameters
// are chosen so that, under the scaled cache of CacheConfig and the
// experiment harness's sampling settings, each benchmark reproduces its
// row of the paper's Table 2 in shape: hot stream counts (paper: vpr 41,
// mcf 37, twolf 25, parser 21, vortex 14, boxsim 23), procedures modified
// (6-12), and the relative ordering of optimization cycle counts (twolf
// most, vortex fewest). Run lengths are scaled so a full suite simulates in
// seconds rather than the paper's minutes of native execution.

// Vpr models SPECint2000 175.vpr (place and route): many hot nets traversed
// during placement, two alternating placement/routing phases, very memory
// bound. The paper's biggest winner (19%).
func Vpr() Params {
	return Params{
		Name: "vpr", Seed: 101,
		HotChains: 45, ChainLen: 22, Repeats: 3,
		WarmPool: 320, WarmPerLap: 60,
		ArithPerRef: 1, HotProcs: 7, SharedHeads: 3,
		Phases: 2, PhaseBlocks: 4, LapsPerBlock: 450,
	}
}

// Mcf models SPECint2000 181.mcf (network simplex): long arc-list chains
// walked repeatedly over a working set far beyond L2, single phase, the
// most purely pointer-bound benchmark.
func Mcf() Params {
	return Params{
		Name: "mcf", Seed: 202,
		HotChains: 40, ChainLen: 18, Repeats: 3,
		WarmPool: 300, WarmPerLap: 48,
		ArithPerRef: 5, HotProcs: 6, SharedHeads: 3,
		Phases: 1, PhaseBlocks: 1, LapsPerBlock: 3100,
	}
}

// Twolf models SPECint2000 300.twolf (placement via simulated annealing):
// many procedures touch the cell structures, three annealing phases, the
// longest-running benchmark (most optimization cycles in Table 2).
func Twolf() Params {
	return Params{
		Name: "twolf", Seed: 303,
		HotChains: 28, ChainLen: 16, Repeats: 3,
		WarmPool: 500, WarmPerLap: 95,
		ArithPerRef: 2, HotProcs: 11, SharedHeads: 4,
		Phases: 3, PhaseBlocks: 10, LapsPerBlock: 500,
	}
}

// Parser models SPECint2000 197.parser (link grammar parser): dictionary
// chains allocated in traversal order — the one benchmark whose hot data
// streams are sequentially allocated, so the Seq-pref baseline helps it
// (§4.3). Short run (4 cycles in Table 2).
func Parser() Params {
	return Params{
		Name: "parser", Seed: 404,
		HotChains: 22, ChainLen: 15, Repeats: 3,
		WarmPool: 500, WarmPerLap: 163,
		ArithPerRef: 1, Sequential: true, HotProcs: 9, SharedHeads: 3,
		Phases: 1, PhaseBlocks: 1, LapsPerBlock: 800,
	}
}

// Vortex models SPECint2000 255.vortex (object database): object graphs
// traversed through many procedures with substantial compute per
// reference — the least memory-bound benchmark and the paper's smallest
// winner (5%), with the fewest optimization cycles (3).
func Vortex() Params {
	return Params{
		Name: "vortex", Seed: 505,
		HotChains: 15, ChainLen: 18, Repeats: 3,
		WarmPool: 220, WarmPerLap: 45,
		ArithPerRef: 4, HotProcs: 12, SharedHeads: 3,
		Phases: 1, PhaseBlocks: 1, LapsPerBlock: 1400,
	}
}

// Boxsim models the paper's graphics application simulating 1000 bouncing
// spheres in a box: spatial-partition cell lists retraversed each frame,
// with alternating integrate/collide phases.
func Boxsim() Params {
	return Params{
		Name: "boxsim", Seed: 606,
		HotChains: 24, ChainLen: 16, Repeats: 3,
		WarmPool: 520, WarmPerLap: 100,
		ArithPerRef: 2, HotProcs: 7, SharedHeads: 3,
		Phases: 2, PhaseBlocks: 4, LapsPerBlock: 480,
	}
}

// Catalog returns the full benchmark suite in the paper's Figure 11/12
// order: vpr, mcf, twolf, parser, vortex, boxsim.
func Catalog() []Params {
	return []Params{Vpr(), Mcf(), Twolf(), Parser(), Vortex(), Boxsim()}
}

// ByName returns the named benchmark's parameters.
func ByName(name string) (Params, bool) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, true
		}
	}
	return Params{}, false
}
