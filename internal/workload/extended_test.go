package workload

import (
	"testing"

	"hotprefetch/internal/burst"
	"hotprefetch/internal/hotds"
	"hotprefetch/internal/opt"
)

func extendedOptConfig() opt.Config {
	return opt.Config{
		Mode: opt.ModeDynPref,
		Burst: burst.Config{
			NCheck0: 380, NInstr0: 20, NAwake0: 25, NHibernate0: 100, CheckCost: 25,
		},
		Analysis: hotds.Config{
			// MaxLen stays near the L1 capacity in blocks (64): the
			// traversals fuse into long sequences, and prefetching a tail
			// much larger than L1 evicts its own fills.
			MinLen: 10, MaxLen: 60, MinUnique: 10, MinCoverage: 0.01, MaxStreams: 100,
		},
		HeadLen: 2,
		Costs:   opt.DefaultCostModel(),
	}
}

func TestBuildExtendedNames(t *testing.T) {
	for _, name := range ExtendedNames() {
		inst, err := BuildExtended(name)
		if err != nil {
			t.Fatal(err)
		}
		if inst.Params.Name != name {
			t.Errorf("instance name = %q, want %q", inst.Params.Name, name)
		}
	}
	if _, err := BuildExtended("nope"); err == nil {
		t.Error("unknown name must error")
	}
}

func TestHealthRunsAndMisses(t *testing.T) {
	p := DefaultHealth()
	p.Laps = 60
	inst := BuildHealth(p)
	m := inst.NewMachine(CacheConfig(), false)
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	// Per lap: one hospital-slot load plus, per ward, a table entry, the
	// ward header, and the patient chain.
	wantRefs := uint64(p.Laps) * (1 + uint64(p.Wards)*uint64(p.Patients+2))
	if m.Stats.Refs != wantRefs {
		t.Errorf("refs = %d, want %d", m.Stats.Refs, wantRefs)
	}
	if m.Cache.Stats().MissRatio() < 0.3 {
		t.Errorf("health should be miss-heavy, ratio %.2f", m.Cache.Stats().MissRatio())
	}
}

func TestEm3dRunsAndMisses(t *testing.T) {
	p := DefaultEm3d()
	p.Iters = 60
	inst := BuildEm3d(p)
	m := inst.NewMachine(CacheConfig(), false)
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Refs == 0 || m.Cache.Stats().MissRatio() < 0.3 {
		t.Errorf("em3d should be a miss-heavy gather: refs=%d ratio=%.2f",
			m.Stats.Refs, m.Cache.Stats().MissRatio())
	}
}

// TestExtendedWorkloadsWin runs both extended families through the full
// dynamic prefetching pipeline: the system must detect their streams and
// produce a net win on access shapes it was not calibrated for.
func TestExtendedWorkloadsWin(t *testing.T) {
	if testing.Short() {
		t.Skip("full optimizer runs")
	}
	for _, name := range ExtendedNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			inst, err := BuildExtended(name)
			if err != nil {
				t.Fatal(err)
			}
			base, err := opt.RunBaseline(inst.NewMachine(CacheConfig(), false))
			if err != nil {
				t.Fatal(err)
			}
			res, err := opt.Run(inst.NewMachine(CacheConfig(), true), extendedOptConfig())
			if err != nil {
				t.Fatal(err)
			}
			pct := 100 * (float64(res.ExecCycles)/float64(base) - 1)
			avg := res.AvgPerCycle()
			t.Logf("%s: %+.1f%% cycles=%d streams=%d procs=%d useful=%d",
				name, pct, res.OptCycles(), avg.HotStreams, avg.ProcsModified,
				res.Cache.UsefulPrefetches)
			if res.OptCycles() == 0 || avg.HotStreams == 0 {
				t.Fatalf("optimizer idle on %s", name)
			}
			if res.ExecCycles >= base {
				t.Errorf("%s: no win (%d vs %d)", name, res.ExecCycles, base)
			}
		})
	}
}
