// Package markov implements a Markov-chain next-address predictor in the
// style of Pangloss: hot-stream training builds order-1 and order-2 address
// transition tables whose candidate lists are ranked by transition
// probability, and observation walks the tables with an order-2 probe
// falling back to order-1.
//
// Where the DFSM (internal/dfsm) matches exact stream prefixes and prefetches
// the suffix, the Markov predictor generalizes: any address pair seen during
// training predicts its likely successors regardless of which hot stream it
// came from, trading the DFSM's precision for coverage of interleavings the
// grammar analysis never surfaced as a single stream.
//
// All ranking happens at Train time — candidate lists are precomputed,
// probability-filtered, and stored as immutable slices — so Observe is a
// map probe or two and allocates nothing. The returned prefetch slice
// aliases the trained tables and must not be mutated.
package markov

import (
	"fmt"
	"sort"

	"hotprefetch/internal/ref"
)

// Stream is one hot data stream used for training: an address sequence and
// its heat (total bytes touched, used as the transition weight so hot
// streams dominate candidate ranking).
type Stream struct {
	Refs []ref.Ref
	Heat uint64
}

// Config controls table order and candidate ranking.
type Config struct {
	// Order is the maximum context length: 1 uses only the last address,
	// 2 (the default) probes the last two addresses first and falls back
	// to order-1 on a miss.
	Order int
	// Fanout caps the number of addresses predicted per transition
	// (default 2). Candidates beyond the cap are dropped in rank order.
	Fanout int
	// MinProb drops candidates whose heat-weighted transition probability
	// falls below this fraction (default 0.2): a successor seen on a cold
	// minority path does not earn a prefetch.
	MinProb float64
}

func (c Config) withDefaults() Config {
	if c.Order == 0 {
		c.Order = 2
	}
	if c.Fanout == 0 {
		c.Fanout = 2
	}
	if c.MinProb == 0 {
		c.MinProb = 0.2
	}
	return c
}

func (c Config) validate() error {
	if c.Order < 1 || c.Order > 2 {
		return fmt.Errorf("markov: order must be 1 or 2, got %d", c.Order)
	}
	if c.Fanout < 1 {
		return fmt.Errorf("markov: fanout must be >= 1, got %d", c.Fanout)
	}
	if c.MinProb < 0 || c.MinProb > 1 {
		return fmt.Errorf("markov: min probability must be in [0,1], got %g", c.MinProb)
	}
	return nil
}

type pair struct{ a, b uint64 }

// Predictor is a trained Markov predictor. It is not safe for concurrent
// use; wrap it (see the root package's ConcurrentMatcher) to share it.
type Predictor struct {
	cfg Config

	// Ranked prediction lists, frozen at Train time.
	t1 map[uint64][]uint64
	t2 map[pair][]uint64

	// Rolling context: the previously observed address (the order-2 probe
	// key is (last, current)).
	last uint64
	have int
}

// New trains a predictor on streams. An empty (or nil) stream set is valid
// and yields a pass-through predictor that predicts nothing — every
// observation costs one failed probe, mirroring the deoptimized DFSM.
func New(streams []Stream, cfg Config) (*Predictor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &Predictor{
		cfg: cfg,
		t1:  make(map[uint64][]uint64),
		t2:  make(map[pair][]uint64),
	}
	w1 := make(map[uint64]map[uint64]uint64)
	w2 := make(map[pair]map[uint64]uint64)
	for _, s := range streams {
		heat := s.Heat
		if heat == 0 {
			heat = 1
		}
		for i := 0; i+1 < len(s.Refs); i++ {
			next := s.Refs[i+1].Addr
			cur := s.Refs[i].Addr
			if next == cur {
				// A self-transition predicts the address just accessed —
				// it is already resident, so a prefetch would be pure
				// overhead. Skip it at training time.
				continue
			}
			addWeight(w1, cur, next, heat)
			if cfg.Order >= 2 && i >= 1 {
				k := pair{s.Refs[i-1].Addr, cur}
				m := w2[k]
				if m == nil {
					m = make(map[uint64]uint64)
					w2[k] = m
				}
				m[next] += heat
			}
		}
	}
	for ctx, m := range w1 {
		if l := rank(m, cfg); len(l) > 0 {
			p.t1[ctx] = l
		}
	}
	for ctx, m := range w2 {
		if l := rank(m, cfg); len(l) > 0 {
			p.t2[ctx] = l
		}
	}
	return p, nil
}

func addWeight(w map[uint64]map[uint64]uint64, ctx, next, heat uint64) {
	m := w[ctx]
	if m == nil {
		m = make(map[uint64]uint64)
		w[ctx] = m
	}
	m[next] += heat
}

// rank turns a weight map into a deterministic prediction list: candidates
// sorted by weight descending (ties broken by ascending address, so map
// iteration order never leaks into predictions), probability-filtered
// against the total, capped at Fanout.
func rank(m map[uint64]uint64, cfg Config) []uint64 {
	type cand struct {
		addr uint64
		w    uint64
	}
	var total uint64
	cands := make([]cand, 0, len(m))
	for a, w := range m {
		cands = append(cands, cand{a, w})
		total += w
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w > cands[j].w
		}
		return cands[i].addr < cands[j].addr
	})
	out := make([]uint64, 0, cfg.Fanout)
	for _, c := range cands {
		if len(out) == cfg.Fanout {
			break
		}
		if float64(c.w) < cfg.MinProb*float64(total) {
			break // sorted by weight: everything after is colder
		}
		out = append(out, c.addr)
	}
	return out
}

// Observe consumes one data reference and returns the addresses to prefetch
// plus the number of table probes performed (the detection-cost analogue of
// the DFSM's comparison count, always >= 1). The returned slice aliases the
// trained tables and must not be mutated.
func (p *Predictor) Observe(r ref.Ref) (prefetch []uint64, comparisons int) {
	a := r.Addr
	last, have := p.last, p.have
	p.last, p.have = a, 1
	if p.cfg.Order >= 2 && have >= 1 {
		comparisons++
		if l, ok := p.t2[pair{last, a}]; ok {
			return l, comparisons
		}
	}
	comparisons++
	if l, ok := p.t1[a]; ok {
		return l, comparisons
	}
	return nil, comparisons
}

// Reset clears the rolling context, returning the predictor to its
// post-Train start state. The transition tables are retained.
func (p *Predictor) Reset() {
	p.last, p.have = 0, 0
}

// Trained reports whether training produced any transitions.
func (p *Predictor) Trained() bool { return len(p.t1) > 0 || len(p.t2) > 0 }

// Transitions returns the number of distinct (context, prediction-list)
// entries across both table orders, for stats surfaces.
func (p *Predictor) Transitions() int { return len(p.t1) + len(p.t2) }
