package markov

import (
	"reflect"
	"testing"

	"hotprefetch/internal/ref"
)

func seq(addrs ...uint64) []ref.Ref {
	rs := make([]ref.Ref, len(addrs))
	for i, a := range addrs {
		rs[i] = ref.Ref{PC: i, Addr: a}
	}
	return rs
}

func observeAddrs(t *testing.T, p *Predictor, addrs ...uint64) (last []uint64, cmp int) {
	t.Helper()
	for _, a := range addrs {
		last, cmp = p.Observe(ref.Ref{Addr: a})
	}
	return last, cmp
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Order: 3},
		{Order: -1},
		{Fanout: -2},
		{MinProb: 1.5},
		{MinProb: -0.1},
	}
	for _, cfg := range cases {
		if _, err := New(nil, cfg); err == nil {
			t.Errorf("New(%+v): expected config error", cfg)
		}
	}
	if _, err := New(nil, Config{}); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
}

func TestUntrainedIsPassThrough(t *testing.T) {
	p, err := New(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Trained() {
		t.Fatal("empty training set reported trained")
	}
	for i, a := range []uint64{0x100, 0x200, 0x100} {
		pf, cmp := p.Observe(ref.Ref{Addr: a})
		if pf != nil {
			t.Fatalf("ref %d: untrained predictor prefetched %v", i, pf)
		}
		if cmp < 1 {
			t.Fatalf("ref %d: comparisons %d < 1", i, cmp)
		}
	}
}

func TestOrder1Prediction(t *testing.T) {
	p, err := New([]Stream{{Refs: seq(10, 20, 30), Heat: 5}}, Config{Order: 1})
	if err != nil {
		t.Fatal(err)
	}
	pf, cmp := p.Observe(ref.Ref{Addr: 10})
	if !reflect.DeepEqual(pf, []uint64{20}) {
		t.Fatalf("Observe(10) = %v, want [20]", pf)
	}
	if cmp != 1 {
		t.Fatalf("order-1 probe cost %d comparisons, want 1", cmp)
	}
	if pf, _ := p.Observe(ref.Ref{Addr: 99}); pf != nil {
		t.Fatalf("unknown address predicted %v", pf)
	}
	if p.Transitions() != 2 { // 10->20, 20->30
		t.Fatalf("Transitions() = %d, want 2", p.Transitions())
	}
}

func TestOrder2ProbeAndFallback(t *testing.T) {
	// Two streams share the pair (20,30) but diverge after it; the order-2
	// context disambiguates what a bare order-1 probe on 30 cannot.
	p, err := New([]Stream{
		{Refs: seq(10, 30, 40), Heat: 8},
		{Refs: seq(20, 30, 50), Heat: 8},
	}, Config{Fanout: 1, MinProb: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	// Context (20,30): only successor 50.
	pf, cmp := observeAddrs(t, p, 20, 30)
	if !reflect.DeepEqual(pf, []uint64{50}) {
		t.Fatalf("after 20,30: predicted %v, want [50]", pf)
	}
	if cmp != 1 {
		t.Fatalf("order-2 hit cost %d comparisons, want 1", cmp)
	}
	// Context (10,30): only successor 40.
	p.Reset()
	if pf, _ = observeAddrs(t, p, 10, 30); !reflect.DeepEqual(pf, []uint64{40}) {
		t.Fatalf("after 10,30: predicted %v, want [40]", pf)
	}
	// Unknown pair (99,30) falls back to order-1: successors of 30 are
	// {40,50} at probability 0.5 each, both under MinProb 0.6 — nothing
	// survives ranking, and the failed fallback costs a second probe.
	p.Reset()
	pf, cmp = observeAddrs(t, p, 99, 30)
	if pf != nil {
		t.Fatalf("ambiguous fallback predicted %v, want none", pf)
	}
	if cmp != 2 {
		t.Fatalf("order-2 miss + order-1 miss cost %d comparisons, want 2", cmp)
	}
}

func TestHeatWeightedRanking(t *testing.T) {
	// Successor 200 carries 9x the heat of 100: fanout 1 keeps only it,
	// and with MinProb 0.2 the cold successor is filtered even at fanout 2.
	hot := Stream{Refs: seq(1, 200), Heat: 9}
	cold := Stream{Refs: seq(1, 100), Heat: 1}
	p, err := New([]Stream{cold, hot}, Config{Order: 1, Fanout: 2, MinProb: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	pf, _ := p.Observe(ref.Ref{Addr: 1})
	if !reflect.DeepEqual(pf, []uint64{200}) {
		t.Fatalf("Observe(1) = %v, want [200] (cold successor filtered)", pf)
	}

	// Equal heats tie-break by ascending address, deterministically.
	p2, err := New([]Stream{
		{Refs: seq(1, 300), Heat: 4},
		{Refs: seq(1, 100), Heat: 4},
	}, Config{Order: 1, Fanout: 2, MinProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	pf, _ = p2.Observe(ref.Ref{Addr: 1})
	if !reflect.DeepEqual(pf, []uint64{100, 300}) {
		t.Fatalf("tied successors = %v, want [100 300]", pf)
	}
}

func TestSelfTransitionsSkipped(t *testing.T) {
	p, err := New([]Stream{{Refs: seq(5, 5, 5), Heat: 3}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Trained() {
		t.Fatal("self-transitions alone should train nothing")
	}
}

func TestZeroHeatCountsAsOne(t *testing.T) {
	p, err := New([]Stream{{Refs: seq(10, 20)}}, Config{Order: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pf, _ := p.Observe(ref.Ref{Addr: 10}); !reflect.DeepEqual(pf, []uint64{20}) {
		t.Fatalf("zero-heat stream not trained: %v", pf)
	}
}

func TestResetRestoresStartState(t *testing.T) {
	p, err := New([]Stream{{Refs: seq(10, 20, 30), Heat: 2}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	run := func() [][]uint64 {
		var out [][]uint64
		for _, a := range []uint64{10, 20, 30, 10, 20} {
			pf, _ := p.Observe(ref.Ref{Addr: a})
			out = append(out, append([]uint64(nil), pf...))
		}
		return out
	}
	first := run()
	p.Reset()
	if second := run(); !reflect.DeepEqual(first, second) {
		t.Fatalf("replay after Reset diverged:\n first %v\nsecond %v", first, second)
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	streams := []Stream{
		{Refs: seq(1, 2, 3, 4, 5), Heat: 7},
		{Refs: seq(9, 2, 8, 4, 1), Heat: 3},
	}
	a, err := New(streams, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(streams, Config{})
	if err != nil {
		t.Fatal(err)
	}
	trace := []uint64{1, 2, 3, 9, 2, 8, 4, 1, 2, 5, 4}
	for i, addr := range trace {
		pfa, ca := a.Observe(ref.Ref{Addr: addr})
		pfb, cb := b.Observe(ref.Ref{Addr: addr})
		if !reflect.DeepEqual(pfa, pfb) || ca != cb {
			t.Fatalf("ref %d: instances diverged: (%v,%d) vs (%v,%d)", i, pfa, ca, pfb, cb)
		}
	}
}

func TestObserveAllocFree(t *testing.T) {
	p, err := New([]Stream{{Refs: seq(1, 2, 3, 4), Heat: 2}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	trace := []ref.Ref{{Addr: 1}, {Addr: 2}, {Addr: 3}, {Addr: 9}}
	allocs := testing.AllocsPerRun(100, func() {
		for _, r := range trace {
			p.Observe(r)
		}
	})
	if allocs != 0 {
		t.Fatalf("Observe allocated %.1f times per trace", allocs)
	}
}
