package stats

import (
	"fmt"
	"math"
	"strings"

	"hotprefetch/internal/experiment"
	"hotprefetch/internal/opt"
)

// Chart renderers draw the figures as horizontal ASCII bar charts in the
// style of the paper's grouped bar figures: one group per benchmark, one bar
// per series, negative bars (speedups) growing left of the axis.

// bar renders a signed percentage as a bar around a zero axis.
func bar(v, scale float64, width int) string {
	if scale <= 0 {
		scale = 1
	}
	n := int(math.Round(math.Abs(v) / scale * float64(width)))
	if n > width {
		n = width
	}
	left := strings.Repeat(" ", width)
	right := strings.Repeat(" ", width)
	if v < 0 {
		left = strings.Repeat(" ", width-n) + strings.Repeat("#", n)
	} else {
		right = strings.Repeat("#", n) + strings.Repeat(" ", width-n)
	}
	return left + "|" + right
}

type series struct {
	label string
	value func(*experiment.Run) float64
}

func chart(title string, runs []*experiment.Run, ss []series, note string) string {
	const width = 24
	maxAbs := 1.0
	for _, r := range runs {
		for _, s := range ss {
			if v := math.Abs(s.value(r)); v > maxAbs {
				maxAbs = v
			}
		}
	}
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-9s %-9s %s0%s+%.0f%%\n", "", "", "-"+fmt.Sprintf("%.0f%%", maxAbs)+strings.Repeat(" ", width-6), strings.Repeat(" ", width-4), maxAbs)
	for _, r := range runs {
		for i, s := range ss {
			name := ""
			if i == 0 {
				name = r.Params.Name
			}
			fmt.Fprintf(&b, "%-9s %-9s %s %+6.1f%%\n",
				name, s.label, bar(s.value(r), maxAbs, width), s.value(r))
		}
		b.WriteString("\n")
	}
	b.WriteString(note + "\n")
	return b.String()
}

// ChartFigure11 draws Figure 11 as ASCII bars.
func ChartFigure11(runs []*experiment.Run) string {
	return chart(
		"Figure 11: Overhead of online profiling and analysis",
		runs,
		[]series{
			{"base", func(r *experiment.Run) float64 { return r.Overhead(opt.ModeBase) }},
			{"prof", func(r *experiment.Run) float64 { return r.Overhead(opt.ModeProfile) }},
			{"hds", func(r *experiment.Run) float64 { return r.Overhead(opt.ModeHds) }},
		},
		"(bars right of the axis are overhead; paper: 3-7% total)",
	)
}

// ChartFigure12 draws Figure 12 as ASCII bars; speedups grow leftward.
func ChartFigure12(runs []*experiment.Run) string {
	return chart(
		"Figure 12: Performance impact of dynamic prefetching",
		runs,
		[]series{
			{"no-pref", func(r *experiment.Run) float64 { return r.Overhead(opt.ModeNoPref) }},
			{"seq-pref", func(r *experiment.Run) float64 { return r.Overhead(opt.ModeSeqPref) }},
			{"dyn-pref", func(r *experiment.Run) float64 { return r.Overhead(opt.ModeDynPref) }},
		},
		"(bars left of the axis are speedups; paper: Dyn-pref improves 5-19%)",
	)
}
