package stats

import (
	"strings"
	"testing"

	"hotprefetch/internal/experiment"
	"hotprefetch/internal/opt"
	"hotprefetch/internal/workload"
)

// fakeRuns fabricates a deterministic two-benchmark result set.
func fakeRuns() []*experiment.Run {
	mk := func(name string, base uint64, cycles map[opt.Mode]uint64) *experiment.Run {
		r := &experiment.Run{
			Params:   workload.Params{Name: name},
			Baseline: base,
			Results:  map[opt.Mode]opt.Result{},
		}
		for m, c := range cycles {
			r.Results[m] = opt.Result{
				Mode:       m,
				ExecCycles: c,
				Cycles: []opt.CycleStats{{
					TracedRefs: 5000, HotStreams: 20,
					DFSMStates: 41, DFSMTransitions: 500, ChecksInserted: 30,
					ProcsModified: 7,
				}},
			}
		}
		return r
	}
	return []*experiment.Run{
		mk("alpha", 1000, map[opt.Mode]uint64{
			opt.ModeBase: 1030, opt.ModeProfile: 1040, opt.ModeHds: 1045,
			opt.ModeNoPref: 1060, opt.ModeSeqPref: 1100, opt.ModeDynPref: 900,
		}),
		mk("beta", 2000, map[opt.Mode]uint64{
			opt.ModeBase: 2050, opt.ModeProfile: 2070, opt.ModeHds: 2080,
			opt.ModeNoPref: 2120, opt.ModeSeqPref: 1950, opt.ModeDynPref: 1800,
		}),
	}
}

func TestRenderFigure11(t *testing.T) {
	out := RenderFigure11(fakeRuns())
	for _, want := range []string{"Figure 11", "alpha", "beta", "3.0%", "Base", "Prof", "Hds"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderFigure12(t *testing.T) {
	out := RenderFigure12(fakeRuns())
	for _, want := range []string{"Figure 12", "-10.0%", "+6.0%", "No-pref", "Dyn-pref"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderTable2(t *testing.T) {
	out := RenderTable2(fakeRuns())
	for _, want := range []string{"Table 2", "<41 states, 30 checks>", "5000", "7"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderTable2SkipsRunsWithoutDynPref(t *testing.T) {
	runs := []*experiment.Run{{
		Params:  workload.Params{Name: "gamma"},
		Results: map[opt.Mode]opt.Result{opt.ModeBase: {}},
	}}
	out := RenderTable2(runs)
	if strings.Contains(out, "gamma") {
		t.Error("runs without a Dyn-pref result must be skipped")
	}
}

func TestRenderHeadLen(t *testing.T) {
	out := RenderHeadLen("vpr", []experiment.HeadLenResult{
		{HeadLen: 1, Overhead: -10.5},
		{HeadLen: 2, Overhead: -12.25},
	})
	for _, want := range []string{"vpr", "-10.5%", "-12.2%", "headLen"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderHardware(t *testing.T) {
	out := RenderHardware([]experiment.HardwareResult{
		{Name: "mcf", StrideOverhead: -3.5, MarkovOverhead: -15, DynOverhead: -17},
	})
	for _, want := range []string{"mcf", "-3.5%", "-15.0%", "-17.0%", "stride"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderStaticDyn(t *testing.T) {
	out := RenderStaticDyn([]experiment.StaticDynResult{
		{Name: "vpr", Phases: 2, Static: -15, Dynamic: -23.5},
	})
	for _, want := range []string{"vpr", "-15.0%", "-23.5%", "phases"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderScheduling(t *testing.T) {
	out := RenderScheduling("mcf", []experiment.ScheduleResult{
		{Chunk: 0, Overhead: -7.1, Dropped: 996741, UsefulRatio: 0.51},
		{Chunk: 4, Overhead: -10.6, Dropped: 246780, UsefulRatio: 0.69},
	})
	for _, want := range []string{"all-at-match", "4/check", "-10.6%", "996741"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderHybrid(t *testing.T) {
	out := RenderHybrid([]experiment.HybridResult{
		{Name: "mcf", Dyn: -17.2, Hybrid: -22.7},
	})
	for _, want := range []string{"mcf", "-17.2%", "-22.7%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCSVRenderers(t *testing.T) {
	runs := fakeRuns()
	f11 := CSVFigure11(runs)
	if !strings.HasPrefix(f11, "benchmark,base_pct") || !strings.Contains(f11, "alpha,3.000") {
		t.Errorf("CSVFigure11:\n%s", f11)
	}
	f12 := CSVFigure12(runs)
	if !strings.Contains(f12, "alpha,6.000,10.000,-10.000") {
		t.Errorf("CSVFigure12:\n%s", f12)
	}
	t2 := CSVTable2(runs)
	if !strings.Contains(t2, "alpha,1,5000,20,41,30,7") {
		t.Errorf("CSVTable2:\n%s", t2)
	}
	if lines := strings.Count(t2, "\n"); lines != 3 {
		t.Errorf("CSVTable2 has %d lines, want 3", lines)
	}
}

func TestRenderStabilityAndMotivation(t *testing.T) {
	out := RenderStability([]experiment.StabilityResult{
		{Name: "mcf", StreamsA: 39, StreamsB: 39, Overlap: 1.0, Concrete: 0.0},
	})
	for _, want := range []string{"mcf", "39/39", "1.00", "0.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("stability render missing %q:\n%s", want, out)
		}
	}
	out = RenderMotivation([]experiment.MotivationResult{
		{Name: "vpr", Streams: 44, RefShare: 0.59, L1MissShare: 0.59, L2MissShare: 0.50},
	})
	for _, want := range []string{"vpr", "44", "59%", "50%"} {
		if !strings.Contains(out, want) {
			t.Errorf("motivation render missing %q:\n%s", want, out)
		}
	}
}

func TestChartRenderers(t *testing.T) {
	runs := fakeRuns()
	out := ChartFigure11(runs)
	for _, want := range []string{"Figure 11", "alpha", "base", "hds", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart 11 missing %q:\n%s", want, out)
		}
	}
	out = ChartFigure12(runs)
	for _, want := range []string{"Figure 12", "dyn-pref", "-10.0%", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart 12 missing %q:\n%s", want, out)
		}
	}
	// A speedup bar sits left of the axis: the '#'s come before '|' on the
	// dyn-pref line of alpha.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "dyn-pref") && strings.Contains(line, "-10.0%") {
			bar := line[strings.Index(line, "dyn-pref")+8:]
			hash := strings.Index(bar, "#")
			pipe := strings.Index(bar, "|")
			if hash < 0 || pipe < 0 || hash > pipe {
				t.Errorf("speedup bar should grow left of the axis: %q", line)
			}
		}
	}
}

func TestBarClamping(t *testing.T) {
	if b := bar(100, 10, 8); !strings.Contains(b, "########") {
		t.Errorf("oversized bar must clamp to width: %q", b)
	}
	if b := bar(0, 10, 8); strings.Contains(b, "#") {
		t.Errorf("zero bar must be empty: %q", b)
	}
	if b := bar(5, 0, 8); len(b) != 17 {
		t.Errorf("zero scale must not panic or misalign: %q", b)
	}
}
