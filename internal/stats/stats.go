// Package stats renders experiment results as the tables and bar rows of
// the paper's evaluation section, for the cmd/figures tool and the benchmark
// harness.
package stats

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"hotprefetch/internal/experiment"
	"hotprefetch/internal/opt"
)

// RenderFigure11 prints the overhead of online profiling and analysis
// (paper Figure 11): the Base, Prof, and Hds bars per benchmark, in percent
// over the unoptimized baseline.
func RenderFigure11(runs []*experiment.Run) string {
	var b strings.Builder
	b.WriteString("Figure 11: Overhead of online profiling and analysis (% of baseline)\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tBase\tProf\tHds")
	for _, r := range runs {
		fmt.Fprintf(w, "%s\t%.1f%%\t%.1f%%\t%.1f%%\n",
			r.Params.Name,
			r.Overhead(opt.ModeBase),
			r.Overhead(opt.ModeProfile),
			r.Overhead(opt.ModeHds))
	}
	w.Flush()
	b.WriteString("(paper: Base 2.5-6%, Prof adds <=1.6%, Hds adds <=1.4%; total 3-7%)\n")
	return b.String()
}

// RenderFigure12 prints the performance impact of dynamic prefetching
// (paper Figure 12): No-pref, Seq-pref, and Dyn-pref, in percent over the
// unoptimized baseline; negative values are speedups.
func RenderFigure12(runs []*experiment.Run) string {
	var b strings.Builder
	b.WriteString("Figure 12: Performance impact of dynamic prefetching (% of baseline, negative = speedup)\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tNo-pref\tSeq-pref\tDyn-pref")
	for _, r := range runs {
		fmt.Fprintf(w, "%s\t%+.1f%%\t%+.1f%%\t%+.1f%%\n",
			r.Params.Name,
			r.Overhead(opt.ModeNoPref),
			r.Overhead(opt.ModeSeqPref),
			r.Overhead(opt.ModeDynPref))
	}
	w.Flush()
	b.WriteString("(paper: No-pref 4-8% overhead; Seq-pref degrades 7-12% except parser ~-5%; Dyn-pref improves 5-19%)\n")
	return b.String()
}

// RenderTable2 prints the detailed dynamic prefetching characterization
// (paper Table 2), per-cycle averages from the Dyn-pref runs.
func RenderTable2(runs []*experiment.Run) string {
	var b strings.Builder
	b.WriteString("Table 2: Detailed dynamic prefetching characterization (per-cycle averages)\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\topt cycles\ttraced refs\thot streams\tDFSM\tprocs modified")
	for _, r := range runs {
		res, ok := r.Results[opt.ModeDynPref]
		if !ok {
			continue
		}
		avg := res.AvgPerCycle()
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t<%d states, %d checks>\t%d\n",
			r.Params.Name, res.OptCycles(), avg.TracedRefs, avg.HotStreams,
			avg.DFSMStates, avg.ChecksInserted, avg.ProcsModified)
	}
	w.Flush()
	b.WriteString("(paper: 3-55 cycles, ~68-88k refs, 14-41 streams, <29-79 states>, 6-12 procs)\n")
	return b.String()
}

// RenderHeadLen prints the §4.3 prefix length ablation for one benchmark.
func RenderHeadLen(name string, results []experiment.HeadLenResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Head length ablation (%s): overall overhead vs baseline (negative = speedup)\n", name)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "headLen\toverhead\tprefix matches/cycle\tprefetches\tuseful")
	for _, r := range results {
		avg := r.Result.AvgPerCycle()
		fmt.Fprintf(w, "%d\t%+.1f%%\t%d\t%d\t%d\n",
			r.HeadLen, r.Overhead, avg.PrefixMatches,
			r.Result.Cache.Prefetches, r.Result.Cache.UsefulPrefetches)
	}
	w.Flush()
	b.WriteString("(paper: headLen=2 best; 1 cheap but inaccurate, 3 costs more without accuracy gains)\n")
	return b.String()
}

// RenderHardware prints the §5.1 hardware prefetcher comparison.
func RenderHardware(results []experiment.HardwareResult) string {
	var b strings.Builder
	b.WriteString("Hardware prefetcher comparison (% of baseline, negative = speedup)\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tstride\tnext-line\tmarkov\tdyn-pref")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%+.1f%%\t%+.1f%%\t%+.1f%%\t%+.1f%%\n",
			r.Name, r.StrideOverhead, r.NextLineOverhead,
			r.MarkovOverhead, r.DynOverhead)
	}
	w.Flush()
	b.WriteString("(paper §4.3: stride prefetching cannot cover hot data stream addresses)\n")
	return b.String()
}

// RenderStaticDyn prints the static-vs-dynamic prefetching comparison (the
// future-work study of the paper's §1).
func RenderStaticDyn(results []experiment.StaticDynResult) string {
	var b strings.Builder
	b.WriteString("Static vs dynamic prefetching (% of baseline, negative = speedup)\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tphases\tstatic (one-shot)\tdynamic (adaptive)")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%d\t%+.1f%%\t%+.1f%%\n", r.Name, r.Phases, r.Static, r.Dynamic)
	}
	w.Flush()
	b.WriteString("(paper §1: dynamic adaptation should win on programs with distinct phase behavior)\n")
	return b.String()
}

// RenderScheduling prints the prefetch scheduling study (the paper's §4.3
// future-work idea), run under a bounded outstanding-fill budget.
func RenderScheduling(name string, results []experiment.ScheduleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Prefetch scheduling (%s, 8 outstanding fills): overhead vs baseline\n", name)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "chunk\toverhead\tdropped\tuseful ratio")
	for _, r := range results {
		label := fmt.Sprintf("%d/check", r.Chunk)
		if r.Chunk == 0 {
			label = "all-at-match"
		}
		fmt.Fprintf(w, "%s\t%+.1f%%\t%d\t%.2f\n", label, r.Overhead, r.Dropped, r.UsefulRatio)
	}
	w.Flush()
	b.WriteString("(paper §4.3: \"more intelligent prefetch scheduling could produce larger benefits\")\n")
	return b.String()
}

// RenderHybrid prints the stride-complement study (paper §4.3).
func RenderHybrid(results []experiment.HybridResult) string {
	var b strings.Builder
	b.WriteString("Stride-complement hybrid (% of baseline, negative = speedup)\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tdyn-pref\tdyn-pref + stride")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%+.1f%%\t%+.1f%%\n", r.Name, r.Dyn, r.Hybrid)
	}
	w.Flush()
	b.WriteString("(paper §4.3: a stride prefetcher \"could complement our scheme\" on non-stream addresses)\n")
	return b.String()
}

// RenderStability prints the cross-input profile stability study (the
// property of paper reference [10] that the intro builds on).
func RenderStability(results []experiment.StabilityResult) string {
	var b strings.Builder
	b.WriteString("Hot data stream stability across inputs\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tstreams A/B\tpc-signature overlap\tconcrete overlap")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%d/%d\t%.2f\t%.2f\n", r.Name, r.StreamsA, r.StreamsB, r.Overlap, r.Concrete)
	}
	w.Flush()
	b.WriteString("(paper §1 / [10]: streams are stable at the code level across inputs; addresses are not)\n")
	return b.String()
}

// RenderMotivation prints the hot-data-stream coverage measurement that
// motivates the paper (§1, citing [8] and [28]).
func RenderMotivation(results []experiment.MotivationResult) string {
	var b strings.Builder
	b.WriteString("Hot data stream coverage of references and misses\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tstreams\tref share\tL1 miss share\tL2 miss share")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%d\t%.0f%%\t%.0f%%\t%.0f%%\n",
			r.Name, r.Streams, 100*r.RefShare, 100*r.L1MissShare, 100*r.L2MissShare)
	}
	w.Flush()
	b.WriteString("(paper §1 / [8,28]: streams account for ~90% of references, >80% of misses;\n")
	b.WriteString(" the synthetic workloads carry deliberate warm traffic, lowering the shares)\n")
	return b.String()
}

// RenderSampling prints the sampled-vs-lossless hot-stream comparison
// (paper §2.2: a low-rate bursty sample suffices to detect hot data
// streams).
func RenderSampling(title string, results []experiment.SamplingResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sampled vs lossless hot-stream detection (%s)\n", title)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\trate\tstreams full/sampled\ttop-10 recall\theat recall\tprecision")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%.2f%%\t%d/%d\t%.2f\t%.2f\t%.2f\n",
			r.Name, 100*r.Rate, r.LosslessStreams, r.SampledStreams,
			r.TopRecall, r.HeatRecall, r.Precision)
	}
	w.Flush()
	b.WriteString("(paper §2.2: bursty sampling at ~0.5% detects the hot streams a lossless\n")
	b.WriteString(" profile finds; matching is by cyclic pc-sequence fragment)\n")
	return b.String()
}

// RenderPrepass prints the two-level ingest front end's differential
// comparison: collapse ratio, grammar overhead, and hot-stream agreement
// against the lossless profile per workload.
func RenderPrepass(results []experiment.PrepassResult) string {
	var b strings.Builder
	b.WriteString("Two-level ingest front end vs lossless profiling\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\trefs\tcollapse\tgrammar lossless/prepass\tstreams\ttop-10 recall\theat recall\tprecision")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%d\t%.1f%%\t%d/%d\t%d/%d\t%.2f\t%.2f\t%.2f\n",
			r.Name, r.TotalRefs, 100*r.CollapseRatio,
			r.LosslessSymbols, r.PrepassSymbols,
			r.LosslessStreams, r.PrepassStreams,
			r.TopRecall, r.HeatRecall, r.Precision)
	}
	w.Flush()
	b.WriteString("(expansion verified byte-identical per workload before analysis; the\n")
	b.WriteString(" collapse column is the fraction of references absorbed before the\n")
	b.WriteString(" digram table)\n")
	return b.String()
}

// RenderReuse prints the reuse-distance validation of the workload
// substrate.
func RenderReuse(results []experiment.ReuseResult) string {
	var b strings.Builder
	b.WriteString("Reuse-distance structure of the demand reference stream (warm accesses)\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\taccesses\t< L1\tL1..L2\t>= L2\tcold")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%d\t%.0f%%\t%.0f%%\t%.0f%%\t%.0f%%\n",
			r.Name, r.Accesses, 100*r.WithinL1, 100*r.WithinL2, 100*r.BeyondL2, 100*r.ColdShare)
	}
	w.Flush()
	b.WriteString("(the paper's effect requires substantial reuse beyond L2: those are the\n")
	b.WriteString(" misses dynamic prefetching hides)\n")
	return b.String()
}

// RenderPredictors prints the predictor zoo's head-to-head comparison: every
// registered predictor trained on the same hot-stream profile and replayed
// over the same evaluation trace per workload.
func RenderPredictors(results []experiment.PredictorResult) string {
	var b strings.Builder
	b.WriteString("Predictor head-to-head (same trace, same hot-stream profile per workload)\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tpredictor\tstreams\tissued\tuseful\taccuracy\tcoverage\ttimeliness\tcmp/ref\tcycles vs base")
	for _, r := range results {
		cmpPerRef := 0.0
		if r.EvalRefs > 0 {
			cmpPerRef = float64(r.Comparisons) / float64(r.EvalRefs)
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%.2f\t%.2f\t%.2f\t%.1f\t%+.1f%%\n",
			r.Workload, r.Predictor, r.TrainStreams, r.Issued, r.Useful,
			r.Accuracy, r.Coverage, r.Timeliness, cmpPerRef, 100*r.CycleDelta)
	}
	w.Flush()
	b.WriteString("(accuracy = useful/issued; coverage = baseline L1 misses eliminated;\n")
	b.WriteString(" timeliness = useful fills complete before the demand touch; cycles\n")
	b.WriteString(" charge 1 per detection comparison on top of the memory stalls)\n")
	return b.String()
}
