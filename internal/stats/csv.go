package stats

import (
	"fmt"
	"strings"

	"hotprefetch/internal/experiment"
	"hotprefetch/internal/opt"
)

// CSV renderers mirror the text renderers for machine consumption
// (spreadsheets, plotting scripts). Overheads are percentages of the
// unoptimized baseline; negative values are speedups.

// CSVFigure11 emits benchmark,base,prof,hds.
func CSVFigure11(runs []*experiment.Run) string {
	var b strings.Builder
	b.WriteString("benchmark,base_pct,prof_pct,hds_pct\n")
	for _, r := range runs {
		fmt.Fprintf(&b, "%s,%.3f,%.3f,%.3f\n", r.Params.Name,
			r.Overhead(opt.ModeBase), r.Overhead(opt.ModeProfile), r.Overhead(opt.ModeHds))
	}
	return b.String()
}

// CSVFigure12 emits benchmark,nopref,seqpref,dynpref.
func CSVFigure12(runs []*experiment.Run) string {
	var b strings.Builder
	b.WriteString("benchmark,nopref_pct,seqpref_pct,dynpref_pct\n")
	for _, r := range runs {
		fmt.Fprintf(&b, "%s,%.3f,%.3f,%.3f\n", r.Params.Name,
			r.Overhead(opt.ModeNoPref), r.Overhead(opt.ModeSeqPref), r.Overhead(opt.ModeDynPref))
	}
	return b.String()
}

// CSVTable2 emits the per-cycle characterization columns.
func CSVTable2(runs []*experiment.Run) string {
	var b strings.Builder
	b.WriteString("benchmark,opt_cycles,traced_refs,hot_streams,dfsm_states,checks,procs_modified\n")
	for _, r := range runs {
		res, ok := r.Results[opt.ModeDynPref]
		if !ok {
			continue
		}
		avg := res.AvgPerCycle()
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%d\n", r.Params.Name,
			res.OptCycles(), avg.TracedRefs, avg.HotStreams,
			avg.DFSMStates, avg.ChecksInserted, avg.ProcsModified)
	}
	return b.String()
}
