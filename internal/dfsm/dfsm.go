// Package dfsm builds and drives the prefix-matching deterministic finite
// state machine of the paper's §3.1 (Figures 7–9).
//
// Each hot data stream v is split into a head (the first headLen references,
// which must be observed to trigger prefetching) and a tail (the remaining
// addresses, which are prefetched on a complete head match). Rather than
// matching each stream independently, a single DFSM tracks the matching
// prefixes of all hot data streams simultaneously: a state is a set of
// [stream, seen] elements, and the transition function is
//
//	d(s,a) = {[v,n+1] | n < headLen && [v,n] in s && a == v_{n+1}}
//	         union {[w,1] | a == w_1}
//
// States whose element sets contain a completed head ([v, headLen]) are
// annotated with the prefetch addresses of v's tail. The DFSM is built with
// the lazy work-list algorithm of Figure 9; the number of reachable states
// is usually close to headLen*n+1 rather than the exponential worst case.
package dfsm

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hotprefetch/internal/ref"
)

// Stream is one hot data stream prepared for prefix matching.
type Stream struct {
	Refs []ref.Ref // the complete stream
	Head []ref.Ref // Refs[:headLen]
	Tail []uint64  // deduplicated addresses of Refs[headLen:]
	Heat uint64
}

// Split prepares a stream for matching with the given head length,
// deduplicating tail addresses (the paper prefetches each remaining stream
// address once: for v = abacadae with head aba it prefetches c, a, d, e).
func Split(refs []ref.Ref, heat uint64, headLen int) Stream {
	s := Stream{Refs: refs, Heat: heat}
	if len(refs) <= headLen {
		s.Head = refs
		return s
	}
	s.Head = refs[:headLen]
	seen := make(map[uint64]struct{})
	for _, r := range refs[headLen:] {
		if _, dup := seen[r.Addr]; !dup {
			seen[r.Addr] = struct{}{}
			s.Tail = append(s.Tail, r.Addr)
		}
	}
	return s
}

// Element is one [stream, seen] pair of a DFSM state: the first seen
// references of stream have been matched.
type Element struct {
	Stream int // index into DFSM.Streams
	Seen   int // 1..headLen
}

// State is a reachable DFSM state.
type State struct {
	ID       int
	Elements []Element // canonically sorted
	// Prefetches lists the tail addresses of every stream whose head is
	// completely matched in this state; they are issued on entry.
	Prefetches []uint64
}

// key returns the canonical identity of an element set.
func key(elems []Element) string {
	var b strings.Builder
	for _, e := range elems {
		fmt.Fprintf(&b, "%d.%d;", e.Stream, e.Seen)
	}
	return b.String()
}

// transKey identifies a transition source: a state and an observed data
// reference.
type transKey struct {
	state int
	r     ref.Ref
}

// DFSM is the combined prefix-matching machine for a set of hot data
// streams.
type DFSM struct {
	Streams []Stream
	HeadLen int
	States  []*State

	trans map[transKey]*State
	// perPC holds, for every instrumented pc, the comparison structure the
	// injected code executes (paper Figure 7): an outer if-chain over
	// addresses, each with an inner if-chain over source states and a
	// restart default (the "else" arms). The Matcher counts scanned
	// comparisons to model detection cost.
	perPC map[int][]addrGroup
}

// addrGroup is one arm of the outer "if (accessing a.addr)" chain.
type addrGroup struct {
	addr    uint64
	entries []stateEntry // inner "if (state == s)" chain, extensions only
	restart *State       // d(start, a): taken when no state compare matches
}

type stateEntry struct {
	fromState int
	to        *State
}

// Build constructs the DFSM for the given streams with the lazy work-list
// algorithm of paper Figure 9. Streams no longer than headLen carry no
// prefetchable tail and are dropped.
func Build(streams []Stream, headLen int) *DFSM {
	if headLen < 1 {
		panic("dfsm: headLen must be >= 1")
	}
	var usable []Stream
	for _, s := range streams {
		if len(s.Refs) > headLen && len(s.Tail) > 0 {
			usable = append(usable, s)
		}
	}
	d := &DFSM{
		Streams: usable,
		HeadLen: headLen,
		trans:   make(map[transKey]*State),
		perPC:   make(map[int][]addrGroup),
	}

	states := map[string]*State{}
	start := &State{ID: 0}
	states[key(nil)] = start
	d.States = append(d.States, start)
	workList := []*State{start}

	intern := func(elems []Element) (*State, bool) {
		k := key(elems)
		if s, ok := states[k]; ok {
			return s, false
		}
		s := &State{ID: len(d.States), Elements: elems}
		for _, e := range elems {
			if e.Seen == headLen {
				s.Prefetches = append(s.Prefetches, d.Streams[e.Stream].Tail...)
			}
		}
		states[k] = s
		d.States = append(d.States, s)
		return s, true
	}

	for len(workList) > 0 {
		s := workList[len(workList)-1]
		workList = workList[:len(workList)-1]

		// Candidate symbols: the next reference of each in-progress element,
		// plus the first reference of every stream (Figure 9's two loops).
		cands := make([]ref.Ref, 0, len(s.Elements)+len(d.Streams))
		seenCand := map[ref.Ref]struct{}{}
		addCand := func(r ref.Ref) {
			if _, dup := seenCand[r]; !dup {
				seenCand[r] = struct{}{}
				cands = append(cands, r)
			}
		}
		for _, e := range s.Elements {
			if e.Seen < headLen {
				addCand(d.Streams[e.Stream].Head[e.Seen])
			}
		}
		for _, st := range d.Streams {
			addCand(st.Head[0])
		}

		for _, a := range cands {
			tk := transKey{state: s.ID, r: a}
			if _, exists := d.trans[tk]; exists {
				continue
			}
			var next []Element
			for _, e := range s.Elements {
				if e.Seen < headLen && d.Streams[e.Stream].Head[e.Seen] == a {
					next = append(next, Element{Stream: e.Stream, Seen: e.Seen + 1})
				}
			}
			for wi, st := range d.Streams {
				if st.Head[0] == a && !hasElement(next, wi, 1) {
					next = append(next, Element{Stream: wi, Seen: 1})
				}
			}
			if len(next) == 0 {
				continue // implicit transition to the start state
			}
			sortElements(next)
			target, fresh := intern(next)
			d.trans[tk] = target
			if fresh {
				workList = append(workList, target)
			}
		}
	}

	d.buildChains()
	return d
}

func hasElement(elems []Element, stream, seen int) bool {
	for _, e := range elems {
		if e.Stream == stream && e.Seen == seen {
			return true
		}
	}
	return false
}

func sortElements(elems []Element) {
	sort.Slice(elems, func(i, j int) bool {
		if elems[i].Stream != elems[j].Stream {
			return elems[i].Stream < elems[j].Stream
		}
		return elems[i].Seen < elems[j].Seen
	})
}

// buildChains lays out the per-pc comparison structure of the injected
// detection code. Hotter streams' addresses come first, modelling the
// paper's "sort the if-branches in such a way that more likely cases come
// first". Within an address arm, only extension transitions need explicit
// state compares; the restart transition d(start, a) is the arm's default.
func (d *DFSM) buildChains() {
	type groupBuild struct {
		addr    uint64
		heat    uint64
		entries []stateEntry
		restart *State
	}
	byPC := map[int]map[ref.Ref]*groupBuild{}
	for tk, to := range d.trans {
		groups := byPC[tk.r.PC]
		if groups == nil {
			groups = map[ref.Ref]*groupBuild{}
			byPC[tk.r.PC] = groups
		}
		g := groups[tk.r]
		if g == nil {
			g = &groupBuild{addr: tk.r.Addr}
			groups[tk.r] = g
		}
		for _, e := range to.Elements {
			if h := d.Streams[e.Stream].Heat; h > g.heat {
				g.heat = h
			}
		}
		if tk.state == 0 {
			g.restart = to // d(start, a), the arm's else branch
		} else {
			g.entries = append(g.entries, stateEntry{fromState: tk.state, to: to})
		}
	}
	for pc, groups := range byPC {
		list := make([]*groupBuild, 0, len(groups))
		for _, g := range groups {
			sort.Slice(g.entries, func(i, j int) bool {
				return g.entries[i].fromState < g.entries[j].fromState
			})
			list = append(list, g)
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].heat != list[j].heat {
				return list[i].heat > list[j].heat
			}
			return list[i].addr < list[j].addr
		})
		arms := make([]addrGroup, len(list))
		for i, g := range list {
			arms[i] = addrGroup{addr: g.addr, entries: g.entries, restart: g.restart}
		}
		d.perPC[pc] = arms
	}
}

// NumStates returns the number of reachable states, including the start
// state.
func (d *DFSM) NumStates() int { return len(d.States) }

// NumTransitions returns the number of explicit transitions (Table 2's
// "checks" column counts the injected prefix-match checks that implement
// them).
func (d *DFSM) NumTransitions() int { return len(d.trans) }

// Start returns the start state (nothing matched).
func (d *DFSM) Start() *State { return d.States[0] }

// Next returns d(s, r), with the implicit reset to the start state for
// undefined transitions.
func (d *DFSM) Next(s *State, r ref.Ref) *State {
	if t, ok := d.trans[transKey{state: s.ID, r: r}]; ok {
		return t
	}
	return d.States[0]
}

// PCs returns the sorted set of instruction PCs at which detection code must
// be injected — every pc occurring in any stream head.
func (d *DFSM) PCs() []int {
	set := map[int]struct{}{}
	for _, s := range d.Streams {
		for _, r := range s.Head {
			set[r.PC] = struct{}{}
		}
	}
	pcs := make([]int, 0, len(set))
	for pc := range set {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	return pcs
}

// String renders the DFSM's states and transitions for debugging.
func (d *DFSM) String() string {
	var b strings.Builder
	for _, s := range d.States {
		fmt.Fprintf(&b, "state %d {", s.ID)
		for i, e := range s.Elements {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "[%d,%d]", e.Stream, e.Seen)
		}
		b.WriteString("}")
		if len(s.Prefetches) > 0 {
			fmt.Fprintf(&b, " prefetch %d addrs", len(s.Prefetches))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Matcher drives a DFSM over a stream of observed data references at the
// injected check sites. It is the runtime counterpart of the generated code
// in paper Figure 7.
type Matcher struct {
	d   *DFSM
	cur *State
}

// NewMatcher returns a matcher positioned at the start state.
func NewMatcher(d *DFSM) *Matcher {
	return &Matcher{d: d, cur: d.States[0]}
}

// State returns the current state.
func (m *Matcher) State() *State { return m.cur }

// Reset returns the matcher to the start state.
func (m *Matcher) Reset() { m.cur = m.d.States[0] }

// Step consumes one data reference observed at an instrumented pc. It
// returns the addresses to prefetch (non-nil exactly when a stream head
// completes) and the number of comparisons the injected check chain
// executed, which the caller charges as detection overhead.
//
// The comparison count follows the structure of the generated code in paper
// Figure 7: an outer if-chain over the addresses checked at this pc, then an
// inner if-chain over source states, with the restart transition as the
// arm's else branch.
func (m *Matcher) Step(r ref.Ref) (prefetch []uint64, comparisons int) {
	arms := m.d.perPC[r.PC]
	prev := m.cur
	for i := range arms {
		comparisons++ // address compare
		if arms[i].addr != r.Addr {
			continue
		}
		next := arms[i].restart // else branch: d(start, a), possibly nil
		for _, e := range arms[i].entries {
			comparisons++ // state compare
			if e.fromState == m.cur.ID {
				next = e.to
				break
			}
		}
		if next == nil {
			next = m.d.States[0]
		}
		m.cur = next
		if prev != m.cur && len(m.cur.Prefetches) > 0 {
			return m.cur.Prefetches, comparisons
		}
		return nil, comparisons
	}
	// Address matched no arm: d(s,a) = {}, reset to start (the final
	// "else v.seen = 0" of Figure 7).
	m.cur = m.d.States[0]
	if comparisons == 0 {
		comparisons = 1 // the failed address comparison itself
	}
	return nil, comparisons
}

// WriteDOT renders the DFSM in Graphviz DOT format, in the style of the
// paper's Figure 8: nodes are states labelled with their element sets,
// edges are transitions labelled with the observed reference, and states
// with prefetch annotations are drawn doubled.
func (d *DFSM) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph dfsm {\n  rankdir=LR;\n  node [fontname=\"monospace\"];\n")
	for _, s := range d.States {
		label := "{}"
		if len(s.Elements) > 0 {
			var eb strings.Builder
			eb.WriteByte('{')
			for i, e := range s.Elements {
				if i > 0 {
					eb.WriteByte(' ')
				}
				fmt.Fprintf(&eb, "[v%d,%d]", e.Stream, e.Seen)
			}
			eb.WriteByte('}')
			label = eb.String()
		}
		shape := "circle"
		if len(s.Prefetches) > 0 {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  s%d [label=%q shape=%s];\n", s.ID, label, shape)
	}
	// Deterministic edge order.
	type edge struct {
		from int
		r    ref.Ref
		to   int
	}
	edges := make([]edge, 0, len(d.trans))
	for tk, to := range d.trans {
		edges = append(edges, edge{from: tk.state, r: tk.r, to: to.ID})
	}
	sort.Slice(edges, func(i, j int) bool {
		a, e := edges[i], edges[j]
		if a.from != e.from {
			return a.from < e.from
		}
		if a.r.PC != e.r.PC {
			return a.r.PC < e.r.PC
		}
		if a.r.Addr != e.r.Addr {
			return a.r.Addr < e.r.Addr
		}
		return a.to < e.to
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  s%d -> s%d [label=\"pc%d:0x%x\"];\n", e.from, e.to, e.r.PC, e.r.Addr)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
