// Package dfsm builds and drives the prefix-matching deterministic finite
// state machine of the paper's §3.1 (Figures 7–9).
//
// Each hot data stream v is split into a head (the first headLen references,
// which must be observed to trigger prefetching) and a tail (the remaining
// addresses, which are prefetched on a complete head match). Rather than
// matching each stream independently, a single DFSM tracks the matching
// prefixes of all hot data streams simultaneously: a state is a set of
// [stream, seen] elements, and the transition function is
//
//	d(s,a) = {[v,n+1] | n < headLen && [v,n] in s && a == v_{n+1}}
//	         union {[w,1] | a == w_1}
//
// States whose element sets contain a completed head ([v, headLen]) are
// annotated with the prefetch addresses of v's tail. The DFSM is built with
// the lazy work-list algorithm of Figure 9; the number of reachable states
// is usually close to headLen*n+1 rather than the exponential worst case.
//
// Because Step models code injected on the program's own loads (§3.2 charges
// every executed comparison), the built machine is compiled into flat
// per-pc transition tables — sorted address arms over state-indexed entry
// runs — so that driving it is array indexing with no map lookups and no
// allocations unless a prefetch fires. The comparison counts Step reports
// are those of the paper's Figure 7 generated code and are unchanged by the
// compilation.
package dfsm

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"

	"hotprefetch/internal/ref"
)

// Stream is one hot data stream prepared for prefix matching.
type Stream struct {
	Refs []ref.Ref // the complete stream
	Head []ref.Ref // Refs[:headLen]
	Tail []uint64  // deduplicated addresses of Refs[headLen:]
	Heat uint64
}

// Split prepares a stream for matching with the given head length,
// deduplicating tail addresses (the paper prefetches each remaining stream
// address once: for v = abacadae with head aba it prefetches c, a, d, e).
// Streams are bounded at ~100 references, so the dedup is a linear scan over
// the tail built so far rather than a per-stream map.
func Split(refs []ref.Ref, heat uint64, headLen int) Stream {
	s := Stream{Refs: refs, Heat: heat}
	if len(refs) <= headLen {
		s.Head = refs
		return s
	}
	s.Head = refs[:headLen]
	tail := make([]uint64, 0, len(refs)-headLen)
outer:
	for _, r := range refs[headLen:] {
		for _, a := range tail {
			if a == r.Addr {
				continue outer
			}
		}
		tail = append(tail, r.Addr)
	}
	s.Tail = tail
	return s
}

// Element is one [stream, seen] pair of a DFSM state: the first seen
// references of stream have been matched.
type Element struct {
	Stream int // index into DFSM.Streams
	Seen   int // 1..headLen
}

// State is a reachable DFSM state.
type State struct {
	ID       int
	Elements []Element // canonically sorted
	// Prefetches lists the tail addresses of every stream whose head is
	// completely matched in this state; they are issued on entry.
	Prefetches []uint64
}

// transKey identifies a transition source: a state and an observed data
// reference.
type transKey struct {
	state int
	r     ref.Ref
}

// transRec is one explicit transition in the flat relation Build produces:
// observing (pc, addr) in state from moves the machine to state to. Build
// appends records instead of populating a map, and compile sorts them into
// the table layout; the map form exists only for the non-hot Next/DOT paths.
type transRec struct {
	pc       int
	addr     uint64
	from, to int32
}

// DFSM is the combined prefix-matching machine for a set of hot data
// streams.
type DFSM struct {
	Streams []Stream
	HeadLen int
	States  []*State

	// transRecs is the explicit transition relation in flat, sorted form
	// (by pc, then addr, then source state). The matching hot path never
	// touches it: Step runs on the compiled tables below. trans is the map
	// view, built lazily on the first Next call.
	transRecs []transRec
	transOnce sync.Once
	trans     map[transKey]*State

	// Compiled detection tables, the flat layout of the comparison
	// structure the injected code executes per instrumented pc (paper
	// Figure 7): an outer if-chain over addresses (arms), each with an
	// inner if-chain over source states (entries) and a restart default.
	//
	// pcDense maps pc-pcMin straight to the pc's [start,end) arm range
	// when the instrumented pc range is dense enough ({0,0} = not
	// instrumented); otherwise pcKeys holds the sorted instrumented pcs,
	// Step binary-searches, and pcSpan[slot] holds the range.
	pcMin   int
	pcDense [][2]int32
	pcKeys  []int
	pcSpan  [][2]int32
	arms    []addrArm
	chains  []stateEntry
}

// addrArm is one arm of the outer "if (accessing addr)" chain, its inner
// state compares stored as chains[eStart:eEnd].
type addrArm struct {
	addr         uint64
	restart      int32 // d(start, addr) state ID, or -1 (arm's else branch)
	eStart, eEnd int32
}

type stateEntry struct {
	from, to int32
}

// Build constructs the DFSM for the given streams with the lazy work-list
// algorithm of paper Figure 9. Streams no longer than headLen carry no
// prefetchable tail and are dropped.
//
// Construction is allocation-lean: element sets live in one growing arena and
// are interned through an open-addressed hash table of state indices, the
// transition relation is a flat record slice, and the compiled tables are
// carved from exactly-sized arrays. The expensive per-transition heat ranking
// in compile fans out across GOMAXPROCS workers over disjoint arm partitions,
// so the result is identical regardless of parallelism.
func Build(streams []Stream, headLen int) *DFSM {
	if headLen < 1 {
		panic("dfsm: headLen must be >= 1")
	}
	var usable []Stream
	for _, s := range streams {
		if len(s.Refs) > headLen && len(s.Tail) > 0 {
			usable = append(usable, s)
		}
	}
	d := &DFSM{Streams: usable, HeadLen: headLen}

	// State interning: per-state [off,end) spans into a shared element
	// arena, plus each state's hash, looked up through an open-addressed
	// table of state-index+1 slots (0 = empty). The start state (empty
	// element set) is never a lookup target — an empty successor set means
	// the implicit restart transition — so it is not in the table.
	var (
		elemArena []Element
		spans     = [][2]int32{{0, 0}} // spans[0] = start state
		hashes    = []uint64{0}
		slots     = make([]int32, 64)
		mask      = uint32(63)
	)
	insert := func(id int32) {
		for i := uint32(hashes[id]) & mask; ; i = (i + 1) & mask {
			if slots[i] == 0 {
				slots[i] = id + 1
				return
			}
		}
	}
	lookup := func(elems []Element, h uint64) int32 {
		for i := uint32(h) & mask; ; i = (i + 1) & mask {
			v := slots[i]
			if v == 0 {
				return -1
			}
			sp := spans[v-1]
			if hashes[v-1] == h && equalElements(elemArena[sp[0]:sp[1]], elems) {
				return v - 1
			}
		}
	}

	workList := []int32{0}
	var (
		cands   []ref.Ref
		scratch []Element
		recs    []transRec
	)
	for len(workList) > 0 {
		sid := workList[len(workList)-1]
		workList = workList[:len(workList)-1]
		sp := spans[sid]
		// selems stays valid across arena growth: append may move the
		// arena to a new backing array, but the old one is unchanged.
		selems := elemArena[sp[0]:sp[1]]

		// Candidate symbols: the next reference of each in-progress element,
		// plus the first reference of every stream (Figure 9's two loops).
		// Candidate sets are small (elements + streams), so dedup is a scan.
		cands = cands[:0]
		for _, e := range selems {
			if e.Seen < headLen {
				cands = appendCand(cands, d.Streams[e.Stream].Head[e.Seen])
			}
		}
		for i := range d.Streams {
			cands = appendCand(cands, d.Streams[i].Head[0])
		}

		// Each (state, candidate) pair is reached exactly once: states enter
		// the work list only when first interned, and cands is deduplicated,
		// so no transition-exists check is needed.
		for _, a := range cands {
			scratch = scratch[:0]
			for _, e := range selems {
				if e.Seen < headLen && d.Streams[e.Stream].Head[e.Seen] == a {
					scratch = append(scratch, Element{Stream: e.Stream, Seen: e.Seen + 1})
				}
			}
			for wi := range d.Streams {
				if d.Streams[wi].Head[0] == a && !hasElement(scratch, wi, 1) {
					scratch = append(scratch, Element{Stream: wi, Seen: 1})
				}
			}
			if len(scratch) == 0 {
				continue // implicit transition to the start state
			}
			sortElements(scratch)
			h := hashElements(scratch)
			tid := lookup(scratch, h)
			if tid < 0 {
				tid = int32(len(spans))
				off := int32(len(elemArena))
				elemArena = append(elemArena, scratch...)
				spans = append(spans, [2]int32{off, off + int32(len(scratch))})
				hashes = append(hashes, h)
				if len(spans)*4 >= len(slots)*3 {
					// Grow and rehash at 75% load.
					slots = make([]int32, 2*len(slots))
					mask = uint32(len(slots) - 1)
					for id := int32(1); id < int32(len(spans)); id++ {
						insert(id)
					}
				} else {
					insert(tid)
				}
				workList = append(workList, tid)
			}
			recs = append(recs, transRec{pc: a.PC, addr: a.Addr, from: sid, to: tid})
		}
	}
	d.transRecs = recs

	// Materialize the public state objects: elements slice straight into the
	// (now final) arena, prefetch lists into one exactly-sized array.
	n := len(spans)
	stateBuf := make([]State, n)
	d.States = make([]*State, n)
	totalPref := 0
	for id := 1; id < n; id++ {
		for _, e := range elemArena[spans[id][0]:spans[id][1]] {
			if e.Seen == headLen {
				totalPref += len(d.Streams[e.Stream].Tail)
			}
		}
	}
	prefArena := make([]uint64, 0, totalPref)
	for id := 0; id < n; id++ {
		sp := spans[id]
		st := &stateBuf[id]
		st.ID = id
		if sp[1] > sp[0] {
			st.Elements = elemArena[sp[0]:sp[1]:sp[1]]
		}
		pOff := len(prefArena)
		for _, e := range st.Elements {
			if e.Seen == headLen {
				prefArena = append(prefArena, d.Streams[e.Stream].Tail...)
			}
		}
		if len(prefArena) > pOff {
			st.Prefetches = prefArena[pOff:len(prefArena):len(prefArena)]
		}
		d.States[id] = st
	}

	d.compile()
	return d
}

// appendCand adds r to the candidate set if not already present.
func appendCand(cands []ref.Ref, r ref.Ref) []ref.Ref {
	for _, c := range cands {
		if c == r {
			return cands
		}
	}
	return append(cands, r)
}

// hashElements mixes an element set (already canonically sorted) into a
// 64-bit interning hash.
func hashElements(elems []Element) uint64 {
	h := uint64(1469598103934665603)
	for _, e := range elems {
		h ^= uint64(uint32(e.Stream)) | uint64(uint32(e.Seen))<<32
		h *= 1099511628211
		h ^= h >> 29
	}
	return h
}

func equalElements(a, b []Element) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func hasElement(elems []Element, stream, seen int) bool {
	for _, e := range elems {
		if e.Stream == stream && e.Seen == seen {
			return true
		}
	}
	return false
}

// sortElements canonically orders an element set by (stream, seen). Sets are
// small and nearly sorted (extensions preserve order; only fresh [w,1]
// elements land out of place), so an insertion sort avoids sort.Slice's
// per-call closure allocation on this per-transition path.
func sortElements(elems []Element) {
	for i := 1; i < len(elems); i++ {
		e := elems[i]
		j := i - 1
		for j >= 0 && (elems[j].Stream > e.Stream ||
			(elems[j].Stream == e.Stream && elems[j].Seen > e.Seen)) {
			elems[j+1] = elems[j]
			j--
		}
		elems[j+1] = e
	}
}

// compile lays out the per-pc comparison structure of the injected detection
// code as flat arrays. Hotter streams' addresses come first, modelling the
// paper's "sort the if-branches in such a way that more likely cases come
// first". Within an address arm, only extension transitions need explicit
// state compares; the restart transition d(start, a) is the arm's default.
//
// One sort of the flat transition relation by (pc, addr, from) makes every
// (pc, addr) group — one arm of the generated if-chain — contiguous with its
// state entries already ordered, so the tables are assembled by slicing, not
// by per-pc maps. The arm heat ranking, the only pass that touches every
// target state's element set, runs in parallel over disjoint arm partitions.
func (d *DFSM) compile() {
	recs := d.transRecs
	if len(recs) == 0 {
		return
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].pc != recs[j].pc {
			return recs[i].pc < recs[j].pc
		}
		if recs[i].addr != recs[j].addr {
			return recs[i].addr < recs[j].addr
		}
		return recs[i].from < recs[j].from
	})

	// One group per distinct (pc, addr): the record range, plus the restart
	// transition d(start, addr) if present (from == 0 sorts first).
	type group struct {
		pc           int
		addr         uint64
		heat         uint64
		restart      int32
		rStart, rEnd int32
	}
	nGroups := 1
	for i := 1; i < len(recs); i++ {
		if recs[i].pc != recs[i-1].pc || recs[i].addr != recs[i-1].addr {
			nGroups++
		}
	}
	groups := make([]group, 0, nGroups)
	for start := 0; start < len(recs); {
		end := start + 1
		for end < len(recs) && recs[end].pc == recs[start].pc && recs[end].addr == recs[start].addr {
			end++
		}
		g := group{
			pc:      recs[start].pc,
			addr:    recs[start].addr,
			restart: -1,
			rStart:  int32(start),
			rEnd:    int32(end),
		}
		if recs[start].from == 0 {
			g.restart = recs[start].to
		}
		groups = append(groups, g)
		start = end
	}

	// Arm heat = hottest stream with an element in any target state of the
	// group. Partitioned across workers; each writes only its own groups, so
	// the result is independent of the worker count.
	rankPartition := func(lo, hi int) {
		for gi := lo; gi < hi; gi++ {
			g := &groups[gi]
			for ri := g.rStart; ri < g.rEnd; ri++ {
				for _, e := range d.States[recs[ri].to].Elements {
					if h := d.Streams[e.Stream].Heat; h > g.heat {
						g.heat = h
					}
				}
			}
		}
	}
	if workers := runtime.GOMAXPROCS(0); workers > 1 && len(groups) >= 64 {
		var wg sync.WaitGroup
		chunk := (len(groups) + workers - 1) / workers
		for lo := 0; lo < len(groups); lo += chunk {
			hi := lo + chunk
			if hi > len(groups) {
				hi = len(groups)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				// Label the fan-out so CPU profiles attribute compile time to
				// the machine-build phase rather than anonymous goroutines.
				pprof.Do(context.Background(), pprof.Labels("hotprefetch_phase", "dfsm_compile"), func(context.Context) {
					rankPartition(lo, hi)
				})
			}(lo, hi)
		}
		wg.Wait()
	} else {
		rankPartition(0, len(groups))
	}

	sort.Slice(groups, func(i, j int) bool {
		if groups[i].pc != groups[j].pc {
			return groups[i].pc < groups[j].pc
		}
		if groups[i].heat != groups[j].heat {
			return groups[i].heat > groups[j].heat
		}
		return groups[i].addr < groups[j].addr
	})

	// Lay the arms and entry chains out in exactly-sized arrays.
	totalEntries := 0
	nPCs := 1
	for gi, g := range groups {
		totalEntries += int(g.rEnd - g.rStart)
		if g.restart >= 0 {
			totalEntries--
		}
		if gi > 0 && g.pc != groups[gi-1].pc {
			nPCs++
		}
	}
	d.arms = make([]addrArm, len(groups))
	d.chains = make([]stateEntry, 0, totalEntries)
	d.pcKeys = make([]int, 0, nPCs)
	d.pcSpan = make([][2]int32, 0, nPCs)
	for gi, g := range groups {
		if gi == 0 || g.pc != groups[gi-1].pc {
			d.pcKeys = append(d.pcKeys, g.pc)
			d.pcSpan = append(d.pcSpan, [2]int32{int32(gi), int32(gi)})
		}
		eStart := int32(len(d.chains))
		for ri := g.rStart; ri < g.rEnd; ri++ {
			if recs[ri].from == 0 {
				continue
			}
			d.chains = append(d.chains, stateEntry{from: recs[ri].from, to: recs[ri].to})
		}
		d.arms[gi] = addrArm{
			addr:    g.addr,
			restart: g.restart,
			eStart:  eStart,
			eEnd:    int32(len(d.chains)),
		}
		d.pcSpan[len(d.pcSpan)-1][1] = int32(gi + 1)
	}
	pcs := d.pcKeys

	// Dense pc index when the instrumented pcs span a reasonable range
	// (pcs are instruction indices, so this is the overwhelmingly common
	// case); otherwise Step binary-searches pcKeys. A pc's arm range is
	// never empty, so the zero span marks un-instrumented pcs.
	if len(pcs) > 0 {
		span := pcs[len(pcs)-1] - pcs[0] + 1
		if span <= 1<<16 || span <= 64*len(pcs) {
			d.pcMin = pcs[0]
			d.pcDense = make([][2]int32, span)
			for slot, pc := range pcs {
				d.pcDense[pc-d.pcMin] = d.pcSpan[slot]
			}
		}
	}
}

// spanOf returns pc's [start,end) arm range, zero if pc is not instrumented.
// The dense fast path is small enough to inline into Step.
func (d *DFSM) spanOf(pc int) [2]int32 {
	if d.pcDense != nil {
		if i := pc - d.pcMin; uint(i) < uint(len(d.pcDense)) {
			return d.pcDense[i]
		}
		return [2]int32{}
	}
	return d.spanSearch(pc)
}

// spanSearch is the sparse-pc fallback.
func (d *DFSM) spanSearch(pc int) [2]int32 {
	// Binary search over the sorted instrumented pcs.
	lo, hi := 0, len(d.pcKeys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if d.pcKeys[mid] < pc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(d.pcKeys) && d.pcKeys[lo] == pc {
		return d.pcSpan[lo]
	}
	return [2]int32{}
}

// NumStates returns the number of reachable states, including the start
// state.
func (d *DFSM) NumStates() int { return len(d.States) }

// NumTransitions returns the number of explicit transitions (Table 2's
// "checks" column counts the injected prefix-match checks that implement
// them).
func (d *DFSM) NumTransitions() int { return len(d.transRecs) }

// Start returns the start state (nothing matched).
func (d *DFSM) Start() *State { return d.States[0] }

// transMap materializes the map view of the transition relation on first
// use. Next and the debug renderers are the only readers; keeping the map
// off the Build path keeps construction allocation-lean.
func (d *DFSM) transMap() map[transKey]*State {
	d.transOnce.Do(func() {
		m := make(map[transKey]*State, len(d.transRecs))
		for _, t := range d.transRecs {
			m[transKey{state: int(t.from), r: ref.Ref{PC: t.pc, Addr: t.addr}}] = d.States[t.to]
		}
		d.trans = m
	})
	return d.trans
}

// Next returns d(s, r), with the implicit reset to the start state for
// undefined transitions.
func (d *DFSM) Next(s *State, r ref.Ref) *State {
	if t, ok := d.transMap()[transKey{state: s.ID, r: r}]; ok {
		return t
	}
	return d.States[0]
}

// PCs returns the sorted set of instruction PCs at which detection code must
// be injected — every pc occurring in any stream head.
func (d *DFSM) PCs() []int {
	set := map[int]struct{}{}
	for _, s := range d.Streams {
		for _, r := range s.Head {
			set[r.PC] = struct{}{}
		}
	}
	pcs := make([]int, 0, len(set))
	for pc := range set {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	return pcs
}

// String renders the DFSM's states and transitions for debugging.
func (d *DFSM) String() string {
	var b strings.Builder
	for _, s := range d.States {
		fmt.Fprintf(&b, "state %d {", s.ID)
		for i, e := range s.Elements {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "[%d,%d]", e.Stream, e.Seen)
		}
		b.WriteString("}")
		if len(s.Prefetches) > 0 {
			fmt.Fprintf(&b, " prefetch %d addrs", len(s.Prefetches))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Matcher drives a DFSM over a stream of observed data references at the
// injected check sites. It is the runtime counterpart of the generated code
// in paper Figure 7. The compiled tables are cached in the matcher itself so
// Step touches one object, not the DFSM behind it.
type Matcher struct {
	d       *DFSM
	cur     int32 // current state ID
	pcMin   int
	pcDense [][2]int32
	arms    []addrArm
	chains  []stateEntry
	states  []*State

	// tracker, when non-nil, accounts prefetch accuracy (issued vs. hit);
	// see EnableHitTracking. Nil by default so Step's hot path pays one
	// predictable branch.
	tracker *hitTracker
}

// hitTracker accounts prefetch accuracy: every address issued by a firing
// prefetch becomes outstanding, and an outstanding address observed by a
// later Step counts as a hit — the paper's Table 2 accuracy metric
// (prefetches actually used by the program vs. prefetches issued).
// Outstanding addresses are bounded by a FIFO window so a stale matcher
// cannot grow the set without limit; evicted addresses simply never hit.
type hitTracker struct {
	set  map[uint64]struct{}
	fifo []uint64 // insertion-ordered ring over the outstanding set
	head int      // next eviction slot

	// The ledger balances exactly: every issued address is either coalesced
	// with an already-outstanding copy at issue time, observed later (hit),
	// evicted by the FIFO window, or still outstanding (in set). See
	// Matcher.HitBooks.
	issued    uint64
	hits      uint64
	evicted   uint64
	coalesced uint64
}

func newHitTracker(window int) *hitTracker {
	return &hitTracker{
		set:  make(map[uint64]struct{}, window),
		fifo: make([]uint64, 0, window),
	}
}

// observe credits a hit if addr is outstanding.
func (t *hitTracker) observe(addr uint64) {
	if _, ok := t.set[addr]; ok {
		t.hits++
		delete(t.set, addr)
	}
}

// issue records a fired prefetch list. Every address counts as issued; an
// address already outstanding is not duplicated in the window (one future
// observation clears it either way).
func (t *hitTracker) issue(addrs []uint64) {
	t.issued += uint64(len(addrs))
	for _, a := range addrs {
		if _, ok := t.set[a]; ok {
			t.coalesced++
			continue
		}
		if len(t.fifo) < cap(t.fifo) {
			t.fifo = append(t.fifo, a)
		} else {
			// Window full: evict the oldest outstanding address. A slot
			// whose address already left the set (hit, or re-issued into a
			// younger slot) is stale — overwriting it retires nothing.
			if old := t.fifo[t.head]; old != a {
				if _, live := t.set[old]; live {
					delete(t.set, old)
					t.evicted++
				}
			}
			t.fifo[t.head] = a
			t.head++
			if t.head == len(t.fifo) {
				t.head = 0
			}
		}
		t.set[a] = struct{}{}
	}
}

// EnableHitTracking turns on prefetch accuracy accounting with the given
// outstanding-address window (<= 0 means 4096). Tracking follows the same
// single-goroutine contract as Step.
func (m *Matcher) EnableHitTracking(window int) {
	if window <= 0 {
		window = 4096
	}
	m.tracker = newHitTracker(window)
}

// HitCounters returns the cumulative prefetch addresses issued and the
// subset later observed (hits). Both are zero until EnableHitTracking.
func (m *Matcher) HitCounters() (issued, hits uint64) {
	if m.tracker == nil {
		return 0, 0
	}
	return m.tracker.issued, m.tracker.hits
}

// HitBooks returns the tracker's full ledger: addresses issued, the subset
// observed (hits), the subset still outstanding in the window, and the
// subset dropped unobserved (FIFO evictions plus issues coalesced with an
// already-outstanding copy). The books balance exactly:
// issued == hits + outstanding + dropped. All zero until EnableHitTracking.
func (m *Matcher) HitBooks() (issued, hits, outstanding, dropped uint64) {
	if m.tracker == nil {
		return 0, 0, 0, 0
	}
	t := m.tracker
	return t.issued, t.hits, uint64(len(t.set)), t.evicted + t.coalesced
}

// NewMatcher returns a matcher positioned at the start state.
func NewMatcher(d *DFSM) *Matcher {
	return &Matcher{
		d:       d,
		pcMin:   d.pcMin,
		pcDense: d.pcDense,
		arms:    d.arms,
		chains:  d.chains,
		states:  d.States,
	}
}

// State returns the current state.
func (m *Matcher) State() *State { return m.d.States[m.cur] }

// Reset returns the matcher to the start state.
func (m *Matcher) Reset() { m.cur = 0 }

// Step consumes one data reference observed at an instrumented pc. It
// returns the addresses to prefetch (non-nil exactly when a stream head
// completes) and the number of comparisons the injected check chain
// executed, which the caller charges as detection overhead.
//
// The comparison count follows the structure of the generated code in paper
// Figure 7: an outer if-chain over the addresses checked at this pc, then an
// inner if-chain over source states, with the restart transition as the
// arm's else branch. Step performs no allocations and no map lookups; the
// returned prefetch slice aliases the machine's state table.
func (m *Matcher) Step(r ref.Ref) (prefetch []uint64, comparisons int) {
	var span [2]int32
	if m.pcDense != nil {
		if i := r.PC - m.pcMin; uint(i) < uint(len(m.pcDense)) {
			span = m.pcDense[i]
		}
	} else {
		span = m.d.spanSearch(r.PC)
	}
	if span[0] == span[1] {
		// Un-instrumented pc: no arms; the single failed address comparison.
		m.cur = 0
		if m.tracker != nil {
			m.tracker.observe(r.Addr)
		}
		return nil, 1
	}
	prefetch, comparisons = m.stepArms(r.Addr, span)
	if m.tracker != nil {
		// Observe before issue: the triggering reference must not hit a
		// prefetch issued by its own step.
		m.tracker.observe(r.Addr)
		if len(prefetch) > 0 {
			m.tracker.issue(prefetch)
		}
	}
	return prefetch, comparisons
}

// stepArms walks the address arms of one instrumented pc (the out-of-line
// part of Step, keeping Step itself inlinable for the frequent
// un-instrumented case).
func (m *Matcher) stepArms(addr uint64, span [2]int32) (prefetch []uint64, comparisons int) {
	prev := m.cur
	for ai := span[0]; ai < span[1]; ai++ {
		arm := &m.arms[ai]
		comparisons++ // address compare
		if arm.addr != addr {
			continue
		}
		next := arm.restart // else branch: d(start, a), possibly -1
		for ei := arm.eStart; ei < arm.eEnd; ei++ {
			comparisons++ // state compare
			if m.chains[ei].from == m.cur {
				next = m.chains[ei].to
				break
			}
		}
		if next < 0 {
			next = 0
		}
		m.cur = next
		if prev != m.cur {
			if p := m.states[m.cur].Prefetches; len(p) > 0 {
				return p, comparisons
			}
		}
		return nil, comparisons
	}
	// Address matched no arm: d(s,a) = {}, reset to start (the final
	// "else v.seen = 0" of Figure 7).
	m.cur = 0
	return nil, comparisons
}

// WriteDOT renders the DFSM in Graphviz DOT format, in the style of the
// paper's Figure 8: nodes are states labelled with their element sets,
// edges are transitions labelled with the observed reference, and states
// with prefetch annotations are drawn doubled.
func (d *DFSM) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph dfsm {\n  rankdir=LR;\n  node [fontname=\"monospace\"];\n")
	for _, s := range d.States {
		label := "{}"
		if len(s.Elements) > 0 {
			var eb strings.Builder
			eb.WriteByte('{')
			for i, e := range s.Elements {
				if i > 0 {
					eb.WriteByte(' ')
				}
				fmt.Fprintf(&eb, "[v%d,%d]", e.Stream, e.Seen)
			}
			eb.WriteByte('}')
			label = eb.String()
		}
		shape := "circle"
		if len(s.Prefetches) > 0 {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  s%d [label=%q shape=%s];\n", s.ID, label, shape)
	}
	// Deterministic edge order.
	edges := make([]transRec, len(d.transRecs))
	copy(edges, d.transRecs)
	sort.Slice(edges, func(i, j int) bool {
		a, e := edges[i], edges[j]
		if a.from != e.from {
			return a.from < e.from
		}
		if a.pc != e.pc {
			return a.pc < e.pc
		}
		if a.addr != e.addr {
			return a.addr < e.addr
		}
		return a.to < e.to
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  s%d -> s%d [label=\"pc%d:0x%x\"];\n", e.from, e.to, e.pc, e.addr)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
